package dist

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"
)

// ErrTimeout reports an RPC that did not complete within its deadline.
// The connection it ran on is invalidated (a late reply would otherwise
// be mis-delivered to the next call's reply slot).
var ErrTimeout = errors.New("dist: rpc deadline exceeded")

// ClientPool caches one net/rpc client per remote address and layers
// per-call deadlines on top of rpc.Client's asynchronous Go API. It is
// safe for concurrent use; calls to distinct addresses never serialize
// on each other (dialing holds only a per-address lock).
//
// Error policy: a server-side error (rpc.ServerError — the handler ran
// and returned an error) leaves the connection cached; any transport
// error or timeout closes and drops it, so the next call redials.
type ClientPool struct {
	// DialTimeout bounds connection establishment (default 500ms).
	DialTimeout time.Duration

	mu      sync.Mutex
	entries map[string]*poolEntry
	closed  bool
}

type poolEntry struct {
	mu sync.Mutex
	c  *rpc.Client
}

// NewClientPool returns an empty pool.
func NewClientPool() *ClientPool {
	return &ClientPool{entries: make(map[string]*poolEntry)}
}

func (p *ClientPool) entry(addr string) (*poolEntry, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, errors.New("dist: client pool closed")
	}
	e := p.entries[addr]
	if e == nil {
		e = &poolEntry{}
		p.entries[addr] = e
	}
	return e, nil
}

func (p *ClientPool) client(addr string) (*rpc.Client, error) {
	e, err := p.entry(addr)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.c != nil {
		return e.c, nil
	}
	dt := p.DialTimeout
	if dt <= 0 {
		dt = 500 * time.Millisecond
	}
	conn, err := net.DialTimeout("tcp", addr, dt)
	if err != nil {
		return nil, fmt.Errorf("dist: dial %s: %w", addr, err)
	}
	e.c = rpc.NewClient(conn)
	return e.c, nil
}

// Invalidate closes and forgets the cached client for addr if it still
// is c (a concurrent caller may already have replaced it).
func (p *ClientPool) Invalidate(addr string, c *rpc.Client) {
	p.mu.Lock()
	e := p.entries[addr]
	p.mu.Unlock()
	if e == nil {
		return
	}
	e.mu.Lock()
	if e.c == c {
		e.c = nil
	}
	e.mu.Unlock()
	c.Close()
}

// Call performs one RPC against addr with a hard deadline. On timeout
// the underlying connection is closed, which also fails any other calls
// in flight on it — deadline busts are exceptional, correctness first.
func (p *ClientPool) Call(addr, method string, args, reply any, timeout time.Duration) error {
	if timeout <= 0 {
		return fmt.Errorf("%w: %s %s (no time remaining)", ErrTimeout, addr, method)
	}
	c, err := p.client(addr)
	if err != nil {
		return err
	}
	call := c.Go(method, args, reply, make(chan *rpc.Call, 1))
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-t.C:
		p.Invalidate(addr, c)
		return fmt.Errorf("%w: %s %s after %v", ErrTimeout, addr, method, timeout)
	case done := <-call.Done:
		if done.Error != nil {
			var se rpc.ServerError
			if !errors.As(done.Error, &se) {
				p.Invalidate(addr, c)
			}
			return fmt.Errorf("dist: %s %s: %w", addr, method, done.Error)
		}
		return nil
	}
}

// Close closes every cached connection and rejects future calls.
func (p *ClientPool) Close() {
	p.mu.Lock()
	entries := p.entries
	p.entries = nil
	p.closed = true
	p.mu.Unlock()
	for _, e := range entries {
		e.mu.Lock()
		if e.c != nil {
			e.c.Close()
			e.c = nil
		}
		e.mu.Unlock()
	}
}
