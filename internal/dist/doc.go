// Package dist holds the distributed-execution building blocks, in two
// halves that deliberately coexist:
//
//   - The analytical model (analytic.go) reproduces §6.4 of the paper:
//     projected epoch time and speedup under bandwidth-bound gradient
//     allreduce, driven by measured single-node step times. It predicts
//     what distribution would buy; it moves no bytes.
//
//   - The transport primitives (pool.go, exchange.go) are the real
//     thing: a deadline-aware net/rpc client pool with connection
//     caching and invalidation-on-error, and an in-memory rendezvous
//     (Exchange) that lets asynchronous producers and consumers meet on
//     (request, stage) keys — the mechanism shard workers use to trade
//     halo rows in internal/distserve.
//
// The split keeps the paper's projection model quotable and testable on
// its own while the serving stack builds actual multi-process inference
// on the same package's wire machinery.
package dist
