package dist

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestExchangePublishThenWait(t *testing.T) {
	e := NewExchange()
	e.Open("r1", time.Now().Add(time.Minute))
	e.Publish("r1", 0, 42)
	v, err := e.Wait("r1", 0, time.Second)
	if err != nil || v.(int) != 42 {
		t.Fatalf("Wait: %v, %v", v, err)
	}
	// Double publish is ignored, first value wins.
	e.Publish("r1", 0, 99)
	if v, _ := e.Wait("r1", 0, time.Second); v.(int) != 42 {
		t.Fatalf("double publish overwrote: %v", v)
	}
}

func TestExchangeWaitBeforePublish(t *testing.T) {
	e := NewExchange()
	e.Open("r1", time.Now().Add(time.Minute))
	got := make(chan any, 1)
	go func() {
		v, err := e.Wait("r1", 3, 5*time.Second)
		if err != nil {
			got <- err
			return
		}
		got <- v
	}()
	time.Sleep(10 * time.Millisecond)
	e.Publish("r1", 3, "rows")
	if v := <-got; v != "rows" {
		t.Fatalf("racing waiter got %v", v)
	}
}

func TestExchangeWaitTimesOut(t *testing.T) {
	e := NewExchange()
	if _, err := e.Wait("ghost", 0, 20*time.Millisecond); err == nil {
		t.Fatal("wait on never-published cell succeeded")
	}
}

func TestExchangeExpireFailsWaiters(t *testing.T) {
	e := NewExchange()
	e.Open("r1", time.Now().Add(10*time.Millisecond))
	errCh := make(chan error, 1)
	go func() {
		_, err := e.Wait("r1", 0, 10*time.Second)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if n := e.Expire(time.Now()); n != 1 {
		t.Fatalf("Expire dropped %d requests, want 1", n)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("expired waiter got a value")
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not failed by Expire")
	}
	if e.Len() != 0 {
		t.Fatalf("Len = %d after sweep", e.Len())
	}
}

// TestExchangeFailTombstonesLateWaiters pins the race the distributed
// worker hit: a consumer whose RPC lands *after* the producer aborts
// must fail immediately, not park until its own timeout.
func TestExchangeFailTombstonesLateWaiters(t *testing.T) {
	e := NewExchange()
	e.Open("r1", time.Now().Add(time.Minute))
	boom := errors.New("producer aborted")

	// Parked waiter fails now.
	parked := make(chan error, 1)
	go func() {
		_, err := e.Wait("r1", 0, 10*time.Second)
		parked <- err
	}()
	time.Sleep(10 * time.Millisecond)
	e.Fail("r1", boom, time.Now().Add(time.Second))
	select {
	case err := <-parked:
		if !errors.Is(err, boom) {
			t.Fatalf("parked waiter: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("parked waiter survived Fail")
	}

	// Late waiter fails immediately (the important half).
	start := time.Now()
	if _, err := e.Wait("r1", 7, 10*time.Second); !errors.Is(err, boom) {
		t.Fatalf("late waiter: %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("late waiter parked instead of failing fast")
	}

	// Publishes into a failed request are dropped, and waiters still
	// see the failure rather than the value.
	e.Publish("r1", 7, "stale")
	if _, err := e.Wait("r1", 7, time.Second); !errors.Is(err, boom) {
		t.Fatalf("post-fail publish resurrected the request: %v", err)
	}

	// The tombstone itself is swept by expiry.
	time.Sleep(1100 * time.Millisecond)
	if n := e.Expire(time.Now()); n != 1 {
		t.Fatalf("tombstone sweep dropped %d, want 1", n)
	}
}

func TestExchangeReleaseFailsWaiters(t *testing.T) {
	e := NewExchange()
	e.Open("r1", time.Now().Add(time.Minute))
	errCh := make(chan error, 1)
	go func() {
		_, err := e.Wait("r1", 0, 10*time.Second)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	e.Release("r1")
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "released") {
			t.Fatalf("released waiter: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not failed by Release")
	}
}

// TestExchangeConcurrentPublishersAndWaiters shakes the check-and-close
// paths under the race detector.
func TestExchangeConcurrentPublishersAndWaiters(t *testing.T) {
	e := NewExchange()
	e.Open("r1", time.Now().Add(time.Minute))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func(stage int) {
			defer wg.Done()
			e.Publish("r1", stage%4, stage)
		}(i)
		go func(stage int) {
			defer wg.Done()
			if _, err := e.Wait("r1", stage%4, 5*time.Second); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	e.Release("r1")
}
