package dist

import (
	"errors"
	"time"
)

// Clock-skew estimation for cross-process trace stitching. Workers
// timestamp their spans with their own wall clocks; to lay those spans
// on the router's timeline the router needs each worker's offset. The
// estimator is the NTP client trick reduced to its core: probe the
// remote clock several times, keep the minimum-RTT sample (the one
// least polluted by queueing), and read the offset as the remote
// timestamp minus the midpoint of the local send/receive pair. The
// residual uncertainty is bounded by half that best RTT — the remote
// read happened *somewhere* inside the round trip.

// SkewEstimate is one measurement of a remote clock.
type SkewEstimate struct {
	// Offset is remote − local: add it to a local timestamp to express
	// it on the remote clock, subtract it from a remote timestamp to
	// pull it onto the local clock.
	Offset time.Duration
	// RTT is the round-trip time of the best (minimum-RTT) probe. The
	// offset's uncertainty is at most RTT/2.
	RTT time.Duration
}

// Uncertainty bounds how far the estimated offset can be from truth.
func (s SkewEstimate) Uncertainty() time.Duration { return s.RTT / 2 }

// EstimateSkew probes the remote clock `probes` times via ping — a
// closure that reads the remote wall clock (an RPC round trip) — and
// returns the minimum-RTT estimate. At least one probe must succeed;
// individual probe errors are tolerated as long as one lands, so a
// single dropped packet doesn't void the refresh.
func EstimateSkew(probes int, ping func() (time.Time, error)) (SkewEstimate, error) {
	if probes < 1 {
		probes = 1
	}
	best := SkewEstimate{RTT: -1}
	var lastErr error
	for i := 0; i < probes; i++ {
		t0 := time.Now()
		remote, err := ping()
		t1 := time.Now()
		if err != nil {
			lastErr = err
			continue
		}
		rtt := t1.Sub(t0)
		if rtt < 0 {
			// Local clock stepped backwards mid-probe; unusable sample.
			continue
		}
		if best.RTT < 0 || rtt < best.RTT {
			mid := t0.Add(rtt / 2)
			best = SkewEstimate{Offset: remote.Sub(mid), RTT: rtt}
		}
	}
	if best.RTT < 0 {
		if lastErr == nil {
			lastErr = errors.New("dist: no usable clock probe")
		}
		return SkewEstimate{}, lastErr
	}
	return best, nil
}
