package dist

import (
	"fmt"
	"sync"
	"time"
)

// Exchange is an in-memory rendezvous keyed by (request, stage): a
// producer Publishes a value once, any number of consumers Wait for it,
// and arrival order does not matter — a Wait that races ahead of its
// Publish blocks on the same cell the Publish will complete. Shard
// workers use it to hand halo rows to neighbor-serving RPC handlers.
//
// Requests are garbage-collected by deadline: Open (or the first
// touch) stamps an expiry, SetExpiry tightens it after completion, and
// a periodic Expire sweep drops everything stale, failing any waiter
// still parked. This bounds memory when a gang partner dies mid-request
// and its halo rows are never consumed.
type Exchange struct {
	mu   sync.Mutex
	reqs map[string]*exchangeReq
}

type exchangeReq struct {
	expiry time.Time
	cells  map[int]*cell
	// err, when non-nil, tombstones the request: every present and
	// future Wait fails with it immediately. Tombstones matter because
	// consumers race producers — a haloing neighbor whose RPC lands just
	// after the producer aborts must fail fast, not park until timeout
	// on a freshly auto-created cell.
	err error
}

type cell struct {
	done chan struct{}
	val  any
	err  error
}

// defaultTTL bounds requests nobody Opened explicitly (a Halo arriving
// for a request whose Eval never lands here).
const defaultTTL = time.Minute

// NewExchange returns an empty exchange.
func NewExchange() *Exchange {
	return &Exchange{reqs: make(map[string]*exchangeReq)}
}

func (e *Exchange) req(id string) *exchangeReq {
	r := e.reqs[id]
	if r == nil {
		r = &exchangeReq{expiry: time.Now().Add(defaultTTL), cells: make(map[int]*cell)}
		e.reqs[id] = r
	}
	return r
}

func (e *Exchange) cell(id string, stage int) *cell {
	r := e.req(id)
	c := r.cells[stage]
	if c == nil {
		c = &cell{done: make(chan struct{})}
		r.cells[stage] = c
	}
	return c
}

// Open registers (or re-stamps) a request with an explicit expiry.
func (e *Exchange) Open(id string, expiry time.Time) {
	e.mu.Lock()
	e.req(id).expiry = expiry
	e.mu.Unlock()
}

// SetExpiry tightens (or extends) a request's expiry; a no-op for
// requests already swept.
func (e *Exchange) SetExpiry(id string, expiry time.Time) {
	e.mu.Lock()
	if r := e.reqs[id]; r != nil {
		r.expiry = expiry
	}
	e.mu.Unlock()
}

// Publish completes the (id, stage) cell with v, waking every waiter.
// Publishing an already-completed cell is ignored (retries republish);
// so is publishing into a failed request.
func (e *Exchange) Publish(id string, stage int, v any) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if r := e.reqs[id]; r != nil && r.err != nil {
		return
	}
	c := e.cell(id, stage)
	select {
	case <-c.done:
	default:
		c.val = v
		close(c.done)
	}
}

// Wait blocks until the (id, stage) cell is published, the request is
// released/expired, or timeout elapses.
func (e *Exchange) Wait(id string, stage int, timeout time.Duration) (any, error) {
	e.mu.Lock()
	if r := e.reqs[id]; r != nil && r.err != nil {
		err := r.err
		e.mu.Unlock()
		return nil, err
	}
	c := e.cell(id, stage)
	e.mu.Unlock()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-c.done:
		if c.err != nil {
			return nil, c.err
		}
		return c.val, nil
	case <-t.C:
		return nil, fmt.Errorf("dist: exchange wait %s stage %d: timed out after %v", id, stage, timeout)
	}
}

// Release drops a request immediately, failing parked waiters. Waiters
// arriving after Release park on a fresh auto-created cell; producers
// that abort and expect stragglers should use Fail instead.
func (e *Exchange) Release(id string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r := e.reqs[id]
	delete(e.reqs, id)
	failReq(r, fmt.Errorf("dist: exchange request %s released", id))
}

// Fail tombstones a request until expiry: parked waiters fail now with
// err, and any Wait arriving before the expiry sweep fails immediately
// instead of parking. Producers call it when their evaluation aborts,
// so gang partners mid-halo-RPC collapse at once rather than riding out
// their own timeouts.
func (e *Exchange) Fail(id string, err error, expiry time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r := e.req(id)
	r.err = err
	r.expiry = expiry
	failReq(r, err)
}

// Expire sweeps every request whose expiry precedes now, failing parked
// waiters, and reports how many requests were dropped.
func (e *Exchange) Expire(now time.Time) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	dropped := 0
	for id, r := range e.reqs {
		if r.expiry.Before(now) {
			failReq(r, fmt.Errorf("dist: exchange request expired"))
			delete(e.reqs, id)
			dropped++
		}
	}
	return dropped
}

// Len reports how many requests are currently resident (tests, gauges).
func (e *Exchange) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.reqs)
}

// failReq closes every pending cell with err. Caller holds e.mu, which
// serializes it against Publish's check-and-close.
func failReq(r *exchangeReq, err error) {
	if r == nil {
		return
	}
	for _, c := range r.cells {
		select {
		case <-c.done:
		default:
			c.err = err
			close(c.done)
		}
	}
}
