package dist

import (
	"errors"
	"net"
	"net/rpc"
	"testing"
	"time"
)

// echoSvc is a minimal RPC service for pool tests.
type echoSvc struct{}

type EchoArgs struct {
	X       int
	Fail    bool
	SleepMs int
}

func (echoSvc) Echo(a *EchoArgs, reply *int) error {
	if a.SleepMs > 0 {
		time.Sleep(time.Duration(a.SleepMs) * time.Millisecond)
	}
	if a.Fail {
		return errors.New("handler says no")
	}
	*reply = a.X
	return nil
}

func startEcho(t *testing.T) string {
	t.Helper()
	srv := rpc.NewServer()
	if err := srv.RegisterName("Echo", echoSvc{}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	return ln.Addr().String()
}

func TestPoolCallRoundTrip(t *testing.T) {
	addr := startEcho(t)
	p := NewClientPool()
	defer p.Close()
	var got int
	if err := p.Call(addr, "Echo.Echo", &EchoArgs{X: 7}, &got, time.Second); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("echo returned %d", got)
	}
}

// TestPoolServerErrorKeepsConnection: a handler error is not a liveness
// signal — the cached client must survive and serve the next call.
func TestPoolServerErrorKeepsConnection(t *testing.T) {
	addr := startEcho(t)
	p := NewClientPool()
	defer p.Close()
	var got int
	err := p.Call(addr, "Echo.Echo", &EchoArgs{Fail: true}, &got, time.Second)
	var se rpc.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("want rpc.ServerError, got %v", err)
	}
	if err := p.Call(addr, "Echo.Echo", &EchoArgs{X: 8}, &got, time.Second); err != nil || got != 8 {
		t.Fatalf("connection dropped after server error: %v", err)
	}
}

// TestPoolTimeoutInvalidates: a deadline bust closes the connection so a
// late reply can never land in a later call's reply slot; the pool then
// redials transparently.
func TestPoolTimeoutInvalidates(t *testing.T) {
	addr := startEcho(t)
	p := NewClientPool()
	defer p.Close()
	var got int
	err := p.Call(addr, "Echo.Echo", &EchoArgs{X: 1, SleepMs: 500}, &got, 30*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if err := p.Call(addr, "Echo.Echo", &EchoArgs{X: 9}, &got, time.Second); err != nil || got != 9 {
		t.Fatalf("pool did not redial after timeout: %v (got %d)", err, got)
	}
	if err := p.Call(addr, "Echo.Echo", &EchoArgs{X: 1}, &got, 0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("zero budget should fail fast with ErrTimeout, got %v", err)
	}
}

func TestPoolDeadAddressAndClose(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	p := NewClientPool()
	var got int
	if err := p.Call(dead, "Echo.Echo", &EchoArgs{X: 1}, &got, time.Second); err == nil {
		t.Fatal("call to dead address succeeded")
	}
	p.Close()
	if err := p.Call(dead, "Echo.Echo", &EchoArgs{X: 1}, &got, time.Second); err == nil {
		t.Fatal("closed pool accepted a call")
	}
}
