package dist_test

import (
	"math"
	"testing"

	"splitcnn/internal/dist"
)

func TestAllReduceLowerBound(t *testing.T) {
	m := dist.Model{DatasetSize: 1000, GradientBytes: 1 << 30, Alpha: 1}
	// 2 GiB over 1 GiB/s = 2 s.
	got := m.AllReduceTime(1 << 30)
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("allreduce time %v, want 2", got)
	}
	m.Alpha = 0.5
	if math.Abs(m.AllReduceTime(1<<30)-4) > 1e-9 {
		t.Fatal("alpha not applied")
	}
}

func TestEpochTimePipelining(t *testing.T) {
	m := dist.Model{DatasetSize: 100, GradientBytes: 1000, Alpha: 1}
	st := dist.StepTimes{BatchSize: 10, Forward: 1, Backward: 3}
	// Fast network: communication (2*1000/1e9 ~ 0) hides behind backward.
	fast, err := m.EpochTime(st, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast-10*(1+3)) > 1e-6 {
		t.Fatalf("fast-network epoch %v, want 40", fast)
	}
	// Slow network: communication dominates the backward pass.
	slow, err := m.EpochTime(st, 100) // 2*1000/100 = 20 s per step
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slow-10*(1+20)) > 1e-6 {
		t.Fatalf("slow-network epoch %v, want 210", slow)
	}
}

// TestSpeedupMonotonicity: the larger-batch configuration helps most at
// low bandwidth and the advantage decays to the compute ratio as
// bandwidth grows — the Figure 11 shape.
func TestSpeedupMonotonicity(t *testing.T) {
	m := dist.Model{DatasetSize: 1_281_167, GradientBytes: 574 << 20, Alpha: 0.8}
	// Split-CNN: 6x batch, slightly slower per-sample compute.
	base := dist.StepTimes{BatchSize: 64, Forward: 0.22, Backward: 0.42}
	split := dist.StepTimes{BatchSize: 384, Forward: 6 * 0.225, Backward: 6 * 0.43}
	var prev float64 = math.Inf(1)
	for _, gbit := range []float64{0.5, 1, 2, 4, 8, 16, 32} {
		s, err := m.Speedup(base, split, dist.GbitToBytes(gbit))
		if err != nil {
			t.Fatal(err)
		}
		if s > prev+1e-9 {
			t.Fatalf("speedup increased with bandwidth: %v at %v Gbit/s", s, gbit)
		}
		prev = s
	}
	lo, _ := m.Speedup(base, split, dist.GbitToBytes(0.5))
	hi, _ := m.Speedup(base, split, dist.GbitToBytes(32))
	if lo < 2 {
		t.Fatalf("low-bandwidth speedup %v, want > 2", lo)
	}
	if hi > lo {
		t.Fatal("speedup should shrink at high bandwidth")
	}
}

func TestEpochTimeValidation(t *testing.T) {
	m := dist.Model{DatasetSize: 10, GradientBytes: 10, Alpha: 0.8}
	if _, err := m.EpochTime(dist.StepTimes{BatchSize: 0}, 1e9); err == nil {
		t.Fatal("zero batch accepted")
	}
	if _, err := m.EpochTime(dist.StepTimes{BatchSize: 1}, 0); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	m.Alpha = 1.5
	if _, err := m.EpochTime(dist.StepTimes{BatchSize: 1}, 1e9); err == nil {
		t.Fatal("alpha > 1 accepted")
	}
}

func TestGbitToBytes(t *testing.T) {
	if dist.GbitToBytes(8) != 1e9 {
		t.Fatal("8 Gbit/s should be 1 GB/s")
	}
}
