// This file is the analytical half of the package: the
// distributed-training projection model of §6.4 — epoch time under
// bandwidth-bound gradient aggregation, using the allreduce lower bound
// of Patarasuk & Yuan (2|G|/B_min), with backward computation pipelined
// against communication. Split-CNN accelerates distributed training
// purely by enabling larger per-node batch sizes, which reduces the
// number of parameter updates per epoch.
package dist

import "fmt"

// Model holds the measured single-node quantities the projection needs.
type Model struct {
	// DatasetSize is |D|, the number of training samples per epoch.
	DatasetSize int
	// GradientBytes is |G|, the byte size of one gradient exchange.
	GradientBytes int64
	// Alpha is the bandwidth utilization efficiency coefficient
	// (the paper evaluates an optimistic 0.8).
	Alpha float64
}

// StepTimes carries per-minibatch forward/backward compute times for a
// given batch size (measured on the device simulator).
type StepTimes struct {
	BatchSize         int
	Forward, Backward float64
}

// AllReduceTime returns the lower-bound gradient aggregation time
// 2|G| / (α·B) for link bandwidth B in bytes/s.
func (m Model) AllReduceTime(bandwidth float64) float64 {
	return 2 * float64(m.GradientBytes) / (m.Alpha * bandwidth)
}

// EpochTime evaluates the paper's T_epoch formula:
//
//	T_epoch = |D|/N · (T_fwd + max(T_bwd, 2|G|/(α·B_min)))
//
// Communication overlaps (pipelines with) the backward pass, hence the
// max. bandwidth is in bytes/s.
func (m Model) EpochTime(st StepTimes, bandwidth float64) (float64, error) {
	if st.BatchSize <= 0 {
		return 0, fmt.Errorf("dist: batch size %d", st.BatchSize)
	}
	if bandwidth <= 0 || m.Alpha <= 0 || m.Alpha > 1 {
		return 0, fmt.Errorf("dist: bandwidth %v / alpha %v invalid", bandwidth, m.Alpha)
	}
	steps := float64(m.DatasetSize) / float64(st.BatchSize)
	return steps * (st.Forward + max(st.Backward, m.AllReduceTime(bandwidth))), nil
}

// Speedup returns T_epoch(baseline)/T_epoch(split) at the given
// bandwidth — the quantity Figure 11 plots against network bandwidth.
func (m Model) Speedup(baseline, split StepTimes, bandwidth float64) (float64, error) {
	tb, err := m.EpochTime(baseline, bandwidth)
	if err != nil {
		return 0, err
	}
	ts, err := m.EpochTime(split, bandwidth)
	if err != nil {
		return 0, err
	}
	return tb / ts, nil
}

// GbitToBytes converts Gbit/s to bytes/s (the paper's x-axis runs from
// 0.5 to 32 Gbit/s).
func GbitToBytes(gbit float64) float64 { return gbit * 1e9 / 8 }
