package dist

import (
	"errors"
	"testing"
	"time"
)

func TestEstimateSkewRecoversSyntheticOffset(t *testing.T) {
	// A remote clock running exactly 1h ahead, read with a small fake
	// service delay: the estimate must land within RTT/2 of the truth.
	const skew = time.Hour
	ping := func() (time.Time, error) {
		time.Sleep(200 * time.Microsecond) // request leg
		remote := time.Now().Add(skew)
		time.Sleep(200 * time.Microsecond) // response leg
		return remote, nil
	}
	est, err := EstimateSkew(5, ping)
	if err != nil {
		t.Fatal(err)
	}
	if est.RTT <= 0 {
		t.Fatalf("RTT = %v, want > 0", est.RTT)
	}
	diff := est.Offset - skew
	if diff < 0 {
		diff = -diff
	}
	if diff > est.Uncertainty()+time.Millisecond {
		t.Fatalf("offset error %v exceeds uncertainty %v", diff, est.Uncertainty())
	}
}

func TestEstimateSkewNegativeOffset(t *testing.T) {
	const skew = -30 * time.Minute
	est, err := EstimateSkew(3, func() (time.Time, error) {
		return time.Now().Add(skew), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	diff := est.Offset - skew
	if diff < 0 {
		diff = -diff
	}
	if diff > est.Uncertainty()+time.Millisecond {
		t.Fatalf("offset error %v exceeds uncertainty %v", diff, est.Uncertainty())
	}
}

func TestEstimateSkewKeepsMinRTTSample(t *testing.T) {
	// Probes alternate between a clean path and one with heavy queueing
	// delay on the response leg (which biases the midpoint); the
	// min-RTT rule must pick the clean sample.
	i := 0
	est, err := EstimateSkew(6, func() (time.Time, error) {
		i++
		remote := time.Now()
		if i%2 == 0 {
			time.Sleep(5 * time.Millisecond) // asymmetric response delay
		}
		return remote, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.RTT >= 5*time.Millisecond {
		t.Fatalf("kept a queued sample: RTT = %v", est.RTT)
	}
	diff := est.Offset
	if diff < 0 {
		diff = -diff
	}
	if diff > est.Uncertainty()+time.Millisecond {
		t.Fatalf("offset %v exceeds uncertainty %v", est.Offset, est.Uncertainty())
	}
}

func TestEstimateSkewToleratesPartialFailure(t *testing.T) {
	i := 0
	est, err := EstimateSkew(4, func() (time.Time, error) {
		i++
		if i < 4 {
			return time.Time{}, errors.New("transient")
		}
		return time.Now(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.RTT < 0 {
		t.Fatal("no sample kept")
	}

	if _, err := EstimateSkew(3, func() (time.Time, error) {
		return time.Time{}, errors.New("down")
	}); err == nil {
		t.Fatal("want error when every probe fails")
	}
}
