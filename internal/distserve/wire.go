package distserve

import (
	"splitcnn/internal/buildinfo"
	"splitcnn/internal/trace"
)

// Wire types for the Shard RPC service (net/rpc over TCP, gob-encoded).
// Six methods:
//
//	Shard.Eval    router → worker   evaluate one shard of one request
//	Shard.Halo    worker → worker   fetch boundary rows of an earlier stage
//	Shard.Health  router → worker   liveness + capacity + model signature
//	Shard.Clock   router → worker   read the worker's wall clock (skew probe)
//	Shard.Spans   router → worker   harvest a sampled request's stage spans
//	Shard.Metrics router → worker   snapshot the worker's metrics registry
//
// Request identity is attempt-scoped: the router mints a fresh ReqID
// per retry attempt, so halo rows published by a failed gang can never
// be consumed by its replacement.

// TraceContext is the trace state the router propagates inside Eval so
// worker-side spans can be stitched under the router's request span.
// The zero value means "unsampled": workers record nothing.
type TraceContext struct {
	// ID is the router's request trace ID (attempt-less); it rides into
	// every harvested span's args so one stitched timeline can be
	// filtered to one request.
	ID string
	// Sampled marks the request as trace-sampled at the router; workers
	// bank their stage spans for later harvest via Shard.Spans.
	Sampled bool
	// Parent names the router-side span worker spans parent under.
	Parent string
	// Attempt is the router's retry attempt index (0-based).
	Attempt int
}

// EvalArgs asks a worker to evaluate shard Shard of a Shards-wide gang.
type EvalArgs struct {
	// ReqID uniquely names this (request, attempt); it keys the halo
	// exchange on every gang member.
	ReqID string
	// Model is the router's plan signature; the worker rejects
	// mismatches before touching the exchange.
	Model string
	// Shard / Gang: this worker computes band Shard of len(Gang) and
	// fetches halos from Gang[i] (its own address included, unused).
	Shard int
	Gang  []string
	// TimeoutMs is the remaining request budget; every internal wait is
	// bounded by it.
	TimeoutMs int64
	// Rows holds image rows [RowLo, RowHi) in NCHW row-band layout
	// (C contiguous blocks of (RowHi−RowLo)×W floats) — exactly the
	// band Plan.ImageRange assigns this shard.
	RowLo, RowHi int
	Rows         []float32
	// Trace propagates the router's sampling decision and span parent.
	Trace TraceContext
}

// EvalReply carries the shard's band of the final prefix stage.
type EvalReply struct {
	// RowLo/RowHi is the band of final-stage output rows (may be empty
	// for small feature maps sharded wide).
	RowLo, RowHi int
	// Data is the band in NCHW row-band layout (C × rows × W).
	Data []float32
	// Stages echoes the evaluated stage count (router sanity check).
	Stages int
}

// HaloArgs requests rows [Lo, Hi) of stage Stage's output for request
// ReqID. The receiving worker blocks (up to TimeoutMs) until its own
// evaluation publishes that stage.
type HaloArgs struct {
	ReqID     string
	Stage     int
	Lo, Hi    int
	TimeoutMs int64
	// Sampled asks the serving worker to bank a halo_serve span for this
	// request (set when the fetching side's Eval carried a sampled
	// TraceContext).
	Sampled bool
}

// HaloReply carries the rows in NCHW row-band layout.
type HaloReply struct {
	Data []float32
}

// HealthArgs is empty; the method exists to probe liveness.
type HealthArgs struct{}

// HealthReply reports worker identity and capacity for the router's
// health loop and least-loaded dispatch.
type HealthReply struct {
	// Model is the worker's plan signature; routers eject workers whose
	// signature differs from their own (wrong arch or stale weights).
	Model string
	// InFlight / MaxPods: current and maximum concurrent shard
	// evaluations (the per-pod capacity limit).
	InFlight int
	MaxPods  int
	// Counters since start, for /v1/workers introspection.
	Requests     uint64
	HaloRequests uint64
	HaloBytes    uint64
	UptimeSec    float64
	// Build identifies the worker binary (version/commit), so mixed-
	// version gangs are detectable from /v1/workers at a glance.
	Build buildinfo.Info
}

// ClockArgs is empty; the method reads the worker's wall clock.
type ClockArgs struct{}

// ClockReply carries the worker's wall-clock reading, taken as close to
// the RPC service point as possible. The router converts it with
// dist.EstimateSkew into a per-worker offset.
type ClockReply struct {
	UnixNano int64
}

// WireSpan is one worker-recorded stage span in worker-local wall time.
// Parent names the span it nests under: another WireSpan's Name, or a
// router-side span name for cross-process roots ("shard_eval" parents
// under the router's scatter_gather).
type WireSpan struct {
	Name          string
	Parent        string
	StartUnixNano int64
	EndUnixNano   int64
}

// SpansArgs asks for the banked spans of one sampled (request, attempt).
type SpansArgs struct {
	ReqID string
}

// SpansReply returns the banked spans, consuming them. Found is false
// when the worker never saw the request or its bank entry was evicted.
type SpansReply struct {
	Found bool
	Shard int
	Spans []WireSpan
}

// MetricsArgs is empty; the method snapshots the worker's registry.
type MetricsArgs struct{}

// MetricsReply carries one tear-free snapshot of the worker's metrics
// registry for federation into the router's /clusterz.
type MetricsReply struct {
	Snap trace.Snapshot
}

// bandLen returns the float count of a C-channel row band.
func bandLen(c, rows, w int) int { return c * rows * w }
