package distserve

// Wire types for the Shard RPC service (net/rpc over TCP, gob-encoded).
// Three methods:
//
//	Shard.Eval   router → worker   evaluate one shard of one request
//	Shard.Halo   worker → worker   fetch boundary rows of an earlier stage
//	Shard.Health router → worker   liveness + capacity + model signature
//
// Request identity is attempt-scoped: the router mints a fresh ReqID
// per retry attempt, so halo rows published by a failed gang can never
// be consumed by its replacement.

// EvalArgs asks a worker to evaluate shard Shard of a Shards-wide gang.
type EvalArgs struct {
	// ReqID uniquely names this (request, attempt); it keys the halo
	// exchange on every gang member.
	ReqID string
	// Model is the router's plan signature; the worker rejects
	// mismatches before touching the exchange.
	Model string
	// Shard / Gang: this worker computes band Shard of len(Gang) and
	// fetches halos from Gang[i] (its own address included, unused).
	Shard int
	Gang  []string
	// TimeoutMs is the remaining request budget; every internal wait is
	// bounded by it.
	TimeoutMs int64
	// Rows holds image rows [RowLo, RowHi) in NCHW row-band layout
	// (C contiguous blocks of (RowHi−RowLo)×W floats) — exactly the
	// band Plan.ImageRange assigns this shard.
	RowLo, RowHi int
	Rows         []float32
}

// EvalReply carries the shard's band of the final prefix stage.
type EvalReply struct {
	// RowLo/RowHi is the band of final-stage output rows (may be empty
	// for small feature maps sharded wide).
	RowLo, RowHi int
	// Data is the band in NCHW row-band layout (C × rows × W).
	Data []float32
	// Stages echoes the evaluated stage count (router sanity check).
	Stages int
}

// HaloArgs requests rows [Lo, Hi) of stage Stage's output for request
// ReqID. The receiving worker blocks (up to TimeoutMs) until its own
// evaluation publishes that stage.
type HaloArgs struct {
	ReqID     string
	Stage     int
	Lo, Hi    int
	TimeoutMs int64
}

// HaloReply carries the rows in NCHW row-band layout.
type HaloReply struct {
	Data []float32
}

// HealthArgs is empty; the method exists to probe liveness.
type HealthArgs struct{}

// HealthReply reports worker identity and capacity for the router's
// health loop and least-loaded dispatch.
type HealthReply struct {
	// Model is the worker's plan signature; routers eject workers whose
	// signature differs from their own (wrong arch or stale weights).
	Model string
	// InFlight / MaxPods: current and maximum concurrent shard
	// evaluations (the per-pod capacity limit).
	InFlight int
	MaxPods  int
	// Counters since start, for /v1/workers introspection.
	Requests     uint64
	HaloRequests uint64
	HaloBytes    uint64
	UptimeSec    float64
}

// bandLen returns the float count of a C-channel row band.
func bandLen(c, rows, w int) int { return c * rows * w }
