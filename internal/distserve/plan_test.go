package distserve

import (
	"strings"
	"testing"

	"splitcnn/internal/models"
	"splitcnn/internal/serve"
	"splitcnn/internal/tensor"
)

func TestPartitionInvariants(t *testing.T) {
	for h := 0; h <= 64; h++ {
		for n := 1; n <= 8; n++ {
			parts := Partition(h, n)
			if len(parts) != n {
				t.Fatalf("Partition(%d,%d): %d ranges", h, n, len(parts))
			}
			covered := 0
			for i, r := range parts {
				if r.Lo > r.Hi {
					t.Fatalf("Partition(%d,%d)[%d] inverted: %v", h, n, i, r)
				}
				if i == 0 && r.Lo != 0 {
					t.Fatalf("Partition(%d,%d) starts at %d", h, n, r.Lo)
				}
				if i > 0 && r.Lo != parts[i-1].Hi {
					t.Fatalf("Partition(%d,%d) gap at %d: %v then %v", h, n, i, parts[i-1], r)
				}
				if i > 0 && !r.Empty() && r.Lo%2 != 0 {
					t.Fatalf("Partition(%d,%d)[%d] interior start %d is odd (Winograd tile misalignment)", h, n, i, r.Lo)
				}
				covered += r.Len()
			}
			if parts[n-1].Hi != h || covered != h {
				t.Fatalf("Partition(%d,%d) covers %d rows ending at %d", h, n, covered, parts[n-1].Hi)
			}
		}
	}
}

// TestInputRangeBruteForce checks the closed-form halo interval against
// a direct enumeration of the input rows each output row's window reads.
func TestInputRangeBruteForce(t *testing.T) {
	geoms := []tensor.ConvParams{
		{KH: 3, KW: 3, SH: 1, SW: 1, Pad: tensor.Symmetric(1)},
		{KH: 3, KW: 3, SH: 2, SW: 2, Pad: tensor.Symmetric(1)},
		{KH: 5, KW: 5, SH: 1, SW: 1, Pad: tensor.Symmetric(2)},
		{KH: 11, KW: 11, SH: 4, SW: 4, Pad: tensor.Symmetric(2)},
		{KH: 2, KW: 2, SH: 2, SW: 2, Pad: tensor.Pad2D{}},
		{KH: 7, KW: 7, SH: 2, SW: 2, Pad: tensor.Pad2D{Top: 3, Bottom: 2, Left: 3, Right: 2}},
	}
	for _, g := range geoms {
		inH := 37
		outH, _ := g.OutSize(inH, inH)
		if outH < 2 {
			t.Fatalf("geometry %+v too small for inH=%d", g, inH)
		}
		st := &Stage{win: g, windowed: true, InH: inH}
		for lo := 0; lo < outH; lo++ {
			for hi := lo + 1; hi <= outH; hi++ {
				got := st.InputRange(Range{lo, hi})
				// Output row r reads virtual input rows
				// [r·SH − padTop, r·SH − padTop + KH).
				wantLo := lo*g.SH - g.Pad.Top
				wantHi := (hi-1)*g.SH - g.Pad.Top + g.KH
				if got.Lo != wantLo || got.Hi != wantHi {
					t.Fatalf("geom %+v out [%d,%d): got %v want [%d,%d)", g, lo, hi, got, wantLo, wantHi)
				}
			}
		}
	}
}

// testSpec returns a small serve.Spec for an architecture, sized so the
// suite stays fast: 32x32 inputs except AlexNet, whose 11x11/4 stem
// needs more rows.
func testSpec(arch string) serve.Spec {
	h := 32
	if arch == "alexnet" {
		h = 64
	}
	return serve.Spec{
		Name: arch, Arch: arch, MaxBatch: 1,
		Model: models.Config{
			Classes: 10, InputC: 3, InputH: h, InputW: h, WidthDiv: 16,
		},
	}
}

func TestNewPlanAllArchitectures(t *testing.T) {
	for _, arch := range []string{"alexnet", "vgg16", "vgg19", "resnet18", "resnet50"} {
		t.Run(arch, func(t *testing.T) {
			m, _, err := serve.Materialize(testSpec(arch))
			if err != nil {
				t.Fatal(err)
			}
			p, err := NewPlan(m)
			if err != nil {
				t.Fatal(err)
			}
			if len(p.Stages) == 0 {
				t.Fatal("empty plan")
			}
			if p.Tail != p.Stages[len(p.Stages)-1].Name {
				t.Fatalf("Tail %q != last stage %q", p.Tail, p.Stages[len(p.Stages)-1].Name)
			}
			if !strings.Contains(p.Signature(""), "|snap=") {
				t.Fatalf("signature missing snapshot field: %s", p.Signature(""))
			}
			// Chained geometry: each stage's input is the previous
			// stage's output.
			prevC, prevH, prevW := p.InC, p.InH, p.InW
			for _, st := range p.Stages {
				if st.InC != prevC || st.InH != prevH || st.InW != prevW {
					t.Fatalf("stage %s input %dx%dx%d, previous output %dx%dx%d",
						st.Name, st.InC, st.InH, st.InW, prevC, prevH, prevW)
				}
				prevC, prevH, prevW = st.OutC, st.OutH, st.OutW
			}
			// Ownership tables cover every stage at every gang width.
			for n := 1; n <= 6; n++ {
				owners := p.Owners(n)
				for i, st := range p.Stages {
					total := 0
					for _, r := range owners[i] {
						total += r.Len()
					}
					if total != st.OutH {
						t.Fatalf("n=%d stage %s: owners cover %d of %d rows", n, st.Name, total, st.OutH)
					}
				}
				// Scattering the image bands covers at least the full image
				// (bands overlap by design: each shard gets its halo rows).
				seen := make([]bool, p.InH)
				for s := 0; s < n; s++ {
					r := p.ImageRange(owners, s)
					for row := r.Lo; row < r.Hi; row++ {
						seen[row] = true
					}
				}
				for row, ok := range seen {
					if !ok {
						t.Fatalf("n=%d: image row %d scattered to no shard", n, row)
					}
				}
			}
			t.Logf("%s: %d shardable stages, tail %q", arch, len(p.Stages), p.Tail)
		})
	}
}

// TestSignatureDistinguishesModels: two different geometries must never
// produce the same signature, and the snapshot fingerprint must be part
// of it.
func TestSignatureDistinguishesModels(t *testing.T) {
	m1, _, err := serve.Materialize(testSpec("vgg16"))
	if err != nil {
		t.Fatal(err)
	}
	m2, _, err := serve.Materialize(testSpec("vgg19"))
	if err != nil {
		t.Fatal(err)
	}
	p1, err := NewPlan(m1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPlan(m2)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Signature("") == p2.Signature("") {
		t.Fatal("vgg16 and vgg19 share a signature")
	}
	if p1.Signature("aaaa") == p1.Signature("bbbb") {
		t.Fatal("signature ignores the snapshot fingerprint")
	}
}
