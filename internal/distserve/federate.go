package distserve

import (
	"fmt"
	"html"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"splitcnn/internal/trace"
)

// Metrics federation: the router scrapes every healthy worker's
// registry (Shard.Metrics) at request time and aggregates the snapshots
// into /clusterz — per-worker series plus cluster rollups. Three
// renderings share one collection pass: HTML (default), Prometheus text
// (?format=prom, per-worker samples labeled worker="addr" and rollups
// unlabeled), and JSON (?format=json, the raw snapshots — what the
// consistency tests compare against).

// clusterView is one collection pass over the fleet.
type clusterView struct {
	// Workers holds each reachable worker's snapshot, keyed by address.
	Workers map[string]trace.Snapshot `json:"workers"`
	// Unreachable lists workers that did not answer the scrape.
	Unreachable []string `json:"unreachable,omitempty"`
	// Cluster is the rollup registry snapshot (cluster.* gauges).
	Cluster trace.Snapshot `json:"cluster"`
}

// collectCluster fans Shard.Metrics out to every healthy worker and
// computes the rollups. Worker scrape failures degrade to the
// Unreachable list — a dead worker can't take /clusterz down.
func (rt *Router) collectCluster() clusterView {
	type target struct {
		addr       string
		healthy    bool
		inflight   int64
		maxPods    int
		dispatched uint64
	}
	rt.mu.Lock()
	targets := make([]target, 0, len(rt.workers))
	for _, ws := range rt.workers {
		targets = append(targets, target{
			addr: ws.addr, healthy: ws.healthy,
			inflight: ws.inflight.Load(), maxPods: ws.maxPods,
			dispatched: ws.dispatched.Load(),
		})
	}
	rt.mu.Unlock()

	snaps := make([]trace.Snapshot, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		if !t.healthy {
			errs[i] = fmt.Errorf("unhealthy")
			continue
		}
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			var mr MetricsReply
			if err := rt.pool.Call(addr, "Shard.Metrics", &MetricsArgs{}, &mr, time.Second); err != nil {
				errs[i] = err
				return
			}
			snaps[i] = mr.Snap
		}(i, t.addr)
	}
	wg.Wait()

	view := clusterView{Workers: map[string]trace.Snapshot{}}
	roll := trace.NewMetrics()
	var sumInflight, sumPods int64
	var healthy int
	var workerRequests, routerDispatched uint64
	consistent := true
	haloWait := trace.HistogramSnapshot{}
	stageSecs := trace.HistogramSnapshot{}
	reqMem := trace.HistogramSnapshot{}
	var sumHeap, maxHeap, sumHeapSys float64
	for i, t := range targets {
		sumInflight += t.inflight
		sumPods += int64(t.maxPods)
		if errs[i] != nil {
			view.Unreachable = append(view.Unreachable, t.addr)
			continue
		}
		healthy++
		view.Workers[t.addr] = snaps[i]
		// Consistency rollup over the *reachable* set only: dead or
		// ejected workers can neither report nor be dispatched to, so
		// restricting both sides to reachable workers keeps the
		// invariant meaningful through crashes.
		workerRequests += uint64(snaps[i].Counters["dist.worker.requests"])
		routerDispatched += t.dispatched
		if h, ok := snaps[i].Histograms["dist.worker.halo_wait_seconds"]; ok {
			if m, err := haloWait.Merge(h); err == nil {
				haloWait = m
			}
		}
		if h, ok := snaps[i].Histograms["dist.worker.stage_seconds"]; ok {
			if m, err := stageSecs.Merge(h); err == nil {
				stageSecs = m
			}
		}
		if h, ok := snaps[i].Histograms["dist.worker.request_mem_bytes"]; ok {
			if m, err := reqMem.Merge(h); err == nil {
				reqMem = m
			}
		}
		// Fleet memory rollup from each worker's runtime sampler gauges.
		heap := snaps[i].Gauges["runtime.heap_alloc_bytes"]
		sumHeap += heap
		if heap > maxHeap {
			maxHeap = heap
		}
		sumHeapSys += snaps[i].Gauges["runtime.heap_sys_bytes"]
		// In-flight dispatches are counted on the router side the
		// moment the reply lands, but on the worker side when the eval
		// *starts* — so mid-load the worker side may run ahead, never
		// behind.
		if uint64(snaps[i].Counters["dist.worker.requests"]) < t.dispatched {
			consistent = false
		}
	}

	roll.Gauge("cluster.workers").Set(float64(len(targets)))
	roll.Gauge("cluster.workers_reachable").Set(float64(healthy))
	if sumPods > 0 {
		roll.Gauge("cluster.gang_occupancy").Set(float64(sumInflight) / float64(sumPods))
	}
	roll.Gauge("cluster.worker_requests_total").Set(float64(workerRequests))
	roll.Gauge("cluster.router_dispatches_total").Set(float64(routerDispatched))
	if !consistent || workerRequests < routerDispatched {
		consistent = false
	}
	roll.Gauge("cluster.requests_consistent").Set(b2f(consistent))
	roll.Gauge("cluster.halo_wait_p50_seconds").Set(haloWait.Quantile(0.5))
	roll.Gauge("cluster.halo_wait_p99_seconds").Set(haloWait.Quantile(0.99))
	roll.Gauge("cluster.stage_p50_seconds").Set(stageSecs.Quantile(0.5))
	roll.Gauge("cluster.stage_p99_seconds").Set(stageSecs.Quantile(0.99))
	// Fleet-wide memory: total and hottest-worker heap (from each
	// worker's runtime sampler) plus the merged per-request transfer
	// footprint distribution.
	roll.Gauge("cluster.mem.heap_alloc_bytes_total").Set(sumHeap)
	roll.Gauge("cluster.mem.heap_alloc_bytes_max_worker").Set(maxHeap)
	roll.Gauge("cluster.mem.heap_sys_bytes_total").Set(sumHeapSys)
	roll.Gauge("cluster.mem.request_bytes_p50").Set(reqMem.Quantile(0.5))
	roll.Gauge("cluster.mem.request_bytes_p99").Set(reqMem.Quantile(0.99))
	fwd := rt.met.Histogram("dist.shard_forward_seconds", trace.LatencyBuckets)
	roll.Gauge("cluster.shard_forward_p50_seconds").Set(fwd.Quantile(0.5))
	roll.Gauge("cluster.shard_forward_p99_seconds").Set(fwd.Quantile(0.99))
	strag := rt.met.Histogram("dist.straggler_ratio", stragglerBuckets)
	roll.Gauge("cluster.straggler_p50").Set(strag.Quantile(0.5))
	roll.Gauge("cluster.straggler_p99").Set(strag.Quantile(0.99))
	view.Cluster = roll.Snapshot()
	return view
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// handleClusterz serves the federated cluster view.
func (rt *Router) handleClusterz(w http.ResponseWriter, r *http.Request) {
	view := rt.collectCluster()
	format := r.URL.Query().Get("format")
	if format == "" && strings.Contains(r.Header.Get("Accept"), "text/plain") {
		format = "prom"
	}
	switch format {
	case "prom", "text":
		parts := []trace.LabeledSnapshot{{Snap: view.Cluster}}
		addrs := make([]string, 0, len(view.Workers))
		for addr := range view.Workers {
			addrs = append(addrs, addr)
		}
		sort.Strings(addrs)
		for _, addr := range addrs {
			parts = append(parts, trace.LabeledSnapshot{
				Labels: map[string]string{"worker": addr},
				Snap:   view.Workers[addr],
			})
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		trace.WritePrometheusParts(w, parts)
	case "json":
		writeJSON(w, http.StatusOK, view)
	default:
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		renderClusterHTML(w, view)
	}
}

// renderClusterHTML is a dependency-free one-page view: rollups first,
// then one column per worker of its headline counters.
func renderClusterHTML(w http.ResponseWriter, view clusterView) {
	fmt.Fprint(w, "<!doctype html><html><head><meta charset=\"utf-8\"><title>clusterz</title>",
		"<style>body{font:14px system-ui;margin:2em}table{border-collapse:collapse}",
		"td,th{border:1px solid #ccc;padding:4px 10px;text-align:right}",
		"th{background:#f2f2f2}td:first-child,th:first-child{text-align:left}</style>",
		"</head><body><h1>Cluster metrics</h1>")

	fmt.Fprint(w, "<h2>Rollups</h2><table><tr><th>gauge</th><th>value</th></tr>")
	keys := make([]string, 0, len(view.Cluster.Gauges))
	for k := range view.Cluster.Gauges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "<tr><td>%s</td><td>%g</td></tr>", html.EscapeString(k), view.Cluster.Gauges[k])
	}
	fmt.Fprint(w, "</table>")

	addrs := make([]string, 0, len(view.Workers))
	for addr := range view.Workers {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	headline := []string{
		"dist.worker.requests", "dist.worker.halo_requests",
		"dist.worker.capacity_rejects", "dist.worker.errors",
	}
	fmt.Fprint(w, "<h2>Workers</h2><table><tr><th>counter</th>")
	for _, addr := range addrs {
		fmt.Fprintf(w, "<th>%s</th>", html.EscapeString(addr))
	}
	fmt.Fprint(w, "</tr>")
	for _, name := range headline {
		fmt.Fprintf(w, "<tr><td>%s</td>", html.EscapeString(name))
		for _, addr := range addrs {
			fmt.Fprintf(w, "<td>%d</td>", view.Workers[addr].Counters[name])
		}
		fmt.Fprint(w, "</tr>")
	}
	fmt.Fprint(w, "</table>")
	if len(view.Unreachable) > 0 {
		fmt.Fprintf(w, "<p>Unreachable: %s</p>", html.EscapeString(strings.Join(view.Unreachable, ", ")))
	}
	fmt.Fprint(w, "</body></html>")
}
