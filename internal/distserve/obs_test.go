package distserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"splitcnn/internal/serve"
	"splitcnn/internal/trace"
)

// TestStitchedTraceE2E is the tentpole acceptance check: a sampled
// request through a 4-worker gang yields ONE stitched timeline on
// /tracez — router spans plus every worker's stage spans, skew-
// corrected, every child nested within its parent's interval.
func TestStitchedTraceE2E(t *testing.T) {
	spec := testSpec("vgg16")
	rng := rand.New(rand.NewSource(7))
	img := make([]float32, 3*spec.Model.InputH*spec.Model.InputW)
	for i := range img {
		img[i] = rng.Float32()
	}
	rt, workers, base := startFleet(t, spec, 4, WorkerConfig{},
		RouterOptions{RequestTimeout: 30 * time.Second, TraceSample: 1})
	if len(workers) != 4 {
		t.Fatal("fleet size")
	}

	status, pr, msg := postPredict(t, base, serve.PredictRequest{Image: img})
	if status != http.StatusOK {
		t.Fatalf("predict: %d %s", status, msg)
	}
	if pr.BatchSize != 4 {
		t.Fatalf("gang width %d, want 4", pr.BatchSize)
	}

	// The first HTTP request's trace ID.
	const reqID = "http-000001"
	spans := StitchedFromEvents(rt.Tracer().Trace().Events(), reqID)
	if len(spans) == 0 {
		t.Fatal("no stitched spans on the tracer")
	}

	// Re-verify the exported timeline independently of the router's own
	// verification pass.
	if err := VerifyStitched(spans); err != nil {
		t.Fatalf("exported timeline fails verification: %v", err)
	}
	if got := rt.Metrics().Counter("dist.stitch_errors").Value(); got != 0 {
		t.Fatalf("dist.stitch_errors = %d, want 0", got)
	}

	// One row per process: the router plus all 4 workers.
	procs := map[string]int{}
	byProcName := map[string]bool{}
	for _, s := range spans {
		procs[s.Process]++
		byProcName[s.Process+"/"+s.Name] = true
	}
	if procs["router"] == 0 {
		t.Fatal("no router row")
	}
	workerRows := 0
	for p := range procs {
		if strings.HasPrefix(p, "shard") {
			workerRows++
		}
	}
	if workerRows != 4 {
		t.Fatalf("stitched timeline has %d worker rows, want 4 (processes: %v)", workerRows, procs)
	}

	// Router lanes all present.
	for _, name := range []string{"request", "admit", "scatter_gather", "gather", "tail", "respond"} {
		if !byProcName["router/"+name] {
			t.Fatalf("router span %q missing", name)
		}
	}
	// Every worker row carries its shard_eval root and at least one
	// stage span; interior shards also wait on halos.
	for i, w := range workers {
		_ = i
		found := false
		for p := range procs {
			if strings.HasSuffix(p, w.Addr()) {
				found = true
				var hasEval, hasStage bool
				for _, s := range spans {
					if s.Process != p {
						continue
					}
					switch {
					case s.Name == "shard_eval":
						hasEval = true
					case strings.HasPrefix(s.Name, "stage:"):
						hasStage = true
					}
				}
				if !hasEval || !hasStage {
					t.Fatalf("row %s: shard_eval=%v stage=%v", p, hasEval, hasStage)
				}
			}
		}
		if !found {
			t.Fatalf("worker %s has no timeline row", w.Addr())
		}
	}
	// Halo traffic must be visible somewhere: vgg16 interior shards
	// both wait on and serve halo rows.
	var hasWait, hasServe bool
	for _, s := range spans {
		if strings.HasPrefix(s.Name, "halo_wait:") {
			hasWait = true
		}
		if strings.HasPrefix(s.Name, "halo_serve:") {
			hasServe = true
		}
	}
	if !hasWait || !hasServe {
		t.Fatalf("halo spans missing from timeline (wait=%v serve=%v)", hasWait, hasServe)
	}

	// /tracez serves the same events over HTTP.
	resp, err := http.Get(base + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []trace.Event
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	if got := len(StitchedFromEvents(events, reqID)); got != len(spans) {
		t.Fatalf("/tracez returned %d stitched spans, tracer holds %d", got, len(spans))
	}
}

// TestClusterzConsistency: after a drained load burst, the /clusterz
// rollups must match the per-worker registries exactly — sum of worker
// request counters == sum of router dispatch counters — and the
// Prometheus rendering must carry per-worker labeled series.
func TestClusterzConsistency(t *testing.T) {
	spec := testSpec("resnet18")
	rng := rand.New(rand.NewSource(11))
	img := make([]float32, 3*spec.Model.InputH*spec.Model.InputW)
	for i := range img {
		img[i] = rng.Float32()
	}
	rt, workers, base := startFleet(t, spec, 3,
		WorkerConfig{}, RouterOptions{RequestTimeout: 30 * time.Second})

	const reqs = 5
	for i := 0; i < reqs; i++ {
		if status, _, msg := postPredict(t, base, serve.PredictRequest{Image: img}); status != http.StatusOK {
			t.Fatalf("predict %d: %d %s", i, status, msg)
		}
	}

	resp, err := http.Get(base + "/clusterz?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view clusterView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if len(view.Workers) != 3 || len(view.Unreachable) != 0 {
		t.Fatalf("scraped %d workers (%d unreachable), want 3/0", len(view.Workers), len(view.Unreachable))
	}

	// Exact rollup identity: the cluster gauges are recomputable from
	// the per-worker snapshots in the same payload.
	var workerSum int64
	for addr, snap := range view.Workers {
		n := snap.Counters["dist.worker.requests"]
		if n == 0 {
			t.Fatalf("worker %s served no requests across %d predicts", addr, reqs)
		}
		workerSum += n
	}
	if got := view.Cluster.Gauges["cluster.worker_requests_total"]; got != float64(workerSum) {
		t.Fatalf("rollup worker_requests_total = %v, per-worker sum = %d", got, workerSum)
	}
	// Drained fleet: router-side dispatch mirror agrees exactly.
	if got := view.Cluster.Gauges["cluster.router_dispatches_total"]; got != float64(workerSum) {
		t.Fatalf("router dispatches %v != worker requests %d after drain", got, workerSum)
	}
	if got := view.Cluster.Gauges["cluster.requests_consistent"]; got != 1 {
		t.Fatalf("cluster.requests_consistent = %v, want 1", got)
	}
	if got := rt.Metrics().Counter("dist.dispatches").Value(); got != workerSum {
		t.Fatalf("dist.dispatches = %d, worker sum = %d", got, workerSum)
	}
	if view.Cluster.Gauges["cluster.workers"] != 3 || view.Cluster.Gauges["cluster.workers_reachable"] != 3 {
		t.Fatalf("worker counts: %+v", view.Cluster.Gauges)
	}

	// Prometheus rendering: one labeled series per worker.
	resp2, err := http.Get(base + "/clusterz?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp2.Body)
	prom := buf.String()
	for _, w := range workers {
		series := fmt.Sprintf(`dist_worker_requests{worker=%q}`, w.Addr())
		if !strings.Contains(prom, series) {
			t.Fatalf("prom output missing %s\n%s", series, prom)
		}
	}
	if !strings.Contains(prom, "cluster_requests_consistent 1") {
		t.Fatal("prom output missing unlabeled rollup gauge")
	}
	if strings.Count(prom, "# TYPE dist_worker_requests counter") != 1 {
		t.Fatal("family TYPE line must appear exactly once across workers")
	}
}

// TestClusterzScrapeRace hammers /clusterz (all three formats) while
// predictions are in flight — the scrape-vs-record race the federation
// layer must tolerate (run under -race in make ci).
func TestClusterzScrapeRace(t *testing.T) {
	spec := testSpec("resnet18")
	rng := rand.New(rand.NewSource(13))
	img := make([]float32, 3*spec.Model.InputH*spec.Model.InputW)
	for i := range img {
		img[i] = rng.Float32()
	}
	_, _, base := startFleet(t, spec, 2,
		WorkerConfig{MaxPods: 8}, RouterOptions{RequestTimeout: 30 * time.Second, TraceSample: 1, SLO: "p99=1s,err=1%"})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, path := range []string{"/clusterz", "/clusterz?format=prom", "/clusterz?format=json", "/metricsz"} {
					resp, err := http.Get(base + path)
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("GET %s: %d", path, resp.StatusCode)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 6; i++ {
		if status, _, msg := postPredict(t, base, serve.PredictRequest{Image: img}); status != http.StatusOK {
			t.Fatalf("predict under scrape load: %d %s", status, msg)
		}
	}
	close(stop)
	wg.Wait()
}

// TestWorkersEndpointBuildInfoAndSkew: /v1/workers reports each
// worker's build identity and a clock-skew estimate (near zero for
// same-host workers, but present).
func TestWorkersEndpointBuildInfoAndSkew(t *testing.T) {
	spec := testSpec("resnet18")
	_, _, base := startFleet(t, spec, 2, WorkerConfig{},
		RouterOptions{RequestTimeout: 10 * time.Second})

	resp, err := http.Get(base + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []WorkerInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("workers: %d", len(infos))
	}
	for _, wi := range infos {
		if wi.Build == nil || wi.Build.GoVersion == "" {
			t.Fatalf("worker %s: no build info (%+v)", wi.Addr, wi.Build)
		}
		if wi.ClockRTTSeconds <= 0 {
			t.Fatalf("worker %s: no clock estimate (rtt %v)", wi.Addr, wi.ClockRTTSeconds)
		}
		if wi.ClockSkewSeconds > 1 || wi.ClockSkewSeconds < -1 {
			t.Fatalf("worker %s: implausible same-host skew %vs", wi.Addr, wi.ClockSkewSeconds)
		}
	}
}

// TestSLOGauges: a router started with an SLO publishes burn-rate
// gauges on /metricsz, and a clean fast request burns nothing.
func TestSLOGauges(t *testing.T) {
	spec := testSpec("resnet18")
	rng := rand.New(rand.NewSource(17))
	img := make([]float32, 3*spec.Model.InputH*spec.Model.InputW)
	for i := range img {
		img[i] = rng.Float32()
	}
	_, _, base := startFleet(t, spec, 2, WorkerConfig{},
		RouterOptions{RequestTimeout: 30 * time.Second, SLO: "p99=10s,err=1%"})
	if status, _, msg := postPredict(t, base, serve.PredictRequest{Image: img}); status != http.StatusOK {
		t.Fatalf("predict: %d %s", status, msg)
	}

	resp, err := http.Get(base + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap trace.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	for _, g := range []string{"slo.latency_burn_5m", "slo.error_burn_5m", "slo.latency_burn_1h", "slo.error_burn_1h"} {
		v, ok := snap.Gauges[g]
		if !ok {
			t.Fatalf("gauge %s missing from /metricsz", g)
		}
		if v != 0 {
			t.Fatalf("gauge %s = %v after one clean fast request, want 0", g, v)
		}
	}
	if snap.Gauges["slo.latency_target_seconds"] != 10 {
		t.Fatalf("slo.latency_target_seconds = %v", snap.Gauges["slo.latency_target_seconds"])
	}

	// A bad SLO string must refuse to build a router.
	if _, err := NewRouter(RouterOptions{Spec: spec, Workers: []string{"127.0.0.1:1"}, SLO: "p99=banana"}); err == nil {
		t.Fatal("bad -slo accepted")
	}
}

// TestSpanBank covers the harvest buffer's lifecycle: auto-create on
// early halo, fetch-and-delete, FIFO eviction, expiry sweep.
func TestSpanBank(t *testing.T) {
	b := newSpanBank(2)
	exp := time.Now().Add(time.Minute)

	// Halo span lands before Eval: entry exists but is not harvestable.
	b.add("r1", exp, WireSpan{Name: "halo_serve:s0"})
	if _, _, ok := b.take("r1"); ok {
		t.Fatal("took an unfinished entry")
	}
	b.add("r1", exp, WireSpan{Name: "shard_eval"})
	b.finish("r1", 2)
	shard, spans, ok := b.take("r1")
	if !ok || shard != 2 || len(spans) != 2 {
		t.Fatalf("take: ok=%v shard=%d spans=%d", ok, shard, len(spans))
	}
	if _, _, ok := b.take("r1"); ok {
		t.Fatal("double take")
	}

	// FIFO eviction at capacity 2.
	b.add("a", exp, WireSpan{Name: "x"})
	b.add("b", exp, WireSpan{Name: "x"})
	b.add("c", exp, WireSpan{Name: "x"}) // evicts a
	b.finish("a", 0)
	if _, _, ok := b.take("a"); ok {
		t.Fatal("evicted entry still present")
	}
	b.finish("c", 0)
	if _, _, ok := b.take("c"); !ok {
		t.Fatal("newest entry evicted")
	}

	// drop discards failed attempts.
	b.add("d", exp, WireSpan{Name: "x"})
	b.drop("d")
	b.finish("d", 0)
	if _, _, ok := b.take("d"); ok {
		t.Fatal("dropped entry still present")
	}

	// Expiry sweep.
	b.add("e", time.Now().Add(-time.Second), WireSpan{Name: "x"})
	if n := b.sweep(time.Now()); n != 1 {
		t.Fatalf("sweep dropped %d, want 1", n)
	}
	if b.len() != 1 { // "b" still parked
		t.Fatalf("bank holds %d entries", b.len())
	}
}
