package distserve

import (
	"strings"
	"testing"
	"time"

	"splitcnn/internal/trace"
)

// mkWire builds a WireSpan on a synthetic clock: base + offsets, in ms.
func mkWire(name, parent string, base time.Time, startMs, endMs int64) WireSpan {
	return WireSpan{
		Name: name, Parent: parent,
		StartUnixNano: base.Add(time.Duration(startMs) * time.Millisecond).UnixNano(),
		EndUnixNano:   base.Add(time.Duration(endMs) * time.Millisecond).UnixNano(),
	}
}

// TestStitchCorrectsSyntheticSkew is the clock-skew acceptance check:
// a worker whose clock runs a full hour ahead still stitches into a
// monotonic, properly nested timeline once its estimated skew is
// applied — and fails verification when it is not.
func TestStitchCorrectsSyntheticSkew(t *testing.T) {
	routerBase := time.Unix(1_000_000, 0)
	const skew = time.Hour
	workerBase := routerBase.Add(skew) // worker clock reads 1h ahead

	// Router truth: request [0, 100ms], scatter window [10, 80].
	router := []StitchedSpan{
		{Process: "router", Name: "request", Start: routerBase, End: routerBase.Add(100 * time.Millisecond)},
		{Process: "router", Name: "scatter_gather", Parent: "request",
			Start: routerBase.Add(10 * time.Millisecond), End: routerBase.Add(80 * time.Millisecond)},
	}
	// Worker truth: eval [20, 70] on the router clock, recorded with
	// the worker's skewed clock.
	worker := ProcessSpans{
		Process:       "shard0 w0",
		Skew:          skew,
		Uncertainty:   50 * time.Microsecond,
		DefaultParent: scatterSpanName,
		Spans: []WireSpan{
			mkWire("shard_eval", "", workerBase, 20, 70),
			mkWire("stage:conv1", "shard_eval", workerBase, 21, 40),
			mkWire("halo_wait:s0", "shard_eval", workerBase, 41, 50),
		},
	}

	spans := append(append([]StitchedSpan(nil), router...), Stitch([]ProcessSpans{worker})...)
	if err := VerifyStitched(spans); err != nil {
		t.Fatalf("skew-corrected timeline failed verification: %v", err)
	}
	// Corrected timestamps sit on the router clock.
	for _, s := range spans {
		if s.Name == "shard_eval" {
			if got, want := s.Start, routerBase.Add(20*time.Millisecond); !got.Equal(want) {
				t.Fatalf("shard_eval start = %v, want %v", got, want)
			}
		}
	}

	// Without correction the worker spans sit an hour in the future —
	// verification must reject the timeline.
	worker.Skew = 0
	bad := append(append([]StitchedSpan(nil), router...), Stitch([]ProcessSpans{worker})...)
	err := VerifyStitched(bad)
	if err == nil {
		t.Fatal("uncorrected 1h-skewed timeline passed verification")
	}
	if !strings.Contains(err.Error(), "escapes parent") {
		t.Fatalf("unexpected verification error: %v", err)
	}
}

func TestVerifyStitchedRejectsMissingParentAndBackwardsSpan(t *testing.T) {
	base := time.Unix(1_000_000, 0)
	orphan := []StitchedSpan{
		{Process: "router", Name: "respond", Parent: "request", Start: base, End: base.Add(time.Millisecond)},
	}
	if err := VerifyStitched(orphan); err == nil {
		t.Fatal("orphan span passed verification")
	}
	backwards := []StitchedSpan{
		{Process: "router", Name: "request", Start: base.Add(time.Millisecond), End: base},
	}
	if err := VerifyStitched(backwards); err == nil {
		t.Fatal("backwards span passed verification")
	}
}

func TestVerifyStitchedCrossProcessUncertainty(t *testing.T) {
	base := time.Unix(1_000_000, 0)
	spans := []StitchedSpan{
		{Process: "router", Name: "scatter_gather", Start: base, End: base.Add(10 * time.Millisecond)},
		// Child pokes 100µs past the parent's end — within a 150µs
		// cross-process uncertainty, so it must pass...
		{Process: "shard0 w0", Name: "shard_eval", Parent: "scatter_gather",
			Start: base.Add(time.Millisecond), End: base.Add(10*time.Millisecond + 100*time.Microsecond),
			Uncertainty: 150 * time.Microsecond},
	}
	if err := VerifyStitched(spans); err != nil {
		t.Fatalf("overhang within uncertainty rejected: %v", err)
	}
	// ...and fail once the uncertainty cannot explain the overhang.
	spans[1].Uncertainty = 10 * time.Microsecond
	if err := VerifyStitched(spans); err == nil {
		t.Fatal("overhang beyond uncertainty passed")
	}
	// Same-process nesting is exact: no slack even with uncertainty.
	spans[1].Process = "router"
	spans[1].Uncertainty = 150 * time.Microsecond
	if err := VerifyStitched(spans); err == nil {
		t.Fatal("same-process overhang passed")
	}
}

func TestStitchedEventRoundTrip(t *testing.T) {
	tracer := trace.NewWallTracer(1, 1)
	base := time.Now()
	in := []StitchedSpan{
		{Process: "router", Name: "request", Start: base, End: base.Add(5 * time.Millisecond)},
		{Process: "router", Name: "scatter_gather", Parent: "request",
			Start: base.Add(time.Millisecond), End: base.Add(4 * time.Millisecond)},
		{Process: "shard0 w0", Name: "shard_eval", Parent: "scatter_gather",
			Start: base.Add(2 * time.Millisecond), End: base.Add(3 * time.Millisecond),
			Uncertainty: 80 * time.Microsecond},
	}
	ExportStitched(tracer, "req-1", in)
	tracer.SpanAt("router", "request", base, base.Add(time.Millisecond),
		map[string]any{"request": "req-2"}) // different request: filtered out

	out := StitchedFromEvents(tracer.Trace().Events(), "req-1")
	if len(out) != len(in) {
		t.Fatalf("round trip kept %d of %d spans", len(out), len(in))
	}
	byName := map[string]StitchedSpan{}
	for _, s := range out {
		byName[s.Process+"/"+s.Name] = s
	}
	// Event timestamps are relative to the tracer's epoch, so compare
	// span positions relative to the request root on each side.
	inRoot, outRoot := in[0].Start, byName["router/request"].Start
	for _, want := range in {
		got, ok := byName[want.Process+"/"+want.Name]
		if !ok {
			t.Fatalf("span %s/%s lost in round trip", want.Process, want.Name)
		}
		if got.Parent != want.Parent {
			t.Fatalf("%s parent = %q, want %q", want.Name, got.Parent, want.Parent)
		}
		// Chrome events carry microsecond floats: exact to ~1µs.
		if d := got.Start.Sub(outRoot) - want.Start.Sub(inRoot); d < -2*time.Microsecond || d > 2*time.Microsecond {
			t.Fatalf("%s start drifted %v in round trip", want.Name, d)
		}
		if d := got.End.Sub(outRoot) - want.End.Sub(inRoot); d < -2*time.Microsecond || d > 2*time.Microsecond {
			t.Fatalf("%s end drifted %v in round trip", want.Name, d)
		}
	}
	if err := VerifyStitched(out); err != nil {
		t.Fatalf("round-tripped timeline failed verification: %v", err)
	}
}
