package distserve

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"splitcnn/internal/dist"
	"splitcnn/internal/graph"
	"splitcnn/internal/serve"
	"splitcnn/internal/tensor"
)

// runGang evaluates every shard of an owners table concurrently, with
// halo rows flowing through per-shard dist.Exchanges exactly as the RPC
// workers do (publish to your own, wait on the owner's), and stitches
// the shard bands into the full final-stage feature map.
func runGang(t *testing.T, se *ShardEval, image *tensor.Tensor, owners [][]Range) *tensor.Tensor {
	t.Helper()
	p := se.Plan()
	n := len(owners[0])
	exch := make([]*dist.Exchange, n)
	for s := range exch {
		exch[s] = dist.NewExchange()
		exch[s].Open(fmt.Sprintf("s%d", s), time.Now().Add(time.Minute))
	}
	last := p.Last()
	full := tensor.New(1, last.OutC, last.OutH, last.OutW)
	var wg sync.WaitGroup
	errs := make([]error, n)
	var mu sync.Mutex
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			imgR := p.ImageRange(owners, s)
			var band *tensor.Tensor
			if !imgR.Empty() {
				band = SliceRows(image, 0, imgR)
			}
			fetch := func(stage, owner int, rows Range) (*tensor.Tensor, error) {
				v, err := exch[owner].Wait(fmt.Sprintf("s%d", owner), stage, 10*time.Second)
				if err != nil {
					return nil, err
				}
				hr := v.(*haloRows)
				return SliceRows(hr.t, hr.rows.Lo, rows), nil
			}
			publish := func(stage int, rows Range, y *tensor.Tensor) {
				exch[s].Publish(fmt.Sprintf("s%d", s), stage, &haloRows{rows: rows, t: y})
			}
			out, outR, err := se.RunShard(band, s, owners, fetch, publish, nil)
			if err != nil {
				errs[s] = err
				// Fail the whole gang fast so waiters don't hang.
				for _, e := range exch {
					e.Expire(time.Now().Add(time.Hour))
				}
				return
			}
			if out != nil {
				mu.Lock()
				copyRows(full, outR.Lo, out, 0, outR.Len())
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
	}
	return full
}

// referenceTail runs the unsplit graph and returns (tail feature map,
// logits) — the ground truth both the gang and the router must match.
func referenceTail(t *testing.T, spec serve.Spec, image *tensor.Tensor) (*Plan, *ShardEval, *tensor.Tensor, []float32) {
	t.Helper()
	m, store, err := serve.Materialize(spec)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(m)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewShardEval(p, store)
	if err != nil {
		t.Fatal(err)
	}
	tail := m.Graph.FindNode(p.Tail)
	if tail == nil {
		t.Fatalf("tail node %q not found", p.Tail)
	}
	m.Graph.SetOutput(m.Logits, tail)
	ex, err := graph.NewExecutor(m.Graph, store)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Input.Shape
	x := tensor.New(1, s.C(), s.H(), s.W())
	copy(x.Data(), image.Data())
	outs, err := ex.Forward(graph.Feeds{"image": x, "labels": tensor.New(1)})
	if err != nil {
		t.Fatal(err)
	}
	logits := append([]float32(nil), outs[0].Data()...)
	fm := outs[1].Clone()
	m.Graph.SetOutput(m.Logits) // restore the serving contract
	return p, se, fm, logits
}

func randImage(rng *rand.Rand, c, h, w int) *tensor.Tensor {
	t := tensor.New(1, c, h, w)
	d := t.Data()
	for i := range d {
		d[i] = rng.Float32()*2 - 1
	}
	return t
}

func maxAbsDiff(a, b []float32) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(float64(a[i] - b[i])); d > m {
			m = d
		}
	}
	return m
}

func bitIdentical(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// TestHaloGangMatchesUnsplit is the halo-correctness contract: for the
// plan's own (even-aligned) partitions the gang's stitched feature map
// is bit-identical to the unsplit executor's; single-shard gangs are the
// degenerate case.
func TestHaloGangMatchesUnsplit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, arch := range []string{"vgg16", "resnet18"} {
		t.Run(arch, func(t *testing.T) {
			spec := testSpec(arch)
			image := randImage(rng, 3, spec.Model.InputH, spec.Model.InputW)
			p, se, want, _ := referenceTail(t, spec, image)
			for n := 1; n <= 5; n++ {
				got := runGang(t, se, image, p.Owners(n))
				if !bitIdentical(got.Data(), want.Data()) {
					t.Fatalf("n=%d: gang diverges from unsplit run (max |Δ| %g)",
						n, maxAbsDiff(got.Data(), want.Data()))
				}
			}
		})
	}
}

// TestHaloGangRandomGeometries stresses the halo math with arbitrary
// (odd, uneven, empty-band) partitions. Odd cuts misalign the Winograd
// tile grid, so equality is within the same 1e-4 tolerance the autotune
// FFT backend is held to — the windows still read real neighbor rows,
// only summation geometry shifts.
func TestHaloGangRandomGeometries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	spec := testSpec("vgg16")
	image := randImage(rng, 3, spec.Model.InputH, spec.Model.InputW)
	p, se, want, _ := referenceTail(t, spec, image)
	for trial := 0; trial < 6; trial++ {
		n := 2 + rng.Intn(4)
		owners := make([][]Range, len(p.Stages))
		for i, st := range p.Stages {
			cuts := make([]int, n+1)
			cuts[n] = st.OutH
			for j := 1; j < n; j++ {
				cuts[j] = rng.Intn(st.OutH + 1)
			}
			// Interior cuts must be sorted, not even.
			for j := 1; j < n; j++ {
				if cuts[j] < cuts[j-1] {
					cuts[j] = cuts[j-1]
				}
			}
			owners[i] = make([]Range, n)
			for s := 0; s < n; s++ {
				owners[i][s] = Range{cuts[s], cuts[s+1]}
			}
		}
		got := runGang(t, se, image, owners)
		if d := maxAbsDiff(got.Data(), want.Data()); d > 1e-4 {
			t.Fatalf("trial %d (n=%d): max |Δ| %g > 1e-4", trial, n, d)
		}
	}
}

// TestEvalStageRejectsBadBand: the band contract is enforced, not
// assumed.
func TestEvalStageRejectsBadBand(t *testing.T) {
	spec := testSpec("vgg16")
	m, store, err := serve.Materialize(spec)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(m)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewShardEval(p, store)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stages[0]
	short := tensor.New(1, st.InC, 3, st.InW) // too few rows for the full output
	if _, err := se.EvalStage(0, short, Range{0, st.OutH}); err == nil {
		t.Fatal("EvalStage accepted an undersized input band")
	}
	if y, err := se.EvalStage(0, nil, Range{}); err != nil || y != nil {
		t.Fatalf("empty band: got (%v, %v), want (nil, nil)", y, err)
	}
}
