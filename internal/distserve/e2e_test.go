package distserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"testing"
	"time"

	"splitcnn/internal/serve"
)

// startFleet spawns n loopback workers plus a router fronting them and
// returns the router's base URL with a cleanup-registered shutdown.
func startFleet(t *testing.T, spec serve.Spec, n int, wcfg WorkerConfig, ropts RouterOptions) (*Router, []*Worker, string) {
	t.Helper()
	wcfg.Spec = spec
	var workers []*Worker
	var addrs []string
	for i := 0; i < n; i++ {
		w, err := StartWorker("127.0.0.1:0", wcfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
	}
	ropts.Spec = spec
	ropts.Workers = addrs
	rt, err := NewRouter(ropts)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := rt.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		rt.Shutdown(ctx)
	})
	return rt, workers, "http://" + addr.String()
}

func postPredict(t *testing.T, base string, req serve.PredictRequest) (int, serve.PredictResponse, string) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, serve.PredictResponse{}, e.Error
	}
	var pr serve.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, pr, ""
}

// referenceLogits runs the same spec through the single-process serving
// path (serve.Load + Instance.Run) — the bit-identity baseline.
func referenceLogits(t *testing.T, spec serve.Spec, img []float32) []float32 {
	t.Helper()
	inst, err := serve.Load(spec)
	if err != nil {
		t.Fatal(err)
	}
	out, err := inst.Run([][]float32{img})
	if err != nil {
		t.Fatal(err)
	}
	return append([]float32(nil), out[0]...)
}

// TestRouterBitIdenticalAllArchitectures is the headline acceptance
// check: for every bundled architecture, a router over multiple shard
// workers returns logits bit-identical to the single-process server.
func TestRouterBitIdenticalAllArchitectures(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, arch := range []string{"alexnet", "vgg16", "vgg19", "resnet18", "resnet50"} {
		t.Run(arch, func(t *testing.T) {
			spec := testSpec(arch)
			img := make([]float32, 3*spec.Model.InputH*spec.Model.InputW)
			for i := range img {
				img[i] = rng.Float32()
			}
			want := referenceLogits(t, spec, img)
			_, _, base := startFleet(t, spec, 3, WorkerConfig{}, RouterOptions{
				RequestTimeout: 20 * time.Second,
			})
			status, pr, msg := postPredict(t, base, serve.PredictRequest{Model: arch, Image: img})
			if status != http.StatusOK {
				t.Fatalf("predict: %d %s", status, msg)
			}
			if !bitIdentical(pr.Logits, want) {
				t.Fatalf("router logits diverge from single-process serve (max |Δ| %g, shards %d)",
					maxAbsDiff(pr.Logits, want), pr.BatchSize)
			}
			if pr.BatchSize < 2 {
				t.Fatalf("request answered by %d shards, want ≥2", pr.BatchSize)
			}
			if pr.Argmax != argmax32(want) {
				t.Fatalf("argmax %d, want %d", pr.Argmax, argmax32(want))
			}
		})
	}
}

func argmax32(v []float32) int {
	a := 0
	for i := range v {
		if v[i] > v[a] {
			a = i
		}
	}
	return a
}

// TestRouterSurvivesWorkerCrash kills one gang member mid-request: the
// router must eject it, retry the whole gang on the survivors, still
// return bit-identical logits within the deadline — and re-admit the
// worker once it comes back on the same address.
func TestRouterSurvivesWorkerCrash(t *testing.T) {
	spec := testSpec("vgg16")
	rng := rand.New(rand.NewSource(31))
	img := make([]float32, 3*spec.Model.InputH*spec.Model.InputW)
	for i := range img {
		img[i] = rng.Float32()
	}
	want := referenceLogits(t, spec, img)

	rt, workers, base := startFleet(t, spec, 3,
		WorkerConfig{StageDelay: 5 * time.Millisecond}, // ~37 stages ≈ 190ms/attempt
		RouterOptions{RequestTimeout: 30 * time.Second, HealthInterval: 100 * time.Millisecond})

	done := make(chan struct{})
	var status int
	var pr serve.PredictResponse
	var msg string
	go func() {
		defer close(done)
		status, pr, msg = postPredict(t, base, serve.PredictRequest{Image: img})
	}()
	time.Sleep(60 * time.Millisecond) // mid-evaluation for every plausible schedule
	victim := workers[0]
	victimAddr := victim.Addr()
	victim.Close()
	<-done
	if status != http.StatusOK {
		t.Fatalf("predict during crash: %d %s", status, msg)
	}
	if !bitIdentical(pr.Logits, want) {
		t.Fatalf("post-crash logits diverge (max |Δ| %g)", maxAbsDiff(pr.Logits, want))
	}
	if got := rt.Metrics().Counter("dist.retries").Value(); got < 1 {
		t.Fatalf("dist.retries = %d, want ≥1 (request must have been re-dispatched)", got)
	}
	if got := rt.Metrics().Counter("dist.ejections").Value(); got < 1 {
		t.Fatalf("dist.ejections = %d, want ≥1", got)
	}

	// The fleet keeps serving with the survivors.
	status, pr, msg = postPredict(t, base, serve.PredictRequest{Image: img})
	if status != http.StatusOK || !bitIdentical(pr.Logits, want) {
		t.Fatalf("post-crash steady state: %d %s", status, msg)
	}

	// Restart a worker on the dead one's address: the health loop must
	// re-admit it.
	w2, err := StartWorker(victimAddr, WorkerConfig{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w2.Close() })
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if rt.Metrics().Counter("dist.readmissions").Value() >= 1 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if got := rt.Metrics().Counter("dist.readmissions").Value(); got < 1 {
		t.Fatalf("worker restarted on %s but never re-admitted", victimAddr)
	}
}

// TestRouterCapacity429: when every worker's pods are reserved by an
// in-flight request, the next request is refused with 429, mirroring
// the single-process server's admission control.
func TestRouterCapacity429(t *testing.T) {
	spec := testSpec("resnet18") // 3 stages — short critical section
	rng := rand.New(rand.NewSource(43))
	img := make([]float32, 3*spec.Model.InputH*spec.Model.InputW)
	for i := range img {
		img[i] = rng.Float32()
	}
	_, _, base := startFleet(t, spec, 2,
		WorkerConfig{MaxPods: 1, StageDelay: 150 * time.Millisecond},
		RouterOptions{RequestTimeout: 10 * time.Second, Retries: 1})

	first := make(chan int, 1)
	go func() {
		s, _, _ := postPredict(t, base, serve.PredictRequest{Image: img})
		first <- s
	}()
	time.Sleep(100 * time.Millisecond) // first request holds both workers' pods
	status, _, msg := postPredict(t, base, serve.PredictRequest{Image: img})
	if status != http.StatusTooManyRequests {
		t.Fatalf("second concurrent request: %d %q, want 429", status, msg)
	}
	if s := <-first; s != http.StatusOK {
		t.Fatalf("first request: %d, want 200", s)
	}
}

// TestRouterIntrospection covers the read-only surfaces: /healthz,
// /v1/workers, /v1/models, /metricsz and /tracez.
func TestRouterIntrospection(t *testing.T) {
	spec := testSpec("resnet18")
	rt, _, base := startFleet(t, spec, 2, WorkerConfig{},
		RouterOptions{RequestTimeout: 10 * time.Second, TraceSample: 1})

	img := make([]float32, 3*spec.Model.InputH*spec.Model.InputW)
	if status, _, msg := postPredict(t, base, serve.PredictRequest{Image: img}); status != http.StatusOK {
		t.Fatalf("predict: %d %s", status, msg)
	}

	get := func(path string, want int) []byte {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		if resp.StatusCode != want {
			t.Fatalf("GET %s: %d (%s), want %d", path, resp.StatusCode, buf.String(), want)
		}
		return buf.Bytes()
	}

	var hz struct {
		Status  string `json:"status"`
		Healthy int    `json:"healthy_workers"`
	}
	if err := json.Unmarshal(get("/healthz", http.StatusOK), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Healthy != 2 {
		t.Fatalf("healthz: %+v", hz)
	}

	var ws []WorkerInfo
	if err := json.Unmarshal(get("/v1/workers", http.StatusOK), &ws); err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 || !ws[0].Healthy || !ws[1].Healthy {
		t.Fatalf("workers: %+v", ws)
	}

	var ms []serve.ModelInfo
	if err := json.Unmarshal(get("/v1/models", http.StatusOK), &ms); err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Classes != 10 {
		t.Fatalf("models: %+v", ms)
	}

	var mz map[string]json.RawMessage
	if err := json.Unmarshal(get("/metricsz", http.StatusOK), &mz); err != nil {
		t.Fatal(err)
	}

	var spans []map[string]any
	if err := json.Unmarshal(get("/tracez", http.StatusOK), &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("tracez: no spans despite TraceSample=1")
	}
	if rt.Tracer().Sampled() < 1 {
		t.Fatal("tracer sampled nothing")
	}
}

// TestWorkerRejectsForeignModel: a worker must refuse gangs whose plan
// signature differs from its own before touching the halo exchange.
func TestWorkerRejectsForeignModel(t *testing.T) {
	w, err := StartWorker("127.0.0.1:0", WorkerConfig{Spec: testSpec("resnet18")})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	rt, err := NewRouter(RouterOptions{Spec: testSpec("vgg16"), Workers: []string{w.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := rt.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		rt.Shutdown(ctx)
	})
	// The synchronous first probe already saw the mismatch; after
	// FailThreshold probes the worker is ejected and never dispatched.
	var hz struct {
		Status string `json:"status"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr.(*net.TCPAddr)))
		if err == nil {
			json.NewDecoder(resp.Body).Decode(&hz)
			resp.Body.Close()
			if hz.Status == "no healthy workers" {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("router never ejected the foreign-model worker (healthz %q)", hz.Status)
}
