// Package distserve is the distributed split-inference subsystem: it
// runs the spatially-shardable prefix of a model — the chain of
// window-based and pointwise ops hanging off the image input — across
// multiple worker processes, each owning a contiguous band of output
// rows per stage and exchanging halo (boundary) rows with the neighbors
// that own adjacent bands, then gathers the final prefix feature map on
// a router that finishes the graph tail locally.
//
// Unlike the paper's §3.1 transformation (internal/core), which pads
// each patch with zeros and therefore perturbs boundary values, the
// halo exchange is exact: every shard convolves over the very rows the
// unsplit operator would read, so the distributed result is the
// single-process result. Bit-identity additionally requires the shard
// algorithm dispatch to match the unsplit run; the one backend whose
// reduction geometry is position-dependent within a plan is Winograd
// F(2x2,3x3), whose 2x2 output tile grid must stay aligned across
// shards — hence Partition rounds every interior cut down to an even
// row. (The FFT backend is not shard-safe at all; workers run untuned,
// which is the same im2col/Winograd heuristic the default server uses.)
package distserve

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"splitcnn/internal/graph"
	"splitcnn/internal/models"
	"splitcnn/internal/tensor"
)

// Range is a half-open interval [Lo, Hi) of rows.
type Range struct{ Lo, Hi int }

// Len returns the number of rows in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Empty reports whether the range holds no rows.
func (r Range) Empty() bool { return r.Hi <= r.Lo }

func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

func intersect(a, b Range) Range {
	lo, hi := max(a.Lo, b.Lo), min(a.Hi, b.Hi)
	if hi < lo {
		hi = lo
	}
	return Range{lo, hi}
}

// windowOp and patchwiseOp mirror the structural interfaces the §3.1
// transform keys on (internal/core): window geometry for halo math,
// patch-safety for pointwise stages.
type windowOp interface {
	Window() tensor.ConvParams
	WithPad(tensor.Pad2D) graph.Op
}

type patchwiseOp interface{ PatchwiseSafe() bool }

// Stage is one shardable op of the prefix chain: a window op (conv,
// max/avg pool) or a pointwise op (ReLU, BN, dropout) applied to NCHW
// feature maps. Row ownership is expressed in *output* rows; InputRange
// maps them back to the input rows (of the previous stage's output)
// the op's windows read.
type Stage struct {
	Name string
	Kind string
	node *graph.Node

	win      tensor.ConvParams
	windowed bool

	InC, InH, InW    int
	OutC, OutH, OutW int
}

// InputRange returns the *virtual* input interval stage windows read to
// produce output rows out: [Lo·S − padTop, (Hi−1)·S − padTop + K). It
// may extend past [0, InH); the overhang is exactly the asymmetric
// zero-padding a shard must apply locally (clip + WithPad re-derive the
// padded geometry, mirroring core.Split's §3.1 per-patch padding — but
// against real neighbor rows instead of zeros).
func (s *Stage) InputRange(out Range) Range {
	if out.Empty() {
		return Range{}
	}
	if !s.windowed {
		return out
	}
	return Range{
		Lo: out.Lo*s.win.SH - s.win.Pad.Top,
		Hi: (out.Hi-1)*s.win.SH - s.win.Pad.Top + s.win.KH,
	}
}

// ClipInput clips a virtual input interval to the real rows [0, InH).
func (s *Stage) ClipInput(r Range) Range {
	return intersect(r, Range{0, s.InH})
}

// Plan is the sharding geometry of one model: the extracted prefix
// chain plus the image input description and the classifier width.
type Plan struct {
	Stages []*Stage
	// Tail is the graph node name whose value the router overrides to
	// resume the non-shardable remainder (== last stage's name).
	Tail string
	// InC/InH/InW is the image geometry; Classes the logits width.
	InC, InH, InW int
	Classes       int

	mu     sync.Mutex
	owners map[int][][]Range // cached Owners tables per shard count
}

// NewPlan extracts the shardable prefix from a materialized model: walk
// from the image input along the unique-consumer chain accepting window
// ops and patchwise-safe pointwise ops whose only other inputs are
// parameters. Residual adds (two op inputs), flatten (non-NCHW output)
// and global pooling end the chain. VGG/AlexNet shard their entire
// convolutional trunk; ResNets shard the stem before the first residual
// join — shallower, but still the rows-dominant layers.
func NewPlan(m *models.Model) (*Plan, error) {
	in := m.Input
	if len(in.Shape) != 4 {
		return nil, fmt.Errorf("distserve: input %q is not NCHW (%v)", in.Name, in.Shape)
	}
	if in.Shape.N() != 1 {
		return nil, fmt.Errorf("distserve: plan wants a batch-1 graph, input is %v", in.Shape)
	}
	p := &Plan{
		InC: in.Shape.C(), InH: in.Shape.H(), InW: in.Shape.W(),
		Classes: m.Classes,
		owners:  make(map[int][][]Range),
	}
	cons := m.Graph.Consumers()
	cur := in
	for {
		cs := cons[cur.ID]
		if len(cs) != 1 {
			break // chain forks (residual reuse) or dead-ends
		}
		n := cs[0]
		if len(n.Inputs) == 0 || n.Inputs[0] != cur || len(n.Shape) != 4 {
			break
		}
		paramsOnly := true
		for _, src := range n.Inputs[1:] {
			if src.Kind != graph.KindParam {
				paramsOnly = false
				break
			}
		}
		if !paramsOnly {
			break // e.g. residual Add joining two op values
		}
		st := &Stage{
			Name: n.Name, Kind: n.Op.Kind(), node: n,
			InC: cur.Shape.C(), InH: cur.Shape.H(), InW: cur.Shape.W(),
			OutC: n.Shape.C(), OutH: n.Shape.H(), OutW: n.Shape.W(),
		}
		if w, ok := n.Op.(windowOp); ok {
			st.win, st.windowed = w.Window(), true
		} else if pw, ok := n.Op.(patchwiseOp); !ok || !pw.PatchwiseSafe() {
			break // not shardable (flatten, gap, linear, ...)
		} else if st.InH != st.OutH || st.InW != st.OutW {
			break // pointwise ops must preserve spatial geometry
		}
		p.Stages = append(p.Stages, st)
		cur = n
	}
	if len(p.Stages) == 0 {
		return nil, fmt.Errorf("distserve: model %q has no shardable prefix (input consumer is not a window/pointwise chain)", m.Name)
	}
	p.Tail = p.Stages[len(p.Stages)-1].Name
	return p, nil
}

// Last returns the final stage (the gather point).
func (p *Plan) Last() *Stage { return p.Stages[len(p.Stages)-1] }

// Partition cuts h rows into n contiguous ranges of near-equal size
// whose interior cut points are rounded down to even rows. The even
// alignment pins the Winograd F(2x2,3x3) output tile grid of every
// shard to the unsplit operator's grid, which is what upgrades the halo
// exchange from "equal within fp tolerance" to "bit-identical": each
// 2x2 output tile is computed from the same 4x4 input window with the
// same reduction order regardless of which shard computes it. Ranges
// may be empty when h < 2n (deep pyramid stages); empty shards simply
// fetch everything they need from the owners.
func Partition(h, n int) []Range {
	if n < 1 {
		n = 1
	}
	cut := func(i int) int {
		if i <= 0 {
			return 0
		}
		if i >= n {
			return h
		}
		return (h * i / n) &^ 1
	}
	out := make([]Range, n)
	for i := range out {
		out[i] = Range{cut(i), cut(i + 1)}
	}
	return out
}

// Owners returns the per-stage row-ownership table for n shards:
// owners[i][s] is the band of stage i's *output* rows shard s computes.
// Each stage's output height is partitioned independently, so ownership
// tracks the shrinking spatial pyramid. Tables are cached per n.
func (p *Plan) Owners(n int) [][]Range {
	p.mu.Lock()
	defer p.mu.Unlock()
	if t, ok := p.owners[n]; ok {
		return t
	}
	t := make([][]Range, len(p.Stages))
	for i, st := range p.Stages {
		t[i] = Partition(st.OutH, n)
	}
	p.owners[n] = t
	return t
}

// ImageRange returns the band of raw image rows shard s needs to start
// stage 0 — the router scatters exactly these rows to each worker, so
// stage 0 needs no halo exchange at all.
func (p *Plan) ImageRange(owners [][]Range, s int) Range {
	st := p.Stages[0]
	return st.ClipInput(st.InputRange(owners[0][s]))
}

// Signature summarizes everything two processes must agree on before
// exchanging rows: image geometry, the stage chain with window
// parameters, the classifier width, and the weight-snapshot
// fingerprint. Workers refuse gangs whose signature differs.
func (p *Plan) Signature(snapshotFP string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "in=%dx%dx%d classes=%d", p.InC, p.InH, p.InW, p.Classes)
	for _, st := range p.Stages {
		fmt.Fprintf(&b, "|%s(%s)%d>%d", st.Name, st.Kind, st.InH, st.OutH)
		if st.windowed {
			fmt.Fprintf(&b, " k%d,%ds%d,%dp%s", st.win.KH, st.win.KW, st.win.SH, st.win.SW, st.win.Pad)
		}
	}
	fmt.Fprintf(&b, "|snap=%s", snapshotFP)
	return b.String()
}

// ShardEval evaluates plan stages for one shard. It resolves each
// stage's parameter tensors once at construction and is safe for
// concurrent use (stage ops are stateless in eval mode; see the BN
// running-stats read path).
type ShardEval struct {
	p      *Plan
	params [][]*tensor.Tensor
}

// NewShardEval binds a plan to the parameter store it was materialized
// with.
func NewShardEval(p *Plan, store *graph.ParamStore) (*ShardEval, error) {
	se := &ShardEval{p: p, params: make([][]*tensor.Tensor, len(p.Stages))}
	for i, st := range p.Stages {
		for _, src := range st.node.Inputs[1:] {
			pe := store.Lookup(src.Name)
			if pe == nil {
				return nil, fmt.Errorf("distserve: stage %s: parameter %q not in store", st.Name, src.Name)
			}
			se.params[i] = append(se.params[i], pe.Value)
		}
	}
	return se, nil
}

// Plan returns the evaluation's sharding geometry.
func (se *ShardEval) Plan() *Plan { return se.p }

// EvalStage computes output rows out of stage i from x, which must hold
// exactly the clipped input rows ClipInput(InputRange(out)). Overhang
// beyond the real input becomes local asymmetric zero-padding via the
// op's WithPad — identical values to the unsplit op's own padding.
// Empty out returns (nil, nil).
func (se *ShardEval) EvalStage(i int, x *tensor.Tensor, out Range) (*tensor.Tensor, error) {
	st := se.p.Stages[i]
	if out.Empty() {
		return nil, nil
	}
	virt := st.InputRange(out)
	clip := st.ClipInput(virt)
	if clip.Empty() {
		return nil, fmt.Errorf("distserve: stage %s: output rows %v read no real input rows", st.Name, out)
	}
	if x == nil || x.Shape().H() != clip.Len() || x.Shape().C() != st.InC || x.Shape().W() != st.InW {
		return nil, fmt.Errorf("distserve: stage %s: input covers %d rows, want %d (%v)", st.Name, heightOf(x), clip.Len(), clip)
	}
	op := st.node.Op
	if st.windowed {
		pad := st.win.Pad
		pad.Top = clip.Lo - virt.Lo
		pad.Bottom = virt.Hi - clip.Hi
		op = st.node.Op.(windowOp).WithPad(pad)
	}
	in := make([]*tensor.Tensor, 0, 1+len(se.params[i]))
	in = append(in, x)
	in = append(in, se.params[i]...)
	y, _ := op.Forward(in)
	if y.Shape().H() != out.Len() {
		return nil, fmt.Errorf("distserve: stage %s: produced %d rows for %v", st.Name, y.Shape().H(), out)
	}
	return y, nil
}

func heightOf(t *tensor.Tensor) int {
	if t == nil {
		return 0
	}
	return t.Shape().H()
}

// HaloFetch returns rows (a sub-range of stage's output) owned by
// another shard. The worker implements it as a Shard.Halo RPC; the halo
// tests implement it over a local dist.Exchange.
type HaloFetch func(stage, owner int, rows Range) (*tensor.Tensor, error)

// HaloPublish announces this shard's freshly computed stage output so
// neighbor Halo requests can be answered.
type HaloPublish func(stage int, rows Range, t *tensor.Tensor)

// StageObserver is invoked after each stage completes (trace spans).
type StageObserver func(stage int, name string, start, end time.Time)

// RunShard evaluates every plan stage for one shard. image must hold
// exactly the rows ImageRange(owners, shard) of the input picture; the
// returned tensor is the shard's band of the final stage's output
// (nil when the band is empty) together with that band.
//
// Deadlock freedom of the gang: stage i's assembly only fetches rows of
// stage i−1, which every owner publishes before starting its own stage
// i — so any Wait is for a value strictly earlier in its producer's
// program order, and the dependency graph across workers is acyclic.
func (se *ShardEval) RunShard(image *tensor.Tensor, shard int, owners [][]Range, fetch HaloFetch, publish HaloPublish, obs StageObserver) (*tensor.Tensor, Range, error) {
	var prev *tensor.Tensor
	var prevOwn Range
	for i := range se.p.Stages {
		out := owners[i][shard]
		var x *tensor.Tensor
		var err error
		if i == 0 {
			x = image
			if out.Empty() {
				x = nil
			}
		} else {
			x, err = se.assemble(i, shard, prev, prevOwn, owners, fetch)
			if err != nil {
				return nil, Range{}, err
			}
		}
		start := time.Now()
		y, err := se.EvalStage(i, x, out)
		if err != nil {
			return nil, Range{}, err
		}
		if obs != nil {
			obs(i, se.p.Stages[i].Name, start, time.Now())
		}
		if publish != nil && y != nil {
			publish(i, out, y)
		}
		prev, prevOwn = y, out
	}
	return prev, owners[len(se.p.Stages)-1][shard], nil
}

// assemble builds stage i's input band for shard: the clipped input
// rows, stitched from this shard's own previous-stage output plus halo
// rows fetched from every other owner whose band intersects the need.
func (se *ShardEval) assemble(i, shard int, prev *tensor.Tensor, prevOwn Range, owners [][]Range, fetch HaloFetch) (*tensor.Tensor, error) {
	st := se.p.Stages[i]
	out := owners[i][shard]
	if out.Empty() {
		return nil, nil
	}
	need := st.ClipInput(st.InputRange(out))
	if need.Empty() {
		return nil, nil
	}
	x := tensor.New(1, st.InC, need.Len(), st.InW)
	covered := 0
	for o, band := range owners[i-1] {
		seg := intersect(band, need)
		if seg.Empty() {
			continue
		}
		src, srcBase := prev, prevOwn.Lo
		if o != shard {
			var err error
			src, err = fetch(i-1, o, seg)
			if err != nil {
				return nil, fmt.Errorf("distserve: stage %s: halo %v from shard %d: %w", st.Name, seg, o, err)
			}
			srcBase = seg.Lo
		}
		if src == nil {
			return nil, fmt.Errorf("distserve: stage %s: shard %d owns %v but produced nothing", st.Name, o, band)
		}
		copyRows(x, seg.Lo-need.Lo, src, seg.Lo-srcBase, seg.Len())
		covered += seg.Len()
	}
	if covered != need.Len() {
		return nil, fmt.Errorf("distserve: stage %s: assembled %d of %d input rows %v", st.Name, covered, need.Len(), need)
	}
	return x, nil
}

// copyRows copies `rows` H-rows between two batch-1 NCHW tensors that
// agree on C and W, channel by channel (each channel's rows are
// contiguous in NCHW).
func copyRows(dst *tensor.Tensor, dstRow int, src *tensor.Tensor, srcRow, rows int) {
	ds, ss := dst.Shape(), src.Shape()
	c, w := ds.C(), ds.W()
	dh, sh := ds.H(), ss.H()
	dd, sd := dst.Data(), src.Data()
	for ch := 0; ch < c; ch++ {
		d0 := (ch*dh + dstRow) * w
		s0 := (ch*sh + srcRow) * w
		copy(dd[d0:d0+rows*w], sd[s0:s0+rows*w])
	}
}

// SliceRows extracts rows [r.Lo, r.Hi) (relative to base row `base`) of
// a batch-1 NCHW tensor into a fresh tensor.
func SliceRows(t *tensor.Tensor, base int, r Range) *tensor.Tensor {
	s := t.Shape()
	out := tensor.New(1, s.C(), r.Len(), s.W())
	copyRows(out, 0, t, r.Lo-base, r.Len())
	return out
}
