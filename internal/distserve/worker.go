package distserve

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"

	"splitcnn/internal/buildinfo"
	"splitcnn/internal/dist"
	"splitcnn/internal/memobs"
	"splitcnn/internal/serve"
	"splitcnn/internal/snapshot"
	"splitcnn/internal/tensor"
	"splitcnn/internal/trace"
)

// ErrCapacity is returned (over the wire, by message prefix) when a
// worker is already running MaxPods concurrent shard evaluations.
var ErrCapacity = errors.New("distserve: worker at capacity")

// capacityPrefix survives the rpc.ServerError round trip, so routers
// can distinguish "busy, pick someone else" from "broken, eject".
const capacityPrefix = "capacity: "

// WorkerConfig configures one shard worker.
type WorkerConfig struct {
	// Spec selects the model; it must match the router's spec exactly
	// (the Signature handshake enforces it). MaxBatch is forced to 1 —
	// the distributed path shards space, not batches.
	Spec serve.Spec
	// MaxPods caps concurrent shard evaluations (default 4) — the
	// per-pod capacity limit the router's dispatch respects.
	MaxPods int
	// Metrics receives dist.worker.* instruments (nil = private).
	Metrics *trace.Metrics
	// Logger receives lifecycle/request logs (nil discards).
	Logger *slog.Logger
	// TraceSample in (0,1] records per-stage wall spans for that
	// fraction of shard evaluations (exposed via Tracer).
	TraceSample float64
	// StageDelay is a testing aid: every stage evaluation sleeps this
	// long, making capacity and deadline windows deterministic.
	StageDelay time.Duration
	// RuntimeMetricsInterval tunes the runtime.* gauge sampler feeding
	// per-worker heap/GC series into the registry the router federates
	// on /clusterz. Zero selects the 10s default; negative disables.
	RuntimeMetricsInterval time.Duration
	// DebugAddr, when set (e.g. "127.0.0.1:0"), serves an HTTP debug
	// surface — /healthz, /metricsz, /profilez — next to the RPC
	// listener, and starts the continuous profiler behind /profilez.
	DebugAddr string
	// ProfileWindow/ProfileEvery override the profiler's capture window
	// and duty-cycle period (defaults 1s / 15s; used with DebugAddr).
	ProfileWindow time.Duration
	ProfileEvery  time.Duration
}

// Worker is one shard-evaluation process: it materializes the model,
// extracts the shard plan, and serves Shard.{Eval,Halo,Health} over
// net/rpc. Halo rows flow through a dist.Exchange so the Eval goroutine
// and concurrent neighbor Halo handlers rendezvous without shared state
// beyond the exchange.
type Worker struct {
	plan *Plan
	eval *ShardEval
	sig  string

	pool *dist.ClientPool
	exch *dist.Exchange
	bank *spanBank

	maxPods  int
	inflight atomic.Int64
	requests atomic.Uint64
	haloReqs atomic.Uint64
	haloBts  atomic.Uint64

	met     *trace.Metrics
	log     *slog.Logger
	tracer  *trace.WallTracer
	delay   time.Duration
	started time.Time

	ln   net.Listener
	srv  *rpc.Server
	stop chan struct{}

	sampler *trace.RuntimeSampler
	prof    *memobs.Profiler
	dbgLn   net.Listener
	dbgSrv  *http.Server

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// haloRows is the value type published on the exchange per stage.
type haloRows struct {
	rows Range
	t    *tensor.Tensor
}

// shardService is the exported RPC receiver ("Shard").
type shardService struct{ w *Worker }

// StartWorker materializes cfg.Spec, builds the shard plan, and serves
// the Shard RPC service on addr (use "127.0.0.1:0" for a random port).
func StartWorker(addr string, cfg WorkerConfig) (*Worker, error) {
	spec := cfg.Spec
	spec.MaxBatch = 1
	m, store, err := serve.Materialize(spec)
	if err != nil {
		return nil, err
	}
	plan, err := NewPlan(m)
	if err != nil {
		return nil, err
	}
	se, err := NewShardEval(plan, store)
	if err != nil {
		return nil, err
	}
	fp, err := snapshot.FingerprintFile(spec.Snapshot)
	if err != nil {
		return nil, err
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	met := cfg.Metrics
	if met == nil {
		met = trace.NewMetrics()
	}
	maxPods := cfg.MaxPods
	if maxPods <= 0 {
		maxPods = 4
	}
	w := &Worker{
		plan: plan, eval: se, sig: plan.Signature(fp),
		pool: dist.NewClientPool(), exch: dist.NewExchange(),
		bank:    newSpanBank(0),
		maxPods: maxPods, met: met, log: logger,
		delay: cfg.StageDelay, started: time.Now(),
		stop: make(chan struct{}), conns: make(map[net.Conn]struct{}),
	}
	if cfg.TraceSample > 0 {
		w.tracer = trace.NewWallTracer(cfg.TraceSample, 1)
	}
	w.srv = rpc.NewServer()
	if err := w.srv.RegisterName("Shard", &shardService{w}); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	w.ln = ln
	// Per-worker runtime.* gauges: Shard.Metrics ships the registry
	// snapshot to the router, so the sampler's heap/GC series federate
	// on /clusterz without any extra wiring.
	if iv := cfg.RuntimeMetricsInterval; iv >= 0 {
		if iv == 0 {
			iv = 10 * time.Second
		}
		w.sampler = trace.StartRuntimeSampler(met, iv)
	}
	if cfg.DebugAddr != "" {
		dln, err := net.Listen("tcp", cfg.DebugAddr)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("distserve: worker debug listener: %w", err)
		}
		w.dbgLn = dln
		w.prof = memobs.StartProfiler(memobs.ProfilerOptions{
			Window: cfg.ProfileWindow, Every: cfg.ProfileEvery, Metrics: met,
		})
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", func(hw http.ResponseWriter, _ *http.Request) {
			hw.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(hw, `{"status":"ok","addr":%q}`, w.ln.Addr().String())
		})
		mux.HandleFunc("/metricsz", trace.MetricsHandler(met, nil))
		mux.HandleFunc("/profilez", memobs.Handler(w.prof, nil))
		w.dbgSrv = &http.Server{Handler: mux}
		go w.dbgSrv.Serve(dln) //nolint:errcheck
	}
	go w.acceptLoop()
	go w.janitor()
	w.log.Info("dist.worker.start", "addr", ln.Addr().String(),
		"stages", len(plan.Stages), "max_pods", maxPods)
	return w, nil
}

// DebugAddr returns the bound debug-HTTP address ("" when disabled).
func (w *Worker) DebugAddr() string {
	if w.dbgLn == nil {
		return ""
	}
	return w.dbgLn.Addr().String()
}

// Addr returns the bound listen address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// Plan returns the worker's shard plan (tests).
func (w *Worker) Plan() *Plan { return w.plan }

// Signature returns the worker's model signature.
func (w *Worker) Signature() string { return w.sig }

// Metrics returns the worker's metrics registry.
func (w *Worker) Metrics() *trace.Metrics { return w.met }

// Tracer returns the per-stage wall tracer (nil unless TraceSample>0).
func (w *Worker) Tracer() *trace.WallTracer { return w.tracer }

// Close simulates an abrupt worker death for the failure tests and
// implements graceful stop: the listener and every open connection are
// closed, pending exchange waiters fail fast.
func (w *Worker) Close() error {
	select {
	case <-w.stop:
		return nil
	default:
	}
	close(w.stop)
	w.sampler.Stop()
	w.prof.Stop()
	if w.dbgLn != nil {
		w.dbgLn.Close()
	}
	err := w.ln.Close()
	w.mu.Lock()
	for c := range w.conns {
		c.Close()
	}
	w.mu.Unlock()
	w.pool.Close()
	w.exch.Expire(time.Now().Add(24 * time.Hour)) // everything
	w.log.Info("dist.worker.stop", "requests", w.requests.Load())
	return err
}

func (w *Worker) acceptLoop() {
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			return
		}
		w.mu.Lock()
		w.conns[conn] = struct{}{}
		w.mu.Unlock()
		go func() {
			w.srv.ServeConn(conn)
			w.mu.Lock()
			delete(w.conns, conn)
			w.mu.Unlock()
			conn.Close()
		}()
	}
}

// janitor sweeps expired exchange requests — the backstop that bounds
// memory when a gang partner dies and its halos go unconsumed.
func (w *Worker) janitor() {
	t := time.NewTicker(500 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case now := <-t.C:
			if n := w.exch.Expire(now); n > 0 {
				w.met.Counter("dist.worker.expired_requests").Add(int64(n))
			}
			if n := w.bank.sweep(now); n > 0 {
				w.met.Counter("dist.worker.span_bank_expired").Add(int64(n))
			}
			w.met.Gauge("dist.worker.exchange_requests").Set(float64(w.exch.Len()))
			w.met.Gauge("dist.worker.span_bank_requests").Set(float64(w.bank.len()))
			if w.tracer != nil {
				w.met.Gauge("trace.dropped_spans").Set(float64(w.tracer.DroppedSpans()))
			}
		}
	}
}

// Eval implements Shard.Eval.
func (s *shardService) Eval(args *EvalArgs, reply *EvalReply) error {
	return s.w.evalShard(args, reply)
}

// Halo implements Shard.Halo.
func (s *shardService) Halo(args *HaloArgs, reply *HaloReply) error {
	return s.w.halo(args, reply)
}

// Health implements Shard.Health.
func (s *shardService) Health(_ *HealthArgs, reply *HealthReply) error {
	w := s.w
	*reply = HealthReply{
		Model:        w.sig,
		InFlight:     int(w.inflight.Load()),
		MaxPods:      w.maxPods,
		Requests:     w.requests.Load(),
		HaloRequests: w.haloReqs.Load(),
		HaloBytes:    w.haloBts.Load(),
		UptimeSec:    time.Since(w.started).Seconds(),
		Build:        buildinfo.Get(),
	}
	return nil
}

// Clock implements Shard.Clock: a wall-clock read for the router's
// skew estimator. The timestamp is taken immediately, so the only
// unmodeled delay is the RPC framing itself (bounded by the probe RTT).
func (s *shardService) Clock(_ *ClockArgs, reply *ClockReply) error {
	reply.UnixNano = time.Now().UnixNano()
	return nil
}

// Spans implements Shard.Spans: consume the banked stage spans of one
// sampled (request, attempt).
func (s *shardService) Spans(args *SpansArgs, reply *SpansReply) error {
	shard, spans, ok := s.w.bank.take(args.ReqID)
	*reply = SpansReply{Found: ok, Shard: shard, Spans: spans}
	return nil
}

// Metrics implements Shard.Metrics: one tear-free snapshot of the
// worker's registry for router-side federation.
func (s *shardService) Metrics(_ *MetricsArgs, reply *MetricsReply) error {
	reply.Snap = s.w.met.Snapshot()
	return nil
}

func (w *Worker) evalShard(args *EvalArgs, reply *EvalReply) error {
	if n := w.inflight.Add(1); n > int64(w.maxPods) {
		w.inflight.Add(-1)
		w.met.Counter("dist.worker.capacity_rejects").Add(1)
		return fmt.Errorf("%s%w (%d in flight, max %d)", capacityPrefix, ErrCapacity, n-1, w.maxPods)
	}
	defer w.inflight.Add(-1)
	w.requests.Add(1)
	w.met.Counter("dist.worker.requests").Add(1)

	if args.Model != w.sig {
		return fmt.Errorf("distserve: model signature mismatch (worker %q)", w.sig)
	}
	if args.Shard < 0 || args.Shard >= len(args.Gang) {
		return fmt.Errorf("distserve: shard %d of gang %d", args.Shard, len(args.Gang))
	}
	deadline := time.Now().Add(time.Duration(args.TimeoutMs) * time.Millisecond)
	owners := w.plan.Owners(len(args.Gang))
	imgR := w.plan.ImageRange(owners, args.Shard)
	if args.RowLo != imgR.Lo || args.RowHi != imgR.Hi {
		return fmt.Errorf("distserve: shard %d sent image rows [%d,%d), plan wants %v",
			args.Shard, args.RowLo, args.RowHi, imgR)
	}
	var image *tensor.Tensor
	if !imgR.Empty() {
		if len(args.Rows) != bandLen(w.plan.InC, imgR.Len(), w.plan.InW) {
			return fmt.Errorf("distserve: image band has %d floats, want %d", len(args.Rows), bandLen(w.plan.InC, imgR.Len(), w.plan.InW))
		}
		image = tensor.New(1, w.plan.InC, imgR.Len(), w.plan.InW)
		copy(image.Data(), args.Rows)
	}

	// The exchange entry lives until the deadline, then a short grace
	// after completion — neighbors may still be consuming our rows.
	w.exch.Open(args.ReqID, deadline)
	defer w.exch.SetExpiry(args.ReqID, minTime(deadline, time.Now().Add(5*time.Second)))

	sc := w.tracer.Request(fmt.Sprintf("%s/s%d", args.ReqID, args.Shard))
	// Harvest expiry: spans must outlive the request deadline long
	// enough for the router to collect them right after gather.
	bankExpiry := deadline.Add(5 * time.Second)
	start := time.Now()
	fetch := func(stage, owner int, rows Range) (*tensor.Tensor, error) {
		remaining := time.Until(deadline)
		var hr HaloReply
		h0 := time.Now()
		err := w.pool.Call(args.Gang[owner], "Shard.Halo", &HaloArgs{
			ReqID: args.ReqID, Stage: stage, Lo: rows.Lo, Hi: rows.Hi,
			TimeoutMs: remaining.Milliseconds(), Sampled: args.Trace.Sampled,
		}, &hr, remaining)
		h1 := time.Now()
		w.met.Histogram("dist.worker.halo_wait_seconds", trace.LatencyBuckets).Observe(h1.Sub(h0).Seconds())
		if args.Trace.Sampled {
			w.bank.add(args.ReqID, bankExpiry, WireSpan{
				Name: fmt.Sprintf("halo_wait:s%d", stage), Parent: "shard_eval",
				StartUnixNano: h0.UnixNano(), EndUnixNano: h1.UnixNano(),
			})
		}
		if err != nil {
			return nil, err
		}
		c, wd := w.plan.Stages[stage].OutC, w.plan.Stages[stage].OutW
		if len(hr.Data) != bandLen(c, rows.Len(), wd) {
			return nil, fmt.Errorf("distserve: halo reply has %d floats, want %d", len(hr.Data), bandLen(c, rows.Len(), wd))
		}
		t := tensor.New(1, c, rows.Len(), wd)
		copy(t.Data(), hr.Data)
		return t, nil
	}
	publish := func(stage int, rows Range, t *tensor.Tensor) {
		w.exch.Publish(args.ReqID, stage, &haloRows{rows: rows, t: t})
	}
	obs := func(stage int, name string, s0, s1 time.Time) {
		if w.delay > 0 {
			time.Sleep(w.delay)
		}
		sc.Record("stage:"+name, s0, s1)
		if args.Trace.Sampled {
			w.bank.add(args.ReqID, bankExpiry, WireSpan{
				Name: "stage:" + name, Parent: "shard_eval",
				StartUnixNano: s0.UnixNano(), EndUnixNano: s1.UnixNano(),
			})
		}
		w.met.Histogram("dist.worker.stage_seconds", trace.LatencyBuckets).Observe(s1.Sub(s0).Seconds())
	}
	out, band, err := w.eval.RunShard(image, args.Shard, owners, fetch, publish, obs)
	if err != nil {
		// A failed attempt is never harvested; don't hold its spans.
		w.bank.drop(args.ReqID)
		// Tombstone the exchange entry: our published rows are part of a
		// failed attempt, and gang partners parked on — or racing toward —
		// our unpublished stages must fail immediately rather than ride
		// out the grace period or their own halo timeouts.
		w.exch.Fail(args.ReqID, err, minTime(deadline, time.Now().Add(5*time.Second)))
		w.met.Counter("dist.worker.errors").Add(1)
		w.log.Warn("dist.worker.eval_error", "req", args.ReqID, "shard", args.Shard, "err", err)
		return err
	}
	reply.RowLo, reply.RowHi = band.Lo, band.Hi
	reply.Stages = len(w.plan.Stages)
	if out != nil {
		reply.Data = append([]float32(nil), out.Data()...)
	}
	end := time.Now()
	sc.Record("shard_eval", start, end)
	w.tracer.Finish(sc)
	if args.Trace.Sampled {
		// The root worker span parents under the router-side span named
		// in the trace context; marking the entry done makes it
		// harvestable. Spans banked by Halo handlers serving this same
		// attempt on this worker ride along in the same entry.
		w.bank.add(args.ReqID, bankExpiry, WireSpan{
			Name: "shard_eval", Parent: args.Trace.Parent,
			StartUnixNano: start.UnixNano(), EndUnixNano: end.UnixNano(),
		})
		w.bank.finish(args.ReqID, args.Shard)
	}
	w.met.Histogram("dist.worker.eval_seconds", trace.LatencyBuckets).Observe(time.Since(start).Seconds())
	// Per-request memory attribution: the bytes this request actually
	// buffered on the worker — input band in, output band back. Halo
	// traffic is accounted separately (dist.worker.halo_* counters).
	w.met.Histogram("dist.worker.request_mem_bytes", trace.ByteBuckets).
		Observe(float64(int64(len(args.Rows)+len(reply.Data)) * 4))
	return nil
}

func (w *Worker) halo(args *HaloArgs, reply *HaloReply) error {
	w.haloReqs.Add(1)
	w.met.Counter("dist.worker.halo_requests").Add(1)
	timeout := time.Duration(args.TimeoutMs) * time.Millisecond
	if timeout <= 0 {
		return fmt.Errorf("distserve: halo request with no time budget")
	}
	h0 := time.Now()
	v, err := w.exch.Wait(args.ReqID, args.Stage, timeout)
	h1 := time.Now()
	w.met.Histogram("dist.worker.halo_serve_seconds", trace.LatencyBuckets).Observe(h1.Sub(h0).Seconds())
	if args.Sampled && err == nil {
		// A halo serve can begin before this worker's own Eval arrives,
		// so it can't nest under shard_eval; an empty parent parents it
		// under the router's cross-process span at stitch time.
		w.bank.add(args.ReqID, h1.Add(time.Duration(args.TimeoutMs)*time.Millisecond+5*time.Second), WireSpan{
			Name: fmt.Sprintf("halo_serve:s%d", args.Stage), Parent: "",
			StartUnixNano: h0.UnixNano(), EndUnixNano: h1.UnixNano(),
		})
	}
	if err != nil {
		return err
	}
	hr := v.(*haloRows)
	want := Range{args.Lo, args.Hi}
	if want.Lo < hr.rows.Lo || want.Hi > hr.rows.Hi {
		return fmt.Errorf("distserve: halo wants rows %v of stage %d, shard owns %v", want, args.Stage, hr.rows)
	}
	slice := SliceRows(hr.t, hr.rows.Lo, want)
	reply.Data = slice.Data()
	w.haloBts.Add(uint64(len(reply.Data) * 4))
	return nil
}

func minTime(a, b time.Time) time.Time {
	if a.Before(b) {
		return a
	}
	return b
}
