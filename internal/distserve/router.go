package distserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/rpc"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"splitcnn/internal/buildinfo"
	"splitcnn/internal/dist"
	"splitcnn/internal/graph"
	"splitcnn/internal/memobs"
	"splitcnn/internal/serve"
	"splitcnn/internal/snapshot"
	"splitcnn/internal/tensor"
	"splitcnn/internal/trace"
)

// Router errors surfaced as HTTP statuses.
var (
	// ErrNoCapacity: no healthy worker has a free pod slot (429).
	ErrNoCapacity = errors.New("distserve: no worker capacity")
	// ErrDeadline: the request budget ran out across retries (504).
	ErrDeadline = errors.New("distserve: deadline exceeded")
)

// RouterOptions configures the routing front end.
type RouterOptions struct {
	// Spec must match the workers' spec (signature-checked).
	Spec serve.Spec
	// Workers lists shard-worker RPC addresses (host:port).
	Workers []string
	// MaxShards caps gang width per request (0 = len(Workers)).
	MaxShards int
	// TailExecutors sizes the pool of graph-tail executors gathering
	// shard results into logits (default 2).
	TailExecutors int
	// RequestTimeout bounds queue+scatter+gather+tail (default 2s); a
	// request's timeout_ms may shorten it.
	RequestTimeout time.Duration
	// HealthInterval paces the health-check loop (default 1s).
	HealthInterval time.Duration
	// FailThreshold consecutive health failures eject a worker
	// (default 2); one success re-admits it.
	FailThreshold int
	// Retries is how many times a failed gang is re-dispatched on the
	// remaining healthy replicas (default 2).
	Retries int
	// Metrics receives serve.*/dist.* instruments (nil = private).
	Metrics *trace.Metrics
	// Logger receives request/lifecycle logs (nil discards).
	Logger *slog.Logger
	// TraceSample in (0,1] samples request-scoped wall spans
	// (scatter/shard/gather/tail), exposed at /tracez. Sampled requests
	// additionally harvest worker-side spans into one stitched,
	// skew-corrected timeline with a row per process.
	TraceSample float64
	TraceSeed   int64
	// SLO declares latency/error objectives in flag syntax
	// ("p99=50ms,err=0.1%"); when set, multi-window burn-rate gauges
	// (slo.*) appear on /metricsz. Empty = no SLO tracking.
	SLO string
	// ClockProbes is how many Shard.Clock round trips each skew refresh
	// uses (default 3; the min-RTT sample wins).
	ClockProbes int
	// RuntimeMetricsInterval, when positive, runs a background sampler
	// feeding runtime.* gauges (heap, GC, goroutines) into the registry.
	RuntimeMetricsInterval time.Duration
	// NoProfiler disables the continuous profiler behind /profilez.
	NoProfiler bool
	// ProfileWindow/ProfileEvery override the profiler's capture window
	// and duty-cycle period (defaults 1s / 15s).
	ProfileWindow time.Duration
	ProfileEvery  time.Duration
}

// workerState is the router's view of one replica.
type workerState struct {
	addr     string
	healthy  bool
	fails    int
	maxPods  int
	inflight atomic.Int64
	lastErr  string
	ejected  time.Time
	// dispatched counts Eval RPCs this worker accepted past its
	// capacity gate (success or handled non-capacity error) — the
	// router-side mirror of the worker's dist.worker.requests counter,
	// compared by the /clusterz consistency rollup.
	dispatched atomic.Uint64
	// build is the worker's binary identity from its last health reply.
	build buildinfo.Info
	// skew/skewRTT: latest clock-skew estimate (worker − router) and
	// the min-RTT it rode in on; skewOK gates stitching on having one.
	skew    time.Duration
	skewRTT time.Duration
	skewOK  bool
}

// WorkerInfo is one /v1/workers entry.
type WorkerInfo struct {
	Addr     string `json:"addr"`
	Healthy  bool   `json:"healthy"`
	InFlight int    `json:"in_flight"`
	MaxPods  int    `json:"max_pods"`
	LastErr  string `json:"last_err,omitempty"`
	// Build is the worker's binary identity (version/commit), so a
	// mixed-version gang is visible at a glance.
	Build *buildinfo.Info `json:"build,omitempty"`
	// ClockSkewSeconds / ClockRTTSeconds: latest skew estimate.
	ClockSkewSeconds float64 `json:"clock_skew_seconds"`
	ClockRTTSeconds  float64 `json:"clock_rtt_seconds"`
	Dispatched       uint64  `json:"dispatched"`
}

// Router fronts a pool of shard workers: health-checked membership with
// ejection and re-admission, least-loaded gang selection under per-pod
// capacity limits, deadline-propagating scatter/gather of image and
// feature-map row bands, whole-gang retry on worker failure, and local
// evaluation of the model's non-shardable tail. It serves the same
// /v1/predict surface as the single-process server, so clients (and
// loadtest) cannot tell which one they talk to — except that answers
// are computed by a gang.
type Router struct {
	plan *Plan
	sig  string
	opts RouterOptions

	pool  *dist.ClientPool
	tails chan *tailExec

	met    *trace.Metrics
	log    *slog.Logger
	tracer *trace.WallTracer
	slo    *trace.SLOTracker

	mu      sync.Mutex
	workers []*workerState

	reqID   atomic.Uint64
	started time.Time

	http     *http.Server
	listener net.Listener
	stop     chan struct{}
	draining atomic.Bool

	sampler *trace.RuntimeSampler
	prof    *memobs.Profiler
}

// tailExec owns one executor for the graph remainder. All tail
// executors share one materialized graph and store — safe because every
// op is stateless in eval mode — but each has private value slots and
// arena.
type tailExec struct {
	ex    *graph.Executor
	feeds graph.Feeds
}

// NewRouter materializes the model, extracts the plan, builds the tail
// executor pool, and prepares (but does not start) the HTTP front end.
// Workers need not be reachable yet: the health loop admits them as
// they come up.
func NewRouter(opts RouterOptions) (*Router, error) {
	if len(opts.Workers) == 0 {
		return nil, errors.New("distserve: router needs at least one worker address")
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 2 * time.Second
	}
	if opts.HealthInterval <= 0 {
		opts.HealthInterval = time.Second
	}
	if opts.FailThreshold <= 0 {
		opts.FailThreshold = 2
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	} else if opts.Retries == 0 {
		opts.Retries = 2
	}
	if opts.MaxShards <= 0 || opts.MaxShards > len(opts.Workers) {
		opts.MaxShards = len(opts.Workers)
	}
	if opts.TailExecutors <= 0 {
		opts.TailExecutors = 2
	}
	spec := opts.Spec
	spec.MaxBatch = 1
	m, store, err := serve.Materialize(spec)
	if err != nil {
		return nil, err
	}
	plan, err := NewPlan(m)
	if err != nil {
		return nil, err
	}
	fp, err := snapshot.FingerprintFile(spec.Snapshot)
	if err != nil {
		return nil, err
	}
	met := opts.Metrics
	if met == nil {
		met = trace.NewMetrics()
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	rt := &Router{
		plan: plan, sig: plan.Signature(fp), opts: opts,
		pool:  dist.NewClientPool(),
		tails: make(chan *tailExec, opts.TailExecutors),
		met:   met, log: logger,
		stop: make(chan struct{}),
	}
	if opts.TraceSample > 0 {
		seed := opts.TraceSeed
		if seed == 0 {
			seed = 1
		}
		rt.tracer = trace.NewWallTracer(opts.TraceSample, seed)
	}
	if opts.SLO != "" {
		slo, err := trace.ParseSLO(opts.SLO)
		if err != nil {
			return nil, err
		}
		rt.slo = trace.NewSLOTracker(slo)
	}
	for i := 0; i < opts.TailExecutors; i++ {
		ex, err := graph.NewExecutor(m.Graph, store)
		if err != nil {
			return nil, err
		}
		ex.UseArena(tensor.NewArena())
		rt.tails <- &tailExec{ex: ex, feeds: graph.Feeds{}}
	}
	for _, addr := range opts.Workers {
		rt.workers = append(rt.workers, &workerState{addr: addr, maxPods: 1})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", rt.handlePredict)
	mux.HandleFunc("/v1/models", rt.handleModels)
	mux.HandleFunc("/v1/workers", rt.handleWorkers)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/metricsz", rt.handleMetricsz)
	mux.HandleFunc("/tracez", rt.handleTracez)
	mux.HandleFunc("/clusterz", rt.handleClusterz)
	mux.HandleFunc("/profilez", rt.handleProfilez)
	rt.http = &http.Server{Handler: mux}
	return rt, nil
}

// Plan returns the router's shard plan (tests).
func (rt *Router) Plan() *Plan { return rt.plan }

// Metrics returns the router's registry.
func (rt *Router) Metrics() *trace.Metrics { return rt.met }

// Tracer returns the request tracer (nil unless TraceSample>0).
func (rt *Router) Tracer() *trace.WallTracer { return rt.tracer }

// Start probes every worker once (synchronously, so a ready fleet is
// dispatchable from the first request), starts the health loop, and
// serves HTTP on addr.
func (rt *Router) Start(addr string) (net.Addr, error) {
	rt.checkAll()
	go rt.healthLoop()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	rt.listener = ln
	rt.started = time.Now()
	if iv := rt.opts.RuntimeMetricsInterval; iv > 0 {
		rt.sampler = trace.StartRuntimeSampler(rt.met, iv)
	}
	if !rt.opts.NoProfiler {
		rt.prof = memobs.StartProfiler(memobs.ProfilerOptions{
			Window: rt.opts.ProfileWindow, Every: rt.opts.ProfileEvery, Metrics: rt.met,
		})
	}
	go rt.http.Serve(ln)
	rt.log.Info("dist.router.start", "addr", ln.Addr().String(),
		"workers", rt.opts.Workers, "max_shards", rt.opts.MaxShards,
		"stages", len(rt.plan.Stages), "revision", buildinfo.Get().Revision)
	return ln.Addr(), nil
}

// Shutdown drains: new requests get 503, the health loop stops, open
// connections close.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.draining.Store(true)
	close(rt.stop)
	rt.sampler.Stop()
	rt.prof.Stop()
	err := rt.http.Shutdown(ctx)
	rt.pool.Close()
	rt.log.Info("dist.router.stop", "requests", rt.met.Counter("dist.requests").Value())
	return err
}

// healthLoop probes every worker each interval, ejecting after
// FailThreshold consecutive failures and re-admitting on success.
func (rt *Router) healthLoop() {
	t := time.NewTicker(rt.opts.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.checkAll()
		}
	}
}

func (rt *Router) checkAll() {
	var wg sync.WaitGroup
	for _, ws := range rt.workers {
		wg.Add(1)
		go func(ws *workerState) {
			defer wg.Done()
			rt.checkOne(ws)
		}(ws)
	}
	wg.Wait()
	healthy := 0
	rt.mu.Lock()
	for _, ws := range rt.workers {
		if ws.healthy {
			healthy++
		}
	}
	rt.mu.Unlock()
	rt.met.Gauge("dist.workers_healthy").Set(float64(healthy))
}

func (rt *Router) checkOne(ws *workerState) {
	var hr HealthReply
	err := rt.pool.Call(ws.addr, "Shard.Health", &HealthArgs{}, &hr, rt.opts.HealthInterval)
	if err == nil && hr.Model != rt.sig {
		err = fmt.Errorf("model signature mismatch (worker runs a different model or weights)")
	}
	var est dist.SkewEstimate
	estOK := false
	if err == nil {
		est, estOK = rt.probeClock(ws.addr)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if err != nil {
		ws.fails++
		ws.lastErr = err.Error()
		if ws.healthy && ws.fails >= rt.opts.FailThreshold {
			ws.healthy = false
			ws.ejected = time.Now()
			rt.met.Counter("dist.ejections").Add(1)
			rt.log.Warn("dist.router.eject", "worker", ws.addr, "err", err)
		}
		return
	}
	ws.fails = 0
	ws.maxPods = hr.MaxPods
	ws.lastErr = ""
	ws.build = hr.Build
	if estOK {
		ws.skew, ws.skewRTT, ws.skewOK = est.Offset, est.RTT, true
		rt.met.Gauge("dist.clock_skew_seconds." + ws.addr).Set(est.Offset.Seconds())
		rt.met.Gauge("dist.clock_rtt_seconds." + ws.addr).Set(est.RTT.Seconds())
	}
	if !ws.healthy {
		ws.healthy = true
		rt.met.Counter("dist.readmissions").Add(1)
		rt.log.Info("dist.router.readmit", "worker", ws.addr)
	}
}

// probeClock refreshes one worker's clock-skew estimate: ClockProbes
// Shard.Clock round trips, min-RTT sample wins (dist.EstimateSkew).
func (rt *Router) probeClock(addr string) (dist.SkewEstimate, bool) {
	probes := rt.opts.ClockProbes
	if probes <= 0 {
		probes = 3
	}
	est, err := dist.EstimateSkew(probes, func() (time.Time, error) {
		var cr ClockReply
		if err := rt.pool.Call(addr, "Shard.Clock", &ClockArgs{}, &cr, rt.opts.HealthInterval); err != nil {
			return time.Time{}, err
		}
		return time.Unix(0, cr.UnixNano), nil
	})
	return est, err == nil
}

// ejectNow immediately marks a worker unhealthy after a dispatch-path
// transport failure (connection refused, EOF mid-call): unlike a health
// probe miss, a dead TCP peer is definitive. The health loop re-admits
// it when it answers again.
func (rt *Router) ejectNow(ws *workerState, err error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	ws.fails = rt.opts.FailThreshold
	ws.lastErr = err.Error()
	if ws.healthy {
		ws.healthy = false
		ws.ejected = time.Now()
		rt.met.Counter("dist.ejections").Add(1)
		rt.log.Warn("dist.router.eject", "worker", ws.addr, "err", err)
	}
}

// pickGang selects up to MaxShards healthy workers with free pod
// capacity, least-loaded first (ties broken by address for
// determinism). It reserves one in-flight slot on each.
func (rt *Router) pickGang() ([]*workerState, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var avail []*workerState
	for _, ws := range rt.workers {
		if ws.healthy && ws.inflight.Load() < int64(ws.maxPods) {
			avail = append(avail, ws)
		}
	}
	if len(avail) == 0 {
		return nil, ErrNoCapacity
	}
	sort.Slice(avail, func(i, j int) bool {
		li, lj := avail[i].inflight.Load(), avail[j].inflight.Load()
		if li != lj {
			return li < lj
		}
		return avail[i].addr < avail[j].addr
	})
	gang := avail[:min(rt.opts.MaxShards, len(avail))]
	for _, ws := range gang {
		ws.inflight.Add(1)
	}
	return gang, nil
}

func (rt *Router) releaseGang(gang []*workerState) {
	for _, ws := range gang {
		ws.inflight.Add(-1)
	}
}

// Predict runs one image through the distributed path: scatter image
// row bands to a gang, gather final-stage bands, finish the tail
// locally. On any shard failure the whole gang is retried (fresh
// attempt ID) on the remaining healthy replicas until Retries or the
// deadline is exhausted.
func (rt *Router) Predict(image []float32, deadline time.Time, sc *trace.SpanContext) ([]float32, int, error) {
	logits, shards, _, err := rt.predict(image, deadline, sc)
	return logits, shards, err
}

// predict is Predict plus the harvested worker spans of the winning
// attempt (nil when unsampled or tracing is off).
func (rt *Router) predict(image []float32, deadline time.Time, sc *trace.SpanContext) ([]float32, int, []ProcessSpans, error) {
	want := bandLen(rt.plan.InC, rt.plan.InH, rt.plan.InW)
	if len(image) != want {
		return nil, 0, nil, fmt.Errorf("distserve: image has %d values, want %d", len(image), want)
	}
	full := tensor.New(1, rt.plan.InC, rt.plan.InH, rt.plan.InW)
	copy(full.Data(), image)
	base := fmt.Sprintf("req-%06d", rt.reqID.Add(1))

	var lastErr error
	for attempt := 0; attempt <= rt.opts.Retries; attempt++ {
		if time.Until(deadline) <= 0 {
			break
		}
		if attempt > 0 {
			rt.met.Counter("dist.retries").Add(1)
		}
		gang, err := rt.pickGang()
		if err != nil {
			if lastErr != nil {
				// Capacity vanished because we just ejected the fleet's
				// only replicas; surface the underlying failure.
				return nil, 0, nil, lastErr
			}
			return nil, 0, nil, err
		}
		logits, procs, err := rt.attempt(full, fmt.Sprintf("%s/a%d", base, attempt), attempt, gang, deadline, sc)
		rt.releaseGang(gang)
		if err == nil {
			return logits, len(gang), procs, nil
		}
		lastErr = err
		rt.log.Warn("dist.router.attempt_failed", "req", base, "attempt", attempt, "err", err)
	}
	if lastErr == nil {
		lastErr = ErrDeadline
	}
	if time.Until(deadline) <= 0 {
		lastErr = fmt.Errorf("%w (last error: %v)", ErrDeadline, lastErr)
	}
	return nil, 0, nil, lastErr
}

// attempt dispatches one gang-wide evaluation and finishes the tail.
func (rt *Router) attempt(full *tensor.Tensor, reqID string, attemptNo int, gang []*workerState, deadline time.Time, sc *trace.SpanContext) ([]float32, []ProcessSpans, error) {
	n := len(gang)
	owners := rt.plan.Owners(n)
	addrs := make([]string, n)
	for i, ws := range gang {
		addrs[i] = ws.addr
	}
	tc := TraceContext{Attempt: attemptNo}
	if sc != nil {
		tc = TraceContext{ID: sc.ID(), Sampled: true, Parent: scatterSpanName, Attempt: attemptNo}
	}
	scatterStart := time.Now()
	replies := make([]EvalReply, n)
	errs := make([]error, n)
	durs := make([]time.Duration, n)
	var wg sync.WaitGroup
	for i := range gang {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			imgR := rt.plan.ImageRange(owners, i)
			args := &EvalArgs{
				ReqID: reqID, Model: rt.sig,
				Shard: i, Gang: addrs,
				TimeoutMs: time.Until(deadline).Milliseconds(),
				RowLo:     imgR.Lo, RowHi: imgR.Hi,
				Trace: tc,
			}
			if !imgR.Empty() {
				args.Rows = SliceRows(full, 0, imgR).Data()
			}
			t0 := time.Now()
			errs[i] = rt.pool.Call(addrs[i], "Shard.Eval", args, &replies[i], time.Until(deadline))
			durs[i] = time.Since(t0)
		}(i)
	}
	wg.Wait()
	sc.Record("scatter_gather", scatterStart, time.Now())
	// Inspect every shard's outcome before giving up: a dead gang member
	// typically makes its *neighbors* fail first (their halo fetches
	// error as handled rpc.ServerErrors), and only the member's own slot
	// carries the transport error that identifies who to eject. Returning
	// on the first error would let retries re-pick the corpse.
	var firstErr error
	for i, err := range errs {
		if err == nil {
			// The worker accepted and completed the eval: mirror its
			// dist.worker.requests increment for the /clusterz
			// consistency rollup.
			gang[i].dispatched.Add(1)
			rt.met.Counter("dist.dispatches").Add(1)
			continue
		}
		var se rpc.ServerError
		if errors.As(err, &se) {
			// The worker handled the call and said no (capacity, model
			// mismatch, internal error): not a liveness signal.
			if !strings.Contains(err.Error(), capacityPrefix) {
				// Non-capacity handled errors passed the worker's
				// capacity gate and were counted there too.
				gang[i].dispatched.Add(1)
				rt.met.Counter("dist.dispatches").Add(1)
				rt.met.Counter("dist.shard_errors").Add(1)
			}
		} else {
			rt.ejectNow(gang[i], err)
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("shard %d/%d on %s: %w", i, n, addrs[i], err)
		}
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}
	rt.observeStraggler(durs)

	// Gather: stitch the final-stage bands into one feature map.
	gatherStart := time.Now()
	last := rt.plan.Last()
	fm := tensor.New(1, last.OutC, last.OutH, last.OutW)
	covered := 0
	for i := range replies {
		r := Range{replies[i].RowLo, replies[i].RowHi}
		if r != owners[len(rt.plan.Stages)-1][i] {
			return nil, nil, fmt.Errorf("distserve: shard %d returned band %v, plan assigns %v", i, r, owners[len(rt.plan.Stages)-1][i])
		}
		if r.Empty() {
			continue
		}
		if len(replies[i].Data) != bandLen(last.OutC, r.Len(), last.OutW) {
			return nil, nil, fmt.Errorf("distserve: shard %d band %v has %d floats", i, r, len(replies[i].Data))
		}
		band := tensor.New(1, last.OutC, r.Len(), last.OutW)
		copy(band.Data(), replies[i].Data)
		copyRows(fm, r.Lo, band, 0, r.Len())
		covered += r.Len()
	}
	if covered != last.OutH {
		return nil, nil, fmt.Errorf("distserve: gathered %d of %d rows of %s", covered, last.OutH, last.Name)
	}
	sc.Record("gather", gatherStart, time.Now())

	// Tail: resume the graph from the gathered feature map.
	tailStart := time.Now()
	var te *tailExec
	select {
	case te = <-rt.tails:
	case <-time.After(time.Until(deadline)):
		return nil, nil, ErrDeadline
	}
	outs, err := te.ex.ForwardFrom(te.feeds, map[string]*tensor.Tensor{rt.plan.Tail: fm})
	var logits []float32
	if err == nil {
		logits = append([]float32(nil), outs[0].Data()...)
	}
	rt.tails <- te
	sc.Record("tail", tailStart, time.Now())
	if err != nil {
		return nil, nil, err
	}
	var procs []ProcessSpans
	if tc.Sampled {
		procs = rt.harvestSpans(reqID, gang)
	}
	return logits, procs, nil
}

// observeStraggler feeds the per-shard forward histograms: every
// shard's Eval round trip, plus the attempt's straggler ratio
// (slowest / median shard time) — the per-request number that says
// whether the gang is balanced or one member drags the tail.
func (rt *Router) observeStraggler(durs []time.Duration) {
	for _, d := range durs {
		rt.met.Histogram("dist.shard_forward_seconds", trace.LatencyBuckets).Observe(d.Seconds())
	}
	if len(durs) == 0 {
		return
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	median := sorted[len(sorted)/2]
	if median <= 0 {
		return
	}
	ratio := float64(sorted[len(sorted)-1]) / float64(median)
	rt.met.Histogram("dist.straggler_ratio", stragglerBuckets).Observe(ratio)
}

// stragglerBuckets resolve ratios near 1 finely (a balanced gang) and
// still distinguish 2× from 10× stragglers.
var stragglerBuckets = []float64{1, 1.05, 1.1, 1.25, 1.5, 2, 3, 5, 10}

// harvestSpans collects the gang's banked stage spans for one sampled
// attempt (Shard.Spans, fan-out) and pairs each reply with the
// worker's latest clock-skew estimate. Workers without a skew estimate
// yet are skipped — an uncorrected row would be worse than a missing
// one. Harvest failures only cost timeline rows, never the request.
func (rt *Router) harvestSpans(reqID string, gang []*workerState) []ProcessSpans {
	replies := make([]SpansReply, len(gang))
	errs := make([]error, len(gang))
	var wg sync.WaitGroup
	for i, ws := range gang {
		wg.Add(1)
		go func(i int, ws *workerState) {
			defer wg.Done()
			errs[i] = rt.pool.Call(ws.addr, "Shard.Spans", &SpansArgs{ReqID: reqID}, &replies[i], time.Second)
		}(i, ws)
	}
	wg.Wait()
	var procs []ProcessSpans
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for i, ws := range gang {
		if errs[i] != nil || !replies[i].Found {
			rt.met.Counter("dist.span_harvest_misses").Add(1)
			continue
		}
		if !ws.skewOK {
			rt.met.Counter("dist.span_harvest_misses").Add(1)
			continue
		}
		procs = append(procs, ProcessSpans{
			Process:       fmt.Sprintf("shard%d %s", replies[i].Shard, ws.addr),
			Skew:          ws.skew,
			Uncertainty:   ws.skewRTT / 2,
			DefaultParent: scatterSpanName,
			Spans:         replies[i].Spans,
		})
	}
	return procs
}

// recordStitched verifies and exports one sampled request's stitched
// timeline: router spans on the "router" row, each worker's harvested
// spans (already skew-corrected by Stitch) on a "shard<i> <addr>" row.
// Verification failures increment dist.stitch_errors but still export —
// a broken timeline you can look at beats a silently missing one.
func (rt *Router) recordStitched(sc *trace.SpanContext, procs []ProcessSpans) {
	if sc == nil || rt.tracer == nil {
		return
	}
	var spans []StitchedSpan
	for _, s := range sc.Spans() {
		spans = append(spans, StitchedSpan{
			Process: "router", Name: s.Name, Parent: routerSpanParents[s.Name],
			Start: s.Start, End: s.End,
		})
	}
	spans = append(spans, Stitch(procs)...)
	if err := VerifyStitched(spans); err != nil {
		rt.met.Counter("dist.stitch_errors").Add(1)
		rt.log.Warn("dist.router.stitch_error", "req", sc.ID(), "err", err)
	}
	ExportStitched(rt.tracer, sc.ID(), spans)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

// handlePredict mirrors the single-process server's /v1/predict
// contract (serve.PredictRequest/PredictResponse): same body, same
// statuses — 429 when the fleet is saturated, 504 past the deadline.
// BatchSize reports the gang width that answered.
func (rt *Router) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	if rt.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{"draining"})
		return
	}
	start := time.Now()
	id := fmt.Sprintf("http-%06d", rt.reqID.Add(1))
	sc := rt.tracer.Request(id)
	rt.met.Counter("dist.requests").Add(1)
	status := 0
	defer func() {
		rt.slo.Observe(time.Since(start), status >= 500)
		rt.log.Info("request", "id", id, "status", status,
			"latency_us", time.Since(start).Microseconds())
	}()
	fail := func(code int, msg string) {
		status = code
		rt.met.Counter("dist.request_errors").Add(1)
		writeJSON(w, code, errorResponse{msg})
		rt.tracer.Finish(sc)
	}
	var req serve.PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	timeout := rt.opts.RequestTimeout
	if req.TimeoutMs > 0 {
		if t := time.Duration(req.TimeoutMs) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	deadline := start.Add(timeout)
	sc.Record("admit", start, time.Now())
	logits, shards, procs, err := rt.predict(req.Image, deadline, sc)
	if err != nil {
		switch {
		case errors.Is(err, ErrNoCapacity):
			fail(http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrDeadline), errors.Is(err, dist.ErrTimeout):
			rt.met.Counter("dist.timeouts").Add(1)
			fail(http.StatusGatewayTimeout, err.Error())
		default:
			fail(http.StatusInternalServerError, err.Error())
		}
		return
	}
	lat := time.Since(start)
	rt.met.Histogram("serve.latency_seconds", trace.LatencyBuckets).Observe(lat.Seconds())
	argmax := 0
	for i, v := range logits {
		if v > logits[argmax] {
			argmax = i
		}
	}
	status = http.StatusOK
	respondStart := time.Now()
	writeJSON(w, http.StatusOK, serve.PredictResponse{
		Model:     rt.opts.Spec.Name,
		Argmax:    argmax,
		Logits:    logits,
		BatchSize: shards,
		QueueUs:   0,
		LatencyUs: lat.Microseconds(),
	})
	sc.Record("respond", respondStart, time.Now())
	// The request root closes the span tree; recordStitched (not
	// Finish) exports sampled requests so worker rows land on the same
	// timeline.
	sc.Record("request", start, time.Now())
	rt.recordStitched(sc, procs)
}

func (rt *Router) handleModels(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, []serve.ModelInfo{{
		Name:     rt.opts.Spec.Name,
		Input:    [3]int{rt.plan.InC, rt.plan.InH, rt.plan.InW},
		Classes:  rt.plan.Classes,
		MaxBatch: 1,
	}})
}

func (rt *Router) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	rt.mu.Lock()
	infos := make([]WorkerInfo, 0, len(rt.workers))
	for _, ws := range rt.workers {
		info := WorkerInfo{
			Addr: ws.addr, Healthy: ws.healthy,
			InFlight: int(ws.inflight.Load()), MaxPods: ws.maxPods,
			LastErr:    ws.lastErr,
			Dispatched: ws.dispatched.Load(),
		}
		if ws.build != (buildinfo.Info{}) {
			b := ws.build
			info.Build = &b
		}
		if ws.skewOK {
			info.ClockSkewSeconds = ws.skew.Seconds()
			info.ClockRTTSeconds = ws.skewRTT.Seconds()
		}
		infos = append(infos, info)
	}
	rt.mu.Unlock()
	writeJSON(w, http.StatusOK, infos)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	type health struct {
		Status string `json:"status"`
		buildinfo.Info
		Workers       int     `json:"workers"`
		Healthy       int     `json:"healthy_workers"`
		Stages        int     `json:"shard_stages"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	rt.mu.Lock()
	healthy := 0
	for _, ws := range rt.workers {
		if ws.healthy {
			healthy++
		}
	}
	total := len(rt.workers)
	rt.mu.Unlock()
	resp := health{Status: "ok", Info: buildinfo.Get(),
		Workers: total, Healthy: healthy, Stages: len(rt.plan.Stages)}
	if !rt.started.IsZero() {
		resp.UptimeSeconds = time.Since(rt.started).Seconds()
	}
	code := http.StatusOK
	switch {
	case rt.draining.Load():
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	case healthy == 0:
		resp.Status = "no healthy workers"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

func (rt *Router) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	trace.MetricsHandler(rt.met, func(m *trace.Metrics) {
		lat := m.Histogram("serve.latency_seconds", trace.LatencyBuckets)
		m.Gauge("serve.latency_p50_seconds").Set(lat.Quantile(0.5))
		m.Gauge("serve.latency_p99_seconds").Set(lat.Quantile(0.99))
		rt.slo.Publish(m)
		if rt.tracer != nil {
			m.Gauge("trace.dropped_spans").Set(float64(rt.tracer.DroppedSpans()))
		}
	})(w, r)
}

func (rt *Router) handleProfilez(w http.ResponseWriter, r *http.Request) {
	if rt.prof == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{
			"continuous profiling disabled (NoProfiler set)"})
		return
	}
	memobs.Handler(rt.prof, nil)(w, r)
}

func (rt *Router) handleTracez(w http.ResponseWriter, _ *http.Request) {
	if rt.tracer == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{
			"request tracing disabled (start with a trace sample rate > 0)"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	rt.tracer.Trace().WriteJSON(w)
}
