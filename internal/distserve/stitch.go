package distserve

import (
	"fmt"
	"sort"
	"time"

	"splitcnn/internal/trace"
)

// Cross-process trace stitching: the router harvests worker-side stage
// spans (Shard.Spans), pulls their worker-local timestamps onto its own
// clock using the per-worker skew estimate from the health loop, and
// lays everything onto one timeline with a row per process. The result
// is the distributed answer to PR 4's single-process request traces —
// one sampled request reads as router lanes (admit → scatter_gather →
// gather → tail → respond) with each worker's shard_eval, stage and
// halo spans nested under them.

// Router-side span parentage. The "request" span is the root.
var routerSpanParents = map[string]string{
	"admit":          "request",
	"scatter_gather": "request",
	"gather":         "request",
	"tail":           "request",
	"respond":        "request",
}

// scatterSpanName is the router span every cross-process worker span
// parents under: workers are only active inside the scatter window.
const scatterSpanName = "scatter_gather"

// StitchedSpan is one span on the unified, router-clock timeline.
type StitchedSpan struct {
	// Process names the timeline row: "router" or "shard<i> <addr>".
	Process string
	// Name / Parent: span identity and the span it must nest under
	// (same process preferred, any process otherwise; "" = root).
	Name   string
	Parent string
	// Start/End are on the router's clock (worker times skew-corrected).
	Start, End time.Time
	// Uncertainty bounds how far this span's timestamps may sit from
	// truth after skew correction (half the skew probe's best RTT;
	// zero for router-local spans).
	Uncertainty time.Duration
}

// ProcessSpans is one process's contribution to a stitched timeline.
type ProcessSpans struct {
	Process     string
	Skew        time.Duration // process clock − router clock
	Uncertainty time.Duration
	// DefaultParent adopts spans with an empty Parent (cross-process
	// roots like shard_eval when the wire context had no parent, and
	// halo_serve spans).
	DefaultParent string
	Spans         []WireSpan
}

// Stitch corrects every process's spans onto the router clock and
// resolves default parents. Span order is preserved per process.
func Stitch(procs []ProcessSpans) []StitchedSpan {
	var out []StitchedSpan
	for _, p := range procs {
		for _, s := range p.Spans {
			parent := s.Parent
			if parent == "" {
				parent = p.DefaultParent
			}
			out = append(out, StitchedSpan{
				Process:     p.Process,
				Name:        s.Name,
				Parent:      parent,
				Start:       time.Unix(0, s.StartUnixNano-p.Skew.Nanoseconds()),
				End:         time.Unix(0, s.EndUnixNano-p.Skew.Nanoseconds()),
				Uncertainty: p.Uncertainty,
			})
		}
	}
	return out
}

// VerifyStitched checks the stitched timeline's causal structure: every
// span ends at or after it starts, and every non-root span nests inside
// some span named by its Parent — same-process parents matched exactly,
// cross-process parents within the combined clock uncertainty of the
// two processes. A failure means the skew correction (or the stitching
// itself) produced a physically impossible timeline.
func VerifyStitched(spans []StitchedSpan) error {
	byName := map[string][]*StitchedSpan{}
	for i := range spans {
		s := &spans[i]
		if s.End.Before(s.Start) {
			return fmt.Errorf("stitch: span %s/%s ends %v before it starts",
				s.Process, s.Name, s.Start.Sub(s.End))
		}
		byName[s.Name] = append(byName[s.Name], s)
	}
	for i := range spans {
		s := &spans[i]
		if s.Parent == "" {
			continue
		}
		parents := byName[s.Parent]
		if len(parents) == 0 {
			return fmt.Errorf("stitch: span %s/%s has no parent named %q",
				s.Process, s.Name, s.Parent)
		}
		ok := false
		for _, p := range parents {
			eps := time.Duration(0)
			if p.Process != s.Process {
				eps = s.Uncertainty + p.Uncertainty
			}
			if !s.Start.Before(p.Start.Add(-eps)) && !s.End.After(p.End.Add(eps)) {
				ok = true
				break
			}
		}
		if !ok {
			p := parents[0]
			return fmt.Errorf("stitch: span %s/%s [%v, %v] escapes parent %q [%v, %v] (slack %v)",
				s.Process, s.Name, s.Start.UnixNano(), s.End.UnixNano(),
				s.Parent, p.Start.UnixNano(), p.End.UnixNano(), s.Uncertainty+p.Uncertainty)
		}
	}
	return nil
}

// ExportStitched lays a verified timeline into tracer as one row per
// process, tagging every event with the request ID and its parent span
// name so the export is re-parseable (report -dist, tests) without a
// side channel.
func ExportStitched(tracer *trace.WallTracer, reqID string, spans []StitchedSpan) {
	for _, s := range spans {
		args := map[string]any{"request": reqID}
		if s.Parent != "" {
			args["parent"] = s.Parent
		}
		if s.Uncertainty > 0 {
			args["clock_unc_us"] = float64(s.Uncertainty.Microseconds())
		}
		tracer.SpanAt(s.Process, s.Name, s.Start, s.End, args)
	}
}

// StitchedFromEvents reconstructs a stitched timeline from exported
// Chrome trace events (the inverse of ExportStitched), filtered to one
// request ID. Events carry microsecond floats, so round-tripped times
// are exact only to the microsecond. Returns spans sorted by start.
func StitchedFromEvents(events []trace.Event, reqID string) []StitchedSpan {
	var out []StitchedSpan
	for _, e := range events {
		if e.Args == nil || e.Args["request"] != reqID {
			continue
		}
		s := StitchedSpan{
			Process: e.Cat,
			Name:    e.Name,
			Start:   time.Unix(0, int64(e.TS*1e3)),
			End:     time.Unix(0, int64((e.TS+e.Dur)*1e3)),
		}
		if p, ok := e.Args["parent"].(string); ok {
			s.Parent = p
		}
		if u, ok := e.Args["clock_unc_us"].(float64); ok {
			s.Uncertainty = time.Duration(u * 1e3)
		}
		out = append(out, s)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}
