package distserve

import (
	"sync"
	"time"
)

// spanBank holds worker-side stage spans of sampled requests until the
// router harvests them via Shard.Spans. Entries are keyed by the
// attempt-scoped ReqID, created on first touch (a neighbor's Halo can
// land before our own Eval), consumed by take, and bounded two ways:
// a FIFO capacity (oldest evicted — a router that never harvests can't
// grow a worker's memory) and an expiry swept by the worker janitor.
type spanBank struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*bankEntry
	order   []string
	evicted int64
}

type bankEntry struct {
	shard  int
	done   bool
	expiry time.Time
	spans  []WireSpan
}

func newSpanBank(capacity int) *spanBank {
	if capacity <= 0 {
		capacity = 256
	}
	return &spanBank{cap: capacity, entries: make(map[string]*bankEntry)}
}

// ensure returns the entry for reqID, creating (and possibly evicting
// the oldest) as needed. Callers hold b.mu.
func (b *spanBank) ensure(reqID string, expiry time.Time) *bankEntry {
	e := b.entries[reqID]
	if e == nil {
		if len(b.order) >= b.cap {
			oldest := b.order[0]
			b.order = b.order[1:]
			delete(b.entries, oldest)
			b.evicted++
		}
		e = &bankEntry{shard: -1, expiry: expiry}
		b.entries[reqID] = e
		b.order = append(b.order, reqID)
	}
	if expiry.After(e.expiry) {
		e.expiry = expiry
	}
	return e
}

// add banks spans for reqID.
func (b *spanBank) add(reqID string, expiry time.Time, spans ...WireSpan) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.ensure(reqID, expiry)
	e.spans = append(e.spans, spans...)
}

// finish marks reqID's entry harvest-ready and stamps the shard index.
func (b *spanBank) finish(reqID string, shard int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e := b.entries[reqID]; e != nil {
		e.shard = shard
		e.done = true
	}
}

// drop discards reqID's entry (failed attempts are never harvested).
func (b *spanBank) drop(reqID string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.entries[reqID]; ok {
		delete(b.entries, reqID)
		b.removeOrder(reqID)
	}
}

// take consumes reqID's banked spans if the entry is harvest-ready.
func (b *spanBank) take(reqID string) (shard int, spans []WireSpan, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[reqID]
	if e == nil || !e.done {
		return 0, nil, false
	}
	delete(b.entries, reqID)
	b.removeOrder(reqID)
	return e.shard, e.spans, true
}

// sweep drops expired entries; returns how many were dropped.
func (b *spanBank) sweep(now time.Time) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	var kept []string
	dropped := 0
	for _, id := range b.order {
		if e := b.entries[id]; e != nil && now.After(e.expiry) {
			delete(b.entries, id)
			dropped++
		} else {
			kept = append(kept, id)
		}
	}
	b.order = kept
	return dropped
}

func (b *spanBank) removeOrder(reqID string) {
	for i, id := range b.order {
		if id == reqID {
			b.order = append(b.order[:i], b.order[i+1:]...)
			return
		}
	}
}

func (b *spanBank) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.entries)
}
