package hmms

import (
	"sort"

	"splitcnn/internal/trace"
)

// MaxLiveBytes returns the peak of simultaneously-live block bytes in
// one pool over the program's op timeline — the demand the allocator
// must satisfy. For a sound allocator it is a lower bound on the pool's
// static size; the difference is fragmentation.
func (m *MemoryPlan) MaxLiveBytes(pool Pool) int64 {
	// Sweep lifetimes: a block occupies [Start, End] inclusive, so it
	// contributes from Start and stops after End.
	deltas := map[int]int64{}
	for _, b := range m.Blocks {
		if b.Pool != pool {
			continue
		}
		deltas[b.Start] += b.Bytes
		deltas[b.End+1] -= b.Bytes
	}
	points := make([]int, 0, len(deltas))
	for op := range deltas {
		points = append(points, op)
	}
	sort.Ints(points)
	var live, peak int64
	for _, op := range points {
		live += deltas[op]
		if live > peak {
			peak = live
		}
	}
	return peak
}

// Fragmentation returns the fraction of a pool's static size that is
// never simultaneously live: 1 − MaxLiveBytes/PoolBytes. Zero means
// the first-fit layout is perfectly tight; the NoReuse ablation drives
// it toward one.
func (m *MemoryPlan) Fragmentation(pool Pool) float64 {
	total := m.PoolBytes[pool]
	if total <= 0 {
		return 0
	}
	return 1 - float64(m.MaxLiveBytes(pool))/float64(total)
}

// RecordMetrics publishes the static plan into a metrics registry. The
// mem.device_high_water_bytes gauge is DeviceBytes() exactly (the
// allocator high-water mark across both device pools), so tests and
// dashboards can cross-check it against the simulator's planned
// footprint with ==.
func (m *MemoryPlan) RecordMetrics(reg *trace.Metrics) {
	reg.Gauge("mem.pool_host_bytes").Set(float64(m.PoolBytes[PoolHost]))
	reg.Gauge("mem.pool_device_param_bytes").Set(float64(m.PoolBytes[PoolDeviceParam]))
	reg.Gauge("mem.pool_device_general_bytes").Set(float64(m.PoolBytes[PoolDeviceGeneral]))
	reg.Gauge("mem.device_high_water_bytes").Set(float64(m.DeviceBytes()))
	reg.Gauge("mem.no_reuse_bytes").Set(float64(m.NoReuseBytes))
	reg.Gauge("mem.live_peak_device_general_bytes").Set(float64(m.MaxLiveBytes(PoolDeviceGeneral)))
	reg.Gauge("mem.fragmentation_device_general").Set(m.Fragmentation(PoolDeviceGeneral))
	reg.Counter("mem.blocks").Add(int64(len(m.Blocks)))
}
