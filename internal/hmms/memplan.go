package hmms

import (
	"fmt"

	"splitcnn/internal/memlayout"
)

// Pool identifies one of the three contiguous memory pools of §4.4.
type Pool int

// Memory pools.
const (
	// PoolHost is the pinned host pool receiving offloaded TSOs.
	PoolHost Pool = iota
	// PoolDeviceParam holds parameters and their gradients.
	PoolDeviceParam
	// PoolDeviceGeneral holds activations, gradients, and workspace.
	PoolDeviceGeneral
)

// String names the pool.
func (p Pool) String() string {
	switch p {
	case PoolHost:
		return "host"
	case PoolDeviceParam:
		return "device-param"
	case PoolDeviceGeneral:
		return "device-general"
	}
	return fmt.Sprintf("Pool(%d)", int(p))
}

// Block is one static allocation: a TSO (or workspace) placed at a fixed
// offset for a fixed op-index lifetime.
type Block struct {
	Name string
	Pool Pool
	// Start/End bound the lifetime in op indices (inclusive): the block
	// is live from the start of op Start through the end of op End.
	Start, End int
	Offset     int64
	Bytes      int64
}

// MemoryPlan is the output of static memory planning: every storage
// object has a fixed offset, and each pool has a static size equal to
// the peak of its first-fit layout. Planning happens entirely offline,
// so there is no runtime allocation (§4.4).
type MemoryPlan struct {
	Blocks    []*Block
	PoolBytes map[Pool]int64
	// NoReuseBytes is what the device general pool would need without
	// lifetime-based reuse (every TSO resident simultaneously) — the
	// ablation baseline for the first-fit allocator.
	NoReuseBytes int64
}

// DeviceBytes returns total planned device memory (both device pools).
func (m *MemoryPlan) DeviceBytes() int64 {
	return m.PoolBytes[PoolDeviceParam] + m.PoolBytes[PoolDeviceGeneral]
}

// Allocator is the allocation strategy for the general pools.
type Allocator int

// Allocation strategies.
const (
	// FirstFit places each block at the lowest offset where it fits
	// among live blocks — the paper's strategy.
	FirstFit Allocator = iota
	// NoReuse gives every block a distinct offset (no lifetime reuse);
	// used only by the allocator ablation.
	NoReuse
)

// PlanMemory performs step five of §4: it derives every TSO's lifetime
// from the program, the storage assignment, and the offload plan, then
// lays the TSOs out in their pools with the chosen allocator.
//
// Lifetimes follow the plan's critical moments: an offloaded TSO's
// device block dies at its end-of-offload synchronization and a fresh
// device block is born at prefetch start; its host block lives from
// offload start to its last backward read; workspace blocks live only
// during their op.
func PlanMemory(p *Program, a *Assignment, plan *OffloadPlan, alloc Allocator) *MemoryPlan {
	lastOp := len(p.Ops) - 1
	var blocks []*Block

	for _, tso := range a.TSOs {
		name := p.Tensors[tso.Tensors[0]].Name
		switch tso.Kind {
		case KParam, KParamGrad:
			blocks = append(blocks, &Block{Name: name, Pool: PoolDeviceParam, Start: 0, End: lastOp, Bytes: tso.Bytes})
			continue
		}
		// Lifetime bounds over member tensors.
		start, end := lastOp+1, -1
		for _, tid := range tso.Tensors {
			t := p.Tensors[tid]
			s := t.Producer
			if s < 0 {
				s = 0 // external input: resident from the start
			}
			if s < start {
				start = s
			}
			if e := t.LastUse(); e > end {
				end = e
			}
		}
		if end < 0 {
			continue // dead tensor: never used
		}
		if e := plan.ByTSO(tso.ID); e != nil {
			// Device residency splits in two: [start, SyncAtOp] and
			// [PrefetchAtOp, end]; the host copy spans the middle.
			blocks = append(blocks,
				&Block{Name: name, Pool: PoolDeviceGeneral, Start: start, End: e.SyncAtOp, Bytes: tso.Bytes},
				&Block{Name: name + ".pf", Pool: PoolDeviceGeneral, Start: e.PrefetchAtOp, End: end, Bytes: tso.Bytes},
				&Block{Name: name + ".host", Pool: PoolHost, Start: e.OffloadAtOp, End: end, Bytes: tso.Bytes},
			)
			continue
		}
		blocks = append(blocks, &Block{Name: name, Pool: PoolDeviceGeneral, Start: start, End: end, Bytes: tso.Bytes})
	}
	// Workspace: alive only during its op (cuDNN workspace analogue).
	for _, op := range p.Ops {
		if op.Workspace > 0 {
			blocks = append(blocks, &Block{Name: op.Name + ".ws", Pool: PoolDeviceGeneral, Start: op.Index, End: op.Index, Bytes: op.Workspace})
		}
	}

	m := &MemoryPlan{Blocks: blocks, PoolBytes: make(map[Pool]int64)}
	for _, pool := range []Pool{PoolHost, PoolDeviceParam, PoolDeviceGeneral} {
		var sel []*Block
		for _, b := range blocks {
			if b.Pool == pool {
				sel = append(sel, b)
			}
		}
		if pool == PoolDeviceGeneral {
			var sum int64
			for _, b := range sel {
				sum += b.Bytes
			}
			m.NoReuseBytes = sum
		}
		m.PoolBytes[pool] = layout(sel, alloc)
	}
	return m
}

// layout assigns offsets with the chosen allocator and returns the pool
// size (peak offset + size). The packing algorithms live in
// internal/memlayout, shared with the compiled-execution slab planner;
// this wrapper maps hmms pool blocks onto layout blocks and copies the
// offsets back.
func layout(blocks []*Block, alloc Allocator) int64 {
	ml := make([]*memlayout.Block, len(blocks))
	for i, b := range blocks {
		ml[i] = &memlayout.Block{Start: b.Start, End: b.End, Bytes: b.Bytes}
	}
	var peak int64
	if alloc == NoReuse {
		peak = memlayout.Sequential(ml)
	} else {
		peak = memlayout.FirstFit(ml)
	}
	// memlayout reorders its own slice but writes offsets through the
	// pointers, so index i still pairs ml[i] with blocks[i].
	for i, b := range blocks {
		b.Offset = ml[i].Offset
	}
	return peak
}
