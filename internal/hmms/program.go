// Package hmms implements the paper's Heterogeneous Memory Management
// System (§4): the five-step offline pipeline that takes a computation
// graph and produces an executable memory plan for a GPU-class device.
//
//  1. Splitting and graph generation — splitting is internal/core's job;
//     this package serializes the (possibly split) graph into a forward
//     operation list and generates the mirrored backward operation list
//     (BuildProgram).
//  2. Storage assignment and optimization — every tensor is assigned a
//     Tensor Storage Object; the in-place ReLU and summation-error
//     sharing optimizations fold eligible tensors onto shared TSOs
//     (AssignStorage).
//  3. Offload and prefetch planning — Algorithm 1 and its mirrored
//     prefetch pass derive, per offloaded TSO, the offload start, the
//     end-of-offload synchronization point, the prefetch start and the
//     end-of-prefetch synchronization point (PlanOffload); a vDNN-style
//     layer-wise planner (PlanLayerWise) serves as the baseline.
//  4. Static memory planning — a first-fit allocator assigns every TSO a
//     static offset in one of three pools (host pinned, device
//     parameter, device general purpose) for exactly its planned
//     lifetime (PlanMemory).
//
// Step 5 (execution) lives in internal/sim, which replays a planned
// program on the discrete-event device model.
package hmms

import (
	"fmt"

	"splitcnn/internal/costmodel"
	"splitcnn/internal/graph"
	"splitcnn/internal/tensor"
)

// Phase distinguishes forward from backward operations.
type Phase int

// Phases.
const (
	Forward Phase = iota
	Backward
)

// String names the phase.
func (p Phase) String() string {
	if p == Forward {
		return "fwd"
	}
	return "bwd"
}

// TensorKind classifies program tensors for pool routing and planning.
type TensorKind int

// Tensor kinds.
const (
	// KInput is an externally fed tensor (images, labels).
	KInput TensorKind = iota
	// KParam is a trainable parameter (device parameter pool).
	KParam
	// KParamGrad is a parameter gradient (device parameter pool).
	KParamGrad
	// KActivation is a forward intermediate result.
	KActivation
	// KGradient is a back-propagated error tensor.
	KGradient
)

// String names the kind.
func (k TensorKind) String() string {
	switch k {
	case KInput:
		return "input"
	case KParam:
		return "param"
	case KParamGrad:
		return "param_grad"
	case KActivation:
		return "activation"
	case KGradient:
		return "gradient"
	}
	return fmt.Sprintf("TensorKind(%d)", int(k))
}

// TensorID indexes Program.Tensors.
type TensorID int

// TensorInfo describes one conceptual tensor of the serialized program.
type TensorInfo struct {
	ID    TensorID
	Name  string
	Kind  TensorKind
	Bytes int64
	// Producer is the op index of the first write (-1 for inputs/params).
	Producer int
	// LastWrite is the op index of the final write (gradients may be
	// accumulated by several backward ops).
	LastWrite int
	// Reads lists the op indices reading the tensor, in program order.
	Reads []int
	// Stashed reports whether any backward op reads the tensor — these
	// are the "intermediate results that will need to be consumed again
	// in the backward pass" of Figure 1, the offload candidates.
	Stashed bool
}

// LastForwardRead returns the last forward-phase read index, or -1.
func (t *TensorInfo) LastForwardRead(p *Program) int {
	last := -1
	for _, r := range t.Reads {
		if p.Ops[r].Phase == Forward {
			last = r
		}
	}
	return last
}

// FirstBackwardRead returns the first backward-phase read index, or -1.
func (t *TensorInfo) FirstBackwardRead(p *Program) int {
	for _, r := range t.Reads {
		if p.Ops[r].Phase == Backward {
			return r
		}
	}
	return -1
}

// LastUse returns the last op index touching the tensor.
func (t *TensorInfo) LastUse() int {
	last := t.LastWrite
	if n := len(t.Reads); n > 0 && t.Reads[n-1] > last {
		last = t.Reads[n-1]
	}
	return last
}

// OpExec is one serialized operation.
type OpExec struct {
	Index int
	Name  string
	Kind  string
	Phase Phase
	// NodeID is the originating graph node.
	NodeID int
	Reads  []TensorID
	Writes []TensorID
	// Time is the profiled (cost-model) execution time in seconds.
	Time float64
	// Workspace is scratch memory alive only during this op.
	Workspace int64
	// InPlaceEligible marks ops whose output may share the input's TSO.
	InPlaceEligible bool
	// SharedErrorStorage marks summation ops whose back-propagated
	// error terms are identical (§4.2).
	SharedErrorStorage bool
}

// Program is the serialized forward+backward operation list of one
// training step, with full tensor metadata — the object every later
// HMMS stage consumes.
type Program struct {
	Ops     []OpExec
	Tensors []*TensorInfo
	// NumForward is the number of forward ops; Ops[NumForward:] is the
	// backward pass.
	NumForward int
	Device     costmodel.DeviceSpec
}

// ForwardOps returns the forward slice of the program.
func (p *Program) ForwardOps() []OpExec { return p.Ops[:p.NumForward] }

// BackwardOps returns the backward slice of the program.
func (p *Program) BackwardOps() []OpExec { return p.Ops[p.NumForward:] }

// ComputeTime returns the sum of all op times (the no-offload lower
// bound on step latency).
func (p *Program) ComputeTime() float64 {
	var t float64
	for _, op := range p.Ops {
		t += op.Time
	}
	return t
}

// ForwardTime returns the summed forward op time.
func (p *Program) ForwardTime() float64 {
	var t float64
	for _, op := range p.ForwardOps() {
		t += op.Time
	}
	return t
}

// BackwardTime returns the summed backward op time.
func (p *Program) BackwardTime() float64 { return p.ComputeTime() - p.ForwardTime() }

// StashedBytes returns the total bytes of stashed activations — the
// cumulative "generated data size" of Figure 1 (externally fed inputs
// are not layer-generated intermediate results and are excluded, though
// they remain offload candidates).
func (p *Program) StashedBytes() int64 {
	var b int64
	for _, t := range p.Tensors {
		if t.Stashed && t.Kind == KActivation {
			b += t.Bytes
		}
	}
	return b
}

// Timer supplies per-op forward and backward execution times during
// program construction. The default (cost-model) timer evaluates the
// device roofline; internal/profile provides a measured timer that runs
// each op for real, following the paper's §4.3 profiling methodology.
type Timer func(n *graph.Node, in []tensor.Shape) (fwd, bwd float64)

// CostModelTimer derives op times from the device roofline model.
func CostModelTimer(dev costmodel.DeviceSpec) Timer {
	return func(n *graph.Node, in []tensor.Shape) (float64, float64) {
		return dev.ForwardTime(n.Op, in, n.Shape), dev.BackwardTime(n.Op, in, n.Shape)
	}
}

// BuildProgram serializes g (step 1-2 of §4.1): forward ops in
// topological order followed by the generated backward graph in reverse
// order, with per-op times from the device cost model and full
// read/write sets over conceptual tensors.
func BuildProgram(g *graph.Graph, dev costmodel.DeviceSpec) (*Program, error) {
	return BuildProgramTimed(g, dev, CostModelTimer(dev))
}

// BuildProgramTimed is BuildProgram with explicit per-op timing — the
// hook the measured profiler uses.
func BuildProgramTimed(g *graph.Graph, dev costmodel.DeviceSpec, timer Timer) (*Program, error) {
	topo, err := g.Topo()
	if err != nil {
		return nil, err
	}
	p := &Program{Device: dev}

	newTensor := func(name string, kind TensorKind, bytes int64) TensorID {
		id := TensorID(len(p.Tensors))
		p.Tensors = append(p.Tensors, &TensorInfo{ID: id, Name: name, Kind: kind, Bytes: bytes, Producer: -1, LastWrite: -1})
		return id
	}

	// Conceptual tensors: one value per node; grad tensors created on
	// demand for op nodes and params.
	val := make(map[int]TensorID)  // node ID -> value tensor
	grad := make(map[int]TensorID) // node ID -> gradient tensor
	for _, n := range topo {
		switch n.Kind {
		case graph.KindInput:
			val[n.ID] = newTensor(n.Name, KInput, n.Shape.Bytes())
		case graph.KindParam:
			if _, ok := val[n.ID]; !ok {
				val[n.ID] = newTensor(n.Name, KParam, n.Shape.Bytes())
				grad[n.ID] = newTensor(n.Name+".grad", KParamGrad, n.Shape.Bytes())
			}
		case graph.KindOp:
			val[n.ID] = newTensor(n.Name, KActivation, n.Shape.Bytes())
		}
	}

	addOp := func(op OpExec) int {
		op.Index = len(p.Ops)
		for _, r := range op.Reads {
			p.Tensors[r].Reads = append(p.Tensors[r].Reads, op.Index)
			if op.Phase == Backward {
				p.Tensors[r].Stashed = p.Tensors[r].Stashed || p.Tensors[r].Kind == KActivation || p.Tensors[r].Kind == KInput
			}
		}
		for _, w := range op.Writes {
			if p.Tensors[w].Producer < 0 {
				p.Tensors[w].Producer = op.Index
			}
			p.Tensors[w].LastWrite = op.Index
		}
		p.Ops = append(p.Ops, op)
		return op.Index
	}

	inShapes := func(n *graph.Node) []tensor.Shape {
		out := make([]tensor.Shape, len(n.Inputs))
		for i, in := range n.Inputs {
			out[i] = in.Shape
		}
		return out
	}

	// Forward pass.
	opNodes := g.OpNodes()
	bwdTimes := make(map[int]float64)
	for _, n := range opNodes {
		reads := make([]TensorID, len(n.Inputs))
		for i, in := range n.Inputs {
			reads[i] = val[in.ID]
		}
		shapes := inShapes(n)
		fwdT, bwdT := timer(n, shapes)
		bwdTimes[n.ID] = bwdT
		_, inPlace := n.Op.(interface{ InPlaceEligible() bool })
		_, sharedErr := n.Op.(interface{ SharedErrorStorage() bool })
		addOp(OpExec{
			Name:               n.Name,
			Kind:               n.Op.Kind(),
			Phase:              Forward,
			NodeID:             n.ID,
			Reads:              reads,
			Writes:             []TensorID{val[n.ID]},
			Time:               fwdT,
			Workspace:          n.Op.WorkspaceBytes(shapes, n.Shape),
			InPlaceEligible:    inPlace,
			SharedErrorStorage: sharedErr,
		})
	}
	p.NumForward = len(p.Ops)

	// Gradient tensors for op nodes that influence an output.
	influences := make(map[int]bool)
	for _, o := range g.Outputs {
		influences[o.ID] = true
	}
	for i := len(topo) - 1; i >= 0; i-- {
		n := topo[i]
		if !influences[n.ID] {
			continue
		}
		for _, in := range n.Inputs {
			influences[in.ID] = true
		}
	}
	for _, n := range opNodes {
		if influences[n.ID] {
			grad[n.ID] = newTensor(n.Name+".grad", KGradient, n.Shape.Bytes())
		}
	}
	// Seed gradients of outputs have no producer op; mark them written
	// "at" the start of the backward pass.
	for _, o := range g.Outputs {
		if gid, ok := grad[o.ID]; ok {
			p.Tensors[gid].Producer = p.NumForward
			p.Tensors[gid].LastWrite = p.NumForward
		}
	}

	// Backward pass: reverse forward order (§4.1: "the order such
	// operations appear in the backward graph is the reverse of the
	// serialized forward order").
	for i := len(opNodes) - 1; i >= 0; i-- {
		n := opNodes[i]
		gid, ok := grad[n.ID]
		if !ok {
			continue
		}
		reads := []TensorID{gid}
		for j, in := range n.Inputs {
			if n.Op.NeedsInput(j) {
				reads = append(reads, val[in.ID])
			}
		}
		if n.Op.NeedsOutput() {
			reads = append(reads, val[n.ID])
		}
		var writes []TensorID
		for _, in := range n.Inputs {
			if g, ok := grad[in.ID]; ok {
				writes = append(writes, g)
			}
		}
		shapes := inShapes(n)
		_, sharedErr := n.Op.(interface{ SharedErrorStorage() bool })
		addOp(OpExec{
			Name:               n.Name + ".bwd",
			Kind:               n.Op.Kind(),
			Phase:              Backward,
			NodeID:             n.ID,
			Reads:              reads,
			Writes:             writes,
			Time:               bwdTimes[n.ID],
			Workspace:          n.Op.WorkspaceBytes(shapes, n.Shape),
			SharedErrorStorage: sharedErr,
		})
	}
	return p, nil
}

// LayerProfile is one row of the Figure 1 analysis.
type LayerProfile struct {
	Name string
	Kind string
	// Time is the forward execution time of the layer.
	Time float64
	// GeneratedBytes is the size of intermediate results this layer
	// produces that the backward pass will consume again.
	GeneratedBytes int64
	// OffloadableBytes is LinkBandwidth × Time: what can be moved to
	// the host while this layer executes.
	OffloadableBytes int64
	// Cumulative sums up to and including this layer.
	CumGenerated, CumOffloadable int64
}

// ProfileForward reproduces the Figure 1 analysis: per forward layer,
// generated vs. offload-able data sizes and their cumulative curves.
func (p *Program) ProfileForward() []LayerProfile {
	out := make([]LayerProfile, 0, p.NumForward)
	var cumG, cumO int64
	for _, op := range p.ForwardOps() {
		var gen int64
		for _, w := range op.Writes {
			if p.Tensors[w].Stashed {
				gen += p.Tensors[w].Bytes
			}
		}
		off := int64(op.Time * p.Device.LinkBandwidth)
		cumG += gen
		cumO += off
		out = append(out, LayerProfile{
			Name: op.Name, Kind: op.Kind, Time: op.Time,
			GeneratedBytes: gen, OffloadableBytes: off,
			CumGenerated: cumG, CumOffloadable: cumO,
		})
	}
	return out
}

// TheoreticalOffloadLimit returns the fraction of stashed data that can
// be offloaded without slowing computation: cumulative offload-able over
// cumulative generated at the end of the forward pass, capped at 1 —
// the quantity the paper derives from Figure 1 (100% for VGG-19, ~55%
// for ResNet-18, ~40% for ResNet-50).
func (p *Program) TheoreticalOffloadLimit() float64 {
	prof := p.ProfileForward()
	if len(prof) == 0 {
		return 0
	}
	last := prof[len(prof)-1]
	if last.CumGenerated == 0 {
		return 1
	}
	return min(1, float64(last.CumOffloadable)/float64(last.CumGenerated))
}
