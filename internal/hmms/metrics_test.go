package hmms_test

import (
	"testing"

	"splitcnn/internal/costmodel"
	"splitcnn/internal/hmms"
	"splitcnn/internal/models"
	"splitcnn/internal/sim"
	"splitcnn/internal/trace"
)

// TestMemPlanMetricsInvariants runs every builtin architecture under
// every scheduling method and checks the observability layer against
// the planner itself: the exported high-water-mark gauge must equal the
// plan's computed peak bit-for-bit, the per-pool live peak can never
// exceed the planned pool size, and no two simultaneously-live blocks
// may overlap (the same soundness property TestFuzzFirstFitSoundness
// checks on random graphs, here on the real models the metrics report).
func TestMemPlanMetricsInvariants(t *testing.T) {
	dev := costmodel.P100()
	for _, arch := range models.Architectures() {
		m, err := models.Build(arch, models.Config{
			BatchSize: 4, Classes: 1000, InputC: 3, InputH: 224, InputW: 224,
		})
		if err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
		for _, method := range []sim.Method{sim.MethodNone, sim.MethodLayerWise, sim.MethodHMMS} {
			_, _, mem, err := sim.Plan(m.Graph, dev, method, -1)
			if err != nil {
				t.Fatalf("%s %s: %v", arch, method, err)
			}

			reg := trace.NewMetrics()
			mem.RecordMetrics(reg)
			if got, want := reg.Gauge("mem.device_high_water_bytes").Value(), float64(mem.DeviceBytes()); got != want {
				t.Errorf("%s %s: high-water gauge %v != plan peak %v", arch, method, got, want)
			}
			if got, want := reg.Counter("mem.blocks").Value(), int64(len(mem.Blocks)); got != want {
				t.Errorf("%s %s: blocks counter %v != %v", arch, method, got, want)
			}

			for _, pool := range []hmms.Pool{hmms.PoolHost, hmms.PoolDeviceParam, hmms.PoolDeviceGeneral} {
				if live, planned := mem.MaxLiveBytes(pool), mem.PoolBytes[pool]; live > planned {
					t.Errorf("%s %s pool %v: live peak %d exceeds planned %d", arch, method, pool, live, planned)
				}
				if frag := mem.Fragmentation(pool); frag < 0 || frag > 1 {
					t.Errorf("%s %s pool %v: fragmentation %v outside [0, 1]", arch, method, pool, frag)
				}
			}

			byPool := map[hmms.Pool][]*hmms.Block{}
			for _, b := range mem.Blocks {
				byPool[b.Pool] = append(byPool[b.Pool], b)
			}
			for pool, blocks := range byPool {
				for i := 0; i < len(blocks); i++ {
					for j := i + 1; j < len(blocks); j++ {
						x, y := blocks[i], blocks[j]
						if x.Start <= y.End && y.Start <= x.End &&
							x.Offset < y.Offset+y.Bytes && y.Offset < x.Offset+x.Bytes {
							t.Fatalf("%s %s pool %v: live blocks %q and %q overlap", arch, method, pool, x.Name, y.Name)
						}
					}
				}
			}
		}
	}
}
