package hmms_test

import (
	"fmt"
	"math/rand"
	"testing"

	"splitcnn/internal/costmodel"
	"splitcnn/internal/graph"
	"splitcnn/internal/hmms"
	"splitcnn/internal/nn"
	"splitcnn/internal/sim"
	"splitcnn/internal/tensor"
)

// randomChain builds a random sequential CNN: conv/pool/bn/relu/dropout
// layers with random widths, ending in a classifier head.
func randomChain(rng *rand.Rand) *graph.Graph {
	g := graph.New()
	batch := 1 + rng.Intn(8)
	c := 1 + rng.Intn(8)
	h := 16 + 8*rng.Intn(3)
	cur := g.Input("image", tensor.Shape{batch, c, h, h})
	labels := g.Input("labels", tensor.Shape{batch})
	layers := 3 + rng.Intn(10)
	for i := 0; i < layers; i++ {
		name := fmt.Sprintf("l%d", i)
		switch rng.Intn(5) {
		case 0, 1: // conv (+bias)
			out := 4 + rng.Intn(12)
			k := []int{1, 3, 5}[rng.Intn(3)]
			w := g.Param(name+".w", tensor.Shape{out, cur.Shape.C(), k, k})
			b := g.Param(name+".b", tensor.Shape{out})
			cur = g.Add(name, nn.NewConv(k, 1, k/2), cur, w, b)
		case 2: // pool if the map is still big enough
			if cur.Shape.H() >= 4 {
				cur = g.Add(name, nn.NewMaxPool(2, 2), cur)
			} else {
				cur = g.Add(name, nn.ReLU{}, cur)
			}
		case 3: // batch norm
			ch := cur.Shape.C()
			bn := nn.NewBatchNorm(nn.NewBNState(name, ch))
			bn.Recompute = rng.Intn(2) == 0
			gamma := g.Param(name+".gamma", tensor.Shape{ch})
			beta := g.Param(name+".beta", tensor.Shape{ch})
			cur = g.Add(name, bn, cur, gamma, beta)
		case 4:
			cur = g.Add(name, nn.ReLU{}, cur)
		}
	}
	flat := g.Add("flat", nn.Flatten{}, cur)
	classes := 2 + rng.Intn(8)
	w := g.Param("fc.w", tensor.Shape{classes, flat.Shape[1]})
	b := g.Param("fc.b", tensor.Shape{classes})
	fc := g.Add("fc", nn.Linear{}, flat, w, b)
	loss := g.Add("loss", nn.SoftmaxCrossEntropy{}, fc, labels)
	g.SetOutput(loss)
	return g
}

// TestFuzzPipelineInvariants runs many random networks through the full
// HMMS pipeline and checks the invariants that must hold regardless of
// topology: plan ordering, no forward stalls, first-fit soundness, and
// monotone memory under offloading caps.
func TestFuzzPipelineInvariants(t *testing.T) {
	dev := costmodel.P100()
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomChain(rng)
		prog, err := hmms.BuildProgram(g, dev)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(prog.BackwardOps()) != prog.NumForward {
			t.Fatalf("seed %d: backward ops %d != forward %d", seed, len(prog.BackwardOps()), prog.NumForward)
		}
		a := hmms.AssignStorage(prog, hmms.DefaultStorageOpts())
		for _, limit := range []float64{0, 0.5, 1} {
			plan, err := hmms.PlanOffload(prog, a, limit)
			if err != nil {
				t.Fatalf("seed %d limit %v: %v", seed, limit, err)
			}
			checkPlanInvariants(t, prog, plan)
			if plan.Fraction() > limit+1e-9 {
				t.Fatalf("seed %d: fraction %v over limit %v", seed, plan.Fraction(), limit)
			}
			mem := hmms.PlanMemory(prog, a, plan, hmms.FirstFit)
			res, err := sim.Run(prog, plan, mem)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if res.ForwardStall > prog.ForwardTime()*1e-6 {
				t.Fatalf("seed %d limit %v: forward stall %v", seed, limit, res.ForwardStall)
			}
			if res.TotalTime < prog.ComputeTime() {
				t.Fatalf("seed %d: total %v below compute %v", seed, res.TotalTime, prog.ComputeTime())
			}
			// Cross-check against the discrete-event device replay.
			trace, err := sim.Replay(prog, plan, mem, 0)
			if err != nil {
				t.Fatalf("seed %d: replay: %v", seed, err)
			}
			if d := trace.Total - res.TotalTime; d > res.TotalTime*1e-6 || d < -res.TotalTime*1e-6 {
				t.Fatalf("seed %d limit %v: replay %.9f vs analytic %.9f", seed, limit, trace.Total, res.TotalTime)
			}
		}
	}
}

// TestFuzzFirstFitSoundness re-checks the allocator's no-overlap
// invariant on random networks.
func TestFuzzFirstFitSoundness(t *testing.T) {
	dev := costmodel.P100()
	for seed := int64(100); seed < 115; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomChain(rng)
		prog, err := hmms.BuildProgram(g, dev)
		if err != nil {
			t.Fatal(err)
		}
		a := hmms.AssignStorage(prog, hmms.DefaultStorageOpts())
		plan, err := hmms.PlanOffload(prog, a, 1)
		if err != nil {
			t.Fatal(err)
		}
		mem := hmms.PlanMemory(prog, a, plan, hmms.FirstFit)
		byPool := map[hmms.Pool][]*hmms.Block{}
		for _, b := range mem.Blocks {
			byPool[b.Pool] = append(byPool[b.Pool], b)
		}
		for pool, blocks := range byPool {
			for i := 0; i < len(blocks); i++ {
				for j := i + 1; j < len(blocks); j++ {
					x, y := blocks[i], blocks[j]
					if x.Start <= y.End && y.Start <= x.End &&
						x.Offset < y.Offset+y.Bytes && y.Offset < x.Offset+x.Bytes {
						t.Fatalf("seed %d pool %v: %q and %q overlap", seed, pool, x.Name, y.Name)
					}
				}
			}
		}
	}
}
