package hmms

import (
	"splitcnn/internal/costmodel"
	"splitcnn/internal/graph"
	"splitcnn/internal/tensor"
)

// MeasuredTimer wraps the cost-model timer with the autotuner's
// measured forward times: a convolution whose workload signature has a
// recorded measurement uses it verbatim, and its backward estimate is
// scaled by the roofline's own bwd/fwd ratio (the measurement covers
// forward only; the ratio is the model's best knowledge of the
// backward/forward relationship for that geometry). Everything else
// falls through to the roofline. This is §4.3's profiled timings
// replacing the analytical stand-in wherever a measurement exists —
// the same programs, offload plans and reports, now over real numbers.
func MeasuredTimer(dev costmodel.DeviceSpec, ov *costmodel.MeasuredOverride) Timer {
	base := CostModelTimer(dev)
	return func(n *graph.Node, in []tensor.Shape) (float64, float64) {
		fwd, bwd := base(n, in)
		if ov.Len() == 0 || n.Op.Kind() != "conv" || len(in) == 0 || len(n.Shape) != 4 {
			return fwd, bwd
		}
		c, ok := n.Op.(interface{ Window() tensor.ConvParams })
		if !ok {
			return fwd, bwd
		}
		sig := costmodel.SignatureOf(c.Window(), in[0], n.Shape.C())
		m, ok := ov.Get(sig)
		if !ok || m <= 0 || fwd <= 0 {
			return fwd, bwd
		}
		return m, m * (bwd / fwd)
	}
}
