package hmms_test

import (
	"testing"

	"splitcnn/internal/costmodel"
	"splitcnn/internal/hmms"
	"splitcnn/internal/models"
)

func buildVGG(t *testing.T, batch int) (*hmms.Program, *hmms.Assignment) {
	t.Helper()
	m := models.VGG19ImageNet(batch)
	p, err := hmms.BuildProgram(m.Graph, costmodel.P100())
	if err != nil {
		t.Fatal(err)
	}
	return p, hmms.AssignStorage(p, hmms.DefaultStorageOpts())
}

// checkPlanInvariants verifies the four critical moments of §4.3 are
// ordered correctly for every entry.
func checkPlanInvariants(t *testing.T, p *hmms.Program, plan *hmms.OffloadPlan) {
	t.Helper()
	seen := map[hmms.TSOID]bool{}
	for _, e := range plan.Entries {
		if seen[e.TSO] {
			t.Fatalf("TSO %d planned twice", e.TSO)
		}
		seen[e.TSO] = true
		if e.OffloadAtOp < 0 || e.OffloadAtOp >= p.NumForward {
			t.Fatalf("offload op %d outside forward pass", e.OffloadAtOp)
		}
		if e.SyncAtOp < e.OffloadAtOp || e.SyncAtOp >= p.NumForward {
			t.Fatalf("sync op %d before offload %d or outside forward", e.SyncAtOp, e.OffloadAtOp)
		}
		if e.PrefetchAtOp < p.NumForward || e.PrefetchAtOp > e.SyncBeforeOp {
			t.Fatalf("prefetch op %d outside [start of backward, need op %d]", e.PrefetchAtOp, e.SyncBeforeOp)
		}
		if e.SyncBeforeOp >= len(p.Ops) {
			t.Fatalf("sync-before op %d out of range", e.SyncBeforeOp)
		}
		if e.Bytes <= 0 {
			t.Fatalf("entry with %d bytes", e.Bytes)
		}
	}
}

func TestPlanOffloadInvariants(t *testing.T) {
	p, a := buildVGG(t, 16)
	plan, err := hmms.PlanOffload(p, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Entries) == 0 {
		t.Fatal("empty plan for VGG-19")
	}
	checkPlanInvariants(t, p, plan)
	if plan.OffloadedBytes > plan.CandidateBytes {
		t.Fatal("offloaded more than available")
	}
	// VGG-19 is fully offloadable at the theoretical limit.
	if got := plan.Fraction(); got < 0.95 {
		t.Fatalf("VGG-19 offload fraction %.2f, want ~1 (Figure 1)", got)
	}
}

func TestPlanOffloadRespectsLimit(t *testing.T) {
	p, a := buildVGG(t, 16)
	for _, limit := range []float64{0, 0.25, 0.5} {
		plan, err := hmms.PlanOffload(p, a, limit)
		if err != nil {
			t.Fatal(err)
		}
		if f := plan.Fraction(); f > limit+1e-9 {
			t.Fatalf("limit %v exceeded: fraction %v", limit, f)
		}
		checkPlanInvariants(t, p, plan)
	}
	if _, err := hmms.PlanOffload(p, a, 1.5); err == nil {
		t.Fatal("limit > 1 accepted")
	}
	if _, err := hmms.PlanOffload(p, a, -0.5); err == nil {
		t.Fatal("negative limit accepted")
	}
}

func TestPlanLayerWiseInvariants(t *testing.T) {
	p, a := buildVGG(t, 16)
	plan, err := hmms.PlanLayerWise(p, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Entries) == 0 {
		t.Fatal("empty layer-wise plan")
	}
	checkPlanInvariants(t, p, plan)
	for _, e := range plan.Entries {
		if e.SyncAtOp != e.OffloadAtOp {
			t.Fatalf("layer-wise must synchronize eagerly: offload %d sync %d", e.OffloadAtOp, e.SyncAtOp)
		}
	}
}

// TestHMMSSpreadsSynchronization is the qualitative §6.2 claim: HMMS
// plans strictly later synchronization points than the eager layer-wise
// scheme for at least some TSOs ("plan a longer duration of offloading
// time without eagerly synchronizing").
func TestHMMSSpreadsSynchronization(t *testing.T) {
	p, a := buildVGG(t, 16)
	hp, err := hmms.PlanOffload(p, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	spread := 0
	for _, e := range hp.Entries {
		if e.SyncAtOp > e.OffloadAtOp {
			spread++
		}
	}
	if spread == 0 {
		t.Fatal("HMMS never spread a synchronization across ops")
	}
}

func TestPlanNone(t *testing.T) {
	plan := hmms.PlanNone()
	if len(plan.Entries) != 0 || plan.OffloadedBytes != 0 {
		t.Fatal("baseline plan must be empty")
	}
}

func TestPlanMemoryPools(t *testing.T) {
	p, a := buildVGG(t, 16)
	plan, err := hmms.PlanOffload(p, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	mem := hmms.PlanMemory(p, a, plan, hmms.FirstFit)
	if mem.PoolBytes[hmms.PoolDeviceParam] <= 0 || mem.PoolBytes[hmms.PoolDeviceGeneral] <= 0 {
		t.Fatal("device pools empty")
	}
	if mem.PoolBytes[hmms.PoolHost] <= 0 {
		t.Fatal("host pool empty despite offloading")
	}
	// Parameter pool is the raw parameter+gradient footprint: VGG-19 has
	// ~143.6M params -> ~1.15 GB for values+grads.
	pb := mem.PoolBytes[hmms.PoolDeviceParam]
	if pb < 1_100_000_000 || pb > 1_250_000_000 {
		t.Fatalf("param pool %d bytes, want ~1.15 GB", pb)
	}
	// First-fit must beat no-reuse substantially.
	if mem.PoolBytes[hmms.PoolDeviceGeneral] >= mem.NoReuseBytes {
		t.Fatal("first-fit no better than no-reuse")
	}
	noPlan := hmms.PlanMemory(p, a, hmms.PlanNone(), hmms.FirstFit)
	if noPlan.PoolBytes[hmms.PoolHost] != 0 {
		t.Fatal("baseline plan should use no host memory")
	}
}

// TestOffloadReducesDevicePool: at a batch size where accumulated
// stashes (not the early-layer transient) set the peak, the offload plan
// must shrink the device general pool versus no offloading.
func TestOffloadReducesDevicePool(t *testing.T) {
	p, a := buildVGG(t, 64)
	plan, err := hmms.PlanOffload(p, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	mem := hmms.PlanMemory(p, a, plan, hmms.FirstFit)
	noPlan := hmms.PlanMemory(p, a, hmms.PlanNone(), hmms.FirstFit)
	if mem.PoolBytes[hmms.PoolDeviceGeneral] >= noPlan.PoolBytes[hmms.PoolDeviceGeneral] {
		t.Fatalf("offloading did not reduce the device general pool: %d vs %d",
			mem.PoolBytes[hmms.PoolDeviceGeneral], noPlan.PoolBytes[hmms.PoolDeviceGeneral])
	}
}

// TestFirstFitNoOverlap is the allocator's soundness property: two
// blocks whose lifetimes overlap must not overlap in address space.
func TestFirstFitNoOverlap(t *testing.T) {
	p, a := buildVGG(t, 8)
	plan, err := hmms.PlanOffload(p, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	mem := hmms.PlanMemory(p, a, plan, hmms.FirstFit)
	byPool := map[hmms.Pool][]*hmms.Block{}
	for _, b := range mem.Blocks {
		byPool[b.Pool] = append(byPool[b.Pool], b)
	}
	for pool, blocks := range byPool {
		for i := 0; i < len(blocks); i++ {
			for j := i + 1; j < len(blocks); j++ {
				x, y := blocks[i], blocks[j]
				timeOverlap := x.Start <= y.End && y.Start <= x.End
				addrOverlap := x.Offset < y.Offset+y.Bytes && y.Offset < x.Offset+x.Bytes
				if timeOverlap && addrOverlap {
					t.Fatalf("pool %v: blocks %q [%d,%d]@%d+%d and %q [%d,%d]@%d+%d overlap",
						pool, x.Name, x.Start, x.End, x.Offset, x.Bytes,
						y.Name, y.Start, y.End, y.Offset, y.Bytes)
				}
			}
		}
	}
}

// TestAblationStorageOptimizations measures that the §4.2 optimizations
// actually reduce planned memory.
func TestAblationStorageOptimizations(t *testing.T) {
	m := models.ResNet18ImageNet(8)
	p, err := hmms.BuildProgram(m.Graph, costmodel.P100())
	if err != nil {
		t.Fatal(err)
	}
	with := hmms.AssignStorage(p, hmms.DefaultStorageOpts())
	without := hmms.AssignStorage(p, hmms.StorageOpts{})
	if len(with.TSOs) >= len(without.TSOs) {
		t.Fatalf("optimizations did not merge TSOs: %d vs %d", len(with.TSOs), len(without.TSOs))
	}
	memWith := hmms.PlanMemory(p, with, hmms.PlanNone(), hmms.FirstFit)
	memWithout := hmms.PlanMemory(p, without, hmms.PlanNone(), hmms.FirstFit)
	if memWith.PoolBytes[hmms.PoolDeviceGeneral] > memWithout.PoolBytes[hmms.PoolDeviceGeneral] {
		t.Fatal("optimizations increased planned memory")
	}
}
