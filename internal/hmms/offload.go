package hmms

import (
	"fmt"
	"sort"
)

// OffloadEntry is the planned lifecycle of one offloaded TSO — the four
// critical moments of §4.3.
type OffloadEntry struct {
	TSO TSOID
	// OffloadAtOp: the device→host transfer is issued right after this
	// (forward) op starts executing — the start of the offload.
	OffloadAtOp int
	// SyncAtOp: the compute stream synchronizes with the memory stream
	// right after this (forward) op, and the device TSO is freed — the
	// end of the offload.
	SyncAtOp int
	// PrefetchAtOp: the host→device transfer is issued when the compute
	// stream reaches this op — the start of the prefetch.
	PrefetchAtOp int
	// SyncBeforeOp: the compute stream waits for the prefetch to finish
	// before executing this (backward) op — the end of the prefetch.
	SyncBeforeOp int
	Bytes        int64
}

// OffloadPlan is the outcome of offload/prefetch planning.
type OffloadPlan struct {
	// Method names the planning scheme ("none", "layerwise", "hmms").
	Method  string
	Entries []*OffloadEntry
	// OffloadedBytes / CandidateBytes report realized vs. available
	// offload volume.
	OffloadedBytes, CandidateBytes int64
}

// ByTSO returns the entry for a TSO, or nil.
func (o *OffloadPlan) ByTSO(id TSOID) *OffloadEntry {
	for _, e := range o.Entries {
		if e.TSO == id {
			return e
		}
	}
	return nil
}

// Fraction returns offloaded/candidate bytes.
func (o *OffloadPlan) Fraction() float64 {
	if o.CandidateBytes == 0 {
		return 0
	}
	return float64(o.OffloadedBytes) / float64(o.CandidateBytes)
}

// PlanNone returns the baseline plan that offloads nothing.
func PlanNone() *OffloadPlan { return &OffloadPlan{Method: "none"} }

// candidates returns the offloadable TSOs in forward program order:
// TSOs holding stashed activations/inputs, keyed by the forward op after
// which they are free of writes and forward reads. Returned per TSO:
// (tso, readyOp) where readyOp is the last forward op touching it.
type candidate struct {
	tso     TSOID
	readyOp int // last forward write or read: offload may start after it
	bytes   int64
}

func offloadCandidates(p *Program, a *Assignment) []candidate {
	var out []candidate
	for _, tso := range a.TSOs {
		if tso.Kind == KParam || tso.Kind == KParamGrad {
			continue
		}
		stashed := false
		ready := -1
		ok := true
		for _, tid := range tso.Tensors {
			t := p.Tensors[tid]
			if t.Kind == KGradient {
				ok = false // gradients are produced in backward; nothing to offload
				break
			}
			if t.Stashed {
				stashed = true
			}
			if t.LastWrite >= p.NumForward {
				ok = false
				break
			}
			// The transfer may be issued at the start of any op after the
			// last write completes (the writer itself is still producing
			// the data), and the TSO must stay resident through its last
			// forward read.
			if t.LastWrite+1 > ready {
				ready = t.LastWrite + 1
			}
			if r := t.LastForwardRead(p); r > ready {
				ready = r
			}
		}
		if !ok || !stashed || ready >= p.NumForward {
			continue
		}
		out = append(out, candidate{tso: tso.ID, readyOp: ready, bytes: tso.Bytes})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].readyOp < out[j].readyOp })
	return out
}

// firstBackwardReadOfTSO returns the earliest backward op reading any
// tensor of the TSO.
func firstBackwardReadOfTSO(p *Program, a *Assignment, id TSOID) int {
	first := len(p.Ops)
	for _, tid := range a.TSOs[id].Tensors {
		if r := p.Tensors[tid].FirstBackwardRead(p); r >= 0 && r < first {
			first = r
		}
	}
	if first == len(p.Ops) {
		return -1
	}
	return first
}

// selectRunning caps the offload set with a *running* ratio: walking the
// candidates in forward order, a TSO is offloaded only if doing so keeps
// offloaded-so-far ≤ limit × generated-so-far — the paper's "simple
// algorithmic logic to keep the ratio of offloaded and non-offloaded
// TSOs under the theoretical limit". Enforcing the ratio pointwise
// (rather than on the totals) matters twice over: it skips offloads
// exactly where production outruns the link, so the capacity balance of
// Algorithm 1 recovers quickly and device TSOs are freed progressively
// instead of piling up behind one late synchronization, and it spreads
// the prefetch demand across the backward pass symmetrically.
func selectRunning(cands []candidate, limit float64) (map[TSOID]bool, int64, int64) {
	chosen := make(map[TSOID]bool)
	var generated, used int64
	for _, c := range cands { // cands are sorted by readyOp
		generated += c.bytes
		if float64(used+c.bytes) <= limit*float64(generated) {
			chosen[c.tso] = true
			used += c.bytes
		}
	}
	return chosen, used, generated
}

// PlanOffload implements Algorithm 1 plus the mirrored prefetch pass:
// offload transfers start as soon as a TSO's last forward touch begins
// executing; the end-of-offload synchronization is deferred until the
// offload-capacity balance (gains = op time × link bandwidth, losses =
// offloaded TSO sizes) turns non-negative, so computation is never
// blocked waiting on the link. Prefetch is planned symmetrically,
// scanning the backward list in reverse. limit caps the offloaded
// fraction of candidate bytes (pass p.TheoreticalOffloadLimit() to
// enforce the paper's theoretical limit, or 1 for VGG-style networks).
func PlanOffload(p *Program, a *Assignment, limit float64) (*OffloadPlan, error) {
	if limit < 0 || limit > 1 {
		return nil, fmt.Errorf("hmms.PlanOffload: limit %v outside [0, 1]", limit)
	}
	cands := offloadCandidates(p, a)
	plan := &OffloadPlan{Method: "hmms", CandidateBytes: 0}

	// Forward sweep — Algorithm 1 with per-TSO memory streams. Each
	// offload is issued right after the TSO's last forward touch starts
	// executing (the "start of the offload"); its end-of-offload
	// synchronization is planned at the op during which the copy
	// completes on the FIFO link — gains accrue at op-time × link
	// bandwidth, losses at TSO size, and a TSO's stream is synchronized
	// (and the device TSO freed) exactly when the accumulated capacity
	// covers its transfer, so computation never blocks on the link and
	// device memory drains progressively instead of waiting for one
	// aggregate balance to recover.
	linkBW := p.Device.LinkBandwidth
	// cumCap[i] = link capacity accumulated before op i starts.
	cumCap := make([]float64, p.NumForward+1)
	for i := 0; i < p.NumForward; i++ {
		cumCap[i+1] = cumCap[i] + p.Ops[i].Time*linkBW
	}
	var generated, used int64
	var issued float64 // bytes committed to the link so far
	for _, c := range cands {
		generated += c.bytes
		plan.CandidateBytes += c.bytes
		// Ratio cap: the paper's "simple algorithmic logic to keep the
		// ratio of offloaded and non-offloaded TSOs under the
		// theoretical limit", enforced on the running totals.
		if float64(used+c.bytes) > limit*float64(generated) {
			continue
		}
		// Feasibility: the copy must finish within the forward pass, or
		// its end-of-offload sync would stall the loss computation.
		start := max(issued, cumCap[c.readyOp])
		end := start + float64(c.bytes)
		if end > cumCap[p.NumForward] {
			continue
		}
		issued = end
		used += c.bytes
		// Sync at the op whose execution window covers the completion.
		j := sort.Search(p.NumForward, func(k int) bool { return cumCap[k+1] >= end })
		plan.Entries = append(plan.Entries, &OffloadEntry{
			TSO:         c.tso,
			Bytes:       c.bytes,
			OffloadAtOp: c.readyOp,
			SyncAtOp:    min(j, p.NumForward-1),
		})
	}
	plan.OffloadedBytes = used

	// Backward (prefetch) planning. The paper mirrors the balance
	// analysis "in the opposite direction from the last operation in the
	// backward propagation graph": a prefetch starts as soon as the
	// accumulated link capacity covers the pending transfers, i.e. just
	// in time for its consumer. We realize that intent exactly: walking
	// the entries in consumption order, each prefetch is planned at the
	// latest op whose start leaves the (FIFO) link enough time to finish
	// the copy before the consuming op begins. This both avoids
	// prefetch-sync stalls and keeps the prefetched TSO's device
	// residency minimal for the static memory planner.
	planPrefetch(p, a, plan)
	sort.Slice(plan.Entries, func(i, j int) bool { return plan.Entries[i].OffloadAtOp < plan.Entries[j].OffloadAtOp })
	return plan, nil
}

// planPrefetch fills PrefetchAtOp/SyncBeforeOp for every plan entry
// using just-in-time scheduling over the backward op list.
func planPrefetch(p *Program, a *Assignment, plan *OffloadPlan) {
	// cum[i] = backward compute time elapsed before op i starts
	// (i in [NumForward, len(Ops)]).
	n := len(p.Ops)
	cum := make([]float64, n+1)
	for i := p.NumForward; i < n; i++ {
		cum[i+1] = cum[i] + p.Ops[i].Time
	}
	for _, e := range plan.Entries {
		fb := firstBackwardReadOfTSO(p, a, e.TSO)
		if fb < 0 {
			// Defensive: stashed data always has a backward reader.
			fb = n - 1
		}
		e.SyncBeforeOp = fb
	}
	// Offload copies issued late in the forward pass may still occupy
	// the link when the backward pass begins; prefetches cannot start
	// before that backlog drains.
	cumFwd := make([]float64, p.NumForward+1)
	for i := 0; i < p.NumForward; i++ {
		cumFwd[i+1] = cumFwd[i] + p.Ops[i].Time
	}
	linkBusy := 0.0
	for _, e := range plan.Entries {
		start := max(linkBusy, cumFwd[e.OffloadAtOp])
		linkBusy = start + float64(e.Bytes)/p.Device.LinkBandwidth
	}
	backlog := max(0, linkBusy-cumFwd[p.NumForward]) // backward-compute-time coordinates

	// Latest-feasible schedule: walk the entries from the last backward
	// consumer towards the first (the paper's reverse direction),
	// placing each copy as late as the link allows while meeting every
	// deadline — each prefetch starts exactly when the remaining
	// capacity balance permits, which also minimizes how long the
	// prefetched TSO pins device memory.
	entries := append([]*OffloadEntry(nil), plan.Entries...)
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].SyncBeforeOp > entries[j].SyncBeforeOp })
	cursor := cum[n] // no copy needs to end after the last op starts... (deadline-capped below)
	for _, e := range entries {
		d := float64(e.Bytes) / p.Device.LinkBandwidth
		end := min(cum[e.SyncBeforeOp], cursor)
		start := max(end-d, backlog) // infeasible head: issue as soon as the link frees
		cursor = start
		// Issue at the latest backward op starting no later than start.
		i := sort.Search(n-p.NumForward, func(k int) bool { return cum[p.NumForward+k+1] > start })
		e.PrefetchAtOp = min(p.NumForward+i, e.SyncBeforeOp)
	}
}

// oneLayerAhead returns the backward op index one "layer" (the previous
// parameterized or pooling backward op) before op fb — vDNN's prefetch
// horizon: while layer l's backward executes, fetch what layer l-1 will
// need.
func oneLayerAhead(p *Program, fb int) int {
	for i := fb - 1; i > p.NumForward; i-- {
		switch p.Ops[i].Kind {
		case "conv", "linear", "maxpool", "avgpool", "batchnorm":
			return i
		}
	}
	return p.NumForward
}

// PlanLayerWise is the vDNN-style baseline (§2.3): following vDNN's
// design, only the input feature maps of convolutional layers are
// offload targets; each offloaded TSO is transferred during the
// execution of its consumer layer and the compute stream synchronizes
// immediately after that layer — no spreading across layers — and is
// prefetched exactly one layer ahead of its backward consumer. The same
// fraction cap as PlanOffload applies so the two schemes are compared at
// equal offload percentages (§6.2).
func PlanLayerWise(p *Program, a *Assignment, limit float64) (*OffloadPlan, error) {
	if limit < 0 || limit > 1 {
		return nil, fmt.Errorf("hmms.PlanLayerWise: limit %v outside [0, 1]", limit)
	}
	cands := offloadCandidates(p, a)
	// Restrict to TSOs read by a convolution in the forward pass.
	convInput := make(map[TSOID]bool)
	for _, op := range p.ForwardOps() {
		if op.Kind == "conv" && len(op.Reads) > 0 {
			convInput[a.TensorTSO[op.Reads[0]]] = true
		}
	}
	kept := cands[:0]
	for _, c := range cands {
		if convInput[c.tso] {
			kept = append(kept, c)
		}
	}
	cands = kept
	chosen, used, total := selectRunning(cands, limit)
	plan := &OffloadPlan{Method: "layerwise", OffloadedBytes: used, CandidateBytes: total}
	for _, c := range cands {
		if !chosen[c.tso] {
			continue
		}
		fb := firstBackwardReadOfTSO(p, a, c.tso)
		if fb < 0 {
			fb = len(p.Ops) - 1
		}
		e := &OffloadEntry{
			TSO:          c.tso,
			Bytes:        c.bytes,
			OffloadAtOp:  c.readyOp,
			SyncAtOp:     c.readyOp, // eager per-layer synchronization
			PrefetchAtOp: oneLayerAhead(p, fb),
			SyncBeforeOp: fb,
		}
		plan.Entries = append(plan.Entries, e)
	}
	return plan, nil
}
