package hmms_test

import (
	"testing"

	"splitcnn/internal/costmodel"
	"splitcnn/internal/graph"
	"splitcnn/internal/hmms"
	"splitcnn/internal/models"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
)

// tinyGraph builds conv -> relu -> pool -> flatten -> linear -> loss.
func tinyGraph() *graph.Graph {
	g := graph.New()
	x := g.Input("image", tensor.Shape{4, 3, 8, 8})
	labels := g.Input("labels", tensor.Shape{4})
	w := g.Param("c1.w", tensor.Shape{8, 3, 3, 3})
	b := g.Param("c1.b", tensor.Shape{8})
	c1 := g.Add("c1", nn.NewConv(3, 1, 1), x, w, b)
	r1 := g.Add("r1", nn.ReLU{}, c1)
	p1 := g.Add("p1", nn.NewMaxPool(2, 2), r1)
	f := g.Add("flat", nn.Flatten{}, p1)
	wf := g.Param("fc.w", tensor.Shape{2, 128})
	bf := g.Param("fc.b", tensor.Shape{2})
	fc := g.Add("fc", nn.Linear{}, f, wf, bf)
	loss := g.Add("loss", nn.SoftmaxCrossEntropy{}, fc, labels)
	g.SetOutput(loss)
	return g
}

func TestBuildProgramStructure(t *testing.T) {
	g := tinyGraph()
	p, err := hmms.BuildProgram(g, costmodel.P100())
	if err != nil {
		t.Fatal(err)
	}
	if p.NumForward != 6 {
		t.Fatalf("forward ops %d, want 6", p.NumForward)
	}
	if len(p.Ops) != 12 {
		t.Fatalf("total ops %d, want 12 (mirrored backward)", len(p.Ops))
	}
	// Backward order is the reverse of forward order (§4.1).
	for i := 0; i < p.NumForward; i++ {
		f := p.Ops[i]
		b := p.Ops[len(p.Ops)-1-i]
		if b.Name != f.Name+".bwd" {
			t.Fatalf("backward op %d is %q, want %q", len(p.Ops)-1-i, b.Name, f.Name+".bwd")
		}
		if f.Phase != hmms.Forward || b.Phase != hmms.Backward {
			t.Fatal("phase labels wrong")
		}
	}
	// Every op has a positive time.
	for _, op := range p.Ops {
		if op.Time <= 0 {
			t.Fatalf("op %s has time %v", op.Name, op.Time)
		}
	}
}

func TestProgramStashSemantics(t *testing.T) {
	g := tinyGraph()
	p, err := hmms.BuildProgram(g, costmodel.P100())
	if err != nil {
		t.Fatal(err)
	}
	stashed := map[string]bool{}
	for _, ti := range p.Tensors {
		if ti.Stashed {
			stashed[ti.Name] = true
		}
	}
	// Conv input (the image) and weights... weights are params (not
	// "stashed"); relu output is needed by its own backward and by the
	// pool backward; pool input likewise; linear input and weight too.
	for _, want := range []string{"image", "r1", "flat", "labels"} {
		if !stashed[want] {
			t.Fatalf("%q should be stashed (stashed set: %v)", want, stashed)
		}
	}
	// The conv output feeds only the ReLU, whose backward needs just its
	// own output — c1 must NOT be stashed (in-place eligibility). The
	// pool output is likewise not stashed: like cuDNN, pooling backward
	// re-reads its *input* (r1).
	if stashed["c1"] || stashed["p1"] {
		t.Fatal("conv/pool outputs should not be stashed")
	}
}

func TestProfileForwardCumulativeCurves(t *testing.T) {
	m := models.VGG19ImageNet(8)
	p, err := hmms.BuildProgram(m.Graph, costmodel.P100())
	if err != nil {
		t.Fatal(err)
	}
	prof := p.ProfileForward()
	if len(prof) != p.NumForward {
		t.Fatalf("profile rows %d, want %d", len(prof), p.NumForward)
	}
	var cg, co int64
	for i, row := range prof {
		cg += row.GeneratedBytes
		co += row.OffloadableBytes
		if row.CumGenerated != cg || row.CumOffloadable != co {
			t.Fatalf("row %d cumulative mismatch", i)
		}
		if row.Time <= 0 {
			t.Fatalf("row %d has non-positive time", i)
		}
	}
	if cg != p.StashedBytes() {
		t.Fatalf("cumulative generated %d != stashed bytes %d", cg, p.StashedBytes())
	}
}

// TestOffloadLimitOrdering locks in the Figure 1 conclusion: VGG-19 can
// offload everything; ResNet-18 cannot; ResNet-50 is the most
// constrained; and the memory-efficient (BN-recompute) ResNet-18
// variant is strictly more offloadable than the vanilla one (§6.3).
func TestOffloadLimitOrdering(t *testing.T) {
	dev := costmodel.P100()
	lim := func(m *models.Model) float64 {
		p, err := hmms.BuildProgram(m.Graph, dev)
		if err != nil {
			t.Fatal(err)
		}
		return p.TheoreticalOffloadLimit()
	}
	vgg := lim(models.VGG19ImageNet(64))
	r18 := lim(models.ResNet18ImageNet(64))
	r50 := lim(models.ResNet50ImageNet(64))
	r18me := lim(models.ResNet18(models.Config{
		BatchSize: 64, Classes: 1000, InputC: 3, InputH: 224, InputW: 224, BNRecompute: true,
	}))
	if vgg < 0.99 {
		t.Fatalf("VGG-19 limit %.2f, want ~1.0 (fully offloadable)", vgg)
	}
	if r18 >= 0.99 {
		t.Fatalf("ResNet-18 limit %.2f, want < 1", r18)
	}
	if r50 >= r18 {
		t.Fatalf("ResNet-50 limit %.2f should be below ResNet-18's %.2f", r50, r18)
	}
	if r18me <= r18 {
		t.Fatalf("BN recompute should raise the limit: %.2f vs %.2f", r18me, r18)
	}
}

func TestStorageAssignmentOptimizations(t *testing.T) {
	g := tinyGraph()
	p, err := hmms.BuildProgram(g, costmodel.P100())
	if err != nil {
		t.Fatal(err)
	}
	a := hmms.AssignStorage(p, hmms.DefaultStorageOpts())
	if a.InPlaceReLUCount != 1 {
		t.Fatalf("in-place ReLU fired %d times, want 1", a.InPlaceReLUCount)
	}
	// conv output and relu output share a TSO.
	var convOut, reluOut hmms.TensorID = -1, -1
	for _, ti := range p.Tensors {
		switch ti.Name {
		case "c1":
			convOut = ti.ID
		case "r1":
			reluOut = ti.ID
		}
	}
	if a.TensorTSO[convOut] != a.TensorTSO[reluOut] {
		t.Fatal("in-place ReLU did not share the TSO")
	}
	// Disabled optimization keeps them apart.
	a2 := hmms.AssignStorage(p, hmms.StorageOpts{})
	if a2.TensorTSO[convOut] == a2.TensorTSO[reluOut] {
		t.Fatal("optimization fired while disabled")
	}
	if a2.InPlaceReLUCount != 0 {
		t.Fatal("count nonzero while disabled")
	}
	// Every tensor maps to a valid TSO and every TSO is at least as
	// large as its largest member.
	for tid, tsoID := range a.TensorTSO {
		tso := a.TSOs[tsoID]
		if tso.Bytes < p.Tensors[tid].Bytes {
			t.Fatalf("TSO %d smaller than member %s", tsoID, p.Tensors[tid].Name)
		}
	}
}

// TestSummationErrorSharing builds a residual add and verifies the
// error-term TSO sharing of §4.2.
func TestSummationErrorSharing(t *testing.T) {
	g := graph.New()
	x := g.Input("image", tensor.Shape{2, 4, 8, 8})
	w1 := g.Param("c1.w", tensor.Shape{4, 4, 3, 3})
	b1 := g.Param("c1.b", tensor.Shape{4})
	c1 := g.Add("c1", nn.NewConv(3, 1, 1), x, w1, b1)
	w2 := g.Param("c2.w", tensor.Shape{4, 4, 3, 3})
	b2 := g.Param("c2.b", tensor.Shape{4})
	c2 := g.Add("c2", nn.NewConv(3, 1, 1), c1, w2, b2)
	add := g.Add("add", &nn.Add{N: 2}, c2, c1)
	out := g.Add("r", nn.ReLU{}, add)
	g.SetOutput(out)

	p, err := hmms.BuildProgram(g, costmodel.P100())
	if err != nil {
		t.Fatal(err)
	}
	a := hmms.AssignStorage(p, hmms.DefaultStorageOpts())
	// c2's gradient is written only by add.bwd, so it may share the TSO
	// of add's own gradient; c1's gradient is also accumulated by
	// c2.bwd, so it must not share.
	var gAdd, gC2, gC1 hmms.TensorID = -1, -1, -1
	for _, ti := range p.Tensors {
		switch ti.Name {
		case "add.grad":
			gAdd = ti.ID
		case "c2.grad":
			gC2 = ti.ID
		case "c1.grad":
			gC1 = ti.ID
		}
	}
	if gAdd < 0 || gC2 < 0 || gC1 < 0 {
		t.Fatal("gradient tensors missing")
	}
	if a.TensorTSO[gC2] != a.TensorTSO[gAdd] {
		t.Fatal("summation error term should share the output error TSO")
	}
	if a.TensorTSO[gC1] == a.TensorTSO[gAdd] {
		t.Fatal("accumulated gradient must not share the summation TSO")
	}
	if a.SharedErrorCount != 1 {
		t.Fatalf("shared-error count %d, want 1", a.SharedErrorCount)
	}
}
