package hmms

// TSOID indexes Assignment.TSOs.
type TSOID int

// TSOInfo is a Tensor Storage Object: one contiguous region of storage
// shared by one or more tensors (§4's separation of a tensor's
// conceptual presence from its physical storage).
type TSOInfo struct {
	ID TSOID
	// Bytes is the region size (the max over mapped tensors).
	Bytes int64
	// Tensors lists the mapped tensor IDs.
	Tensors []TensorID
	// Kind routes the TSO to a memory pool: KParam/KParamGrad go to the
	// device parameter pool, everything else to the general pool.
	Kind TensorKind
}

// StorageOpts toggles the §4.2 optimizations, primarily for ablation.
type StorageOpts struct {
	// InPlaceReLU lets a ReLU's output share its input's TSO when the
	// reference counter shows no other tensor needs the input.
	InPlaceReLU bool
	// ShareSummationError maps all error terms of a summation onto the
	// TSO of the summation's own output error (they are equal-valued).
	ShareSummationError bool
}

// DefaultStorageOpts enables both optimizations, as the paper does.
func DefaultStorageOpts() StorageOpts {
	return StorageOpts{InPlaceReLU: true, ShareSummationError: true}
}

// Assignment maps every program tensor to a TSO.
type Assignment struct {
	TensorTSO []TSOID
	TSOs      []*TSOInfo
	// InPlaceReLUCount / SharedErrorCount report how often each
	// optimization fired (used by tests and the ablation bench).
	InPlaceReLUCount, SharedErrorCount int
}

// TSO returns the storage object of tensor t.
func (a *Assignment) TSO(t TensorID) *TSOInfo { return a.TSOs[a.TensorTSO[t]] }

// Writers returns the op indices writing any tensor of the TSO, sorted.
func (a *Assignment) Writers(p *Program, id TSOID) []int {
	var out []int
	for _, t := range a.TSOs[id].Tensors {
		ti := p.Tensors[t]
		if ti.Producer >= 0 {
			out = append(out, ti.Producer)
			if ti.LastWrite != ti.Producer {
				out = append(out, ti.LastWrite)
			}
		}
	}
	return out
}

// LastWrite returns the final op index writing into the TSO.
func (a *Assignment) LastWrite(p *Program, id TSOID) int {
	last := -1
	for _, t := range a.TSOs[id].Tensors {
		if lw := p.Tensors[t].LastWrite; lw > last {
			last = lw
		}
	}
	return last
}

// AssignStorage performs step 3 of §4: each tensor receives a TSO, then
// the in-place ReLU and summation-error-sharing optimizations merge
// eligible tensors onto shared TSOs.
func AssignStorage(p *Program, opts StorageOpts) *Assignment {
	a := &Assignment{TensorTSO: make([]TSOID, len(p.Tensors))}
	// Union-find over tensors; merged groups become one TSO.
	parent := make([]int, len(p.Tensors))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(x, y int) { parent[find(x)] = find(y) }

	// readers[t] = op indices reading tensor t (from tensor metadata).
	if opts.InPlaceReLU {
		for _, op := range p.ForwardOps() {
			if !op.InPlaceEligible || len(op.Reads) != 1 || len(op.Writes) != 1 {
				continue
			}
			in := p.Tensors[op.Reads[0]]
			// The reference counter must show nobody else references the
			// input's storage: the input is an op-produced activation,
			// this op is its only reader, and it is not stashed for the
			// backward pass.
			if in.Kind != KActivation || in.Stashed || len(in.Reads) != 1 {
				continue
			}
			union(int(op.Writes[0]), int(op.Reads[0]))
			a.InPlaceReLUCount++
		}
	}
	if opts.ShareSummationError {
		for _, op := range p.BackwardOps() {
			if !op.SharedErrorStorage {
				continue
			}
			// op reads the output-error tensor (first read) and writes
			// one error term per summand; ∂y/∂x_i = 1 makes them all
			// equal, so they may share the output error's TSO — provided
			// the error term is written by this op alone (no gradient
			// accumulation from other consumers).
			outErr := op.Reads[0]
			for _, w := range op.Writes {
				wt := p.Tensors[w]
				if wt.Producer == wt.LastWrite && wt.Producer == op.Index {
					union(int(w), int(outErr))
					a.SharedErrorCount++
				}
			}
		}
	}

	groups := make(map[int]TSOID)
	for i, t := range p.Tensors {
		root := find(i)
		id, ok := groups[root]
		if !ok {
			id = TSOID(len(a.TSOs))
			groups[root] = id
			a.TSOs = append(a.TSOs, &TSOInfo{ID: id, Kind: t.Kind})
		}
		tso := a.TSOs[id]
		tso.Tensors = append(tso.Tensors, t.ID)
		if t.Bytes > tso.Bytes {
			tso.Bytes = t.Bytes
		}
		// Param-pool routing wins if any member is a parameter.
		if t.Kind == KParam || t.Kind == KParamGrad {
			tso.Kind = t.Kind
		}
		a.TensorTSO[i] = id
	}
	return a
}

// TotalBytes sums TSO sizes of the given pool kinds; a no-reuse upper
// bound used by the allocator ablation.
func (a *Assignment) TotalBytes() int64 {
	var b int64
	for _, t := range a.TSOs {
		b += t.Bytes
	}
	return b
}
