package hmms_test

import (
	"testing"

	"splitcnn/internal/costmodel"
	"splitcnn/internal/hmms"
	"splitcnn/internal/models"
	"splitcnn/internal/sim"
)

// TestTimelineInvariants checks the identities the report subcommand
// leans on: the peak of each pool's footprint series equals the pool's
// static size, the peak of its live series equals MaxLiveBytes, and the
// combined device footprint peaks at exactly DeviceBytes() — the value
// RecordMetrics publishes as mem.device_high_water_bytes.
func TestTimelineInvariants(t *testing.T) {
	m := models.VGG19CIFAR(4, models.Config{WidthDiv: 16})
	for _, method := range []sim.Method{sim.MethodNone, sim.MethodLayerWise, sim.MethodHMMS} {
		t.Run(method.String(), func(t *testing.T) {
			res, prog, mem, err := sim.PlanAndRun(m.Graph, costmodel.P100(), method, -1)
			if err != nil {
				t.Fatal(err)
			}
			opStart, opEnd := res.OpTimes()
			if len(opStart) != len(prog.Ops) {
				t.Fatalf("OpTimes returned %d ops, program has %d", len(opStart), len(prog.Ops))
			}
			series, err := mem.Timeline(opStart, opEnd)
			if err != nil {
				t.Fatal(err)
			}
			if len(series) != 3 {
				t.Fatalf("got %d pool series, want 3", len(series))
			}

			byPool := map[hmms.Pool]hmms.PoolSeries{}
			for _, s := range series {
				byPool[s.Pool] = s

				// Per-sample sanity: footprint bounds live from above,
				// both are non-negative, times are non-decreasing.
				var prev float64
				for i, p := range s.Samples {
					if p.FootprintBytes < p.LiveBytes {
						t.Errorf("%s op %d: footprint %d < live %d", s.Pool, p.Op, p.FootprintBytes, p.LiveBytes)
					}
					if p.LiveBytes < 0 {
						t.Errorf("%s op %d: negative live %d", s.Pool, p.Op, p.LiveBytes)
					}
					if i > 0 && p.Time < prev {
						t.Errorf("%s op %d: time %v < previous %v", s.Pool, p.Op, p.Time, prev)
					}
					prev = p.Time
				}
				if len(s.Samples) != len(prog.Ops)+1 {
					t.Errorf("%s: %d samples, want %d", s.Pool, len(s.Samples), len(prog.Ops)+1)
				}
				if last := s.Samples[len(s.Samples)-1]; last.LiveBytes != 0 || last.FootprintBytes != 0 {
					t.Errorf("%s: closing sample not empty: %+v", s.Pool, last)
				}

				// The two exact identities.
				if s.PeakFootprintBytes != mem.PoolBytes[s.Pool] {
					t.Errorf("%s: peak footprint %d != static pool size %d", s.Pool, s.PeakFootprintBytes, mem.PoolBytes[s.Pool])
				}
				if want := mem.MaxLiveBytes(s.Pool); s.PeakLiveBytes != want {
					t.Errorf("%s: peak live %d != MaxLiveBytes %d", s.Pool, s.PeakLiveBytes, want)
				}
			}

			// Combined device footprint peaks at DeviceBytes exactly: the
			// param pool is resident for the whole step, so the sum peaks
			// where the general pool does.
			param, general := byPool[hmms.PoolDeviceParam], byPool[hmms.PoolDeviceGeneral]
			var peak int64
			for i := range param.Samples {
				if sum := param.Samples[i].FootprintBytes + general.Samples[i].FootprintBytes; sum > peak {
					peak = sum
				}
			}
			if peak != mem.DeviceBytes() {
				t.Errorf("combined device peak %d != DeviceBytes %d", peak, mem.DeviceBytes())
			}
		})
	}
}

// TestTimelineValidation exercises the error paths.
func TestTimelineValidation(t *testing.T) {
	mem := &hmms.MemoryPlan{
		Blocks:    []*hmms.Block{{Name: "x", Pool: hmms.PoolDeviceGeneral, Start: 0, End: 5, Bytes: 4}},
		PoolBytes: map[hmms.Pool]int64{},
	}
	if _, err := mem.Timeline(nil, nil); err == nil {
		t.Error("empty op clock accepted")
	}
	if _, err := mem.Timeline([]float64{0, 1}, []float64{1}); err == nil {
		t.Error("mismatched start/end lengths accepted")
	}
	if _, err := mem.Timeline([]float64{0, 1}, []float64{1, 2}); err == nil {
		t.Error("block lifetime beyond program accepted")
	}
}
