package hmms

import "fmt"

// PoolSample is one point of a pool's occupancy-vs-time series: the
// state of the pool while op Op executes.
type PoolSample struct {
	// Op is the op index; Time its start on the step clock (seconds).
	Op   int
	Time float64
	// LiveBytes is the sum of block bytes live during the op — the
	// demand the allocator must satisfy at this moment.
	LiveBytes int64
	// FootprintBytes is the allocator frontier: the highest offset+size
	// over live blocks. The gap above LiveBytes is fragmentation.
	FootprintBytes int64
}

// PoolSeries is one pool's full occupancy timeline over a step.
type PoolSeries struct {
	Pool    Pool
	Samples []PoolSample
	// PeakLiveBytes equals MaxLiveBytes(Pool); PeakFootprintBytes equals
	// PoolBytes[Pool] — both by construction (see Timeline), which is
	// what lets a report cross-check its plotted high-water marks against
	// the mem.* gauges with ==.
	PeakLiveBytes      int64
	PeakFootprintBytes int64
}

// Timeline replays the static plan over the program's op clock and
// returns one occupancy series per pool. opStart[i] and opEnd[i] are op
// i's start and end times on the step clock (e.g. from the simulator's
// compute spans, stalls included). Each series carries one sample per
// op plus a closing sample at the end of the last op, where every
// lifetime has expired.
//
// Two identities hold exactly, not approximately. The peak of
// FootprintBytes over time is PoolBytes[pool]: the layout's peak is
// attained when some block is placed, and that block is live at its own
// Start op. The peak of LiveBytes over time is MaxLiveBytes(pool): both
// compute the same lifetime sweep, sampled at op granularity.
func (m *MemoryPlan) Timeline(opStart, opEnd []float64) ([]PoolSeries, error) {
	n := len(opStart)
	if n == 0 || len(opEnd) != n {
		return nil, fmt.Errorf("hmms: timeline needs matching op start/end times (got %d/%d)", n, len(opEnd))
	}
	for _, b := range m.Blocks {
		if b.Start < 0 || b.End < b.Start || b.End >= n {
			return nil, fmt.Errorf("hmms: block %s lifetime [%d, %d] outside program of %d ops", b.Name, b.Start, b.End, n)
		}
	}
	out := make([]PoolSeries, 0, 3)
	for _, pool := range []Pool{PoolHost, PoolDeviceParam, PoolDeviceGeneral} {
		var sel []*Block
		for _, b := range m.Blocks {
			if b.Pool == pool {
				sel = append(sel, b)
			}
		}
		s := PoolSeries{Pool: pool, Samples: make([]PoolSample, 0, n+1)}
		for i := 0; i < n; i++ {
			var live, fp int64
			for _, b := range sel {
				if b.Start <= i && i <= b.End {
					live += b.Bytes
					if top := b.Offset + b.Bytes; top > fp {
						fp = top
					}
				}
			}
			s.Samples = append(s.Samples, PoolSample{Op: i, Time: opStart[i], LiveBytes: live, FootprintBytes: fp})
			if live > s.PeakLiveBytes {
				s.PeakLiveBytes = live
			}
			if fp > s.PeakFootprintBytes {
				s.PeakFootprintBytes = fp
			}
		}
		s.Samples = append(s.Samples, PoolSample{Op: n, Time: opEnd[n-1]})
		out = append(out, s)
	}
	return out, nil
}
