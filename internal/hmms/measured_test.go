package hmms_test

import (
	"math"
	"testing"

	"splitcnn/internal/costmodel"
	"splitcnn/internal/hmms"
	"splitcnn/internal/tensor"
)

func TestMeasuredTimerOverridesConvTimes(t *testing.T) {
	g := tinyGraph()
	dev := costmodel.P100()
	base, err := hmms.BuildProgram(g, dev)
	if err != nil {
		t.Fatal(err)
	}

	// Measure c1: input (4,3,8,8), 3x3 s1 p1, cout 8.
	p := tensor.ConvParams{KH: 3, KW: 3, SH: 1, SW: 1, Pad: tensor.Symmetric(1)}
	sig := costmodel.SignatureOf(p, tensor.Shape{4, 3, 8, 8}, 8)
	const measured = 0.125
	ov := costmodel.NewMeasuredOverride()
	ov.Set(sig, measured)

	prog, err := hmms.BuildProgramTimed(g, dev, hmms.MeasuredTimer(dev, ov))
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for i, op := range prog.Ops {
		if op.Kind != "conv" {
			// Non-conv ops keep their roofline times untouched.
			if op.Time != base.Ops[i].Time {
				t.Fatalf("op %s time changed: %v vs %v", op.Name, op.Time, base.Ops[i].Time)
			}
			continue
		}
		if op.Phase == hmms.Forward {
			found = true
			if op.Time != measured {
				t.Fatalf("conv fwd time %v, want measured %v", op.Time, measured)
			}
		} else {
			// Backward scales by the roofline's own bwd/fwd ratio.
			bi := base.Ops[i]
			var bf float64
			for _, b := range base.ForwardOps() {
				if b.NodeID == op.NodeID {
					bf = b.Time
				}
			}
			want := measured * (bi.Time / bf)
			if math.Abs(op.Time-want) > 1e-12 {
				t.Fatalf("conv bwd time %v, want %v", op.Time, want)
			}
		}
	}
	if !found {
		t.Fatal("no conv forward op in program")
	}
}

func TestMeasuredTimerEmptyOverrideIsCostModel(t *testing.T) {
	g := tinyGraph()
	dev := costmodel.P100()
	base, err := hmms.BuildProgram(g, dev)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := hmms.BuildProgramTimed(g, dev, hmms.MeasuredTimer(dev, costmodel.NewMeasuredOverride()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range prog.Ops {
		if prog.Ops[i].Time != base.Ops[i].Time {
			t.Fatalf("op %s: empty override changed time", prog.Ops[i].Name)
		}
	}
}
