// Package experiments contains one driver per table and figure of the
// paper's evaluation (§5 and §6). Each driver regenerates the same rows
// or series the paper reports — on the simulated device for the memory
// and throughput experiments, and by real CPU training of scaled-down
// models on synthetic data for the accuracy experiments — and prints a
// plain-text table. EXPERIMENTS.md in the repository root records
// paper-versus-measured values for every driver.
package experiments

import (
	"fmt"
	"io"
	"os"
	"sort"

	"splitcnn/internal/costmodel"
)

// Scale trades fidelity for run time in the training-based experiments.
type Scale int

// Scales.
const (
	// Quick is sized for tests and smoke runs (minutes in total).
	Quick Scale = iota
	// Standard is the default benchmark scale (tens of minutes for the
	// full accuracy suite).
	Standard
	// Full pushes sample counts and epochs further.
	Full
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case Quick:
		return "quick"
	case Standard:
		return "standard"
	case Full:
		return "full"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// ParseScale parses a scale name.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "quick":
		return Quick, nil
	case "standard", "":
		return Standard, nil
	case "full":
		return Full, nil
	}
	return 0, fmt.Errorf("unknown scale %q (want quick, standard or full)", s)
}

// Options configures an experiment run.
type Options struct {
	Scale  Scale
	Device costmodel.DeviceSpec
	Out    io.Writer
	// Seed offsets the deterministic seeds of training experiments.
	Seed int64
	// TraceDir, when non-empty, makes the simulation-based experiments
	// (fig8, fig9) write a Chrome trace_event JSON and a metrics JSON
	// per simulated run into the directory as a side effect.
	TraceDir string
}

// DefaultOptions returns Standard scale on the paper's P100 testbed,
// printing to stdout.
func DefaultOptions() Options {
	return Options{Scale: Standard, Device: costmodel.P100(), Out: os.Stdout}
}

func (o *Options) fill() {
	if o.Out == nil {
		o.Out = os.Stdout
	}
	if o.Device.Name == "" {
		o.Device = costmodel.P100()
	}
}

func (o *Options) printf(format string, args ...any) {
	fmt.Fprintf(o.Out, format, args...)
}

// Runner is an experiment entry point.
type Runner func(Options) error

// registry maps experiment IDs to drivers; filled by init functions in
// the per-figure files.
var registry = map[string]Runner{}

// Run dispatches an experiment by ID ("fig1", "fig4", ..., "table1").
func Run(id string, opt Options) error {
	r, ok := registry[id]
	if !ok {
		return fmt.Errorf("unknown experiment %q (available: %v)", id, IDs())
	}
	return r(opt)
}

// IDs lists the registered experiment IDs in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
