package experiments

import (
	"fmt"

	"splitcnn/internal/core"
	"splitcnn/internal/data"
	"splitcnn/internal/models"
	"splitcnn/internal/train"
)

func init() {
	registry["fig4"] = func(o Options) error { _, err := Fig4(o); return err }
	registry["fig5"] = func(o Options) error { _, err := Fig5(o); return err }
	registry["fig6"] = func(o Options) error { _, err := Fig6(o); return err }
	registry["table1"] = func(o Options) error { _, err := Table1(o); return err }
	registry["fig7"] = registry["table1"]
}

// accuracySetup bundles the per-scale knobs of a training experiment.
type accuracySetup struct {
	ds       *data.Dataset
	epochs   int
	batch    int
	widthDiv int
	lr       float64
	decayAt  []int
}

// cifarSetup builds the synthetic CIFAR-10 stand-in sized for the scale.
func cifarSetup(opt Options) (accuracySetup, error) {
	var cfg data.Config
	s := accuracySetup{batch: 32, lr: 0.05}
	switch opt.Scale {
	case Quick:
		cfg = data.CIFARLike(512, 256)
		s.epochs, s.widthDiv = 3, 16
	case Standard:
		cfg = data.CIFARLike(1024, 512)
		s.epochs, s.widthDiv = 6, 16
	default:
		cfg = data.CIFARLike(2048, 512)
		s.epochs, s.widthDiv = 10, 8
	}
	cfg.Noise = 0.9
	cfg.MaxShift = 6
	cfg.Seed += opt.Seed
	s.decayAt = []int{s.epochs * 2 / 3}
	ds, err := data.Synthetic(cfg)
	s.ds = ds
	return s, err
}

// imagenetSetup builds the heavier ImageNet stand-in.
func imagenetSetup(opt Options) (accuracySetup, error) {
	var cfg data.Config
	s := accuracySetup{batch: 32, lr: 0.05}
	// AlexNet's 11x11/4 stem plus three 3x3/2 pools needs at least
	// 64-pixel inputs, so every scale keeps the 64x64 geometry and
	// trades sample count and width instead.
	switch opt.Scale {
	case Quick:
		cfg = data.ImageNetLike(256, 128)
		s.epochs, s.widthDiv = 3, 24
	case Standard:
		cfg = data.ImageNetLike(768, 384)
		s.epochs, s.widthDiv = 6, 16
	default:
		cfg = data.ImageNetLike(1536, 512)
		s.epochs, s.widthDiv = 8, 16
	}
	cfg.Noise = 0.8
	cfg.Seed += opt.Seed
	s.decayAt = []int{s.epochs * 2 / 3}
	ds, err := data.Synthetic(cfg)
	s.ds = ds
	return s, err
}

// trainOne runs one configuration and returns the result.
func (s accuracySetup) trainOne(opt Options, arch string, split core.Config, evalUnsplit bool) (*train.Result, error) {
	return train.Run(train.Config{
		Arch:          arch,
		Model:         models.Config{WidthDiv: s.widthDiv, BatchNorm: true},
		BatchSize:     s.batch,
		Epochs:        s.epochs,
		LR:            s.lr,
		Momentum:      0.9,
		WeightDecay:   1e-4,
		LRDecayEpochs: s.decayAt,
		Split:         split,
		EvalUnsplit:   evalUnsplit,
		Seed:          41 + opt.Seed,
	}, s.ds)
}

// AccuracyRow is one point of an accuracy sweep.
type AccuracyRow struct {
	Arch          string
	Label         string
	Depth         float64
	Splits        int
	RealizedDepth float64
	TestErr       float64
	Curve         []float64
}

// Fig4 reproduces Figure 4: test error versus splitting depth
// {0, 12.5, 25, 37.5, 50}% with four spatial patches, for VGG-19 and
// ResNet-18 on the CIFAR-like dataset. The paper's observation — error
// degrades roughly linearly (and slowly) with depth — is checked by
// comparing endpoint means.
func Fig4(opt Options) ([]AccuracyRow, error) {
	opt.fill()
	s, err := cifarSetup(opt)
	if err != nil {
		return nil, err
	}
	depths := []float64{0, 0.125, 0.25, 0.375, 0.5}
	var rows []AccuracyRow
	opt.printf("Figure 4: test error vs splitting depth (4 patches, CIFAR-like, scale=%s)\n", opt.Scale)
	opt.printf("%-10s %-8s %-10s %s\n", "arch", "depth", "realized", "test error")
	for _, arch := range []string{"vgg19", "resnet18"} {
		for _, d := range depths {
			res, err := s.trainOne(opt, arch, core.Config{Depth: d, NH: 2, NW: 2}, false)
			if err != nil {
				return nil, fmt.Errorf("fig4 %s depth %v: %w", arch, d, err)
			}
			realized := 0.0
			if res.TotalConvs > 0 {
				realized = float64(res.SplitConvs) / float64(res.TotalConvs)
			}
			rows = append(rows, AccuracyRow{
				Arch: arch, Label: fmt.Sprintf("depth=%.1f%%", d*100),
				Depth: d, Splits: 4, RealizedDepth: realized,
				TestErr: res.FinalTestErr, Curve: res.TestErr,
			})
			opt.printf("%-10s %-8.3f %-10.3f %.4f\n", arch, d, realized, res.FinalTestErr)
		}
	}
	return rows, nil
}

// Fig5 reproduces Figure 5: test error versus number of splits
// {1, 2, 3, 4, 6, 9} at ~25% splitting depth.
func Fig5(opt Options) ([]AccuracyRow, error) {
	opt.fill()
	s, err := cifarSetup(opt)
	if err != nil {
		return nil, err
	}
	grids := []struct{ nh, nw int }{{1, 1}, {1, 2}, {1, 3}, {2, 2}, {2, 3}, {3, 3}}
	var rows []AccuracyRow
	opt.printf("Figure 5: test error vs number of splits (depth 25%%, CIFAR-like, scale=%s)\n", opt.Scale)
	opt.printf("%-10s %-8s %s\n", "arch", "splits", "test error")
	for _, arch := range []string{"vgg19", "resnet18"} {
		for _, g := range grids {
			res, err := s.trainOne(opt, arch, core.Config{Depth: 0.25, NH: g.nh, NW: g.nw}, false)
			if err != nil {
				return nil, fmt.Errorf("fig5 %s %dx%d: %w", arch, g.nh, g.nw, err)
			}
			n := g.nh * g.nw
			rows = append(rows, AccuracyRow{
				Arch: arch, Label: fmt.Sprintf("splits=%d", n),
				Depth: 0.25, Splits: n, TestErr: res.FinalTestErr, Curve: res.TestErr,
			})
			opt.printf("%-10s %-8d %.4f\n", arch, n, res.FinalTestErr)
		}
	}
	return rows, nil
}

// Fig6 reproduces Figure 6: per-epoch test-error curves of the baseline,
// the deterministic Split-CNN, and the Stochastic Split-CNN (ω = 0.2,
// evaluated on the unsplit network), at 50% splitting depth with four
// patches.
func Fig6(opt Options) ([]AccuracyRow, error) {
	opt.fill()
	s, err := cifarSetup(opt)
	if err != nil {
		return nil, err
	}
	var rows []AccuracyRow
	opt.printf("Figure 6: stochasticity of splitting (depth 50%%, 4 patches, ω=0.2, scale=%s)\n", opt.Scale)
	for _, arch := range []string{"vgg19", "resnet18"} {
		for _, v := range []struct {
			label       string
			split       core.Config
			unsplitEval bool
		}{
			{"baseline", core.Config{}, false},
			{"scnn", core.Config{Depth: 0.5, NH: 2, NW: 2}, false},
			{"sscnn", core.Config{Depth: 0.5, NH: 2, NW: 2, Stochastic: true, Omega: 0.2}, true},
		} {
			res, err := s.trainOne(opt, arch, v.split, v.unsplitEval)
			if err != nil {
				return nil, fmt.Errorf("fig6 %s %s: %w", arch, v.label, err)
			}
			rows = append(rows, AccuracyRow{
				Arch: arch, Label: v.label, Depth: v.split.Depth, Splits: 4,
				TestErr: res.FinalTestErr, Curve: res.TestErr,
			})
			opt.printf("%-10s %-9s final=%.4f curve=%v\n", arch, v.label, res.FinalTestErr, fmtCurve(res.TestErr))
		}
	}
	return rows, nil
}

// Table1 reproduces Table 1 (and the Figure 7 curves): baseline vs
// Split-CNN vs Stochastic Split-CNN accuracy for AlexNet and ResNet-50
// on the ImageNet-like dataset and VGG-19 and ResNet-18 on the
// CIFAR-like dataset, at the paper's per-architecture depths with four
// patches.
func Table1(opt Options) ([]AccuracyRow, error) {
	opt.fill()
	cif, err := cifarSetup(opt)
	if err != nil {
		return nil, err
	}
	img, err := imagenetSetup(opt)
	if err != nil {
		return nil, err
	}
	cases := []struct {
		arch  string
		setup accuracySetup
		depth float64
	}{
		{"alexnet", img, 0.60},
		{"resnet50", img, 0.812},
		{"vgg19", cif, 0.50},
		{"resnet18", cif, 0.50},
	}
	var rows []AccuracyRow
	opt.printf("Table 1: classification performance of Split-CNN (scale=%s)\n", opt.Scale)
	opt.printf("%-10s %-8s %-10s %-10s %-10s\n", "arch", "depth", "baseline", "scnn", "sscnn")
	for _, c := range cases {
		base, err := c.setup.trainOne(opt, c.arch, core.Config{}, false)
		if err != nil {
			return nil, fmt.Errorf("table1 %s baseline: %w", c.arch, err)
		}
		scnn, err := c.setup.trainOne(opt, c.arch, core.Config{Depth: c.depth, NH: 2, NW: 2}, false)
		if err != nil {
			return nil, fmt.Errorf("table1 %s scnn: %w", c.arch, err)
		}
		sscnn, err := c.setup.trainOne(opt, c.arch, core.Config{Depth: c.depth, NH: 2, NW: 2, Stochastic: true, Omega: 0.2}, true)
		if err != nil {
			return nil, fmt.Errorf("table1 %s sscnn: %w", c.arch, err)
		}
		rows = append(rows,
			AccuracyRow{Arch: c.arch, Label: "baseline", TestErr: base.FinalTestErr, Curve: base.TestErr},
			AccuracyRow{Arch: c.arch, Label: "scnn", Depth: c.depth, Splits: 4, TestErr: scnn.FinalTestErr, Curve: scnn.TestErr},
			AccuracyRow{Arch: c.arch, Label: "sscnn", Depth: c.depth, Splits: 4, TestErr: sscnn.FinalTestErr, Curve: sscnn.TestErr},
		)
		opt.printf("%-10s %-8.3f %-10.4f %-10.4f %-10.4f\n",
			c.arch, c.depth, base.FinalTestErr, scnn.FinalTestErr, sscnn.FinalTestErr)
	}
	return rows, nil
}

func fmtCurve(c []float64) string {
	s := "["
	for i, v := range c {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.2f", v)
	}
	return s + "]"
}
