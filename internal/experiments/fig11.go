package experiments

import (
	"splitcnn/internal/core"
	"splitcnn/internal/dist"
	"splitcnn/internal/graph"
	"splitcnn/internal/models"
	"splitcnn/internal/sim"
)

func init() { registry["fig11"] = func(o Options) error { _, err := Fig11(o); return err } }

// Fig11Point is one point of the Figure 11 speedup curve.
type Fig11Point struct {
	BandwidthGbit float64
	Speedup       float64
}

// Fig11Result carries the projection and its inputs.
type Fig11Result struct {
	Points              []Fig11Point
	BaselineBatch       int
	SplitBatch          int
	GradientBytes       int64
	BaseStep, SplitStep dist.StepTimes
}

// Fig11 reproduces Figure 11: the projected speedup of distributed
// Split-CNN training for VGG-19 as a function of network bandwidth
// (0.5–32 Gbit/s, α = 0.8). Per §6.4, the projection feeds the
// analytical T_epoch model with single-node quantities: the maximum
// batch sizes from the Figure 10 analysis and forward/backward step
// times measured on the device simulator.
func Fig11(opt Options) (*Fig11Result, error) {
	opt.fill()

	// Single-node measurements. The batch sizes follow the Figure 10
	// result shape (baseline vs split+HMMS maximum batch); to keep this
	// driver independent of fig10's search cost we re-derive them with
	// a coarse search.
	capacity := opt.Device.MemCapacity
	stepAt := func(doSplit bool, batch int) (dist.StepTimes, int64, error) {
		g := models.VGG19ImageNet(batch).Graph
		method := sim.MethodNone
		if doSplit {
			sr, err := core.Split(g, core.Config{Depth: 0.75, NH: 2, NW: 2})
			if err != nil {
				return dist.StepTimes{}, 0, err
			}
			g = sr.Graph
			method = sim.MethodHMMS
		}
		res, prog, mem, err := sim.PlanAndRun(g, opt.Device, method, -1)
		if err != nil {
			return dist.StepTimes{}, 0, err
		}
		// Attribute stalls to the phase they occur in.
		st := dist.StepTimes{
			BatchSize: batch,
			Forward:   prog.ForwardTime() + res.ForwardStall,
			Backward:  prog.BackwardTime() + res.BackwardStall,
		}
		return st, mem.DeviceBytes(), nil
	}
	search := func(doSplit bool) (int, error) {
		lo, hi := 1, 4096
		for lo < hi {
			mid := (lo + hi + 1) / 2
			_, bytes, err := stepAt(doSplit, mid)
			if err == nil && bytes <= capacity {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		return lo, nil
	}
	// The baseline runs at the paper's single-GPU configuration (batch
	// 64, as in Figure 8); Split-CNN+HMMS runs at its capacity-limited
	// maximum batch from the Figure 10 analysis.
	b0 := 64
	b1, err := search(true)
	if err != nil {
		return nil, err
	}
	baseStep, _, err := stepAt(false, b0)
	if err != nil {
		return nil, err
	}
	splitStep, _, err := stepAt(true, b1)
	if err != nil {
		return nil, err
	}

	// |G|: the full VGG-19 gradient (one float32 per parameter).
	store := graph.NewParamStore()
	store.InitFromGraph(models.VGG19ImageNet(1).Graph, nil, nil)
	m := dist.Model{
		DatasetSize:   1_281_167, // ImageNet train split
		GradientBytes: store.Bytes(),
		Alpha:         0.8,
	}

	res := &Fig11Result{
		BaselineBatch: b0, SplitBatch: b1,
		GradientBytes: store.Bytes(),
		BaseStep:      baseStep, SplitStep: splitStep,
	}
	opt.printf("Figure 11: distributed-training speedup for VGG-19 (α=0.8, |G|=%.0f MB, batch %d→%d)\n",
		float64(store.Bytes())/1e6, b0, b1)
	opt.printf("%-16s %s\n", "bandwidth(Gbit)", "speedup")
	for _, gbit := range []float64{0.5, 1, 2, 4, 8, 10, 16, 32} {
		s, err := m.Speedup(baseStep, splitStep, dist.GbitToBytes(gbit))
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, Fig11Point{BandwidthGbit: gbit, Speedup: s})
		opt.printf("%-16.1f %.2fx\n", gbit, s)
	}
	return res, nil
}
