package experiments

import (
	"fmt"

	"splitcnn/internal/core"
	"splitcnn/internal/models"
	"splitcnn/internal/sim"
)

func init() {
	registry["fig8"] = func(o Options) error { _, err := Fig8(o); return err }
	registry["fig9"] = func(o Options) error { _, err := Fig9(o); return err }
	registry["fig10"] = func(o Options) error { _, err := Fig10(o); return err }
}

// Fig8Row is one bar of Figure 8.
type Fig8Row struct {
	Network     string
	Method      sim.Method
	Throughput  float64 // images/s
	Degradation float64 // vs the baseline plan
	Offloaded   int64
}

// Fig8 reproduces Figure 8: training throughput of VGG-19 and ResNet-50
// (batch 64) under the baseline, layer-wise (vDNN-style) and HMMS
// memory plans, each capped at the network's theoretical offload limit
// (100% for VGG-19, ~40% for ResNet-50 in the paper).
func Fig8(opt Options) ([]Fig8Row, error) {
	opt.fill()
	const batch = 64
	var rows []Fig8Row
	opt.printf("Figure 8: training throughput under three scheduling methods (batch %d, %s)\n", batch, opt.Device.Name)
	opt.printf("%-10s %-11s %12s %12s %12s\n", "network", "method", "img/s", "degr(%)", "offl(GB)")
	for _, mk := range []struct {
		name string
		m    *models.Model
	}{
		{"vgg19", models.VGG19ImageNet(batch)},
		{"resnet50", models.ResNet50ImageNet(batch)},
	} {
		var base float64
		for _, method := range []sim.Method{sim.MethodNone, sim.MethodLayerWise, sim.MethodHMMS} {
			res, _, mem, err := sim.PlanAndRun(mk.m.Graph, opt.Device, method, -1)
			if err != nil {
				return nil, fmt.Errorf("fig8 %s %s: %w", mk.name, method, err)
			}
			if err := opt.exportTrace(fmt.Sprintf("fig8-%s-%s", mk.name, method), res, mem); err != nil {
				return nil, err
			}
			thr := res.Throughput(batch)
			if method == sim.MethodNone {
				base = thr
			}
			row := Fig8Row{
				Network: mk.name, Method: method, Throughput: thr,
				Degradation: 1 - thr/base, Offloaded: res.OffloadedBytes,
			}
			rows = append(rows, row)
			opt.printf("%-10s %-11s %12.1f %12.1f %12.2f\n",
				mk.name, method, thr, row.Degradation*100, float64(res.OffloadedBytes)/1e9)
		}
	}
	return rows, nil
}

// Fig9Row summarizes one scheduler's stream timeline.
type Fig9Row struct {
	Method sim.Method
	// Spans is the full nvprof-style timeline (compute + copies).
	Spans []sim.Span
	// ComputeBusy and LinkBusy are stream utilizations over the step.
	ComputeBusy, LinkBusy float64
	Stall                 float64
}

// Fig9 reproduces Figure 9: the profiling timelines of the three
// offload-scheduling methods on the VGG-19 training step. Rather than
// pixels, it reports per-stream occupancy and prints a coarse ASCII
// rendering of the first milliseconds of each timeline, where the
// layer-wise scheduler's eager synchronization stalls are visible.
func Fig9(opt Options) ([]Fig9Row, error) {
	opt.fill()
	const batch = 64
	m := models.VGG19ImageNet(batch)
	var rows []Fig9Row
	opt.printf("Figure 9: stream timelines for VGG-19 (batch %d)\n", batch)
	for _, method := range []sim.Method{sim.MethodNone, sim.MethodLayerWise, sim.MethodHMMS} {
		res, _, mem, err := sim.PlanAndRun(m.Graph, opt.Device, method, -1)
		if err != nil {
			return nil, err
		}
		if err := opt.exportTrace(fmt.Sprintf("fig9-vgg19-%s", method), res, mem); err != nil {
			return nil, err
		}
		var computeBusy, linkBusy float64
		for _, s := range res.Spans {
			d := s.End - s.Start
			if s.Stream == "compute" {
				computeBusy += d
			} else {
				linkBusy += d
			}
		}
		row := Fig9Row{
			Method: method, Spans: res.Spans,
			ComputeBusy: computeBusy / res.TotalTime,
			LinkBusy:    linkBusy / res.TotalTime,
			Stall:       res.StallTime,
		}
		rows = append(rows, row)
		opt.printf("\n[%s] total=%.1fms stall=%.1fms compute-busy=%.0f%% link-busy=%.0f%%\n",
			method, res.TotalTime*1e3, res.StallTime*1e3, row.ComputeBusy*100, row.LinkBusy*100)
		opt.printf("%s\n", asciiTimeline(res.Spans, res.TotalTime, 100))
	}
	return rows, nil
}

// asciiTimeline renders stream occupancy as rows of width cells.
func asciiTimeline(spans []sim.Span, total float64, width int) string {
	lanes := map[string][]byte{}
	for _, name := range []string{"compute", "offload", "prefetch"} {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		lanes[name] = row
	}
	for _, s := range spans {
		row, ok := lanes[s.Stream]
		if !ok {
			continue
		}
		lo := int(s.Start / total * float64(width))
		hi := int(s.End / total * float64(width))
		for i := lo; i <= hi && i < width; i++ {
			row[i] = '#'
		}
	}
	return "  compute  |" + string(lanes["compute"]) + "|\n" +
		"  offload  |" + string(lanes["offload"]) + "|\n" +
		"  prefetch |" + string(lanes["prefetch"]) + "|"
}

// Fig10Row is one network's Figure 10 comparison.
type Fig10Row struct {
	Network string
	// BaselineBatch / SplitBatch are the maximum trainable batch sizes
	// under the device memory capacity.
	BaselineBatch, SplitBatch int
	BatchRatio                float64
	// ThroughputLoss is the relative throughput cost of Split+HMMS at
	// its maximum batch versus the baseline at its own maximum batch.
	ThroughputLoss float64
}

// Fig10 reproduces Figure 10: the maximum trainable batch size and the
// accompanying throughput for the baseline versus Split-CNN (4 patches,
// depth ≈ 75%) + HMMS, on VGG-19 and the memory-efficient ResNet-18
// (BN recompute per [6], which raises its offloadable fraction — §6.3).
func Fig10(opt Options) ([]Fig10Row, error) {
	opt.fill()
	capacity := opt.Device.MemCapacity
	split := core.Config{Depth: 0.75, NH: 2, NW: 2}
	builders := []struct {
		name  string
		build func(batch int) *models.Model
	}{
		{"vgg19", models.VGG19ImageNet},
		{"resnet18-me", func(b int) *models.Model {
			return models.ResNet18(models.Config{
				BatchSize: b, Classes: 1000, InputC: 3, InputH: 224, InputW: 224, BNRecompute: true,
			})
		}},
	}
	var rows []Fig10Row
	opt.printf("Figure 10: maximum batch size and throughput (splits=4, depth≈75%%, %.0f GB device)\n",
		float64(capacity)/(1<<30))
	opt.printf("%-12s %14s %14s %8s %10s\n", "network", "baseline-batch", "split-batch", "ratio", "thr-loss(%)")
	for _, b := range builders {
		evalOne := func(doSplit bool, batch int) (int64, float64, error) {
			g := b.build(batch).Graph
			method := sim.MethodNone
			if doSplit {
				sr, err := core.Split(g, split)
				if err != nil {
					return 0, 0, err
				}
				g = sr.Graph
				method = sim.MethodHMMS
			}
			res, _, mem, err := sim.PlanAndRun(g, opt.Device, method, -1)
			if err != nil {
				return 0, 0, err
			}
			return mem.DeviceBytes(), res.Throughput(batch), nil
		}
		search := func(doSplit bool) int {
			lo, hi := 1, 8192
			for lo < hi {
				mid := (lo + hi + 1) / 2
				bytes, _, err := evalOne(doSplit, mid)
				if err == nil && bytes <= capacity {
					lo = mid
				} else {
					hi = mid - 1
				}
			}
			return lo
		}
		b0 := search(false)
		_, t0, err := evalOne(false, b0)
		if err != nil {
			return nil, err
		}
		b1 := search(true)
		_, t1, err := evalOne(true, b1)
		if err != nil {
			return nil, err
		}
		row := Fig10Row{
			Network: b.name, BaselineBatch: b0, SplitBatch: b1,
			BatchRatio: float64(b1) / float64(b0), ThroughputLoss: 1 - t1/t0,
		}
		rows = append(rows, row)
		opt.printf("%-12s %14d %14d %8.1f %10.1f\n",
			b.name, b0, b1, row.BatchRatio, row.ThroughputLoss*100)
	}
	return rows, nil
}
