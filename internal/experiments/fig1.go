package experiments

import (
	"fmt"

	"splitcnn/internal/hmms"
	"splitcnn/internal/models"
)

func init() { registry["fig1"] = func(o Options) error { _, err := Fig1(o); return err } }

// Fig1Series is one network's Figure 1 panel.
type Fig1Series struct {
	Network string
	Rows    []hmms.LayerProfile
	// Limit is the final cumulative-offloadable over cumulative-
	// generated ratio (capped at 1) — the offloadable fraction the paper
	// reads off the plot (VGG-19: all; ResNet-18: ~55%).
	Limit float64
}

// Fig1 reproduces Figure 1: per-layer generated vs. offload-able data
// sizes and their cumulative curves for the forward pass of VGG-19 and
// ResNet-18 at batch 64 on the simulated P100 + NVLink testbed.
func Fig1(opt Options) ([]Fig1Series, error) {
	opt.fill()
	const batch = 64
	var out []Fig1Series
	for _, mk := range []struct {
		name string
		m    *models.Model
	}{
		{"VGG-19", models.VGG19ImageNet(batch)},
		{"ResNet-18", models.ResNet18ImageNet(batch)},
	} {
		prog, err := hmms.BuildProgram(mk.m.Graph, opt.Device)
		if err != nil {
			return nil, err
		}
		s := Fig1Series{Network: mk.name, Rows: prog.ProfileForward(), Limit: prog.TheoreticalOffloadLimit()}
		out = append(out, s)

		opt.printf("Figure 1 (%s): generated vs offload-able data, batch %d, %s @ %.1f GB/s NVLink\n",
			mk.name, batch, opt.Device.Name, opt.Device.LinkBandwidth/1e9)
		opt.printf("%-18s %-10s %10s %12s %12s %12s %12s\n",
			"layer", "kind", "time(us)", "gen(MB)", "offl(MB)", "cum-gen(MB)", "cum-offl(MB)")
		for _, r := range s.Rows {
			opt.printf("%-18s %-10s %10.1f %12.2f %12.2f %12.1f %12.1f\n",
				r.Name, r.Kind, r.Time*1e6, mb(r.GeneratedBytes), mb(r.OffloadableBytes),
				mb(r.CumGenerated), mb(r.CumOffloadable))
		}
		opt.printf("=> offloadable fraction without performance loss: %.0f%%\n\n", s.Limit*100)
	}
	if err := fig1Check(out); err != nil {
		return out, err
	}
	return out, nil
}

func mb(b int64) float64 { return float64(b) / 1e6 }

// fig1Check asserts the paper's two observations hold on our substrate.
func fig1Check(series []Fig1Series) error {
	vgg, rn := series[0], series[1]
	if vgg.Limit < 0.99 {
		return fmt.Errorf("fig1: VGG-19 should be completely offloadable, got %.2f", vgg.Limit)
	}
	if rn.Limit >= 0.99 {
		return fmt.Errorf("fig1: ResNet-18 should not be fully offloadable, got %.2f", rn.Limit)
	}
	// "Memory bound layers like pooling layers ... almost never have
	// enough time to offload": every pooling layer's own offloadable
	// bytes must fall short of the data generated up to it by its
	// producing conv.
	for _, s := range series {
		for _, r := range s.Rows {
			if r.Kind == "maxpool" && r.GeneratedBytes > 0 && r.OffloadableBytes >= r.GeneratedBytes {
				return fmt.Errorf("fig1: pooling layer %s had time to offload its results", r.Name)
			}
		}
	}
	return nil
}
