package experiments

import (
	"splitcnn/internal/core"
	"splitcnn/internal/hmms"
	"splitcnn/internal/models"
	"splitcnn/internal/sim"
)

func init() { registry["ablations"] = func(o Options) error { _, err := Ablations(o); return err } }

// AblationResult summarizes the design-choice ablations DESIGN.md calls
// out (also exposed as benchmarks in bench_test.go).
type AblationResult struct {
	// Allocator: device general pool under first-fit vs no-reuse.
	FirstFitBytes, NoReuseBytes int64
	// Storage optimizations (§4.2) on vs off.
	OptimizedBytes, UnoptimizedBytes int64
	InPlaceReLUCount, SharedErrCount int
	// Split at equal batch: step-time overhead and memory saved.
	SplitOverhead    float64
	SplitMemorySaved int64
	// Scheduler spread: layer-wise vs HMMS stall seconds.
	LayerWiseStall, HMMSStall float64
}

// Ablations runs the four ablations on VGG-19 (allocator, storage
// optimizations, split overhead, scheduler spread) and prints a table.
func Ablations(opt Options) (*AblationResult, error) {
	opt.fill()
	out := &AblationResult{}

	// Allocator ablation on VGG-19.
	m := models.VGG19ImageNet(16)
	prog, err := hmms.BuildProgram(m.Graph, opt.Device)
	if err != nil {
		return nil, err
	}
	assign := hmms.AssignStorage(prog, hmms.DefaultStorageOpts())
	ff := hmms.PlanMemory(prog, assign, hmms.PlanNone(), hmms.FirstFit)
	nr := hmms.PlanMemory(prog, assign, hmms.PlanNone(), hmms.NoReuse)
	out.FirstFitBytes = ff.PoolBytes[hmms.PoolDeviceGeneral]
	out.NoReuseBytes = nr.PoolBytes[hmms.PoolDeviceGeneral]

	// §4.2 storage optimizations bind on the ResNet family (residual
	// adds for error sharing, BN-stashed conv outputs around ReLUs).
	rn, err := hmms.BuildProgram(models.ResNet18ImageNet(16).Graph, opt.Device)
	if err != nil {
		return nil, err
	}
	with := hmms.AssignStorage(rn, hmms.DefaultStorageOpts())
	without := hmms.AssignStorage(rn, hmms.StorageOpts{})
	out.InPlaceReLUCount = with.InPlaceReLUCount
	out.SharedErrCount = with.SharedErrorCount
	out.OptimizedBytes = hmms.PlanMemory(rn, with, hmms.PlanNone(), hmms.FirstFit).PoolBytes[hmms.PoolDeviceGeneral]
	out.UnoptimizedBytes = hmms.PlanMemory(rn, without, hmms.PlanNone(), hmms.FirstFit).PoolBytes[hmms.PoolDeviceGeneral]

	// Split overhead at equal batch.
	big := models.VGG19ImageNet(64)
	base, _, baseMem, err := sim.PlanAndRun(big.Graph, opt.Device, sim.MethodHMMS, -1)
	if err != nil {
		return nil, err
	}
	sr, err := core.Split(big.Graph, core.Config{Depth: 0.75, NH: 2, NW: 2})
	if err != nil {
		return nil, err
	}
	split, _, splitMem, err := sim.PlanAndRun(sr.Graph, opt.Device, sim.MethodHMMS, -1)
	if err != nil {
		return nil, err
	}
	out.SplitOverhead = split.TotalTime/base.TotalTime - 1
	out.SplitMemorySaved = baseMem.DeviceBytes() - splitMem.DeviceBytes()

	// Scheduler spread.
	lw, _, _, err := sim.PlanAndRun(big.Graph, opt.Device, sim.MethodLayerWise, -1)
	if err != nil {
		return nil, err
	}
	out.LayerWiseStall = lw.StallTime
	out.HMMSStall = base.StallTime

	opt.printf("Ablations (VGG-19, %s)\n", opt.Device.Name)
	opt.printf("  allocator:        first-fit %.2f GB vs no-reuse %.2f GB (%.1fx)\n",
		float64(out.FirstFitBytes)/1e9, float64(out.NoReuseBytes)/1e9,
		float64(out.NoReuseBytes)/float64(out.FirstFitBytes))
	opt.printf("  §4.2 storage opt: ResNet-18 %.2f GB with vs %.2f GB without (in-place ReLU x%d, shared error x%d)\n",
		float64(out.OptimizedBytes)/1e9, float64(out.UnoptimizedBytes)/1e9,
		out.InPlaceReLUCount, out.SharedErrCount)
	opt.printf("  split @batch 64:  +%.1f%% step time for -%.2f GB planned device memory\n",
		out.SplitOverhead*100, float64(out.SplitMemorySaved)/1e9)
	opt.printf("  scheduler stall:  layer-wise %.1f ms vs HMMS %.1f ms\n",
		out.LayerWiseStall*1e3, out.HMMSStall*1e3)
	return out, nil
}
