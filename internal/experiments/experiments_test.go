package experiments_test

import (
	"io"
	"strings"
	"testing"

	"splitcnn/internal/costmodel"
	"splitcnn/internal/experiments"
	"splitcnn/internal/sim"
)

func quietOpts() experiments.Options {
	return experiments.Options{Scale: experiments.Quick, Device: costmodel.P100(), Out: io.Discard}
}

func TestRegistryIDs(t *testing.T) {
	ids := experiments.IDs()
	want := []string{"ablations", "fig1", "fig10", "fig11", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table1"}
	if len(ids) != len(want) {
		t.Fatalf("experiment IDs %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("experiment IDs %v, want %v", ids, want)
		}
	}
	if err := experiments.Run("nope", quietOpts()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestParseScale(t *testing.T) {
	for s, want := range map[string]experiments.Scale{
		"quick": experiments.Quick, "standard": experiments.Standard,
		"": experiments.Standard, "full": experiments.Full,
	} {
		got, err := experiments.ParseScale(s)
		if err != nil || got != want {
			t.Fatalf("ParseScale(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := experiments.ParseScale("bogus"); err == nil {
		t.Fatal("bogus scale accepted")
	}
}

// TestFig1Observations re-derives the two Figure 1 conclusions.
func TestFig1Observations(t *testing.T) {
	series, err := experiments.Fig1(quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("want 2 networks, got %d", len(series))
	}
	if series[0].Limit < 0.99 {
		t.Fatalf("VGG-19 must be fully offloadable, limit %.2f", series[0].Limit)
	}
	if series[1].Limit >= 0.99 || series[1].Limit < 0.3 {
		t.Fatalf("ResNet-18 limit %.2f outside the partial-offload regime", series[1].Limit)
	}
	// Cumulative curves are monotone.
	for _, s := range series {
		for i := 1; i < len(s.Rows); i++ {
			if s.Rows[i].CumGenerated < s.Rows[i-1].CumGenerated ||
				s.Rows[i].CumOffloadable < s.Rows[i-1].CumOffloadable {
				t.Fatal("cumulative curves not monotone")
			}
		}
	}
}

// TestFig8Shape checks the Figure 8 ordering: HMMS within a few percent
// of the baseline, layer-wise several times worse.
func TestFig8Shape(t *testing.T) {
	rows, err := experiments.Fig8(quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("want 6 rows, got %d", len(rows))
	}
	byKey := map[string]experiments.Fig8Row{}
	for _, r := range rows {
		byKey[r.Network+"/"+r.Method.String()] = r
	}
	for _, net := range []string{"vgg19", "resnet50"} {
		h := byKey[net+"/hmms"]
		lw := byKey[net+"/layer-wise"]
		if h.Degradation > 0.06 {
			t.Fatalf("%s HMMS degradation %.1f%%", net, h.Degradation*100)
		}
		if lw.Degradation < h.Degradation+0.03 {
			t.Fatalf("%s layer-wise (%.1f%%) should clearly exceed HMMS (%.1f%%)",
				net, lw.Degradation*100, h.Degradation*100)
		}
	}
}

func TestFig9Timelines(t *testing.T) {
	var buf strings.Builder
	opt := quietOpts()
	opt.Out = &buf
	rows, err := experiments.Fig9(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 timelines, got %d", len(rows))
	}
	if rows[0].Method != sim.MethodNone || rows[0].LinkBusy != 0 {
		t.Fatal("baseline timeline should have an idle link")
	}
	if rows[2].Method != sim.MethodHMMS || rows[2].LinkBusy <= 0 {
		t.Fatal("HMMS timeline should use the link")
	}
	if rows[1].Stall <= rows[2].Stall {
		t.Fatal("layer-wise should stall more than HMMS")
	}
	if !strings.Contains(buf.String(), "compute  |") {
		t.Fatal("ASCII timeline missing")
	}
}

// TestFig10Shape: the headline scalability result — a clear batch-size
// gain for both networks, larger for VGG-19 than for ResNet-18 (the
// paper reports 6x vs 2x), at small throughput cost.
func TestFig10Shape(t *testing.T) {
	rows, err := experiments.Fig10(quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	vgg, rn := rows[0], rows[1]
	if vgg.BatchRatio < 2.5 {
		t.Fatalf("VGG-19 batch gain %.1fx, want well above 2x", vgg.BatchRatio)
	}
	if rn.BatchRatio < 1.5 {
		t.Fatalf("ResNet-18 batch gain %.1fx, want ~2x", rn.BatchRatio)
	}
	if vgg.BatchRatio <= rn.BatchRatio {
		t.Fatalf("VGG gain (%.1fx) should exceed ResNet gain (%.1fx)", vgg.BatchRatio, rn.BatchRatio)
	}
	for _, r := range rows {
		if r.ThroughputLoss > 0.08 {
			t.Fatalf("%s throughput loss %.1f%%, want small", r.Network, r.ThroughputLoss*100)
		}
	}
}

// TestFig11Shape: speedup decays monotonically with bandwidth and
// exceeds 2x at the paper's 10 Gbit/s operating point.
func TestFig11Shape(t *testing.T) {
	res, err := experiments.Fig11(quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	prev := 1e18
	var at10 float64
	for _, p := range res.Points {
		if p.Speedup > prev+1e-9 {
			t.Fatalf("speedup not monotone at %v Gbit/s", p.BandwidthGbit)
		}
		prev = p.Speedup
		if p.BandwidthGbit == 10 {
			at10 = p.Speedup
		}
	}
	if at10 < 1.8 {
		t.Fatalf("speedup at 10 Gbit/s is %.2fx, paper reports 2.1x", at10)
	}
	if res.SplitBatch <= res.BaselineBatch {
		t.Fatal("split batch should exceed baseline batch")
	}
}
