package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"splitcnn/internal/hmms"
	"splitcnn/internal/sim"
	"splitcnn/internal/trace"
)

// exportTrace writes one simulated run's timeline and metrics into
// TraceDir as <name>.trace.json / <name>.metrics.json. It is a no-op
// when TraceDir is empty; mem may be nil.
func (o *Options) exportTrace(name string, res *sim.Result, mem *hmms.MemoryPlan) error {
	if o.TraceDir == "" {
		return nil
	}
	if err := os.MkdirAll(o.TraceDir, 0o755); err != nil {
		return fmt.Errorf("experiments: trace dir: %w", err)
	}
	tr := trace.New()
	res.EmitTrace(tr)
	if err := tr.WriteFile(filepath.Join(o.TraceDir, name+".trace.json")); err != nil {
		return err
	}
	m := trace.NewMetrics()
	res.RecordMetrics(m)
	if mem != nil {
		mem.RecordMetrics(m)
	}
	return m.WriteFile(filepath.Join(o.TraceDir, name+".metrics.json"))
}
