package trace

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the SLO layer of the observability plane: declarable
// latency/error objectives tracked as multi-window burn rates, in the
// style of the SRE-workbook alerting policy. A burn rate of 1.0 means
// the service is consuming its error budget exactly as fast as the
// objective allows; 10× over the short window means the budget will be
// gone within hours. Two windows (5m and 1h) make the gauges usable for
// both paging (fast window catches acute breakage) and ticketing (slow
// window catches smoldering regressions).

// SLO is a declared service-level objective for a serving endpoint:
// "quantile q of requests complete under LatencyTarget, and at most
// ErrBudget of requests may fail".
type SLO struct {
	// LatencyQuantile is the objective quantile in (0, 1), e.g. 0.99.
	LatencyQuantile float64
	// LatencyTarget is the latency bound at that quantile.
	LatencyTarget time.Duration
	// ErrBudget is the allowed failing-request fraction in (0, 1],
	// e.g. 0.001 for "99.9% availability".
	ErrBudget float64
}

// Burn windows: the fast window pages, the slow window tickets.
const (
	SLOFastWindow = 5 * time.Minute
	SLOSlowWindow = time.Hour
)

// ParseSLO parses the -slo flag syntax: comma-separated clauses
// `p<quantile>=<duration>` and `err=<percent>%` (or a bare fraction),
// e.g. "p99=50ms,err=0.1%". Either clause may be omitted; omitted
// objectives default to p99=100ms and err=1%.
func ParseSLO(s string) (SLO, error) {
	slo := SLO{LatencyQuantile: 0.99, LatencyTarget: 100 * time.Millisecond, ErrBudget: 0.01}
	for _, clause := range strings.Split(s, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		k, v, ok := strings.Cut(clause, "=")
		if !ok {
			return SLO{}, fmt.Errorf("slo: clause %q is not key=value", clause)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		switch {
		case strings.HasPrefix(k, "p"):
			pct, err := strconv.ParseFloat(k[1:], 64)
			if err != nil || pct <= 0 || pct >= 100 {
				return SLO{}, fmt.Errorf("slo: bad quantile %q (want p50..p99.9)", k)
			}
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return SLO{}, fmt.Errorf("slo: bad latency target %q: want a positive duration", v)
			}
			slo.LatencyQuantile = pct / 100
			slo.LatencyTarget = d
		case k == "err":
			frac, err := parsePercent(v)
			if err != nil {
				return SLO{}, fmt.Errorf("slo: bad error budget %q: %v", v, err)
			}
			if frac <= 0 || frac > 1 {
				return SLO{}, fmt.Errorf("slo: error budget %q out of (0%%, 100%%]", v)
			}
			slo.ErrBudget = frac
		default:
			return SLO{}, fmt.Errorf("slo: unknown clause key %q (want p<q> or err)", k)
		}
	}
	return slo, nil
}

// parsePercent parses "0.1%" → 0.001 or a bare fraction "0.001" → 0.001.
func parsePercent(v string) (float64, error) {
	if p, ok := strings.CutSuffix(v, "%"); ok {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		return f / 100, err
	}
	f, err := strconv.ParseFloat(v, 64)
	return f, err
}

// String renders the SLO back in flag syntax.
func (s SLO) String() string {
	return fmt.Sprintf("p%s=%s,err=%s%%",
		strconv.FormatFloat(s.LatencyQuantile*100, 'g', -1, 64),
		s.LatencyTarget,
		strconv.FormatFloat(s.ErrBudget*100, 'g', -1, 64))
}

// sloBucket is one second of request outcomes.
type sloBucket struct {
	sec   int64 // unix second this bucket currently holds
	total int64
	slow  int64
	errs  int64
}

// SLOTracker tracks one SLO over per-second ring buckets large enough
// for the slow window. Buckets invalidate lazily (a bucket stamped with
// a stale second resets on next touch), so there is no sweeper
// goroutine and an idle tracker costs nothing.
type SLOTracker struct {
	slo SLO
	now func() time.Time

	mu      sync.Mutex
	buckets []sloBucket
}

// NewSLOTracker returns a tracker for the given objective.
func NewSLOTracker(slo SLO) *SLOTracker {
	return &SLOTracker{
		slo:     slo,
		now:     time.Now,
		buckets: make([]sloBucket, int(SLOSlowWindow/time.Second)+1),
	}
}

// SetClock overrides the tracker's time source (tests).
func (t *SLOTracker) SetClock(now func() time.Time) {
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
}

// SLO returns the tracked objective.
func (t *SLOTracker) SLO() SLO {
	if t == nil {
		return SLO{}
	}
	return t.slo
}

// Observe records one finished request. isErr marks a request that
// spends error budget (the router counts 5xx outcomes); a slow success
// spends latency budget only. Safe on a nil tracker (no SLO declared).
func (t *SLOTracker) Observe(latency time.Duration, isErr bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sec := t.now().Unix()
	b := &t.buckets[sec%int64(len(t.buckets))]
	if b.sec != sec {
		*b = sloBucket{sec: sec}
	}
	b.total++
	if latency > t.slo.LatencyTarget {
		b.slow++
	}
	if isErr {
		b.errs++
	}
}

// Burn returns the latency and error burn rates over the given window:
// the observed bad-event fraction divided by the fraction the objective
// allows. 1.0 = consuming budget exactly at the allowed rate; 0 when no
// requests landed in the window.
func (t *SLOTracker) Burn(window time.Duration) (latency, errs float64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	lo := t.now().Unix() - int64(window/time.Second)
	var total, slow, bad int64
	for i := range t.buckets {
		b := &t.buckets[i]
		if b.sec > lo {
			total += b.total
			slow += b.slow
			bad += b.errs
		}
	}
	if total == 0 {
		return 0, 0
	}
	slowBudget := 1 - t.slo.LatencyQuantile
	if slowBudget <= 0 {
		slowBudget = 1e-9
	}
	return (float64(slow) / float64(total)) / slowBudget,
		(float64(bad) / float64(total)) / t.slo.ErrBudget
}

// Publish refreshes the burn-rate and objective gauges on m:
// slo.latency_burn_5m/1h, slo.error_burn_5m/1h plus the declared
// objective (slo.latency_target_seconds, slo.latency_quantile,
// slo.error_budget) so a scrape is self-describing. No-op on a nil
// tracker.
func (t *SLOTracker) Publish(m *Metrics) {
	if t == nil || m == nil {
		return
	}
	lf, ef := t.Burn(SLOFastWindow)
	ls, es := t.Burn(SLOSlowWindow)
	m.Gauge("slo.latency_burn_5m").Set(lf)
	m.Gauge("slo.error_burn_5m").Set(ef)
	m.Gauge("slo.latency_burn_1h").Set(ls)
	m.Gauge("slo.error_burn_1h").Set(es)
	m.Gauge("slo.latency_target_seconds").Set(t.slo.LatencyTarget.Seconds())
	m.Gauge("slo.latency_quantile").Set(t.slo.LatencyQuantile)
	m.Gauge("slo.error_budget").Set(t.slo.ErrBudget)
}
