package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// OpSpan is one executed-op interval as the flight recorder keeps it:
// the serialized-program op name ("conv1", "conv1.bwd"), its hook-clock
// start, duration, and the global step it ran in.
type OpSpan struct {
	Name  string  `json:"name"`
	Step  int     `json:"step"`
	Start float64 `json:"start_s"`
	Dur   float64 `json:"dur_s"`
}

// FlightRecorder keeps the last N step records and the last M op spans
// in fixed-size ring buffers, cheap enough to run on every training
// step. When an anomaly guard fires, Dump snapshots the rings in
// oldest-to-newest order, so a diverged run leaves a post-mortem
// artifact — the steps and ops leading up to the first NaN — instead of
// a flat "loss=NaN" line.
//
// Ring semantics: writes never block and never allocate once the ring
// is full; the (N+1)-th record overwrites the oldest. A dump therefore
// always holds the *most recent* history, with at most N steps and M
// spans, regardless of how long the run was.
type FlightRecorder struct {
	mu    sync.Mutex
	steps []StepRecord
	spans []OpSpan
	// nextStep/nextSpan are the ring write cursors; filledSteps/
	// filledSpans saturate at the ring capacities.
	nextStep, filledSteps int
	nextSpan, filledSpans int
}

// NewFlightRecorder sizes the rings; non-positive sizes select the
// defaults (64 steps, 1024 op spans).
func NewFlightRecorder(steps, spans int) *FlightRecorder {
	if steps <= 0 {
		steps = 64
	}
	if spans <= 0 {
		spans = 1024
	}
	return &FlightRecorder{
		steps: make([]StepRecord, steps),
		spans: make([]OpSpan, spans),
	}
}

// RecordStep appends one step record to the ring.
func (f *FlightRecorder) RecordStep(r StepRecord) {
	f.mu.Lock()
	f.steps[f.nextStep] = r
	f.nextStep = (f.nextStep + 1) % len(f.steps)
	if f.filledSteps < len(f.steps) {
		f.filledSteps++
	}
	f.mu.Unlock()
}

// RecordSpan appends one op span to the ring.
func (f *FlightRecorder) RecordSpan(s OpSpan) {
	f.mu.Lock()
	f.spans[f.nextSpan] = s
	f.nextSpan = (f.nextSpan + 1) % len(f.spans)
	if f.filledSpans < len(f.spans) {
		f.filledSpans++
	}
	f.mu.Unlock()
}

// FlightDump is the post-mortem artifact written when a guard fires.
type FlightDump struct {
	// Guard names the tripped guard ("loss_nonfinite", "grad_nonfinite",
	// "grad_explosion", "activation_nonfinite"); TripOp the op whose
	// output first scanned non-finite (empty when the trip was not
	// op-attributed); TripStep the global step of the trip.
	Guard    string  `json:"guard"`
	TripOp   string  `json:"trip_op,omitempty"`
	TripStep int     `json:"trip_step"`
	Value    float64 `json:"value,omitempty"`
	// Steps and Spans are the ring contents, oldest first.
	Steps []StepRecord `json:"steps"`
	Spans []OpSpan     `json:"spans"`
	// Tensors is the full-scan census taken at the trip: every parameter
	// whose value or gradient holds non-finite elements.
	Tensors []TensorHealth `json:"tensors,omitempty"`
}

// TensorHealth is one full-scan census entry.
type TensorHealth struct {
	Name string `json:"name"`
	// NonFiniteValues / NonFiniteGrads count NaN/Inf elements in the
	// parameter's value / gradient out of Elems.
	NonFiniteValues int `json:"nonfinite_values"`
	NonFiniteGrads  int `json:"nonfinite_grads"`
	Elems           int `json:"elems"`
}

// Dump snapshots the rings oldest-to-newest into a FlightDump shell;
// the caller fills in the guard attribution and tensor census.
func (f *FlightRecorder) Dump() FlightDump {
	f.mu.Lock()
	defer f.mu.Unlock()
	d := FlightDump{
		Steps: make([]StepRecord, 0, f.filledSteps),
		Spans: make([]OpSpan, 0, f.filledSpans),
	}
	for i := 0; i < f.filledSteps; i++ {
		d.Steps = append(d.Steps, f.steps[(f.nextStep-f.filledSteps+i+len(f.steps))%len(f.steps)])
	}
	for i := 0; i < f.filledSpans; i++ {
		d.Spans = append(d.Spans, f.spans[(f.nextSpan-f.filledSpans+i+len(f.spans))%len(f.spans)])
	}
	return d
}

// WriteFile writes the dump as indented JSON to path.
func (d *FlightDump) WriteFile(path string) error {
	b, err := json.MarshalIndent(d, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("trace: writing flight dump %s: %w", path, err)
	}
	return nil
}
