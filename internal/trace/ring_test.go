package trace

import (
	"fmt"
	"testing"
	"time"
)

func TestTraceRingCap(t *testing.T) {
	tr := New()
	tr.SetCap(4)
	for i := 0; i < 10; i++ {
		tr.Span("compute", fmt.Sprintf("s%d", i), float64(i), float64(i)+0.5)
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := tr.DroppedSpans(); got != 6 {
		t.Fatalf("DroppedSpans = %d, want 6", got)
	}
	// The survivors are the newest four.
	evs := tr.Events()
	for i, want := range []string{"s6", "s7", "s8", "s9"} {
		if evs[i].Name != want {
			t.Fatalf("event %d = %q, want %q", i, evs[i].Name, want)
		}
	}

	// Shrinking an already-wrapped ring evicts the oldest survivors.
	tr.SetCap(2)
	if got := tr.Len(); got != 2 {
		t.Fatalf("Len after shrink = %d, want 2", got)
	}
	if got := tr.DroppedSpans(); got != 8 {
		t.Fatalf("DroppedSpans after shrink = %d, want 8", got)
	}
	evs = tr.Events()
	if evs[0].Name != "s8" || evs[1].Name != "s9" {
		t.Fatalf("survivors after shrink: %q, %q", evs[0].Name, evs[1].Name)
	}

	// Removing the cap stops eviction.
	tr.SetCap(0)
	for i := 10; i < 20; i++ {
		tr.Span("compute", fmt.Sprintf("s%d", i), float64(i), float64(i)+0.5)
	}
	if got, want := tr.Len(), 12; got != want {
		t.Fatalf("Len uncapped = %d, want %d", got, want)
	}
	if got := tr.DroppedSpans(); got != 8 {
		t.Fatalf("DroppedSpans uncapped grew: %d", got)
	}
}

func TestWallTracerRingCap(t *testing.T) {
	w := NewWallTracer(1, 1)
	w.Trace().SetCap(8)
	base := time.Now()
	for i := 0; i < 20; i++ {
		sc := w.Request(fmt.Sprintf("req-%d", i))
		sc.Record("respond", base, base.Add(time.Millisecond))
		w.Finish(sc)
	}
	if got := w.Trace().Len(); got != 8 {
		t.Fatalf("retained = %d, want 8", got)
	}
	if got := w.DroppedSpans(); got != 12 {
		t.Fatalf("dropped = %d, want 12", got)
	}
}

func TestWallTracerSpanAt(t *testing.T) {
	w := NewWallTracer(1, 1)
	start := time.Now()
	w.SpanAt("shard0", "stage:conv1", start, start.Add(2*time.Millisecond), map[string]any{"request": "r1"})
	evs := w.Trace().Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d, want 1", len(evs))
	}
	if evs[0].Cat != "shard0" || evs[0].Name != "stage:conv1" {
		t.Fatalf("event = %+v", evs[0])
	}
	if dur := evs[0].Dur; dur < 1900 || dur > 2100 {
		t.Fatalf("duration = %vµs, want ~2000µs", dur)
	}
}
