package trace

import (
	"math"
	"testing"
	"time"
)

func TestParseSLO(t *testing.T) {
	slo, err := ParseSLO("p99=50ms,err=0.1%")
	if err != nil {
		t.Fatal(err)
	}
	if slo.LatencyQuantile != 0.99 || slo.LatencyTarget != 50*time.Millisecond || slo.ErrBudget != 0.001 {
		t.Fatalf("parsed %+v", slo)
	}

	slo, err = ParseSLO("p99.9=1s")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slo.LatencyQuantile-0.999) > 1e-12 || slo.LatencyTarget != time.Second {
		t.Fatalf("parsed %+v", slo)
	}
	if slo.ErrBudget != 0.01 { // default
		t.Fatalf("default error budget: %v", slo.ErrBudget)
	}

	if slo, err = ParseSLO("err=0.02"); err != nil || slo.ErrBudget != 0.02 {
		t.Fatalf("bare fraction: %+v, %v", slo, err)
	}

	for _, bad := range []string{"p0=1ms", "p100=1ms", "px=1ms", "p99", "p99=-3ms", "err=0%", "err=150%", "latency=5ms"} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("ParseSLO(%q): want error", bad)
		}
	}
}

func TestSLOTrackerBurn(t *testing.T) {
	slo := SLO{LatencyQuantile: 0.99, LatencyTarget: 50 * time.Millisecond, ErrBudget: 0.001}
	tr := NewSLOTracker(slo)
	clock := time.Unix(1_000_000, 0)
	tr.SetClock(func() time.Time { return clock })

	// 1000 requests, 10 slow, 1 error: slow fraction 1% = exactly the
	// 1-0.99 latency budget (burn 1.0); error fraction 0.1% = exactly
	// the budget (burn 1.0).
	for i := 0; i < 1000; i++ {
		lat := 10 * time.Millisecond
		if i < 10 {
			lat = 80 * time.Millisecond
		}
		tr.Observe(lat, i == 0)
		clock = clock.Add(time.Millisecond)
	}
	latBurn, errBurn := tr.Burn(SLOFastWindow)
	if latBurn < 0.999 || latBurn > 1.001 {
		t.Fatalf("latency burn = %v, want ~1.0", latBurn)
	}
	if errBurn < 0.999 || errBurn > 1.001 {
		t.Fatalf("error burn = %v, want ~1.0", errBurn)
	}

	// Jump past the fast window: the fast burn empties, the slow one
	// still sees the old traffic.
	clock = clock.Add(SLOFastWindow + time.Second)
	latBurn, errBurn = tr.Burn(SLOFastWindow)
	if latBurn != 0 || errBurn != 0 {
		t.Fatalf("fast window after gap: %v, %v, want 0, 0", latBurn, errBurn)
	}
	if lat1h, _ := tr.Burn(SLOSlowWindow); lat1h < 0.999 || lat1h > 1.001 {
		t.Fatalf("slow window after gap: %v, want ~1.0", lat1h)
	}

	// Jump past the slow window: everything expires (lazy bucket reuse).
	clock = clock.Add(SLOSlowWindow)
	if lat1h, err1h := tr.Burn(SLOSlowWindow); lat1h != 0 || err1h != 0 {
		t.Fatalf("slow window after full expiry: %v, %v, want 0, 0", lat1h, err1h)
	}

	// Publish writes the gauges.
	m := NewMetrics()
	tr.Observe(200*time.Millisecond, true) // 1 req: slow and failed
	tr.Publish(m)
	if got := m.Gauge("slo.latency_burn_5m").Value(); math.Abs(got-100) > 1e-9 {
		t.Fatalf("published latency burn = %v", got)
	}
	if got := m.Gauge("slo.error_burn_5m").Value(); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("published error burn = %v", got)
	}
	if got := m.Gauge("slo.latency_target_seconds").Value(); got != 0.05 {
		t.Fatalf("published target = %v", got)
	}

	// Nil tracker: all methods no-op.
	var nilTr *SLOTracker
	nilTr.Observe(time.Second, true)
	nilTr.Publish(m)
	if l, e := nilTr.Burn(SLOFastWindow); l != 0 || e != 0 {
		t.Fatal("nil tracker burn")
	}
}

func TestSLORoundTrip(t *testing.T) {
	in := "p99=50ms,err=0.1%"
	slo, err := ParseSLO(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := slo.String(); got != in {
		t.Fatalf("String() = %q, want %q", got, in)
	}
	again, err := ParseSLO(slo.String())
	if err != nil || again != slo {
		t.Fatalf("round trip: %+v vs %+v (%v)", again, slo, err)
	}
}
