package trace

import (
	"runtime"
	"sync"
	"time"
)

// RuntimeSampler is a background goroutine feeding Go runtime state
// into a registry as runtime.* gauges on a fixed interval — the
// process-health counterpart of the planner's mem.* gauges: heap
// footprint, GC pause accumulation, goroutine count. Extra sample
// hooks let owners fold in their own periodic gauges (the serving
// layer samples its executor arenas' occupancy this way).
type RuntimeSampler struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartRuntimeSampler samples immediately, then every interval
// (minimum 10ms), until Stop. Each extra hook runs after the runtime
// gauges on every tick.
func StartRuntimeSampler(m *Metrics, interval time.Duration, extra ...func(*Metrics)) *RuntimeSampler {
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	s := &RuntimeSampler{stop: make(chan struct{}), done: make(chan struct{})}
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		m.Gauge("runtime.heap_alloc_bytes").Set(float64(ms.HeapAlloc))
		m.Gauge("runtime.heap_sys_bytes").Set(float64(ms.HeapSys))
		m.Gauge("runtime.heap_objects").Set(float64(ms.HeapObjects))
		m.Gauge("runtime.next_gc_bytes").Set(float64(ms.NextGC))
		m.Gauge("runtime.gc_count").Set(float64(ms.NumGC))
		m.Gauge("runtime.gc_pause_total_seconds").Set(float64(ms.PauseTotalNs) / 1e9)
		m.Gauge("runtime.goroutines").Set(float64(runtime.NumGoroutine()))
		for _, f := range extra {
			f(m)
		}
		m.Counter("runtime.samples").Add(1)
	}
	sample()
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				sample()
			case <-s.stop:
				return
			}
		}
	}()
	return s
}

// Stop halts the sampler and waits for its goroutine to exit. It is
// idempotent and safe on a nil sampler.
func (s *RuntimeSampler) Stop() {
	if s == nil {
		return
	}
	s.once.Do(func() { close(s.stop) })
	<-s.done
}
