package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestMetricsInstruments(t *testing.T) {
	m := NewMetrics()
	m.Counter("ops").Add(3)
	m.Counter("ops").Add(4)
	if v := m.Counter("ops").Value(); v != 7 {
		t.Fatalf("counter = %d, want 7", v)
	}
	g := m.Gauge("peak")
	g.Set(10)
	g.SetMax(5)
	if v := g.Value(); v != 10 {
		t.Fatalf("SetMax lowered the gauge: %v", v)
	}
	g.SetMax(12)
	if v := g.Value(); v != 12 {
		t.Fatalf("SetMax did not raise the gauge: %v", v)
	}
	h := m.Histogram("lat", []float64{1, 10})
	for _, v := range []float64{0.5, 2, 20} {
		h.Observe(v)
	}
	if h.Count() != 3 || h.Sum() != 22.5 {
		t.Fatalf("histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	if h.Mean() != 7.5 {
		t.Fatalf("histogram mean=%v", h.Mean())
	}
}

func TestMetricsJSONRoundTripsExactValues(t *testing.T) {
	m := NewMetrics()
	// An awkward float that must survive the JSON round trip bit-exactly.
	stall := 0.12345678901234567
	m.Gauge("sim.stall_seconds").Set(stall)
	m.Gauge("mem.device_high_water_bytes").Set(16123456789)
	m.Counter("sim.offload_bytes").Add(987654321123)

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var d struct {
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Gauges["sim.stall_seconds"] != stall {
		t.Fatalf("stall gauge %v did not round-trip (want %v)", d.Gauges["sim.stall_seconds"], stall)
	}
	if d.Gauges["mem.device_high_water_bytes"] != 16123456789 {
		t.Fatalf("peak gauge %v did not round-trip", d.Gauges["mem.device_high_water_bytes"])
	}
	if d.Counters["sim.offload_bytes"] != 987654321123 {
		t.Fatalf("counter %v did not round-trip", d.Counters["sim.offload_bytes"])
	}
}

func TestMetricsWriteText(t *testing.T) {
	m := NewMetrics()
	m.Counter("a").Add(1)
	m.Gauge("b").Set(2.5)
	m.Histogram("c", nil).Observe(0.25)
	var buf bytes.Buffer
	if err := m.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"counter a 1", "gauge b 2.5", "histogram c count=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text dump missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Counter("n").Add(1)
				m.Gauge("g").SetMax(float64(i))
				m.Histogram("h", nil).Observe(float64(i) * 1e-4)
			}
		}()
	}
	wg.Wait()
	if v := m.Counter("n").Value(); v != 8000 {
		t.Fatalf("counter = %d, want 8000", v)
	}
	if v := m.Histogram("h", nil).Count(); v != 8000 {
		t.Fatalf("histogram count = %d, want 8000", v)
	}
}

func TestHistogramQuantile(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("q", []float64{1, 2, 4, 8})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	// 100 uniform samples in (0, 4]: median ~2, p99 ~4.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	if q := h.Quantile(0); q != 0.04 {
		t.Fatalf("q0 = %g, want min 0.04", q)
	}
	if q := h.Quantile(1); q != 4 {
		t.Fatalf("q1 = %g, want max 4", q)
	}
	if q := h.Quantile(0.5); q < 1.5 || q > 2.5 {
		t.Fatalf("median = %g, want ~2", q)
	}
	if q := h.Quantile(0.99); q < 3 || q > 4 {
		t.Fatalf("p99 = %g, want ~4", q)
	}
	// Quantiles are monotone in q.
	prev := -1.0
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%g: %g < %g", q, v, prev)
		}
		prev = v
	}
}

// TestHistogramQuantileEmptyNeverNaN pins the empty-histogram contract:
// every q — in range, out of range, or NaN — returns exactly 0.
func TestHistogramQuantileEmptyNeverNaN(t *testing.T) {
	h := NewMetrics().Histogram("empty", nil)
	for _, q := range []float64{math.NaN(), math.Inf(-1), -1, 0, 0.5, 0.99, 1, 2, math.Inf(1)} {
		v := h.Quantile(q)
		if math.IsNaN(v) {
			t.Fatalf("Quantile(%v) on empty histogram = NaN", q)
		}
		if v != 0 {
			t.Fatalf("Quantile(%v) on empty histogram = %g, want 0", q, v)
		}
	}
}

// TestHistogramQuantileClampsOutOfRange pins the clamping contract on a
// populated histogram: q below 0 (and NaN) returns the observed min, q
// above 1 the observed max — never an extrapolated or NaN value.
func TestHistogramQuantileClampsOutOfRange(t *testing.T) {
	h := NewMetrics().Histogram("clamp", []float64{1, 10})
	for _, v := range []float64{0.25, 3, 7, 42} {
		h.Observe(v)
	}
	for _, q := range []float64{math.Inf(-1), -5, -0.001, 0} {
		if v := h.Quantile(q); v != 0.25 {
			t.Fatalf("Quantile(%v) = %g, want min 0.25", q, v)
		}
	}
	for _, q := range []float64{1, 1.001, 5, math.Inf(1)} {
		if v := h.Quantile(q); v != 42 {
			t.Fatalf("Quantile(%v) = %g, want max 42", q, v)
		}
	}
	if v := h.Quantile(math.NaN()); v != 0.25 {
		t.Fatalf("Quantile(NaN) = %g, want min 0.25 (clamped)", v)
	}
}
