package trace_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"splitcnn/internal/costmodel"
	"splitcnn/internal/models"
	"splitcnn/internal/sim"
	"splitcnn/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// goldenRun produces the trace and metrics JSON for a small AlexNet
// under the HMMS plan on a P100. Everything downstream of the model is
// deterministic (analytic cost model, sorted event export), so the
// bytes must match the checked-in goldens exactly.
func goldenRun(t *testing.T) (traceJSON, metricsJSON []byte) {
	t.Helper()
	m, err := models.Build("alexnet", models.Config{
		BatchSize: 2, Classes: 10, InputC: 3, InputH: 64, InputW: 64, WidthDiv: 16,
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	prog, plan, mem, err := sim.Plan(m.Graph, costmodel.P100(), sim.MethodHMMS, -1)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	res, err := sim.Run(prog, plan, mem)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	tr := trace.New()
	res.EmitTrace(tr)
	var tb bytes.Buffer
	if err := tr.WriteJSON(&tb); err != nil {
		t.Fatalf("trace json: %v", err)
	}

	reg := trace.NewMetrics()
	res.RecordMetrics(reg)
	mem.RecordMetrics(reg)
	var mb bytes.Buffer
	if err := reg.WriteJSON(&mb); err != nil {
		t.Fatalf("metrics json: %v", err)
	}
	return tb.Bytes(), mb.Bytes()
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/trace -update` to create goldens)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from the golden file (%d bytes got, %d want).\n"+
			"If the change is intentional, rerun with -update and review the diff.",
			name, len(got), len(want))
	}
}

// TestGoldenAlexNetHMMSTrace pins the exported Chrome trace and metrics
// of a small AlexNet HMMS run, so that unintended changes to the cost
// model, planner, simulator or exporters show up as a golden diff.
func TestGoldenAlexNetHMMSTrace(t *testing.T) {
	traceJSON, metricsJSON := goldenRun(t)
	checkGolden(t, "alexnet_hmms_trace.json", traceJSON)
	checkGolden(t, "alexnet_hmms_metrics.json", metricsJSON)
}

// TestGoldenRunIsDeterministic guards the property the golden test
// relies on: two independent pipeline runs export identical bytes.
func TestGoldenRunIsDeterministic(t *testing.T) {
	t1, m1 := goldenRun(t)
	t2, m2 := goldenRun(t)
	if !bytes.Equal(t1, t2) {
		t.Error("trace export is not deterministic across runs")
	}
	if !bytes.Equal(m1, m2) {
		t.Error("metrics export is not deterministic across runs")
	}
}
