package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative `_bucket{le="..."}` series plus
// `_sum` and `_count`. Metric names are sanitized to the Prometheus
// grammar (the registry's dotted names become underscored:
// "serve.latency_seconds" → "serve_latency_seconds"). Families are
// emitted in sorted name order, so the output is deterministic and can
// be pinned by a golden test.
//
// Scraping is tear-free at the instrument level: the snapshot locks
// each instrument once, so a concurrent Observe never yields a bucket
// row inconsistent with its _count.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	d := m.snapshot()

	type family struct {
		name string
		emit func(io.Writer, string) error
	}
	fams := make([]family, 0, len(d.Counters)+len(d.Gauges)+len(d.Histograms))

	for name, v := range d.Counters {
		v := v
		fams = append(fams, family{promName(name), func(w io.Writer, n string) error {
			_, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, v)
			return err
		}})
	}
	for name, v := range d.Gauges {
		v := v
		fams = append(fams, family{promName(name), func(w io.Writer, n string) error {
			_, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(v))
			return err
		}})
	}
	for name, h := range d.Histograms {
		h := h
		fams = append(fams, family{promName(name), func(w io.Writer, n string) error {
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
				return err
			}
			var cum int64
			for i, b := range h.Bounds {
				cum += h.Buckets[i]
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, promFloat(b), cum); err != nil {
					return err
				}
			}
			cum += h.Buckets[len(h.Bounds)]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", n, promFloat(h.Sum), n, h.Count)
			return err
		}})
	}

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if err := f.emit(w, f.name); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry name onto the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promFloat renders a float64 the way Prometheus expects: shortest
// re-parsing decimal, with the spelled-out specials.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
