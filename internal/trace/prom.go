package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative `_bucket{le="..."}` series plus
// `_sum` and `_count`. Metric names are sanitized to the Prometheus
// grammar (the registry's dotted names become underscored:
// "serve.latency_seconds" → "serve_latency_seconds"). Families are
// emitted in sorted name order, so the output is deterministic and can
// be pinned by a golden test.
//
// Scraping is tear-free at the instrument level: the snapshot locks
// each instrument once, so a concurrent Observe never yields a bucket
// row inconsistent with its _count.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	return WritePrometheusParts(w, []LabeledSnapshot{{Snap: m.Snapshot()}})
}

// LabeledSnapshot pairs one registry snapshot with the labels every one
// of its samples should wear — the federation layer uses one part per
// worker (`worker="host:port"`) plus an unlabeled part for rollups.
type LabeledSnapshot struct {
	Labels map[string]string
	Snap   Snapshot
}

// WritePrometheusParts renders several labeled snapshots as one valid
// Prometheus text exposition: families are merged across parts, each
// family gets exactly one # TYPE line, and the samples of every part
// follow wearing that part's labels. Same-named instruments must be the
// same kind in every part (they are: the names come from a shared
// compiled-in vocabulary). Families are sorted by name, parts by label
// string, so the output is deterministic.
func WritePrometheusParts(w io.Writer, parts []LabeledSnapshot) error {
	type sample struct {
		labels string
		emit   func(io.Writer, string, string) error
	}
	kind := map[string]string{}
	fams := map[string][]sample{}

	for _, p := range parts {
		labels := promLabels(p.Labels)
		for name, v := range p.Snap.Counters {
			v := v
			n := promName(name)
			kind[n] = "counter"
			fams[n] = append(fams[n], sample{labels, func(w io.Writer, n, lb string) error {
				_, err := fmt.Fprintf(w, "%s%s %d\n", n, braced(lb), v)
				return err
			}})
		}
		for name, v := range p.Snap.Gauges {
			v := v
			n := promName(name)
			kind[n] = "gauge"
			fams[n] = append(fams[n], sample{labels, func(w io.Writer, n, lb string) error {
				_, err := fmt.Fprintf(w, "%s%s %s\n", n, braced(lb), promFloat(v))
				return err
			}})
		}
		for name, h := range p.Snap.Histograms {
			h := h
			n := promName(name)
			kind[n] = "histogram"
			fams[n] = append(fams[n], sample{labels, func(w io.Writer, n, lb string) error {
				var cum int64
				for i, b := range h.Bounds {
					cum += h.Buckets[i]
					if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", n, commaed(lb), promFloat(b), cum); err != nil {
						return err
					}
				}
				cum += h.Buckets[len(h.Bounds)]
				if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", n, commaed(lb), cum); err != nil {
					return err
				}
				_, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
					n, braced(lb), promFloat(h.Sum), n, braced(lb), h.Count)
				return err
			}})
		}
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", n, kind[n]); err != nil {
			return err
		}
		ss := fams[n]
		sort.SliceStable(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
		for _, s := range ss {
			if err := s.emit(w, n, s.labels); err != nil {
				return err
			}
		}
	}
	return nil
}

// promLabels renders a label map as `k="v",...` (no braces), keys
// sorted, values escaped per the exposition grammar.
func promLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		v := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(labels[k])
		fmt.Fprintf(&b, "%s=%q", promName(k), v)
	}
	return b.String()
}

// braced wraps a non-empty label string in braces.
func braced(lb string) string {
	if lb == "" {
		return ""
	}
	return "{" + lb + "}"
}

// commaed suffixes a non-empty label string with a comma (for joining
// with the histogram `le` label).
func commaed(lb string) string {
	if lb == "" {
		return ""
	}
	return lb + ","
}

// promName maps a registry name onto the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promFloat renders a float64 the way Prometheus expects: shortest
// re-parsing decimal, with the spelled-out specials.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
