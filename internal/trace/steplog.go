package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
)

// StepRecord is one line of the training-step telemetry stream: the
// loop-level health of a single optimizer step. The field set is the
// steplog schema — tests pin it, and downstream consumers (the training
// report page, the flight recorder, external log shippers) parse it
// with plain encoding/json, so adding a field is fine but renaming or
// removing one is a breaking change.
type StepRecord struct {
	// Type discriminates record kinds on a shared JSONL stream; step
	// records carry "step".
	Type string `json:"type"`
	// Step is the global 1-based step number, monotonically increasing
	// across epochs.
	Step int `json:"step"`
	// Epoch is the 0-based epoch this step ran in.
	Epoch int `json:"epoch"`
	// Loss is the minibatch training loss.
	Loss float64 `json:"loss"`
	// GradNorm and ParamNorm are global L2 norms over every trainable
	// parameter's gradient / value — the curves that reveal divergence
	// long before the loss goes flat-NaN.
	GradNorm  float64 `json:"grad_norm"`
	ParamNorm float64 `json:"param_norm"`
	// LR is the learning rate the optimizer applied this step.
	LR float64 `json:"lr"`
	// ImagesPerSec is BatchSize / StepSeconds.
	ImagesPerSec float64 `json:"images_per_sec"`
	// StepSeconds is the wall-clock time of the step (batch assembly,
	// forward, backward, optimizer).
	StepSeconds float64 `json:"step_seconds"`
	// ArenaInUseBytes is the workspace arena's vended storage after the
	// step — the CPU-side live-tensor footprint.
	ArenaInUseBytes int64 `json:"arena_in_use_bytes"`
}

// EpochRecord is the per-epoch rollup line (Type "epoch").
type EpochRecord struct {
	Type string `json:"type"`
	// Epoch is the 0-based epoch index; Steps the optimizer steps it ran.
	Epoch int `json:"epoch"`
	Steps int `json:"steps"`
	// MeanLoss is the mean minibatch loss; TestError the post-epoch
	// evaluation error in [0, 1].
	MeanLoss  float64 `json:"mean_loss"`
	TestError float64 `json:"test_error"`
	// LR is the epoch's learning rate (after schedule decay).
	LR float64 `json:"lr"`
	// EpochSeconds is the wall-clock of the epoch's step loop;
	// ImagesPerSec the epoch-mean training throughput.
	EpochSeconds float64 `json:"epoch_seconds"`
	ImagesPerSec float64 `json:"images_per_sec"`
}

// Record type discriminators.
const (
	RecordStep  = "step"
	RecordEpoch = "epoch"
)

// MarshalJSON encodes the record with non-finite floats as null:
// encoding/json rejects NaN/±Inf outright, and the steps *around* a
// divergence — exactly the ones carrying non-finite losses and norms —
// are the ones the flight recorder most needs to get onto disk. Keys
// come out in deterministic (alphabetical) order.
func (r StepRecord) MarshalJSON() ([]byte, error) {
	return json.Marshal(map[string]any{
		"type": r.Type, "step": r.Step, "epoch": r.Epoch,
		"loss": finiteOrNil(r.Loss), "grad_norm": finiteOrNil(r.GradNorm),
		"param_norm": finiteOrNil(r.ParamNorm), "lr": finiteOrNil(r.LR),
		"images_per_sec":     finiteOrNil(r.ImagesPerSec),
		"step_seconds":       finiteOrNil(r.StepSeconds),
		"arena_in_use_bytes": r.ArenaInUseBytes,
	})
}

// MarshalJSON: see StepRecord.MarshalJSON.
func (r EpochRecord) MarshalJSON() ([]byte, error) {
	return json.Marshal(map[string]any{
		"type": r.Type, "epoch": r.Epoch, "steps": r.Steps,
		"mean_loss": finiteOrNil(r.MeanLoss), "test_error": finiteOrNil(r.TestError),
		"lr": finiteOrNil(r.LR), "epoch_seconds": finiteOrNil(r.EpochSeconds),
		"images_per_sec": finiteOrNil(r.ImagesPerSec),
	})
}

// finiteOrNil maps NaN/±Inf to JSON null and passes finite values
// through bit-exactly.
func finiteOrNil(v float64) any {
	if v != v || v > math.MaxFloat64 || v < -math.MaxFloat64 {
		return nil
	}
	return v
}

// StepLog writes the step telemetry stream as JSONL: one self-contained
// JSON object per line, steps interleaved with per-epoch rollups in
// emission order. It is safe for concurrent use and buffers writes;
// call Close (or Flush) before reading the file back.
type StepLog struct {
	mu       sync.Mutex
	bw       *bufio.Writer
	enc      *json.Encoder
	closer   io.Closer
	lastStep int
	steps    int
	epochs   int
	err      error
}

// NewStepLog wraps w in a step log sink.
func NewStepLog(w io.Writer) *StepLog {
	bw := bufio.NewWriter(w)
	l := &StepLog{bw: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		l.closer = c
	}
	return l
}

// CreateStepLog opens path for writing and returns a step log over it.
func CreateStepLog(path string) (*StepLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewStepLog(f), nil
}

// Step appends one step record. Step numbers must be strictly
// increasing; a regression is reported as an error (and the record is
// still written, so a post-mortem reader sees what the trainer saw).
func (l *StepLog) Step(r StepRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.Type = RecordStep
	if r.Step <= l.lastStep {
		l.fail(fmt.Errorf("trace: steplog step %d not above previous %d", r.Step, l.lastStep))
	}
	l.lastStep = r.Step
	l.steps++
	return l.emit(r)
}

// Epoch appends one epoch rollup record.
func (l *StepLog) Epoch(r EpochRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.Type = RecordEpoch
	l.epochs++
	return l.emit(r)
}

// emit encodes v under l.mu, latching the first write error.
func (l *StepLog) emit(v any) error {
	if err := l.enc.Encode(v); err != nil {
		l.fail(err)
	}
	return l.err
}

func (l *StepLog) fail(err error) {
	if l.err == nil {
		l.err = err
	}
}

// Counts returns how many step and epoch records were written.
func (l *StepLog) Counts() (steps, epochs int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.steps, l.epochs
}

// Flush drains the write buffer.
func (l *StepLog) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.bw.Flush(); err != nil {
		l.fail(err)
	}
	return l.err
}

// Close flushes and, when the sink owns a file, closes it. It returns
// the first error the log encountered over its lifetime, so a trainer
// that only checks Close still surfaces mid-run write failures.
func (l *StepLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.bw.Flush(); err != nil {
		l.fail(err)
	}
	if l.closer != nil {
		if err := l.closer.Close(); err != nil {
			l.fail(err)
		}
		l.closer = nil
	}
	return l.err
}

// stepLogFields are the keys every step line must carry — the schema
// contract CheckStepLog enforces and the golden test pins.
var stepLogFields = []string{
	"type", "step", "epoch", "loss", "grad_norm", "param_norm",
	"lr", "images_per_sec", "step_seconds", "arena_in_use_bytes",
}

// ReadStepLog parses a steplog JSONL stream into its step and epoch
// records, preserving order within each kind. Unknown record types are
// skipped (forward compatibility); malformed JSON is an error.
func ReadStepLog(r io.Reader) (steps []StepRecord, epochs []EpochRecord, err error) {
	dec := json.NewDecoder(r)
	for line := 1; ; line++ {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("trace: steplog line %d: %w", line, err)
		}
		var kind struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &kind); err != nil {
			return nil, nil, fmt.Errorf("trace: steplog line %d: %w", line, err)
		}
		switch kind.Type {
		case RecordStep:
			var s StepRecord
			if err := json.Unmarshal(raw, &s); err != nil {
				return nil, nil, fmt.Errorf("trace: steplog line %d: %w", line, err)
			}
			steps = append(steps, s)
		case RecordEpoch:
			var e EpochRecord
			if err := json.Unmarshal(raw, &e); err != nil {
				return nil, nil, fmt.Errorf("trace: steplog line %d: %w", line, err)
			}
			epochs = append(epochs, e)
		}
	}
	return steps, epochs, nil
}

// CheckStepLog validates a steplog stream: every step line carries the
// full schema field set, step numbers are strictly increasing, and the
// stream is non-empty. It returns the record counts — what
// `splitcnn train -checksteplog` and `make train-smoke` assert on.
func CheckStepLog(r io.Reader) (steps, epochs int, err error) {
	dec := json.NewDecoder(r)
	last := 0
	for line := 1; ; line++ {
		var obj map[string]json.RawMessage
		if err := dec.Decode(&obj); err == io.EOF {
			break
		} else if err != nil {
			return 0, 0, fmt.Errorf("trace: steplog line %d: %w", line, err)
		}
		var kind string
		if raw, ok := obj["type"]; ok {
			json.Unmarshal(raw, &kind)
		}
		switch kind {
		case RecordStep:
			for _, f := range stepLogFields {
				if _, ok := obj[f]; !ok {
					return 0, 0, fmt.Errorf("trace: steplog line %d: missing field %q", line, f)
				}
			}
			var n int
			if err := json.Unmarshal(obj["step"], &n); err != nil {
				return 0, 0, fmt.Errorf("trace: steplog line %d: bad step: %w", line, err)
			}
			if n <= last {
				return 0, 0, fmt.Errorf("trace: steplog line %d: step %d not above previous %d", line, n, last)
			}
			last = n
			steps++
		case RecordEpoch:
			epochs++
		default:
			return 0, 0, fmt.Errorf("trace: steplog line %d: unknown record type %q", line, kind)
		}
	}
	if steps == 0 {
		return 0, 0, fmt.Errorf("trace: steplog has no step records")
	}
	return steps, epochs, nil
}
