package trace

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the wall-clock half of the observability layer: where
// trace.Trace records *simulated* seconds, SpanContext and WallTracer
// record real time.Time intervals from a live serving process and fold
// them into the same Chrome trace_event export, so a production request
// timeline can sit next to a simulator timeline in chrome://tracing.

// WallSpan is one named wall-clock interval of a request's lifecycle.
type WallSpan struct {
	Name       string
	Start, End time.Time
	// Args are extra per-span trace arguments (batch links, sizes).
	Args map[string]any
}

// SpanContext carries one sampled request's identity through the
// serving pipeline (HTTP handler → batcher → executor) and collects the
// stage spans recorded along the way. A nil *SpanContext is the
// "unsampled" context: every method no-ops, so call sites never branch.
// Methods are safe for concurrent use — the HTTP handler and the
// batcher's dispatcher goroutine both record into the same context.
type SpanContext struct {
	id string

	mu    sync.Mutex
	spans []WallSpan
}

// ID returns the request ID ("" for the nil context).
func (c *SpanContext) ID() string {
	if c == nil {
		return ""
	}
	return c.id
}

// Record appends one completed stage span.
func (c *SpanContext) Record(name string, start, end time.Time) {
	c.RecordArgs(name, start, end, nil)
}

// RecordArgs is Record with extra trace arguments.
func (c *SpanContext) RecordArgs(name string, start, end time.Time, args map[string]any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.spans = append(c.spans, WallSpan{Name: name, Start: start, End: end, Args: args})
	c.mu.Unlock()
}

// StartSpan opens a stage span now and returns the closure that ends
// it: `defer sc.StartSpan("forward")()`.
func (c *SpanContext) StartSpan(name string) func() {
	if c == nil {
		return func() {}
	}
	start := time.Now()
	return func() { c.Record(name, start, time.Now()) }
}

// Spans returns a copy of the recorded stage spans.
func (c *SpanContext) Spans() []WallSpan {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]WallSpan(nil), c.spans...)
}

// WallTracer samples live requests and exports their stage spans as
// Chrome trace events. Each stage name becomes one trace lane, the
// request ID rides in every event's args — so a sampled request reads
// as one vertical slice across the admission/queue/batch/forward lanes.
// Times are recorded relative to the tracer's creation, which keeps
// the exported microsecond timestamps small and aligned across lanes.
type WallTracer struct {
	rate  float64
	epoch time.Time
	tr    *Trace

	mu  sync.Mutex
	rng *rand.Rand

	sampled atomic.Int64
	dropped atomic.Int64
}

// DefaultSpanCap is the ring-buffer bound NewWallTracer installs on its
// trace: a long-running worker with sampling enabled retains the most
// recent window of spans instead of growing without bound. Use
// Trace().SetCap to change or remove it.
const DefaultSpanCap = 16384

// NewWallTracer returns a tracer sampling the given fraction of
// requests (clamped to [0, 1]; 1 samples everything). seed fixes the
// sampling sequence, which tests use to make sampling deterministic.
func NewWallTracer(rate float64, seed int64) *WallTracer {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	tr := New()
	tr.SetCap(DefaultSpanCap)
	return &WallTracer{
		rate:  rate,
		epoch: time.Now(),
		tr:    tr,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Request makes the sampling decision for one request: a live context
// carrying id when sampled, nil (the no-op context) otherwise. A nil
// tracer never samples.
func (w *WallTracer) Request(id string) *SpanContext {
	if w == nil || w.rate <= 0 {
		return nil
	}
	if w.rate < 1 {
		w.mu.Lock()
		miss := w.rng.Float64() >= w.rate
		w.mu.Unlock()
		if miss {
			w.dropped.Add(1)
			return nil
		}
	}
	w.sampled.Add(1)
	return &SpanContext{id: id}
}

// Finish exports a completed request's spans into the tracer's trace.
// Safe to call with a nil context (unsampled request) or nil tracer.
func (w *WallTracer) Finish(c *SpanContext) {
	if w == nil || c == nil {
		return
	}
	for _, s := range c.Spans() {
		args := map[string]any{"request": c.id}
		for k, v := range s.Args {
			args[k] = v
		}
		w.tr.SpanArgs(s.Name, fmt.Sprintf("%s %s", s.Name, c.id),
			s.Start.Sub(w.epoch).Seconds(), s.End.Sub(w.epoch).Seconds(), args)
	}
}

// SpanAt records one wall-clock interval directly into the tracer's
// trace under an explicit stream, bypassing the per-request Finish
// export. The cluster stitcher uses this to lay harvested remote spans
// (already skew-corrected to this process's clock) onto per-process
// rows of a single timeline.
func (w *WallTracer) SpanAt(stream, name string, start, end time.Time, args map[string]any) {
	if w == nil {
		return
	}
	w.tr.SpanArgs(stream, name, start.Sub(w.epoch).Seconds(), end.Sub(w.epoch).Seconds(), args)
}

// DroppedSpans returns how many spans the ring cap has evicted.
func (w *WallTracer) DroppedSpans() int64 {
	if w == nil {
		return 0
	}
	return w.tr.DroppedSpans()
}

// Sampled returns how many requests were sampled so far.
func (w *WallTracer) Sampled() int64 {
	if w == nil {
		return 0
	}
	return w.sampled.Load()
}

// Trace exposes the accumulated trace (nil for a nil tracer).
func (w *WallTracer) Trace() *Trace {
	if w == nil {
		return nil
	}
	return w.tr
}

// WriteFile writes the accumulated trace as Chrome trace_event JSON.
func (w *WallTracer) WriteFile(path string) error {
	if w == nil {
		return fmt.Errorf("trace: nil wall tracer")
	}
	return w.tr.WriteFile(path)
}
