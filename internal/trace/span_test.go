package trace

import (
	"testing"
	"time"
)

// TestNilSpanContextIsSafe pins the no-op contract of the unsampled
// context: every method works on nil, so call sites never branch.
func TestNilSpanContextIsSafe(t *testing.T) {
	var sc *SpanContext
	if sc.ID() != "" {
		t.Error("nil context ID not empty")
	}
	sc.Record("x", time.Now(), time.Now())
	sc.RecordArgs("y", time.Now(), time.Now(), map[string]any{"k": 1})
	sc.StartSpan("z")()
	if sc.Spans() != nil {
		t.Error("nil context returned spans")
	}
	var w *WallTracer
	if c := w.Request("id"); c != nil {
		t.Error("nil tracer sampled a request")
	}
	w.Finish(nil)
	if w.Sampled() != 0 {
		t.Error("nil tracer counted samples")
	}
}

// TestWallTracerExportsRequestSpans checks the end-to-end contract the
// serving acceptance test relies on: every stage span of a sampled
// request lands in the Chrome trace with the request ID in its args,
// one lane per stage.
func TestWallTracerExportsRequestSpans(t *testing.T) {
	w := NewWallTracer(1, 1)
	sc := w.Request("req-42")
	if sc == nil {
		t.Fatal("rate-1 tracer did not sample")
	}
	if sc.ID() != "req-42" {
		t.Fatalf("ID = %q", sc.ID())
	}
	base := time.Now()
	stages := []string{"admit", "queue", "assemble", "forward", "respond"}
	for i, name := range stages {
		sc.Record(name, base.Add(time.Duration(i)*time.Millisecond),
			base.Add(time.Duration(i+1)*time.Millisecond))
	}
	sc.RecordArgs("forward.batch", base, base.Add(time.Millisecond),
		map[string]any{"size": 3})
	w.Finish(sc)

	events := w.Trace().Events()
	if len(events) != len(stages)+1 {
		t.Fatalf("got %d events, want %d", len(events), len(stages)+1)
	}
	seen := map[string]bool{}
	for _, e := range events {
		if e.Args["request"] != "req-42" {
			t.Errorf("event %q args = %v, want request req-42", e.Name, e.Args)
		}
		if e.Dur <= 0 {
			t.Errorf("event %q has non-positive duration %v", e.Name, e.Dur)
		}
		seen[e.Cat] = true
	}
	for _, name := range stages {
		if !seen[name] {
			t.Errorf("no event on stage lane %q", name)
		}
	}
	// Extra args survive alongside the request ID.
	found := false
	for _, e := range events {
		if e.Cat == "forward.batch" {
			found = true
			if e.Args["size"] != 3 {
				t.Errorf("forward.batch args = %v, want size 3", e.Args)
			}
		}
	}
	if !found {
		t.Error("forward.batch span missing")
	}
	if w.Sampled() != 1 {
		t.Errorf("Sampled = %d, want 1", w.Sampled())
	}
}

// TestWallTracerSamplingRate checks the probabilistic sampler: rate 0
// samples nothing, rate 1 everything, and a fractional rate with a
// fixed seed samples a deterministic, plausible share.
func TestWallTracerSamplingRate(t *testing.T) {
	w0 := NewWallTracer(0, 1)
	w1 := NewWallTracer(1, 1)
	wHalf := NewWallTracer(0.5, 1)
	for i := 0; i < 1000; i++ {
		if w0.Request("a") != nil {
			t.Fatal("rate-0 tracer sampled a request")
		}
		if w1.Request("b") == nil {
			t.Fatal("rate-1 tracer dropped a request")
		}
		wHalf.Request("c")
	}
	if n := wHalf.Sampled(); n < 400 || n > 600 {
		t.Errorf("rate-0.5 sampled %d of 1000", n)
	}
	// Same seed, same decisions.
	wAgain := NewWallTracer(0.5, 1)
	for i := 0; i < 1000; i++ {
		wAgain.Request("c")
	}
	if wAgain.Sampled() != wHalf.Sampled() {
		t.Errorf("sampling not deterministic under a fixed seed: %d vs %d",
			wAgain.Sampled(), wHalf.Sampled())
	}
}
