// Package trace is the observability layer of the reproduction: a
// recorder interface fed by the device simulator, the HMMS planner and
// the CPU executor, an exporter producing Chrome trace_event JSON
// (loadable in chrome://tracing or Perfetto), and a small metrics
// registry (metrics.go). The exported timelines are the repository's
// first-class version of the paper's Figure 9 nvprof stream plots: one
// trace thread per stream, one complete ("ph":"X") event per kernel or
// copy, so simulated and measured runs can be diffed span by span.
//
// The package depends only on the standard library; every other layer
// imports it, never the other way around.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// Recorder receives occupancy spans from an execution — simulated
// (internal/sim, internal/device) or measured (internal/graph's
// executor via internal/train). Implementations must be safe for
// concurrent use. Times are in seconds.
type Recorder interface {
	// Span records one occupancy interval [start, end) of stream.
	Span(stream, name string, start, end float64)
}

// Nop is a Recorder that discards everything.
type Nop struct{}

// Span implements Recorder.
func (Nop) Span(string, string, float64, float64) {}

// Event is one Chrome trace_event entry. Only complete events
// ("ph":"X") are emitted: name, pid, tid, a timestamp and a duration in
// microseconds — exactly what the trace viewer needs to draw a lane.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Trace collects spans and exports them as a Chrome trace_event JSON
// array. The zero value is not usable; create one with New.
type Trace struct {
	mu    sync.Mutex
	pid   int
	spans []span
	tids  map[string]int
	// streams lists stream names in tid order (for tests and text dumps).
	streams []string
	// cap bounds the retained spans (0 = unbounded). When full the
	// buffer becomes a ring: the oldest span is overwritten and dropped
	// counts the eviction, so a long-running server with sampling on
	// keeps the most recent window instead of growing without bound.
	cap     int
	next    int
	dropped int64
}

type span struct {
	stream, name string
	start, end   float64
	args         map[string]any
}

// Well-known stream names get fixed thread IDs so that exported traces
// are comparable across runs and methods: the compute lane is always
// tid 0, the analytic simulator's offload/prefetch lanes 1 and 2.
// Other streams (e.g. the device replay's per-TSO memory streams) are
// numbered in order of first appearance.
var wellKnown = map[string]int{"compute": 0, "offload": 1, "prefetch": 2}

// New returns an empty trace collector.
func New() *Trace {
	t := &Trace{pid: 1, tids: make(map[string]int), streams: []string{"compute", "offload", "prefetch"}}
	for s, id := range wellKnown {
		t.tids[s] = id
	}
	return t
}

// Span implements Recorder.
func (t *Trace) Span(stream, name string, start, end float64) {
	t.SpanArgs(stream, name, start, end, nil)
}

// SpanArgs is Span with per-event arguments — rendered into the trace
// event's "args" object, where chrome://tracing shows them in the
// selection pane. The serving tracer uses this to link a batch span to
// the request IDs it coalesced.
func (t *Trace) SpanArgs(stream, name string, start, end float64, args map[string]any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.tids[stream]; !ok {
		t.tids[stream] = len(t.tids)
		t.streams = append(t.streams, stream)
	}
	s := span{stream: stream, name: name, start: start, end: end, args: args}
	if t.cap > 0 && len(t.spans) >= t.cap {
		t.spans[t.next] = s
		t.next = (t.next + 1) % t.cap
		t.dropped++
		return
	}
	t.spans = append(t.spans, s)
}

// SetCap bounds the number of retained spans; once full, recording a
// new span evicts the oldest (counted by DroppedSpans). n <= 0 removes
// the bound. If more than n spans are already retained, the oldest are
// evicted immediately.
func (t *Trace) SetCap(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next != 0 {
		// Normalize the ring to oldest-first so trimming and future
		// eviction order stay correct.
		t.spans = append(append([]span(nil), t.spans[t.next:]...), t.spans[:t.next]...)
		t.next = 0
	}
	if n <= 0 {
		t.cap = 0
		return
	}
	if len(t.spans) > n {
		t.dropped += int64(len(t.spans) - n)
		t.spans = append([]span(nil), t.spans[len(t.spans)-n:]...)
	}
	t.cap = n
}

// DroppedSpans returns how many spans were evicted by the ring cap.
func (t *Trace) DroppedSpans() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns the number of recorded spans.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Streams returns the stream names in thread-ID order.
func (t *Trace) Streams() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.streams...)
}

// Events renders the recorded spans as Chrome trace events, sorted by
// (timestamp, tid, duration, name) so the export is deterministic
// regardless of recording order. Timestamps convert from seconds to the
// viewer's microseconds.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.spans))
	for _, s := range t.spans {
		out = append(out, Event{
			Name: s.name,
			Cat:  s.stream,
			Ph:   "X",
			TS:   s.start * 1e6,
			Dur:  (s.end - s.start) * 1e6,
			PID:  t.pid,
			TID:  t.tids[s.stream],
			Args: s.args,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.Dur != b.Dur {
			return a.Dur < b.Dur
		}
		return a.Name < b.Name
	})
	return out
}

// WriteJSON writes the trace as a JSON array of complete events — the
// array form of the Chrome trace_event format.
func (t *Trace) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(t.Events(), "", " ")
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err = io.WriteString(w, "\n")
	return err
}

// WriteFile writes the trace JSON to path.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("trace: writing %s: %w", path, err)
	}
	return f.Close()
}
