package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestTraceExportShape(t *testing.T) {
	tr := New()
	tr.Span("compute", "conv1", 0, 0.001)
	tr.Span("offload", "tso0", 0.0005, 0.002)
	tr.Span("compute", "conv2", 0.001, 0.003)
	tr.Span("mem3", "prefetch-tso1", 0.002, 0.004)

	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	for _, e := range evs {
		if e.Ph != "X" {
			t.Fatalf("event %q has ph %q, want X", e.Name, e.Ph)
		}
		if e.Dur < 0 {
			t.Fatalf("event %q has negative dur %v", e.Name, e.Dur)
		}
		if e.PID == 0 {
			t.Fatalf("event %q has zero pid", e.Name)
		}
	}
	// Sorted by timestamp.
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("events not sorted: %v after %v", evs[i].TS, evs[i-1].TS)
		}
	}
	// Well-known streams keep fixed tids; new streams get the next one.
	byName := map[string]Event{}
	for _, e := range evs {
		byName[e.Name] = e
	}
	if byName["conv1"].TID != 0 || byName["conv2"].TID != 0 {
		t.Fatalf("compute spans must be on tid 0: %+v", byName)
	}
	if byName["tso0"].TID != 1 {
		t.Fatalf("offload span on tid %d, want 1", byName["tso0"].TID)
	}
	if byName["prefetch-tso1"].TID != 3 {
		t.Fatalf("first fresh stream on tid %d, want 3", byName["prefetch-tso1"].TID)
	}
	// Seconds convert to microseconds.
	if byName["conv1"].Dur != 1000 {
		t.Fatalf("conv1 dur %v us, want 1000", byName["conv1"].Dur)
	}
}

func TestTraceWriteJSONIsValidEventArray(t *testing.T) {
	tr := New()
	tr.Span("compute", "k", 0, 1e-3)
	tr.Span("prefetch", "p", 1e-3, 2e-3)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("export is not a JSON array: %v", err)
	}
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	for _, e := range evs {
		for _, k := range []string{"name", "ph", "ts", "dur", "pid", "tid"} {
			if _, ok := e[k]; !ok {
				t.Fatalf("event %v missing %q", e, k)
			}
		}
		if e["ph"] != "X" {
			t.Fatalf("event %v is not a complete event", e)
		}
	}
}

func TestTraceConcurrentRecording(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Span("compute", "op", float64(i), float64(i)+0.5)
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Fatalf("got %d spans, want 800", tr.Len())
	}
}

func TestNopRecorder(t *testing.T) {
	var r Recorder = Nop{}
	r.Span("compute", "x", 0, 1) // must not panic
}
