package trace

import (
	"net/http"
	"strings"
)

// MetricsHandler serves a registry over HTTP with the /metricsz content
// negotiation shared by the serving stack and the trainer dashboard:
// JSON by default (preserved for existing scrapers), Prometheus text
// exposition 0.0.4 when the client asks for text/plain (what a
// Prometheus scraper's Accept header implies) or ?format=prom, and the
// legacy "kind name value" lines with ?format=text. refresh, when
// non-nil, runs before each dump — the hook that recomputes derived
// gauges (latency quantiles) at scrape time.
func MetricsHandler(m *Metrics, refresh func(*Metrics)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if refresh != nil {
			refresh(m)
		}
		format := r.URL.Query().Get("format")
		accept := r.Header.Get("Accept")
		switch {
		case format == "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			m.WriteText(w)
		case format == "prom" || (format == "" && strings.Contains(accept, "text/plain")):
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			m.WritePrometheus(w)
		default:
			w.Header().Set("Content-Type", "application/json")
			m.WriteJSON(w)
		}
	}
}
