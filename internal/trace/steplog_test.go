package trace_test

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"splitcnn/internal/trace"
)

func sampleStep(n int) trace.StepRecord {
	return trace.StepRecord{
		Step: n, Epoch: (n - 1) / 2, Loss: 2.3 - 0.1*float64(n),
		GradNorm: 1.5, ParamNorm: 10.25, LR: 0.05,
		ImagesPerSec: 128, StepSeconds: 0.25, ArenaInUseBytes: 1 << 20,
	}
}

// TestStepLogGoldenSchema pins the steplog line schema: the exact field
// set of step and epoch records, in emission order. Renaming or
// dropping a field breaks external consumers; this test is the tripwire.
func TestStepLogGoldenSchema(t *testing.T) {
	var buf bytes.Buffer
	l := trace.NewStepLog(&buf)
	for n := 1; n <= 2; n++ {
		if err := l.Step(sampleStep(n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Epoch(trace.EpochRecord{Epoch: 0, Steps: 2, MeanLoss: 2.15, TestError: 0.9, LR: 0.05, EpochSeconds: 0.5, ImagesPerSec: 128}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	wantStep := []string{"arena_in_use_bytes", "epoch", "grad_norm", "images_per_sec", "loss", "lr", "param_norm", "step", "step_seconds", "type"}
	wantEpoch := []string{"epoch", "epoch_seconds", "images_per_sec", "lr", "mean_loss", "steps", "test_error", "type"}
	for i, want := range [][]string{wantStep, wantStep, wantEpoch} {
		var obj map[string]any
		if err := json.Unmarshal([]byte(lines[i]), &obj); err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		var keys []string
		for k := range obj {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if strings.Join(keys, ",") != strings.Join(want, ",") {
			t.Errorf("line %d fields = %v, want %v", i+1, keys, want)
		}
	}

	steps, epochs, err := trace.CheckStepLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("CheckStepLog: %v", err)
	}
	if steps != 2 || epochs != 1 {
		t.Fatalf("CheckStepLog = (%d, %d), want (2, 1)", steps, epochs)
	}
}

// TestStepLogMonotonicSteps verifies both the writer and the checker
// reject non-increasing step numbers.
func TestStepLogMonotonicSteps(t *testing.T) {
	var buf bytes.Buffer
	l := trace.NewStepLog(&buf)
	if err := l.Step(sampleStep(5)); err != nil {
		t.Fatal(err)
	}
	if err := l.Step(sampleStep(5)); err == nil {
		t.Fatal("writer accepted a repeated step number")
	}
	if _, _, err := trace.CheckStepLog(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("checker accepted a repeated step number")
	}
}

// TestStepLogRoundTrip checks ReadStepLog returns exactly what was
// written, and that empty or truncated streams fail CheckStepLog.
func TestStepLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := trace.NewStepLog(&buf)
	var want []trace.StepRecord
	for n := 1; n <= 5; n++ {
		r := sampleStep(n)
		want = append(want, r)
		if err := l.Step(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Epoch(trace.EpochRecord{Epoch: 0, Steps: 5, MeanLoss: 2, TestError: 0.8, LR: 0.05, EpochSeconds: 1, ImagesPerSec: 64})
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	steps, epochs, err := trace.ReadStepLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 5 || len(epochs) != 1 {
		t.Fatalf("read %d steps / %d epochs, want 5 / 1", len(steps), len(epochs))
	}
	for i, s := range steps {
		w := want[i]
		w.Type = trace.RecordStep
		if s != w {
			t.Fatalf("step %d round-tripped to %+v, want %+v", i, s, w)
		}
	}
	if _, _, err := trace.CheckStepLog(strings.NewReader("")); err == nil {
		t.Fatal("CheckStepLog accepted an empty stream")
	}
	if _, _, err := trace.CheckStepLog(strings.NewReader(`{"type":"step","step":1}` + "\n")); err == nil {
		t.Fatal("CheckStepLog accepted a step line missing schema fields")
	}
}

// TestFlightRecorderRing pins the ring-buffer semantics: the dump holds
// the most recent N records oldest-first, and capacity never grows.
func TestFlightRecorderRing(t *testing.T) {
	f := trace.NewFlightRecorder(4, 3)
	for n := 1; n <= 10; n++ {
		f.RecordStep(trace.StepRecord{Step: n})
	}
	for n := 1; n <= 7; n++ {
		f.RecordSpan(trace.OpSpan{Name: "op", Step: n})
	}
	d := f.Dump()
	if len(d.Steps) != 4 || len(d.Spans) != 3 {
		t.Fatalf("dump holds %d steps / %d spans, want 4 / 3", len(d.Steps), len(d.Spans))
	}
	for i, s := range d.Steps {
		if want := 7 + i; s.Step != want {
			t.Errorf("dump step[%d] = %d, want %d (oldest-first, most recent window)", i, s.Step, want)
		}
	}
	for i, s := range d.Spans {
		if want := 5 + i; s.Step != want {
			t.Errorf("dump span[%d] = step %d, want %d", i, s.Step, want)
		}
	}

	// A part-full ring dumps only what was recorded.
	g := trace.NewFlightRecorder(8, 8)
	g.RecordStep(trace.StepRecord{Step: 1})
	if d := g.Dump(); len(d.Steps) != 1 || len(d.Spans) != 0 {
		t.Fatalf("part-full dump holds %d steps / %d spans, want 1 / 0", len(d.Steps), len(d.Spans))
	}
}
