package trace_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"splitcnn/internal/trace"
)

// promFixture populates a registry with one instrument of each kind at
// fixed values, including the serve.latency_seconds histogram the
// /metricsz acceptance criterion names. Everything is deterministic, so
// the exposition bytes can be pinned by a golden file.
func promFixture() *trace.Metrics {
	m := trace.NewMetrics()
	m.Counter("serve.requests").Add(64)
	m.Counter("serve.rejects_queue_full").Add(3)
	m.Gauge("mem.device_high_water_bytes").Set(16123456789)
	m.Gauge("serve.latency_p99_seconds").Set(0.01875)
	h := m.Histogram("serve.latency_seconds", nil)
	for _, v := range []float64{5e-7, 3e-4, 3e-4, 2e-3, 0.05, 0.05, 2.5} {
		h.Observe(v)
	}
	m.Histogram("serve.batch_size", []float64{1, 2, 4, 8}).Observe(3)
	return m
}

// TestGoldenPrometheusExposition pins the Prometheus text exposition of
// the fixture registry byte for byte: name sanitization, sorted family
// order, cumulative buckets, _sum/_count. Regenerate with
// `go test ./internal/trace -update` after an intended format change.
func TestGoldenPrometheusExposition(t *testing.T) {
	var buf bytes.Buffer
	if err := promFixture().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Spot checks independent of the golden file, matching the
	// acceptance criterion: serve_latency histogram buckets are present
	// and cumulative up to +Inf == count.
	for _, want := range []string{
		"# TYPE serve_latency_seconds histogram",
		`serve_latency_seconds_bucket{le="0.001"} 3`,
		`serve_latency_seconds_bucket{le="+Inf"} 7`,
		"serve_latency_seconds_count 7",
		"serve_requests 64",
		"mem_device_high_water_bytes 1.6123456789e+10",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	checkGolden(t, "prometheus_exposition.txt", buf.Bytes())
}

// TestPrometheusConcurrentScrapes is the tear test: scrapes interleaved
// with traffic must race-cleanly produce internally consistent
// histogram families (+Inf bucket == _count on every scrape).
func TestPrometheusConcurrentScrapes(t *testing.T) {
	m := trace.NewMetrics()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m.Counter("serve.requests").Add(1)
				m.Gauge("serve.queue_depth").Set(float64(i % 8))
				m.Histogram("serve.latency_seconds", nil).Observe(float64(i%100) * 1e-4)
			}
		}(g)
	}
	for scrape := 0; scrape < 50; scrape++ {
		var buf bytes.Buffer
		if err := m.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		var inf, count string
		for _, line := range strings.Split(buf.String(), "\n") {
			if v, ok := strings.CutPrefix(line, `serve_latency_seconds_bucket{le="+Inf"} `); ok {
				inf = v
			}
			if v, ok := strings.CutPrefix(line, "serve_latency_seconds_count "); ok {
				count = v
			}
		}
		if inf == "" || count == "" {
			continue // histogram not created yet
		}
		if inf != count {
			t.Fatalf("scrape %d tore: +Inf bucket %s != count %s", scrape, inf, count)
		}
	}
	close(stop)
	wg.Wait()
}
