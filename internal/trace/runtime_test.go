package trace

import (
	"testing"
	"time"
)

// TestRuntimeSampler checks that the sampler populates the runtime.*
// gauges immediately, keeps ticking, runs extra hooks, and stops
// cleanly (twice — Stop is idempotent).
func TestRuntimeSampler(t *testing.T) {
	m := NewMetrics()
	hooked := false
	s := StartRuntimeSampler(m, 10*time.Millisecond, func(reg *Metrics) {
		hooked = true
		reg.Gauge("extra.gauge").Set(7)
	})
	// The first sample is synchronous, so gauges exist before any tick.
	if v := m.Gauge("runtime.heap_alloc_bytes").Value(); v <= 0 {
		t.Errorf("runtime.heap_alloc_bytes = %v, want > 0", v)
	}
	if v := m.Gauge("runtime.goroutines").Value(); v < 1 {
		t.Errorf("runtime.goroutines = %v, want >= 1", v)
	}
	if !hooked || m.Gauge("extra.gauge").Value() != 7 {
		t.Error("extra sample hook did not run")
	}
	deadline := time.Now().Add(2 * time.Second)
	for m.Counter("runtime.samples").Value() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := m.Counter("runtime.samples").Value(); n < 2 {
		t.Errorf("sampler did not tick: %d samples", n)
	}
	s.Stop()
	s.Stop() // idempotent
	var nilSampler *RuntimeSampler
	nilSampler.Stop()
}
