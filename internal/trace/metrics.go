package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
)

// Metrics is a registry of named counters, gauges and histograms. All
// instruments are created on first use and are safe for concurrent
// access; the registry dumps to JSON (machine-diffable) or text.
//
// The layers of this repository record a common vocabulary (see the
// README's metric glossary): the simulator sets sim.* gauges (compute,
// stall and total time), the memory planner sets mem.* gauges
// (per-pool static sizes, the allocator high-water mark, fragmentation)
// and the CPU executor/trainer bump exec.* and train.* instruments.
type Metrics struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter is a monotonically growing integer.
type Counter struct {
	mu sync.Mutex
	v  int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a settable float64 value.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set assigns the gauge.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// SetMax raises the gauge to v if v is larger — the high-water-mark
// update used for peak-memory gauges.
func (g *Gauge) SetMax(v float64) {
	g.mu.Lock()
	if v > g.v {
		g.v = v
	}
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram accumulates observations into fixed upper-bound buckets
// plus count/sum/min/max summaries.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // sorted upper bounds; an implicit +Inf bucket follows
	buckets []int64
	count   int64
	sum     float64
	min     float64
	max     float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile estimates the q-th quantile (q in [0, 1]) of the observed
// distribution by linear interpolation within the histogram's buckets,
// clamped to the observed [min, max]. Edge cases are total: an empty
// histogram returns 0 for every q (never NaN), and q outside [0, 1] —
// including NaN — clamps to the observed min/max rather than
// extrapolating. The serving layer uses this for its p50/p99 latency
// gauges; resolution is bounded by the bucket bounds, which is the
// usual histogram-quantile trade-off.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return bucketQuantile(h.bounds, h.buckets, h.count, h.min, h.max, q)
}

// bucketQuantile is the shared quantile walk used by both the live
// Histogram (under its lock) and the immutable HistogramSnapshot.
func bucketQuantile(bounds []float64, buckets []int64, count int64, min, max, q float64) float64 {
	if count == 0 {
		return 0
	}
	if q <= 0 || math.IsNaN(q) {
		return min
	}
	if q >= 1 {
		return max
	}
	target := q * float64(count)
	var cum float64
	lo := min
	for i, n := range buckets {
		hi := max
		if i < len(bounds) && bounds[i] < hi {
			hi = bounds[i]
		}
		if hi < lo {
			hi = lo
		}
		if cum+float64(n) >= target {
			if n == 0 {
				return lo
			}
			frac := (target - cum) / float64(n)
			return lo + frac*(hi-lo)
		}
		cum += float64(n)
		if i < len(bounds) && bounds[i] > lo {
			lo = bounds[i]
		}
	}
	return max
}

// Counter returns (creating if needed) the named counter.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (m *Metrics) Gauge(name string) *Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.gauges[name]
	if !ok {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// DefBuckets are the default histogram bounds (seconds-flavored
// exponential scale).
var DefBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10, 100}

// LatencyBuckets are the bounds every duration histogram should use:
// a 1-2.5-5 ladder from 1µs to 10s, fine enough that Quantile's
// within-bucket interpolation gives usable p50/p99 estimates for
// microsecond op kernels and second-scale training steps alike.
// (DefBuckets, one bucket per decade, puts an entire op-latency
// population inside a single bucket and flattens every quantile to
// interpolation noise.)
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ByteBuckets are the bounds for memory-footprint histograms: powers of
// four from 64 KiB to 4 GiB, spanning a tiny smoke model's activations
// to a full-width VGG batch.
var ByteBuckets = []float64{
	1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24, 1 << 26, 1 << 28, 1 << 30, 1 << 32,
}

// Histogram returns (creating if needed) the named histogram. bounds
// are sorted upper bucket bounds; nil selects DefBuckets. Bounds are
// fixed at creation — later calls ignore the argument.
func (m *Metrics) Histogram(name string, bounds []float64) *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.histograms[name]
	if !ok {
		if bounds == nil {
			bounds = DefBuckets
		}
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, buckets: make([]int64, len(bs)+1)}
		m.histograms[name] = h
	}
	return h
}

// HistogramSnapshot is the immutable point-in-time form of one
// histogram — the unit the metrics-federation RPC ships between
// processes (all fields are exported so encoding/gob can carry it).
type HistogramSnapshot struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
}

// Quantile estimates the q-th quantile of the snapshot, with the same
// semantics as Histogram.Quantile.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	return bucketQuantile(h.Bounds, h.Buckets, h.Count, h.Min, h.Max, q)
}

// Merge folds another snapshot of the same shape into this one —
// cluster rollups sum per-worker histograms this way. The bounds must
// match exactly; every worker builds its instruments from the same
// compiled-in bucket ladders, so a mismatch means the snapshots are not
// the same metric.
func (h HistogramSnapshot) Merge(o HistogramSnapshot) (HistogramSnapshot, error) {
	if o.Count == 0 {
		return h, nil
	}
	if h.Count == 0 {
		return o, nil
	}
	if len(h.Bounds) != len(o.Bounds) {
		return h, fmt.Errorf("trace: merging histograms with %d vs %d bounds", len(h.Bounds), len(o.Bounds))
	}
	for i := range h.Bounds {
		if h.Bounds[i] != o.Bounds[i] {
			return h, fmt.Errorf("trace: merging histograms with different bounds (%v vs %v at %d)", h.Bounds[i], o.Bounds[i], i)
		}
	}
	out := HistogramSnapshot{
		Count:   h.Count + o.Count,
		Sum:     h.Sum + o.Sum,
		Min:     math.Min(h.Min, o.Min),
		Max:     math.Max(h.Max, o.Max),
		Bounds:  append([]float64(nil), h.Bounds...),
		Buckets: make([]int64, len(h.Buckets)),
	}
	for i := range out.Buckets {
		out.Buckets[i] = h.Buckets[i] + o.Buckets[i]
	}
	return out, nil
}

// Snapshot is a point-in-time copy of a whole registry: the wire unit
// of metrics federation (Shard.Metrics returns one) and the input to
// every exporter. Instrument-level consistency matches WritePrometheus:
// each instrument is locked once while copied.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := Snapshot{
		Counters:   make(map[string]int64, len(m.counters)),
		Gauges:     make(map[string]float64, len(m.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(m.histograms)),
	}
	for name, c := range m.counters {
		d.Counters[name] = c.Value()
	}
	for name, g := range m.gauges {
		d.Gauges[name] = g.Value()
	}
	for name, h := range m.histograms {
		h.mu.Lock()
		d.Histograms[name] = HistogramSnapshot{
			Count:   h.count,
			Sum:     h.sum,
			Min:     h.min,
			Max:     h.max,
			Bounds:  append([]float64(nil), h.bounds...),
			Buckets: append([]int64(nil), h.buckets...),
		}
		h.mu.Unlock()
	}
	return d
}

// WriteJSON dumps the registry as one JSON object with counters,
// gauges and histograms keyed by name. Gauge values round-trip
// exactly: encoding/json renders float64 with enough digits to
// re-parse to the identical bits, which is what lets tests assert
// metric values equal planner outputs with ==.
func (m *Metrics) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(m.Snapshot(), "", " ")
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	_, err = io.WriteString(w, "\n")
	return err
}

// WriteFile writes the metrics JSON to path.
func (m *Metrics) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("trace: writing %s: %w", path, err)
	}
	return f.Close()
}

// WriteText dumps the registry as sorted "kind name value" lines.
func (m *Metrics) WriteText(w io.Writer) error {
	d := m.Snapshot()
	var lines []string
	for name, v := range d.Counters {
		lines = append(lines, fmt.Sprintf("counter %s %d", name, v))
	}
	for name, v := range d.Gauges {
		lines = append(lines, fmt.Sprintf("gauge %s %v", name, v))
	}
	for name, h := range d.Histograms {
		mean := 0.0
		if h.Count > 0 {
			mean = h.Sum / float64(h.Count)
		}
		if math.IsNaN(mean) {
			mean = 0
		}
		lines = append(lines, fmt.Sprintf("histogram %s count=%d sum=%v min=%v max=%v mean=%v",
			name, h.Count, h.Sum, h.Min, h.Max, mean))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
