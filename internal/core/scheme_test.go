package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEqualScheme(t *testing.T) {
	s, err := EqualScheme(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := Scheme{0, 2, 5, 7}
	if !s.Equal(want) {
		t.Fatalf("EqualScheme(10,4) = %v, want %v", s, want)
	}
	if s.PartLen(0, 10) != 2 || s.PartLen(3, 10) != 3 {
		t.Fatalf("part lengths wrong: %v", s)
	}
	if _, err := EqualScheme(3, 5); err == nil {
		t.Fatal("oversplit accepted")
	}
	one, err := EqualScheme(7, 1)
	if err != nil || !one.Equal(Scheme{0}) {
		t.Fatalf("trivial scheme: %v, %v", one, err)
	}
}

func TestBoundsCollapseWhenKernelEqualsStride(t *testing.T) {
	// "lb(I_i) = ub(I_i) if the kernel shape equals the stride, in which
	// case the splitting is natural and non-intrusive."
	for _, w := range []Window1D{
		{K: 2, S: 2}, {K: 3, S: 3}, {K: 2, S: 2, Pb: 1, Pe: 1},
	} {
		for o := 1; o < 10; o++ {
			if lb, ub := w.LowerBound(o), w.UpperBound(o); lb != ub {
				t.Fatalf("window %+v at o=%d: lb %d != ub %d", w, o, lb, ub)
			}
		}
	}
}

func TestBoundsOrderingWhenKernelExceedsStride(t *testing.T) {
	w := Window1D{K: 3, S: 1, Pb: 1, Pe: 1}
	for o := 1; o < 10; o++ {
		lb, ub := w.LowerBound(o), w.UpperBound(o)
		if ub-lb != w.K-w.S {
			t.Fatalf("interval width %d, want k-s=%d", ub-lb, w.K-w.S)
		}
	}
}

// TestPaddingOutputSizeIdentity is the core §3.1 invariant: for any
// window with k >= s, any valid output scheme, and any boundary policy,
// the i-th padded patch produces exactly O_{i+1} − O_i outputs, patch
// begin-padding is the global p_b for patch 0, end-padding the global
// p_e for the last patch, and interior paddings stay in [0, k−s].
func TestPaddingOutputSizeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 2000; iter++ {
		s := 1 + rng.Intn(3)
		k := s + rng.Intn(4) // k >= s
		pb, pe := rng.Intn(k), rng.Intn(k)
		lin := k + rng.Intn(60)
		w := Window1D{K: k, S: s, Pb: pb, Pe: pe}
		lout := w.OutSize(lin)
		if lout < 2 {
			continue
		}
		n := 2 + rng.Intn(3)
		if n > lout {
			n = lout
		}
		out, err := EqualScheme(lout, n)
		if err != nil {
			t.Fatal(err)
		}
		policy := BoundaryPolicy(rng.Intn(3))
		in, err := InputScheme(out, w, lin, policy)
		if err != nil {
			continue // tiny dims can make the derived scheme degenerate
		}
		pads, err := Paddings(in, out, w)
		if err != nil {
			t.Fatal(err)
		}
		if pads[0].B != pb {
			t.Fatalf("patch 0 begin pad %d, want global %d", pads[0].B, pb)
		}
		if pads[n-1].E != pe {
			t.Fatalf("last patch end pad %d, want global %d", pads[n-1].E, pe)
		}
		for i := 0; i < n; i++ {
			li := in.PartLen(i, lin)
			got := (li + pads[i].B + pads[i].E - k) / s
			if (li+pads[i].B+pads[i].E-k)%s != 0 && i < n-1 {
				t.Fatalf("interior patch %d output size not exact: len %d pads %+v window %+v", i, li, pads[i], w)
			}
			got++
			want := out.PartLen(i, lout)
			if got != want {
				t.Fatalf("iter %d policy %v: patch %d produces %d outputs, want %d (window %+v, in %v, out %v, pads %v)",
					iter, policy, i, got, want, w, in, out, pads)
			}
			if i > 0 {
				if pads[i].B < 0 || pads[i].B > k-s {
					t.Fatalf("interior begin pad %d outside [0, %d] (corrected formula)", pads[i].B, k-s)
				}
			}
			if i < n-1 {
				if pads[i].E < 0 || pads[i].E > k-s {
					t.Fatalf("interior end pad %d outside [0, %d]", pads[i].E, k-s)
				}
			}
		}
	}
}

// TestNaturalSplitHasZeroInteriorPadding: when k = s the natural split
// needs no padding at all on interior boundaries.
func TestNaturalSplitHasZeroInteriorPadding(t *testing.T) {
	w := Window1D{K: 2, S: 2}
	out, _ := EqualScheme(8, 4) // over output length 8 (input 16)
	in, err := InputScheme(out, w, 16, PolicyMidpoint)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Equal(Scheme{0, 4, 8, 12}) {
		t.Fatalf("input scheme %v", in)
	}
	pads, _ := Paddings(in, out, w)
	for i, p := range pads {
		if p.B != 0 || p.E != 0 {
			t.Fatalf("patch %d pads %+v, want zero", i, p)
		}
	}
}

// TestMidpointFixedPointForSameConv: a stride-1 same-padded convolution
// maps a scheme onto itself under the midpoint policy — the property
// that makes multi-layer split regions communication-free (§3.2).
func TestMidpointFixedPointForSameConv(t *testing.T) {
	w := Window1D{K: 3, S: 1, Pb: 1, Pe: 1}
	out := Scheme{0, 7, 13, 22}
	in, err := InputScheme(out, w, 32, PolicyMidpoint)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Equal(out) {
		t.Fatalf("midpoint scheme moved: %v -> %v", out, in)
	}
}

// TestDownsamplingConvEmptyInterval: a 1x1 stride-2 convolution (k < s,
// the ResNet projection shortcut) has an empty [lb, ub]; the fallback
// picks lb and yields negative end padding (cropping) that preserves the
// output-size identity.
func TestDownsamplingConvEmptyInterval(t *testing.T) {
	w := Window1D{K: 1, S: 2}
	if lb, ub := w.LowerBound(2), w.UpperBound(2); ub >= lb {
		t.Fatalf("interval should be empty: lb %d ub %d", lb, ub)
	}
	out := Scheme{0, 2} // output length 4 over input length 8
	in, err := InputScheme(out, w, 8, PolicyMidpoint)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Equal(Scheme{0, 4}) {
		t.Fatalf("input scheme %v, want (0, 4)", in)
	}
	pads, _ := Paddings(in, out, w)
	if pads[0].E != -1 {
		t.Fatalf("patch 0 end pad %d, want -1 (crop)", pads[0].E)
	}
	// Size identity with flooring: (4 + 0 - 1 - 1)/2 + 1 = 2.
	if got := (4+pads[0].B+pads[0].E-1)/2 + 1; got != 2 {
		t.Fatalf("patch 0 outputs %d, want 2", got)
	}
	if got := (4+pads[1].B+pads[1].E-1)/2 + 1; got != 2 {
		t.Fatalf("patch 1 outputs %d, want 2", got)
	}
}

func TestStochasticSchemeWithinWiggle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l, n, omega := 64, 4, 0.2
	for iter := 0; iter < 500; iter++ {
		s, err := StochasticScheme(l, n, omega, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(l); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < n; i++ {
			lo := (float64(i) - omega) * float64(l) / float64(n)
			hi := (float64(i) + omega) * float64(l) / float64(n)
			// Exact §3.3 interval: ⌈lo⌉ <= s_i <= ⌊hi⌋ (no clamping
			// fires at this dimension size).
			if float64(s[i]) < lo || float64(s[i]) > hi {
				t.Fatalf("s[%d]=%d outside wiggle [%v, %v]", i, s[i], lo, hi)
			}
		}
	}
}

func TestStochasticSchemeZeroOmegaIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s1, err := StochasticScheme(32, 4, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := StochasticScheme(32, 4, 0, rng)
	if !s1.Equal(s2) {
		t.Fatalf("omega=0 should be deterministic: %v vs %v", s1, s2)
	}
	eq, _ := EqualScheme(32, 4)
	if !s1.Equal(eq) {
		t.Fatalf("omega=0 scheme %v != equal scheme %v", s1, eq)
	}
}

func TestStochasticSchemeRejectsBadOmega(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := StochasticScheme(32, 4, 0.5, rng); err == nil {
		t.Fatal("omega = 0.5 accepted")
	}
	if _, err := StochasticScheme(32, 4, -0.1, rng); err == nil {
		t.Fatal("negative omega accepted")
	}
}

// TestStochasticSchemeSmallDims exercises the clamping fixups via
// testing/quick: any (l, n, seed) combination must produce a valid,
// strictly increasing scheme.
func TestStochasticSchemeSmallDims(t *testing.T) {
	f := func(lRaw, nRaw uint8, seed int64) bool {
		l := int(lRaw%60) + 4
		n := int(nRaw%6) + 1
		if n > l {
			n = l
		}
		rng := rand.New(rand.NewSource(seed))
		s, err := StochasticScheme(l, n, 0.2, rng)
		if err != nil {
			return false
		}
		return s.Validate(l) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSchemeValidate(t *testing.T) {
	cases := []struct {
		s  Scheme
		l  int
		ok bool
	}{
		{Scheme{0}, 5, true},
		{Scheme{0, 2, 4}, 5, true},
		{Scheme{1, 2}, 5, false},
		{Scheme{0, 2, 2}, 5, false},
		{Scheme{0, 5}, 5, false},
		{Scheme{}, 5, false},
	}
	for _, c := range cases {
		if err := c.s.Validate(c.l); (err == nil) != c.ok {
			t.Fatalf("Validate(%v, %d): err=%v want ok=%v", c.s, c.l, err, c.ok)
		}
	}
}
