// Package core implements the paper's primary contribution: the
// Split-CNN transformation of §3. It contains
//
//   - the single-dimension split-scheme mathematics of §3.1 — the
//     lb/ub interval of legal input split points (Equations 1 and 2),
//     the per-patch padding computation, and the boundary-choice
//     policies;
//   - the stochastic output-scheme sampler of §3.3; and
//   - Split, a graph-to-graph rewriter that converts a regular CNN
//     computation graph into a Split-CNN: it selects a prefix region
//     covering the requested fraction of convolution layers, propagates
//     split schemes backwards through the region, and re-instantiates
//     every window-based operation once per spatial patch with
//     per-patch padding, joining patches with a concat at the frontier.
//
// Note on the paper's begin-padding formula: §3.1 prints
// p_{i,b} = I_i + p_b − (O_i − 1)s, which is off by one stride — it
// yields padding in [s, k] and breaks the output-size identity. This
// package implements the derivation-consistent p_{i,b} = I_i + p_b −
// O_i·s (zero for the natural split when k = s, in [0, k−s] for any
// choice inside [lb, ub]); the property tests in scheme_test.go verify
// the identity |Y_i| = O_{i+1} − O_i and exact forward equivalence for
// k = s.
package core

import (
	"fmt"
	"math"
	"math/rand"
)

// Scheme is a partition of a spatial dimension of size L into parts;
// element i is the index of the first element of part i (the paper's
// (s_0, ..., s_{N-1}) with s_0 = 0).
type Scheme []int

// Equal reports whether two schemes are identical.
func (s Scheme) Equal(o Scheme) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Parts returns the number of parts.
func (s Scheme) Parts() int { return len(s) }

// PartLen returns the length of part i given total dimension size l.
func (s Scheme) PartLen(i, l int) int {
	if i == len(s)-1 {
		return l - s[i]
	}
	return s[i+1] - s[i]
}

// Validate checks the scheme against dimension size l.
func (s Scheme) Validate(l int) error {
	if len(s) == 0 {
		return fmt.Errorf("empty scheme")
	}
	if s[0] != 0 {
		return fmt.Errorf("scheme %v must start at 0", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			return fmt.Errorf("scheme %v not strictly increasing", s)
		}
	}
	if s[len(s)-1] >= l {
		return fmt.Errorf("scheme %v out of range for size %d", s, l)
	}
	return nil
}

// EqualScheme partitions a dimension of size l into n parts as evenly as
// possible — the paper's "good choice for load balance".
func EqualScheme(l, n int) (Scheme, error) {
	if n < 1 || n > l {
		return nil, fmt.Errorf("cannot split size %d into %d parts", l, n)
	}
	s := make(Scheme, n)
	for i := range s {
		s[i] = i * l / n
	}
	return s, s.Validate(l)
}

// StochasticScheme samples the §3.3 output scheme: s_0 = 0 and, for
// i > 0, s_i ~ DiscreteUniform(⌈(i−ω)L/N⌉, ⌊(i+ω)L/N⌋) with wiggle room
// ω ∈ [0, 0.5). Samples are clamped to keep the scheme strictly
// increasing on small dimensions.
func StochasticScheme(l, n int, omega float64, rng *rand.Rand) (Scheme, error) {
	if n < 1 || n > l {
		return nil, fmt.Errorf("cannot split size %d into %d parts", l, n)
	}
	if omega < 0 || omega >= 0.5 {
		return nil, fmt.Errorf("omega %v outside [0, 0.5)", omega)
	}
	s := make(Scheme, n)
	for i := 1; i < n; i++ {
		lo := int(math.Ceil((float64(i) - omega) * float64(l) / float64(n)))
		hi := int(math.Floor((float64(i) + omega) * float64(l) / float64(n)))
		lo = max(lo, s[i-1]+1)
		hi = min(hi, l-(n-i)) // leave room for the remaining parts
		if hi < lo {
			hi = lo
		}
		s[i] = lo + rng.Intn(hi-lo+1)
	}
	return s, s.Validate(l)
}

// Window1D describes a window-based operation along one spatial
// dimension: kernel size K, stride S, and begin/end padding Pb/Pe — the
// paper's Op(X, k, s, p).
type Window1D struct {
	K, S, Pb, Pe int
}

// OutSize returns the operation's output length over input length l.
func (w Window1D) OutSize(l int) int { return (l+w.Pb+w.Pe-w.K)/w.S + 1 }

// LowerBound is Equation 1: the smallest legal input split point for
// output split point o — right before the first element of the window
// producing the first element of the patch.
func (w Window1D) LowerBound(o int) int { return o*w.S - w.Pb }

// UpperBound is Equation 2: the largest legal input split point — right
// past the last element of the window producing the previous patch's
// last output. When K = S the interval collapses (lb = ub) and the
// split is "natural and non-intrusive".
func (w Window1D) UpperBound(o int) int { return (o-1)*w.S + w.K - w.Pb }

// BoundaryPolicy selects an input split point within (or, when the
// interval is empty because k < s, outside) [lb, ub].
type BoundaryPolicy int

// Boundary policies.
const (
	// PolicyMidpoint splits halfway between the bounds, balancing the
	// dropped receptive field between the two adjoining patches. For
	// stride-1 same-padded convolutions it maps a scheme to itself,
	// which is what makes deep multi-layer split regions (§3.2)
	// communication-free.
	PolicyMidpoint BoundaryPolicy = iota
	// PolicyLower always picks lb: the right patch keeps its full
	// receptive field; the left patch is end-padded.
	PolicyLower
	// PolicyUpper always picks ub: the left patch keeps its full
	// receptive field; the right patch is begin-padded.
	PolicyUpper
)

// String names the policy.
func (p BoundaryPolicy) String() string {
	switch p {
	case PolicyMidpoint:
		return "midpoint"
	case PolicyLower:
		return "lower"
	case PolicyUpper:
		return "upper"
	}
	return fmt.Sprintf("BoundaryPolicy(%d)", int(p))
}

// InputScheme computes the input split scheme I from an output split
// scheme O for a window operation over an input of length lin — the
// paper's ComputeInputSplitScheme (Equation 3). For downsampling
// windows with k < s the [lb, ub] interval is empty; per the paper's
// footnote the split is still workable, and lb is used (negative
// padding, i.e. cropping, absorbs the difference).
func InputScheme(out Scheme, w Window1D, lin int, policy BoundaryPolicy) (Scheme, error) {
	lout := w.OutSize(lin)
	if err := out.Validate(lout); err != nil {
		return nil, fmt.Errorf("output scheme invalid for length %d: %w", lout, err)
	}
	in := make(Scheme, len(out))
	for i := 1; i < len(out); i++ {
		lb, ub := w.LowerBound(out[i]), w.UpperBound(out[i])
		var pick int
		switch {
		case ub < lb: // k < s: empty interval, exact crop split
			pick = lb
		case policy == PolicyLower:
			pick = lb
		case policy == PolicyUpper:
			pick = ub
		default:
			pick = (lb + ub) / 2
		}
		in[i] = pick
	}
	if err := in.Validate(lin); err != nil {
		return nil, fmt.Errorf("derived input scheme invalid (window %+v, out %v, lin %d): %w", w, out, lin, err)
	}
	return in, nil
}

// Pad1D is a per-patch begin/end padding pair.
type Pad1D struct {
	B, E int
}

// Paddings computes the per-patch paddings (Equation 5, with the
// corrected begin formula): given matching input and output schemes and
// the window, patch i of input length I_{i+1} − I_i padded by
// (p_{i,b}, p_{i,e}) yields exactly O_{i+1} − O_i outputs. Negative
// values denote cropping (footnote 1's "negative padding").
func Paddings(in, out Scheme, w Window1D) ([]Pad1D, error) {
	n := len(out)
	if len(in) != n {
		return nil, fmt.Errorf("schemes disagree on part count: %d vs %d", len(in), n)
	}
	pads := make([]Pad1D, n)
	for i := 0; i < n; i++ {
		if i == 0 {
			pads[i].B = w.Pb
		} else {
			pads[i].B = in[i] + w.Pb - out[i]*w.S
		}
		if i == n-1 {
			pads[i].E = w.Pe
		} else {
			pads[i].E = (out[i+1]-1)*w.S + w.K - (in[i+1] + w.Pb)
		}
	}
	return pads, nil
}
