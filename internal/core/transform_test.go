package core

import (
	"math/rand"
	"strings"
	"testing"

	"splitcnn/internal/graph"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
)

// buildSingleOpGraph wraps one op (plus conv weights if needed) in a
// graph so we can compare split vs. unsplit execution.
func buildConvGraph(n, cin, h, w, cout, k, s, p int) *graph.Graph {
	g := graph.New()
	x := g.Input("image", tensor.Shape{n, cin, h, w})
	wt := g.Param("c.w", tensor.Shape{cout, cin, k, k})
	bs := g.Param("c.b", tensor.Shape{cout})
	out := g.Add("c", nn.NewConv(k, s, p), x, wt, bs)
	g.SetOutput(out)
	return g
}

func runGraph(t *testing.T, g *graph.Graph, store *graph.ParamStore, feeds graph.Feeds) *tensor.Tensor {
	t.Helper()
	ex, err := graph.NewExecutor(g, store)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := ex.Forward(feeds)
	if err != nil {
		t.Fatal(err)
	}
	return outs[0]
}

// TestSplitNaturalConvExact: splitting a k = s convolution (natural
// split) is semantics-preserving — the split graph computes exactly the
// unsplit result.
func TestSplitNaturalConvExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := buildConvGraph(2, 3, 16, 16, 4, 2, 2, 0)
	store := graph.NewParamStore()
	store.InitFromGraph(g, rng, nn.KaimingInit)

	res, err := Split(g, Config{Depth: 1, NH: 2, NW: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.SplitConvs != 1 {
		t.Fatalf("split %d convs, want 1", res.SplitConvs)
	}
	store.InitFromGraph(res.Graph, rng, nn.KaimingInit) // no new params expected
	x := tensor.New(2, 3, 16, 16)
	x.RandNormal(rng, 1)
	feeds := graph.Feeds{"image": x}
	base := runGraph(t, g, store, feeds)
	split := runGraph(t, res.Graph, store, feeds)
	if !split.Shape().Equal(base.Shape()) {
		t.Fatalf("shape %v vs %v", split.Shape(), base.Shape())
	}
	if d := tensor.MaxAbsDiff(split, base); d > 1e-5 {
		t.Fatalf("natural split not exact: diff %v", d)
	}
}

// TestSplitOverlappingConvInteriorExact: for a 3x3/1 same-padded conv
// split at midpoint boundaries, outputs whose window does not straddle a
// patch boundary must match the unsplit network exactly; boundary rows/
// columns differ (that is the intentional semantic change of §3).
func TestSplitOverlappingConvInteriorExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := buildConvGraph(1, 2, 12, 12, 3, 3, 1, 1)
	store := graph.NewParamStore()
	store.InitFromGraph(g, rng, nn.KaimingInit)

	res, err := Split(g, Config{Depth: 1, NH: 2, NW: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(1, 2, 12, 12)
	x.RandNormal(rng, 1)
	feeds := graph.Feeds{"image": x}
	base := runGraph(t, g, store, feeds)
	split := runGraph(t, res.Graph, store, feeds)
	if !split.Shape().Equal(base.Shape()) {
		t.Fatalf("shape %v vs %v", split.Shape(), base.Shape())
	}
	// Midpoint boundary for out scheme {0,6} with k=3,s=1,pb=1: I = 6.
	// Windows of outputs 5, 6 touch the boundary; everything else exact.
	isBoundary := func(i int) bool { return i == 5 || i == 6 }
	var differs int
	for co := 0; co < 3; co++ {
		for y := 0; y < 12; y++ {
			for xx := 0; xx < 12; xx++ {
				d := float64(split.At(0, co, y, xx) - base.At(0, co, y, xx))
				if d < 0 {
					d = -d
				}
				if isBoundary(y) || isBoundary(xx) {
					if d > 1e-6 {
						differs++
					}
					continue
				}
				if d > 1e-5 {
					t.Fatalf("interior (%d,%d,%d) differs by %v", co, y, xx, d)
				}
			}
		}
	}
	if differs == 0 {
		t.Fatal("split changed nothing at boundaries — suspicious for k > s")
	}
}

// TestSplitTrivialConfigsReturnOriginal: depth 0 or a 1x1 grid is a
// no-op returning the original graph.
func TestSplitTrivialConfigsReturnOriginal(t *testing.T) {
	g := buildConvGraph(1, 1, 8, 8, 2, 3, 1, 1)
	for _, cfg := range []Config{{Depth: 0, NH: 2, NW: 2}, {Depth: 1, NH: 1, NW: 1}} {
		res, err := Split(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Graph != g || res.SplitConvs != 0 {
			t.Fatalf("config %+v should be a no-op", cfg)
		}
	}
}

func TestSplitRejectsBadConfig(t *testing.T) {
	g := buildConvGraph(1, 1, 8, 8, 2, 3, 1, 1)
	if _, err := Split(g, Config{Depth: 0.5, NH: 0, NW: 2}); err == nil {
		t.Fatal("accepted 0 patch rows")
	}
	if _, err := Split(g, Config{Depth: 1.5, NH: 2, NW: 2}); err == nil {
		t.Fatal("accepted depth > 1")
	}
	if _, err := Split(g, Config{Depth: 0.5, NH: 2, NW: 2, Stochastic: true}); err == nil {
		t.Fatal("accepted stochastic without rng")
	}
}

// chainGraph builds conv-relu-pool-conv-relu over 32x32 and a loss-free
// output, a miniature VGG prefix.
func chainGraph(batch int) *graph.Graph {
	g := graph.New()
	x := g.Input("image", tensor.Shape{batch, 3, 32, 32})
	w1 := g.Param("c1.w", tensor.Shape{8, 3, 3, 3})
	b1 := g.Param("c1.b", tensor.Shape{8})
	c1 := g.Add("c1", nn.NewConv(3, 1, 1), x, w1, b1)
	r1 := g.Add("r1", nn.ReLU{}, c1)
	p1 := g.Add("p1", nn.NewMaxPool(2, 2), r1)
	w2 := g.Param("c2.w", tensor.Shape{16, 8, 3, 3})
	b2 := g.Param("c2.b", tensor.Shape{16})
	c2 := g.Add("c2", nn.NewConv(3, 1, 1), p1, w2, b2)
	r2 := g.Add("r2", nn.ReLU{}, c2)
	g.SetOutput(r2)
	return g
}

// TestSplitMultiLayerRegion splits both convs of a conv-relu-pool-conv
// chain and verifies: the region covers every layer, a single join is
// inserted at the end, patches pass through the pool independently, and
// parameters are shared by name with the original graph.
func TestSplitMultiLayerRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := chainGraph(2)
	store := graph.NewParamStore()
	store.InitFromGraph(g, rng, nn.KaimingInit)

	res, err := Split(g, Config{Depth: 1, NH: 2, NW: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.SplitConvs != 2 || res.TotalConvs != 2 {
		t.Fatalf("split %d/%d convs", res.SplitConvs, res.TotalConvs)
	}
	if len(res.JoinNames) != 1 {
		t.Fatalf("joins %v, want exactly one (multi-layer patches must stay independent)", res.JoinNames)
	}
	// No parameter may have been renamed or duplicated.
	newStore := graph.NewParamStore()
	newStore.InitFromGraph(res.Graph, rng, nil)
	if newStore.Len() != store.Len() {
		t.Fatalf("param count changed: %d vs %d", newStore.Len(), store.Len())
	}
	for _, p := range newStore.All() {
		if store.Lookup(p.Name) == nil {
			t.Fatalf("new param %q appeared", p.Name)
		}
	}
	// The split graph must execute and produce the same output shape.
	x := tensor.New(2, 3, 32, 32)
	x.RandNormal(rng, 1)
	base := runGraph(t, g, store, graph.Feeds{"image": x})
	split := runGraph(t, res.Graph, store, graph.Feeds{"image": x})
	if !split.Shape().Equal(base.Shape()) {
		t.Fatalf("shape %v vs %v", split.Shape(), base.Shape())
	}
	// The pool is k = s and convs are intrusive: interiors match.
	if d := tensor.MaxAbsDiff(split, base); d == 0 {
		t.Fatal("expected boundary differences for overlapping windows")
	}
	// Each patch chain must contain its own conv instances.
	for _, name := range []string{"c1.p0", "c1.p3", "p1.p2", "c2.p1"} {
		if res.Graph.FindNode(name) == nil {
			t.Fatalf("missing patch node %q", name)
		}
	}
}

// TestSplitDepthControlsRegion: with depth 0.5 over the two-conv chain
// only the first conv (and the ops up to the second conv) are split.
func TestSplitDepthControlsRegion(t *testing.T) {
	g := chainGraph(1)
	res, err := Split(g, Config{Depth: 0.5, NH: 2, NW: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.SplitConvs != 1 {
		t.Fatalf("split %d convs, want 1", res.SplitConvs)
	}
	if res.Graph.FindNode("c2.p0") != nil {
		t.Fatal("second conv should not be split at depth 0.5")
	}
	if res.Graph.FindNode("c2") == nil {
		t.Fatal("second conv missing from transformed graph")
	}
}

// TestSplitGradientsFlowToSharedParams: backward through a split graph
// accumulates gradients into the same parameter store entries.
func TestSplitGradientsFlowToSharedParams(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := chainGraph(2)
	store := graph.NewParamStore()
	store.InitFromGraph(g, rng, nn.KaimingInit)
	res, err := Split(g, Config{Depth: 1, NH: 2, NW: 2})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := graph.NewExecutor(res.Graph, store)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 3, 32, 32)
	x.RandNormal(rng, 1)
	store.ZeroGrads()
	if _, err := ex.Forward(graph.Feeds{"image": x}); err != nil {
		t.Fatal(err)
	}
	if err := ex.Backward(); err != nil {
		t.Fatal(err)
	}
	for _, p := range store.All() {
		var nz bool
		for _, v := range p.Grad.Data() {
			if v != 0 {
				nz = true
				break
			}
		}
		if !nz && strings.HasSuffix(p.Name, ".w") {
			t.Fatalf("param %s received no gradient through split graph", p.Name)
		}
	}
}

// TestStochasticSplitVariesAcrossCalls: two stochastic transforms with a
// shared rng should (almost surely) pick different boundaries.
func TestStochasticSplitVariesAcrossCalls(t *testing.T) {
	g := chainGraph(1)
	rng := rand.New(rand.NewSource(5))
	boundaries := func() []int {
		res, err := Split(g, Config{Depth: 1, NH: 2, NW: 2, Stochastic: true, Omega: 0.2, Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		var out []int
		for _, n := range res.Graph.Nodes {
			if ep, ok := n.Op.(*nn.ExtractPatch); ok {
				out = append(out, ep.H0, ep.W0)
			}
		}
		return out
	}
	first := boundaries()
	for i := 0; i < 20; i++ {
		next := boundaries()
		same := len(next) == len(first)
		if same {
			for j := range next {
				if next[j] != first[j] {
					same = false
					break
				}
			}
		}
		if !same {
			return
		}
	}
	t.Fatal("stochastic splitting produced identical boundaries 20 times")
}

// TestSplitResNetStyleBlock: a residual block with identity shortcut
// splits cleanly — the Add is replicated per patch and the skip edge
// stays inside the region.
func TestSplitResNetStyleBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.New()
	x := g.Input("image", tensor.Shape{1, 4, 16, 16})
	w1 := g.Param("c1.w", tensor.Shape{4, 4, 3, 3})
	b1 := g.Param("c1.b", tensor.Shape{4})
	c1 := g.Add("c1", nn.NewConv(3, 1, 1), x, w1, b1)
	r1 := g.Add("r1", nn.ReLU{}, c1)
	w2 := g.Param("c2.w", tensor.Shape{4, 4, 3, 3})
	b2 := g.Param("c2.b", tensor.Shape{4})
	c2 := g.Add("c2", nn.NewConv(3, 1, 1), r1, w2, b2)
	// identity shortcut from the block input... but the block input is
	// the image; use c1's input path: skip from r1's producer region.
	add := g.Add("add", &nn.Add{N: 2}, c2, c1)
	out := g.Add("r2", nn.ReLU{}, add)
	g.SetOutput(out)

	store := graph.NewParamStore()
	store.InitFromGraph(g, rng, nn.KaimingInit)
	res, err := Split(g, Config{Depth: 1, NH: 2, NW: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.JoinNames) != 1 {
		t.Fatalf("joins %v, want 1 (skip edge must stay inside the region)", res.JoinNames)
	}
	xt := tensor.New(1, 4, 16, 16)
	xt.RandNormal(rng, 1)
	base := runGraph(t, g, store, graph.Feeds{"image": xt})
	split := runGraph(t, res.Graph, store, graph.Feeds{"image": xt})
	if !split.Shape().Equal(base.Shape()) {
		t.Fatalf("shape %v vs %v", split.Shape(), base.Shape())
	}
}

// TestSplitBatchNormPerPatch: BN inside the region is applied per patch
// with shared gamma/beta and shared running state.
func TestSplitBatchNormPerPatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.New()
	x := g.Input("image", tensor.Shape{2, 3, 16, 16})
	w1 := g.Param("c1.w", tensor.Shape{4, 3, 3, 3})
	c1 := g.Add("c1", &nn.Conv{Params: tensor.ConvParams{KH: 3, KW: 3, SH: 1, SW: 1, Pad: tensor.Symmetric(1)}}, x, w1)
	state := nn.NewBNState("bn1", 4)
	gamma := g.Param("bn1.gamma", tensor.Shape{4})
	beta := g.Param("bn1.beta", tensor.Shape{4})
	bn := g.Add("bn1", nn.NewBatchNorm(state), c1, gamma, beta)
	out := g.Add("r1", nn.ReLU{}, bn)
	g.SetOutput(out)

	store := graph.NewParamStore()
	store.InitFromGraph(g, rng, nn.KaimingInit)
	res, err := Split(g, Config{Depth: 1, NH: 2, NW: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Four per-patch BN nodes, all bound to the same state.
	count := 0
	for _, n := range res.Graph.Nodes {
		if b, ok := n.Op.(*nn.BatchNorm); ok {
			count++
			if b.State != state {
				t.Fatal("per-patch BN lost its shared state")
			}
		}
	}
	if count != 4 {
		t.Fatalf("found %d BN patch nodes, want 4", count)
	}
	xt := tensor.New(2, 3, 16, 16)
	xt.RandNormal(rng, 1)
	split := runGraph(t, res.Graph, store, graph.Feeds{"image": xt})
	if !split.Shape().Equal(tensor.Shape{2, 4, 16, 16}) {
		t.Fatalf("split BN output shape %v", split.Shape())
	}
}

// TestSplitEndToEndLossGraph: a full mini classifier (conv stack + loss)
// transforms and trains for a step without error.
func TestSplitEndToEndLossGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.New()
	x := g.Input("image", tensor.Shape{4, 3, 16, 16})
	labels := g.Input("labels", tensor.Shape{4})
	w1 := g.Param("c1.w", tensor.Shape{8, 3, 3, 3})
	b1 := g.Param("c1.b", tensor.Shape{8})
	c1 := g.Add("c1", nn.NewConv(3, 1, 1), x, w1, b1)
	r1 := g.Add("r1", nn.ReLU{}, c1)
	p1 := g.Add("p1", nn.NewMaxPool(2, 2), r1)
	f := g.Add("flat", nn.Flatten{}, p1)
	wf := g.Param("fc.w", tensor.Shape{5, 512})
	bf := g.Param("fc.b", tensor.Shape{5})
	fc := g.Add("fc", nn.Linear{}, f, wf, bf)
	loss := g.Add("loss", nn.SoftmaxCrossEntropy{}, fc, labels)
	g.SetOutput(loss)

	store := graph.NewParamStore()
	store.InitFromGraph(g, rng, nn.KaimingInit)
	res, err := Split(g, Config{Depth: 1, NH: 2, NW: 2})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := graph.NewExecutor(res.Graph, store)
	if err != nil {
		t.Fatal(err)
	}
	xt := tensor.New(4, 3, 16, 16)
	xt.RandNormal(rng, 1)
	lt := tensor.FromSlice([]float32{0, 1, 2, 3}, 4)
	outs, err := ex.Forward(graph.Feeds{"image": xt, "labels": lt})
	if err != nil {
		t.Fatal(err)
	}
	if l := outs[0].Data()[0]; l <= 0 {
		t.Fatalf("loss %v", l)
	}
	if err := ex.Backward(); err != nil {
		t.Fatal(err)
	}
}
