package core

import (
	"fmt"
	"math"
	"math/rand"

	"splitcnn/internal/graph"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
)

// windowOp is implemented by window-based operations (convolution and
// pooling): they expose their window geometry and can be re-instantiated
// with per-patch padding.
type windowOp interface {
	Window() tensor.ConvParams
	WithPad(tensor.Pad2D) graph.Op
}

// patchwiseOp is implemented by operations that may be applied to each
// spatial patch independently (ReLU, BN, dropout, residual add).
type patchwiseOp interface {
	PatchwiseSafe() bool
}

// Config parameterizes the Split-CNN transformation.
type Config struct {
	// Depth is the fraction of convolution layers to split, measured
	// from the network input (§5.2's "splitting depth").
	Depth float64
	// NH, NW are the number of spatial patches along height and width;
	// the paper's (h, w) 2-tuple. NH*NW is the "number of splits".
	NH, NW int
	// Policy picks the input split point within [lb, ub]; the default
	// PolicyMidpoint balances receptive-field loss between patches.
	Policy BoundaryPolicy
	// Stochastic enables §3.3's per-minibatch random split boundaries.
	Stochastic bool
	// Omega is the stochastic wiggle room ω ∈ [0, 0.5); the paper uses
	// the untuned constant 0.2.
	Omega float64
	// Rng drives stochastic boundary sampling (required when Stochastic).
	Rng *rand.Rand
}

// Result describes a completed transformation.
type Result struct {
	// Graph is the rewritten Split-CNN computation graph. It references
	// the same parameter names (and BN states) as the original, so both
	// resolve against one ParamStore.
	Graph *graph.Graph
	// SplitConvs / TotalConvs report the realized splitting depth.
	SplitConvs, TotalConvs int
	// RegionOps lists the names of the op nodes that were split.
	RegionOps []string
	// JoinNames lists the inserted ConcatPatches nodes.
	JoinNames []string
}

// RealizedDepth returns the fraction of convolution layers split.
func (r *Result) RealizedDepth() float64 {
	if r.TotalConvs == 0 {
		return 0
	}
	return float64(r.SplitConvs) / float64(r.TotalConvs)
}

type spatialScheme struct {
	h, w Scheme
}

func (s *spatialScheme) equal(o *spatialScheme) bool {
	return s.h.Equal(o.h) && s.w.Equal(o.w)
}

// Split transforms a regular CNN computation graph into a Split-CNN
// (§3): the first cfg.Depth fraction of convolution layers (plus the
// window/pointwise operations between them) is re-instantiated once per
// spatial patch with per-patch padding, preceded by patch extraction and
// followed by a patch join. The transformed graph shares parameter
// names and BN state with the original, so one ParamStore serves both.
func Split(g *graph.Graph, cfg Config) (res *Result, err error) {
	if cfg.NH < 1 || cfg.NW < 1 {
		return nil, fmt.Errorf("core.Split: invalid patch grid %dx%d", cfg.NH, cfg.NW)
	}
	if cfg.Depth < 0 || cfg.Depth > 1 {
		return nil, fmt.Errorf("core.Split: depth %v outside [0, 1]", cfg.Depth)
	}
	if cfg.Stochastic && cfg.Rng == nil {
		return nil, fmt.Errorf("core.Split: stochastic splitting requires an Rng")
	}
	topo, err := g.Topo()
	if err != nil {
		return nil, fmt.Errorf("core.Split: %w", err)
	}
	// graph.Add panics on shape errors; surface them as errors here,
	// they indicate an invalid split configuration for this graph.
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("core.Split: %v", r)
		}
	}()

	totalConvs := 0
	for _, n := range topo {
		if n.Kind == graph.KindOp && n.Op.Kind() == "conv" {
			totalConvs++
		}
	}
	target := int(math.Round(cfg.Depth * float64(totalConvs)))
	if target == 0 || cfg.NH*cfg.NW == 1 {
		return &Result{Graph: g, TotalConvs: totalConvs}, nil
	}

	region, splitConvs := selectRegion(topo, target)
	if len(region) == 0 {
		return &Result{Graph: g, TotalConvs: totalConvs}, nil
	}
	schemes, sources, err := assignSchemes(g, topo, region, cfg)
	if err != nil {
		return nil, err
	}
	return build(g, topo, region, schemes, sources, cfg, splitConvs, totalConvs)
}

// selectRegion grows a prefix-closed set of splittable op nodes from the
// graph inputs until the conv budget is exhausted.
func selectRegion(topo []*graph.Node, budget int) (map[int]bool, int) {
	region := make(map[int]bool)
	convs := 0
	for _, n := range topo {
		if n.Kind != graph.KindOp {
			continue
		}
		if !splittable(n.Op) {
			continue
		}
		ok := true
		for _, in := range n.Inputs {
			switch in.Kind {
			case graph.KindParam, graph.KindInput:
			case graph.KindOp:
				if !region[in.ID] {
					ok = false
				}
			}
		}
		if !ok {
			continue
		}
		if n.Op.Kind() == "conv" {
			if convs == budget {
				continue
			}
			convs++
		}
		region[n.ID] = true
	}
	return region, convs
}

func splittable(op graph.Op) bool {
	if _, ok := op.(windowOp); ok {
		return true
	}
	if p, ok := op.(patchwiseOp); ok {
		return p.PatchwiseSafe()
	}
	return false
}

// boundaryConstraint accumulates the legal placements of one split
// boundary across all consumers of a tensor: pointwise consumers pin it
// exactly, k >= s windows constrain it to [lb, ub] (Equations 1-2), and
// k < s windows accept any placement (footnote 1) while proposing lb as
// a fallback.
type boundaryConstraint struct {
	lo, hi      int
	constrained bool
	fallback    int
	hasFallback bool
}

func (b *boundaryConstraint) narrow(lo, hi int) bool {
	if !b.constrained {
		b.lo, b.hi, b.constrained = lo, hi, true
		return true
	}
	b.lo = max(b.lo, lo)
	b.hi = min(b.hi, hi)
	return b.lo <= b.hi
}

func (b *boundaryConstraint) propose(v int) {
	if !b.hasFallback {
		b.fallback, b.hasFallback = v, true
	}
}

func (b *boundaryConstraint) pick(policy BoundaryPolicy) int {
	if !b.constrained {
		return b.fallback
	}
	switch policy {
	case PolicyLower:
		return b.lo
	case PolicyUpper:
		return b.hi
	default:
		return (b.lo + b.hi) / 2
	}
}

// negotiate resolves one dimension's input scheme for tensor length l
// from the constraints collected across consumers.
func negotiate(cons []boundaryConstraint, l int, policy BoundaryPolicy) (Scheme, error) {
	s := make(Scheme, len(cons)+1)
	for i := range cons {
		if !cons[i].constrained && !cons[i].hasFallback {
			return nil, fmt.Errorf("boundary %d has no constraint and no fallback", i+1)
		}
		s[i+1] = cons[i].pick(policy)
	}
	if err := s.Validate(l); err != nil {
		return nil, err
	}
	return s, nil
}

// assignSchemes walks the region in reverse topological order assigning
// each region node (and each non-param external source feeding the
// region) its output split scheme. Frontier nodes — region nodes with no
// in-region consumer — receive the generated join scheme; interior nodes
// receive a scheme negotiated from the interval constraints of all their
// region consumers (§3.2's multi-layer condition O^m = I^{m+1});
// an empty intersection is a genuine conflict and an error.
func assignSchemes(g *graph.Graph, topo []*graph.Node, region map[int]bool, cfg Config) (map[int]*spatialScheme, map[int]*spatialScheme, error) {
	consumers := g.Consumers()
	schemes := make(map[int]*spatialScheme)
	sources := make(map[int]*spatialScheme)

	// constrainDim folds consumer c's requirement on tensor n into cons.
	constrainDim := func(cons []boundaryConstraint, cs Scheme, w Window1D, c *graph.Node) error {
		for i := 1; i < len(cs); i++ {
			b := &cons[i-1]
			if w.K == 0 { // pointwise: exact requirement
				if !b.narrow(cs[i], cs[i]) {
					return fmt.Errorf("scheme conflict at boundary %d demanded by %s", i, c)
				}
				continue
			}
			lb, ub := w.LowerBound(cs[i]), w.UpperBound(cs[i])
			if ub < lb { // k < s: fully flexible, propose the exact crop point
				b.propose(lb)
				continue
			}
			if !b.narrow(lb, ub) {
				return fmt.Errorf("scheme conflict at boundary %d: %s needs [%d, %d]", i, c, lb, ub)
			}
		}
		return nil
	}

	requirement := func(n *graph.Node) (*spatialScheme, error) {
		consH := make([]boundaryConstraint, cfg.NH-1)
		consW := make([]boundaryConstraint, cfg.NW-1)
		any := false
		for _, c := range consumers[n.ID] {
			if !region[c.ID] {
				continue
			}
			// Window ops read their data at input 0; a tensor feeding a
			// window op's non-data slot would be a parameter, which
			// never reaches here.
			cs := schemes[c.ID]
			var wh, ww Window1D
			if w, ok := c.Op.(windowOp); ok {
				p := w.Window()
				wh = Window1D{K: p.KH, S: p.SH, Pb: p.Pad.Top, Pe: p.Pad.Bottom}
				ww = Window1D{K: p.KW, S: p.SW, Pb: p.Pad.Left, Pe: p.Pad.Right}
			}
			if err := constrainDim(consH, cs.h, wh, c); err != nil {
				return nil, fmt.Errorf("%s (H): %w", n, err)
			}
			if err := constrainDim(consW, cs.w, ww, c); err != nil {
				return nil, fmt.Errorf("%s (W): %w", n, err)
			}
			any = true
		}
		if !any {
			return nil, nil
		}
		h, err := negotiate(consH, n.Shape.H(), cfg.Policy)
		if err != nil {
			return nil, fmt.Errorf("%s (H): %w", n, err)
		}
		w, err := negotiate(consW, n.Shape.W(), cfg.Policy)
		if err != nil {
			return nil, fmt.Errorf("%s (W): %w", n, err)
		}
		return &spatialScheme{h: h, w: w}, nil
	}

	gen := func(l, n int) (Scheme, error) {
		if cfg.Stochastic {
			return StochasticScheme(l, n, cfg.Omega, cfg.Rng)
		}
		return EqualScheme(l, n)
	}

	for i := len(topo) - 1; i >= 0; i-- {
		n := topo[i]
		if region[n.ID] {
			req, err := requirement(n)
			if err != nil {
				return nil, nil, err
			}
			if req == nil { // frontier: generate the join scheme
				h, err := gen(n.Shape.H(), cfg.NH)
				if err != nil {
					return nil, nil, fmt.Errorf("join scheme for %s: %w", n, err)
				}
				w, err := gen(n.Shape.W(), cfg.NW)
				if err != nil {
					return nil, nil, fmt.Errorf("join scheme for %s: %w", n, err)
				}
				req = &spatialScheme{h: h, w: w}
			}
			schemes[n.ID] = req
			continue
		}
		// External source feeding region nodes (e.g. the image input).
		if n.Kind == graph.KindParam {
			continue
		}
		feedsRegion := false
		for _, c := range consumers[n.ID] {
			if region[c.ID] {
				feedsRegion = true
			}
		}
		if !feedsRegion {
			continue
		}
		req, err := requirement(n)
		if err != nil {
			return nil, nil, err
		}
		if req == nil {
			return nil, nil, fmt.Errorf("source %s feeds region but no scheme derived", n)
		}
		sources[n.ID] = req
	}
	return schemes, sources, nil
}

// build reconstructs the graph with the region instantiated per patch.
func build(g *graph.Graph, topo []*graph.Node, region map[int]bool, schemes, sources map[int]*spatialScheme, cfg Config, splitConvs, totalConvs int) (*Result, error) {
	nPatch := cfg.NH * cfg.NW
	out := graph.New()
	res := &Result{Graph: out, SplitConvs: splitConvs, TotalConvs: totalConvs}

	mapped := make(map[int]*graph.Node)    // old ID -> new node (unsplit world)
	patches := make(map[int][]*graph.Node) // old ID -> per-patch new nodes
	params := make(map[string]*graph.Node)
	joins := make(map[int]*graph.Node)

	getParam := func(n *graph.Node) *graph.Node {
		if p, ok := params[n.Name]; ok {
			return p
		}
		p := out.Param(n.Name, n.Shape)
		params[n.Name] = p
		return p
	}

	// sourcePatches lazily creates the ExtractPatch nodes for an
	// external source.
	sourcePatches := func(n *graph.Node) []*graph.Node {
		if ps, ok := patches[n.ID]; ok {
			return ps
		}
		sch := sources[n.ID]
		base := mapped[n.ID]
		ps := make([]*graph.Node, 0, nPatch)
		for i := 0; i < cfg.NH; i++ {
			h0 := sch.h[i]
			h1 := n.Shape.H()
			if i+1 < cfg.NH {
				h1 = sch.h[i+1]
			}
			for j := 0; j < cfg.NW; j++ {
				w0 := sch.w[j]
				w1 := n.Shape.W()
				if j+1 < cfg.NW {
					w1 = sch.w[j+1]
				}
				op := &nn.ExtractPatch{H0: h0, H1: h1, W0: w0, W1: w1}
				ps = append(ps, out.Add(fmt.Sprintf("%s.patch%d_%d", n.Name, i, j), op, base))
			}
		}
		patches[n.ID] = ps
		return ps
	}

	// join returns (creating on demand) the ConcatPatches node
	// reassembling a region node for unsplit consumers.
	join := func(n *graph.Node) *graph.Node {
		if j, ok := joins[n.ID]; ok {
			return j
		}
		op := &nn.ConcatPatches{NH: cfg.NH, NW: cfg.NW}
		j := out.Add(n.Name+".join", op, patches[n.ID]...)
		joins[n.ID] = j
		res.JoinNames = append(res.JoinNames, j.Name)
		return j
	}

	// patchInput resolves input `in` of a region op for patch p.
	patchInput := func(in *graph.Node, p int) *graph.Node {
		switch {
		case in.Kind == graph.KindParam:
			return getParam(in)
		case region[in.ID]:
			return patches[in.ID][p]
		default:
			return sourcePatches(in)[p]
		}
	}

	// Construction order is execution order (the graph is executed and
	// memory-planned in insertion order), so the patch chains are
	// emitted serially — patch 0's entire multi-layer chain, then patch
	// 1's, and so on. This is what breaks the memory bottleneck "into
	// smaller pieces and spreads them across the forward propagation
	// pass" (§2.4): while patch p+1 computes, HMMS offloads patch p's
	// intermediate results, and only one patch-sized convolution
	// workspace is ever live (§6.3).
	for _, n := range topo {
		if n.Kind == graph.KindInput {
			mapped[n.ID] = out.Input(n.Name, n.Shape)
		}
	}
	// Per-patch paddings depend only on the node; compute them once.
	nodePads := make(map[int][]tensor.Pad2D)
	for _, n := range topo {
		if n.Kind != graph.KindOp || !region[n.ID] {
			continue
		}
		var inSch *spatialScheme
		if len(n.Inputs) > 0 {
			src := n.Inputs[0]
			if s, ok := schemes[src.ID]; ok {
				inSch = s
			} else {
				inSch = sources[src.ID]
			}
		}
		nodePads[n.ID] = patchPads(n, schemes[n.ID], inSch, cfg)
	}
	for p := 0; p < nPatch; p++ {
		for _, n := range topo {
			if n.Kind != graph.KindOp || !region[n.ID] {
				continue
			}
			pads := nodePads[n.ID]
			if p == 0 {
				res.RegionOps = append(res.RegionOps, n.Name)
				patches[n.ID] = make([]*graph.Node, nPatch)
			}
			ins := make([]*graph.Node, len(n.Inputs))
			for k, in := range n.Inputs {
				ins[k] = patchInput(in, p)
			}
			op := n.Op
			if pads != nil {
				op = n.Op.(windowOp).WithPad(pads[p])
			}
			patches[n.ID][p] = out.Add(fmt.Sprintf("%s.p%d", n.Name, p), op, ins...)
		}
	}
	for _, n := range topo {
		if n.Kind != graph.KindOp || region[n.ID] {
			continue
		}
		ins := make([]*graph.Node, len(n.Inputs))
		for k, in := range n.Inputs {
			switch {
			case in.Kind == graph.KindParam:
				ins[k] = getParam(in)
			case region[in.ID]:
				ins[k] = join(in)
			default:
				ins[k] = mapped[in.ID]
			}
		}
		mapped[n.ID] = out.Add(n.Name, n.Op, ins...)
	}

	outs := make([]*graph.Node, len(g.Outputs))
	for i, o := range g.Outputs {
		switch {
		case region[o.ID]:
			outs[i] = join(o)
		default:
			outs[i] = mapped[o.ID]
		}
	}
	out.SetOutput(outs...)
	return res, nil
}

// patchPads computes, for a window op whose output scheme is sch and
// whose (negotiated) input scheme is in, the per-patch 2-D padding in
// row-major patch order; nil for pointwise ops.
func patchPads(n *graph.Node, sch, in *spatialScheme, cfg Config) []tensor.Pad2D {
	w, ok := n.Op.(windowOp)
	if !ok {
		return nil
	}
	p := w.Window()
	wh := Window1D{K: p.KH, S: p.SH, Pb: p.Pad.Top, Pe: p.Pad.Bottom}
	ww := Window1D{K: p.KW, S: p.SW, Pb: p.Pad.Left, Pe: p.Pad.Right}
	padsH, err := Paddings(in.h, sch.h, wh)
	if err != nil {
		panic(err) // assignSchemes already validated part counts
	}
	padsW, err := Paddings(in.w, sch.w, ww)
	if err != nil {
		panic(err)
	}
	out := make([]tensor.Pad2D, 0, cfg.NH*cfg.NW)
	for i := 0; i < cfg.NH; i++ {
		for j := 0; j < cfg.NW; j++ {
			out = append(out, tensor.Pad2D{
				Top: padsH[i].B, Bottom: padsH[i].E,
				Left: padsW[j].B, Right: padsW[j].E,
			})
		}
	}
	return out
}
