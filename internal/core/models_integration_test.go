package core_test

import (
	"math/rand"
	"testing"

	"splitcnn/internal/core"
	"splitcnn/internal/graph"
	"splitcnn/internal/models"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
)

// runModel executes one forward+backward pass of a (possibly split)
// model graph against a shared store.
func runModel(t *testing.T, g *graph.Graph, m *models.Model, store *graph.ParamStore, rng *rand.Rand) float64 {
	t.Helper()
	ex, err := graph.NewExecutor(g, store)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(m.Input.Shape...)
	x.RandNormal(rng, 1)
	labels := tensor.New(m.Labels.Shape...)
	for i := range labels.Data() {
		labels.Data()[i] = float32(i % m.Classes)
	}
	outs, err := ex.Forward(graph.Feeds{"image": x, "labels": labels})
	if err != nil {
		t.Fatal(err)
	}
	if err := ex.Backward(); err != nil {
		t.Fatal(err)
	}
	return float64(outs[0].Data()[0])
}

// TestSplitVGG19AtPaperDepths transforms the CIFAR VGG-19 at every depth
// Figure 4 sweeps and verifies the realized depth tracks the request.
func TestSplitVGG19AtPaperDepths(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, depth := range []float64{0.125, 0.25, 0.375, 0.5} {
		m := models.VGG19CIFAR(2, models.Config{WidthDiv: 16})
		store := graph.NewParamStore()
		store.InitFromGraph(m.Graph, rng, nn.KaimingInit)
		res, err := core.Split(m.Graph, core.Config{Depth: depth, NH: 2, NW: 2})
		if err != nil {
			t.Fatalf("depth %v: %v", depth, err)
		}
		want := int(depth*16 + 0.5)
		if res.SplitConvs != want {
			t.Fatalf("depth %v: split %d convs, want %d", depth, res.SplitConvs, want)
		}
		store.InitFromGraph(res.Graph, rng, nn.KaimingInit)
		if store.NumElems() != graphParamElems(res.Graph, store) {
			t.Fatalf("depth %v: split graph references unknown params", depth)
		}
		loss := runModel(t, res.Graph, m, store, rng)
		if loss <= 0 || loss > 50 {
			t.Fatalf("depth %v: loss %v implausible", depth, loss)
		}
	}
}

func graphParamElems(g *graph.Graph, store *graph.ParamStore) int64 {
	seen := map[string]bool{}
	var n int64
	for _, node := range g.Params() {
		if seen[node.Name] {
			continue
		}
		seen[node.Name] = true
		n += int64(store.Lookup(node.Name).Value.Elems())
	}
	return n
}

// TestSplitResNet18AcrossDownsampleBlocks drives the split region
// through stage-2's downsampling block: the 3x3/2 conv and the 1x1/2
// projection consume the block input under different window geometries,
// exercising the interval negotiation (the projection's empty [lb, ub]
// defers to the 3x3's interval per footnote 1).
func TestSplitResNet18AcrossDownsampleBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := models.ResNet18CIFAR(2, models.Config{WidthDiv: 16})
	total := m.ConvCount() // 20 with projections
	for _, depth := range []float64{0.25, 0.5} {
		store := graph.NewParamStore()
		store.InitFromGraph(m.Graph, rng, nn.KaimingInit)
		res, err := core.Split(m.Graph, core.Config{Depth: depth, NH: 2, NW: 2})
		if err != nil {
			t.Fatalf("depth %v: %v", depth, err)
		}
		if res.TotalConvs != total {
			t.Fatalf("total convs %d, want %d", res.TotalConvs, total)
		}
		if res.SplitConvs == 0 {
			t.Fatalf("depth %v split nothing", depth)
		}
		store.InitFromGraph(res.Graph, rng, nn.KaimingInit)
		loss := runModel(t, res.Graph, m, store, rng)
		if loss <= 0 || loss > 50 {
			t.Fatalf("depth %v: loss %v implausible", depth, loss)
		}
	}
}

// TestSplitAlexNetLargeKernels exercises the 11x11/4 and 5x5/1 windows.
func TestSplitAlexNetLargeKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := models.AlexNet(models.Config{BatchSize: 2, Classes: 10, InputC: 3, InputH: 64, InputW: 64, WidthDiv: 16})
	store := graph.NewParamStore()
	store.InitFromGraph(m.Graph, rng, nn.KaimingInit)
	res, err := core.Split(m.Graph, core.Config{Depth: 0.6, NH: 2, NW: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.SplitConvs != 3 { // 60% of 5
		t.Fatalf("split %d convs, want 3", res.SplitConvs)
	}
	store.InitFromGraph(res.Graph, rng, nn.KaimingInit)
	loss := runModel(t, res.Graph, m, store, rng)
	if loss <= 0 {
		t.Fatalf("loss %v", loss)
	}
}

// TestStochasticSplitTrainsAndEvalsUnsplit is the §3.3 contract: train
// steps run on per-minibatch stochastic rewrites while evaluation runs
// the original unsplit graph with the same parameters.
func TestStochasticSplitTrainsAndEvalsUnsplit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := models.VGG19CIFAR(2, models.Config{WidthDiv: 16})
	store := graph.NewParamStore()
	store.InitFromGraph(m.Graph, rng, nn.KaimingInit)
	for step := 0; step < 3; step++ {
		res, err := core.Split(m.Graph, core.Config{
			Depth: 0.5, NH: 2, NW: 2, Stochastic: true, Omega: 0.2, Rng: rng,
		})
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		store.InitFromGraph(res.Graph, rng, nn.KaimingInit)
		store.ZeroGrads()
		_ = runModel(t, res.Graph, m, store, rng)
		for _, p := range store.All() {
			tensor.AXPY(p.Value, -0.01, p.Grad)
		}
	}
	// Evaluate on the unsplit graph: must run with the trained store.
	loss := runModel(t, m.Graph, m, store, rng)
	if loss <= 0 || loss > 100 {
		t.Fatalf("unsplit eval loss %v", loss)
	}
}
