package core

import (
	"math/rand"
	"testing"

	"splitcnn/internal/graph"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
)

// TestAllPoliciesPreserveShapes: lower/midpoint/upper boundary policies
// all yield executable split graphs with unchanged output shapes.
func TestAllPoliciesPreserveShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := buildConvGraph(1, 3, 16, 16, 4, 3, 1, 1)
	store := graph.NewParamStore()
	store.InitFromGraph(g, rng, nn.KaimingInit)
	x := tensor.New(1, 3, 16, 16)
	x.RandNormal(rng, 1)
	base := runGraph(t, g, store, graph.Feeds{"image": x})
	for _, p := range []BoundaryPolicy{PolicyLower, PolicyMidpoint, PolicyUpper} {
		res, err := Split(g, Config{Depth: 1, NH: 2, NW: 2, Policy: p})
		if err != nil {
			t.Fatalf("policy %v: %v", p, err)
		}
		out := runGraph(t, res.Graph, store, graph.Feeds{"image": x})
		if !out.Shape().Equal(base.Shape()) {
			t.Fatalf("policy %v: shape %v vs %v", p, out.Shape(), base.Shape())
		}
	}
}

// TestPolicyBoundaryPadding: PolicyLower gives the right patch its full
// receptive field (zero begin-padding beyond the global), PolicyUpper
// the left patch (zero end-padding).
func TestPolicyBoundaryPadding(t *testing.T) {
	w := Window1D{K: 3, S: 1, Pb: 1, Pe: 1}
	out := Scheme{0, 8} // output length 16
	lowIn, err := InputScheme(out, w, 16, PolicyLower)
	if err != nil {
		t.Fatal(err)
	}
	lowPads, _ := Paddings(lowIn, out, w)
	if lowPads[1].B != 0 || lowPads[0].E != w.K-w.S {
		t.Fatalf("PolicyLower pads %+v, want right patch begin 0", lowPads)
	}
	upIn, err := InputScheme(out, w, 16, PolicyUpper)
	if err != nil {
		t.Fatal(err)
	}
	upPads, _ := Paddings(upIn, out, w)
	if upPads[0].E != 0 || upPads[1].B != w.K-w.S {
		t.Fatalf("PolicyUpper pads %+v, want left patch end 0", upPads)
	}
}

// TestMultiFrontierMidBlockCut: cutting a residual block in the middle
// produces two joins (the branch tensor and the skip tensor), and the
// graph still executes.
func TestMultiFrontierMidBlockCut(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.New()
	x := g.Input("image", tensor.Shape{1, 4, 16, 16})
	w1 := g.Param("c1.w", tensor.Shape{4, 4, 3, 3})
	b1 := g.Param("c1.b", tensor.Shape{4})
	c1 := g.Add("c1", nn.NewConv(3, 1, 1), x, w1, b1) // in region (budget 1)
	w2 := g.Param("c2.w", tensor.Shape{4, 4, 3, 3})
	b2 := g.Param("c2.b", tensor.Shape{4})
	c2 := g.Add("c2", nn.NewConv(3, 1, 1), c1, w2, b2) // outside (budget spent)
	add := g.Add("add", &nn.Add{N: 2}, c2, c1)         // consumes region tensor c1
	g.SetOutput(add)

	store := graph.NewParamStore()
	store.InitFromGraph(g, rng, nn.KaimingInit)
	res, err := Split(g, Config{Depth: 0.5, NH: 2, NW: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.SplitConvs != 1 {
		t.Fatalf("split %d convs, want 1", res.SplitConvs)
	}
	if len(res.JoinNames) != 1 {
		t.Fatalf("joins %v: c1 is the single frontier feeding both c2 and add", res.JoinNames)
	}
	xt := tensor.New(1, 4, 16, 16)
	xt.RandNormal(rng, 1)
	out := runGraph(t, res.Graph, store, graph.Feeds{"image": xt})
	if !out.Shape().Equal(tensor.Shape{1, 4, 16, 16}) {
		t.Fatalf("shape %v", out.Shape())
	}
}

// TestSplitPatchSerialOrder: patch chains must be emitted serially (all
// of patch 0's layers before patch 1's) — the property that lets HMMS
// offload one patch while the next computes.
func TestSplitPatchSerialOrder(t *testing.T) {
	g := chainGraph(1)
	res, err := Split(g, Config{Depth: 1, NH: 2, NW: 2})
	if err != nil {
		t.Fatal(err)
	}
	lastOfPatch := map[int]int{}
	firstOfPatch := map[int]int{}
	for _, n := range res.Graph.Nodes {
		if n.Kind != graph.KindOp {
			continue
		}
		var p int
		if k, err := fmtSscanfPatch(n.Name, &p); !k || err != nil {
			continue
		}
		if _, ok := firstOfPatch[p]; !ok {
			firstOfPatch[p] = n.ID
		}
		lastOfPatch[p] = n.ID
	}
	for p := 0; p < 3; p++ {
		if lastOfPatch[p] > firstOfPatch[p+1] {
			t.Fatalf("patch %d (ends %d) interleaves with patch %d (starts %d)",
				p, lastOfPatch[p], p+1, firstOfPatch[p+1])
		}
	}
}

// fmtSscanfPatch extracts the trailing ".pN" patch index of a node name
// produced by the transform (extract/join nodes do not match).
func fmtSscanfPatch(name string, p *int) (bool, error) {
	for i := len(name) - 1; i > 0; i-- {
		if name[i] == 'p' && name[i-1] == '.' {
			v := 0
			if i+1 >= len(name) {
				return false, nil
			}
			for j := i + 1; j < len(name); j++ {
				if name[j] < '0' || name[j] > '9' {
					return false, nil
				}
				v = v*10 + int(name[j]-'0')
			}
			*p = v
			return true, nil
		}
	}
	return false, nil
}

// TestRealizedDepth accessor.
func TestRealizedDepth(t *testing.T) {
	r := &Result{SplitConvs: 3, TotalConvs: 12}
	if d := r.RealizedDepth(); d != 0.25 {
		t.Fatalf("realized depth %v", d)
	}
	empty := &Result{}
	if empty.RealizedDepth() != 0 {
		t.Fatal("zero-conv graph should report depth 0")
	}
}
