// Package device is a discrete-event model of the paper's execution
// platform: a GPU-class accelerator with one compute stream and several
// memory streams, attached to the host over a single shared link
// (NVLink). It is the detailed engine behind the fast analytical replay
// in internal/sim: where sim computes stall times arithmetically, this
// package executes an explicit event calendar, models per-stream FIFO
// queues with link arbitration, enforces device memory capacity against
// the static plan's pool occupancy over time, and emits exact stream
// timelines (the nvprof analogue of Figure 9).
//
// Terminology follows CUDA: work is issued to streams in order; a
// stream executes its items back-to-back; events record completion
// points; a stream may be told to wait on an event recorded on another
// stream (cudaStreamWaitEvent), which is how the offload plan's
// "synchronize compute with memory stream m" points are realized.
package device

import (
	"fmt"
	"sort"

	"splitcnn/internal/trace"
)

// StreamID identifies a stream. Stream 0 is always the compute stream.
type StreamID int

// ComputeStream is the stream kernels execute on.
const ComputeStream StreamID = 0

// EventID identifies a recorded event.
type EventID int

// itemKind discriminates work items.
type itemKind int

const (
	kindKernel itemKind = iota
	kindCopy
	kindRecord
	kindWait
)

// workItem is one entry of a stream's FIFO queue.
type workItem struct {
	kind     itemKind
	label    string
	duration float64 // kernels
	bytes    int64   // copies
	event    EventID // record / wait
}

// Device is a discrete-event accelerator model. Create one with New,
// enqueue work with Launch/Copy/Record/Wait, then call Run.
type Device struct {
	// LinkBandwidth is the host-link bandwidth in bytes/s shared by all
	// memory streams (copies arbitrate FIFO by issue order).
	LinkBandwidth float64
	// MemCapacity, when positive, bounds device memory; exceeding it
	// makes Run fail (used to validate static plans).
	MemCapacity int64
	// Recorder, when non-nil, receives every retired kernel and copy as
	// a span at execution time — the live feed behind the Chrome-trace
	// export of simulated timelines. Stream 0 maps to "compute", memory
	// streams to "mem<id>", one trace lane per CUDA-style stream.
	Recorder trace.Recorder

	streams   map[StreamID][]workItem
	streamIDs []StreamID
	nextEvent EventID
	// memory occupancy deltas keyed by (stream, item index): applied
	// when that item completes (frees) or starts (allocations).
	allocAt map[int64]int64
	freeAt  map[int64]int64
}

// New returns a device with the given link bandwidth.
func New(linkBandwidth float64) *Device {
	return &Device{
		LinkBandwidth: linkBandwidth,
		streams:       map[StreamID][]workItem{ComputeStream: nil},
		streamIDs:     []StreamID{ComputeStream},
		allocAt:       map[int64]int64{},
		freeAt:        map[int64]int64{},
	}
}

// NewStream adds a memory stream and returns its ID.
func (d *Device) NewStream() StreamID {
	id := StreamID(len(d.streamIDs))
	d.streamIDs = append(d.streamIDs, id)
	d.streams[id] = nil
	return id
}

func (d *Device) push(s StreamID, it workItem) (StreamID, int) {
	if _, ok := d.streams[s]; !ok {
		panic(fmt.Sprintf("device: unknown stream %d", s))
	}
	d.streams[s] = append(d.streams[s], it)
	return s, len(d.streams[s]) - 1
}

func key(s StreamID, idx int) int64 { return int64(s)<<32 | int64(idx) }

// Launch enqueues a kernel of the given duration on the compute stream.
// It returns a handle usable with AllocAt/FreeAt.
func (d *Device) Launch(label string, duration float64) Handle {
	s, i := d.push(ComputeStream, workItem{kind: kindKernel, label: label, duration: duration})
	return Handle{s, i}
}

// Copy enqueues a host-link transfer on a memory stream.
func (d *Device) Copy(s StreamID, label string, bytes int64) Handle {
	if s == ComputeStream {
		panic("device: copies go to memory streams")
	}
	h, i := d.push(s, workItem{kind: kindCopy, label: label, bytes: bytes})
	return Handle{h, i}
}

// Record enqueues an event-record marker on a stream and returns the
// event.
func (d *Device) Record(s StreamID) EventID {
	ev := d.nextEvent
	d.nextEvent++
	d.push(s, workItem{kind: kindRecord, event: ev})
	return ev
}

// Wait enqueues a wait-for-event on a stream: later items on s do not
// start until the event has been recorded (completed) on its stream.
func (d *Device) Wait(s StreamID, ev EventID) {
	d.push(s, workItem{kind: kindWait, event: ev})
}

// Handle names one enqueued item for memory accounting.
type Handle struct {
	stream StreamID
	index  int
}

// AllocAt registers a device-memory allocation of n bytes taking effect
// when the item starts.
func (d *Device) AllocAt(h Handle, n int64) { d.allocAt[key(h.stream, h.index)] += n }

// FreeAt registers a device-memory release of n bytes taking effect when
// the item completes.
func (d *Device) FreeAt(h Handle, n int64) { d.freeAt[key(h.stream, h.index)] += n }

// StreamName renders a stream ID as a trace lane name: "compute" for
// the compute stream, "mem<id>" for memory streams.
func StreamName(s StreamID) string {
	if s == ComputeStream {
		return "compute"
	}
	return fmt.Sprintf("mem%d", int(s))
}

// Span is one completed item on the timeline.
type Span struct {
	Stream StreamID
	Label  string
	Start  float64
	End    float64
}

// Trace is the outcome of Run.
type Trace struct {
	Spans []Span
	// Total is the completion time of the last item.
	Total float64
	// PeakMemory is the maximum device occupancy observed (only
	// meaningful when Alloc/Free bookkeeping was supplied).
	PeakMemory int64
	// ComputeBusy is the fraction of Total the compute stream executed
	// kernels.
	ComputeBusy float64
}

// Emit replays the completed timeline into a trace recorder, one lane
// per stream — the post-hoc counterpart of setting Device.Recorder
// before Run.
func (t *Trace) Emit(rec trace.Recorder) {
	for _, sp := range t.Spans {
		rec.Span(StreamName(sp.Stream), sp.Label, sp.Start, sp.End)
	}
}

// Run executes the event calendar and returns the trace. The algorithm
// is iterative list scheduling: repeatedly pick, among the head items of
// all streams, one whose dependencies (prior item on the same stream,
// awaited events, link availability for copies) are satisfied, and
// retire it. Deadlocks (circular waits) are reported as errors.
func (d *Device) Run() (*Trace, error) {
	heads := map[StreamID]int{}
	streamFree := map[StreamID]float64{}
	eventDone := map[EventID]float64{}
	eventKnown := map[EventID]bool{}
	var linkFree float64
	tr := &Trace{}
	var mem, peak int64
	remaining := 0
	for _, s := range d.streamIDs {
		remaining += len(d.streams[s])
	}

	// memEvents accumulates (time, delta) pairs; applied in time order
	// at the end for the peak computation.
	type memEvent struct {
		t     float64
		delta int64
	}
	var memEvents []memEvent

	retire := func(s StreamID, start, end float64, it workItem, idx int) {
		if it.kind == kindKernel || it.kind == kindCopy {
			tr.Spans = append(tr.Spans, Span{Stream: s, Label: it.label, Start: start, End: end})
			if d.Recorder != nil {
				d.Recorder.Span(StreamName(s), it.label, start, end)
			}
			if a := d.allocAt[key(s, idx)]; a != 0 {
				memEvents = append(memEvents, memEvent{start, a})
			}
			if f := d.freeAt[key(s, idx)]; f != 0 {
				memEvents = append(memEvents, memEvent{end, -f})
			}
		}
		streamFree[s] = end
		heads[s]++
		remaining--
	}

	for remaining > 0 {
		// Phase 1: retire every head item that does not contend for the
		// link (kernels, records, satisfiable waits), to a fixpoint.
		progressed := true
		for progressed {
			progressed = false
			for _, s := range d.streamIDs {
				idx := heads[s]
				q := d.streams[s]
				if idx >= len(q) {
					continue
				}
				it := q[idx]
				ready := streamFree[s]
				switch it.kind {
				case kindWait:
					if eventKnown[it.event] {
						retire(s, ready, max(ready, eventDone[it.event]), it, idx)
						progressed = true
					}
				case kindRecord:
					eventDone[it.event] = ready
					eventKnown[it.event] = true
					retire(s, ready, ready, it, idx)
					progressed = true
				case kindKernel:
					retire(s, ready, ready+it.duration, it, idx)
					progressed = true
				}
			}
		}
		if remaining == 0 {
			break
		}
		// Phase 2: the link is a shared FIFO resource — grant it to the
		// head copy that becomes ready earliest.
		bestStream := StreamID(-1)
		bestReady := 0.0
		for _, s := range d.streamIDs {
			idx := heads[s]
			q := d.streams[s]
			if idx >= len(q) || q[idx].kind != kindCopy {
				continue
			}
			if bestStream < 0 || streamFree[s] < bestReady {
				bestStream, bestReady = s, streamFree[s]
			}
		}
		if bestStream < 0 {
			return nil, fmt.Errorf("device: deadlock — circular event waits among streams")
		}
		idx := heads[bestStream]
		it := d.streams[bestStream][idx]
		start := max(bestReady, linkFree)
		end := start + float64(it.bytes)/d.LinkBandwidth
		linkFree = end
		retire(bestStream, start, end, it, idx)
	}
	var busy float64
	for _, sp := range tr.Spans {
		if sp.End > tr.Total {
			tr.Total = sp.End
		}
		if sp.Stream == ComputeStream {
			busy += sp.End - sp.Start
		}
	}
	if tr.Total > 0 {
		tr.ComputeBusy = busy / tr.Total
	}
	sort.SliceStable(memEvents, func(i, j int) bool {
		if memEvents[i].t != memEvents[j].t {
			return memEvents[i].t < memEvents[j].t
		}
		// frees before allocations at equal times
		return memEvents[i].delta < memEvents[j].delta
	})
	for _, e := range memEvents {
		mem += e.delta
		if mem > peak {
			peak = mem
		}
	}
	tr.PeakMemory = peak
	if d.MemCapacity > 0 && peak > d.MemCapacity {
		return tr, fmt.Errorf("device: peak memory %d exceeds capacity %d", peak, d.MemCapacity)
	}
	sort.SliceStable(tr.Spans, func(i, j int) bool { return tr.Spans[i].Start < tr.Spans[j].Start })
	return tr, nil
}
