package device_test

import (
	"math"
	"testing"

	"splitcnn/internal/device"
)

func approx(t *testing.T, got, want float64, what string) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("%s = %v, want %v", what, got, want)
	}
}

func TestKernelsRunBackToBack(t *testing.T) {
	d := device.New(1e9)
	d.Launch("a", 1)
	d.Launch("b", 2)
	tr, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, tr.Total, 3, "total")
	approx(t, tr.ComputeBusy, 1, "busy")
	if len(tr.Spans) != 2 || tr.Spans[1].Start != 1 {
		t.Fatalf("spans %+v", tr.Spans)
	}
}

func TestCopyOverlapsCompute(t *testing.T) {
	d := device.New(100) // 100 B/s
	m := d.NewStream()
	d.Copy(m, "x", 200) // 2 s
	d.Launch("k", 3)
	tr, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Copy and kernel overlap fully: total 3 s.
	approx(t, tr.Total, 3, "total")
}

func TestWaitStallsCompute(t *testing.T) {
	d := device.New(100)
	m := d.NewStream()
	d.Copy(m, "x", 500) // 5 s
	ev := d.Record(m)
	d.Launch("k1", 1)
	d.Wait(device.ComputeStream, ev)
	d.Launch("k2", 1)
	tr, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	// k2 cannot start before the copy completes at t=5.
	approx(t, tr.Total, 6, "total")
}

func TestLinkIsSharedFIFO(t *testing.T) {
	d := device.New(100)
	m1 := d.NewStream()
	m2 := d.NewStream()
	d.Copy(m1, "a", 100) // 1 s
	d.Copy(m2, "b", 100) // must queue: 1..2 s
	ev := d.Record(m2)
	d.Wait(device.ComputeStream, ev)
	d.Launch("k", 0.5)
	tr, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, tr.Total, 2.5, "total")
}

func TestLinkGrantsEarliestReadyCopy(t *testing.T) {
	d := device.New(100)
	slow := d.NewStream()
	fast := d.NewStream()
	// The slow stream's copy only becomes ready at t=3 (waits on a
	// kernel event); the fast stream's is ready immediately. The fast
	// one must win the link even if the slow stream was created first.
	d.Launch("k", 3)
	ev := d.Record(device.ComputeStream)
	d.Wait(slow, ev)
	d.Copy(slow, "late", 100)
	d.Copy(fast, "early", 100)
	tr, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	var early, late device.Span
	for _, s := range tr.Spans {
		switch s.Label {
		case "early":
			early = s
		case "late":
			late = s
		}
	}
	approx(t, early.Start, 0, "early copy start")
	approx(t, late.Start, 3, "late copy start")
}

func TestCrossStreamEventChain(t *testing.T) {
	d := device.New(1000)
	m1 := d.NewStream()
	m2 := d.NewStream()
	d.Launch("k1", 1)
	e1 := d.Record(device.ComputeStream)
	d.Wait(m1, e1)
	d.Copy(m1, "c1", 1000) // t=1..2
	e2 := d.Record(m1)
	d.Wait(m2, e2)
	d.Copy(m2, "c2", 1000) // t=2..3
	e3 := d.Record(m2)
	d.Wait(device.ComputeStream, e3)
	d.Launch("k2", 1) // t=3..4
	tr, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, tr.Total, 4, "total")
}

func TestMemoryAccounting(t *testing.T) {
	d := device.New(1e9)
	h1 := d.Launch("a", 1)
	d.AllocAt(h1, 100)
	h2 := d.Launch("b", 1)
	d.AllocAt(h2, 50)
	d.FreeAt(h2, 150)
	h3 := d.Launch("c", 1)
	d.AllocAt(h3, 30)
	tr, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tr.PeakMemory != 150 {
		t.Fatalf("peak %d, want 150", tr.PeakMemory)
	}
}

func TestCapacityEnforced(t *testing.T) {
	d := device.New(1e9)
	d.MemCapacity = 100
	h := d.Launch("a", 1)
	d.AllocAt(h, 200)
	if _, err := d.Run(); err == nil {
		t.Fatal("capacity violation not reported")
	}
}

func TestDeadlockDetected(t *testing.T) {
	d := device.New(1e9)
	m := d.NewStream()
	// The compute stream waits on an event only recorded after a copy
	// that itself waits on an event the compute stream records later:
	// a genuine cycle.
	evA := device.EventID(0)
	_ = evA
	// Build cycle manually: m waits on ev1 (recorded on compute after
	// compute waits on ev2, recorded on m after the wait).
	// compute: Wait(ev2) ... Record(ev1)
	// m:       Wait(ev1) ... Record(ev2)
	// Use Record to allocate IDs first on scratch streams is not
	// possible, so emulate with the public API:
	ev1 := d.Record(device.ComputeStream) // compute: record ev1 first...
	_ = ev1
	// A real cycle needs waits before records on both streams; the API
	// orders them, so craft: compute waits on an event recorded on m
	// *after* m waits on an event recorded on compute *after* compute's
	// wait. That is: compute [Wait(evm)], m [Wait(evc)], and neither
	// record ever enqueued -> also a deadlock (wait on never-recorded).
	d2 := device.New(1e9)
	m2 := d2.NewStream()
	evc := d2.Record(device.ComputeStream)
	_ = evc
	// Wait on an event id that is never recorded.
	d2.Wait(m2, device.EventID(41))
	d2.Copy(m2, "c", 10)
	if _, err := d2.Run(); err == nil {
		t.Fatal("wait on unrecorded event not detected")
	}
	_ = m
}

func TestComputeBusyFraction(t *testing.T) {
	d := device.New(100)
	m := d.NewStream()
	d.Copy(m, "x", 300) // 3 s
	ev := d.Record(m)
	d.Wait(device.ComputeStream, ev)
	d.Launch("k", 1) // runs 3..4
	tr, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, tr.ComputeBusy, 0.25, "busy")
}
