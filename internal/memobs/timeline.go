// Package memobs is the measured-memory observability plane: it turns
// the planned byte counts the compiler and HMMS planner emit into
// *measured* runtime series, attributes footprint to ops and requests,
// and runs an in-process continuous profiler whose windows join pprof
// samples against graph op spans.
//
// Everything the repo reported about memory before this package was a
// plan — slab sizes, HMMS peaks, first-fit offsets. memobs closes the
// loop: executor and compiled-program hooks snapshot the arena and the
// slab windows each op actually touches, producing a MemTimeline that
// is directly comparable, step by step, against the static plan. The
// drift gauges are the bytes analogue of the calibration op-time drift
// ratios: measured footprint over planned live bytes, per op.
package memobs

import (
	"fmt"
	"math"

	"splitcnn/internal/trace"
)

// MemSample is one op step's measured memory state.
type MemSample struct {
	Step int    `json:"step"`
	Name string `json:"name"`
	Kind string `json:"kind"`
	// MeasuredBytes is the step's measured activation footprint: slab
	// bytes the kernel referenced plus scratch arena in-use on the
	// compiled path, or arena in-use bytes on the interpreted path.
	MeasuredBytes int64 `json:"measured_bytes"`
	// PlannedBytes is the static plan's live bytes at this step — the
	// sum of storage windows whose lifetime covers it (0 when no plan
	// exists, i.e. the interpreted path).
	PlannedBytes int64 `json:"planned_bytes"`
	// SlabRefBytes is the slab footprint the kernel call referenced
	// (compiled path only).
	SlabRefBytes int64 `json:"slab_ref_bytes"`
	// ScratchBytes is the arena in-use bytes observed after the step.
	ScratchBytes int64 `json:"scratch_bytes"`
	// WrittenBytes is the high-water extent of slab windows written so
	// far in the pass (compiled path only).
	WrittenBytes int64 `json:"written_bytes"`
}

// MemTimeline is one measured forward pass plus lifetime aggregates.
type MemTimeline struct {
	// Source is "compiled" or "executor".
	Source string `json:"source"`
	// Samples holds the latest completed pass, one entry per op step.
	Samples []MemSample `json:"samples"`
	// PlannedSlabBytes is the static plan's slab size (0 when no plan).
	PlannedSlabBytes int64 `json:"planned_slab_bytes"`
	// MeasuredHighWater is the maximum MeasuredBytes observed over the
	// collector's lifetime (across all passes, not just Samples).
	MeasuredHighWater int64 `json:"measured_high_water_bytes"`
	// ScratchHighWater is the arena's lifetime high-water mark.
	ScratchHighWater int64 `json:"scratch_high_water_bytes"`
	// Passes counts completed forward passes.
	Passes int64 `json:"passes"`
}

// Verify checks the timeline's internal consistency: step indices must
// ascend from 0 and no sample's MeasuredBytes may exceed the recorded
// high water. A timeline that fails Verify is corrupted (or tampered
// with) and must not be rendered as a measured-memory report.
func (tl *MemTimeline) Verify() error {
	for i, s := range tl.Samples {
		if s.Step != i {
			return fmt.Errorf("memobs: corrupted timeline: sample %d has step %d", i, s.Step)
		}
		if s.MeasuredBytes > tl.MeasuredHighWater {
			return fmt.Errorf("memobs: corrupted timeline: step %d measured %d bytes > high water %d",
				i, s.MeasuredBytes, tl.MeasuredHighWater)
		}
		if s.MeasuredBytes < 0 || s.PlannedBytes < 0 {
			return fmt.Errorf("memobs: corrupted timeline: step %d has negative bytes", i)
		}
	}
	return nil
}

// CheckAgainstPlan enforces the hard plan invariant on a compiled
// timeline: per step, the slab bytes the kernel referenced must not
// exceed the plan's live bytes at that step, and nothing may be written
// past the planned slab. A violation means the compiled executor
// touched memory the plan never reserved.
func (tl *MemTimeline) CheckAgainstPlan() error {
	if tl.PlannedSlabBytes == 0 {
		return fmt.Errorf("memobs: timeline has no plan to check against")
	}
	for _, s := range tl.Samples {
		if s.SlabRefBytes > s.PlannedBytes {
			return fmt.Errorf("memobs: step %d (%s) referenced %d slab bytes, plan has only %d live",
				s.Step, s.Name, s.SlabRefBytes, s.PlannedBytes)
		}
		if s.PlannedBytes > tl.PlannedSlabBytes || s.WrittenBytes > tl.PlannedSlabBytes {
			return fmt.Errorf("memobs: step %d (%s) exceeds planned slab %d (live %d, written %d)",
				s.Step, s.Name, tl.PlannedSlabBytes, s.PlannedBytes, s.WrittenBytes)
		}
	}
	return nil
}

// DriftMax returns the maximum per-step drift ratio
// MeasuredBytes/PlannedBytes and the name of the op it occurs at.
// Ratios above 1 mean the step's measured footprint (slab reference +
// scratch workspace) exceeded what the plan accounts for — the plan
// does not model kernel workspace, so conv steps with im2col buffers
// legitimately drift above 1; what matters is that the ratio is finite,
// stable, and bounded by the scratch high water.
func (tl *MemTimeline) DriftMax() (float64, string) {
	max, at := 0.0, ""
	for _, s := range tl.Samples {
		if s.PlannedBytes <= 0 {
			continue
		}
		if r := float64(s.MeasuredBytes) / float64(s.PlannedBytes); r > max {
			max, at = r, s.Name
		}
	}
	return max, at
}

// DriftGeomean returns the geometric mean of per-step drift ratios.
func (tl *MemTimeline) DriftGeomean() float64 {
	sum, n := 0.0, 0
	for _, s := range tl.Samples {
		if s.PlannedBytes <= 0 || s.MeasuredBytes <= 0 {
			continue
		}
		sum += math.Log(float64(s.MeasuredBytes) / float64(s.PlannedBytes))
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Record publishes the timeline's aggregate gauges: the measured high
// water, the planned slab, the scratch high water, and the drift family
// mem.drift_ratio.{max,geomean} plus one per-op gauge per sampled step.
func (tl *MemTimeline) Record(reg *trace.Metrics) {
	reg.Gauge("mem.measured_high_water_bytes").Set(float64(tl.MeasuredHighWater))
	reg.Gauge("mem.scratch_high_water_bytes").Set(float64(tl.ScratchHighWater))
	if tl.PlannedSlabBytes > 0 {
		reg.Gauge("mem.planned_slab_bytes").Set(float64(tl.PlannedSlabBytes))
		max, _ := tl.DriftMax()
		reg.Gauge("mem.drift_ratio.max").Set(max)
		reg.Gauge("mem.drift_ratio.geomean").Set(tl.DriftGeomean())
		for _, s := range tl.Samples {
			if s.PlannedBytes > 0 {
				reg.Gauge("mem.drift_ratio." + s.Name).Set(float64(s.MeasuredBytes) / float64(s.PlannedBytes))
			}
		}
	}
}
