package memobs

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"splitcnn/internal/graph"
	"splitcnn/internal/models"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
	"splitcnn/internal/trace"
)

// compileArch lowers a scaled-down bundled architecture through
// graph.Compile in inference mode, the way the serving path does.
func compileArch(t *testing.T, arch string, hw int) (*graph.CompiledProgram, graph.Feeds) {
	t.Helper()
	m, err := models.Build(arch, models.Config{
		BatchSize: 2, Classes: 10, InputC: 3, InputH: hw, InputW: hw,
		WidthDiv: 16, BatchNorm: true,
	})
	if err != nil {
		t.Fatalf("build %s: %v", arch, err)
	}
	store := graph.NewParamStore()
	store.InitFromGraph(m.Graph, rand.New(rand.NewSource(1)), nn.KaimingInit)
	m.Graph.SetTraining(false)
	m.Graph.SetOutput(m.Logits)
	prog, err := graph.Compile(m.Graph, store, graph.CompileOptions{})
	if err != nil {
		t.Fatalf("compile %s: %v", arch, err)
	}
	return prog, graph.Feeds{
		"image":  tensor.New(2, 3, hw, hw),
		"labels": tensor.New(2),
	}
}

// TestMeasuredNeverExceedsPlan pins the hard invariant for every
// bundled architecture: under compiled inference, the slab bytes each
// step actually references never exceed the plan's live bytes, nothing
// is written past the planned slab, and the drift ratio is finite.
func TestMeasuredNeverExceedsPlan(t *testing.T) {
	for _, arch := range models.Architectures() {
		t.Run(arch, func(t *testing.T) {
			hw := 32
			if arch == "alexnet" {
				hw = 64 // alexnet's pool stack needs a larger input
			}
			prog, feeds := compileArch(t, arch, hw)
			c := AttachCompiled(prog)
			for pass := 0; pass < 3; pass++ {
				if _, err := prog.Forward(feeds); err != nil {
					t.Fatalf("forward pass %d: %v", pass, err)
				}
			}
			tl := c.Timeline()
			if tl.Source != "compiled" {
				t.Fatalf("source = %q, want compiled", tl.Source)
			}
			if got, want := int(tl.Passes), 3; got != want {
				t.Fatalf("passes = %d, want %d", got, want)
			}
			if len(tl.Samples) != prog.Steps() {
				t.Fatalf("samples = %d, want %d steps", len(tl.Samples), prog.Steps())
			}
			if err := tl.Verify(); err != nil {
				t.Fatalf("Verify: %v", err)
			}
			if err := tl.CheckAgainstPlan(); err != nil {
				t.Fatalf("CheckAgainstPlan: %v", err)
			}
			max, at := tl.DriftMax()
			if max <= 0 || math.IsInf(max, 0) || math.IsNaN(max) {
				t.Fatalf("drift max = %g at %q, want finite > 0", max, at)
			}
			if gm := tl.DriftGeomean(); gm <= 0 || math.IsInf(gm, 0) || math.IsNaN(gm) {
				t.Fatalf("drift geomean = %g, want finite > 0", gm)
			}
		})
	}
}

// TestVerifyRejectsCorruption: a tampered timeline must not pass the
// self-verification the report builder gates on.
func TestVerifyRejectsCorruption(t *testing.T) {
	prog, feeds := compileArch(t, "vgg16", 32)
	c := AttachCompiled(prog)
	if _, err := prog.Forward(feeds); err != nil {
		t.Fatal(err)
	}
	good := c.Timeline()
	if err := good.Verify(); err != nil {
		t.Fatalf("clean timeline failed Verify: %v", err)
	}

	t.Run("step indices", func(t *testing.T) {
		tl := c.Timeline()
		tl.Samples[1].Step = 7
		if err := tl.Verify(); err == nil || !strings.Contains(err.Error(), "corrupted") {
			t.Fatalf("Verify = %v, want corrupted-timeline error", err)
		}
	})
	t.Run("above high water", func(t *testing.T) {
		tl := c.Timeline()
		tl.Samples[0].MeasuredBytes = tl.MeasuredHighWater + 1
		if err := tl.Verify(); err == nil || !strings.Contains(err.Error(), "high water") {
			t.Fatalf("Verify = %v, want high-water error", err)
		}
	})
	t.Run("negative bytes", func(t *testing.T) {
		tl := c.Timeline()
		tl.Samples[0].PlannedBytes = -5
		if err := tl.Verify(); err == nil {
			t.Fatal("Verify accepted negative planned bytes")
		}
	})
	t.Run("slab over plan", func(t *testing.T) {
		tl := c.Timeline()
		tl.Samples[0].SlabRefBytes = tl.Samples[0].PlannedBytes + 4
		if err := tl.CheckAgainstPlan(); err == nil {
			t.Fatal("CheckAgainstPlan accepted slab ref above planned live bytes")
		}
	})
}

// TestTimelineRecord checks the gauge family the runtime sampler
// publishes from a timeline snapshot.
func TestTimelineRecord(t *testing.T) {
	prog, feeds := compileArch(t, "resnet18", 32)
	c := AttachCompiled(prog)
	if _, err := prog.Forward(feeds); err != nil {
		t.Fatal(err)
	}
	tl := c.Timeline()
	met := trace.NewMetrics()
	tl.Record(met)
	if got := met.Gauge("mem.measured_high_water_bytes").Value(); int64(got) != tl.MeasuredHighWater {
		t.Fatalf("mem.measured_high_water_bytes = %g, want %d", got, tl.MeasuredHighWater)
	}
	if got := met.Gauge("mem.planned_slab_bytes").Value(); int64(got) != tl.PlannedSlabBytes {
		t.Fatalf("mem.planned_slab_bytes = %g, want %d", got, tl.PlannedSlabBytes)
	}
	max, _ := tl.DriftMax()
	if got := met.Gauge("mem.drift_ratio.max").Value(); got != max {
		t.Fatalf("mem.drift_ratio.max = %g, want %g", got, max)
	}
	// One per-op drift gauge per planned step.
	for _, s := range tl.Samples {
		if s.PlannedBytes > 0 {
			if got := met.Gauge("mem.drift_ratio." + s.Name).Value(); got <= 0 {
				t.Fatalf("mem.drift_ratio.%s = %g, want > 0", s.Name, got)
			}
			break
		}
	}
}

// TestExecutorCollector covers the interpreted path: per-op arena
// occupancy with an explicit pass flush.
func TestExecutorCollector(t *testing.T) {
	m, err := models.Build("alexnet", models.Config{
		BatchSize: 2, Classes: 10, InputC: 3, InputH: 64, InputW: 64,
		WidthDiv: 16, BatchNorm: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	store := graph.NewParamStore()
	store.InitFromGraph(m.Graph, rand.New(rand.NewSource(1)), nn.KaimingInit)
	m.Graph.SetTraining(false)
	m.Graph.SetOutput(m.Logits)
	ex, err := graph.NewExecutor(m.Graph, store)
	if err != nil {
		t.Fatal(err)
	}
	ex.UseArena(tensor.NewArena())
	c := AttachExecutor(ex)
	feeds := graph.Feeds{"image": tensor.New(2, 3, 64, 64), "labels": tensor.New(2)}
	for pass := 0; pass < 2; pass++ {
		if _, err := ex.Forward(feeds); err != nil {
			t.Fatal(err)
		}
		c.FlushPass()
	}
	tl := c.Timeline()
	if tl.Source != "executor" {
		t.Fatalf("source = %q, want executor", tl.Source)
	}
	if tl.Passes != 2 || len(tl.Samples) == 0 {
		t.Fatalf("passes = %d, samples = %d; want 2 passes with samples", tl.Passes, len(tl.Samples))
	}
	if err := tl.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if tl.MeasuredHighWater <= 0 {
		t.Fatalf("measured high water = %d, want > 0", tl.MeasuredHighWater)
	}
	// No static plan on the interpreted path.
	if err := tl.CheckAgainstPlan(); err == nil {
		t.Fatal("CheckAgainstPlan accepted a planless timeline")
	}
}
