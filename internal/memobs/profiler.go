package memobs

import (
	"bytes"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"splitcnn/internal/graph"
	"splitcnn/internal/trace"
)

// cpuProfileMu serializes CPU capture windows process-wide: the Go
// runtime supports one CPU profile at a time, and a loadtest -spawn
// fleet runs several routers/workers/servers — each with its own
// Profiler — in one process. A profiler that loses the race skips its
// window (counted, not queued) rather than blocking its loop.
var cpuProfileMu sync.Mutex

// ProfilerOptions configures the continuous profiler.
type ProfilerOptions struct {
	// Window is the CPU capture window length (default 1s).
	Window time.Duration
	// Every is the period between window starts (default 15s). The duty
	// cycle Window/Every bounds steady-state overhead: the defaults
	// profile ~6.7% of wall time at ~1-3% capture cost, well under the
	// 3% end-to-end budget.
	Every time.Duration
	// TopN caps the per-function tables (default 30).
	TopN int
	// Metrics receives profilez.* instruments (nil = none).
	Metrics *trace.Metrics
}

// OpCost is one graph op's attributed cost within a profile window.
type OpCost struct {
	Op         string  `json:"op"`
	CPUSeconds float64 `json:"cpu_seconds"`
	Share      float64 `json:"share"` // of the window's sampled CPU
	AllocBytes int64   `json:"alloc_bytes"`
	InUseBytes int64   `json:"inuse_bytes"`
}

// FuncCost is one function's flat (self) cost.
type FuncCost struct {
	Name       string  `json:"name"`
	CPUSeconds float64 `json:"cpu_seconds"`
	AllocBytes int64   `json:"alloc_bytes"`
	InUseBytes int64   `json:"inuse_bytes"`
}

// Report is the aggregation of one profile window: flat per-function
// self cost from the CPU and heap profiles, joined against op spans
// (via pprof "op" labels the executors emit during the window) into
// per-op CPU/alloc attribution.
type Report struct {
	WindowSeconds float64    `json:"window_seconds"`
	CPUSeconds    float64    `json:"cpu_seconds"`
	Ops           []OpCost   `json:"ops"`
	Funcs         []FuncCost `json:"funcs"`
	// CPUProfile is the window's raw pprof protobuf (gzipped), served
	// by /profilez?download=cpu.
	CPUProfile []byte `json:"-"`
}

// Profiler takes windowed in-process pprof CPU+heap profiles on a duty
// cycle and keeps the latest aggregated Report.
type Profiler struct {
	opts ProfilerOptions

	mu  sync.Mutex
	rep *Report

	stop chan struct{}
	done chan struct{}
}

// StartProfiler launches the capture loop. The first window starts
// immediately; subsequent windows start every opts.Every.
func StartProfiler(opts ProfilerOptions) *Profiler {
	if opts.Window <= 0 {
		opts.Window = time.Second
	}
	if opts.Every <= 0 {
		opts.Every = 15 * time.Second
	}
	if opts.Every < opts.Window {
		opts.Every = opts.Window
	}
	if opts.TopN <= 0 {
		opts.TopN = 30
	}
	p := &Profiler{opts: opts, stop: make(chan struct{}), done: make(chan struct{})}
	go p.loop()
	return p
}

// Stop terminates the capture loop and waits for it. Safe to call on a
// nil profiler and more than once.
func (p *Profiler) Stop() {
	if p == nil {
		return
	}
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	<-p.done
}

// Report returns the latest window's aggregation (nil until the first
// window completes).
func (p *Profiler) Report() *Report {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rep
}

func (p *Profiler) loop() {
	defer close(p.done)
	t := time.NewTicker(p.opts.Every)
	defer t.Stop()
	p.capture()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.capture()
		}
	}
}

func (p *Profiler) capture() {
	met := p.opts.Metrics
	if !cpuProfileMu.TryLock() {
		if met != nil {
			met.Counter("profilez.skipped_windows").Add(1)
		}
		return
	}
	var cpuBuf bytes.Buffer
	if err := pprof.StartCPUProfile(&cpuBuf); err != nil {
		cpuProfileMu.Unlock()
		if met != nil {
			met.Counter("profilez.skipped_windows").Add(1)
		}
		return
	}
	graph.EnableOpLabels(true)
	select {
	case <-time.After(p.opts.Window):
	case <-p.stop:
	}
	graph.EnableOpLabels(false)
	pprof.StopCPUProfile()
	cpuProfileMu.Unlock()

	var heapBuf bytes.Buffer
	if hp := pprof.Lookup("heap"); hp != nil {
		hp.WriteTo(&heapBuf, 0) //nolint:errcheck — best effort
	}
	rep, err := buildReport(cpuBuf.Bytes(), heapBuf.Bytes(), p.opts.Window, p.opts.TopN)
	if err != nil {
		if met != nil {
			met.Counter("profilez.parse_errors").Add(1)
		}
		return
	}
	p.mu.Lock()
	p.rep = rep
	p.mu.Unlock()
	if met != nil {
		met.Counter("profilez.windows").Add(1)
		met.Gauge("profilez.cpu_seconds").Set(rep.CPUSeconds)
		met.Gauge("profilez.ops").Set(float64(len(rep.Ops)))
	}
}

// buildReport aggregates one window: flat self cost per function from
// both profiles, per-op CPU from sample labels, and per-op alloc by
// assigning each leaf function to the op that dominated its labeled CPU
// samples (heap samples carry no labels, so the CPU-side join supplies
// the function→op mapping).
func buildReport(cpuProf, heapProf []byte, window time.Duration, topN int) (*Report, error) {
	cpu, err := parsePprof(cpuProf)
	if err != nil {
		return nil, err
	}
	rep := &Report{WindowSeconds: window.Seconds(), CPUProfile: cpuProf}

	cpuIdx := cpu.typeIndex("cpu")
	opCPU := map[string]float64{}
	funcCPU := map[string]float64{}
	funcOpW := map[string]map[string]float64{} // func -> op -> weight
	for _, s := range cpu.samples {
		if cpuIdx < 0 || cpuIdx >= len(s.values) || len(s.locs) == 0 {
			continue
		}
		sec := float64(s.values[cpuIdx]) / 1e9
		fn := cpu.leafFunc[s.locs[0]]
		if fn == "" {
			fn = "(unknown)"
		}
		rep.CPUSeconds += sec
		funcCPU[fn] += sec
		op := s.labels["op"]
		if op == "" {
			op = "(unattributed)"
		}
		opCPU[op] += sec
		w := funcOpW[fn]
		if w == nil {
			w = map[string]float64{}
			funcOpW[fn] = w
		}
		w[op] += sec
	}

	funcAlloc := map[string]int64{}
	funcInuse := map[string]int64{}
	if heap, err := parsePprof(heapProf); err == nil {
		allocIdx := heap.typeIndex("alloc_space")
		inuseIdx := heap.typeIndex("inuse_space")
		for _, s := range heap.samples {
			if len(s.locs) == 0 {
				continue
			}
			fn := heap.leafFunc[s.locs[0]]
			if fn == "" {
				fn = "(unknown)"
			}
			if allocIdx >= 0 && allocIdx < len(s.values) {
				funcAlloc[fn] += s.values[allocIdx]
			}
			if inuseIdx >= 0 && inuseIdx < len(s.values) {
				funcInuse[fn] += s.values[inuseIdx]
			}
		}
	}

	// Function → op assignment by dominant labeled CPU weight.
	funcOp := map[string]string{}
	for fn, w := range funcOpW {
		best, bw := "(unattributed)", 0.0
		for op, x := range w {
			if x > bw {
				best, bw = op, x
			}
		}
		funcOp[fn] = best
	}
	opAlloc := map[string]int64{}
	opInuse := map[string]int64{}
	for fn, b := range funcAlloc {
		op := funcOp[fn]
		if op == "" {
			op = "(unattributed)"
		}
		opAlloc[op] += b
	}
	for fn, b := range funcInuse {
		op := funcOp[fn]
		if op == "" {
			op = "(unattributed)"
		}
		opInuse[op] += b
	}

	for op, sec := range opCPU {
		share := 0.0
		if rep.CPUSeconds > 0 {
			share = sec / rep.CPUSeconds
		}
		rep.Ops = append(rep.Ops, OpCost{
			Op: op, CPUSeconds: sec, Share: share,
			AllocBytes: opAlloc[op], InUseBytes: opInuse[op],
		})
	}
	for op, b := range opAlloc {
		if _, ok := opCPU[op]; !ok {
			rep.Ops = append(rep.Ops, OpCost{Op: op, AllocBytes: b, InUseBytes: opInuse[op]})
		}
	}
	sort.Slice(rep.Ops, func(i, j int) bool { return rep.Ops[i].CPUSeconds > rep.Ops[j].CPUSeconds })

	names := map[string]bool{}
	for fn := range funcCPU {
		names[fn] = true
	}
	for fn := range funcAlloc {
		names[fn] = true
	}
	for fn := range names {
		rep.Funcs = append(rep.Funcs, FuncCost{
			Name: fn, CPUSeconds: funcCPU[fn],
			AllocBytes: funcAlloc[fn], InUseBytes: funcInuse[fn],
		})
	}
	sort.Slice(rep.Funcs, func(i, j int) bool {
		if rep.Funcs[i].CPUSeconds != rep.Funcs[j].CPUSeconds {
			return rep.Funcs[i].CPUSeconds > rep.Funcs[j].CPUSeconds
		}
		return rep.Funcs[i].AllocBytes > rep.Funcs[j].AllocBytes
	})
	if len(rep.Funcs) > topN {
		rep.Funcs = rep.Funcs[:topN]
	}
	return rep, nil
}
