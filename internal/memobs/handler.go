package memobs

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"runtime/pprof"
)

// Handler serves the /profilez page: the latest profile window's
// per-op and per-function attribution tables (HTML by default,
// ?format=json for machines), raw pprof downloads (?download=cpu for
// the captured window, ?download=heap for a live heap profile), and —
// when mem is non-nil — the measured memory timelines of the process's
// collectors.
func Handler(p *Profiler, mem func() []*MemTimeline) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Query().Get("download") {
		case "cpu":
			rep := p.Report()
			if rep == nil || len(rep.CPUProfile) == 0 {
				http.Error(w, "no CPU profile window captured yet", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Disposition", `attachment; filename="cpu.pprof"`)
			w.Write(rep.CPUProfile) //nolint:errcheck
			return
		case "heap":
			hp := pprof.Lookup("heap")
			if hp == nil {
				http.Error(w, "heap profile unavailable", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Disposition", `attachment; filename="heap.pprof"`)
			hp.WriteTo(w, 0) //nolint:errcheck
			return
		}

		var timelines []*MemTimeline
		if mem != nil {
			timelines = mem()
		}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(struct { //nolint:errcheck
				Report    *Report        `json:"report"`
				Timelines []*MemTimeline `json:"timelines,omitempty"`
			}{p.Report(), timelines})
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeHTML(w, p.Report(), timelines)
	}
}

func writeHTML(w http.ResponseWriter, rep *Report, timelines []*MemTimeline) {
	fmt.Fprint(w, `<!doctype html><meta charset="utf-8"><title>profilez</title><style>
body{font:14px/1.5 system-ui,sans-serif;margin:2rem;max-width:72rem}
table{border-collapse:collapse;margin:1rem 0}
th,td{border:1px solid #ccc;padding:.25rem .6rem;text-align:right}
th:first-child,td:first-child{text-align:left}
caption{font-weight:600;text-align:left;padding:.25rem 0}
.dim{color:#777}</style><h1>profilez</h1>`)
	if rep == nil {
		fmt.Fprint(w, `<p class=dim>No profile window captured yet — try again shortly.</p>`)
	} else {
		fmt.Fprintf(w, `<p>Window %.2fs · sampled CPU %.3fs · <a href="?download=cpu">cpu.pprof</a> · <a href="?download=heap">heap.pprof</a> · <a href="?format=json">json</a></p>`,
			rep.WindowSeconds, rep.CPUSeconds)
		fmt.Fprint(w, `<table><caption>Per-op attribution (CPU from labeled samples; alloc joined via dominant-op leaf functions)</caption><tr><th>op</th><th>cpu s</th><th>share</th><th>alloc bytes</th><th>in-use bytes</th></tr>`)
		for _, o := range rep.Ops {
			fmt.Fprintf(w, `<tr><td>%s</td><td>%.4f</td><td>%.1f%%</td><td>%d</td><td>%d</td></tr>`,
				html.EscapeString(o.Op), o.CPUSeconds, 100*o.Share, o.AllocBytes, o.InUseBytes)
		}
		fmt.Fprint(w, `</table><table><caption>Flat per-function self cost</caption><tr><th>function</th><th>cpu s</th><th>alloc bytes</th><th>in-use bytes</th></tr>`)
		for _, f := range rep.Funcs {
			fmt.Fprintf(w, `<tr><td>%s</td><td>%.4f</td><td>%d</td><td>%d</td></tr>`,
				html.EscapeString(f.Name), f.CPUSeconds, f.AllocBytes, f.InUseBytes)
		}
		fmt.Fprint(w, `</table>`)
	}
	for _, tl := range timelines {
		if tl == nil {
			continue
		}
		max, at := tl.DriftMax()
		fmt.Fprintf(w, `<table><caption>Measured memory timeline (%s · %d passes · high water %d B · planned slab %d B · drift max %.3f at %s)</caption><tr><th>step</th><th>op</th><th>measured B</th><th>planned B</th><th>slab ref B</th><th>scratch B</th></tr>`,
			html.EscapeString(tl.Source), tl.Passes, tl.MeasuredHighWater, tl.PlannedSlabBytes, max, html.EscapeString(at))
		for _, s := range tl.Samples {
			fmt.Fprintf(w, `<tr><td>%d</td><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td></tr>`,
				s.Step, html.EscapeString(s.Name), s.MeasuredBytes, s.PlannedBytes, s.SlabRefBytes, s.ScratchBytes)
		}
		fmt.Fprint(w, `</table>`)
	}
}
