package memobs

import (
	"bytes"
	"context"
	"runtime/pprof"
	"testing"
	"time"

	"splitcnn/internal/trace"
)

// burn spins hot enough for the 100 Hz CPU sampler to land samples.
func burn(d time.Duration) float64 {
	x := 1.0
	for end := time.Now().Add(d); time.Now().Before(end); {
		for i := 0; i < 1e5; i++ {
			x = x*1.000000001 + 1e-9
		}
	}
	return x
}

// TestParsePprofLabeled captures a real labeled CPU profile and checks
// the hand-rolled protobuf parser recovers sample types, leaf
// functions, and the op labels the per-op join depends on.
func TestParsePprofLabeled(t *testing.T) {
	cpuProfileMu.Lock()
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		cpuProfileMu.Unlock()
		t.Skipf("cpu profile unavailable: %v", err)
	}
	pprof.Do(context.Background(), pprof.Labels("op", "conv_test"), func(context.Context) {
		burn(300 * time.Millisecond)
	})
	pprof.StopCPUProfile()
	cpuProfileMu.Unlock()

	prof, err := parsePprof(buf.Bytes())
	if err != nil {
		t.Fatalf("parsePprof: %v", err)
	}
	if idx := prof.typeIndex("cpu"); idx < 0 {
		t.Fatalf("no cpu sample type in %v", prof.sampleTypes)
	}
	if len(prof.samples) == 0 {
		t.Fatal("no samples captured")
	}
	labeled := false
	for _, s := range prof.samples {
		if s.labels["op"] == "conv_test" {
			labeled = true
			if len(s.locs) == 0 {
				t.Fatal("labeled sample has no locations")
			}
			if prof.leafFunc[s.locs[0]] == "" {
				t.Fatal("labeled sample's leaf has no function name")
			}
		}
	}
	if !labeled {
		t.Fatal("no sample carried the op label")
	}

	rep, err := buildReport(buf.Bytes(), nil, 300*time.Millisecond, 30)
	if err != nil {
		t.Fatalf("buildReport: %v", err)
	}
	if rep.CPUSeconds <= 0 {
		t.Fatalf("CPUSeconds = %g, want > 0", rep.CPUSeconds)
	}
	found := false
	for _, o := range rep.Ops {
		if o.Op == "conv_test" && o.CPUSeconds > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("per-op attribution missing conv_test: %+v", rep.Ops)
	}
}

// TestProfilerWindow runs the continuous profiler end to end with a
// short window and checks a report lands with the window's metrics.
func TestProfilerWindow(t *testing.T) {
	met := trace.NewMetrics()
	p := StartProfiler(ProfilerOptions{
		Window:  200 * time.Millisecond,
		Every:   250 * time.Millisecond,
		Metrics: met,
	})
	defer p.Stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			burn(100 * time.Millisecond)
		}
	}()
	var rep *Report
	for wait := 0; wait < 200; wait++ {
		if rep = p.Report(); rep != nil && rep.CPUSeconds > 0 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	p.Stop()
	<-done
	if rep == nil || rep.CPUSeconds <= 0 {
		t.Fatalf("no profile window landed (report %+v)", rep)
	}
	if len(rep.Funcs) == 0 {
		t.Fatal("report has no flat function costs")
	}
	if len(rep.CPUProfile) == 0 {
		t.Fatal("report has no raw CPU profile for download")
	}
	if met.Counter("profilez.windows").Value() == 0 {
		t.Fatal("profilez.windows counter never incremented")
	}
}

// TestProfilerStopIdempotent: Stop must be safe on nil and repeated.
func TestProfilerStopIdempotent(t *testing.T) {
	var p *Profiler
	p.Stop() // nil-safe
	q := StartProfiler(ProfilerOptions{Window: 20 * time.Millisecond, Every: 30 * time.Millisecond})
	q.Stop()
	q.Stop()
}
