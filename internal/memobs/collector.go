package memobs

import (
	"sync"

	"splitcnn/internal/graph"
)

// Collector accumulates a measured MemTimeline from executor or
// compiled-program hooks. It is safe for concurrent reads (HTTP
// handlers snapshot via Timeline) against a single writer — hooks fire
// from the one goroutine that runs Forward, which is the serving
// registry's dispatch discipline.
type Collector struct {
	mu          sync.Mutex
	source      string
	plannedSlab int64
	plannedLive []int64 // per step index; nil on the interpreted path
	steps       int

	cur     []MemSample // pass in progress
	last    []MemSample // latest completed pass
	passes  int64
	highW   int64 // lifetime max MeasuredBytes
	scrHW   int64 // lifetime arena high water
	lastPk  int64 // peak MeasuredBytes of the latest completed pass
	elapsed int   // interpreted path: ops seen this pass
}

// AttachCompiled installs a step hook on p and returns the collector
// feeding off it. Planned live bytes per step are derived from the
// program's plan entries: a storage contributes its window to every
// step its lifetime [Start, End] covers.
func AttachCompiled(p *graph.CompiledProgram) *Collector {
	c := &Collector{
		source:      "compiled",
		plannedSlab: p.SlabBytes(),
		plannedLive: PlannedLiveBytes(p.PlanEntries(), p.Steps()),
		steps:       p.Steps(),
	}
	p.Hook = c.compiledStep
	return c
}

// AttachExecutor installs an op hook on ex (chaining any existing hook)
// and returns the collector feeding off it. The interpreted path has no
// static plan, so samples carry arena occupancy only; callers must
// FlushPass after each Forward to close the pass.
func AttachExecutor(ex *graph.Executor) *Collector {
	c := &Collector{source: "executor"}
	prev := ex.Hook
	ex.Hook = func(ev graph.OpEvent) {
		if prev != nil {
			prev(ev)
		}
		st := ex.Arena().Stats()
		c.mu.Lock()
		c.cur = append(c.cur, MemSample{
			Step: c.elapsed, Name: ev.Name, Kind: ev.Kind,
			MeasuredBytes: st.InUseBytes, ScratchBytes: st.InUseBytes,
		})
		c.elapsed++
		if st.InUseBytes > c.highW {
			c.highW = st.InUseBytes
		}
		if st.HighWaterBytes > c.scrHW {
			c.scrHW = st.HighWaterBytes
		}
		c.mu.Unlock()
	}
	return c
}

// PlannedLiveBytes computes, for each step index, the plan's live bytes
// — the sum of distinct storage windows whose lifetime covers the step.
func PlannedLiveBytes(entries []graph.PlanEntry, steps int) []int64 {
	live := make([]int64, steps)
	seen := make(map[int]bool)
	for _, e := range entries {
		if e.Storage < 0 || e.Alias || seen[e.Storage] {
			continue
		}
		seen[e.Storage] = true
		for s := e.Start; s <= e.End && s < steps; s++ {
			if s >= 0 {
				live[s] += e.Bytes
			}
		}
	}
	return live
}

func (c *Collector) compiledStep(ev graph.StepEvent) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ev.Step == 0 {
		c.cur = c.cur[:0]
	}
	planned := int64(0)
	if ev.Step < len(c.plannedLive) {
		planned = c.plannedLive[ev.Step]
	}
	measured := ev.SlabRefBytes + ev.Scratch.InUseBytes
	c.cur = append(c.cur, MemSample{
		Step: ev.Step, Name: ev.Name, Kind: ev.Kind,
		MeasuredBytes: measured, PlannedBytes: planned,
		SlabRefBytes: ev.SlabRefBytes, ScratchBytes: ev.Scratch.InUseBytes,
		WrittenBytes: ev.SlabWrittenBytes,
	})
	if measured > c.highW {
		c.highW = measured
	}
	if ev.Scratch.HighWaterBytes > c.scrHW {
		c.scrHW = ev.Scratch.HighWaterBytes
	}
	if ev.Step == c.steps-1 {
		c.finishLocked()
	}
}

// FlushPass closes the pass in progress (interpreted path; a no-op when
// nothing was sampled since the last flush).
func (c *Collector) FlushPass() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.cur) == 0 {
		return
	}
	c.finishLocked()
}

func (c *Collector) finishLocked() {
	c.last = append(c.last[:0], c.cur...)
	c.cur = c.cur[:0]
	c.elapsed = 0
	c.passes++
	pk := int64(0)
	for _, s := range c.last {
		if s.MeasuredBytes > pk {
			pk = s.MeasuredBytes
		}
	}
	c.lastPk = pk
}

// Timeline snapshots the latest completed pass plus aggregates.
func (c *Collector) Timeline() *MemTimeline {
	c.mu.Lock()
	defer c.mu.Unlock()
	return &MemTimeline{
		Source:            c.source,
		Samples:           append([]MemSample(nil), c.last...),
		PlannedSlabBytes:  c.plannedSlab,
		MeasuredHighWater: c.highW,
		ScratchHighWater:  c.scrHW,
		Passes:            c.passes,
	}
}

// LastPassPeak returns the peak measured bytes of the latest completed
// pass — the per-batch footprint the serving batcher attributes to
// requests.
func (c *Collector) LastPassPeak() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastPk
}

// Passes returns the number of completed passes.
func (c *Collector) Passes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.passes
}
