package memobs

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// Minimal pprof profile.proto decoder — just enough protobuf wire
// format to read the profiles runtime/pprof emits in-process: string
// table, sample types, samples (leaf location, values, labels),
// locations (leaf line), and functions. No dependency on
// github.com/google/pprof; the wire format is stable and tiny.

// profSample is one decoded pprof sample.
type profSample struct {
	locs   []uint64          // location IDs, leaf first
	values []int64           // parallel to sampleTypes
	labels map[string]string // string labels (e.g. "op")
}

// profData is a decoded pprof profile.
type profData struct {
	sampleTypes []string // "type/unit" per value column
	samples     []profSample
	leafFunc    map[uint64]string // location ID -> innermost function name
}

// typeIndex returns the value column whose sample type matches name
// ("cpu", "alloc_space", ...), or -1.
func (p *profData) typeIndex(name string) int {
	for i, t := range p.sampleTypes {
		if len(t) >= len(name) && t[:len(name)] == name && (len(t) == len(name) || t[len(name)] == '/') {
			return i
		}
	}
	return -1
}

// parsePprof decodes a (possibly gzipped) pprof protobuf profile.
func parsePprof(data []byte) (*profData, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, err
		}
		data = raw
	}

	var strtab []string
	type vt struct{ typ, unit int64 }
	var sampleTypes []vt
	type rawLabel struct{ key, str int64 }
	type rawSample struct {
		locs   []uint64
		values []int64
		labels []rawLabel
	}
	var samples []rawSample
	funcName := map[uint64]int64{}     // function ID -> name string index
	locLeafFunc := map[uint64]uint64{} // location ID -> line[0].function_id

	d := pbdec{b: data}
	for !d.done() {
		num, wt, err := d.tag()
		if err != nil {
			return nil, err
		}
		switch num {
		case 1: // sample_type: ValueType
			msg, err := d.bytesField(wt)
			if err != nil {
				return nil, err
			}
			var v vt
			s := pbdec{b: msg}
			for !s.done() {
				n, w, err := s.tag()
				if err != nil {
					return nil, err
				}
				switch n {
				case 1:
					v.typ, err = s.intField(w)
				case 2:
					v.unit, err = s.intField(w)
				default:
					err = s.skip(w)
				}
				if err != nil {
					return nil, err
				}
			}
			sampleTypes = append(sampleTypes, v)
		case 2: // sample
			msg, err := d.bytesField(wt)
			if err != nil {
				return nil, err
			}
			var sm rawSample
			s := pbdec{b: msg}
			for !s.done() {
				n, w, err := s.tag()
				if err != nil {
					return nil, err
				}
				switch n {
				case 1: // location_id, possibly packed
					u, err := s.uintsField(w)
					if err != nil {
						return nil, err
					}
					sm.locs = append(sm.locs, u...)
				case 2: // value, possibly packed
					u, err := s.uintsField(w)
					if err != nil {
						return nil, err
					}
					for _, x := range u {
						sm.values = append(sm.values, int64(x))
					}
				case 3: // label
					lm, err := s.bytesField(w)
					if err != nil {
						return nil, err
					}
					var lb rawLabel
					ls := pbdec{b: lm}
					for !ls.done() {
						ln, lw, err := ls.tag()
						if err != nil {
							return nil, err
						}
						switch ln {
						case 1:
							lb.key, err = ls.intField(lw)
						case 2:
							lb.str, err = ls.intField(lw)
						default:
							err = ls.skip(lw)
						}
						if err != nil {
							return nil, err
						}
					}
					sm.labels = append(sm.labels, lb)
				default:
					if err := s.skip(w); err != nil {
						return nil, err
					}
				}
			}
			samples = append(samples, sm)
		case 4: // location
			msg, err := d.bytesField(wt)
			if err != nil {
				return nil, err
			}
			var id, leaf uint64
			seenLine := false
			s := pbdec{b: msg}
			for !s.done() {
				n, w, err := s.tag()
				if err != nil {
					return nil, err
				}
				switch n {
				case 1:
					v, err := s.intField(w)
					if err != nil {
						return nil, err
					}
					id = uint64(v)
				case 4: // line; line[0] is the innermost frame
					lm, err := s.bytesField(w)
					if err != nil {
						return nil, err
					}
					if !seenLine {
						seenLine = true
						ls := pbdec{b: lm}
						for !ls.done() {
							ln, lw, err := ls.tag()
							if err != nil {
								return nil, err
							}
							if ln == 1 {
								v, err := ls.intField(lw)
								if err != nil {
									return nil, err
								}
								leaf = uint64(v)
							} else if err := ls.skip(lw); err != nil {
								return nil, err
							}
						}
					}
				default:
					if err := s.skip(w); err != nil {
						return nil, err
					}
				}
			}
			if seenLine {
				locLeafFunc[id] = leaf
			}
		case 5: // function
			msg, err := d.bytesField(wt)
			if err != nil {
				return nil, err
			}
			var id uint64
			var name int64
			s := pbdec{b: msg}
			for !s.done() {
				n, w, err := s.tag()
				if err != nil {
					return nil, err
				}
				switch n {
				case 1:
					v, err := s.intField(w)
					if err != nil {
						return nil, err
					}
					id = uint64(v)
				case 2:
					name, err = s.intField(w)
					if err != nil {
						return nil, err
					}
				default:
					if err := s.skip(w); err != nil {
						return nil, err
					}
				}
			}
			funcName[id] = name
		case 6: // string_table
			msg, err := d.bytesField(wt)
			if err != nil {
				return nil, err
			}
			strtab = append(strtab, string(msg))
		default:
			if err := d.skip(wt); err != nil {
				return nil, err
			}
		}
	}

	str := func(i int64) string {
		if i < 0 || int(i) >= len(strtab) {
			return ""
		}
		return strtab[i]
	}
	out := &profData{leafFunc: make(map[uint64]string, len(locLeafFunc))}
	for _, v := range sampleTypes {
		out.sampleTypes = append(out.sampleTypes, str(v.typ)+"/"+str(v.unit))
	}
	for loc, fn := range locLeafFunc {
		out.leafFunc[loc] = str(funcName[fn])
	}
	for _, sm := range samples {
		ps := profSample{locs: sm.locs, values: sm.values}
		for _, lb := range sm.labels {
			if k := str(lb.key); k != "" {
				if ps.labels == nil {
					ps.labels = map[string]string{}
				}
				ps.labels[k] = str(lb.str)
			}
		}
		out.samples = append(out.samples, ps)
	}
	return out, nil
}

// pbdec is a cursor over protobuf wire data.
type pbdec struct {
	b []byte
	i int
}

func (d *pbdec) done() bool { return d.i >= len(d.b) }

func (d *pbdec) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if d.i >= len(d.b) {
			return 0, fmt.Errorf("memobs: truncated varint")
		}
		c := d.b[d.i]
		d.i++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("memobs: varint overflow")
}

func (d *pbdec) tag() (num, wt int, err error) {
	v, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(v >> 3), int(v & 7), nil
}

// bytesField reads a length-delimited field (wire type 2).
func (d *pbdec) bytesField(wt int) ([]byte, error) {
	if wt != 2 {
		return nil, fmt.Errorf("memobs: want length-delimited field, got wire type %d", wt)
	}
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if d.i+int(n) > len(d.b) {
		return nil, fmt.Errorf("memobs: truncated field")
	}
	b := d.b[d.i : d.i+int(n)]
	d.i += int(n)
	return b, nil
}

// intField reads a varint field (wire type 0).
func (d *pbdec) intField(wt int) (int64, error) {
	if wt != 0 {
		return 0, fmt.Errorf("memobs: want varint field, got wire type %d", wt)
	}
	v, err := d.varint()
	return int64(v), err
}

// uintsField reads a repeated varint field: either one value (wire
// type 0) or a packed run (wire type 2).
func (d *pbdec) uintsField(wt int) ([]uint64, error) {
	switch wt {
	case 0:
		v, err := d.varint()
		if err != nil {
			return nil, err
		}
		return []uint64{v}, nil
	case 2:
		b, err := d.bytesField(wt)
		if err != nil {
			return nil, err
		}
		var out []uint64
		s := pbdec{b: b}
		for !s.done() {
			v, err := s.varint()
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	}
	return nil, fmt.Errorf("memobs: repeated ints with wire type %d", wt)
}

func (d *pbdec) skip(wt int) error {
	switch wt {
	case 0:
		_, err := d.varint()
		return err
	case 1:
		d.i += 8
	case 2:
		_, err := d.bytesField(wt)
		return err
	case 5:
		d.i += 4
	default:
		return fmt.Errorf("memobs: unknown wire type %d", wt)
	}
	if d.i > len(d.b) {
		return fmt.Errorf("memobs: truncated field")
	}
	return nil
}
