package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"splitcnn/internal/trace"
)

// Submission errors, mapped by the HTTP layer to status codes.
var (
	// ErrQueueFull is admission-control backpressure (HTTP 429).
	ErrQueueFull = errors.New("serve: queue full")
	// ErrDraining means the server is shutting down (HTTP 503).
	ErrDraining = errors.New("serve: draining")
	// ErrDeadline means the request's deadline expired while it waited
	// in the queue (HTTP 504).
	ErrDeadline = errors.New("serve: deadline exceeded in queue")
)

// Request is one enqueued inference request.
type Request struct {
	// Image is the flattened C*H*W input.
	Image []float32
	// Deadline, when non-zero, drops the request (with ErrDeadline) if a
	// batch has not picked it up by then.
	Deadline time.Time
	// Enqueued is stamped by Submit; QueueWait in the response is
	// measured from it.
	Enqueued time.Time
	// Span is the request's wall-clock trace context (nil when the
	// request is unsampled); the dispatcher records the queue, assemble
	// and forward stage spans into it.
	Span *trace.SpanContext
	resp chan Response
}

// Response is the outcome of one request.
type Response struct {
	// Logits is a private copy of the model's output row (nil on error).
	Logits []float32
	// BatchSize is how many requests shared the executor pass — the
	// coalescing observability hook the e2e test asserts on.
	BatchSize int
	// QueueWait is time spent between Submit and batch formation.
	QueueWait time.Duration
	Err       error
}

// BatcherOptions tune the dynamic batching scheduler.
type BatcherOptions struct {
	// MaxBatch caps a coalesced batch; it must not exceed the
	// instance's executor batch size. Default: the instance's MaxBatch.
	MaxBatch int
	// MaxDelay bounds how long the first request of a forming batch
	// waits for company before a partial batch launches (default 2ms).
	MaxDelay time.Duration
	// QueueDepth bounds the admission queue; a full queue rejects with
	// ErrQueueFull (default 4 * MaxBatch).
	QueueDepth int
	// Metrics, when non-nil, receives serve.* instruments.
	Metrics *trace.Metrics
	// Tracer, when non-nil, receives batch-level spans linking the
	// coalesced request IDs (the per-request spans ride on Request.Span).
	Tracer *trace.WallTracer
	// MemPeak, when non-nil, returns the peak measured activation bytes
	// of the last completed forward pass — the per-batch footprint the
	// dispatcher attributes to every request it coalesced (NewBatcher
	// wires it to the instance's memory collector).
	MemPeak func() int64
}

// Batcher coalesces concurrent single-image requests into executor
// batches: a batch launches as soon as MaxBatch requests are waiting or
// MaxDelay after its first request, whichever comes first. A single
// dispatcher goroutine owns the instance's executor, so the arena and
// the graph values are never shared across goroutines.
type Batcher struct {
	run  func(imgs [][]float32) ([][]float32, error)
	opts BatcherOptions

	queue chan *Request
	done  chan struct{}
	// batchSeq numbers launched batches; sampled requests coalesced into
	// the same batch share the batch number in their forward-span args.
	batchSeq atomic.Int64

	mu       sync.RWMutex
	draining bool
}

// NewBatcher starts the dispatcher for inst.
func NewBatcher(inst *Instance, opts BatcherOptions) *Batcher {
	if opts.MaxBatch <= 0 || opts.MaxBatch > inst.MaxBatch {
		opts.MaxBatch = inst.MaxBatch
	}
	if opts.MemPeak == nil && inst.Mem != nil {
		opts.MemPeak = inst.Mem.LastPassPeak
	}
	return newBatcher(inst.Run, opts)
}

// newBatcher is the injectable core (tests substitute run).
func newBatcher(run func([][]float32) ([][]float32, error), opts BatcherOptions) *Batcher {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 8
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 2 * time.Millisecond
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 4 * opts.MaxBatch
	}
	b := &Batcher{
		run:   run,
		opts:  opts,
		queue: make(chan *Request, opts.QueueDepth),
		done:  make(chan struct{}),
	}
	go b.dispatch()
	return b
}

// Submit enqueues r and returns a channel delivering its Response.
// It fails fast with ErrQueueFull (bounded queue) or ErrDraining
// (shutdown in progress); an accepted request is guaranteed a response,
// even across Shutdown.
func (b *Batcher) Submit(r *Request) (<-chan Response, error) {
	r.resp = make(chan Response, 1) // dispatcher never blocks on delivery
	r.Enqueued = time.Now()
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.draining {
		b.count("serve.rejects_draining")
		return nil, ErrDraining
	}
	select {
	case b.queue <- r:
		if m := b.opts.Metrics; m != nil {
			m.Counter("serve.requests").Add(1)
			m.Gauge("serve.queue_depth").Set(float64(len(b.queue)))
		}
		return r.resp, nil
	default:
		b.count("serve.rejects_queue_full")
		return nil, ErrQueueFull
	}
}

// Shutdown stops admission and blocks until every accepted request has
// been answered. It is idempotent.
func (b *Batcher) Shutdown() {
	b.mu.Lock()
	first := !b.draining
	b.draining = true
	if first {
		// No Submit holds the read lock here, and none will pass the
		// draining check again, so closing the queue cannot race a send.
		close(b.queue)
	}
	b.mu.Unlock()
	<-b.done
}

func (b *Batcher) count(name string) {
	if m := b.opts.Metrics; m != nil {
		m.Counter(name).Add(1)
	}
}

// dispatch is the scheduler loop: block for the first request, then
// coalesce until the batch is full, the delay expires, or the queue is
// drained for shutdown.
func (b *Batcher) dispatch() {
	defer close(b.done)
	batch := make([]*Request, 0, b.opts.MaxBatch)
	imgs := make([][]float32, 0, b.opts.MaxBatch)
	for {
		r, ok := <-b.queue
		if !ok {
			return // drained: queue closed and emptied
		}
		batch = append(batch[:0], r)
		timer := time.NewTimer(b.opts.MaxDelay)
	fill:
		for len(batch) < b.opts.MaxBatch {
			select {
			case r2, ok := <-b.queue:
				if !ok {
					break fill // shutdown: run what we have
				}
				batch = append(batch, r2)
			case <-timer.C:
				break fill
			}
		}
		timer.Stop()
		if m := b.opts.Metrics; m != nil {
			m.Gauge("serve.queue_depth").Set(float64(len(b.queue)))
		}
		b.runBatch(batch, imgs)
	}
}

// runBatch expires overdue requests, executes the rest as one batch,
// and fans the per-request logits back out.
func (b *Batcher) runBatch(batch []*Request, imgs [][]float32) {
	now := time.Now()
	live := batch[:0]
	for _, r := range batch {
		if !r.Deadline.IsZero() && now.After(r.Deadline) {
			b.count("serve.timeouts_queue")
			r.Span.Record("queue", r.Enqueued, now)
			r.resp <- Response{Err: ErrDeadline, QueueWait: now.Sub(r.Enqueued)}
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	// Sampled requests in this batch: their queue span ends at batch
	// formation, and their forward spans all carry the same batch number
	// and the full list of coalesced sampled request IDs — the link that
	// makes a coalesced executor pass legible in the trace viewer.
	var sampledIDs []string
	for _, r := range live {
		if r.Span != nil {
			sampledIDs = append(sampledIDs, r.Span.ID())
		}
	}
	bid := b.batchSeq.Add(1)
	imgs = imgs[:0]
	for _, r := range live {
		imgs = append(imgs, r.Image)
	}
	fwdStart := time.Now()
	for _, r := range live {
		r.Span.Record("queue", r.Enqueued, now)
		r.Span.Record("assemble", now, fwdStart)
	}
	logits, err := b.run(imgs)
	fwdEnd := time.Now()
	for _, r := range live {
		r.Span.RecordArgs("forward", fwdStart, fwdEnd, map[string]any{
			"batch": bid, "batch_size": len(live), "requests": sampledIDs,
		})
	}
	if m := b.opts.Metrics; m != nil {
		m.Counter("serve.batches").Add(1)
		m.Histogram("serve.batch_size", batchSizeBuckets).Observe(float64(len(live)))
		// Per-request memory attribution: the batch's measured peak
		// activation bytes, whole and amortized over its occupants.
		if err == nil && b.opts.MemPeak != nil {
			if peak := b.opts.MemPeak(); peak > 0 {
				per := float64(peak) / float64(len(live))
				for range live {
					m.Histogram("serve.request_peak_bytes", trace.ByteBuckets).Observe(float64(peak))
					m.Histogram("serve.request_bytes_per_image", trace.ByteBuckets).Observe(per)
				}
			}
		}
	}
	for i, r := range live {
		resp := Response{BatchSize: len(live), QueueWait: now.Sub(r.Enqueued), Err: err}
		if err == nil {
			// Private copy: the instance's row buffers are reused by the
			// next batch, while this response may outlive it.
			resp.Logits = append([]float32(nil), logits[i]...)
		}
		r.resp <- resp
	}
	if m := b.opts.Metrics; m != nil {
		for _, r := range live {
			m.Histogram("serve.queue_seconds", trace.LatencyBuckets).Observe(now.Sub(r.Enqueued).Seconds())
		}
	}
}

// batchSizeBuckets resolve exact batch sizes up to 32; DefBuckets are
// seconds-flavored and useless for counts.
var batchSizeBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}
