package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"splitcnn/internal/serve"
	"splitcnn/internal/trace"
)

// startObsServer builds a one-model server with the given options and
// returns its base URL plus a shutdown func.
func startObsServer(t *testing.T, opts serve.Options) (*serve.Server, string, int) {
	t.Helper()
	snap := writeFixtureSnapshot(t)
	reg, err := serve.NewRegistry(serve.Spec{
		Name: "tiny", ModelText: modelText, Snapshot: snap, MaxBatch: 8,
	})
	if err != nil {
		t.Fatalf("registry: %v", err)
	}
	srv := serve.NewServer(reg, opts)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	inst, _ := reg.Lookup("")
	return srv, "http://" + addr.String(), inst.ImageLen()
}

func postPredict(t *testing.T, base string, img []float32) serve.PredictResponse {
	t.Helper()
	body, _ := json.Marshal(serve.PredictRequest{Model: "tiny", Image: img})
	resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status = %d", resp.StatusCode)
	}
	var pr serve.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatalf("predict decode: %v", err)
	}
	return pr
}

// TestServeRequestTracing is the tentpole acceptance test: with sampling
// at 1.0, every request must produce admission/queue/assemble/forward/
// respond stage spans sharing one request ID, and coalesced requests'
// forward spans must link the batch membership through their args.
func TestServeRequestTracing(t *testing.T) {
	srv, base, imageLen := startObsServer(t, serve.Options{
		MaxDelay:       10 * time.Millisecond,
		RequestTimeout: 30 * time.Second,
		TraceSample:    1.0,
	})

	const n = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			postPredict(t, base, testImage(i, imageLen))
		}(i)
	}
	close(start)
	wg.Wait()

	// /tracez serves the accumulated trace as a Chrome trace_event array.
	// The last Finish may still be in flight after the response was
	// written, so poll briefly for all spans to land.
	wantEvents := 5 * n // 5 stages per sampled request
	var events []trace.Event
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(base + "/tracez")
		if err != nil {
			t.Fatalf("tracez: %v", err)
		}
		events = events[:0]
		if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
			t.Fatalf("tracez decode: %v", err)
		}
		resp.Body.Close()
		if len(events) >= wantEvents || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := srv.Tracer().Sampled(); got != n {
		t.Errorf("sampled = %d, want %d", got, n)
	}
	if len(events) != wantEvents {
		t.Fatalf("trace has %d events, want %d (5 stages x %d requests)", len(events), wantEvents, n)
	}

	// Group stages by request ID: every request must carry all five
	// serving stages (well over the >= 4 acceptance floor).
	stages := make(map[string]map[string]bool)
	for _, e := range events {
		if e.Ph != "X" {
			t.Fatalf("event %q has ph %q, want complete event X", e.Name, e.Ph)
		}
		if e.Dur < 0 {
			t.Errorf("event %q has negative duration %v", e.Name, e.Dur)
		}
		id, _ := e.Args["request"].(string)
		if id == "" {
			t.Fatalf("event %q lacks a request arg: %v", e.Name, e.Args)
		}
		if stages[id] == nil {
			stages[id] = make(map[string]bool)
		}
		stages[id][e.Cat] = true
	}
	if len(stages) != n {
		t.Fatalf("trace covers %d request IDs, want %d", len(stages), n)
	}
	for id, got := range stages {
		for _, stage := range []string{"admit", "queue", "assemble", "forward", "respond"} {
			if !got[stage] {
				t.Errorf("request %s missing stage span %q (has %v)", id, stage, got)
			}
		}
	}

	// Forward spans link the coalesced batch: batch number, batch size,
	// and the member request IDs.
	forwards := 0
	for _, e := range events {
		if e.Cat != "forward" {
			continue
		}
		forwards++
		if _, ok := e.Args["batch"]; !ok {
			t.Errorf("forward span %v lacks batch arg", e.Args)
		}
		size, _ := e.Args["batch_size"].(float64)
		members, _ := e.Args["requests"].([]any)
		if int(size) != len(members) || size < 1 {
			t.Errorf("forward span batch_size %v != %d linked requests", size, len(members))
		}
		id := e.Args["request"].(string)
		found := false
		for _, m := range members {
			if m == id {
				found = true
			}
		}
		if !found {
			t.Errorf("forward span for %s does not list itself in requests %v", id, members)
		}
	}
	if forwards != n {
		t.Errorf("forward spans = %d, want %d", forwards, n)
	}
}

// TestServeTracingDisabled checks the zero-sample path: no tracer, nil
// span contexts throughout, and /tracez explains itself with a 404.
func TestServeTracingDisabled(t *testing.T) {
	srv, base, imageLen := startObsServer(t, serve.Options{RequestTimeout: 10 * time.Second})
	if srv.Tracer() != nil {
		t.Fatal("tracer should be nil at sample rate 0")
	}
	postPredict(t, base, testImage(0, imageLen))
	resp, err := http.Get(base + "/tracez")
	if err != nil {
		t.Fatalf("tracez: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("tracez status = %d, want 404 when tracing is off", resp.StatusCode)
	}
}

// TestServeMetricszNegotiation checks all three /metricsz formats: JSON
// default, Prometheus exposition via Accept or ?format=prom, legacy text.
func TestServeMetricszNegotiation(t *testing.T) {
	_, base, imageLen := startObsServer(t, serve.Options{RequestTimeout: 10 * time.Second})
	postPredict(t, base, testImage(0, imageLen))

	get := func(url, accept string) (string, string) {
		req, _ := http.NewRequest(http.MethodGet, url, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b), resp.Header.Get("Content-Type")
	}

	// Default: JSON, for existing scrapers.
	body, ct := get(base+"/metricsz", "")
	if !strings.HasPrefix(ct, "application/json") {
		t.Errorf("default content type = %q", ct)
	}
	var jm struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(body), &jm); err != nil {
		t.Fatalf("default JSON: %v", err)
	}
	if jm.Counters["serve.requests"] != 1 {
		t.Errorf("JSON serve.requests = %d, want 1", jm.Counters["serve.requests"])
	}

	// Prometheus exposition via Accept header (what a scraper sends).
	for _, tc := range []struct{ url, accept string }{
		{base + "/metricsz", "text/plain"},
		{base + "/metricsz?format=prom", ""},
	} {
		body, ct = get(tc.url, tc.accept)
		if !strings.Contains(ct, "version=0.0.4") {
			t.Errorf("%s accept=%q: content type = %q, want prometheus 0.0.4", tc.url, tc.accept, ct)
		}
		for _, want := range []string{
			"# TYPE serve_requests counter",
			"serve_requests 1",
			"# TYPE serve_latency_seconds histogram",
			`serve_latency_seconds_bucket{le="+Inf"} 1`,
			"serve_latency_seconds_count 1",
			"# TYPE serve_latency_p99_seconds gauge",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("%s accept=%q: exposition missing %q", tc.url, tc.accept, want)
			}
		}
	}

	// Legacy plain text is still reachable explicitly.
	body, _ = get(base+"/metricsz?format=text", "")
	if !strings.Contains(body, "counter serve.requests 1") {
		t.Errorf("legacy text missing counter line:\n%s", body)
	}
}

// TestServeMetricszConcurrentScrapes hammers the Prometheus endpoint
// while traffic flows; every scrape must be internally consistent
// (+Inf bucket == _count). Run with -race this also proves the
// exposition path is data-race free against live instruments.
func TestServeMetricszConcurrentScrapes(t *testing.T) {
	_, base, imageLen := startObsServer(t, serve.Options{
		RequestTimeout: 10 * time.Second,
		TraceSample:    0.5,
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					postPredict(t, base, testImage(w*1000+i, imageLen))
				}
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		req, _ := http.NewRequest(http.MethodGet, base+"/metricsz", nil)
		req.Header.Set("Accept", "text/plain")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var inf, count int64 = -1, -1
		for _, line := range strings.Split(string(b), "\n") {
			if rest, ok := strings.CutPrefix(line, `serve_latency_seconds_bucket{le="+Inf"} `); ok {
				fmt.Sscan(rest, &inf)
			}
			if rest, ok := strings.CutPrefix(line, "serve_latency_seconds_count "); ok {
				fmt.Sscan(rest, &count)
			}
		}
		if inf != count {
			t.Fatalf("scrape %d torn: +Inf bucket %d != count %d", i, inf, count)
		}
	}
	close(stop)
	wg.Wait()
}

// TestServeHealthzBuildInfo checks that /healthz reports the binary's
// build provenance and uptime alongside liveness.
func TestServeHealthzBuildInfo(t *testing.T) {
	_, base, _ := startObsServer(t, serve.Options{RequestTimeout: 10 * time.Second})
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	var h struct {
		Status        string  `json:"status"`
		GoVersion     string  `json:"go_version"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q", h.Status)
	}
	if h.GoVersion == "" {
		t.Error("healthz lacks go_version build info")
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("uptime = %v", h.UptimeSeconds)
	}
}

// TestServePprofGate checks that /debug/pprof is absent by default and
// mounted when EnablePprof is set.
func TestServePprofGate(t *testing.T) {
	_, off, _ := startObsServer(t, serve.Options{RequestTimeout: 10 * time.Second})
	resp, err := http.Get(off + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof off: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("pprof reachable without EnablePprof")
	}

	_, on, _ := startObsServer(t, serve.Options{RequestTimeout: 10 * time.Second, EnablePprof: true})
	resp, err = http.Get(on + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof on: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status = %d with EnablePprof", resp.StatusCode)
	}
}

// TestServeRuntimeMetrics checks the background sampler feeds runtime.*
// and aggregate arena.* gauges into the server registry.
func TestServeRuntimeMetrics(t *testing.T) {
	srv, _, _ := startObsServer(t, serve.Options{
		RequestTimeout:         10 * time.Second,
		RuntimeMetricsInterval: 20 * time.Millisecond,
	})
	// The first sample is synchronous with Start, so the gauges are
	// already populated.
	m := srv.Metrics()
	if v := m.Gauge("runtime.heap_alloc_bytes").Value(); v <= 0 {
		t.Errorf("runtime.heap_alloc_bytes = %v, want > 0", v)
	}
	if v := m.Gauge("runtime.goroutines").Value(); v <= 0 {
		t.Errorf("runtime.goroutines = %v, want > 0", v)
	}
	// The registry warmed each instance's arena with a full forward, so
	// the aggregate high-water mark must be visible.
	if v := m.Gauge("arena.high_water_bytes").Value(); v <= 0 {
		t.Errorf("arena.high_water_bytes = %v, want > 0 after warmup", v)
	}
}
