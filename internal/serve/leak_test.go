package serve_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"splitcnn/internal/serve"
	"splitcnn/internal/trace"
)

// TestArenaLeakCanary is the memory-leak canary: under concurrent load
// the executor arena vends storage per pass, and after the load stops
// and the server drains gracefully, arena in-use bytes must return to
// the idle baseline — both on the live instance counters and on the
// arena.in_use_bytes gauge the runtime sampler publishes. Run with
// -race in CI (make mem-smoke covers the serve binary; this covers the
// library path).
func TestArenaLeakCanary(t *testing.T) {
	met := trace.NewMetrics()
	snap := writeFixtureSnapshot(t)
	reg, err := serve.NewRegistry(serve.Spec{
		Name: "tiny", ModelText: modelText, Snapshot: snap, MaxBatch: 8,
	})
	if err != nil {
		t.Fatalf("registry: %v", err)
	}
	srv := serve.NewServer(reg, serve.Options{
		MaxDelay:               time.Millisecond,
		QueueDepth:             256,
		RequestTimeout:         30 * time.Second,
		Metrics:                met,
		RuntimeMetricsInterval: 10 * time.Millisecond,
		NoProfiler:             true,
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	base := "http://" + addr.String()
	inst, _ := reg.Lookup("")
	baseline := inst.ArenaStats().InUseBytes

	const clients, perClient = 8, 25
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			img := make([]float32, inst.ImageLen())
			for j := 0; j < perClient; j++ {
				postPredict(t, base, img)
			}
		}()
	}
	wg.Wait()

	if hw := inst.ArenaStats().HighWaterBytes; hw <= baseline {
		t.Fatalf("arena high water = %d, want > baseline %d (load never touched the arena)", hw, baseline)
	}

	// All responses are in hand, so every pass has released its arena
	// storage; poll briefly for the sampler to publish the settled value.
	deadline := time.Now().Add(2 * time.Second)
	for {
		live := inst.ArenaStats().InUseBytes
		gauge := int64(met.Gauge("arena.in_use_bytes").Value())
		if live == baseline && gauge == baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("arena did not drain: in-use %d (gauge %d), baseline %d", live, gauge, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := inst.ArenaStats().InUseBytes; got != baseline {
		t.Fatalf("post-drain arena in-use = %d, want baseline %d", got, baseline)
	}
}
