package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"splitcnn/internal/graph"
	"splitcnn/internal/modelfile"
	"splitcnn/internal/nn"
	"splitcnn/internal/serve"
	"splitcnn/internal/snapshot"
	"splitcnn/internal/trace"
)

// modelText is a deliberately modal architecture: dropout must become
// the identity and batch norm must use the snapshot's running
// statistics for serving outputs to be reproducible at all.
const modelText = `
input 3 6 6
conv 4 k3 s1 p1
bn
relu
pool max k2 s2
flatten
dropout 0.3
linear 5
`

// writeFixtureSnapshot builds the test model once, gives it non-trivial
// weights and BN running statistics, and saves them. Serving instances
// and the reference instance all restore from this one file, which is
// what makes bit-identity assertions meaningful.
func writeFixtureSnapshot(t *testing.T) string {
	t.Helper()
	m, err := modelfile.ParseString(modelText, 1)
	if err != nil {
		t.Fatalf("parse fixture model: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	store := graph.NewParamStore()
	store.InitFromGraph(m.Graph, rng, nn.KaimingInit)
	for _, st := range m.BNStates {
		for i := range st.RunningMean {
			st.RunningMean[i] = rng.NormFloat64() * 0.3
			st.RunningVar[i] = 0.5 + rng.Float64()
		}
	}
	path := filepath.Join(t.TempDir(), "fixture.snap")
	if err := snapshot.SaveFile(path, store, m.BNStates); err != nil {
		t.Fatalf("save fixture snapshot: %v", err)
	}
	return path
}

func testImage(i, n int) []float32 {
	rng := rand.New(rand.NewSource(int64(1000 + i)))
	img := make([]float32, n)
	for j := range img {
		img[j] = float32(rng.NormFloat64())
	}
	return img
}

// TestServeEndToEnd starts the HTTP server, fires 64 concurrent
// requests, and checks the acceptance criteria: every response is
// bit-identical to a single-request eval-mode forward of the same
// image, and at least one batch coalesced more than one request.
func TestServeEndToEnd(t *testing.T) {
	snap := writeFixtureSnapshot(t)
	reg, err := serve.NewRegistry(serve.Spec{
		Name: "tiny", ModelText: modelText, Snapshot: snap, MaxBatch: 8,
	})
	if err != nil {
		t.Fatalf("registry: %v", err)
	}
	srv := serve.NewServer(reg, serve.Options{
		MaxDelay:       20 * time.Millisecond,
		QueueDepth:     128,
		RequestTimeout: 30 * time.Second,
		Metrics:        trace.NewMetrics(),
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	base := "http://" + addr.String()

	// Reference: a separate batch-1 instance restored from the same
	// snapshot. Its Run is the "single-request eval-mode forward" the
	// server's coalesced outputs must match bit for bit.
	ref, err := serve.Load(serve.Spec{
		Name: "ref", ModelText: modelText, Snapshot: snap, MaxBatch: 1,
	})
	if err != nil {
		t.Fatalf("reference instance: %v", err)
	}
	imageLen := ref.ImageLen()

	const n = 64
	got := make([]serve.PredictResponse, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(serve.PredictRequest{Model: "tiny", Image: testImage(i, imageLen)})
			<-start
			resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- fmt.Errorf("request %d: %w", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("request %d: status %d", i, resp.StatusCode)
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&got[i]); err != nil {
				errs <- fmt.Errorf("request %d: decode: %w", i, err)
			}
		}(i)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Bit-identity: JSON renders float32 with the shortest decimal that
	// re-parses to the identical bits, so == over the decoded values is
	// an exact comparison with the reference forward.
	coalesced := 0
	for i := 0; i < n; i++ {
		want, err := ref.Run([][]float32{testImage(i, imageLen)})
		if err != nil {
			t.Fatalf("reference forward %d: %v", i, err)
		}
		if len(got[i].Logits) != len(want[0]) {
			t.Fatalf("request %d: %d logits, want %d", i, len(got[i].Logits), len(want[0]))
		}
		for j := range want[0] {
			if got[i].Logits[j] != want[0][j] {
				t.Errorf("request %d logit %d = %v, want %v (batch size %d)",
					i, j, got[i].Logits[j], want[0][j], got[i].BatchSize)
			}
		}
		wantArg := 0
		for j, v := range want[0] {
			if v > want[0][wantArg] {
				wantArg = j
			}
		}
		if got[i].Argmax != wantArg {
			t.Errorf("request %d argmax = %d, want %d", i, got[i].Argmax, wantArg)
		}
		if got[i].BatchSize > 1 {
			coalesced++
		}
	}
	if coalesced == 0 {
		t.Error("no request was coalesced into a batch > 1 across 64 concurrent requests")
	}

	met := srv.Metrics()
	if v := met.Counter("serve.requests").Value(); v != n {
		t.Errorf("serve.requests = %d, want %d", v, n)
	}
	batches := met.Histogram("serve.batch_size", nil).Count()
	if batches < 1 || batches >= n {
		t.Errorf("serve.batch_size count = %d, want in [1, %d) (coalescing)", batches, n)
	}
	if v := met.Histogram("serve.latency_seconds", nil).Count(); v != n {
		t.Errorf("serve.latency_seconds count = %d, want %d", v, n)
	}

	// Error paths: wrong image length and unknown model.
	for _, tc := range []struct {
		req  serve.PredictRequest
		code int
	}{
		{serve.PredictRequest{Model: "tiny", Image: []float32{1, 2, 3}}, http.StatusBadRequest},
		{serve.PredictRequest{Model: "nope", Image: testImage(0, imageLen)}, http.StatusNotFound},
	} {
		body, _ := json.Marshal(tc.req)
		resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("error-path request: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("model=%q len=%d: status %d, want %d", tc.req.Model, len(tc.req.Image), resp.StatusCode, tc.code)
		}
	}

	// Introspection endpoints.
	resp, err := http.Get(base + "/v1/models")
	if err != nil {
		t.Fatalf("models: %v", err)
	}
	var infos []serve.ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatalf("models decode: %v", err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].Name != "tiny" || infos[0].Classes != 5 ||
		infos[0].Input != [3]int{3, 6, 6} || infos[0].MaxBatch != 8 {
		t.Errorf("models = %+v", infos)
	}

	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}

	resp, err = http.Get(base + "/metricsz")
	if err != nil {
		t.Fatalf("metricsz: %v", err)
	}
	var md struct {
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&md); err != nil {
		t.Fatalf("metricsz decode: %v", err)
	}
	resp.Body.Close()
	if md.Counters["serve.requests"] != n {
		t.Errorf("metricsz serve.requests = %d, want %d", md.Counters["serve.requests"], n)
	}
	if p99 := md.Gauges["serve.latency_p99_seconds"]; p99 <= 0 {
		t.Errorf("metricsz serve.latency_p99_seconds = %v, want > 0", p99)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServeDefaultModel checks that an empty model name routes to the
// first-registered model.
func TestServeDefaultModel(t *testing.T) {
	snap := writeFixtureSnapshot(t)
	reg, err := serve.NewRegistry(serve.Spec{
		Name: "tiny", ModelText: modelText, Snapshot: snap, MaxBatch: 2,
	})
	if err != nil {
		t.Fatalf("registry: %v", err)
	}
	srv := serve.NewServer(reg, serve.Options{RequestTimeout: 10 * time.Second})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	inst, _ := reg.Lookup("")
	body, _ := json.Marshal(serve.PredictRequest{Image: testImage(0, inst.ImageLen())})
	resp, err := http.Post("http://"+addr.String()+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var pr serve.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if pr.Model != "tiny" {
		t.Errorf("default routing hit model %q, want tiny", pr.Model)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
