package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"splitcnn/internal/serve"
	"splitcnn/internal/trace"
)

// TestServeCompiledEndToEnd serves through the compiled static program
// (Spec.Compiled) under 64 concurrent clients and checks every response
// is bit-identical to a single-request forward of the *interpreted*
// reference instance restored from the same snapshot — the compiled
// path must be invisible to callers. Runs under -race in `make race`,
// which also exercises the dispatcher/program handoff.
func TestServeCompiledEndToEnd(t *testing.T) {
	snap := writeFixtureSnapshot(t)
	reg, err := serve.NewRegistry(serve.Spec{
		Name: "tiny", ModelText: modelText, Snapshot: snap, MaxBatch: 8, Compiled: true,
	})
	if err != nil {
		t.Fatalf("registry: %v", err)
	}
	if inst, _ := reg.Lookup("tiny"); !inst.Compiled() {
		t.Fatal("instance did not take the compiled path")
	}
	srv := serve.NewServer(reg, serve.Options{
		MaxDelay:       20 * time.Millisecond,
		QueueDepth:     128,
		RequestTimeout: 30 * time.Second,
		Metrics:        trace.NewMetrics(),
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	base := "http://" + addr.String()

	// The reference deliberately stays on the interpreted executor:
	// matching it bit for bit is the whole point of the test.
	ref, err := serve.Load(serve.Spec{
		Name: "ref", ModelText: modelText, Snapshot: snap, MaxBatch: 1,
	})
	if err != nil {
		t.Fatalf("reference instance: %v", err)
	}
	imageLen := ref.ImageLen()

	const n = 64
	got := make([]serve.PredictResponse, n)
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(serve.PredictRequest{Model: "tiny", Image: testImage(i, imageLen)})
			<-start
			resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- fmt.Errorf("request %d: %w", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("request %d: status %d", i, resp.StatusCode)
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&got[i]); err != nil {
				errs <- fmt.Errorf("request %d: decode: %w", i, err)
			}
		}(i)
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	coalesced := 0
	for i := 0; i < n; i++ {
		want, err := ref.Run([][]float32{testImage(i, imageLen)})
		if err != nil {
			t.Fatalf("reference forward %d: %v", i, err)
		}
		if len(got[i].Logits) != len(want[0]) {
			t.Fatalf("request %d: %d logits, want %d", i, len(got[i].Logits), len(want[0]))
		}
		for j := range want[0] {
			if got[i].Logits[j] != want[0][j] {
				t.Errorf("request %d logit %d = %v, want interpreted-identical %v (batch size %d)",
					i, j, got[i].Logits[j], want[0][j], got[i].BatchSize)
			}
		}
		if got[i].BatchSize > 1 {
			coalesced++
		}
	}
	if coalesced == 0 {
		t.Error("no request was coalesced into a batch > 1 across 64 concurrent requests")
	}

	// The burst can leave a spare pooled connection that never carried a
	// request; the server sees it in StateNew and Shutdown only reaps
	// idle conns. Close the client side so the drain is deterministic.
	http.DefaultClient.CloseIdleConnections()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
