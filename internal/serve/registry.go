// Package serve is the inference-serving subsystem: a model registry
// that instantiates architectures behind warmed arena executors, a
// dynamic micro-batching scheduler that coalesces concurrent
// single-image requests, and an HTTP front end with admission control,
// per-request deadlines, graceful draining and a metrics surface.
//
// The serving path runs the graph executor in inference mode
// (graph.SetTraining(false)): dropout is the identity and batch
// normalization uses the running statistics restored from a weight
// snapshot. Because every op is then per-sample independent and the
// kernels reduce in a batch-position-invariant order, a request's
// logits are bit-identical whether it runs alone or coalesced into a
// larger batch — the property that makes transparent dynamic batching
// sound.
package serve

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"

	"splitcnn/internal/autotune"
	"splitcnn/internal/graph"
	"splitcnn/internal/memobs"
	"splitcnn/internal/modelfile"
	"splitcnn/internal/models"
	"splitcnn/internal/nn"
	"splitcnn/internal/snapshot"
	"splitcnn/internal/tensor"
)

// Spec describes one model to load into the registry.
type Spec struct {
	// Name keys the instance in the registry (and in predict requests).
	Name string
	// ModelFile, when set, loads a modelfile-DSL description from disk;
	// ModelText does the same from an in-memory string (tests, -smoke).
	// Otherwise Arch selects a built-in architecture configured by Model.
	ModelFile string
	ModelText string
	Arch      string
	// Model configures built-in architectures (input geometry, classes,
	// width divisor, BN options). BatchSize and Eval are overridden.
	Model models.Config
	// Snapshot, when set, restores trained weights and BN running
	// statistics; otherwise the instance serves deterministic random
	// initialization (useful for load testing).
	Snapshot string
	// MaxBatch is the executor batch size and the batcher's coalescing
	// cap (default 8).
	MaxBatch int
	// Compiled serves through graph.Compile's static program instead of
	// the interpreted arena executor: inference rewrites (fused
	// conv+bias+ReLU passes, elided dropout) plus a fixed-offset memory
	// plan in one pre-sized slab. Logits are bit-identical either way.
	Compiled bool
	// Tune runs the convolution autotuner over the model's conv sites
	// before the executor is built, so every serving forward dispatches
	// to the measured-fastest backend per shape and the (compiled)
	// memory plan is sized for the algorithms that actually run.
	// Concurrent loads of the same geometry share one measurement
	// (the tuner singleflights per shape).
	Tune bool
	// TuneCache, with Tune, loads previously persisted plans from this
	// file first (cached shapes skip re-measurement) and saves any newly
	// measured plans back. Empty means tune in memory only.
	TuneCache string
}

// Instance is one servable model: an inference-mode graph at the
// serving batch size, its parameters, and a warmed arena executor.
// Run is not safe for concurrent use — the batcher's dispatcher is the
// sole caller.
type Instance struct {
	Name     string
	Classes  int
	C, H, W  int
	MaxBatch int

	ex     *graph.Executor
	prog   *graph.CompiledProgram // non-nil when Spec.Compiled
	logits *graph.Node
	batchX *tensor.Tensor
	labels *tensor.Tensor
	feeds  graph.Feeds
	out    [][]float32 // reused per-slot output buffers

	// Mem collects the measured memory timeline: per-step slab/arena
	// occupancy on the compiled path, per-op arena occupancy on the
	// interpreted one.
	Mem *memobs.Collector
}

// ImageLen returns the expected flattened image length (C*H*W).
func (in *Instance) ImageLen() int { return in.C * in.H * in.W }

// ArenaStats snapshots the instance's executor arena counters, for the
// server's aggregate arena.* occupancy gauges. A compiled instance
// reports its kernel-scratch arena — activations live in the static
// slab and never touch an arena.
func (in *Instance) ArenaStats() tensor.ArenaStats {
	if in.prog != nil {
		return in.prog.Arena().Stats()
	}
	return in.ex.Arena().Stats()
}

// Compiled reports whether the instance serves through the compiled
// static program.
func (in *Instance) Compiled() bool { return in.prog != nil }

// Materialize builds the inference-mode model described by spec —
// graph construction, weight initialization (or snapshot restore),
// eval-mode flip, logits-only output, optional autotuning — without
// committing to an execution strategy. Load wraps it in a batching
// Instance; the distributed serving layer (internal/distserve) calls it
// directly so router and shard workers materialize the identical model.
func Materialize(spec Spec) (*models.Model, *graph.ParamStore, error) {
	maxBatch := spec.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 8
	}
	var m *models.Model
	var err error
	switch {
	case spec.ModelText != "":
		m, err = modelfile.ParseString(spec.ModelText, maxBatch)
	case spec.ModelFile != "":
		var f *os.File
		if f, err = os.Open(spec.ModelFile); err == nil {
			m, err = modelfile.Parse(f, maxBatch)
			f.Close()
		}
	case spec.Arch != "":
		cfg := spec.Model
		cfg.BatchSize = maxBatch
		cfg.Eval = false // flipped below via SetTraining, uniformly
		m, err = models.Build(spec.Arch, cfg)
	default:
		err = fmt.Errorf("spec %q: one of ModelText, ModelFile or Arch required", spec.Name)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("serve: load %q: %w", spec.Name, err)
	}

	store := graph.NewParamStore()
	store.InitFromGraph(m.Graph, rand.New(rand.NewSource(1)), nn.KaimingInit)
	if spec.Snapshot != "" {
		if err := snapshot.LoadFile(spec.Snapshot, store, m.BNStates); err != nil {
			return nil, nil, fmt.Errorf("serve: load %q: %w", spec.Name, err)
		}
	}

	// Inference mode, logits as the only graph output. The loss node
	// still executes (it is in the topo order), so the labels input is
	// fed zeros; its cost is negligible next to the convolutions.
	m.Graph.SetTraining(false)
	m.Graph.SetOutput(m.Logits)

	// Autotune before the executor/compile step: graph.Compile sizes
	// each conv's workspace from the plan that will actually dispatch,
	// and the warmup forward below then runs the tuned kernels.
	if spec.Tune {
		if spec.TuneCache != "" {
			if err := autotune.Default.Load(spec.TuneCache); err != nil {
				return nil, nil, fmt.Errorf("serve: load %q: tune cache: %w", spec.Name, err)
			}
		}
		autotune.Default.TuneGraph(m.Graph)
		if spec.TuneCache != "" {
			if err := autotune.Default.Save(); err != nil {
				return nil, nil, fmt.Errorf("serve: load %q: tune cache: %w", spec.Name, err)
			}
		}
	}
	return m, store, nil
}

// Load builds the instance described by spec: construct the graph,
// initialize (or restore) the weights, flip to inference mode, and warm
// the arena with one full-batch forward pass so steady-state serving
// allocates nothing.
func Load(spec Spec) (*Instance, error) {
	maxBatch := spec.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 8
	}
	m, store, err := Materialize(spec)
	if err != nil {
		return nil, err
	}

	var ex *graph.Executor
	var prog *graph.CompiledProgram
	if spec.Compiled {
		prog, err = graph.Compile(m.Graph, store, graph.CompileOptions{})
	} else {
		ex, err = graph.NewExecutor(m.Graph, store)
		if err == nil {
			ex.UseArena(tensor.NewArena())
		}
	}
	if err != nil {
		return nil, fmt.Errorf("serve: load %q: %w", spec.Name, err)
	}

	s := m.Input.Shape
	inst := &Instance{
		Name:     spec.Name,
		Classes:  m.Classes,
		C:        s.C(),
		H:        s.H(),
		W:        s.W(),
		MaxBatch: maxBatch,
		ex:       ex,
		prog:     prog,
		logits:   m.Graph.Outputs[0],
		batchX:   tensor.New(maxBatch, s.C(), s.H(), s.W()),
		labels:   tensor.New(maxBatch),
		out:      make([][]float32, maxBatch),
	}
	inst.feeds = graph.Feeds{"image": inst.batchX, "labels": inst.labels}
	if prog != nil {
		inst.Mem = memobs.AttachCompiled(prog)
	} else {
		inst.Mem = memobs.AttachExecutor(ex)
	}
	for i := range inst.out {
		inst.out[i] = make([]float32, m.Classes)
	}
	// Warm the arena: the first forward populates the pool; every later
	// batch recycles through it.
	if _, err := inst.Run(make([][]float32, 1)); err != nil {
		return nil, fmt.Errorf("serve: warmup %q: %w", spec.Name, err)
	}
	return inst, nil
}

// Run executes one coalesced batch: imgs holds up to MaxBatch flattened
// C*H*W images (nil entries are treated as zero images). It returns one
// logits slice per input image; the slices are owned by the instance
// and valid until the next Run call.
func (in *Instance) Run(imgs [][]float32) ([][]float32, error) {
	if len(imgs) == 0 || len(imgs) > in.MaxBatch {
		return nil, fmt.Errorf("serve: batch size %d out of range [1, %d]", len(imgs), in.MaxBatch)
	}
	want := in.ImageLen()
	xd := in.batchX.Data()
	for i := 0; i < in.MaxBatch; i++ {
		dst := xd[i*want : (i+1)*want]
		if i < len(imgs) && imgs[i] != nil {
			if len(imgs[i]) != want {
				return nil, fmt.Errorf("serve: image %d has %d values, want %d", i, len(imgs[i]), want)
			}
			copy(dst, imgs[i])
		} else {
			clear(dst)
		}
	}
	var outs []*tensor.Tensor
	var err error
	if in.prog != nil {
		outs, err = in.prog.Forward(in.feeds)
	} else {
		outs, err = in.ex.Forward(in.feeds)
	}
	if err != nil {
		return nil, err
	}
	if in.prog == nil && in.Mem != nil {
		// The compiled collector closes its pass on the final step hook;
		// the interpreted one has no step count and is flushed here.
		in.Mem.FlushPass()
	}
	ld := outs[0].Data()
	res := in.out[:len(imgs)]
	for i := range res {
		copy(res[i], ld[i*in.Classes:(i+1)*in.Classes])
	}
	return res, nil
}

// Registry maps model names to loaded instances. It is immutable after
// construction, so lookups need no locking.
type Registry struct {
	byName map[string]*Instance
	names  []string
}

// NewRegistry loads every spec and returns the registry. The first spec
// is the default model for requests that name none.
func NewRegistry(specs ...Spec) (*Registry, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("serve: registry needs at least one model")
	}
	r := &Registry{byName: make(map[string]*Instance, len(specs))}
	for _, spec := range specs {
		if spec.Name == "" {
			spec.Name = "default"
		}
		if _, dup := r.byName[spec.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate model name %q", spec.Name)
		}
		inst, err := Load(spec)
		if err != nil {
			return nil, err
		}
		r.byName[spec.Name] = inst
		r.names = append(r.names, spec.Name)
	}
	return r, nil
}

// Lookup returns the named instance; an empty name selects the default
// (first-loaded) model.
func (r *Registry) Lookup(name string) (*Instance, error) {
	if name == "" {
		return r.byName[r.names[0]], nil
	}
	if in, ok := r.byName[name]; ok {
		return in, nil
	}
	sorted := append([]string(nil), r.names...)
	sort.Strings(sorted)
	return nil, fmt.Errorf("unknown model %q (have %s)", name, strings.Join(sorted, ", "))
}

// Names returns the model names in load order.
func (r *Registry) Names() []string { return r.names }
