package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"splitcnn/internal/trace"
)

// echoRun is a fake instance runner: it echoes image[0] back as the
// single logit, so tests can verify each request got its own answer.
// It also records the largest batch it ever saw.
func echoRun(maxSeen *int64) func([][]float32) ([][]float32, error) {
	return func(imgs [][]float32) ([][]float32, error) {
		for {
			old := atomic.LoadInt64(maxSeen)
			if int64(len(imgs)) <= old || atomic.CompareAndSwapInt64(maxSeen, old, int64(len(imgs))) {
				break
			}
		}
		out := make([][]float32, len(imgs))
		for i, img := range imgs {
			out[i] = []float32{img[0]}
		}
		return out, nil
	}
}

// TestBatcherEveryRequestAnswered floods the batcher from N concurrent
// clients and asserts every request receives exactly one response
// carrying its own logits, and that no batch exceeds the cap.
func TestBatcherEveryRequestAnswered(t *testing.T) {
	const n = 100
	const maxBatch = 4
	var maxSeen int64
	b := newBatcher(echoRun(&maxSeen), BatcherOptions{
		MaxBatch:   maxBatch,
		MaxDelay:   time.Millisecond,
		QueueDepth: n,
		Metrics:    trace.NewMetrics(),
	})
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := &Request{Image: []float32{float32(i)}}
			ch, err := b.Submit(req)
			if err != nil {
				errs <- err
				return
			}
			resp := <-ch
			if resp.Err != nil {
				errs <- resp.Err
				return
			}
			if len(resp.Logits) != 1 || resp.Logits[0] != float32(i) {
				t.Errorf("request %d got logits %v", i, resp.Logits)
			}
			if resp.BatchSize < 1 || resp.BatchSize > maxBatch {
				t.Errorf("request %d reports batch size %d", i, resp.BatchSize)
			}
			// Exactly one response: the channel must now be empty and
			// never receive again (the dispatcher sends once).
			select {
			case extra := <-ch:
				t.Errorf("request %d got a second response: %+v", i, extra)
			default:
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("submit/response error: %v", err)
	}
	if maxSeen > maxBatch {
		t.Errorf("a batch of %d exceeded the cap %d", maxSeen, maxBatch)
	}
	b.Shutdown()
	if m := b.opts.Metrics; m.Counter("serve.requests").Value() != n {
		t.Errorf("serve.requests = %d, want %d", m.Counter("serve.requests").Value(), n)
	}
}

// TestBatcherCoalesces blocks the runner on the first request, queues
// three more behind it, and asserts they launch as one batch.
func TestBatcherCoalesces(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	first := true
	run := func(imgs [][]float32) ([][]float32, error) {
		if first {
			first = false // only the dispatcher goroutine calls run
			started <- struct{}{}
			<-release
		}
		out := make([][]float32, len(imgs))
		for i := range imgs {
			out[i] = []float32{0}
		}
		return out, nil
	}
	b := newBatcher(run, BatcherOptions{MaxBatch: 4, MaxDelay: 10 * time.Millisecond, QueueDepth: 16})
	ch0, err := b.Submit(&Request{Image: []float32{0}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started // dispatcher is now inside run; the queue is idle
	var chans []<-chan Response
	for i := 0; i < 3; i++ {
		ch, err := b.Submit(&Request{Image: []float32{0}})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans = append(chans, ch)
	}
	close(release)
	if resp := <-ch0; resp.BatchSize != 1 {
		t.Errorf("blocked request batch size = %d, want 1", resp.BatchSize)
	}
	for i, ch := range chans {
		if resp := <-ch; resp.BatchSize != 3 {
			t.Errorf("queued request %d batch size = %d, want 3 (coalesced)", i, resp.BatchSize)
		}
	}
	b.Shutdown()
}

// TestBatcherQueueFullRejects verifies admission control: with the
// dispatcher wedged and the bounded queue full, Submit fails fast with
// ErrQueueFull, and every accepted request is still answered.
func TestBatcherQueueFullRejects(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	run := func(imgs [][]float32) ([][]float32, error) {
		once.Do(func() {
			started <- struct{}{}
			<-release
		})
		out := make([][]float32, len(imgs))
		for i := range imgs {
			out[i] = []float32{0}
		}
		return out, nil
	}
	met := trace.NewMetrics()
	b := newBatcher(run, BatcherOptions{MaxBatch: 1, MaxDelay: time.Millisecond, QueueDepth: 2, Metrics: met})
	var accepted []<-chan Response
	ch, err := b.Submit(&Request{Image: []float32{0}})
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	accepted = append(accepted, ch)
	<-started // dispatcher wedged in run; nothing drains the queue now
	sawFull := false
	for i := 0; i < 4; i++ { // queue holds 2; the rest must bounce
		ch, err := b.Submit(&Request{Image: []float32{0}})
		switch {
		case err == nil:
			accepted = append(accepted, ch)
		case errors.Is(err, ErrQueueFull):
			sawFull = true
		default:
			t.Fatalf("submit %d: unexpected error %v", i, err)
		}
	}
	if !sawFull {
		t.Fatal("never saw ErrQueueFull with a wedged dispatcher and a depth-2 queue")
	}
	if len(accepted) != 3 { // 1 in flight + 2 queued
		t.Errorf("accepted %d requests, want 3", len(accepted))
	}
	close(release)
	for i, ch := range accepted {
		if resp := <-ch; resp.Err != nil {
			t.Errorf("accepted request %d failed: %v", i, resp.Err)
		}
	}
	if v := met.Counter("serve.rejects_queue_full").Value(); v < 1 {
		t.Errorf("serve.rejects_queue_full = %d, want >= 1", v)
	}
	b.Shutdown()
}

// TestBatcherShutdownDrains submits a burst, shuts down concurrently,
// and asserts every accepted request is answered (no drops) while
// post-shutdown submissions fail with ErrDraining.
func TestBatcherShutdownDrains(t *testing.T) {
	var maxSeen int64
	b := newBatcher(echoRun(&maxSeen), BatcherOptions{MaxBatch: 4, MaxDelay: time.Millisecond, QueueDepth: 64})
	const n = 32
	chans := make([]<-chan Response, 0, n)
	for i := 0; i < n; i++ {
		ch, err := b.Submit(&Request{Image: []float32{float32(i)}})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans = append(chans, ch)
	}
	done := make(chan struct{})
	go func() {
		b.Shutdown()
		close(done)
	}()
	for i, ch := range chans {
		resp := <-ch
		if resp.Err != nil {
			t.Errorf("accepted request %d dropped during drain: %v", i, resp.Err)
		} else if resp.Logits[0] != float32(i) {
			t.Errorf("request %d got logits %v during drain", i, resp.Logits)
		}
	}
	<-done
	if _, err := b.Submit(&Request{Image: []float32{0}}); !errors.Is(err, ErrDraining) {
		t.Errorf("post-shutdown Submit error = %v, want ErrDraining", err)
	}
	b.Shutdown() // idempotent
}

// TestBatcherExpiresDeadlines checks that a request whose deadline
// passed while queued is answered with ErrDeadline and never executed.
func TestBatcherExpiresDeadlines(t *testing.T) {
	var calls int64
	run := func(imgs [][]float32) ([][]float32, error) {
		atomic.AddInt64(&calls, 1)
		out := make([][]float32, len(imgs))
		for i := range imgs {
			out[i] = []float32{0}
		}
		return out, nil
	}
	met := trace.NewMetrics()
	b := newBatcher(run, BatcherOptions{MaxBatch: 4, MaxDelay: time.Millisecond, QueueDepth: 8, Metrics: met})
	ch, err := b.Submit(&Request{Image: []float32{0}, Deadline: time.Now().Add(-time.Second)})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	resp := <-ch
	if !errors.Is(resp.Err, ErrDeadline) {
		t.Fatalf("response error = %v, want ErrDeadline", resp.Err)
	}
	if n := atomic.LoadInt64(&calls); n != 0 {
		t.Errorf("runner called %d times for an all-expired batch, want 0", n)
	}
	if v := met.Counter("serve.timeouts_queue").Value(); v != 1 {
		t.Errorf("serve.timeouts_queue = %d, want 1", v)
	}
	b.Shutdown()
}
