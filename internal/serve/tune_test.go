package serve_test

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"splitcnn/internal/autotune"
	"splitcnn/internal/serve"
)

// TestConcurrentTunedLoads is the race-detector coverage for warmup
// tuning: several goroutines load tuned instances of the same model at
// once — the shape-level singleflight plus the shared cache file must
// survive `go test -race` with every load producing a working
// instance and the same logits as an untuned one.
func TestConcurrentTunedLoads(t *testing.T) {
	defer autotune.Default.Reset()
	snap := writeFixtureSnapshot(t)
	cache := filepath.Join(t.TempDir(), "autotune.json")

	// Untuned reference logits for the shared fixture weights.
	ref, err := serve.Load(serve.Spec{
		Name: "ref", ModelText: modelText, Snapshot: snap, MaxBatch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	img := testImage(3, ref.ImageLen())
	want, err := ref.Run([][]float32{img})
	if err != nil {
		t.Fatal(err)
	}
	wantLogits := append([]float32(nil), want[0]...)

	const loaders = 6
	insts := make([]*serve.Instance, loaders)
	errs := make([]error, loaders)
	var wg sync.WaitGroup
	for i := 0; i < loaders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := serve.Spec{
				Name: "tuned", ModelText: modelText, Snapshot: snap,
				MaxBatch: 2, Tune: true, TuneCache: cache,
				Compiled: i%2 == 1, // mix compiled and interpreted loads
			}
			insts[i], errs[i] = serve.Load(spec)
		}(i)
	}
	wg.Wait()

	for i := 0; i < loaders; i++ {
		if errs[i] != nil {
			t.Fatalf("loader %d: %v", i, errs[i])
		}
		got, err := insts[i].Run([][]float32{img})
		if err != nil {
			t.Fatalf("loader %d run: %v", i, err)
		}
		// Whatever backend won, serving output stays within the FFT
		// backend's pinned tolerance of the untuned reference; with a
		// GEMM-family winner it is bit-identical.
		for j := range wantLogits {
			d := float64(got[0][j] - wantLogits[j])
			if d < 0 {
				d = -d
			}
			if d > 1e-3 {
				t.Fatalf("loader %d logit %d drifted: %v vs %v", i, j, got[0][j], wantLogits[j])
			}
		}
	}
	if autotune.Default.Len() == 0 {
		t.Fatal("no plans tuned")
	}
	if _, err := os.Stat(cache); err != nil {
		t.Fatalf("tune cache not persisted: %v", err)
	}
}
