package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"splitcnn/internal/trace"
)

// Options tune the HTTP serving layer; zero values select defaults.
type Options struct {
	// MaxDelay, QueueDepth: see BatcherOptions (applied per model).
	MaxDelay   time.Duration
	QueueDepth int
	// RequestTimeout is the default per-request deadline covering queue
	// wait and execution (default 2s). A request's timeout_ms field may
	// shorten — never extend — it.
	RequestTimeout time.Duration
	// Metrics receives the serve.* instruments; nil allocates a private
	// registry (exposed at /metricsz either way).
	Metrics *trace.Metrics
}

// Server is the HTTP inference front end: one dynamic batcher per
// registered model behind /v1/predict, plus /v1/models, /healthz and
// /metricsz.
type Server struct {
	reg      *Registry
	opts     Options
	met      *trace.Metrics
	batchers map[string]*Batcher

	http     *http.Server
	listener net.Listener

	mu       sync.Mutex
	draining bool
}

// NewServer wraps a loaded registry. The server owns one batcher (and
// therefore one dispatcher goroutine) per model.
func NewServer(reg *Registry, opts Options) *Server {
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 2 * time.Second
	}
	met := opts.Metrics
	if met == nil {
		met = trace.NewMetrics()
	}
	s := &Server{reg: reg, opts: opts, met: met, batchers: make(map[string]*Batcher)}
	for _, name := range reg.Names() {
		inst, _ := reg.Lookup(name)
		s.batchers[name] = NewBatcher(inst, BatcherOptions{
			MaxDelay:   opts.MaxDelay,
			QueueDepth: opts.QueueDepth,
			Metrics:    met,
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metricsz", s.handleMetricsz)
	s.http = &http.Server{Handler: mux}
	return s
}

// Start listens on addr (e.g. "127.0.0.1:0" for a random port) and
// serves in a background goroutine. The bound address is returned.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.listener = ln
	go s.http.Serve(ln)
	return ln.Addr(), nil
}

// Shutdown drains gracefully: new requests are rejected with 503, every
// accepted request is answered, then the HTTP server stops.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	for _, b := range s.batchers {
		b.Shutdown()
	}
	return s.http.Shutdown(ctx)
}

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *trace.Metrics { return s.met }

// PredictRequest is the /v1/predict request body.
type PredictRequest struct {
	// Model selects a registry entry; empty means the default model.
	Model string `json:"model,omitempty"`
	// Image is the flattened C*H*W input in NCHW channel order.
	Image []float32 `json:"image"`
	// TimeoutMs optionally shortens the server's request timeout.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// PredictResponse is the /v1/predict success body.
type PredictResponse struct {
	Model  string    `json:"model"`
	Argmax int       `json:"argmax"`
	Logits []float32 `json:"logits"`
	// BatchSize is how many requests shared this executor pass.
	BatchSize int   `json:"batch_size"`
	QueueUs   int64 `json:"queue_us"`
	LatencyUs int64 `json:"latency_us"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	start := time.Now()
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad JSON: " + err.Error()})
		return
	}
	inst, err := s.reg.Lookup(req.Model)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{err.Error()})
		return
	}
	if len(req.Image) != inst.ImageLen() {
		writeJSON(w, http.StatusBadRequest, errorResponse{fmt.Sprintf(
			"image has %d values, model %s wants %d (%dx%dx%d)",
			len(req.Image), inst.Name, inst.ImageLen(), inst.C, inst.H, inst.W)})
		return
	}
	timeout := s.opts.RequestTimeout
	if req.TimeoutMs > 0 {
		if t := time.Duration(req.TimeoutMs) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	deadline := start.Add(timeout)

	respCh, err := s.batchers[inst.Name].Submit(&Request{Image: req.Image, Deadline: deadline})
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			writeJSON(w, http.StatusTooManyRequests, errorResponse{err.Error()})
		case errors.Is(err, ErrDraining):
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{err.Error()})
		default:
			writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
		}
		return
	}

	var resp Response
	select {
	case resp = <-respCh:
	case <-time.After(time.Until(deadline)):
		// The dispatcher will still answer the buffered channel; this
		// handler just stops waiting.
		s.met.Counter("serve.timeouts").Add(1)
		writeJSON(w, http.StatusGatewayTimeout, errorResponse{"deadline exceeded"})
		return
	case <-r.Context().Done():
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{"client gone"})
		return
	}
	if resp.Err != nil {
		if errors.Is(resp.Err, ErrDeadline) {
			s.met.Counter("serve.timeouts").Add(1)
			writeJSON(w, http.StatusGatewayTimeout, errorResponse{resp.Err.Error()})
		} else {
			s.met.Counter("serve.errors").Add(1)
			writeJSON(w, http.StatusInternalServerError, errorResponse{resp.Err.Error()})
		}
		return
	}
	lat := time.Since(start)
	s.met.Histogram("serve.latency_seconds", nil).Observe(lat.Seconds())
	argmax := 0
	for i, v := range resp.Logits {
		if v > resp.Logits[argmax] {
			argmax = i
		}
	}
	writeJSON(w, http.StatusOK, PredictResponse{
		Model:     inst.Name,
		Argmax:    argmax,
		Logits:    resp.Logits,
		BatchSize: resp.BatchSize,
		QueueUs:   resp.QueueWait.Microseconds(),
		LatencyUs: lat.Microseconds(),
	})
}

// ModelInfo is one /v1/models entry.
type ModelInfo struct {
	Name     string `json:"name"`
	Input    [3]int `json:"input"` // C, H, W
	Classes  int    `json:"classes"`
	MaxBatch int    `json:"max_batch"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	infos := make([]ModelInfo, 0, len(s.reg.Names()))
	for _, name := range s.reg.Names() {
		inst, _ := s.reg.Lookup(name)
		infos = append(infos, ModelInfo{
			Name: name, Input: [3]int{inst.C, inst.H, inst.W},
			Classes: inst.Classes, MaxBatch: inst.MaxBatch,
		})
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetricsz refreshes the latency-quantile gauges and dumps the
// registry (JSON by default, "kind name value" lines with ?format=text).
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	lat := s.met.Histogram("serve.latency_seconds", nil)
	s.met.Gauge("serve.latency_p50_seconds").Set(lat.Quantile(0.5))
	s.met.Gauge("serve.latency_p99_seconds").Set(lat.Quantile(0.99))
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.met.WriteText(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.met.WriteJSON(w)
}
