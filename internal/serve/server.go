package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"splitcnn/internal/buildinfo"
	"splitcnn/internal/memobs"
	"splitcnn/internal/tensor"
	"splitcnn/internal/trace"
)

// Options tune the HTTP serving layer; zero values select defaults.
type Options struct {
	// MaxDelay, QueueDepth: see BatcherOptions (applied per model).
	MaxDelay   time.Duration
	QueueDepth int
	// RequestTimeout is the default per-request deadline covering queue
	// wait and execution (default 2s). A request's timeout_ms field may
	// shorten — never extend — it.
	RequestTimeout time.Duration
	// Metrics receives the serve.* instruments; nil allocates a private
	// registry (exposed at /metricsz either way).
	Metrics *trace.Metrics
	// Logger receives structured request and lifecycle logs. Nil
	// discards them — the library stays silent unless its owner opts in
	// (the serve command installs a text or JSON handler via -logjson).
	Logger *slog.Logger
	// TraceSample in (0, 1] enables request-scoped wall-clock tracing:
	// that fraction of /v1/predict requests record their
	// admission/queue/batch/forward/respond stage spans into a Chrome
	// trace, exposed at /tracez and via Tracer(). 0 disables tracing.
	TraceSample float64
	// TraceSeed fixes the sampling sequence (0 selects seed 1); tests
	// use it to make fractional sampling deterministic.
	TraceSeed int64
	// EnablePprof mounts the stdlib net/http/pprof handlers under
	// /debug/pprof/ on the serve mux.
	EnablePprof bool
	// RuntimeMetricsInterval, when positive, runs a background sampler
	// feeding runtime.* gauges (heap, GC, goroutines) and arena.*
	// occupancy gauges into the registry on that interval.
	RuntimeMetricsInterval time.Duration
	// NoProfiler disables the continuous profiler (on by default: a
	// windowed in-process pprof CPU+heap sampler feeding /profilez).
	NoProfiler bool
	// ProfileWindow/ProfileEvery override the profiler's capture window
	// and duty-cycle period (defaults 1s / 15s).
	ProfileWindow time.Duration
	ProfileEvery  time.Duration
}

// Server is the HTTP inference front end: one dynamic batcher per
// registered model behind /v1/predict, plus /v1/models, /healthz,
// /metricsz, /tracez and (opt-in) /debug/pprof.
type Server struct {
	reg      *Registry
	opts     Options
	met      *trace.Metrics
	log      *slog.Logger
	tracer   *trace.WallTracer
	batchers map[string]*Batcher
	reqID    atomic.Uint64
	started  time.Time

	http     *http.Server
	listener net.Listener
	sampler  *trace.RuntimeSampler
	prof     *memobs.Profiler

	mu       sync.Mutex
	draining bool
}

// NewServer wraps a loaded registry. The server owns one batcher (and
// therefore one dispatcher goroutine) per model.
func NewServer(reg *Registry, opts Options) *Server {
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 2 * time.Second
	}
	met := opts.Metrics
	if met == nil {
		met = trace.NewMetrics()
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &Server{reg: reg, opts: opts, met: met, log: logger, batchers: make(map[string]*Batcher)}
	if opts.TraceSample > 0 {
		seed := opts.TraceSeed
		if seed == 0 {
			seed = 1
		}
		s.tracer = trace.NewWallTracer(opts.TraceSample, seed)
	}
	for _, name := range reg.Names() {
		inst, _ := reg.Lookup(name)
		s.batchers[name] = NewBatcher(inst, BatcherOptions{
			MaxDelay:   opts.MaxDelay,
			QueueDepth: opts.QueueDepth,
			Metrics:    met,
			Tracer:     s.tracer,
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metricsz", s.handleMetricsz)
	mux.HandleFunc("/tracez", s.handleTracez)
	mux.HandleFunc("/profilez", s.handleProfilez)
	if opts.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.http = &http.Server{Handler: mux}
	return s
}

// arenaStats aggregates executor-arena occupancy across the registry's
// instances — the arena.* gauge source for the runtime sampler.
func (s *Server) arenaStats() tensor.ArenaStats {
	var agg tensor.ArenaStats
	for _, name := range s.reg.Names() {
		inst, _ := s.reg.Lookup(name)
		agg = agg.Add(inst.ArenaStats())
	}
	return agg
}

// Start listens on addr (e.g. "127.0.0.1:0" for a random port) and
// serves in a background goroutine. The bound address is returned.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.listener = ln
	s.started = time.Now()
	if iv := s.opts.RuntimeMetricsInterval; iv > 0 {
		s.sampler = trace.StartRuntimeSampler(s.met, iv, func(reg *trace.Metrics) {
			s.arenaStats().Record("arena", reg)
			for _, name := range s.reg.Names() {
				inst, _ := s.reg.Lookup(name)
				if inst.Mem != nil {
					inst.Mem.Timeline().Record(reg)
				}
			}
		})
	}
	if !s.opts.NoProfiler {
		s.prof = memobs.StartProfiler(memobs.ProfilerOptions{
			Window: s.opts.ProfileWindow, Every: s.opts.ProfileEvery, Metrics: s.met,
		})
	}
	go s.http.Serve(ln)
	s.log.Info("serve.start", "addr", ln.Addr().String(),
		"models", s.reg.Names(),
		"trace_sample", s.opts.TraceSample,
		"pprof", s.opts.EnablePprof,
		"revision", buildinfo.Get().Revision)
	return ln.Addr(), nil
}

// Shutdown drains gracefully: new requests are rejected with 503, every
// accepted request is answered, then the HTTP server stops.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.log.Info("serve.drain", "uptime_s", time.Since(s.started).Seconds(),
		"requests", s.met.Counter("serve.requests").Value())
	for _, b := range s.batchers {
		b.Shutdown()
	}
	s.sampler.Stop()
	s.prof.Stop()
	err := s.http.Shutdown(ctx)
	s.log.Info("serve.stop", "err", err)
	return err
}

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *trace.Metrics { return s.met }

// Tracer returns the request-scoped wall-clock tracer (nil when
// Options.TraceSample is 0).
func (s *Server) Tracer() *trace.WallTracer { return s.tracer }

// PredictRequest is the /v1/predict request body.
type PredictRequest struct {
	// Model selects a registry entry; empty means the default model.
	Model string `json:"model,omitempty"`
	// Image is the flattened C*H*W input in NCHW channel order.
	Image []float32 `json:"image"`
	// TimeoutMs optionally shortens the server's request timeout.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// PredictResponse is the /v1/predict success body.
type PredictResponse struct {
	Model  string    `json:"model"`
	Argmax int       `json:"argmax"`
	Logits []float32 `json:"logits"`
	// BatchSize is how many requests shared this executor pass.
	BatchSize int   `json:"batch_size"`
	QueueUs   int64 `json:"queue_us"`
	LatencyUs int64 `json:"latency_us"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	start := time.Now()
	// Every request gets an ID (logs correlate on it); the tracer then
	// decides whether this one also records wall-clock stage spans. An
	// unsampled request carries the nil SpanContext, which no-ops.
	id := fmt.Sprintf("req-%06d", s.reqID.Add(1))
	sc := s.tracer.Request(id)
	status, batchSize, model := 0, 0, ""
	defer func() {
		s.log.Info("request", "id", id, "model", model, "status", status,
			"batch", batchSize, "latency_us", time.Since(start).Microseconds(),
			"sampled", sc != nil)
	}()
	fail := func(code int, msg string) {
		status = code
		writeJSON(w, code, errorResponse{msg})
		s.tracer.Finish(sc)
	}

	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	inst, err := s.reg.Lookup(req.Model)
	if err != nil {
		fail(http.StatusNotFound, err.Error())
		return
	}
	model = inst.Name
	if len(req.Image) != inst.ImageLen() {
		fail(http.StatusBadRequest, fmt.Sprintf(
			"image has %d values, model %s wants %d (%dx%dx%d)",
			len(req.Image), inst.Name, inst.ImageLen(), inst.C, inst.H, inst.W))
		return
	}
	timeout := s.opts.RequestTimeout
	if req.TimeoutMs > 0 {
		if t := time.Duration(req.TimeoutMs) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	deadline := start.Add(timeout)

	// "admit" spans decode, validation and queue admission; the batcher
	// records "queue"/"assemble"/"forward" on its dispatcher goroutine.
	submitReq := &Request{Image: req.Image, Deadline: deadline, Span: sc}
	respCh, err := s.batchers[inst.Name].Submit(submitReq)
	sc.Record("admit", start, time.Now())
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			fail(http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrDraining):
			fail(http.StatusServiceUnavailable, err.Error())
		default:
			fail(http.StatusInternalServerError, err.Error())
		}
		return
	}

	var resp Response
	select {
	case resp = <-respCh:
	case <-time.After(time.Until(deadline)):
		// The dispatcher will still answer the buffered channel; this
		// handler just stops waiting.
		s.met.Counter("serve.timeouts").Add(1)
		fail(http.StatusGatewayTimeout, "deadline exceeded")
		return
	case <-r.Context().Done():
		fail(http.StatusServiceUnavailable, "client gone")
		return
	}
	if resp.Err != nil {
		if errors.Is(resp.Err, ErrDeadline) {
			s.met.Counter("serve.timeouts").Add(1)
			fail(http.StatusGatewayTimeout, resp.Err.Error())
		} else {
			s.met.Counter("serve.errors").Add(1)
			fail(http.StatusInternalServerError, resp.Err.Error())
		}
		return
	}
	lat := time.Since(start)
	s.met.Histogram("serve.latency_seconds", trace.LatencyBuckets).Observe(lat.Seconds())
	argmax := 0
	for i, v := range resp.Logits {
		if v > resp.Logits[argmax] {
			argmax = i
		}
	}
	status, batchSize = http.StatusOK, resp.BatchSize
	respondStart := time.Now()
	writeJSON(w, http.StatusOK, PredictResponse{
		Model:     inst.Name,
		Argmax:    argmax,
		Logits:    resp.Logits,
		BatchSize: resp.BatchSize,
		QueueUs:   resp.QueueWait.Microseconds(),
		LatencyUs: lat.Microseconds(),
	})
	sc.Record("respond", respondStart, time.Now())
	s.tracer.Finish(sc)
}

// ModelInfo is one /v1/models entry.
type ModelInfo struct {
	Name     string `json:"name"`
	Input    [3]int `json:"input"` // C, H, W
	Classes  int    `json:"classes"`
	MaxBatch int    `json:"max_batch"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	infos := make([]ModelInfo, 0, len(s.reg.Names()))
	for _, name := range s.reg.Names() {
		inst, _ := s.reg.Lookup(name)
		infos = append(infos, ModelInfo{
			Name: name, Input: [3]int{inst.C, inst.H, inst.W},
			Classes: inst.Classes, MaxBatch: inst.MaxBatch,
		})
	}
	writeJSON(w, http.StatusOK, infos)
}

// healthResponse is the /healthz body: liveness plus the build
// provenance of the answering binary.
type healthResponse struct {
	Status string `json:"status"`
	buildinfo.Info
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	resp := healthResponse{Status: "ok", Info: buildinfo.Get()}
	if !s.started.IsZero() {
		resp.UptimeSeconds = time.Since(s.started).Seconds()
	}
	if draining {
		resp.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetricsz serves the registry through the shared
// content-negotiated handler (trace.MetricsHandler — also behind the
// trainer dashboard), refreshing the latency-quantile gauges at scrape
// time.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	trace.MetricsHandler(s.met, func(m *trace.Metrics) {
		lat := m.Histogram("serve.latency_seconds", trace.LatencyBuckets)
		m.Gauge("serve.latency_p50_seconds").Set(lat.Quantile(0.5))
		m.Gauge("serve.latency_p99_seconds").Set(lat.Quantile(0.99))
	})(w, r)
}

// handleProfilez serves the continuous profiler's latest window (per-op
// CPU/alloc attribution, flat function tables, pprof downloads) plus
// the measured memory timeline of every registered instance.
func (s *Server) handleProfilez(w http.ResponseWriter, r *http.Request) {
	if s.prof == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{
			"continuous profiling disabled (Options.NoProfiler)"})
		return
	}
	memobs.Handler(s.prof, func() []*memobs.MemTimeline {
		var out []*memobs.MemTimeline
		for _, name := range s.reg.Names() {
			inst, _ := s.reg.Lookup(name)
			if inst.Mem != nil {
				out = append(out, inst.Mem.Timeline())
			}
		}
		return out
	})(w, r)
}

// handleTracez dumps the request-scoped wall-clock trace accumulated so
// far as Chrome trace_event JSON — the live-serving counterpart of
// `splitcnn trace`'s simulated timelines.
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{
			"request tracing disabled (start with a trace sample rate > 0)"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.tracer.Trace().WriteJSON(w)
}
