package autotune

import (
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"splitcnn/internal/tensor"
)

func conv3x3() tensor.ConvParams {
	return tensor.ConvParams{KH: 3, KW: 3, SH: 1, SW: 1, Pad: tensor.Symmetric(1)}
}

// TestChooseDefaultsMatchLegacy pins the untuned contract: with no
// plan, dispatch must reproduce the pre-autotune heuristic exactly.
func TestChooseDefaultsMatchLegacy(t *testing.T) {
	tn := New()
	shape := tensor.Shape{2, 8, 16, 16}
	if a := tn.Choose(conv3x3(), shape, 4); a != Winograd {
		t.Fatalf("3x3/s1 untuned: got %v, want winograd", a)
	}
	p5 := tensor.ConvParams{KH: 5, KW: 5, SH: 1, SW: 1, Pad: tensor.Symmetric(2)}
	if a := tn.Choose(p5, shape, 4); a != Im2col {
		t.Fatalf("5x5 untuned: got %v, want im2col", a)
	}
	var nilT *Tuner
	if a := nilT.Choose(conv3x3(), shape, 4); a != Winograd {
		t.Fatalf("nil tuner: got %v, want winograd", a)
	}
}

func TestApplicable(t *testing.T) {
	shape := tensor.Shape{1, 4, 16, 16}
	strided := tensor.ConvParams{KH: 3, KW: 3, SH: 2, SW: 2, Pad: tensor.Symmetric(1)}
	if Applicable(Winograd, strided, shape, 4) {
		t.Fatal("winograd accepted stride 2")
	}
	if Applicable(FFT, strided, shape, 4) {
		t.Fatal("fft accepted stride 2")
	}
	if !Applicable(Im2col, strided, shape, 4) || !Applicable(Direct, strided, shape, 4) {
		t.Fatal("universal backends rejected a geometry")
	}
	// FFT refused when the spectra would blow the workspace cap.
	huge := tensor.Shape{8, 512, 256, 256}
	if Applicable(FFT, conv3x3(), huge, 512) {
		t.Fatal("fft accepted a shape whose workspace exceeds the cap")
	}
}

// TestCorruptPlanSanitized is the satellite-1 contract: a stale or
// hostile cache entry must never reach a panicking kernel entry point.
func TestCorruptPlanSanitized(t *testing.T) {
	tn := New()
	p5 := tensor.ConvParams{KH: 5, KW: 5, SH: 1, SW: 1, Pad: tensor.Symmetric(2)}
	shape := tensor.Shape{1, 2, 8, 8}
	// Winograd cannot run a 5x5 kernel; a corrupt cache claims it can.
	tn.SetPlan(KeyOf(p5, shape, 3), Decision{Algo: Winograd})
	if a := tn.Choose(p5, shape, 3); a != Im2col {
		t.Fatalf("corrupt plan dispatched %v, want im2col fallback", a)
	}
	strided := tensor.ConvParams{KH: 3, KW: 3, SH: 2, SW: 2, Pad: tensor.Symmetric(1)}
	tn.SetPlan(KeyOf(strided, shape, 3), Decision{Algo: FFT})
	if a := tn.Choose(strided, shape, 3); a != Im2col {
		t.Fatalf("stride-2 FFT plan dispatched %v, want im2col fallback", a)
	}
}

func TestTunePicksMeasuredWinner(t *testing.T) {
	tn := New()
	tn.Trials = 1
	p := conv3x3()
	shape := tensor.Shape{1, 4, 12, 12}
	d := tn.Tune(p, shape, 4)
	if len(d.Seconds) < 3 { // im2col, winograd, direct, fft all apply here
		t.Fatalf("only %d candidates measured: %v", len(d.Seconds), d.Seconds)
	}
	best := d.Algo
	for a, s := range d.Seconds {
		if s < d.Seconds[best] {
			t.Fatalf("winner %v (%.3gs) is not the measured minimum (%v: %.3gs)", best, d.Seconds[best], a, s)
		}
	}
	if a, ok := tn.Plan(p, shape, 4); !ok || a != best {
		t.Fatalf("plan not installed: %v %v", a, ok)
	}
	// The measurement must have fed the cost-model override.
	if s, ok := tn.Overrides.Get(KeyOf(p, shape, 4)); !ok || s <= 0 {
		t.Fatalf("override not fed: %v %v", s, ok)
	}
}

// TestTunedDispatchEquivalence is the property test: for a randomized
// stride-1 shape sweep (including asymmetric split-patch-style
// padding), every algorithm the tuner may install computes the same
// result as Conv2D — bit-identical for im2col, within fp32 noise for
// Winograd/direct, within the pinned FFTConvTolerance for FFT.
func TestTunedDispatchEquivalence(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(2)
		cin := 1 + rng.Intn(6)
		cout := 1 + rng.Intn(6)
		kh := 1 + rng.Intn(4)
		kw := 1 + rng.Intn(4)
		h := kh + rng.Intn(14)
		w := kw + rng.Intn(14)
		p := tensor.ConvParams{KH: kh, KW: kw, SH: 1, SW: 1,
			Pad: tensor.Pad2D{Top: rng.Intn(kh), Bottom: rng.Intn(kh), Left: rng.Intn(kw), Right: rng.Intn(kw)}}
		x := tensor.New(n, cin, h, w)
		wt := tensor.New(cout, cin, kh, kw)
		bias := tensor.New(cout)
		x.RandNormal(rng, 1)
		wt.RandNormal(rng, 0.5)
		bias.RandNormal(rng, 0.1)
		want := tensor.Conv2D(x, wt, bias, p)
		oh, ow := p.OutSize(h, w)
		for _, algo := range Candidates(p, x.Shape(), cout) {
			dst := tensor.New(n, cout, oh, ow)
			runner(algo)(tensor.NewArena(), dst, x, wt, bias, p)
			tol := 1e-5
			if algo == FFT {
				tol = tensor.FFTConvTolerance
			}
			if e := relErr(dst, want); e > tol {
				t.Fatalf("seed %d algo %v: error %v > %v (shape %v k%dx%d pad%+v)",
					seed, algo, e, tol, x.Shape(), kh, kw, p.Pad)
			}
		}
	}
}

func relErr(got, want *tensor.Tensor) float64 {
	var maxAbs, maxDiff float64
	gd, wd := got.Data(), want.Data()
	for i := range wd {
		if a := math.Abs(float64(wd[i])); a > maxAbs {
			maxAbs = a
		}
		if d := math.Abs(float64(gd[i] - wd[i])); d > maxDiff {
			maxDiff = d
		}
	}
	if maxAbs == 0 {
		return maxDiff
	}
	return maxDiff / maxAbs
}

func TestConcurrentTuneSingleflight(t *testing.T) {
	tn := New()
	tn.Trials = 1
	p := conv3x3()
	shape := tensor.Shape{1, 2, 8, 8}
	var wg sync.WaitGroup
	decisions := make([]Decision, 8)
	for i := range decisions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			decisions[i] = tn.Tune(p, shape, 2)
		}(i)
	}
	wg.Wait()
	for i, d := range decisions {
		if d.Algo != decisions[0].Algo {
			t.Fatalf("goroutine %d saw a different plan: %v vs %v", i, d.Algo, decisions[0].Algo)
		}
	}
	if tn.Len() != 1 {
		t.Fatalf("%d plans after concurrent tune of one key", tn.Len())
	}
}

func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "autotune.json")

	tn := New()
	tn.Trials = 1
	tn.SetCachePath(path)
	p := conv3x3()
	shape := tensor.Shape{1, 3, 10, 10}
	d := tn.Tune(p, shape, 4)
	if err := tn.Save(); err != nil {
		t.Fatalf("save: %v", err)
	}

	re := New()
	if err := re.Load(path); err != nil {
		t.Fatalf("load: %v", err)
	}
	if re.Len() != 1 {
		t.Fatalf("reloaded %d plans, want 1", re.Len())
	}
	if a, ok := re.Plan(p, shape, 4); !ok || a != d.Algo {
		t.Fatalf("reloaded plan %v/%v, want %v", a, ok, d.Algo)
	}
	// Reload rebuilds the measured override from persisted seconds
	// without re-benchmarking.
	if s, ok := re.Overrides.Get(KeyOf(p, shape, 4)); !ok || s != d.Seconds[d.Algo] {
		t.Fatalf("override not rebuilt from cache: %v %v (want %v)", s, ok, d.Seconds[d.Algo])
	}

	// Saving the reloaded tuner unchanged must be a no-op (not dirty).
	before, _ := os.ReadFile(path)
	if err := re.Save(); err != nil {
		t.Fatalf("re-save: %v", err)
	}
	after, _ := os.ReadFile(path)
	if string(before) != string(after) {
		t.Fatal("clean tuner rewrote the cache file")
	}
}

func TestCacheCorruptFileSilentlyIgnored(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"garbage.json": "{not json at all",
		"version.json": `{"version": 999, "envs": {}}`,
		"badalgo.json": `{"version": 1, "envs": {"` + Env() + `": [{"key":{"KH":3,"KW":3,"SH":1,"SW":1,"N":1,"C":1,"H":8,"W":8,"Cout":1},"algo":"quantum"}]}}`,
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		tn := New()
		if err := tn.Load(path); err != nil {
			t.Fatalf("%s: load returned error %v, want silent re-tune", name, err)
		}
		if tn.Len() != 0 {
			t.Fatalf("%s: %d plans loaded from corrupt cache", name, tn.Len())
		}
	}
	// Missing file: same contract.
	tn := New()
	if err := tn.Load(filepath.Join(dir, "missing.json")); err != nil || tn.Len() != 0 {
		t.Fatalf("missing file: err=%v len=%d", err, tn.Len())
	}
}

func TestCachePreservesForeignEnvSections(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "autotune.json")
	foreign := `{"version":1,"envs":{"mips64/p128":[{"key":{"KH":1,"KW":1,"SH":1,"SW":1,"N":1,"C":1,"H":1,"W":1,"Cout":1},"algo":"direct"}]}}`
	if err := os.WriteFile(path, []byte(foreign), 0o644); err != nil {
		t.Fatal(err)
	}
	tn := New()
	tn.Trials = 1
	if err := tn.Load(path); err != nil {
		t.Fatal(err)
	}
	tn.Tune(conv3x3(), tensor.Shape{1, 2, 6, 6}, 2)
	if err := tn.Save(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f cacheFile
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	if len(f.Envs["mips64/p128"]) != 1 {
		t.Fatal("foreign environment section dropped on save")
	}
	if len(f.Envs[Env()]) != 1 {
		t.Fatal("own environment section missing after save")
	}
}
