// Package autotune picks a convolution algorithm per call-site shape by
// measurement instead of heuristics — cuDNN's cudnnFindConvolution*
// idea, but with the result persisted. Four backends compete: direct,
// im2col+GEMM, Winograd F(2x2,3x3), and FFT. At model load or warmup
// (never inline on the serve path) every applicable candidate is
// micro-benchmarked on the real tensors' shapes; the winner is cached
// under (ConvParams, input shape, batch, GOMAXPROCS, CPU features) and
// optionally written to disk (~/.cache/splitcnn/autotune.json), so
// restarts skip re-tuning. Measured times feed
// costmodel.MeasuredOverride, replacing the planner's roofline guesses
// with profiled numbers — §4.3 of the paper, closing the loop the
// -calibrate drift gauges opened.
//
// Contract with the rest of the system:
//
//   - With no plan for a key, Choose returns exactly the pre-autotune
//     heuristic (Winograd if it applies, else im2col), so untuned
//     behavior — including bit-identity tests — is unchanged.
//   - Choose never panics and never allocates: a corrupt or stale plan
//     (wrong geometry for Winograd, stride for FFT) is sanitized back
//     to the default. The panic stays in tensor.Conv2DWinogradInto for
//     direct misuse only.
//   - Tuning is explicit (Tune/TuneGraph) and singleflighted, so
//     concurrent warmups of the same model measure each site once.
package autotune

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"splitcnn/internal/costmodel"
	"splitcnn/internal/graph"
	"splitcnn/internal/tensor"
)

// Algo enumerates the convolution backends.
type Algo uint8

// The candidate algorithms. Im2col is the zero value: the universally
// applicable baseline. NumAlgos bounds iteration over the candidates
// (Algo(0) ..< NumAlgos).
const (
	Im2col Algo = iota
	Winograd
	Direct
	FFT
	NumAlgos
)

var algoNames = [NumAlgos]string{"im2col", "winograd", "direct", "fft"}

// String names the algorithm (the identifier used in the cache file).
func (a Algo) String() string {
	if int(a) < len(algoNames) {
		return algoNames[a]
	}
	return fmt.Sprintf("Algo(%d)", int(a))
}

// ParseAlgo inverts String. Unknown names report ok=false — how stale
// cache entries from a newer/older format are silently dropped.
func ParseAlgo(s string) (Algo, bool) {
	for i, n := range algoNames {
		if n == s {
			return Algo(i), true
		}
	}
	return 0, false
}

// Key identifies a tuning unit: the full convolution signature
// including batch. The environment half of the cache key (GOMAXPROCS,
// CPU feature string) partitions the persisted cache file instead — a
// process only ever holds plans for its own environment.
type Key = costmodel.ConvSignature

// KeyOf builds the plan key for one call site.
func KeyOf(p tensor.ConvParams, x tensor.Shape, cout int) Key {
	return costmodel.SignatureOf(p, x, cout)
}

// paramsOf and shapeOf invert KeyOf — needed to re-validate reloaded
// cache entries against Applicable before they may dispatch anything.
func paramsOf(k Key) tensor.ConvParams {
	return tensor.ConvParams{KH: k.KH, KW: k.KW, SH: k.SH, SW: k.SW,
		Pad: tensor.Pad2D{Top: k.PadT, Bottom: k.PadB, Left: k.PadL, Right: k.PadR}}
}

func shapeOf(k Key) tensor.Shape { return tensor.Shape{k.N, k.C, k.H, k.W} }

// Decision is a tuned plan: the winning algorithm and every measured
// candidate's best forward time (seconds), kept so the cost-model
// override can be rebuilt from a reloaded cache without re-running.
type Decision struct {
	Algo    Algo
	Seconds map[Algo]float64
}

// DefaultAlgo is the pre-autotune heuristic: Winograd when the geometry
// allows, im2col otherwise. Choose falls back to it whenever no (valid)
// plan exists, which keeps untuned behavior bit-identical to the
// previous releases.
func DefaultAlgo(p tensor.ConvParams) Algo {
	if tensor.WinogradApplies(p) {
		return Winograd
	}
	return Im2col
}

// fftWorkspaceCap bounds the FFT backend's scratch footprint, mirroring
// nn.MaxConvWorkspaceBytes (the cuDNN-style per-algorithm workspace
// limit): layers whose spectra would exceed it are not FFT candidates.
const fftWorkspaceCap = 1 << 30

// measureBudgetSeconds caps the timed work spent on any one candidate
// during tuning (warmups excluded; at least one timed run always
// happens). Fast kernels use their full trial count, slow ones exit
// after a single sample.
const measureBudgetSeconds = 0.25

// directFLOPCap prunes the naive direct loop from the candidate set on
// large problems: 1x1 convolutions always stay (they run through the
// blocked GEMM), but benchmarking an unvectorized loop nest against
// GEMM on a 100+ MFLOP layer only burns the tuning budget.
const directFLOPCap = 200e6

// Applicable reports whether algo can run the geometry at all. It is
// the sanitization gate between cached plans and kernel dispatch: a
// plan that fails it is ignored, never executed.
func Applicable(a Algo, p tensor.ConvParams, x tensor.Shape, cout int) bool {
	switch a {
	case Im2col, Direct:
		return true
	case Winograd:
		return tensor.WinogradApplies(p)
	case FFT:
		return tensor.FFTConvApplies(p) && tensor.FFTConvWorkspaceBytes(x, cout, p) <= fftWorkspaceCap
	}
	return false
}

func convFLOPs(p tensor.ConvParams, x tensor.Shape, cout int) float64 {
	oh, ow := p.OutSize(x.H(), x.W())
	return 2 * float64(x.N()) * float64(cout) * float64(oh) * float64(ow) *
		float64(x.C()) * float64(p.KH) * float64(p.KW)
}

// Candidates returns the algorithms worth measuring for the geometry:
// every applicable backend, with the naive direct loop pruned on
// problems large enough that it cannot win.
func Candidates(p tensor.ConvParams, x tensor.Shape, cout int) []Algo {
	out := make([]Algo, 0, NumAlgos)
	for a := Algo(0); a < NumAlgos; a++ {
		if !Applicable(a, p, x, cout) {
			continue
		}
		if a == Direct && !(p.KH == 1 && p.KW == 1) && convFLOPs(p, x, cout) > directFLOPCap {
			continue
		}
		out = append(out, a)
	}
	return out
}

// Tuner holds tuned plans and runs the micro-benchmarks. The zero
// Tuner is not usable; call New. A nil *Tuner is valid for Choose/Plan
// (always default).
type Tuner struct {
	mu       sync.RWMutex
	plans    map[Key]Decision
	inflight map[Key]chan struct{}

	// Trials is the number of timed repetitions per candidate (after
	// two untimed warmup runs); the minimum is kept. 0 means 6 — enough
	// iterations for pool- and arena-backed kernels to reach their
	// steady-state speed, which is what serving actually sees.
	Trials int

	// Overrides, when non-nil, receives every winning measurement —
	// the feed into the HMMS planner and simulator.
	Overrides *costmodel.MeasuredOverride

	path  string                  // cache file; "" = not persisted
	other map[string][]cachedPlan // foreign-env sections, preserved on Save
	dirty bool
}

// Default is the process-wide tuner the nn.Conv dispatch consults. It
// starts empty (pure default behavior); serve warmup, `splitcnn tune`,
// and train -tune populate it.
var Default = New()

// New returns an empty tuner.
func New() *Tuner {
	return &Tuner{
		plans:     make(map[Key]Decision),
		inflight:  make(map[Key]chan struct{}),
		Overrides: costmodel.NewMeasuredOverride(),
	}
}

// Choose returns the algorithm to run for one forward call. This is
// the dispatch hot path: one read-locked map lookup, no allocation, no
// panic — an invalid plan (corrupt cache, geometry drift) silently
// degrades to the default heuristic.
func (t *Tuner) Choose(p tensor.ConvParams, x tensor.Shape, cout int) Algo {
	if a, ok := t.Plan(p, x, cout); ok {
		return a
	}
	return DefaultAlgo(p)
}

// Plan returns the tuned algorithm for the key, if a valid one exists.
func (t *Tuner) Plan(p tensor.ConvParams, x tensor.Shape, cout int) (Algo, bool) {
	if t == nil {
		return 0, false
	}
	k := KeyOf(p, x, cout)
	t.mu.RLock()
	d, ok := t.plans[k]
	t.mu.RUnlock()
	if !ok || !Applicable(d.Algo, p, x, cout) {
		return 0, false
	}
	return d.Algo, true
}

// SetPlan force-installs a plan (tests and cache loading).
func (t *Tuner) SetPlan(k Key, d Decision) {
	t.mu.Lock()
	t.plans[k] = d
	t.dirty = true
	t.mu.Unlock()
	if s := d.Seconds[d.Algo]; s > 0 {
		t.Overrides.Set(k, s)
	}
}

// Reset drops every plan (tests).
func (t *Tuner) Reset() {
	t.mu.Lock()
	t.plans = make(map[Key]Decision)
	t.Overrides = costmodel.NewMeasuredOverride()
	t.dirty = false
	t.mu.Unlock()
}

// Len returns the number of tuned plans.
func (t *Tuner) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.plans)
}

// Tune measures every candidate for the site and installs the winner,
// returning the decision. Concurrent calls for the same key are
// singleflighted: one measures, the rest wait and reuse the plan.
func (t *Tuner) Tune(p tensor.ConvParams, x tensor.Shape, cout int) Decision {
	k := KeyOf(p, x, cout)
	for {
		t.mu.Lock()
		if d, ok := t.plans[k]; ok {
			t.mu.Unlock()
			return d
		}
		if ch, ok := t.inflight[k]; ok {
			t.mu.Unlock()
			<-ch
			continue // plan is installed now (or the measurer died; retry)
		}
		ch := make(chan struct{})
		t.inflight[k] = ch
		t.mu.Unlock()

		d := t.measure(p, x, cout)
		t.SetPlan(k, d)
		t.mu.Lock()
		delete(t.inflight, k)
		t.mu.Unlock()
		close(ch)
		return d
	}
}

// measure micro-benchmarks every candidate on synthetic tensors of the
// site's exact shapes and returns the winning decision.
func (t *Tuner) measure(p tensor.ConvParams, x tensor.Shape, cout int) Decision {
	trials := t.Trials
	if trials <= 0 {
		trials = 6
	}
	rng := rand.New(rand.NewSource(0x5eed))
	in := tensor.New(x...)
	w := tensor.New(cout, x.C(), p.KH, p.KW)
	bias := tensor.New(cout)
	in.RandNormal(rng, 1)
	w.RandNormal(rng, 0.1)
	bias.RandNormal(rng, 0.1)
	oh, ow := p.OutSize(x.H(), x.W())
	dst := tensor.New(x.N(), cout, oh, ow)
	a := tensor.NewArena()

	d := Decision{Algo: DefaultAlgo(p), Seconds: make(map[Algo]float64)}
	best := -1.0
	for _, algo := range Candidates(p, x, cout) {
		run := runner(algo)
		// Two warmups: the first pays one-time costs (scratch pools,
		// twiddle plans, page faults), the second settles the caches.
		run(a, dst, in, w, bias, p)
		run(a, dst, in, w, bias, p)
		// Up to trials timed runs within a fixed per-candidate budget:
		// a fast kernel gets every repetition (precision where the
		// ranking is close), a slow one is cut off after one timed run
		// — it has already lost, more samples cannot help it.
		secs, spent := -1.0, 0.0
		for i := 0; i < trials && (i == 0 || spent < measureBudgetSeconds); i++ {
			start := time.Now()
			run(a, dst, in, w, bias, p)
			s := time.Since(start).Seconds()
			spent += s
			if secs < 0 || s < secs {
				secs = s
			}
		}
		d.Seconds[algo] = secs
		if best < 0 || secs < best {
			best, d.Algo = secs, algo
		}
	}
	return d
}

// runner returns the Into-style kernel entry for algo.
func runner(a Algo) func(ar *tensor.Arena, dst, x, w, bias *tensor.Tensor, p tensor.ConvParams) {
	switch a {
	case Winograd:
		return func(_ *tensor.Arena, dst, x, w, bias *tensor.Tensor, p tensor.ConvParams) {
			tensor.Conv2DWinogradInto(dst, x, w, bias, p)
		}
	case Direct:
		return func(_ *tensor.Arena, dst, x, w, bias *tensor.Tensor, p tensor.ConvParams) {
			tensor.Conv2DDirectInto(dst, x, w, bias, p)
		}
	case FFT:
		return func(_ *tensor.Arena, dst, x, w, bias *tensor.Tensor, p tensor.ConvParams) {
			tensor.Conv2DFFTInto(dst, x, w, bias, p)
		}
	default:
		return func(ar *tensor.Arena, dst, x, w, bias *tensor.Tensor, p tensor.ConvParams) {
			tensor.Conv2DInto(ar, dst, x, w, bias, p)
		}
	}
}

// Site is one distinct convolution call site of a graph.
type Site struct {
	Name   string
	Params tensor.ConvParams
	In     tensor.Shape
	Cout   int
}

// Key returns the site's plan key.
func (s Site) Key() Key { return KeyOf(s.Params, s.In, s.Cout) }

// Sites extracts the convolution sites of a graph in topological
// order, deduplicated by key (split graphs repeat one geometry across
// patches; it is tuned once).
func Sites(g *graph.Graph) []Site {
	seen := make(map[Key]bool)
	var out []Site
	for _, n := range g.OpNodes() {
		if n.Op.Kind() != "conv" || len(n.Inputs) == 0 {
			continue
		}
		c, ok := n.Op.(interface{ Window() tensor.ConvParams })
		if !ok {
			continue
		}
		s := Site{Name: n.Name, Params: c.Window(), In: n.Inputs[0].Shape.Clone(), Cout: n.Shape.C()}
		if k := s.Key(); !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	return out
}

// Result pairs a site with its (possibly pre-existing) decision.
type Result struct {
	Site     Site
	Decision Decision
	Cached   bool // plan existed before this call (cache hit)
}

// TuneGraph tunes every distinct convolution site of g and returns the
// per-site results in graph order.
func (t *Tuner) TuneGraph(g *graph.Graph) []Result {
	sites := Sites(g)
	out := make([]Result, 0, len(sites))
	for _, s := range sites {
		k := s.Key()
		t.mu.RLock()
		_, cached := t.plans[k]
		t.mu.RUnlock()
		d := t.Tune(s.Params, s.In, s.Cout)
		out = append(out, Result{Site: s, Decision: d, Cached: cached})
	}
	return out
}
