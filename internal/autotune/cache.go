package autotune

// Plan persistence. The cache file is JSON, partitioned by environment
// string (GOARCH + kernel variant + GOMAXPROCS): a plan measured with
// the AVX2 micro-kernel on 8 threads says nothing about a portable
// build on 1, so each environment owns a section and a process only
// reads its own. Foreign sections are carried through Save untouched.
// A missing or corrupt file is not an error — the contract is "silent
// re-tune": Load leaves the tuner empty and the next Tune repopulates.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"splitcnn/internal/tensor"
)

const cacheVersion = 1

// Env returns the environment half of the cache key for this process.
func Env() string {
	return fmt.Sprintf("%s/p%d", tensor.CPUFeatures(), runtime.GOMAXPROCS(0))
}

// DefaultCachePath returns ~/.cache/splitcnn/autotune.json (per the
// user cache-dir convention of the platform).
func DefaultCachePath() (string, error) {
	dir, err := os.UserCacheDir()
	if err != nil {
		return "", err
	}
	return filepath.Join(dir, "splitcnn", "autotune.json"), nil
}

type cacheFile struct {
	Version int                     `json:"version"`
	Envs    map[string][]cachedPlan `json:"envs"`
}

type cachedPlan struct {
	Key     Key                `json:"key"`
	Algo    string             `json:"algo"`
	Seconds map[string]float64 `json:"seconds,omitempty"`
}

// Load reads the cache file at path and installs every entry of this
// process's environment section that still passes Applicable. Missing
// or unparsable files (and unknown algorithm names or versions) are
// silently skipped — those keys simply re-tune. The path is remembered
// for Save.
func (t *Tuner) Load(path string) error {
	t.mu.Lock()
	t.path = path
	t.mu.Unlock()
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil // no cache yet: start empty
	}
	var f cacheFile
	if err := json.Unmarshal(raw, &f); err != nil || f.Version != cacheVersion {
		return nil // corrupt or from another era: silent re-tune
	}
	env := Env()
	t.mu.Lock()
	t.other = f.Envs
	t.mu.Unlock()
	for _, cp := range f.Envs[env] {
		algo, ok := ParseAlgo(cp.Algo)
		if !ok || !Applicable(algo, paramsOf(cp.Key), shapeOf(cp.Key), cp.Key.Cout) {
			continue
		}
		d := Decision{Algo: algo, Seconds: make(map[Algo]float64, len(cp.Seconds))}
		for name, s := range cp.Seconds {
			if a, ok := ParseAlgo(name); ok && s > 0 {
				d.Seconds[a] = s
			}
		}
		t.SetPlan(cp.Key, d)
	}
	t.mu.Lock()
	t.dirty = false // what we just loaded is what the file holds
	t.mu.Unlock()
	return nil
}

// Save writes the tuner's plans to the path given to Load (or set with
// SetCachePath), atomically (temp file + rename), preserving other
// environments' sections. A tuner with no path or no new plans is a
// no-op.
func (t *Tuner) Save() error {
	t.mu.RLock()
	path, dirty := t.path, t.dirty
	env := Env()
	section := make([]cachedPlan, 0, len(t.plans))
	for k, d := range t.plans {
		cp := cachedPlan{Key: k, Algo: d.Algo.String(), Seconds: make(map[string]float64, len(d.Seconds))}
		for a, s := range d.Seconds {
			cp.Seconds[a.String()] = s
		}
		section = append(section, cp)
	}
	envs := make(map[string][]cachedPlan, len(t.other)+1)
	for e, plans := range t.other {
		if e != env {
			envs[e] = plans
		}
	}
	t.mu.RUnlock()
	if path == "" || !dirty {
		return nil
	}
	// Deterministic output order, so repeated saves of the same plans
	// are byte-identical.
	sort.Slice(section, func(i, j int) bool {
		a, b := section[i].Key, section[j].Key
		if a.C != b.C {
			return a.C < b.C
		}
		if a.H != b.H {
			return a.H < b.H
		}
		if a.W != b.W {
			return a.W < b.W
		}
		if a.Cout != b.Cout {
			return a.Cout < b.Cout
		}
		if a.KH != b.KH {
			return a.KH < b.KH
		}
		return fmt.Sprint(a) < fmt.Sprint(b)
	})
	envs[env] = section
	out, err := json.MarshalIndent(cacheFile{Version: cacheVersion, Envs: envs}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".autotune-*.json")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(out, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	t.mu.Lock()
	t.dirty = false
	t.mu.Unlock()
	return nil
}

// SetCachePath sets the persistence path without loading (used when
// the caller wants a fresh tune written somewhere specific).
func (t *Tuner) SetCachePath(path string) {
	t.mu.Lock()
	t.path = path
	t.mu.Unlock()
}

// CachePath returns the tuner's persistence path ("" if none).
func (t *Tuner) CachePath() string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.path
}
