package graph

// ModalOp is implemented by operations whose forward semantics differ
// between training and inference: dropout (random mask vs identity) and
// the batch-normalization family (batch statistics vs running
// statistics). The graph is built in training mode by default; flipping
// a graph (or an executor) into inference mode is what makes the
// serving path produce deterministic, batch-composition-independent
// outputs — each sample's result depends only on its own pixels and the
// frozen running statistics, never on its batch neighbours.
type ModalOp interface {
	SetTraining(training bool)
}

// SetTraining flips every mode-aware op in the graph into training
// (true) or inference (false) mode and reports how many ops changed
// mode. Ops without modal behaviour are untouched.
func (g *Graph) SetTraining(training bool) int {
	n := 0
	for _, node := range g.Nodes {
		if node.Kind != KindOp {
			continue
		}
		if m, ok := node.Op.(ModalOp); ok {
			m.SetTraining(training)
			n++
		}
	}
	return n
}

// SetTraining flips the executor's graph between training and inference
// execution modes (see Graph.SetTraining). In inference mode the
// backward pass must not be used: modal ops stash statistics for the
// gradient computation only while training.
func (e *Executor) SetTraining(training bool) int {
	return e.g.SetTraining(training)
}
