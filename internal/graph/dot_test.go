package graph_test

import (
	"strings"
	"testing"

	"splitcnn/internal/graph"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
)

func TestWriteDOT(t *testing.T) {
	g := graph.New()
	x := g.Input("image", tensor.Shape{1, 1, 4, 4})
	w := g.Param("c.w", tensor.Shape{2, 1, 3, 3})
	b := g.Param("c.b", tensor.Shape{2})
	c := g.Add("c.p0", nn.NewConv(3, 1, 1), x, w, b)
	out := g.Add("r", nn.ReLU{}, c)
	g.SetOutput(out)

	var sb strings.Builder
	if err := g.WriteDOT(&sb, "test"); err != nil {
		t.Fatal(err)
	}
	s := sb.String()
	for _, want := range []string{
		`digraph "test"`,
		`label="image`,
		`label="c.w"`,
		"conv",
		"relu",
		"n0 -> n3", // image feeds the conv
		"peripheries=2",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, s)
		}
	}
	// Patch-suffixed nodes are colored.
	if !strings.Contains(s, "fillcolor=\"#dbeafe\"") {
		t.Fatalf("patch node not colored:\n%s", s)
	}
}
