package graph

import (
	"fmt"
	"math/rand"
	"sort"

	"splitcnn/internal/tensor"
)

// Param holds a trainable tensor, its gradient accumulator, and the
// optimizer's momentum buffer.
type Param struct {
	Name     string
	Value    *tensor.Tensor
	Grad     *tensor.Tensor
	Velocity *tensor.Tensor
	// NoDecay marks parameters exempt from weight decay (BN scale/shift
	// and biases, following the paper's training recipes).
	NoDecay bool
	// Frozen excludes the parameter from optimizer updates entirely.
	Frozen bool
}

// ParamStore owns every trainable parameter of a model, keyed by name.
// Multiple graphs (the baseline network, its split variant, and the
// per-minibatch stochastic rewrites) resolve their KindParam nodes
// against one shared store, which is what lets a Stochastic Split-CNN
// train weights that are later evaluated on the unsplit network (§3.3).
type ParamStore struct {
	params map[string]*Param
	// sorted caches All()'s result; rebuilt whenever a parameter has
	// been created since (so steady-state optimizer loops don't allocate).
	sorted []*Param
}

// NewParamStore returns an empty store.
func NewParamStore() *ParamStore {
	return &ParamStore{params: make(map[string]*Param)}
}

// Get returns the named parameter, creating a zero-initialized one of
// the given shape on first use. It panics if an existing parameter has a
// different shape — two graphs disagreeing on a parameter's shape is a
// model-construction bug.
func (s *ParamStore) Get(name string, shape tensor.Shape) *Param {
	if p, ok := s.params[name]; ok {
		if !p.Value.Shape().Equal(shape) {
			panic(fmt.Sprintf("param %q: shape %v requested but store has %v", name, shape, p.Value.Shape()))
		}
		return p
	}
	p := &Param{
		Name:     name,
		Value:    tensor.New(shape...),
		Grad:     tensor.New(shape...),
		Velocity: tensor.New(shape...),
	}
	s.params[name] = p
	return p
}

// Lookup returns the named parameter or nil.
func (s *ParamStore) Lookup(name string) *Param {
	return s.params[name]
}

// All returns the parameters sorted by name for deterministic iteration.
// The returned slice is cached and shared between calls; callers must
// not modify it.
func (s *ParamStore) All() []*Param {
	if len(s.sorted) != len(s.params) {
		out := make([]*Param, 0, len(s.params))
		for _, p := range s.params {
			out = append(out, p)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
		s.sorted = out
	}
	return s.sorted
}

// Len returns the number of parameters.
func (s *ParamStore) Len() int { return len(s.params) }

// NumElems returns the total number of scalar parameters (|G| in the
// distributed-training model of §6.4 counts these as gradient elements).
func (s *ParamStore) NumElems() int64 {
	var n int64
	for _, p := range s.params {
		n += int64(p.Value.Elems())
	}
	return n
}

// Bytes returns the total parameter footprint in bytes.
func (s *ParamStore) Bytes() int64 { return s.NumElems() * 4 }

// ZeroGrads clears every gradient accumulator.
func (s *ParamStore) ZeroGrads() {
	for _, p := range s.params {
		p.Grad.Zero()
	}
}

// Replica returns a worker-local view of the store for data-parallel
// training: parameter *values* are shared (the same tensors), while
// gradient accumulators are private per replica so concurrent backward
// passes do not race; the all-reduce step sums them back into the
// master. Velocity buffers stay with the master (only the master runs
// the optimizer).
func (s *ParamStore) Replica() *ParamStore {
	r := NewParamStore()
	for name, p := range s.params {
		r.params[name] = &Param{
			Name:     p.Name,
			Value:    p.Value, // shared
			Grad:     tensor.New(p.Value.Shape()...),
			Velocity: p.Velocity, // unused by replicas
			NoDecay:  p.NoDecay,
			Frozen:   p.Frozen,
		}
	}
	return r
}

// Initializer assigns initial values to a freshly created parameter.
type Initializer func(rng *rand.Rand, p *Param)

// InitFromGraph materializes (and initializes, on first sight) every
// parameter a graph references. init may be nil to leave new parameters
// zero-valued.
func (s *ParamStore) InitFromGraph(g *Graph, rng *rand.Rand, init Initializer) {
	for _, n := range g.Params() {
		if _, ok := s.params[n.Name]; ok {
			s.Get(n.Name, n.Shape) // shape check
			continue
		}
		p := s.Get(n.Name, n.Shape)
		if init != nil {
			init(rng, p)
		}
	}
}

// GetChecked is Get with shape conflicts reported as errors instead of
// panics, for shapes that come from external data (checkpoint and
// weight-snapshot files).
func (s *ParamStore) GetChecked(name string, shape tensor.Shape) (*Param, error) {
	return s.getChecked(name, shape)
}

// getChecked is Get with shape conflicts reported as errors instead of
// panics (used when the shape comes from external data, e.g. a
// checkpoint file).
func (s *ParamStore) getChecked(name string, shape tensor.Shape) (*Param, error) {
	if p, ok := s.params[name]; ok {
		if !p.Value.Shape().Equal(shape) {
			return nil, fmt.Errorf("param %q: stored shape %v conflicts with existing %v", name, shape, p.Value.Shape())
		}
		return p, nil
	}
	return s.Get(name, shape), nil
}
