package graph

import (
	"fmt"

	"splitcnn/internal/memlayout"
	"splitcnn/internal/tensor"
)

// Compiled execution: instead of interpreting the graph node by node and
// cycling activations through an arena's bucket pools, Compile lowers a
// graph once into a fixed program — a short list of kernel steps writing
// into pre-planned windows of a single slab — and Forward just replays
// it. This is the inference-side analogue of the paper's HMMS pipeline:
// rewrite the program, derive storage sharing and lifetimes, then place
// every storage object at a static offset with the same first-fit
// allocator hmms.PlanMemory uses (§4.4), so the hot path performs no
// allocation and no recycling at all.
//
// Three rewrite families run before planning (all disabled by
// CompileOptions.NoRewrite):
//
//   - In-place fusion (§4.2's in-place TSO sharing): an op that can
//     overwrite its input — ReLU always, BatchNorm/BNReLU in inference
//     mode where the affine transform is elementwise — is folded into
//     its producer's step as an epilogue running on the producer's
//     storage. The BN family is deliberately NOT folded into conv
//     weights: textbook weight folding changes the float32 rounding and
//     would break the bit-identity contract with the interpreted
//     executor. Running the identical eval-mode affine expression in
//     place is exactly as many passes over memory as the fused-weight
//     form saves (one), and keeps outputs bit-identical.
//   - No-op elision: inference-mode dropout forwards its input
//     unchanged; the value is aliased instead of copied.
//   - Reshape elision: flatten becomes a second tensor view of the same
//     slab window with the flattened shape; no copy, no step.
//
// Liveness then runs over the rewritten step list: each storage (an
// alias set of node values sharing one slab window) is live from the
// step that produces it through the last step that reads it, graph
// outputs to the end. memlayout.FirstFit packs the lifetimes into one
// slab whose size IS the plan's peak — the executor maps exactly
// SlabBytes() and nothing else on the activation path.

// ForwardIntoOp is implemented by ops that can write their forward
// output into a caller-supplied destination tensor of the declared
// output shape, drawing any scratch from the arena (and returning it
// before the call completes). It must compute bit-identical values to
// Forward/ForwardArena. dst never aliases an input.
type ForwardIntoOp interface {
	Op
	ForwardInto(a *tensor.Arena, dst *tensor.Tensor, in []*tensor.Tensor)
}

// InplaceOp is implemented by ops that can overwrite their first input
// with their output (same shape, elementwise). CanRunInplace reports
// whether the op's current mode permits it (BatchNorm/BNReLU only in
// inference mode); ForwardInplace applies the op to x in place, with in
// carrying the op's full input list for parameter access (in[0] aliases
// x and must not be read after writing).
type InplaceOp interface {
	Op
	CanRunInplace() bool
	ForwardInplace(x *tensor.Tensor, in []*tensor.Tensor)
}

// NoopOp is implemented by ops that, in their current mode, forward
// their input unchanged (inference-mode dropout). The compiler elides
// them entirely, aliasing the producer's value.
type NoopOp interface {
	Op
	IsNoop() bool
}

// ReshapeOp is implemented by ops whose output is the input's data with
// a different shape (flatten). The compiler replaces them with a second
// view of the producer's slab window.
type ReshapeOp interface {
	Op
	IsReshape() bool
}

// inPlaceEligible mirrors the hmms storage-sharing capability marker
// (§4.2). When an op carries the marker, the compiler honors it as a
// veto: an op reporting InPlaceEligible() == false is never fused, even
// if its InplaceOp implementation would permit it.
type inPlaceEligible interface {
	InPlaceEligible() bool
}

// inplaceAllowed applies the InPlaceEligible veto (true when the op
// does not carry the marker).
func inplaceAllowed(op Op) bool {
	if el, ok := op.(inPlaceEligible); ok {
		return el.InPlaceEligible()
	}
	return true
}

// CompileOptions configures Compile.
type CompileOptions struct {
	// NoRewrite disables fusion and elision: every op becomes its own
	// step with its own storage. The static memory plan still applies.
	// Used by tests and as an ablation baseline.
	NoRewrite bool
	// Scratch, when non-nil, supplies the arena kernels draw transient
	// workspace from (im2col buffers, softmax probabilities). Defaults
	// to a fresh private arena.
	Scratch *tensor.Arena
}

// CompileStats summarizes what compilation did to the graph.
type CompileStats struct {
	Ops       int // op nodes in the source graph
	Steps     int // kernel steps in the compiled program
	Fused     int // ops folded in place into a producer's step
	Elided    int // no-op forwards removed entirely
	Reshaped  int // reshapes turned into views
	Fallbacks int // steps running via Forward+copy (no ForwardInto)
	SlabBytes int64
	// NoReuseBytes is what the slab would need without lifetime reuse —
	// the sum of all storage sizes (ablation baseline, mirrors
	// hmms.MemoryPlan.NoReuseBytes).
	NoReuseBytes int64
}

// PlanEntry describes one node value's placement in the compiled plan,
// for introspection, tests, and the `splitcnn compile` report.
type PlanEntry struct {
	Name string
	Kind string // op kind, or "input" for feed-aliased values
	// Step is the index of the step that materializes the value (the
	// producer's step for fused/aliased values); -1 for values that are
	// external feeds.
	Step int
	// Storage identifies the slab storage (alias set) backing the
	// value; -1 for external feeds. Values sharing a Storage share
	// bytes.
	Storage int
	// Offset/Bytes locate the storage's window in the slab (valid when
	// Storage >= 0). Start/End bound the storage's lifetime in step
	// indices, inclusive.
	Offset, Bytes int64
	Start, End    int
	// FusedInto names the step node this op was folded into as an
	// in-place epilogue ("" for regular steps and pure aliases).
	FusedInto string
	// Alias marks values that share a previously-materialized storage
	// (fused, elided, or reshaped) rather than owning a fresh one.
	Alias bool
}

// feedBinding records a step input slot that must be rebound from the
// feeds map on every Forward call.
type feedBinding struct {
	step, slot int
	name       string
	shape      tensor.Shape
}

// outFeedBinding records a program output that aliases an external feed
// (a graph output elided all the way back to an input).
type outFeedBinding struct {
	idx   int
	name  string
	shape tensor.Shape
}

// epilogue is one in-place fused op attached to a step.
type epilogue struct {
	node *Node
	op   InplaceOp
	x    *tensor.Tensor
	in   []*tensor.Tensor
}

// step is one kernel invocation of the compiled program.
type step struct {
	node *Node
	into ForwardIntoOp  // preferred execution
	fwdA ArenaForwardOp // fallback: run into scratch, copy to out
	in   []*tensor.Tensor
	out  *tensor.Tensor
	post []epilogue
	// slabRef is the deduplicated slab bytes this step's kernel call
	// references: its output window plus every distinct slab storage
	// among its inputs. Concurrently-live storages occupy disjoint
	// windows (first-fit invariant), so the sum never double counts.
	slabRef int64
	// extent is the end of the step's output window (offset+bytes) —
	// the written high-water contribution of this step.
	extent int64
}

// StepEvent describes one executed step of a compiled program, fired by
// the Hook after the step's kernel and its fused epilogues complete.
// SlabRefBytes/SlabWrittenBytes are runtime observations of the bound
// slab windows; Scratch is a live snapshot of the scratch arena.
type StepEvent struct {
	Step  int
	Name  string
	Kind  string
	Fused int // in-place epilogues run as part of this step
	// SlabRefBytes is the slab footprint the step's kernel actually
	// touched (output window + distinct slab-resident inputs, deduped).
	SlabRefBytes int64
	// SlabWrittenBytes is the high-water extent of slab windows written
	// so far in this pass (max offset+bytes over executed steps).
	SlabWrittenBytes int64
	// Scratch snapshots the program's scratch arena after the step.
	Scratch tensor.ArenaStats
}

// StepHook receives one StepEvent per executed compiled step.
type StepHook func(StepEvent)

// CompiledProgram is a graph lowered to a fixed step list over one
// pre-sized slab. It is NOT safe for concurrent use: the slab windows
// are reused across calls (clone outputs before the next Forward, or
// give each goroutine its own program).
type CompiledProgram struct {
	g        *Graph
	steps    []step
	bindings []feedBinding
	outViews []*tensor.Tensor
	outFeeds []outFeedBinding
	outsBuf  []*tensor.Tensor
	slab     []float32
	scratch  *tensor.Arena
	plan     []PlanEntry
	stats    CompileStats

	// Hook, when non-nil, receives a StepEvent after every executed
	// step. Installing a hook costs one arena-stats snapshot per step;
	// leaving it nil keeps Forward allocation-free.
	Hook StepHook
}

// valKind classifies where a node's value lives at run time.
type valKind int

const (
	vExternal valKind = iota // a feed tensor, rebound every Forward
	vParam                   // a parameter tensor from the store
	vSlab                    // a fixed window of the slab
)

type valRef struct {
	kind    valKind
	feed    string // vExternal: input-node name
	param   *Param // vParam
	storage int    // vSlab: storage index
}

// storageSym is one slab storage (alias set) during planning.
type storageSym struct {
	elems       int
	birth, last int   // step-index lifetime, inclusive
	output      bool  // some member is a graph output: lives to the end
	members     []int // node IDs sharing this storage
	offset      int64 // filled by layout
}

// Compile lowers g into a CompiledProgram: applies the inference
// rewrites (unless opts.NoRewrite), plans a static first-fit memory
// layout for every intermediate value, and binds each step's inputs and
// outputs to fixed slab windows. The graph's ops are captured in their
// current mode — flip training/inference with SetTraining BEFORE
// compiling; mode changes after Compile are not observed by the
// rewrite decisions (fusion and elision), only by the kernels
// themselves, so recompile instead.
//
// Parameters resolve to the store's current tensors; in-place updates
// (SGD) are observed, parameter replacement is not.
func Compile(g *Graph, store *ParamStore, opts CompileOptions) (*CompiledProgram, error) {
	topo, err := g.Topo()
	if err != nil {
		return nil, err
	}
	for _, n := range g.Params() {
		if store.Lookup(n.Name) == nil {
			return nil, fmt.Errorf("compile: parameter %q not in store (call InitFromGraph first)", n.Name)
		}
	}
	cons := g.Consumers()
	isOutput := make([]bool, len(g.Nodes))
	for _, n := range g.Outputs {
		isOutput[n.ID] = true
	}

	// ---- Phase A: rewrite sweep. Decide, in topo order, whether each op
	// becomes its own step, folds into a producer's step, or vanishes
	// into an alias; track storage membership and lifetimes.
	vals := make([]valRef, len(g.Nodes))
	var storages []*storageSym
	type symStep struct {
		n    *Node
		post []*Node
	}
	var steps []symStep
	stats := CompileStats{}

	// markRead extends a storage's lifetime to the given step index.
	markRead := func(v valRef, at int) {
		if v.kind == vSlab {
			if s := storages[v.storage]; at > s.last {
				s.last = at
			}
		}
	}

	for _, n := range topo {
		switch n.Kind {
		case KindInput:
			vals[n.ID] = valRef{kind: vExternal, feed: n.Name}
			continue
		case KindParam:
			vals[n.ID] = valRef{kind: vParam, param: store.Lookup(n.Name)}
			continue
		}
		stats.Ops++
		in0 := vals[n.Inputs[0].ID]

		if !opts.NoRewrite {
			// No-op elision: the value IS the input's value.
			if no, ok := n.Op.(NoopOp); ok && no.IsNoop() {
				vals[n.ID] = in0
				if in0.kind == vSlab {
					s := storages[in0.storage]
					s.members = append(s.members, n.ID)
					if isOutput[n.ID] {
						s.output = true
					}
				}
				stats.Elided++
				continue
			}
			// Reshape elision: a second view of the same slab window.
			if r, ok := n.Op.(ReshapeOp); ok && r.IsReshape() && in0.kind == vSlab {
				vals[n.ID] = in0
				s := storages[in0.storage]
				s.members = append(s.members, n.ID)
				if isOutput[n.ID] {
					s.output = true
				}
				stats.Reshaped++
				continue
			}
			// In-place fusion: fold n into the step that produced its
			// input's storage, as an epilogue overwriting the window.
			if ip, ok := n.Op.(InplaceOp); ok && ip.CanRunInplace() && in0.kind == vSlab {
				if inplaceAllowed(n.Op) && fuseLegal(n, storages[in0.storage], cons, isOutput) {
					s := storages[in0.storage]
					s.members = append(s.members, n.ID)
					if isOutput[n.ID] {
						s.output = true
					}
					vals[n.ID] = in0
					steps[s.birth].post = append(steps[s.birth].post, n)
					stats.Fused++
					continue
				}
			}
		}

		// Regular step with a fresh storage.
		at := len(steps)
		steps = append(steps, symStep{n: n})
		for _, src := range n.Inputs {
			markRead(vals[src.ID], at)
		}
		storages = append(storages, &storageSym{
			elems: n.Shape.Elems(), birth: at, last: at,
			output: isOutput[n.ID], members: []int{n.ID},
		})
		vals[n.ID] = valRef{kind: vSlab, storage: len(storages) - 1}
	}

	// Outputs must be computable.
	for _, o := range g.Outputs {
		if o.Kind == KindParam {
			return nil, fmt.Errorf("compile: output %s is a parameter", o)
		}
	}

	// ---- Phase B: static memory plan. Storages holding outputs live to
	// the last step; everything else dies at its last reader.
	blocks := make([]*memlayout.Block, len(storages))
	for i, s := range storages {
		if s.output {
			s.last = len(steps) - 1
		}
		blocks[i] = &memlayout.Block{Start: s.birth, End: s.last, Bytes: int64(s.elems) * 4}
		stats.NoReuseBytes += blocks[i].Bytes
	}
	slabBytes := memlayout.FirstFit(blocks)
	for i, s := range storages {
		s.offset = blocks[i].Offset
		if s.offset%4 != 0 {
			return nil, fmt.Errorf("compile: storage %d offset %d not element-aligned", i, s.offset)
		}
	}
	stats.SlabBytes = slabBytes
	stats.Steps = len(steps)

	p := &CompiledProgram{
		g:        g,
		slab:     make([]float32, slabBytes/4),
		scratch:  opts.Scratch,
		outViews: make([]*tensor.Tensor, len(g.Outputs)),
		outsBuf:  make([]*tensor.Tensor, len(g.Outputs)),
	}
	if p.scratch == nil {
		p.scratch = tensor.NewArena()
	}

	// Per-node slab views (each member of a storage gets a view with its
	// own declared shape over the shared window).
	views := make([]*tensor.Tensor, len(g.Nodes))
	for _, n := range topo {
		v := vals[n.ID]
		if v.kind != vSlab {
			continue
		}
		s := storages[v.storage]
		off := int(s.offset / 4)
		views[n.ID] = tensor.Wrap(p.slab[off:off+n.Shape.Elems()], n.Shape...)
	}

	// Bind steps.
	stepIdx := make([]int, len(g.Nodes)) // node ID -> step index of its value
	for i := range stepIdx {
		stepIdx[i] = -1
	}
	for si := range steps {
		sym := &steps[si]
		n := sym.n
		st := step{
			node: n,
			in:   make([]*tensor.Tensor, len(n.Inputs)),
			out:  views[n.ID],
		}
		if fi, ok := n.Op.(ForwardIntoOp); ok {
			st.into = fi
		} else {
			if fa, ok := n.Op.(ArenaForwardOp); ok {
				st.fwdA = fa
			}
			stats.Fallbacks++
		}
		for slot, src := range n.Inputs {
			v := vals[src.ID]
			switch v.kind {
			case vExternal:
				p.bindings = append(p.bindings, feedBinding{step: si, slot: slot, name: v.feed, shape: src.Shape})
			case vParam:
				st.in[slot] = v.param.Value
			case vSlab:
				st.in[slot] = views[src.ID]
			}
		}
		// Slab footprint of this step's kernel call: output window plus
		// every distinct slab storage among the inputs.
		outSym := storages[vals[n.ID].storage]
		st.slabRef = int64(n.Shape.Elems()) * 4
		st.extent = outSym.offset + st.slabRef
		seenStorage := map[int]bool{vals[n.ID].storage: true}
		for _, src := range n.Inputs {
			if v := vals[src.ID]; v.kind == vSlab && !seenStorage[v.storage] {
				seenStorage[v.storage] = true
				st.slabRef += int64(storages[v.storage].elems) * 4
			}
		}
		stepIdx[n.ID] = si
		for _, fn := range sym.post {
			ep := epilogue{node: fn, op: fn.Op.(InplaceOp), x: views[fn.ID], in: make([]*tensor.Tensor, len(fn.Inputs))}
			for slot, src := range fn.Inputs {
				if slot == 0 {
					ep.in[0] = ep.x // aliases the storage being overwritten
					continue
				}
				// fuseLegal guarantees aux inputs are parameters.
				ep.in[slot] = vals[src.ID].param.Value
			}
			st.post = append(st.post, ep)
			stepIdx[fn.ID] = si
		}
		p.steps = append(p.steps, st)
	}

	// Bind outputs.
	for i, o := range g.Outputs {
		v := vals[o.ID]
		switch v.kind {
		case vExternal:
			p.outFeeds = append(p.outFeeds, outFeedBinding{idx: i, name: v.feed, shape: o.Shape})
		case vParam:
			p.outViews[i] = v.param.Value
		case vSlab:
			p.outViews[i] = views[o.ID]
		}
	}

	// Plan entries for introspection, in topo order over op + input
	// nodes that carry values.
	fusedInto := make(map[int]string)
	for si := range steps {
		for _, fn := range steps[si].post {
			fusedInto[fn.ID] = steps[si].n.Name
		}
	}
	for _, n := range topo {
		if n.Kind != KindOp {
			continue
		}
		v := vals[n.ID]
		e := PlanEntry{Name: n.Name, Kind: n.Op.Kind(), Step: stepIdx[n.ID], Storage: -1, FusedInto: fusedInto[n.ID]}
		if v.kind == vSlab {
			s := storages[v.storage]
			e.Storage = v.storage
			e.Offset, e.Bytes = s.offset, int64(n.Shape.Elems())*4
			e.Start, e.End = s.birth, s.last
			e.Alias = s.members[0] != n.ID
		} else {
			e.Kind = "input"
			e.Step = -1
		}
		p.plan = append(p.plan, e)
	}
	p.stats = stats
	return p, nil
}

// fuseLegal reports whether op n may be folded in place onto storage s.
// Overwriting the window is only safe when nothing still needs the old
// bytes: no member of the storage may be a graph output (its value
// would be clobbered), and no member may have a consumer that runs
// after n (consumers are ordered by node ID, and every consumer with a
// smaller ID has already executed — or itself fused — by the time n's
// epilogue runs). Aux inputs must be parameters so the epilogue needs
// no feed rebinding.
func fuseLegal(n *Node, s *storageSym, cons [][]*Node, isOutput []bool) bool {
	for _, in := range n.Inputs[1:] {
		if in.Kind != KindParam {
			return false
		}
	}
	for _, id := range s.members {
		if isOutput[id] {
			return false
		}
		for _, c := range cons[id] {
			if c.ID > n.ID {
				return false
			}
		}
	}
	return true
}

// Forward replays the compiled program against feeds and returns the
// graph outputs as views into the slab (or the feed tensors themselves
// for outputs elided back to inputs). The returned tensors are
// overwritten by the next Forward call. A warmed program performs zero
// heap allocations.
func (p *CompiledProgram) Forward(feeds Feeds) ([]*tensor.Tensor, error) {
	for _, b := range p.bindings {
		t, ok := feeds[b.name]
		if !ok {
			return nil, fmt.Errorf("compiled: no feed for input %q", b.name)
		}
		if !t.Shape().Equal(b.shape) {
			return nil, fmt.Errorf("compiled: feed %q has shape %v, program wants %v", b.name, t.Shape(), b.shape)
		}
		p.steps[b.step].in[b.slot] = t
	}
	var extent int64
	for i := range p.steps {
		st := &p.steps[i]
		if opLabelsOn() {
			labelOp(st.node.Name, func() { p.runStep(st) })
		} else {
			p.runStep(st)
		}
		if p.Hook != nil {
			if st.extent > extent {
				extent = st.extent
			}
			p.Hook(StepEvent{
				Step: i, Name: st.node.Name, Kind: st.node.Op.Kind(),
				Fused:        len(st.post),
				SlabRefBytes: st.slabRef, SlabWrittenBytes: extent,
				Scratch: p.scratch.Stats(),
			})
		}
	}
	outs := p.outsBuf
	copy(outs, p.outViews)
	for _, b := range p.outFeeds {
		t, ok := feeds[b.name]
		if !ok {
			return nil, fmt.Errorf("compiled: no feed for input %q (aliased by an output)", b.name)
		}
		outs[b.idx] = t
	}
	return outs, nil
}

// runStep executes one step: kernel call plus fused epilogues.
func (p *CompiledProgram) runStep(st *step) {
	if st.into != nil {
		st.into.ForwardInto(p.scratch, st.out, st.in)
	} else {
		// Fallback for ops without ForwardInto: run the op's own
		// forward into transient storage and copy into the planned
		// window. Correct for any op, but not allocation-free.
		var out *tensor.Tensor
		var stash any
		if st.fwdA != nil {
			out, stash = st.fwdA.ForwardArena(p.scratch, st.in)
		} else {
			out, stash = st.node.Op.Forward(st.in)
		}
		st.out.CopyFrom(out)
		p.scratch.Put(out)
		if t, ok := stash.(*tensor.Tensor); ok {
			p.scratch.Put(t)
		}
	}
	for _, ep := range st.post {
		ep.op.ForwardInplace(ep.x, ep.in)
	}
}

// ExecuteCompiled runs one compiled forward pass — the documented entry
// point mirroring Executor.Forward.
func ExecuteCompiled(p *CompiledProgram, feeds Feeds) ([]*tensor.Tensor, error) {
	return p.Forward(feeds)
}

// SlabBytes returns the size of the single activation slab the program
// maps — the static plan's peak, and the only activation memory the
// compiled path touches.
func (p *CompiledProgram) SlabBytes() int64 { return p.stats.SlabBytes }

// Stats returns compilation statistics.
func (p *CompiledProgram) Stats() CompileStats { return p.stats }

// PlanEntries returns the per-node placement records of the static
// memory plan, in topological order.
func (p *CompiledProgram) PlanEntries() []PlanEntry {
	out := make([]PlanEntry, len(p.plan))
	copy(out, p.plan)
	return out
}

// Steps returns the number of kernel steps in the program.
func (p *CompiledProgram) Steps() int { return len(p.steps) }

// Arena returns the scratch arena kernels draw transient workspace
// from; its high-water mark bounds the compiled path's scratch usage.
func (p *CompiledProgram) Arena() *tensor.Arena { return p.scratch }

// Graph returns the source graph.
func (p *CompiledProgram) Graph() *Graph { return p.g }
