package graph

import (
	"context"
	"runtime/pprof"
	"sync/atomic"
)

// Per-op pprof labeling: when enabled, the executor and the compiled
// program wrap every kernel invocation in a goroutine label set
// {"op": <node name>}, so CPU profile samples taken during the window
// can be attributed to individual graph ops exactly, not statistically.
// The toggle is process-global because CPU profiling itself is — only
// one profile window runs at a time (memobs serializes them), and the
// label wrap costs a map allocation per op, so it stays off outside
// capture windows to keep the hot path allocation-free.

var opLabels atomic.Bool

// EnableOpLabels turns per-op pprof labeling on or off. The continuous
// profiler flips it on for the duration of each CPU capture window.
func EnableOpLabels(on bool) { opLabels.Store(on) }

// opLabelsOn reports whether kernel invocations should be labeled.
func opLabelsOn() bool { return opLabels.Load() }

// labelOp runs f under the pprof label {"op": name}.
func labelOp(name string, f func()) {
	pprof.Do(context.Background(), pprof.Labels("op", name), func(context.Context) { f() })
}
