package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// Checkpoint format: a simple self-describing binary container.
//
//	magic "SCNNCKPT" | uint32 version | uint32 paramCount
//	per parameter (sorted by name):
//	  uint16 nameLen | name bytes | uint8 flags (1 = NoDecay, 2 = Frozen)
//	  uint8 rank | int64 dims... | float32 values...
//
// Velocity buffers are intentionally not saved: a checkpoint captures
// the model, not the optimizer.

var ckptMagic = [8]byte{'S', 'C', 'N', 'N', 'C', 'K', 'P', 'T'}

const ckptVersion = 1

// Save writes every parameter of the store to w.
func (s *ParamStore) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(ckptMagic[:]); err != nil {
		return err
	}
	all := s.All()
	if err := binary.Write(bw, binary.LittleEndian, uint32(ckptVersion)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(all))); err != nil {
		return err
	}
	for _, p := range all {
		if len(p.Name) > math.MaxUint16 {
			return fmt.Errorf("checkpoint: parameter name %q too long", p.Name)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(p.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(p.Name); err != nil {
			return err
		}
		var flags uint8
		if p.NoDecay {
			flags |= 1
		}
		if p.Frozen {
			flags |= 2
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		shape := p.Value.Shape()
		if err := bw.WriteByte(uint8(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := binary.Write(bw, binary.LittleEndian, int64(d)); err != nil {
				return err
			}
		}
		if err := binary.Write(bw, binary.LittleEndian, p.Value.Data()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load restores parameters from r into the store, creating missing ones
// and validating shapes of existing ones.
func (s *ParamStore) Load(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if magic != ckptMagic {
		return fmt.Errorf("checkpoint: bad magic %q", magic)
	}
	var version, count uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return err
	}
	if version != ckptVersion {
		return fmt.Errorf("checkpoint: unsupported version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return err
	}
	for i := uint32(0); i < count; i++ {
		var nameLen uint16
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return err
		}
		flags, err := br.ReadByte()
		if err != nil {
			return err
		}
		rank, err := br.ReadByte()
		if err != nil {
			return err
		}
		if rank == 0 || rank > 8 {
			return fmt.Errorf("checkpoint: parameter %q has rank %d", name, rank)
		}
		dims := make([]int, rank)
		for d := range dims {
			var v int64
			if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
				return err
			}
			if v <= 0 || v > 1<<31 {
				return fmt.Errorf("checkpoint: parameter %q has dimension %d", name, v)
			}
			dims[d] = int(v)
		}
		p, err := s.getChecked(string(name), dims)
		if err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		if err := binary.Read(br, binary.LittleEndian, p.Value.Data()); err != nil {
			return err
		}
		p.NoDecay = flags&1 != 0
		p.Frozen = flags&2 != 0
	}
	return nil
}

// SaveFile writes the checkpoint to path atomically (via a temp file).
func (s *ParamStore) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile restores a checkpoint from path.
func (s *ParamStore) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Load(f)
}

// Names returns the sorted parameter names (diagnostics and tests).
func (s *ParamStore) Names() []string {
	out := make([]string, 0, len(s.params))
	for n := range s.params {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
