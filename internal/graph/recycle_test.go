package graph_test

import (
	"math/rand"
	"testing"

	"splitcnn/internal/graph"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
)

// buildDualOutputNet builds the eval/validation topology that stresses
// the release/recycle paths: the logits node is both a graph output
// (the caller reads it after Backward) and an input the loss keeps for
// backward. Its tensor therefore crosses the retire path, not the
// immediate arena.Put path, and must be reclaimed exactly once.
func buildDualOutputNet(batch int) (*graph.Graph, *graph.ParamStore, *graph.Node, *graph.Node) {
	g := graph.New()
	x := g.Input("image", tensor.Shape{batch, 3, 8, 8})
	labels := g.Input("labels", tensor.Shape{batch})
	w1 := g.Param("c1.w", tensor.Shape{4, 3, 3, 3})
	b1 := g.Param("c1.b", tensor.Shape{4})
	c1 := g.Add("c1", nn.NewConv(3, 1, 1), x, w1, b1)
	r1 := g.Add("r1", nn.ReLU{}, c1)
	gap := g.Add("gap", nn.GlobalAvgPool{}, r1)
	fl := g.Add("fl", nn.Flatten{}, gap)
	wf := g.Param("fc.w", tensor.Shape{5, 4})
	bf := g.Param("fc.b", tensor.Shape{5})
	logits := g.Add("logits", nn.Linear{}, fl, wf, bf)
	loss := g.Add("loss", nn.SoftmaxCrossEntropy{}, logits, labels)
	g.SetOutput(loss)
	// Expose logits as a second output, exactly like train.Evaluate does.
	g.Outputs = append(g.Outputs, logits)

	store := graph.NewParamStore()
	store.InitFromGraph(g, rand.New(rand.NewSource(3)), nn.KaimingInit)
	return g, store, loss, logits
}

// TestOutputRetireNoDoubleRecycle is the regression guard for the
// double-recycle hazard around Executor.release/recycle: an output node
// that is also consumed by a kept-for-backward node (logits feeding the
// loss) is released once during Backward (deferred to the retired list)
// and must not be reclaimed a second time by the next Forward's value
// sweep or an explicit Recycle. A double reclaim would poison the
// arena: the buffer gets re-vended while a stale reference still
// returns it, and two live tensors end up sharing storage, which shows
// up as bit-instability across identical steps.
func TestOutputRetireNoDoubleRecycle(t *testing.T) {
	const batch = 3
	g, store, _, _ := buildDualOutputNet(batch)
	ex, err := graph.NewExecutor(g, store)
	if err != nil {
		t.Fatal(err)
	}
	arena := tensor.NewArena()
	ex.UseArena(arena)

	x := tensor.New(batch, 3, 8, 8)
	y := tensor.New(batch)
	rng := rand.New(rand.NewSource(9))
	for i, d := 0, x.Data(); i < len(d); i++ {
		d[i] = rng.Float32()
	}
	for i := 0; i < batch; i++ {
		y.Data()[i] = float32(i % 5)
	}
	feeds := graph.Feeds{"image": x, "labels": y}

	var refLoss float32
	var refLogits []float32
	step := func(cycle int) {
		outs, err := ex.Forward(feeds)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		lossT, logitsT := outs[0], outs[1]
		if &lossT.Data()[0] == &logitsT.Data()[0] {
			t.Fatalf("cycle %d: loss and logits outputs share storage", cycle)
		}
		if err := ex.Backward(); err != nil {
			t.Fatalf("cycle %d: backward: %v", cycle, err)
		}
		// Outputs must remain readable and correct after Backward: they
		// were retired, not recycled.
		if cycle == 0 {
			refLoss = lossT.Data()[0]
			refLogits = append(refLogits, logitsT.Data()...)
			return
		}
		if got := lossT.Data()[0]; got != refLoss {
			t.Fatalf("cycle %d: loss %v, want bit-identical %v", cycle, got, refLoss)
		}
		for i, v := range logitsT.Data() {
			if v != refLogits[i] {
				t.Fatalf("cycle %d: logits[%d] = %v, want %v", cycle, i, v, refLogits[i])
			}
		}
		store.ZeroGrads()
	}

	for c := 0; c < 4; c++ {
		step(c)
	}
	warm := arena.Stats()
	// Explicit double Recycle between steps must be harmless: the
	// second call sees an empty retired list and nil values, and the
	// arena's ownership guard makes any stray duplicate Put a no-op.
	ex.Recycle()
	ex.Recycle()
	for c := 4; c < 8; c++ {
		step(c)
	}
	after := arena.Stats()
	if after.PooledBytes != warm.PooledBytes {
		t.Fatalf("arena footprint grew after warm-up: %d -> %d bytes (a recycle path is leaking or double-reclaiming)",
			warm.PooledBytes, after.PooledBytes)
	}
	if after.InUseBytes < 0 {
		t.Fatalf("negative in-use bytes %d: a buffer was returned twice", after.InUseBytes)
	}
}

// TestForwardOnlyOutputRecycleStability covers the eval-mode shape of
// the same hazard: repeated Forward calls with no Backward, where both
// outputs stay in the value table and are reclaimed by the next
// Forward's sweep.
func TestForwardOnlyOutputRecycleStability(t *testing.T) {
	const batch = 2
	g, store, _, _ := buildDualOutputNet(batch)
	ex, err := graph.NewExecutor(g, store)
	if err != nil {
		t.Fatal(err)
	}
	arena := tensor.NewArena()
	ex.UseArena(arena)

	x := tensor.New(batch, 3, 8, 8)
	y := tensor.New(batch)
	x.Fill(0.25)
	feeds := graph.Feeds{"image": x, "labels": y}

	var ref []float32
	for c := 0; c < 6; c++ {
		outs, err := ex.Forward(feeds)
		if err != nil {
			t.Fatalf("cycle %d: %v", c, err)
		}
		if c == 0 {
			ref = append(ref, outs[1].Data()...)
			continue
		}
		for i, v := range outs[1].Data() {
			if v != ref[i] {
				t.Fatalf("cycle %d: logits[%d] = %v, want %v", c, i, v, ref[i])
			}
		}
	}
}
