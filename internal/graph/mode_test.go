package graph_test

import (
	"math"
	"math/rand"
	"testing"

	"splitcnn/internal/graph"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
)

// buildModal returns a small dropout -> batchnorm graph of the given
// batch size, sharing BN state and parameters across calls.
func buildModal(batch int, st *nn.BNState, store *graph.ParamStore) (*graph.Graph, *graph.Node) {
	g := graph.New()
	x := g.Input("x", tensor.Shape{batch, 2, 3, 3})
	drop := g.Add("drop", &nn.Dropout{P: 0.5, Training: true, Rng: rand.New(rand.NewSource(1))}, x)
	gamma := g.Param("bn.gamma", tensor.Shape{2})
	beta := g.Param("bn.beta", tensor.Shape{2})
	bn := g.Add("bn", nn.NewBatchNorm(st), drop, gamma, beta)
	g.SetOutput(bn)
	store.InitFromGraph(g, rand.New(rand.NewSource(2)), nil)
	store.Lookup("bn.gamma").Value.Fill(1.5)
	store.Lookup("bn.beta").Value.Fill(0.25)
	return g, bn
}

func forwardModal(t *testing.T, g *graph.Graph, store *graph.ParamStore, x *tensor.Tensor) []float32 {
	t.Helper()
	ex, err := graph.NewExecutor(g, store)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := ex.Forward(graph.Feeds{"x": x})
	if err != nil {
		t.Fatal(err)
	}
	return append([]float32(nil), outs[0].Data()...)
}

// TestSetTrainingEvalMode checks the inference execution mode: dropout
// becomes the identity and BatchNorm normalizes with the running
// statistics instead of batch statistics.
func TestSetTrainingEvalMode(t *testing.T) {
	st := nn.NewBNState("bn", 2)
	st.RunningMean = []float64{0.5, -1}
	st.RunningVar = []float64{4, 0.25}
	store := graph.NewParamStore()
	g, _ := buildModal(1, st, store)

	if n := g.SetTraining(false); n != 2 {
		t.Fatalf("SetTraining flipped %d modal ops, want 2 (dropout + batchnorm)", n)
	}

	x := tensor.New(1, 2, 3, 3)
	rng := rand.New(rand.NewSource(3))
	for i := range x.Data() {
		x.Data()[i] = rng.Float32()*2 - 1
	}
	got := forwardModal(t, g, store, x)

	// Expected: pure per-channel affine from the frozen running stats —
	// no dropout mask, no batch statistics, no running-stat update.
	meanBefore := append([]float64(nil), st.RunningMean...)
	for ch := 0; ch < 2; ch++ {
		m := float32(st.RunningMean[ch])
		is := float32(1 / math.Sqrt(st.RunningVar[ch]+1e-5))
		for i := 0; i < 9; i++ {
			idx := ch*9 + i
			want := (x.Data()[idx]-m)*is*1.5 + 0.25
			if got[idx] != want {
				t.Fatalf("eval output[%d] = %g, want %g", idx, got[idx], want)
			}
		}
	}
	for ch := range meanBefore {
		if st.RunningMean[ch] != meanBefore[ch] {
			t.Fatalf("eval forward updated running mean[%d]", ch)
		}
	}

	// Executor-level toggle flips back to training mode: batch statistics
	// differ from the running ones, so outputs must change.
	ex, err := graph.NewExecutor(g, store)
	if err != nil {
		t.Fatal(err)
	}
	if n := ex.SetTraining(true); n != 2 {
		t.Fatalf("Executor.SetTraining flipped %d ops, want 2", n)
	}
	trained := forwardModal(t, g, store, x)
	same := true
	for i := range got {
		if trained[i] != got[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("training-mode forward identical to eval-mode forward")
	}
}

// TestEvalBatchInvariance pins the property the serving batcher relies
// on: in inference mode each sample's output is bit-identical whether it
// runs alone or coalesced into a larger batch.
func TestEvalBatchInvariance(t *testing.T) {
	st := nn.NewBNState("bn", 2)
	st.RunningMean = []float64{0.1, -0.2}
	st.RunningVar = []float64{1.5, 0.7}
	store := graph.NewParamStore()
	g1, _ := buildModal(1, st, store)
	g4, _ := buildModal(4, st, store)
	g1.SetTraining(false)
	g4.SetTraining(false)

	rng := rand.New(rand.NewSource(4))
	imgs := make([]*tensor.Tensor, 3) // partial batch: 3 of 4 slots used
	batch := tensor.New(4, 2, 3, 3)
	for b := range imgs {
		imgs[b] = tensor.New(1, 2, 3, 3)
		for i := range imgs[b].Data() {
			v := rng.Float32()*2 - 1
			imgs[b].Data()[i] = v
			batch.Data()[b*18+i] = v
		}
	}
	big := forwardModal(t, g4, store, batch)
	for b, img := range imgs {
		solo := forwardModal(t, g1, store, img)
		for i, v := range solo {
			if big[b*18+i] != v {
				t.Fatalf("sample %d element %d: batched %g != solo %g", b, i, big[b*18+i], v)
			}
		}
	}
}
