package graph_test

import (
	"testing"

	"splitcnn/internal/autotune"
	"splitcnn/internal/graph"
	"splitcnn/internal/tensor"
)

// forceNonDefaultPlans installs a tuned plan for every conv site of g,
// preferring the backends the default heuristic would NOT pick (FFT,
// then direct), so the test exercises the dispatch switch for real.
// It returns the number of sites whose algorithm differs from default.
func forceNonDefaultPlans(g *graph.Graph) int {
	changed := 0
	for _, s := range autotune.Sites(g) {
		algo := autotune.DefaultAlgo(s.Params)
		for _, cand := range []autotune.Algo{autotune.FFT, autotune.Direct} {
			if cand != algo && autotune.Applicable(cand, s.Params, s.In, s.Cout) {
				algo = cand
				break
			}
		}
		if algo != autotune.DefaultAlgo(s.Params) {
			changed++
		}
		autotune.Default.SetPlan(s.Key(), autotune.Decision{Algo: algo})
	}
	return changed
}

// TestCompiledForwardZeroAllocTuned is the acceptance-criteria twin of
// TestCompiledForwardZeroAlloc: with autotuned plans installed —
// including the FFT backend, whose workspace cycles through the
// scratch pool — the warmed compiled forward still performs zero heap
// allocations.
func TestCompiledForwardZeroAllocTuned(t *testing.T) {
	prev := tensor.SetParallelism(1)
	defer tensor.SetParallelism(prev)
	defer autotune.Default.Reset()

	g, store := buildCompileNet(2, false) // eval mode
	if forceNonDefaultPlans(g) == 0 {
		t.Fatal("no conv site could take a non-default backend; test is vacuous")
	}
	prog, err := graph.Compile(g, store, graph.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	feeds := compileFeeds(t, g, 13)
	for i := 0; i < 5; i++ {
		if _, err := prog.Forward(feeds); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := prog.Forward(feeds); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed tuned compiled forward allocates %.1f objects per run, want 0", allocs)
	}
}

// TestCompiledMatchesInterpretedTuned: the compiled and interpreted
// paths consult the same dispatcher, so they stay bit-identical to
// each other under any installed plan.
func TestCompiledMatchesInterpretedTuned(t *testing.T) {
	defer autotune.Default.Reset()
	g, store := buildCompileNet(3, false)
	forceNonDefaultPlans(g)

	exec, err := graph.NewExecutor(g, store)
	if err != nil {
		t.Fatal(err)
	}
	feeds := compileFeeds(t, g, 29)
	want, err := exec.Forward(feeds)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := graph.Compile(g, store, graph.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := prog.Forward(feeds)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "tuned", got, want)
}
