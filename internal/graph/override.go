package graph

import (
	"fmt"
	"sort"
	"strings"

	"splitcnn/internal/tensor"
)

// overrideState caches the reachability analysis for one override name
// set: which nodes still need to execute when the named op values are
// supplied externally. The distributed router always overrides the same
// node, so a single-entry cache makes repeat calls allocation-light.
type overrideState struct {
	key  string
	ids  []int            // overridden node IDs
	need []bool           // nodes that must execute (or be fed/overridden)
	over []*tensor.Tensor // per-node override values, cleared after use
}

func overrideKey(overrides map[string]*tensor.Tensor) string {
	names := make([]string, 0, len(overrides))
	for name := range overrides {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, "\x00")
}

func (e *Executor) overrideState(overrides map[string]*tensor.Tensor) (*overrideState, error) {
	key := overrideKey(overrides)
	if e.ovr != nil && e.ovr.key == key {
		return e.ovr, nil
	}
	st := &overrideState{
		key:  key,
		need: make([]bool, len(e.g.Nodes)),
		over: make([]*tensor.Tensor, len(e.g.Nodes)),
	}
	overridden := make([]bool, len(e.g.Nodes))
	for name := range overrides {
		n := e.g.FindNode(name)
		if n == nil || n.Kind != KindOp {
			return nil, fmt.Errorf("executor: override %q is not an op node", name)
		}
		overridden[n.ID] = true
		st.ids = append(st.ids, n.ID)
	}
	// Mark ancestors of the outputs, stopping at overridden nodes: their
	// subgraphs need not run (or be fed) at all.
	var stack []*Node
	for _, n := range e.g.Outputs {
		if !st.need[n.ID] {
			st.need[n.ID] = true
			stack = append(stack, n)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if overridden[n.ID] {
			continue
		}
		for _, src := range n.Inputs {
			if !st.need[src.ID] {
				st.need[src.ID] = true
				stack = append(stack, src)
			}
		}
	}
	for _, id := range st.ids {
		if !st.need[id] {
			return nil, fmt.Errorf("executor: override %q does not feed any graph output", e.g.Nodes[id].Name)
		}
	}
	e.ovr = st
	return st, nil
}

// ForwardFrom runs a forward pass with the values of the named op nodes
// supplied by the caller instead of computed: ancestors that only exist
// to produce an overridden value are skipped entirely (their input
// feeds may be omitted), and the overridden tensors remain caller-owned
// — the executor never recycles them into its arena.
//
// This is the scatter/gather seam of distributed split inference: the
// router assembles a mid-graph feature map from shard workers and
// resumes the remaining "tail" of the graph here. ForwardFrom is a
// forward-only entry point; calling Backward after it is unsupported
// (the skipped ancestors' activations do not exist).
func (e *Executor) ForwardFrom(feeds Feeds, overrides map[string]*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(overrides) == 0 {
		return e.Forward(feeds)
	}
	st, err := e.overrideState(overrides)
	if err != nil {
		return nil, err
	}
	for _, id := range st.ids {
		t := overrides[e.g.Nodes[id].Name]
		if t == nil {
			return nil, fmt.Errorf("executor: nil override for %q", e.g.Nodes[id].Name)
		}
		if !t.Shape().Equal(e.g.Nodes[id].Shape) {
			return nil, fmt.Errorf("executor: override %q has shape %v, node wants %v",
				e.g.Nodes[id].Name, t.Shape(), e.g.Nodes[id].Shape)
		}
		st.over[id] = t
	}
	outs, err := e.forward(feeds, st.over, st.need)
	for _, id := range st.ids {
		st.over[id] = nil
	}
	return outs, err
}
