package graph_test

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"splitcnn/internal/graph"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := graph.NewParamStore()
	w := s.Get("conv1.w", tensor.Shape{8, 3, 3, 3})
	w.Value.RandNormal(rng, 1)
	b := s.Get("bn.gamma", tensor.Shape{8})
	b.Value.Fill(1)
	b.NoDecay = true
	f := s.Get("frozen.w", tensor.Shape{2, 2})
	f.Frozen = true
	f.Value.RandNormal(rng, 1)

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := graph.NewParamStore()
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 3 {
		t.Fatalf("restored %d params", restored.Len())
	}
	for _, name := range s.Names() {
		a, bb := s.Lookup(name), restored.Lookup(name)
		if d := tensor.MaxAbsDiff(a.Value, bb.Value); d != 0 {
			t.Fatalf("param %s differs by %v", name, d)
		}
		if a.NoDecay != bb.NoDecay || a.Frozen != bb.Frozen {
			t.Fatalf("param %s flags lost", name)
		}
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	s := graph.NewParamStore()
	if err := s.Load(bytes.NewReader([]byte("not a checkpoint at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := s.Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestCheckpointFileRoundTripThroughTraining(t *testing.T) {
	// Save a trained-ish model, load into a fresh store, and verify a
	// forward pass produces identical outputs.
	rng := rand.New(rand.NewSource(2))
	g := graph.New()
	x := g.Input("x", tensor.Shape{2, 8})
	w := g.Param("fc.w", tensor.Shape{4, 8})
	b := g.Param("fc.b", tensor.Shape{4})
	out := g.Add("fc", nn.Linear{}, x, w, b)
	g.SetOutput(out)
	s1 := graph.NewParamStore()
	s1.InitFromGraph(g, rng, nn.KaimingInit)

	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := s1.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s2 := graph.NewParamStore()
	if err := s2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	xt := tensor.New(2, 8)
	xt.RandNormal(rng, 1)
	run := func(st *graph.ParamStore) *tensor.Tensor {
		ex, err := graph.NewExecutor(g, st)
		if err != nil {
			t.Fatal(err)
		}
		outs, err := ex.Forward(graph.Feeds{"x": xt})
		if err != nil {
			t.Fatal(err)
		}
		return outs[0]
	}
	if d := tensor.MaxAbsDiff(run(s1), run(s2)); d != 0 {
		t.Fatalf("restored model computes differently: %v", d)
	}
}

func TestCheckpointShapeConflictIsError(t *testing.T) {
	s := graph.NewParamStore()
	s.Get("w", tensor.Shape{2, 2}).Value.Fill(1)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := graph.NewParamStore()
	s2.Get("w", tensor.Shape{3, 3}) // conflicting pre-existing shape
	if err := s2.Load(&buf); err == nil {
		t.Fatal("shape conflict loaded without error")
	}
}
