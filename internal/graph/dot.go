package graph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format — the debugging aid
// for inspecting what the Split-CNN transformation did to a model
// (`splitcnn transform -dot`). Inputs are boxes, parameters are
// ellipses, operations are rounded records labelled kind and output
// shape; the patch clones created by the transform (".pN" suffixes)
// share a color per patch so the independent chains are visually
// obvious.
func (g *Graph) WriteDOT(w io.Writer, title string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=TB;\n  node [fontname=\"Helvetica\", fontsize=10];\n")
	colors := []string{"#dbeafe", "#dcfce7", "#fef9c3", "#fee2e2", "#f3e8ff", "#e0f2fe", "#fae8ff", "#ecfccb", "#ffe4e6"}
	for _, n := range g.Nodes {
		id := fmt.Sprintf("n%d", n.ID)
		switch n.Kind {
		case KindInput:
			fmt.Fprintf(&b, "  %s [shape=box, style=filled, fillcolor=\"#f1f5f9\", label=\"%s\\n%v\"];\n",
				id, n.Name, n.Shape)
		case KindParam:
			fmt.Fprintf(&b, "  %s [shape=ellipse, style=dashed, label=\"%s\"];\n", id, n.Name)
		case KindOp:
			fill := "#ffffff"
			if p := patchIndex(n.Name); p >= 0 {
				fill = colors[p%len(colors)]
			}
			fmt.Fprintf(&b, "  %s [shape=box, style=\"rounded,filled\", fillcolor=%q, label=\"%s\\n%s %v\"];\n",
				id, fill, n.Name, n.Op.Kind(), n.Shape)
		}
		for _, in := range n.Inputs {
			fmt.Fprintf(&b, "  n%d -> %s;\n", in.ID, id)
		}
	}
	for _, out := range g.Outputs {
		fmt.Fprintf(&b, "  n%d [peripheries=2];\n", out.ID)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// patchIndex extracts the ".pN" patch suffix of a transform-generated
// node name, or -1.
func patchIndex(name string) int {
	i := strings.LastIndex(name, ".p")
	if i < 0 || i+2 >= len(name) {
		return -1
	}
	v := 0
	for _, c := range name[i+2:] {
		if c < '0' || c > '9' {
			return -1
		}
		v = v*10 + int(c-'0')
	}
	return v
}
