package graph_test

import (
	"math/rand"
	"testing"

	"splitcnn/internal/graph"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
)

func TestGraphConstructionAndTopo(t *testing.T) {
	g := graph.New()
	x := g.Input("x", tensor.Shape{1, 4})
	r1 := g.Add("r1", nn.ReLU{}, x)
	r2 := g.Add("r2", nn.ReLU{}, r1)
	g.SetOutput(r2)
	topo, err := g.Topo()
	if err != nil {
		t.Fatal(err)
	}
	if len(topo) != 3 {
		t.Fatalf("topo len %d", len(topo))
	}
	if x.ID != 0 || r1.ID != 1 || r2.ID != 2 {
		t.Fatal("IDs not in insertion order")
	}
	cons := g.Consumers()
	if len(cons[x.ID]) != 1 || cons[x.ID][0] != r1 {
		t.Fatal("consumer map wrong")
	}
	if g.FindNode("r2") != r2 || g.FindNode("zzz") != nil {
		t.Fatal("FindNode wrong")
	}
}

func TestGraphShapeInferencePanicsOnMismatch(t *testing.T) {
	g := graph.New()
	x := g.Input("x", tensor.Shape{1, 4})
	y := g.Input("y", tensor.Shape{1, 5})
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched add accepted")
		}
	}()
	g.Add("add", &nn.Add{N: 2}, x, y)
}

func TestParamStoreShapes(t *testing.T) {
	s := graph.NewParamStore()
	p := s.Get("w", tensor.Shape{2, 3})
	if p.Value.Elems() != 6 || p.Grad.Elems() != 6 || p.Velocity.Elems() != 6 {
		t.Fatal("param buffers wrong")
	}
	if s.Get("w", tensor.Shape{2, 3}) != p {
		t.Fatal("Get not idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("shape conflict accepted")
		}
	}()
	s.Get("w", tensor.Shape{3, 2})
}

func TestParamStoreAccounting(t *testing.T) {
	s := graph.NewParamStore()
	s.Get("a", tensor.Shape{10})
	s.Get("b", tensor.Shape{5, 2})
	if s.Len() != 2 || s.NumElems() != 20 || s.Bytes() != 80 {
		t.Fatalf("accounting wrong: %d %d %d", s.Len(), s.NumElems(), s.Bytes())
	}
	all := s.All()
	if len(all) != 2 || all[0].Name != "a" || all[1].Name != "b" {
		t.Fatal("All() not sorted by name")
	}
	all[0].Grad.Fill(3)
	s.ZeroGrads()
	if all[0].Grad.Sum() != 0 {
		t.Fatal("ZeroGrads failed")
	}
}

func TestExecutorMissingFeed(t *testing.T) {
	g := graph.New()
	x := g.Input("x", tensor.Shape{1, 4})
	out := g.Add("r", nn.ReLU{}, x)
	g.SetOutput(out)
	ex, err := graph.NewExecutor(g, graph.NewParamStore())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Forward(graph.Feeds{}); err == nil {
		t.Fatal("missing feed accepted")
	}
	bad := tensor.New(2, 4)
	if _, err := ex.Forward(graph.Feeds{"x": bad}); err == nil {
		t.Fatal("mis-shaped feed accepted")
	}
}

func TestExecutorRequiresInitializedParams(t *testing.T) {
	g := graph.New()
	x := g.Input("x", tensor.Shape{1, 4})
	w := g.Param("fc.w", tensor.Shape{2, 4})
	b := g.Param("fc.b", tensor.Shape{2})
	out := g.Add("fc", nn.Linear{}, x, w, b)
	g.SetOutput(out)
	if _, err := graph.NewExecutor(g, graph.NewParamStore()); err == nil {
		t.Fatal("uninitialized store accepted")
	}
}

// TestExecutorPeakLiveTracking: the executor's liveness accounting must
// drop activations nobody stashes.
func TestExecutorPeakLiveTracking(t *testing.T) {
	g := graph.New()
	x := g.Input("x", tensor.Shape{1, 1024})
	cur := x
	for i := 0; i < 8; i++ {
		cur = g.Add("d"+string(rune('a'+i)), &nn.Dropout{}, cur)
	}
	g.SetOutput(cur)
	ex, err := graph.NewExecutor(g, graph.NewParamStore())
	if err != nil {
		t.Fatal(err)
	}
	xt := tensor.New(1, 1024)
	if _, err := ex.Forward(graph.Feeds{"x": xt}); err != nil {
		t.Fatal(err)
	}
	// Eight 4 KiB activations pass through; dropout stashes nothing, so
	// peak live should stay far below the 32 KiB sum.
	if ex.PeakLiveBytes >= 8*4096 {
		t.Fatalf("peak live %d, executor is not releasing dead activations", ex.PeakLiveBytes)
	}
}

// TestInitializerConventions checks KaimingInit's naming dispatch.
func TestInitializerConventions(t *testing.T) {
	g := graph.New()
	g.Param("c.w", tensor.Shape{8, 4, 3, 3})
	g.Param("c.b", tensor.Shape{8})
	g.Param("bn.gamma", tensor.Shape{8})
	g.Param("bn.beta", tensor.Shape{8})
	s := graph.NewParamStore()
	s.InitFromGraph(g, rand.New(rand.NewSource(1)), nn.KaimingInit)
	if s.Lookup("c.w").Value.Sum() == 0 {
		t.Fatal("weights not initialized")
	}
	if s.Lookup("bn.gamma").Value.At(0) != 1 {
		t.Fatal("gamma not one")
	}
	if s.Lookup("bn.beta").Value.Sum() != 0 || s.Lookup("c.b").Value.Sum() != 0 {
		t.Fatal("beta/bias not zero")
	}
	if !s.Lookup("bn.gamma").NoDecay || !s.Lookup("c.b").NoDecay {
		t.Fatal("NoDecay flags not set")
	}
	if s.Lookup("c.w").NoDecay {
		t.Fatal("weights must decay")
	}
}
