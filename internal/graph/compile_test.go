package graph_test

import (
	"fmt"
	"math/rand"
	"testing"

	"splitcnn/internal/graph"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
)

// buildCompileNet is the deterministic workhorse net for the compile
// tests: conv+bias with both Winograd (3x3/1) and im2col (5x5) paths,
// batch norm, in-place-fusable ReLUs, pooling, dropout, flatten, and a
// dual loss+logits output exactly like train.Evaluate's topology.
// training selects the mode the modal ops are built in.
func buildCompileNet(batch int, training bool) (*graph.Graph, *graph.ParamStore) {
	g := graph.New()
	x := g.Input("image", tensor.Shape{batch, 3, 16, 16})
	labels := g.Input("labels", tensor.Shape{batch})
	w1 := g.Param("c1.w", tensor.Shape{8, 3, 3, 3})
	b1 := g.Param("c1.b", tensor.Shape{8})
	c1 := g.Add("c1", nn.NewConv(3, 1, 1), x, w1, b1)
	r1 := g.Add("c1.relu", nn.ReLU{}, c1)
	bn := nn.NewBatchNorm(nn.NewBNState("c1.bn", 8))
	bn.Training = training
	gamma := g.Param("c1.bn.gamma", tensor.Shape{8})
	beta := g.Param("c1.bn.beta", tensor.Shape{8})
	n1 := g.Add("c1.bn", bn, r1, gamma, beta)
	p1 := g.Add("pool1", nn.NewMaxPool(2, 2), n1)
	w2 := g.Param("c2.w", tensor.Shape{12, 8, 5, 5})
	b2 := g.Param("c2.b", tensor.Shape{12})
	c2 := g.Add("c2", &nn.Conv{Params: tensor.ConvParams{KH: 5, KW: 5, SH: 1, SW: 1, Pad: tensor.Symmetric(2)}, HasBias: true}, p1, w2, b2)
	r2 := g.Add("c2.relu", nn.ReLU{}, c2)
	do := &nn.Dropout{P: 0.4, Training: training, Rng: rand.New(rand.NewSource(77))}
	d1 := g.Add("drop1", do, r2)
	gap := g.Add("gap", nn.GlobalAvgPool{}, d1)
	fl := g.Add("flatten", nn.Flatten{}, gap)
	wf := g.Param("fc.w", tensor.Shape{7, 12})
	bf := g.Param("fc.b", tensor.Shape{7})
	logits := g.Add("logits", nn.Linear{}, fl, wf, bf)
	loss := g.Add("loss", nn.SoftmaxCrossEntropy{}, logits, labels)
	g.SetOutput(loss)
	g.Outputs = append(g.Outputs, logits)

	store := graph.NewParamStore()
	store.InitFromGraph(g, rand.New(rand.NewSource(11)), nn.KaimingInit)
	return g, store
}

func compileFeeds(t *testing.T, g *graph.Graph, seed int64) graph.Feeds {
	t.Helper()
	in := g.FindNode("image")
	lb := g.FindNode("labels")
	if in == nil || lb == nil {
		t.Fatal("net is missing image/labels inputs")
	}
	x := tensor.New(in.Shape...)
	rng := rand.New(rand.NewSource(seed))
	for i, d := 0, x.Data(); i < len(d); i++ {
		d[i] = rng.Float32()*2 - 1
	}
	y := tensor.New(lb.Shape...)
	classes := g.Outputs[len(g.Outputs)-1].Shape[1]
	for i := range y.Data() {
		y.Data()[i] = float32(rng.Intn(classes))
	}
	return graph.Feeds{"image": x, "labels": y}
}

// assertBitIdentical compares two output lists element-exactly.
func assertBitIdentical(t *testing.T, label string, want, got []*tensor.Tensor) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d outputs vs %d", label, len(got), len(want))
	}
	for oi := range want {
		wd, gd := want[oi].Data(), got[oi].Data()
		if len(wd) != len(gd) {
			t.Fatalf("%s: output %d has %d elems, want %d", label, oi, len(gd), len(wd))
		}
		for i := range wd {
			if wd[i] != gd[i] {
				t.Fatalf("%s: output %d elem %d = %x, want bit-identical %x",
					label, oi, i, gd[i], wd[i])
			}
		}
	}
}

// TestCompiledMatchesInterpreted pins the core contract on the
// deterministic net: the compiled program's outputs are bit-identical
// to the interpreted executor's, in both modes, with and without the
// rewrites, and the rewrites actually fire (fused conv+bias+ReLU,
// elided dropout, viewed flatten).
func TestCompiledMatchesInterpreted(t *testing.T) {
	for _, training := range []bool{false, true} {
		for _, noRewrite := range []bool{false, true} {
			name := fmt.Sprintf("training=%v/noRewrite=%v", training, noRewrite)
			// Independent graphs so the interpreted and compiled dropout
			// ops hold identically seeded private RNG streams.
			gi, store := buildCompileNet(3, training)
			gc, _ := buildCompileNet(3, training)

			ex, err := graph.NewExecutor(gi, store)
			if err != nil {
				t.Fatal(err)
			}
			ex.UseArena(tensor.NewArena())
			ref, err := ex.Forward(compileFeeds(t, gi, 5))
			if err != nil {
				t.Fatalf("%s: interpreted: %v", name, err)
			}

			prog, err := graph.Compile(gc, store, graph.CompileOptions{NoRewrite: noRewrite})
			if err != nil {
				t.Fatalf("%s: compile: %v", name, err)
			}
			outs, err := prog.Forward(compileFeeds(t, gc, 5))
			if err != nil {
				t.Fatalf("%s: compiled: %v", name, err)
			}
			assertBitIdentical(t, name, ref, outs)

			st := prog.Stats()
			if st.SlabBytes != prog.SlabBytes() {
				t.Fatalf("%s: stats slab %d != SlabBytes %d", name, st.SlabBytes, prog.SlabBytes())
			}
			if st.SlabBytes > st.NoReuseBytes {
				t.Fatalf("%s: slab %d exceeds no-reuse baseline %d", name, st.SlabBytes, st.NoReuseBytes)
			}
			if noRewrite {
				if st.Fused != 0 || st.Elided != 0 || st.Reshaped != 0 {
					t.Fatalf("%s: rewrites fired despite NoRewrite: %+v", name, st)
				}
				if st.Steps != st.Ops {
					t.Fatalf("%s: %d steps for %d ops without rewrites", name, st.Steps, st.Ops)
				}
				continue
			}
			// Both ReLUs fold into their conv+bias producers in every mode.
			if st.Fused < 2 {
				t.Fatalf("%s: want >= 2 fused conv+bias+ReLU passes, got %d", name, st.Fused)
			}
			if st.Reshaped != 1 {
				t.Fatalf("%s: want flatten viewed, stats %+v", name, st)
			}
			if training {
				if st.Elided != 0 {
					t.Fatalf("%s: training dropout must not be elided: %+v", name, st)
				}
			} else {
				if st.Elided != 1 {
					t.Fatalf("%s: want eval dropout elided, stats %+v", name, st)
				}
				// Eval-mode BN folds in place as well.
				if st.Fused < 3 {
					t.Fatalf("%s: want eval BN folded, stats %+v", name, st)
				}
			}
			if st.Steps != st.Ops-st.Fused-st.Elided-st.Reshaped {
				t.Fatalf("%s: step arithmetic off: %+v", name, st)
			}
		}
	}
}

// TestCompiledRepeatStability: eval-mode compiled forwards are
// bit-stable across calls (the slab and scratch are fully rewritten).
func TestCompiledRepeatStability(t *testing.T) {
	g, store := buildCompileNet(2, false)
	prog, err := graph.Compile(g, store, graph.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	feeds := compileFeeds(t, g, 8)
	first, err := prog.Forward(feeds)
	if err != nil {
		t.Fatal(err)
	}
	var ref [][]float32
	for _, o := range first {
		ref = append(ref, append([]float32(nil), o.Data()...))
	}
	for c := 1; c < 5; c++ {
		outs, err := prog.Forward(feeds)
		if err != nil {
			t.Fatalf("cycle %d: %v", c, err)
		}
		for oi, o := range outs {
			for i, v := range o.Data() {
				if v != ref[oi][i] {
					t.Fatalf("cycle %d: output %d elem %d drifted: %v != %v", c, oi, i, v, ref[oi][i])
				}
			}
		}
	}
}

// vetoReLU runs exactly like ReLU but reports InPlaceEligible false:
// the compiler must honor the veto and never alias it onto its
// producer's storage, even though the InplaceOp implementation (from
// the embedded ReLU) would permit the fold.
type vetoReLU struct{ nn.ReLU }

func (vetoReLU) InPlaceEligible() bool { return false }

// TestInPlaceEligibleVeto pins that in-place aliasing only fires when
// InPlaceEligible holds.
func TestInPlaceEligibleVeto(t *testing.T) {
	build := func(veto bool) (*graph.Graph, *graph.ParamStore) {
		g := graph.New()
		x := g.Input("image", tensor.Shape{2, 3, 8, 8})
		w := g.Param("c.w", tensor.Shape{4, 3, 3, 3})
		b := g.Param("c.b", tensor.Shape{4})
		c := g.Add("c", nn.NewConv(3, 1, 1), x, w, b)
		var op graph.Op = nn.ReLU{}
		if veto {
			op = vetoReLU{}
		}
		r := g.Add("r", op, c)
		g.SetOutput(r)
		store := graph.NewParamStore()
		store.InitFromGraph(g, rand.New(rand.NewSource(2)), nn.KaimingInit)
		return g, store
	}
	find := func(entries []graph.PlanEntry, name string) graph.PlanEntry {
		for _, e := range entries {
			if e.Name == name {
				return e
			}
		}
		t.Fatalf("no plan entry for %q", name)
		return graph.PlanEntry{}
	}

	g, store := build(false)
	prog, err := graph.Compile(g, store, graph.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if e := find(prog.PlanEntries(), "r"); e.FusedInto != "c" || !e.Alias {
		t.Fatalf("plain ReLU should fuse into conv, got %+v", e)
	}

	gv, storev := build(true)
	progv, err := graph.Compile(gv, storev, graph.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if e := find(progv.PlanEntries(), "r"); e.FusedInto != "" || e.Alias {
		t.Fatalf("vetoed ReLU must not alias, got %+v", e)
	}
	// The veto changes placement, never values.
	feeds := graph.Feeds{"image": tensor.New(2, 3, 8, 8)}
	feeds["image"].Fill(0.5)
	a, err := prog.Forward(feeds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := progv.Forward(feeds)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "veto", a, b)
}

// TestCompiledForwardZeroAlloc: a warmed compiled forward performs zero
// heap allocations — activations live in the pre-planned slab, kernel
// scratch hits the warm arena pool, and the BN family's precast
// statistics are cached.
func TestCompiledForwardZeroAlloc(t *testing.T) {
	prev := tensor.SetParallelism(1)
	defer tensor.SetParallelism(prev)

	g, store := buildCompileNet(2, false) // eval mode
	prog, err := graph.Compile(g, store, graph.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	feeds := compileFeeds(t, g, 13)
	for i := 0; i < 5; i++ {
		if _, err := prog.Forward(feeds); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := prog.Forward(feeds); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warmed compiled forward allocates %.1f objects per run, want 0", allocs)
	}
}

// randomCompiledNet builds a random CNN with residual branches, modal
// ops, and a dual loss+logits output. It is a pure function of (seed,
// training): building twice yields graphs with identical topology,
// parameter names, and identically seeded dropout RNG streams.
func randomCompiledNet(seed int64, training bool) (*graph.Graph, *graph.ParamStore) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()
	batch := 1 + rng.Intn(4)
	c := 1 + rng.Intn(6)
	h := 8 + 4*rng.Intn(3)
	cur := g.Input("image", tensor.Shape{batch, c, h, h})
	labels := g.Input("labels", tensor.Shape{batch})
	var res *graph.Node
	layers := 3 + rng.Intn(9)
	for i := 0; i < layers; i++ {
		name := fmt.Sprintf("l%d", i)
		switch rng.Intn(9) {
		case 0, 1: // conv (+bias): k=3 exercises Winograd, k=1/5 im2col
			out := 4 + rng.Intn(10)
			k := []int{1, 3, 5}[rng.Intn(3)]
			w := g.Param(name+".w", tensor.Shape{out, cur.Shape.C(), k, k})
			b := g.Param(name+".b", tensor.Shape{out})
			cur = g.Add(name, nn.NewConv(k, 1, k/2), cur, w, b)
		case 2:
			if cur.Shape.H() >= 4 {
				cur = g.Add(name, nn.NewMaxPool(2, 2), cur)
			} else {
				cur = g.Add(name, nn.ReLU{}, cur)
			}
		case 3:
			ch := cur.Shape.C()
			bn := nn.NewBatchNorm(nn.NewBNState(name, ch))
			bn.Training = training
			gamma := g.Param(name+".gamma", tensor.Shape{ch})
			beta := g.Param(name+".beta", tensor.Shape{ch})
			cur = g.Add(name, bn, cur, gamma, beta)
		case 4:
			ch := cur.Shape.C()
			bnr := nn.NewBNReLU(nn.NewBNState(name, ch))
			bnr.Training = training
			gamma := g.Param(name+".gamma", tensor.Shape{ch})
			beta := g.Param(name+".beta", tensor.Shape{ch})
			cur = g.Add(name, bnr, cur, gamma, beta)
		case 5:
			cur = g.Add(name, nn.ReLU{}, cur)
		case 6:
			op := &nn.Dropout{P: 0.3, Training: training, Rng: rand.New(rand.NewSource(int64(9000 + i)))}
			cur = g.Add(name, op, cur)
		case 7: // residual merge when a shape-compatible branch exists
			if res != nil && res != cur && res.Shape.Equal(cur.Shape) {
				cur = g.Add(name, &nn.Add{N: 2}, cur, res)
			} else {
				cur = g.Add(name, nn.ReLU{}, cur)
			}
		case 8:
			if cur.Shape.H() >= 4 {
				cur = g.Add(name, &nn.AvgPool{Params: tensor.ConvParams{KH: 2, KW: 2, SH: 2, SW: 2}}, cur)
			} else {
				cur = g.Add(name, nn.ReLU{}, cur)
			}
		}
		if rng.Intn(3) == 0 {
			res = cur
		}
	}
	flat := g.Add("flat", nn.Flatten{}, cur)
	classes := 2 + rng.Intn(8)
	w := g.Param("fc.w", tensor.Shape{classes, flat.Shape[1]})
	b := g.Param("fc.b", tensor.Shape{classes})
	fc := g.Add("fc", nn.Linear{}, flat, w, b)
	loss := g.Add("loss", nn.SoftmaxCrossEntropy{}, fc, labels)
	g.SetOutput(loss)
	g.Outputs = append(g.Outputs, fc)

	store := graph.NewParamStore()
	store.InitFromGraph(g, rand.New(rand.NewSource(seed+1)), nn.KaimingInit)
	return g, store
}

// checkPlanInvariants verifies the static memory plan's soundness for
// one compiled program:
//
//  1. no two simultaneously-live storages overlap in the slab;
//  2. the layout's peak equals SlabBytes (the plotted peak IS the
//     mapped slab);
//  3. aliasing only arises from a legal rewrite — in-place fusion gated
//     on CanRunInplace and the InPlaceEligible veto, no-op elision, or
//     reshape views.
func checkPlanInvariants(t *testing.T, g *graph.Graph, prog *graph.CompiledProgram) {
	t.Helper()
	entries := prog.PlanEntries()
	type extent struct {
		off, bytes int64
		start, end int
	}
	storages := map[int]*extent{}
	for _, e := range entries {
		if e.Storage < 0 {
			continue
		}
		if s, ok := storages[e.Storage]; ok {
			if s.off != e.Offset || s.start != e.Start || s.end != e.End {
				t.Fatalf("storage %d: members disagree on extent: %+v vs %+v", e.Storage, s, e)
			}
			if e.Bytes > s.bytes {
				s.bytes = e.Bytes
			}
		} else {
			storages[e.Storage] = &extent{e.Offset, e.Bytes, e.Start, e.End}
		}
	}
	ids := make([]int, 0, len(storages))
	for id := range storages {
		ids = append(ids, id)
	}
	var peak int64
	for _, id := range ids {
		s := storages[id]
		if s.off+s.bytes > peak {
			peak = s.off + s.bytes
		}
		for _, id2 := range ids {
			if id2 <= id {
				continue
			}
			o := storages[id2]
			livesOverlap := s.start <= o.end && o.start <= s.end
			bytesOverlap := s.off < o.off+o.bytes && o.off < s.off+s.bytes
			if livesOverlap && bytesOverlap {
				t.Fatalf("storages %d and %d are simultaneously live and share bytes: %+v / %+v", id, id2, s, o)
			}
		}
	}
	if len(ids) > 0 && peak != prog.SlabBytes() {
		t.Fatalf("layout peak %d != slab size %d", peak, prog.SlabBytes())
	}

	for _, e := range entries {
		if e.FusedInto == "" && !e.Alias {
			continue
		}
		n := g.FindNode(e.Name)
		if n == nil {
			t.Fatalf("plan entry %q has no graph node", e.Name)
		}
		if e.FusedInto != "" {
			ip, ok := n.Op.(graph.InplaceOp)
			if !ok || !ip.CanRunInplace() {
				t.Fatalf("%q fused in place but op cannot run in place", e.Name)
			}
			if el, ok := n.Op.(interface{ InPlaceEligible() bool }); ok && !el.InPlaceEligible() {
				t.Fatalf("%q fused in place despite InPlaceEligible veto", e.Name)
			}
			continue
		}
		noop, isNoop := n.Op.(graph.NoopOp)
		resh, isResh := n.Op.(graph.ReshapeOp)
		if !(isNoop && noop.IsNoop()) && !(isResh && resh.IsReshape()) {
			t.Fatalf("%q aliases storage %d without a legal rewrite (op %s)", e.Name, e.Storage, n.Op.Kind())
		}
	}
}

// runCompiledSeed builds a random net twice, checks plan invariants,
// and asserts compiled outputs are bit-identical to the interpreted
// executor's.
func runCompiledSeed(t *testing.T, seed int64, training bool) {
	t.Helper()
	gi, store := randomCompiledNet(seed, training)
	gc, _ := randomCompiledNet(seed, training)

	ex, err := graph.NewExecutor(gi, store)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	ex.UseArena(tensor.NewArena())
	feedsI := compileFeeds(t, gi, seed*31+7)
	ref, err := ex.Forward(feedsI)
	if err != nil {
		t.Fatalf("seed %d: interpreted: %v", seed, err)
	}

	prog, err := graph.Compile(gc, store, graph.CompileOptions{})
	if err != nil {
		t.Fatalf("seed %d: compile: %v", seed, err)
	}
	checkPlanInvariants(t, gc, prog)
	outs, err := prog.Forward(compileFeeds(t, gc, seed*31+7))
	if err != nil {
		t.Fatalf("seed %d: compiled: %v", seed, err)
	}
	assertBitIdentical(t, fmt.Sprintf("seed %d training=%v", seed, training), ref, outs)
}

// TestCompiledPlanInvariantsSweep runs the invariant + bit-identity
// check over many random topologies in both modes.
func TestCompiledPlanInvariantsSweep(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		runCompiledSeed(t, seed, false)
		runCompiledSeed(t, seed, true)
	}
}

// FuzzCompiledPlan fuzzes random DAGs through Compile, asserting the
// static plan never aliases two simultaneously-live buffers, the peak
// offset equals the slab size, in-place aliasing respects the
// InPlaceEligible gate, and the outputs stay bit-identical to the
// interpreted executor (mirrors hmms's pipeline fuzz).
func FuzzCompiledPlan(f *testing.F) {
	for seed := int64(0); seed < 12; seed++ {
		f.Add(seed, seed%2 == 0)
	}
	f.Fuzz(func(t *testing.T, seed int64, training bool) {
		runCompiledSeed(t, seed, training)
	})
}
