package graph_test

import (
	"testing"

	"splitcnn/internal/graph"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
)

// TestSharedAddendGradientNotCorrupted: two summations sharing an input
// must not cross-contaminate gradients through the aliased error terms
// Add.Backward returns. Topology:
//
//	y1 = add1(x, w);  y2 = add2(x, v);  out = add3(y1', y2') ...
//
// simplified: loss-like sum over relu(add1) and relu(add2). The gradient
// of v must be exactly d/dv, untouched by the accumulation into x.
func TestSharedAddendGradientNotCorrupted(t *testing.T) {
	// d out/d v == 1, d out/d x == 3 (2 via a1's doubled path + 1 via
	// a2), d out/d w == 2. Without the executor's alias guard, the
	// accumulation into a1's gradient mutates the shared seed tensor and
	// v's gradient doubles.
	g2 := graph.New()
	store := graph.NewParamStore()
	px := g2.Param("x", tensor.Shape{1, 4})
	pw := g2.Param("w", tensor.Shape{1, 4})
	pv := g2.Param("v", tensor.Shape{1, 4})
	b1 := g2.Add("a1", &nn.Add{N: 2}, px, pw)
	b2 := g2.Add("a2", &nn.Add{N: 2}, px, pv)
	both2 := g2.Add("both", &nn.Add{N: 2}, b1, b1)
	out2 := g2.Add("out", &nn.Add{N: 2}, both2, b2)
	g2.SetOutput(out2)
	store.InitFromGraph(g2, nil, nil)
	ex2, err := graph.NewExecutor(g2, store)
	if err != nil {
		t.Fatal(err)
	}
	store.ZeroGrads()
	if _, err := ex2.Forward(graph.Feeds{}); err != nil {
		t.Fatal(err)
	}
	if err := ex2.Backward(); err != nil {
		t.Fatal(err)
	}
	wantGrad := map[string]float32{"x": 3, "w": 2, "v": 1}
	for name, want := range wantGrad {
		got := store.Lookup(name).Grad
		for i, gv := range got.Data() {
			if gv != want {
				t.Fatalf("d out/d %s[%d] = %v, want %v (aliased error terms corrupted a sibling)", name, i, gv, want)
			}
		}
	}
}
