package graph

import (
	"fmt"
	"time"

	"splitcnn/internal/tensor"
)

// OpEvent describes one executed operation, delivered to an Executor's
// Hook: what ran, when (seconds relative to HookBase), for how long,
// and how many output bytes it produced. It is the measured-CPU
// counterpart of a simulated kernel span, which is what makes real and
// simulated timelines diffable in the same trace viewer.
type OpEvent struct {
	Name string
	Kind string
	// Backward marks gradient-phase execution; trace consumers append
	// ".bwd" to match the serialized program's op naming.
	Backward bool
	// Start and Dur are in seconds; Start is relative to HookBase.
	Start, Dur float64
	// OutputBytes is the size of the produced tensor (forward) or the
	// summed size of produced input gradients (backward).
	OutputBytes int64
	// Output references the op's primary produced tensor — the forward
	// output, or the first produced input gradient in backward — so
	// hooks can health-scan fresh values (the trainer's NaN/Inf guard).
	// It is only valid for the duration of the hook call: with an arena
	// installed the storage is recycled afterwards.
	Output *tensor.Tensor
}

// OpHook receives per-op execution events.
type OpHook func(OpEvent)

// ArenaForwardOp is an optional extension of Op: operations that can
// draw their output and scratch from a tensor.Arena. ForwardArena with
// a nil arena must behave exactly like Forward (ops typically implement
// Forward by delegating). The returned stash, if it holds a tensor,
// should be a bare *tensor.Tensor — pointers cross the `any` boundary
// without heap-allocating a box, unlike shapes or index slices.
type ArenaForwardOp interface {
	Op
	ForwardArena(a *tensor.Arena, in []*tensor.Tensor) (out *tensor.Tensor, stash any)
}

// ArenaBackwardOp is the backward-pass counterpart. The op writes the
// per-input gradients into gin (len(gin) == number of inputs, entries
// pre-nil'd; nil means "no gradient") instead of returning a fresh
// slice, and draws gradient tensors from the arena. inShapes carries
// every input's static shape — including inputs the executor released —
// so shape-only adjoints (flatten, average pooling) need no stash at
// all. The op owns its stash: if Forward stashed an arena tensor,
// BackwardArena must Put it back. Gradients written to gin must be
// distinct tensors (or aliases of gradOut, which the executor copies
// before reuse); two gin entries must not alias each other otherwise.
type ArenaBackwardOp interface {
	Op
	BackwardArena(a *tensor.Arena, gradOut *tensor.Tensor, in []*tensor.Tensor, inShapes []tensor.Shape, out *tensor.Tensor, stash any, gin []*tensor.Tensor)
}

// Executor runs real forward/backward arithmetic for a graph on the CPU.
// It honors the same liveness discipline the memory planner assumes:
// after the forward pass, activations that no backward computation needs
// (per the ops' stash declarations) are released immediately, and during
// the backward pass stashed activations are released as soon as their
// consumer's gradient has been computed.
//
// With UseArena, "released" additionally means "returned to the arena":
// every activation, gradient, and stash buffer cycles through one warm
// pool, so a steady-state training step performs zero heap allocations —
// the host-side mirror of the paper's §4 plan-and-reuse device pool.
type Executor struct {
	g     *Graph
	store *ParamStore
	topo  []*Node
	cons  [][]*Node

	vals    []*tensor.Tensor // forward values per node ID
	stashes []any
	// remaining counts the not-yet-executed forward consumers of each
	// node during the current Forward pass.
	remaining []int
	// PeakLiveBytes records the maximum simultaneously-live activation
	// bytes observed during the last Run, a CPU-side analogue of device
	// memory pressure used by tests.
	PeakLiveBytes int64
	liveBytes     int64

	// arena, when set, supplies all activation/gradient/stash storage.
	arena *tensor.Arena
	// Per-node caches built once so the hot loops allocate nothing:
	// arena-capable op interfaces, reusable input/gradient slices, and
	// the static input shapes handed to BackwardArena.
	fwdA     []ArenaForwardOp
	bwdA     []ArenaBackwardOp
	inbufs   [][]*tensor.Tensor
	ginbufs  [][]*tensor.Tensor
	inShapes [][]tensor.Shape
	grads    []*tensor.Tensor
	outsBuf  []*tensor.Tensor
	isOutput []bool
	// extern marks node values owned by the caller (ForwardFrom
	// overrides): released and recycled by clearing the slot only,
	// never by returning the tensor to the arena.
	extern []bool
	// ovr caches the reachability analysis of the last ForwardFrom
	// override set (override.go).
	ovr *overrideState
	// retired holds output tensors whose arena reclamation is deferred
	// to the next Forward: the caller reads them after Backward returns.
	retired []*tensor.Tensor

	// Hook, when non-nil, receives one OpEvent per executed op in both
	// passes. HookBase anchors event timestamps; set it once per
	// training run so the spans of successive per-step executors land
	// on one continuous timeline. A zero HookBase is initialized to the
	// executor's first hooked op.
	Hook     OpHook
	HookBase time.Time
}

// NewExecutor prepares an executor for g resolving parameters in store.
func NewExecutor(g *Graph, store *ParamStore) (*Executor, error) {
	topo, err := g.Topo()
	if err != nil {
		return nil, err
	}
	for _, n := range g.Params() {
		if store.Lookup(n.Name) == nil {
			return nil, fmt.Errorf("executor: parameter %q not in store (call InitFromGraph first)", n.Name)
		}
	}
	e := &Executor{
		g:         g,
		store:     store,
		topo:      topo,
		cons:      g.Consumers(),
		vals:      make([]*tensor.Tensor, len(g.Nodes)),
		stashes:   make([]any, len(g.Nodes)),
		remaining: make([]int, len(g.Nodes)),
		fwdA:      make([]ArenaForwardOp, len(g.Nodes)),
		bwdA:      make([]ArenaBackwardOp, len(g.Nodes)),
		inbufs:    make([][]*tensor.Tensor, len(g.Nodes)),
		ginbufs:   make([][]*tensor.Tensor, len(g.Nodes)),
		inShapes:  make([][]tensor.Shape, len(g.Nodes)),
		grads:     make([]*tensor.Tensor, len(g.Nodes)),
		outsBuf:   make([]*tensor.Tensor, len(g.Outputs)),
		isOutput:  make([]bool, len(g.Nodes)),
		extern:    make([]bool, len(g.Nodes)),
	}
	for _, n := range g.Outputs {
		e.isOutput[n.ID] = true
	}
	for _, n := range topo {
		if n.Kind != KindOp {
			continue
		}
		e.inbufs[n.ID] = make([]*tensor.Tensor, len(n.Inputs))
		e.ginbufs[n.ID] = make([]*tensor.Tensor, len(n.Inputs))
		shapes := make([]tensor.Shape, len(n.Inputs))
		for i, src := range n.Inputs {
			shapes[i] = src.Shape
		}
		e.inShapes[n.ID] = shapes
		if fa, ok := n.Op.(ArenaForwardOp); ok {
			e.fwdA[n.ID] = fa
		}
		if ba, ok := n.Op.(ArenaBackwardOp); ok {
			e.bwdA[n.ID] = ba
		}
	}
	return e, nil
}

// UseArena makes the executor draw all activation, gradient, and stash
// storage from a (nil reverts to plain allocation). The arena should be
// private to this executor or, at minimum, to one goroutine's executors
// — the data-parallel trainer gives each worker its own.
//
// With an arena installed, the tensors returned by Forward are only
// valid until the next Forward call, which reclaims them.
func (e *Executor) UseArena(a *tensor.Arena) { e.arena = a }

// Arena returns the arena installed by UseArena (nil if none).
func (e *Executor) Arena() *tensor.Arena { return e.arena }

// Feeds maps input-node names to their tensors for one step.
type Feeds map[string]*tensor.Tensor

// Recycle returns every tensor the executor still holds from the last
// step — leftover activations, stashes, and the deferred output tensors
// — to the arena. Forward calls it implicitly; call it directly only
// when discarding an executor whose arena outlives it (the stochastic
// splitter builds a fresh graph every minibatch). The previous step's
// outputs become invalid.
func (e *Executor) Recycle() { e.recycle() }

// recycle returns the previous step's leftover activations, stashes,
// and deferred output tensors to the arena, so this step's requests hit
// the warm pool instead of the heap.
func (e *Executor) recycle() {
	for i, t := range e.retired {
		e.arena.Put(t)
		e.retired[i] = nil
	}
	e.retired = e.retired[:0]
	for _, n := range e.topo {
		if n.Kind != KindOp {
			continue
		}
		if v := e.vals[n.ID]; v != nil {
			if !e.extern[n.ID] {
				e.arena.Put(v)
			}
			e.vals[n.ID] = nil
		}
		e.extern[n.ID] = false
		if st, ok := e.stashes[n.ID].(*tensor.Tensor); ok {
			e.arena.Put(st)
		}
		e.stashes[n.ID] = nil
	}
}

// Forward runs the forward pass and returns the value of each graph
// output. Activation tensors not needed by the backward pass are
// released before Forward returns. When an arena is installed, the
// returned tensors are valid until the next Forward call.
func (e *Executor) Forward(feeds Feeds) ([]*tensor.Tensor, error) {
	return e.forward(feeds, nil, nil)
}

// forward is the shared forward core. over, when non-nil, maps node IDs
// to caller-supplied values that replace the node's computation; need,
// when non-nil, masks which nodes must execute at all (both come from
// ForwardFrom's reachability analysis and are nil for a plain Forward).
func (e *Executor) forward(feeds Feeds, over []*tensor.Tensor, need []bool) ([]*tensor.Tensor, error) {
	e.recycle()
	e.liveBytes, e.PeakLiveBytes = 0, 0
	for id := range e.remaining {
		e.remaining[id] = len(e.cons[id])
	}
	if need != nil {
		// Only consumers that will actually execute count toward a
		// value's liveness: skipped and overridden ops never read their
		// inputs.
		for id := range e.remaining {
			r := 0
			for _, c := range e.cons[id] {
				if need[c.ID] && over[c.ID] == nil {
					r++
				}
			}
			e.remaining[id] = r
		}
	}
	for _, n := range e.topo {
		if need != nil && !need[n.ID] {
			continue
		}
		switch n.Kind {
		case KindInput:
			t, ok := feeds[n.Name]
			if !ok {
				return nil, fmt.Errorf("executor: no feed for input %q", n.Name)
			}
			if !t.Shape().Equal(n.Shape) {
				return nil, fmt.Errorf("executor: feed %q has shape %v, node wants %v", n.Name, t.Shape(), n.Shape)
			}
			e.vals[n.ID] = t
		case KindParam:
			e.vals[n.ID] = e.store.Lookup(n.Name).Value
		case KindOp:
			if over != nil && over[n.ID] != nil {
				// Caller-supplied value: adopt without executing and
				// mark it external so no release path recycles it.
				e.vals[n.ID] = over[n.ID]
				e.extern[n.ID] = true
				e.account(over[n.ID].Bytes())
				continue
			}
			in := e.inbufs[n.ID]
			for i, src := range n.Inputs {
				in[i] = e.vals[src.ID]
				if in[i] == nil {
					return nil, fmt.Errorf("executor: %s reads released value of %s", n, src)
				}
			}
			opStart := e.hookStart()
			var out *tensor.Tensor
			var stash any
			if opLabelsOn() {
				labelOp(n.Name, func() { out, stash = e.runOp(n, in) })
			} else {
				out, stash = e.runOp(n, in)
			}
			if e.Hook != nil {
				e.Hook(OpEvent{
					Name: n.Name, Kind: n.Op.Kind(),
					Start: opStart, Dur: e.hookStart() - opStart,
					OutputBytes: out.Bytes(),
					Output:      out,
				})
			}
			if !out.Shape().Equal(n.Shape) {
				return nil, fmt.Errorf("executor: %s produced %v, declared %v", n, out.Shape(), n.Shape)
			}
			e.vals[n.ID] = out
			e.stashes[n.ID] = stash
			e.account(out.Bytes())
			// Eagerly release inputs whose last forward consumer just
			// ran and that no backward computation will read — the same
			// liveness discipline the static memory planner assumes.
			for _, src := range n.Inputs {
				e.remaining[src.ID]--
				if e.remaining[src.ID] == 0 && !e.keepForBackward(src) {
					e.release(src)
				}
			}
		}
	}
	for _, n := range e.topo {
		if n.Kind == KindOp && e.remaining[n.ID] == 0 && !e.keepForBackward(n) {
			e.release(n) // dead ends with no forward consumers
		}
	}
	outs := e.outsBuf
	for i, n := range e.g.Outputs {
		outs[i] = e.vals[n.ID]
		if outs[i] == nil {
			// An output that no consumer stashes was released; recompute
			// policy is unnecessary here because outputs are always kept.
			return nil, fmt.Errorf("executor: output %s was released", n)
		}
	}
	return outs, nil
}

// runOp invokes node n's forward kernel (arena-aware when available).
func (e *Executor) runOp(n *Node, in []*tensor.Tensor) (*tensor.Tensor, any) {
	if fa := e.fwdA[n.ID]; fa != nil {
		return fa.ForwardArena(e.arena, in)
	}
	return n.Op.Forward(in)
}

// keepForBackward reports whether node n's forward value is read by any
// backward computation: by its own op (NeedsOutput) or as a stashed
// input of a consumer, or is a graph output.
func (e *Executor) keepForBackward(n *Node) bool {
	if e.isOutput[n.ID] {
		return true
	}
	if n.Kind == KindOp && n.Op.NeedsOutput() {
		return true
	}
	for _, c := range e.cons[n.ID] {
		for i, in := range c.Inputs {
			if in == n && c.Op.NeedsInput(i) {
				return true
			}
		}
	}
	return false
}

// hookStart returns the current hook-relative timestamp in seconds,
// lazily anchoring HookBase. It returns 0 when no hook is installed.
func (e *Executor) hookStart() float64 {
	if e.Hook == nil {
		return 0
	}
	if e.HookBase.IsZero() {
		e.HookBase = time.Now()
	}
	return time.Since(e.HookBase).Seconds()
}

func (e *Executor) release(n *Node) {
	if e.vals[n.ID] != nil && n.Kind == KindOp {
		e.liveBytes -= e.vals[n.ID].Bytes()
		if e.extern[n.ID] {
			// Caller-owned override value: drop the reference only; the
			// recycle sweep clears the extern mark.
			e.vals[n.ID] = nil
			return
		}
		if e.isOutput[n.ID] {
			// The caller may still read this output tensor after
			// Backward returns; reclaim it at the next Forward instead.
			// Never retire the same tensor twice: an output that is also
			// consumed by a kept-for-backward node crosses this path from
			// both Forward's dead-end sweep and Backward's per-node
			// release, and a duplicate entry would Put the buffer twice
			// at the next Forward — poisoning it if the arena re-vended
			// it between the two Puts. The list is at most a few entries
			// (one per graph output), so the scan is free.
			t := e.vals[n.ID]
			dup := false
			for _, r := range e.retired {
				if r == t {
					dup = true
					break
				}
			}
			if !dup {
				e.retired = append(e.retired, t)
			}
		} else {
			e.arena.Put(e.vals[n.ID])
		}
		e.vals[n.ID] = nil
	}
}

func (e *Executor) account(b int64) {
	e.liveBytes += b
	if e.liveBytes > e.PeakLiveBytes {
		e.PeakLiveBytes = e.liveBytes
	}
}

// Backward propagates gradients from the graph outputs (seeded with
// ones, i.e. d loss / d loss = 1) into the parameter store's Grad
// accumulators. Forward must have been called first.
func (e *Executor) Backward() error {
	grads := e.grads
	for i := range grads {
		grads[i] = nil
	}
	for _, out := range e.g.Outputs {
		g := e.arena.GetRaw(out.Shape...)
		g.Fill(1)
		grads[out.ID] = g
	}
	for i := len(e.topo) - 1; i >= 0; i-- {
		n := e.topo[i]
		if n.Kind != KindOp {
			continue
		}
		gradOut := grads[n.ID]
		if gradOut == nil {
			continue // node does not influence any output
		}
		in := e.inbufs[n.ID]
		for j, src := range n.Inputs {
			in[j] = nil
			if n.Op.NeedsInput(j) {
				in[j] = e.vals[src.ID]
				if in[j] == nil {
					return fmt.Errorf("executor: backward of %s needs released input %s", n, src)
				}
			}
		}
		var out *tensor.Tensor
		if n.Op.NeedsOutput() {
			out = e.vals[n.ID]
		}
		opStart := e.hookStart()
		var gin []*tensor.Tensor
		if ba := e.bwdA[n.ID]; ba != nil {
			gin = e.ginbufs[n.ID]
			for j := range gin {
				gin[j] = nil
			}
			ba.BackwardArena(e.arena, gradOut, in, e.inShapes[n.ID], out, e.stashes[n.ID], gin)
		} else {
			gin = n.Op.Backward(gradOut, in, out, e.stashes[n.ID])
		}
		if e.Hook != nil {
			var produced int64
			var first *tensor.Tensor
			for _, g := range gin {
				if g != nil {
					if first == nil {
						first = g
					}
					produced += g.Bytes()
				}
			}
			e.Hook(OpEvent{
				Name: n.Name, Kind: n.Op.Kind(), Backward: true,
				Start: opStart, Dur: e.hookStart() - opStart,
				OutputBytes: produced,
				Output:      first,
			})
		}
		if len(gin) != len(n.Inputs) {
			return fmt.Errorf("executor: %s backward returned %d grads for %d inputs", n, len(gin), len(n.Inputs))
		}
		// Summation ops return gradOut itself as each addend's gradient
		// (§4.2's shared error terms). Count the aliases up front: a
		// uniquely-aliased gradOut may be adopted by its consumer, but
		// multiple aliases must be copied — with arena recycling, two
		// grads slots sharing one tensor would otherwise reclaim it
		// while the other still reads it.
		aliases := 0
		for _, g := range gin {
			if g == gradOut {
				aliases++
			}
		}
		adopted := false
		for j, g := range gin {
			if g == nil {
				continue
			}
			src := n.Inputs[j]
			if !g.Shape().Equal(src.Shape) {
				return fmt.Errorf("executor: %s grad %d has shape %v, want %v", n, j, g.Shape(), src.Shape)
			}
			switch src.Kind {
			case KindParam:
				tensor.AXPY(e.store.Lookup(src.Name).Grad, 1, g)
				if g != gradOut {
					e.arena.Put(g)
				}
			default:
				if grads[src.ID] == nil {
					if g == gradOut {
						// Adopting the alias is only safe when this is
						// its sole use and no later backward op will
						// accumulate into it — otherwise the in-place
						// AXPY (or arena reuse) would corrupt the other
						// aliases' still-pending gradients.
						if aliases > 1 || len(e.cons[src.ID]) > 1 {
							c := e.arena.GetRaw(g.Shape()...)
							c.CopyFrom(g)
							g = c
						} else {
							adopted = true
						}
					}
					grads[src.ID] = g
				} else {
					tensor.AXPY(grads[src.ID], 1, g)
					if g != gradOut {
						e.arena.Put(g)
					}
				}
			}
		}
		if !adopted {
			e.arena.Put(gradOut)
		}
		// This node's own gradient and stash are dead now.
		grads[n.ID] = nil
		e.stashes[n.ID] = nil
		e.release(n)
	}
	// Gradients that flowed into non-op leaves (graph inputs) have no
	// consumer: reclaim them, or each step would leak one arena buffer
	// per input and the warmed training loop would allocate forever.
	for i, g := range grads {
		if g != nil {
			e.arena.Put(g)
			grads[i] = nil
		}
	}
	return nil
}

// Value returns the forward value of a node from the last Forward call
// (nil if released). Intended for tests and examples.
func (e *Executor) Value(n *Node) *tensor.Tensor { return e.vals[n.ID] }
