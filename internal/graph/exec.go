package graph

import (
	"fmt"
	"time"

	"splitcnn/internal/tensor"
)

// OpEvent describes one executed operation, delivered to an Executor's
// Hook: what ran, when (seconds relative to HookBase), for how long,
// and how many output bytes it produced. It is the measured-CPU
// counterpart of a simulated kernel span, which is what makes real and
// simulated timelines diffable in the same trace viewer.
type OpEvent struct {
	Name string
	Kind string
	// Backward marks gradient-phase execution; trace consumers append
	// ".bwd" to match the serialized program's op naming.
	Backward bool
	// Start and Dur are in seconds; Start is relative to HookBase.
	Start, Dur float64
	// OutputBytes is the size of the produced tensor (forward) or the
	// summed size of produced input gradients (backward).
	OutputBytes int64
}

// OpHook receives per-op execution events.
type OpHook func(OpEvent)

// Executor runs real forward/backward arithmetic for a graph on the CPU.
// It honors the same liveness discipline the memory planner assumes:
// after the forward pass, activations that no backward computation needs
// (per the ops' stash declarations) are released immediately, and during
// the backward pass stashed activations are released as soon as their
// consumer's gradient has been computed.
type Executor struct {
	g     *Graph
	store *ParamStore
	topo  []*Node
	cons  [][]*Node

	vals    []*tensor.Tensor // forward values per node ID
	stashes []any
	// remaining counts the not-yet-executed forward consumers of each
	// node during the current Forward pass.
	remaining []int
	// PeakLiveBytes records the maximum simultaneously-live activation
	// bytes observed during the last Run, a CPU-side analogue of device
	// memory pressure used by tests.
	PeakLiveBytes int64
	liveBytes     int64

	// Hook, when non-nil, receives one OpEvent per executed op in both
	// passes. HookBase anchors event timestamps; set it once per
	// training run so the spans of successive per-step executors land
	// on one continuous timeline. A zero HookBase is initialized to the
	// executor's first hooked op.
	Hook     OpHook
	HookBase time.Time
}

// NewExecutor prepares an executor for g resolving parameters in store.
func NewExecutor(g *Graph, store *ParamStore) (*Executor, error) {
	topo, err := g.Topo()
	if err != nil {
		return nil, err
	}
	for _, n := range g.Params() {
		if store.Lookup(n.Name) == nil {
			return nil, fmt.Errorf("executor: parameter %q not in store (call InitFromGraph first)", n.Name)
		}
	}
	return &Executor{
		g:         g,
		store:     store,
		topo:      topo,
		cons:      g.Consumers(),
		vals:      make([]*tensor.Tensor, len(g.Nodes)),
		stashes:   make([]any, len(g.Nodes)),
		remaining: make([]int, len(g.Nodes)),
	}, nil
}

// Feeds maps input-node names to their tensors for one step.
type Feeds map[string]*tensor.Tensor

// Forward runs the forward pass and returns the value of each graph
// output. Activation tensors not needed by the backward pass are
// released before Forward returns.
func (e *Executor) Forward(feeds Feeds) ([]*tensor.Tensor, error) {
	e.liveBytes, e.PeakLiveBytes = 0, 0
	for id := range e.remaining {
		e.remaining[id] = len(e.cons[id])
	}
	for _, n := range e.topo {
		switch n.Kind {
		case KindInput:
			t, ok := feeds[n.Name]
			if !ok {
				return nil, fmt.Errorf("executor: no feed for input %q", n.Name)
			}
			if !t.Shape().Equal(n.Shape) {
				return nil, fmt.Errorf("executor: feed %q has shape %v, node wants %v", n.Name, t.Shape(), n.Shape)
			}
			e.vals[n.ID] = t
		case KindParam:
			e.vals[n.ID] = e.store.Lookup(n.Name).Value
		case KindOp:
			in := make([]*tensor.Tensor, len(n.Inputs))
			for i, src := range n.Inputs {
				in[i] = e.vals[src.ID]
				if in[i] == nil {
					return nil, fmt.Errorf("executor: %s reads released value of %s", n, src)
				}
			}
			opStart := e.hookStart()
			out, stash := n.Op.Forward(in)
			if e.Hook != nil {
				e.Hook(OpEvent{
					Name: n.Name, Kind: n.Op.Kind(),
					Start: opStart, Dur: e.hookStart() - opStart,
					OutputBytes: out.Bytes(),
				})
			}
			if !out.Shape().Equal(n.Shape) {
				return nil, fmt.Errorf("executor: %s produced %v, declared %v", n, out.Shape(), n.Shape)
			}
			e.vals[n.ID] = out
			e.stashes[n.ID] = stash
			e.account(out.Bytes())
			// Eagerly release inputs whose last forward consumer just
			// ran and that no backward computation will read — the same
			// liveness discipline the static memory planner assumes.
			for _, src := range n.Inputs {
				e.remaining[src.ID]--
				if e.remaining[src.ID] == 0 && !e.keepForBackward(src) {
					e.release(src)
				}
			}
		}
	}
	for _, n := range e.topo {
		if n.Kind == KindOp && e.remaining[n.ID] == 0 && !e.keepForBackward(n) {
			e.release(n) // dead ends with no forward consumers
		}
	}
	outs := make([]*tensor.Tensor, len(e.g.Outputs))
	for i, n := range e.g.Outputs {
		outs[i] = e.vals[n.ID]
		if outs[i] == nil {
			// An output that no consumer stashes was released; recompute
			// policy is unnecessary here because outputs are always kept.
			return nil, fmt.Errorf("executor: output %s was released", n)
		}
	}
	return outs, nil
}

// keepForBackward reports whether node n's forward value is read by any
// backward computation: by its own op (NeedsOutput) or as a stashed
// input of a consumer, or is a graph output.
func (e *Executor) keepForBackward(n *Node) bool {
	for _, out := range e.g.Outputs {
		if out == n {
			return true
		}
	}
	if n.Kind == KindOp && n.Op.NeedsOutput() {
		return true
	}
	for _, c := range e.cons[n.ID] {
		for i, in := range c.Inputs {
			if in == n && c.Op.NeedsInput(i) {
				return true
			}
		}
	}
	return false
}

// hookStart returns the current hook-relative timestamp in seconds,
// lazily anchoring HookBase. It returns 0 when no hook is installed.
func (e *Executor) hookStart() float64 {
	if e.Hook == nil {
		return 0
	}
	if e.HookBase.IsZero() {
		e.HookBase = time.Now()
	}
	return time.Since(e.HookBase).Seconds()
}

func (e *Executor) release(n *Node) {
	if e.vals[n.ID] != nil && n.Kind == KindOp {
		e.liveBytes -= e.vals[n.ID].Bytes()
		e.vals[n.ID] = nil
	}
}

func (e *Executor) account(b int64) {
	e.liveBytes += b
	if e.liveBytes > e.PeakLiveBytes {
		e.PeakLiveBytes = e.liveBytes
	}
}

// Backward propagates gradients from the graph outputs (seeded with
// ones, i.e. d loss / d loss = 1) into the parameter store's Grad
// accumulators. Forward must have been called first.
func (e *Executor) Backward() error {
	grads := make([]*tensor.Tensor, len(e.g.Nodes))
	for _, out := range e.g.Outputs {
		g := tensor.New(out.Shape...)
		g.Fill(1)
		grads[out.ID] = g
	}
	for i := len(e.topo) - 1; i >= 0; i-- {
		n := e.topo[i]
		if n.Kind != KindOp {
			continue
		}
		gradOut := grads[n.ID]
		if gradOut == nil {
			continue // node does not influence any output
		}
		in := make([]*tensor.Tensor, len(n.Inputs))
		for j, src := range n.Inputs {
			if n.Op.NeedsInput(j) {
				in[j] = e.vals[src.ID]
				if in[j] == nil {
					return fmt.Errorf("executor: backward of %s needs released input %s", n, src)
				}
			}
		}
		var out *tensor.Tensor
		if n.Op.NeedsOutput() {
			out = e.vals[n.ID]
		}
		opStart := e.hookStart()
		gin := n.Op.Backward(gradOut, in, out, e.stashes[n.ID])
		if e.Hook != nil {
			var produced int64
			for _, g := range gin {
				if g != nil {
					produced += g.Bytes()
				}
			}
			e.Hook(OpEvent{
				Name: n.Name, Kind: n.Op.Kind(), Backward: true,
				Start: opStart, Dur: e.hookStart() - opStart,
				OutputBytes: produced,
			})
		}
		if len(gin) != len(n.Inputs) {
			return fmt.Errorf("executor: %s backward returned %d grads for %d inputs", n, len(gin), len(n.Inputs))
		}
		for j, g := range gin {
			if g == nil {
				continue
			}
			src := n.Inputs[j]
			if !g.Shape().Equal(src.Shape) {
				return fmt.Errorf("executor: %s grad %d has shape %v, want %v", n, j, g.Shape(), src.Shape)
			}
			switch src.Kind {
			case KindParam:
				tensor.AXPY(e.store.Lookup(src.Name).Grad, 1, g)
			default:
				if grads[src.ID] == nil {
					// Summation ops return gradOut itself as each
					// addend's gradient (§4.2's shared error terms).
					// Adopting that alias is only safe when no later
					// backward op will accumulate into it — otherwise
					// the in-place AXPY would corrupt the other
					// addends' still-pending (aliased) gradients.
					if g == gradOut && len(e.cons[src.ID]) > 1 {
						g = g.Clone()
					}
					grads[src.ID] = g
				} else {
					tensor.AXPY(grads[src.ID], 1, g)
				}
			}
		}
		// This node's own gradient and stash are dead now.
		grads[n.ID] = nil
		e.stashes[n.ID] = nil
		e.release(n)
	}
	return nil
}

// Value returns the forward value of a node from the last Forward call
// (nil if released). Intended for tests and examples.
func (e *Executor) Value(n *Node) *tensor.Tensor { return e.vals[n.ID] }
