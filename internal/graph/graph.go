// Package graph implements the computation-graph IR at the heart of this
// reproduction: a directed acyclic graph whose nodes are mathematical
// operations and whose edges are producer-consumer tensor flows (§4 of
// the paper). The same graph serves three consumers:
//
//   - the CPU executor (exec.go), which runs real forward/backward
//     arithmetic for the accuracy experiments;
//   - the Split-CNN transformation (internal/core), which rewrites the
//     graph to operate on independent spatial patches; and
//   - HMMS (internal/hmms), which serializes the graph, derives the
//     backward operation list, and plans memory from the ops' declared
//     stash sets, sizes, FLOPs and workspace requirements.
package graph

import (
	"fmt"

	"splitcnn/internal/tensor"
)

// Kind distinguishes the three node species.
type Kind int

// Node kinds.
const (
	KindInput Kind = iota // externally fed tensor (images, labels)
	KindParam             // trainable parameter, resolved via a ParamStore
	KindOp                // mathematical operation
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindParam:
		return "param"
	case KindOp:
		return "op"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Op is a mathematical operation with a single output tensor. Besides
// computing forward values and gradients, every op declares the metadata
// the memory planner needs: which operands must be stashed for the
// backward pass, how many FLOPs it performs, and how much scratch
// workspace it wants (the cuDNN-workspace analogue, §6.3).
type Op interface {
	// Kind returns a short operation identifier such as "conv" or "relu".
	Kind() string
	// OutShape computes the output shape from input shapes.
	OutShape(in []tensor.Shape) (tensor.Shape, error)
	// Forward computes the output. stash carries values (e.g. pooling
	// argmax indices) forwarded verbatim to Backward.
	Forward(in []*tensor.Tensor) (out *tensor.Tensor, stash any)
	// Backward returns the gradient with respect to each input (entries
	// may be nil for inputs that need no gradient). Inputs whose
	// NeedsInput is false and the output when NeedsOutput is false are
	// passed as nil: the executor frees them eagerly, exactly as the
	// memory planner assumes.
	Backward(gradOut *tensor.Tensor, in []*tensor.Tensor, out *tensor.Tensor, stash any) []*tensor.Tensor
	// NeedsInput reports whether input i must be kept (or offloaded and
	// prefetched) for the backward pass.
	NeedsInput(i int) bool
	// NeedsOutput reports whether the forward output must be kept for
	// the backward pass.
	NeedsOutput() bool
	// FLOPs estimates the forward floating-point operation count.
	FLOPs(in []tensor.Shape, out tensor.Shape) int64
	// WorkspaceBytes estimates scratch memory used during the forward
	// computation (e.g. the im2col buffer standing in for cuDNN
	// workspace).
	WorkspaceBytes(in []tensor.Shape, out tensor.Shape) int64
}

// Node is a vertex of the computation graph.
type Node struct {
	ID     int
	Name   string
	Kind   Kind
	Op     Op // non-nil iff Kind == KindOp
	Inputs []*Node
	Shape  tensor.Shape
}

// String renders "name#id(kind)".
func (n *Node) String() string {
	k := n.Kind.String()
	if n.Kind == KindOp {
		k = n.Op.Kind()
	}
	return fmt.Sprintf("%s#%d(%s)", n.Name, n.ID, k)
}

// Graph is a DAG of nodes. Nodes are stored in insertion order, which is
// a topological order by construction (an op's inputs must exist before
// the op is added); Topo verifies this invariant.
type Graph struct {
	Nodes   []*Node
	Outputs []*Node // usually a single loss node
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// Input adds an externally-fed tensor node (e.g. images or labels).
func (g *Graph) Input(name string, shape tensor.Shape) *Node {
	return g.add(&Node{Name: name, Kind: KindInput, Shape: shape.Clone()})
}

// Param adds a trainable-parameter node. Its value and gradient live in
// a ParamStore keyed by name, so independently built graphs (the unsplit
// model, its split variant, per-minibatch stochastic rewrites) share the
// same weights.
func (g *Graph) Param(name string, shape tensor.Shape) *Node {
	return g.add(&Node{Name: name, Kind: KindParam, Shape: shape.Clone()})
}

// Add appends an operation node consuming the given inputs.
func (g *Graph) Add(name string, op Op, inputs ...*Node) *Node {
	shapes := make([]tensor.Shape, len(inputs))
	for i, in := range inputs {
		if in == nil {
			panic(fmt.Sprintf("graph.Add(%s): nil input %d", name, i))
		}
		shapes[i] = in.Shape
	}
	out, err := op.OutShape(shapes)
	if err != nil {
		panic(fmt.Sprintf("graph.Add(%s %s): %v", name, op.Kind(), err))
	}
	return g.add(&Node{Name: name, Kind: KindOp, Op: op, Inputs: inputs, Shape: out})
}

func (g *Graph) add(n *Node) *Node {
	n.ID = len(g.Nodes)
	g.Nodes = append(g.Nodes, n)
	return n
}

// SetOutput marks nodes as graph outputs (typically the loss).
func (g *Graph) SetOutput(nodes ...*Node) { g.Outputs = nodes }

// Topo returns the nodes in topological order and verifies the
// construction-order invariant.
func (g *Graph) Topo() ([]*Node, error) {
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if in.ID >= n.ID {
				return nil, fmt.Errorf("graph: node %s consumes later node %s", n, in)
			}
			if in.ID < 0 || in.ID >= len(g.Nodes) || g.Nodes[in.ID] != in {
				return nil, fmt.Errorf("graph: node %s consumes foreign node %s", n, in)
			}
		}
	}
	return g.Nodes, nil
}

// Consumers returns, for each node ID, the list of op nodes reading it.
func (g *Graph) Consumers() [][]*Node {
	out := make([][]*Node, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			out[in.ID] = append(out[in.ID], n)
		}
	}
	return out
}

// Params returns the parameter nodes in insertion order.
func (g *Graph) Params() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.Kind == KindParam {
			out = append(out, n)
		}
	}
	return out
}

// OpNodes returns the operation nodes in topological order.
func (g *Graph) OpNodes() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.Kind == KindOp {
			out = append(out, n)
		}
	}
	return out
}

// FindNode returns the first node with the given name, or nil.
func (g *Graph) FindNode(name string) *Node {
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}
