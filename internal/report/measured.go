package report

import (
	"fmt"

	"splitcnn/internal/memobs"
)

// MeasuredMemReport builds the measured-vs-planned memory overlay for a
// runtime MemTimeline: per op step, the bytes the executor actually
// touched (slab windows referenced plus scratch arena in use) against
// the static plan's live bytes, with the planned slab size as the
// dashed high-water rule.
//
// The builder is self-verifying in the CompileReport tradition: it
// refuses to render a timeline that fails Verify (corrupted step
// indices or a sample above its own recorded high water), and it
// returns the plotted measured peak so the caller can cross-check it
// with == against the mem.measured_high_water_bytes gauge before
// writing anything. A report page that disagrees with the metrics
// surface is worse than no page.
func MeasuredMemReport(title string, tl *memobs.MemTimeline) (*Data, int64, error) {
	if err := tl.Verify(); err != nil {
		return nil, 0, err
	}
	if len(tl.Samples) == 0 {
		return nil, 0, fmt.Errorf("report: measured timeline has no samples (no completed pass)")
	}

	measuredPts := make([]Point, 0, len(tl.Samples))
	plannedPts := make([]Point, 0, len(tl.Samples))
	scratchPts := make([]Point, 0, len(tl.Samples))
	var peak int64
	for _, s := range tl.Samples {
		if s.MeasuredBytes > peak {
			peak = s.MeasuredBytes
		}
		measuredPts = append(measuredPts, Point{X: float64(s.Step), Y: float64(s.MeasuredBytes), Label: s.Name})
		plannedPts = append(plannedPts, Point{X: float64(s.Step), Y: float64(s.PlannedBytes), Label: s.Name})
		scratchPts = append(scratchPts, Point{X: float64(s.Step), Y: float64(s.ScratchBytes), Label: s.Name})
	}

	driftMax, driftAt := tl.DriftMax()
	facts := []KV{
		{"source", tl.Source},
		{"measured peak", HumanBytes(float64(peak))},
		{"scratch high water", HumanBytes(float64(tl.ScratchHighWater))},
		{"passes", fmt.Sprint(tl.Passes)},
	}
	chart := Chart{
		Title: "measured vs planned activation bytes",
		Note:  "runtime step hooks against the static first-fit plan",
		XKind: XSteps,
		Series: []Series{
			{Name: "measured", Points: measuredPts},
			{Name: "planned live", Points: plannedPts},
			{Name: "scratch", Points: scratchPts},
		},
	}
	subtitle := fmt.Sprintf("%d steps · %d passes · interpreted path (no static plan)",
		len(tl.Samples), tl.Passes)
	if tl.PlannedSlabBytes > 0 {
		if err := tl.CheckAgainstPlan(); err != nil {
			return nil, 0, err
		}
		chart.HighWater = float64(tl.PlannedSlabBytes)
		chart.HighWaterLabel = "planned slab size"
		facts = append(facts,
			KV{"planned slab", HumanBytes(float64(tl.PlannedSlabBytes))},
			KV{"drift max", fmt.Sprintf("%.3f at %s", driftMax, driftAt)},
			KV{"drift geomean", fmt.Sprintf("%.3f", tl.DriftGeomean())},
		)
		subtitle = fmt.Sprintf("%d steps · %d passes · drift max %.3f at %s",
			len(tl.Samples), tl.Passes, driftMax, driftAt)
	}

	d := &Data{
		Title:    title,
		Subtitle: subtitle,
		Facts:    facts,
		Charts:   []Chart{chart},
	}
	d.Table = &Table{
		Caption: "measured memory timeline",
		Header:  []string{"step", "op", "kind", "measured", "planned", "slab ref", "scratch", "drift"},
	}
	for _, s := range tl.Samples {
		drift := "-"
		if s.PlannedBytes > 0 {
			drift = fmt.Sprintf("%.3f", float64(s.MeasuredBytes)/float64(s.PlannedBytes))
		}
		d.Table.Rows = append(d.Table.Rows, []string{
			fmt.Sprint(s.Step), s.Name, s.Kind,
			fmt.Sprint(s.MeasuredBytes), fmt.Sprint(s.PlannedBytes),
			fmt.Sprint(s.SlabRefBytes), fmt.Sprint(s.ScratchBytes), drift,
		})
	}
	return d, peak, nil
}
