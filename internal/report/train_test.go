package report_test

import (
	"bytes"
	"strings"
	"testing"

	"splitcnn/internal/report"
	"splitcnn/internal/trace"
)

// TestTrainReportRoundTrip drives the full pipeline the CLI uses: emit
// a steplog stream through trace.StepLog, parse it back, and render the
// training page from the parsed records.
func TestTrainReportRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	log := trace.NewStepLog(&buf)
	for i := 1; i <= 8; i++ {
		if err := log.Step(trace.StepRecord{
			Step: i, Epoch: (i - 1) / 4, Loss: 2.3 - 0.1*float64(i),
			GradNorm: 1.5, ParamNorm: 40, LR: 0.05,
			ImagesPerSec: 800, StepSeconds: 0.04, ArenaInUseBytes: 1 << 20,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for e := 0; e < 2; e++ {
		if err := log.Epoch(trace.EpochRecord{
			Epoch: e, Steps: 4, MeanLoss: 2.0 - 0.3*float64(e), TestError: 0.5 - 0.1*float64(e),
			LR: 0.05, EpochSeconds: 0.16, ImagesPerSec: 800,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	steps, epochs, err := trace.ReadStepLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	d, err := report.TrainReport("tiny run", steps, epochs)
	if err != nil {
		t.Fatal(err)
	}

	var html bytes.Buffer
	if err := report.Render(&html, d); err != nil {
		t.Fatal(err)
	}
	out := html.String()
	for _, want := range []string{
		"tiny run", "training loss", "gradient health", "step time",
		"grad norm", "param norm", "per-epoch rollups",
		"step 1",      // XSteps tooltip prefix
		"40 ms",       // YSeconds tick/tooltip unit for the 0.04 s steps
		"final loss",  // facts
		"0.4000",      // final test error in facts and table
		"<path class", // curves actually drawn
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered page missing %q", want)
		}
	}
	// Loss curve is a Line chart: straight segments, not hold-steps.
	if !strings.Contains(out, " L") || strings.Count(out, "<figure>") != 3 {
		t.Fatalf("expected 3 figures with line segments")
	}
}

// TestTrainReportValidation rejects streams with no curve to draw.
func TestTrainReportValidation(t *testing.T) {
	if _, err := report.TrainReport("x", nil, nil); err == nil {
		t.Fatal("empty stream accepted")
	}
	if _, err := report.TrainReport("x", []trace.StepRecord{{Step: 1}}, nil); err == nil {
		t.Fatal("single-step stream accepted")
	}
}
