package report_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"splitcnn/internal/graph"
	"splitcnn/internal/models"
	"splitcnn/internal/nn"
	"splitcnn/internal/report"
)

// TestCompileReportRenders lowers the mini eval-mode VGG-19 through
// graph.Compile, renders the slab-timeline report, and pins the
// acceptance identity: the plotted peak equals the slab size the
// program actually mapped.
func TestCompileReportRenders(t *testing.T) {
	m := models.VGG19CIFAR(4, models.Config{WidthDiv: 16, Eval: true})
	m.Graph.SetOutput(m.Logits)
	store := graph.NewParamStore()
	store.InitFromGraph(m.Graph, rand.New(rand.NewSource(1)), nn.KaimingInit)
	prog, err := graph.Compile(m.Graph, store, graph.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}

	data, peak, err := report.CompileReport("vgg19 compiled plan", prog)
	if err != nil {
		t.Fatal(err)
	}
	if peak != prog.SlabBytes() {
		t.Fatalf("plotted peak %d != mapped slab %d", peak, prog.SlabBytes())
	}
	if len(data.Charts) != 1 || len(data.Charts[0].Series) != 2 {
		t.Fatalf("want one chart with extent + live series, got %+v", data.Charts)
	}
	if data.Table == nil || len(data.Table.Rows) != prog.Stats().Ops {
		t.Fatalf("plan table should list every op")
	}

	var buf bytes.Buffer
	if err := report.Render(&buf, data); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	for _, want := range []string{"planned slab size", "mapped extent", "fused into"} {
		if !strings.Contains(doc, want) {
			t.Errorf("rendered report missing %q", want)
		}
	}
}
