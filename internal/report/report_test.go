package report_test

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"splitcnn/internal/costmodel"
	"splitcnn/internal/hmms"
	"splitcnn/internal/models"
	"splitcnn/internal/report"
	"splitcnn/internal/sim"
)

// svgNode is a generic XML node used to prove the inline SVG is
// well-formed markup, not just string soup.
type svgNode struct {
	XMLName  xml.Name
	Attrs    []xml.Attr `xml:",any,attr"`
	Children []svgNode  `xml:",any"`
	Text     string     `xml:",chardata"`
}

// extractSVGs pulls every <svg>...</svg> block out of the document.
func extractSVGs(t *testing.T, doc string) []string {
	t.Helper()
	var svgs []string
	for rest := doc; ; {
		i := strings.Index(rest, "<svg")
		if i < 0 {
			break
		}
		j := strings.Index(rest[i:], "</svg>")
		if j < 0 {
			t.Fatal("unterminated <svg> block")
		}
		svgs = append(svgs, rest[i:i+j+len("</svg>")])
		rest = rest[i+j:]
	}
	return svgs
}

func renderFixture(t *testing.T, method sim.Method) (string, int64, *hmms.MemoryPlan) {
	t.Helper()
	m := models.VGG19CIFAR(4, models.Config{WidthDiv: 16})
	res, prog, mem, err := sim.PlanAndRun(m.Graph, costmodel.P100(), method, -1)
	if err != nil {
		t.Fatal(err)
	}
	data, peak, err := report.MemoryReport("vgg19 memory timeline", res, prog, mem)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.Render(&buf, data); err != nil {
		t.Fatal(err)
	}
	return buf.String(), peak, mem
}

// TestMemoryReportRenders renders the full HMMS report and checks the
// document's structure: well-formed SVG, one chart per non-empty pool
// plus the combined device chart, a dashed high-water rule, a legend
// for multi-series charts, hover titles, dark-mode palette, and the
// accessibility table.
func TestMemoryReportRenders(t *testing.T) {
	doc, peak, mem := renderFixture(t, sim.MethodHMMS)

	if peak != mem.DeviceBytes() {
		t.Errorf("plotted device peak %d != DeviceBytes %d", peak, mem.DeviceBytes())
	}

	svgs := extractSVGs(t, doc)
	// device combined + device-param + device-general + host (HMMS
	// offloads, so the host pool is non-empty).
	if len(svgs) != 4 {
		t.Fatalf("got %d charts, want 4", len(svgs))
	}
	for i, s := range svgs {
		var n svgNode
		if err := xml.Unmarshal([]byte(s), &n); err != nil {
			t.Fatalf("chart %d is not well-formed XML: %v", i, err)
		}
		if !strings.Contains(s, "stroke-dasharray") && !strings.Contains(s, `class="hw"`) {
			t.Errorf("chart %d lacks the dashed high-water rule", i)
		}
		if !strings.Contains(s, "<title>") {
			t.Errorf("chart %d lacks hover titles", i)
		}
	}

	for _, want := range []string{
		"device memory (both pools)",
		"device-param pool",
		"device-general pool",
		"host pool",
		"live bytes", "footprint", // legend + direct labels
		"static pool size", "planned device memory", // high-water labels
		"prefers-color-scheme: dark", // selected dark mode
		"data-palette=",              // validator hook
		"per-pool summary",           // table view
		"<script",                    // negated below
	} {
		if want == "<script" {
			if strings.Contains(doc, want) {
				t.Error("report must be JS-free")
			}
			continue
		}
		if !strings.Contains(doc, want) {
			t.Errorf("report missing %q", want)
		}
	}

	// A multi-series chart has a legend; identity is never color-alone.
	if !strings.Contains(doc, `class="legend"`) {
		t.Error("no legend on multi-series charts")
	}
}

// TestMemoryReportBaseline checks the no-offload baseline skips the
// empty host pool rather than rendering a degenerate chart.
func TestMemoryReportBaseline(t *testing.T) {
	doc, peak, mem := renderFixture(t, sim.MethodNone)
	if peak != mem.DeviceBytes() {
		t.Errorf("plotted device peak %d != DeviceBytes %d", peak, mem.DeviceBytes())
	}
	if got := len(extractSVGs(t, doc)); got != 3 {
		t.Errorf("baseline report has %d charts, want 3 (no host pool)", got)
	}
	if strings.Contains(doc, "<strong>host pool</strong>") {
		t.Error("baseline report renders an empty host pool chart")
	}
}

// TestRenderValidation exercises the renderer's error paths.
func TestRenderValidation(t *testing.T) {
	var buf bytes.Buffer
	for name, c := range map[string]report.Chart{
		"no series":  {Title: "x"},
		"one point":  {Title: "x", Series: []report.Series{{Name: "s", Points: []report.Point{{X: 0, Y: 1}}}}},
		"degenerate": {Title: "x", Series: []report.Series{{Name: "s", Points: []report.Point{{X: 0, Y: 0}, {X: 0, Y: 0}}}}},
	} {
		err := report.Render(&buf, &report.Data{Title: "t", Charts: []report.Chart{c}})
		if err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestHumanUnits pins the byte and time formatters.
func TestHumanUnits(t *testing.T) {
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{0, "0 B"}, {512, "512 B"}, {1024, "1 KiB"}, {1536, "1.5 KiB"},
		{16123456789, "15 GiB"},
	} {
		if got := report.HumanBytes(tc.v); got != tc.want {
			t.Errorf("HumanBytes(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
	for _, tc := range []struct {
		v    float64
		want string
	}{
		{0, "0 s"}, {2.5, "2.5 s"}, {0.012, "12 ms"}, {42e-6, "42 µs"},
	} {
		if got := report.HumanSeconds(tc.v); got != tc.want {
			t.Errorf("HumanSeconds(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}
