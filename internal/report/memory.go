package report

import (
	"fmt"

	"splitcnn/internal/hmms"
	"splitcnn/internal/sim"
)

// MemoryReport builds the memory-occupancy-vs-time report for one
// planned and simulated (or measured-and-replayed) training step: a
// combined device chart plus one chart per non-empty pool, each with
// its live and footprint series against the static plan size as the
// dashed high-water rule.
//
// The returned devicePeak is the plotted combined device high-water
// mark. By the Timeline identities it equals mem.DeviceBytes() — the
// exact value RecordMetrics publishes as mem.device_high_water_bytes —
// and the report subcommand cross-checks the two with == before
// writing anything.
func MemoryReport(title string, res *sim.Result, prog *hmms.Program, mem *hmms.MemoryPlan) (*Data, int64, error) {
	opStart, opEnd := res.OpTimes()
	series, err := mem.Timeline(opStart, opEnd)
	if err != nil {
		return nil, 0, err
	}
	byPool := map[hmms.Pool]hmms.PoolSeries{}
	for _, s := range series {
		byPool[s.Pool] = s
	}

	points := func(s hmms.PoolSeries, pick func(hmms.PoolSample) int64) []Point {
		pts := make([]Point, 0, len(s.Samples))
		for _, p := range s.Samples {
			label := ""
			if p.Op < len(prog.Ops) {
				label = prog.Ops[p.Op].Name
			}
			pts = append(pts, Point{X: p.Time, Y: float64(pick(p)), Label: label})
		}
		return pts
	}
	live := func(p hmms.PoolSample) int64 { return p.LiveBytes }
	footprint := func(p hmms.PoolSample) int64 { return p.FootprintBytes }

	// Combined device occupancy: the param and general pools share the
	// device, so their footprints sum; the dashed rule is the planner's
	// total device budget.
	param, general := byPool[hmms.PoolDeviceParam], byPool[hmms.PoolDeviceGeneral]
	var devPts []Point
	var devicePeak int64
	for i := range param.Samples {
		sum := param.Samples[i].FootprintBytes + general.Samples[i].FootprintBytes
		if sum > devicePeak {
			devicePeak = sum
		}
		label := ""
		if op := param.Samples[i].Op; op < len(prog.Ops) {
			label = prog.Ops[op].Name
		}
		devPts = append(devPts, Point{X: param.Samples[i].Time, Y: float64(sum), Label: label})
	}

	d := &Data{
		Title: title,
		Subtitle: fmt.Sprintf("method %s · %d ops · step %s · %s offloaded",
			res.Method, len(prog.Ops), HumanSeconds(res.TotalTime), HumanBytes(float64(res.OffloadedBytes))),
		Facts: []KV{
			{"device high water", HumanBytes(float64(mem.DeviceBytes()))},
			{"device-param pool", HumanBytes(float64(mem.PoolBytes[hmms.PoolDeviceParam]))},
			{"device-general pool", HumanBytes(float64(mem.PoolBytes[hmms.PoolDeviceGeneral]))},
			{"host pool", HumanBytes(float64(mem.PoolBytes[hmms.PoolHost]))},
			{"no-reuse baseline", HumanBytes(float64(mem.NoReuseBytes))},
			{"stall", HumanSeconds(res.StallTime)},
		},
		Charts: []Chart{{
			Title:          "device memory (both pools)",
			Note:           "combined allocator footprint over one training step",
			Series:         []Series{{Name: "device footprint", Points: devPts}},
			HighWater:      float64(mem.DeviceBytes()),
			HighWaterLabel: "planned device memory",
		}},
	}
	for _, s := range series {
		if s.PeakFootprintBytes == 0 {
			continue // e.g. host pool under the no-offload baseline
		}
		d.Charts = append(d.Charts, Chart{
			Title: fmt.Sprintf("%s pool", s.Pool),
			Note: fmt.Sprintf("%d blocks · %.1f%% fragmentation at peak",
				countBlocks(mem, s.Pool), 100*mem.Fragmentation(s.Pool)),
			Series: []Series{
				{Name: "live bytes", Points: points(s, live)},
				{Name: "footprint", Points: points(s, footprint)},
			},
			HighWater:      float64(mem.PoolBytes[s.Pool]),
			HighWaterLabel: "static pool size",
		})
	}
	d.Table = &Table{
		Caption: "per-pool summary",
		Header:  []string{"pool", "static size", "peak live", "fragmentation", "blocks"},
	}
	for _, s := range series {
		d.Table.Rows = append(d.Table.Rows, []string{
			s.Pool.String(),
			HumanBytes(float64(mem.PoolBytes[s.Pool])),
			HumanBytes(float64(s.PeakLiveBytes)),
			fmt.Sprintf("%.1f%%", 100*mem.Fragmentation(s.Pool)),
			fmt.Sprint(countBlocks(mem, s.Pool)),
		})
	}
	return d, devicePeak, nil
}

func countBlocks(m *hmms.MemoryPlan, pool hmms.Pool) int {
	n := 0
	for _, b := range m.Blocks {
		if b.Pool == pool {
			n++
		}
	}
	return n
}
