package report

import (
	"strings"
	"testing"

	"splitcnn/internal/memobs"
)

func fixtureTimeline() *memobs.MemTimeline {
	return &memobs.MemTimeline{
		Source: "compiled", Passes: 2,
		PlannedSlabBytes: 4096, MeasuredHighWater: 3100,
		Samples: []memobs.MemSample{
			{Step: 0, Name: "conv1", Kind: "conv2d", MeasuredBytes: 2048, PlannedBytes: 2048, SlabRefBytes: 2048, ScratchBytes: 0},
			{Step: 1, Name: "relu1", Kind: "relu", MeasuredBytes: 3100, PlannedBytes: 3072, SlabRefBytes: 3072, ScratchBytes: 28},
			{Step: 2, Name: "fc", Kind: "matmul", MeasuredBytes: 1024, PlannedBytes: 1024, SlabRefBytes: 1024, ScratchBytes: 0},
		},
	}
}

// TestMeasuredMemReport renders a well-formed timeline and checks the
// overlay carries measured, planned-live, and scratch series plus the
// planned-slab high-water line, and that the returned plotted peak is
// the timeline's measured maximum (the value the cmd layer cross-checks
// against the mem.measured_high_water_bytes gauge).
func TestMeasuredMemReport(t *testing.T) {
	tl := fixtureTimeline()
	data, peak, err := MeasuredMemReport("memtest", tl)
	if err != nil {
		t.Fatalf("MeasuredMemReport: %v", err)
	}
	if peak != 3100 {
		t.Fatalf("plotted peak = %d, want 3100", peak)
	}
	if len(data.Charts) == 0 {
		t.Fatal("no charts rendered")
	}
	ch := data.Charts[0]
	names := map[string]bool{}
	for _, s := range ch.Series {
		names[s.Name] = true
	}
	for _, want := range []string{"measured", "planned live", "scratch"} {
		found := false
		for n := range names {
			if strings.Contains(strings.ToLower(n), want) {
				found = true
			}
		}
		if !found {
			t.Fatalf("chart is missing a %q series (have %v)", want, names)
		}
	}
	if ch.HighWater != 4096 {
		t.Fatalf("high-water line = %g, want planned slab 4096", ch.HighWater)
	}
}

// TestMeasuredMemReportRejectsCorruption: the builder must refuse to
// render a tampered timeline — the report page self-verifies rather
// than plotting garbage.
func TestMeasuredMemReportRejectsCorruption(t *testing.T) {
	tl := fixtureTimeline()
	tl.Samples[1].MeasuredBytes = tl.MeasuredHighWater + 512
	if _, _, err := MeasuredMemReport("memtest", tl); err == nil {
		t.Fatal("MeasuredMemReport rendered a corrupted timeline")
	}

	tl = fixtureTimeline()
	tl.Samples[2].Step = 99
	if _, _, err := MeasuredMemReport("memtest", tl); err == nil {
		t.Fatal("MeasuredMemReport rendered a timeline with broken step order")
	}

	empty := &memobs.MemTimeline{Source: "compiled"}
	if _, _, err := MeasuredMemReport("memtest", empty); err == nil {
		t.Fatal("MeasuredMemReport rendered an empty timeline")
	}
}
