package report

import (
	"fmt"

	"splitcnn/internal/trace"
)

// TrainReport builds the training-run page from a parsed steplog
// stream (`splitcnn report -train run.jsonl`): the loss curve, the
// gradient/parameter norm curves, and the step-time series, with the
// per-epoch rollups as the tabular view. It needs at least two step
// records — below that there is no curve to draw.
func TrainReport(title string, steps []trace.StepRecord, epochs []trace.EpochRecord) (*Data, error) {
	if len(steps) < 2 {
		return nil, fmt.Errorf("report: %d step records, need at least 2", len(steps))
	}
	loss := make([]Point, len(steps))
	grad := make([]Point, len(steps))
	param := make([]Point, len(steps))
	stepTime := make([]Point, len(steps))
	var peakArena int64
	var imgSum float64
	for i, s := range steps {
		x := float64(s.Step)
		loss[i] = Point{X: x, Y: s.Loss}
		grad[i] = Point{X: x, Y: s.GradNorm}
		param[i] = Point{X: x, Y: s.ParamNorm}
		stepTime[i] = Point{X: x, Y: s.StepSeconds}
		if s.ArenaInUseBytes > peakArena {
			peakArena = s.ArenaInUseBytes
		}
		imgSum += s.ImagesPerSec
	}
	last := steps[len(steps)-1]

	d := &Data{
		Title: title,
		Subtitle: fmt.Sprintf("%d steps · %d epochs · final loss %s",
			len(steps), len(epochs), HumanScalar(last.Loss)),
		Facts: []KV{
			{"steps", fmt.Sprint(len(steps))},
			{"epochs", fmt.Sprint(len(epochs))},
			{"final loss", HumanScalar(last.Loss)},
			{"final lr", HumanScalar(last.LR)},
			{"mean images/s", HumanScalar(imgSum / float64(len(steps)))},
			{"peak arena", HumanBytes(float64(peakArena))},
		},
		Charts: []Chart{
			{
				Title:  "training loss",
				Note:   "per-step minibatch loss",
				Series: []Series{{Name: "loss", Points: loss}},
				YKind:  YScalar, XKind: XSteps, Line: true,
			},
			{
				Title: "gradient health",
				Note:  "global L2 norms over trainable parameters",
				Series: []Series{
					{Name: "grad norm", Points: grad},
					{Name: "param norm", Points: param},
				},
				YKind: YScalar, XKind: XSteps, Line: true,
			},
			{
				Title:  "step time",
				Note:   "wall clock per optimizer step",
				Series: []Series{{Name: "step time", Points: stepTime}},
				YKind:  YSeconds, XKind: XSteps, Line: true,
			},
		},
	}
	if len(epochs) > 0 {
		final := epochs[len(epochs)-1]
		d.Facts = append(d.Facts, KV{"final test error", fmt.Sprintf("%.4f", final.TestError)})
		d.Table = &Table{
			Caption: "per-epoch rollups",
			Header:  []string{"epoch", "steps", "mean loss", "test error", "lr", "epoch time", "images/s"},
		}
		for _, e := range epochs {
			d.Table.Rows = append(d.Table.Rows, []string{
				fmt.Sprint(e.Epoch),
				fmt.Sprint(e.Steps),
				HumanScalar(e.MeanLoss),
				fmt.Sprintf("%.4f", e.TestError),
				HumanScalar(e.LR),
				HumanSeconds(e.EpochSeconds),
				HumanScalar(e.ImagesPerSec),
			})
		}
	}
	return d, nil
}
