package report

import (
	"fmt"

	"splitcnn/internal/graph"
)

// CompileReport builds the memory-timeline report for a compiled
// program's static plan: slab occupancy over the program's steps, with
// the planned slab size as the dashed high-water rule.
//
// Two series are plotted. "mapped extent" is the highest slab address
// live at each step — its maximum over the program IS the slab size, by
// construction of the first-fit layout, and the returned peak carries
// that identity so callers can cross-check it against
// prog.SlabBytes() with == before writing anything. "live bytes" is
// the sum of live storage sizes, whose gap to the extent line is
// first-fit fragmentation.
func CompileReport(title string, prog *graph.CompiledProgram) (*Data, int64, error) {
	entries := prog.PlanEntries()
	steps := prog.Steps()
	if steps <= 0 {
		return nil, 0, fmt.Errorf("report: compiled program has no steps")
	}

	// One extent per storage (fused and viewed members share one).
	type extent struct {
		off, bytes int64
		start, end int
	}
	seen := map[int]bool{}
	var storages []extent
	stepName := make([]string, steps)
	for _, e := range entries {
		if e.FusedInto == "" && !e.Alias && e.Step >= 0 && e.Step < steps {
			stepName[e.Step] = e.Name
		}
		if e.Storage < 0 || seen[e.Storage] {
			continue
		}
		seen[e.Storage] = true
		storages = append(storages, extent{e.Offset, e.Bytes, e.Start, e.End})
	}

	livePts := make([]Point, 0, steps)
	extentPts := make([]Point, 0, steps)
	var peak int64
	for s := 0; s < steps; s++ {
		var live, ext int64
		for _, st := range storages {
			if st.start <= s && s <= st.end {
				live += st.bytes
				if st.off+st.bytes > ext {
					ext = st.off + st.bytes
				}
			}
		}
		if ext > peak {
			peak = ext
		}
		livePts = append(livePts, Point{X: float64(s), Y: float64(live), Label: stepName[s]})
		extentPts = append(extentPts, Point{X: float64(s), Y: float64(ext), Label: stepName[s]})
	}

	st := prog.Stats()
	d := &Data{
		Title: title,
		Subtitle: fmt.Sprintf("%d ops → %d steps · %d fused · %d elided · %d viewed",
			st.Ops, st.Steps, st.Fused, st.Elided, st.Reshaped),
		Facts: []KV{
			{"slab size", HumanBytes(float64(st.SlabBytes))},
			{"no-reuse baseline", HumanBytes(float64(st.NoReuseBytes))},
			{"reuse saving", fmt.Sprintf("%.1f%%", 100*(1-float64(st.SlabBytes)/float64(max64(st.NoReuseBytes, 1))))},
			{"storages", fmt.Sprint(len(storages))},
			{"fallback steps", fmt.Sprint(st.Fallbacks)},
		},
		Charts: []Chart{{
			Title: "activation slab",
			Note:  "static first-fit layout over the rewritten program",
			XKind: XSteps,
			Series: []Series{
				{Name: "mapped extent", Points: extentPts},
				{Name: "live bytes", Points: livePts},
			},
			HighWater:      float64(st.SlabBytes),
			HighWaterLabel: "planned slab size",
		}},
	}

	d.Table = &Table{
		Caption: "static memory plan",
		Header:  []string{"node", "kind", "step", "offset", "bytes", "live", "placement"},
	}
	for _, e := range entries {
		placement := "slab"
		switch {
		case e.FusedInto != "":
			placement = "fused into " + e.FusedInto
		case e.Alias:
			placement = "view"
		case e.Storage < 0:
			placement = "external"
		}
		offset, bytes, live := "-", "-", "-"
		if e.Storage >= 0 {
			offset = fmt.Sprint(e.Offset)
			bytes = fmt.Sprint(e.Bytes)
			live = fmt.Sprintf("[%d, %d]", e.Start, e.End)
		}
		d.Table.Rows = append(d.Table.Rows, []string{
			e.Name, e.Kind, fmt.Sprint(e.Step), offset, bytes, live, placement,
		})
	}
	return d, peak, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
