// Package report renders self-contained HTML reports with inline SVG
// step charts — the presentation layer for `splitcnn report`'s
// memory-occupancy-vs-time timelines. Everything is generated from the
// standard library: no JavaScript, no external assets, one file that
// opens anywhere. Hover detail rides on native SVG <title> tooltips,
// and a table view accompanies the charts so no value is color-alone.
//
// Colors come from a CVD-validated palette (series identity is fixed:
// series 1 blue, series 2 orange, series 3 aqua) with light and dark
// variants selected via prefers-color-scheme; text always wears text
// tokens, never series colors.
package report

import (
	"fmt"
	"html"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Point is one sample of a step series: the value Y holds from X until
// the next point's X.
type Point struct {
	X, Y float64
	// Label optionally annotates the hover tooltip for this interval
	// (e.g. the executing op's name).
	Label string
}

// Series is one named step line. Charts hold at most three; identity is
// carried by fixed palette order, a legend, and direct labels.
type Series struct {
	Name   string
	Points []Point
}

// LaneSpan is one interval on a timeline lane: [Start, End] in seconds
// on the chart's shared x axis.
type LaneSpan struct {
	Start, End float64
	// Label names the span in its tooltip and, when the span is wide
	// enough, directly on the rect.
	Label string
	// Series picks the palette color; a negative value renders a
	// neutral filler block (idle gaps on a critical-path lane).
	Series int
}

// Lane is one named row of a lane chart — one process or activity
// class on a shared time axis.
type Lane struct {
	Name  string
	Spans []LaneSpan
}

// YKind selects the y-axis unit system of a chart. The zero value is
// bytes — the memory-timeline reports predate the other kinds.
type YKind int

const (
	YBytes YKind = iota
	YSeconds
	YScalar
)

// XKind selects the x-axis domain: wall-clock seconds (zero value) or
// optimizer step numbers.
type XKind int

const (
	XSeconds XKind = iota
	XSteps
)

// Chart is one chart: time or steps on x, bytes/seconds/scalars on y,
// an optional dashed high-water rule.
type Chart struct {
	Title string
	// Note is a secondary line under the title.
	Note   string
	Series []Series
	// YKind / XKind pick the axis units; zero values render the classic
	// bytes-over-time memory timeline.
	YKind YKind
	XKind XKind
	// Line joins samples with straight segments (curves like loss or
	// grad norm); the default draws step lines where each value holds
	// until the next sample (occupancy timelines).
	Line bool
	// HighWater, when positive, draws a dashed horizontal rule with
	// HighWaterLabel — the static plan size the series must stay under.
	HighWater      float64
	HighWaterLabel string
	// Lanes, when non-empty, renders a gantt-style timeline (one row
	// per lane, seconds on x) instead of Series.
	Lanes []Lane
}

// yAxis returns the tick unit, tick unit label, and tooltip formatter
// for the chart's y kind.
func (c *Chart) yAxis(yMax float64) (unit float64, name string, format func(float64) string) {
	switch c.YKind {
	case YSeconds:
		u, n := secUnit(yMax)
		return u, n, HumanSeconds
	case YScalar:
		return 1, "", HumanScalar
	default:
		u, n := byteUnit(yMax)
		return u, n, HumanBytes
	}
}

// KV is one header fact ("model: vgg19", ...).
type KV struct{ Key, Value string }

// Table is the accessibility-mandated tabular view of the report's
// numbers.
type Table struct {
	Caption string
	Header  []string
	Rows    [][]string
}

// Data is a whole report document.
type Data struct {
	Title    string
	Subtitle string
	Facts    []KV
	Charts   []Chart
	Table    *Table
}

// Chart geometry (viewBox units).
const (
	chartW  = 880.0
	chartH  = 280.0
	marginL = 84.0
	marginR = 20.0
	marginT = 16.0
	marginB = 36.0
)

// palette is the validated categorical order (light variants; the dark
// variants live in the CSS custom properties). Series color follows the
// series index, never availability or rank.
var palette = []string{"var(--s1)", "var(--s2)", "var(--s3)"}

// Render writes the report document to w.
func Render(w io.Writer, d *Data) error {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", esc(d.Title))
	b.WriteString("<style>\n" + styleCSS + "</style>\n</head>\n")
	b.WriteString("<body data-palette=\"#2a78d6,#eb6834,#1baf7a\">\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n", esc(d.Title))
	if d.Subtitle != "" {
		fmt.Fprintf(&b, "<p class=\"sub\">%s</p>\n", esc(d.Subtitle))
	}
	if len(d.Facts) > 0 {
		b.WriteString("<dl class=\"facts\">\n")
		for _, f := range d.Facts {
			fmt.Fprintf(&b, "<div><dt>%s</dt><dd>%s</dd></div>\n", esc(f.Key), esc(f.Value))
		}
		b.WriteString("</dl>\n")
	}
	for i := range d.Charts {
		if err := renderChart(&b, &d.Charts[i]); err != nil {
			return err
		}
	}
	if t := d.Table; t != nil {
		fmt.Fprintf(&b, "<details open>\n<summary>%s</summary>\n<table>\n<thead><tr>", esc(t.Caption))
		for _, h := range t.Header {
			fmt.Fprintf(&b, "<th>%s</th>", esc(h))
		}
		b.WriteString("</tr></thead>\n<tbody>\n")
		for _, row := range t.Rows {
			b.WriteString("<tr>")
			for _, c := range row {
				fmt.Fprintf(&b, "<td>%s</td>", esc(c))
			}
			b.WriteString("</tr>\n")
		}
		b.WriteString("</tbody>\n</table>\n</details>\n")
	}
	b.WriteString("</body>\n</html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteFile renders the report to path.
func WriteFile(path string, d *Data) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Render(f, d); err != nil {
		f.Close()
		return fmt.Errorf("report: writing %s: %w", path, err)
	}
	return f.Close()
}

func renderChart(b *strings.Builder, c *Chart) error {
	if len(c.Lanes) > 0 {
		return renderLanes(b, c)
	}
	if len(c.Series) == 0 || len(c.Series) > len(palette) {
		return fmt.Errorf("report: chart %q has %d series, want 1..%d", c.Title, len(c.Series), len(palette))
	}
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMax := c.HighWater
	for _, s := range c.Series {
		if len(s.Points) < 2 {
			return fmt.Errorf("report: series %q needs at least 2 points", s.Name)
		}
		for _, p := range s.Points {
			xMin, xMax = math.Min(xMin, p.X), math.Max(xMax, p.X)
			yMax = math.Max(yMax, p.Y)
		}
	}
	if xMax <= xMin || yMax <= 0 {
		return fmt.Errorf("report: chart %q has a degenerate domain", c.Title)
	}
	yMax *= 1.08 // headroom so the top line and its label stay inside

	plotW, plotH := chartW-marginL-marginR, chartH-marginT-marginB
	xpos := func(x float64) float64 { return marginL + (x-xMin)/(xMax-xMin)*plotW }
	ypos := func(y float64) float64 { return marginT + (1-y/yMax)*plotH }

	fmt.Fprintf(b, "<figure>\n<figcaption><strong>%s</strong>", esc(c.Title))
	if c.Note != "" {
		fmt.Fprintf(b, " <span class=\"note\">%s</span>", esc(c.Note))
	}
	b.WriteString("</figcaption>\n")
	if len(c.Series) >= 2 {
		b.WriteString("<div class=\"legend\">")
		for i, s := range c.Series {
			fmt.Fprintf(b, "<span><i style=\"background:%s\"></i>%s</span>", palette[i], esc(s.Name))
		}
		b.WriteString("</div>\n")
	}
	fmt.Fprintf(b, "<svg viewBox=\"0 0 %g %g\" role=\"img\" aria-label=\"%s\">\n", chartW, chartH, esc(c.Title))

	// Horizontal grid + y-axis labels on nice unit ticks.
	unit, uname, yFmt := c.yAxis(yMax)
	for _, tick := range niceTicks(yMax/unit, 5) {
		y := ypos(tick * unit)
		fmt.Fprintf(b, "<line class=\"grid\" x1=\"%g\" y1=\"%.2f\" x2=\"%g\" y2=\"%.2f\"/>\n", marginL, y, chartW-marginR, y)
		fmt.Fprintf(b, "<text class=\"tick\" x=\"%g\" y=\"%.2f\" text-anchor=\"end\">%s %s</text>\n",
			marginL-8, y+4, trimFloat(tick), uname)
	}
	// X axis: labels only, plus the baseline.
	if c.XKind == XSteps {
		for _, tick := range niceTicks(xMax-xMin, 5) {
			x := xpos(xMin + tick)
			fmt.Fprintf(b, "<text class=\"tick\" x=\"%.2f\" y=\"%g\" text-anchor=\"middle\">%s</text>\n",
				x, chartH-marginB+20, trimFloat(xMin+tick))
		}
	} else {
		tUnit, tName := 1.0, "s"
		if xMax < 1 {
			tUnit, tName = 1e-3, "ms"
		}
		for _, tick := range niceTicks((xMax-xMin)/tUnit, 5) {
			x := xpos(xMin + tick*tUnit)
			fmt.Fprintf(b, "<text class=\"tick\" x=\"%.2f\" y=\"%g\" text-anchor=\"middle\">%s %s</text>\n",
				x, chartH-marginB+20, trimFloat(tick), tName)
		}
	}
	fmt.Fprintf(b, "<line class=\"axis\" x1=\"%g\" y1=\"%.2f\" x2=\"%g\" y2=\"%.2f\"/>\n",
		marginL, ypos(0), chartW-marginR, ypos(0))

	// Dashed high-water rule, labeled at the right edge.
	if c.HighWater > 0 {
		y := ypos(c.HighWater)
		fmt.Fprintf(b, "<line class=\"hw\" x1=\"%g\" y1=\"%.2f\" x2=\"%g\" y2=\"%.2f\"/>\n", marginL, y, chartW-marginR, y)
		label := c.HighWaterLabel
		if label == "" {
			label = "high water"
		}
		fmt.Fprintf(b, "<text class=\"hwlabel\" x=\"%g\" y=\"%.2f\">%s · %s</text>\n",
			marginL+6, y-6, esc(label), esc(yFmt(c.HighWater)))
	}

	// Series paths: straight segments for curves, otherwise step lines
	// where each value holds until the next sample.
	for i, s := range c.Series {
		var path strings.Builder
		fmt.Fprintf(&path, "M%.2f %.2f", xpos(s.Points[0].X), ypos(s.Points[0].Y))
		for _, p := range s.Points[1:] {
			if c.Line {
				fmt.Fprintf(&path, " L%.2f %.2f", xpos(p.X), ypos(p.Y))
			} else {
				fmt.Fprintf(&path, " H%.2f V%.2f", xpos(p.X), ypos(p.Y))
			}
		}
		fmt.Fprintf(b, "<path class=\"line\" stroke=\"%s\" d=\"%s\"/>\n", palette[i], path.String())
	}

	// Direct labels at each series' peak — a colored marker carries the
	// identity, the text wears text tokens. Series 1 sits below its
	// line, series 2 above, so coincident peaks still read. The peak of
	// a footprint series touches the high-water rule exactly, so labels
	// drawn above the line keep clear of the left-anchored rule label.
	for i, s := range c.Series {
		peak := 0
		for j, p := range s.Points {
			if p.Y > s.Points[peak].Y {
				peak = j
			}
		}
		lo := marginL + 60.0
		dy := 16.0
		if i > 0 {
			lo, dy = marginL+320, -8
		}
		px := math.Min(math.Max(xpos(s.Points[peak].X), lo), chartW-marginR-60)
		py := ypos(s.Points[peak].Y)
		fmt.Fprintf(b, "<circle class=\"mark\" cx=\"%.2f\" cy=\"%.2f\" r=\"3\" fill=\"%s\"/>\n",
			px, py, palette[i])
		fmt.Fprintf(b, "<text class=\"dlabel\" x=\"%.2f\" y=\"%.2f\" text-anchor=\"middle\">%s</text>\n",
			px, py+dy, esc(s.Name))
	}

	// Hover layer: one transparent hit rect per sample interval with a
	// native <title> tooltip listing every series' value there.
	ref := c.Series[0]
	for j := 0; j+1 < len(ref.Points); j++ {
		x0, x1 := xpos(ref.Points[j].X), xpos(ref.Points[j+1].X)
		if x1-x0 < 0.01 {
			continue
		}
		var tip strings.Builder
		if c.XKind == XSteps {
			fmt.Fprintf(&tip, "step %s", trimFloat(ref.Points[j].X))
		} else {
			fmt.Fprintf(&tip, "t = %s", HumanSeconds(ref.Points[j].X))
		}
		if l := ref.Points[j].Label; l != "" {
			fmt.Fprintf(&tip, " · %s", l)
		}
		for _, s := range c.Series {
			if j < len(s.Points) {
				fmt.Fprintf(&tip, "\n%s: %s", s.Name, yFmt(s.Points[j].Y))
			}
		}
		fmt.Fprintf(b, "<rect class=\"hit\" x=\"%.2f\" y=\"%g\" width=\"%.2f\" height=\"%g\"><title>%s</title></rect>\n",
			x0, marginT, x1-x0, plotH, esc(tip.String()))
	}
	b.WriteString("</svg>\n</figure>\n")
	return nil
}

// Lane-chart geometry: lane names can be long ("shard3 10.0.0.4:9090"),
// so the left margin is wider than the step charts'.
const (
	laneMarginL = 190.0
	laneH       = 30.0
)

// renderLanes draws the chart's lanes as a gantt timeline: one row per
// lane, every span a colored block with a native-tooltip hover, idle
// fillers in a neutral tone.
func renderLanes(b *strings.Builder, c *Chart) error {
	xMin, xMax := math.Inf(1), math.Inf(-1)
	for _, l := range c.Lanes {
		for _, s := range l.Spans {
			if s.End < s.Start {
				return fmt.Errorf("report: lane %q span %q ends before it starts", l.Name, s.Label)
			}
			xMin, xMax = math.Min(xMin, s.Start), math.Max(xMax, s.End)
		}
	}
	if xMax <= xMin {
		return fmt.Errorf("report: lane chart %q has a degenerate domain", c.Title)
	}

	height := marginT + laneH*float64(len(c.Lanes)) + marginB
	plotW := chartW - laneMarginL - marginR
	xpos := func(x float64) float64 { return laneMarginL + (x-xMin)/(xMax-xMin)*plotW }

	fmt.Fprintf(b, "<figure>\n<figcaption><strong>%s</strong>", esc(c.Title))
	if c.Note != "" {
		fmt.Fprintf(b, " <span class=\"note\">%s</span>", esc(c.Note))
	}
	b.WriteString("</figcaption>\n")
	fmt.Fprintf(b, "<svg viewBox=\"0 0 %g %g\" role=\"img\" aria-label=\"%s\">\n", chartW, height, esc(c.Title))

	// Vertical grid + time labels on nice ticks.
	tUnit, tName := secUnit(xMax - xMin)
	for _, tick := range niceTicks((xMax-xMin)/tUnit, 6) {
		x := xpos(xMin + tick*tUnit)
		fmt.Fprintf(b, "<line class=\"grid\" x1=\"%.2f\" y1=\"%g\" x2=\"%.2f\" y2=\"%.2f\"/>\n",
			x, marginT, x, height-marginB)
		fmt.Fprintf(b, "<text class=\"tick\" x=\"%.2f\" y=\"%.2f\" text-anchor=\"middle\">%s %s</text>\n",
			x, height-marginB+20, trimFloat(tick), tName)
	}

	for i, l := range c.Lanes {
		top := marginT + laneH*float64(i)
		if i > 0 {
			fmt.Fprintf(b, "<line class=\"grid\" x1=\"%g\" y1=\"%.2f\" x2=\"%g\" y2=\"%.2f\"/>\n",
				laneMarginL, top, chartW-marginR, top)
		}
		fmt.Fprintf(b, "<text class=\"tick\" x=\"%g\" y=\"%.2f\" text-anchor=\"end\">%s</text>\n",
			laneMarginL-8, top+laneH/2+4, esc(l.Name))
		for _, s := range l.Spans {
			x0, x1 := xpos(s.Start), xpos(s.End)
			w := math.Max(x1-x0, 0.5) // keep sub-pixel spans visible
			fill, class := "var(--grid)", "lgap"
			if s.Series >= 0 {
				fill, class = palette[s.Series%len(palette)], "lspan"
			}
			tip := fmt.Sprintf("%s\n%s → %s · %s", s.Label,
				HumanSeconds(s.Start), HumanSeconds(s.End), HumanSeconds(s.End-s.Start))
			fmt.Fprintf(b, "<rect class=\"%s\" x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%g\" rx=\"2\" fill=\"%s\"><title>%s</title></rect>\n",
				class, x0, top+5, w, laneH-10, fill, esc(tip))
			// Direct label inside spans wide enough to carry one.
			if s.Series >= 0 && s.Label != "" && w > 9*float64(len(s.Label)) {
				fmt.Fprintf(b, "<text class=\"ltext\" x=\"%.2f\" y=\"%.2f\" text-anchor=\"middle\">%s</text>\n",
					x0+w/2, top+laneH/2+4, esc(s.Label))
			}
		}
	}
	fmt.Fprintf(b, "<line class=\"axis\" x1=\"%g\" y1=\"%.2f\" x2=\"%g\" y2=\"%.2f\"/>\n",
		laneMarginL, height-marginB, chartW-marginR, height-marginB)
	b.WriteString("</svg>\n</figure>\n")
	return nil
}

// HumanBytes formats a byte count with binary units ("1.5 MiB").
func HumanBytes(v float64) string {
	units := []string{"B", "KiB", "MiB", "GiB", "TiB"}
	i := 0
	for v >= 1024 && i < len(units)-1 {
		v /= 1024
		i++
	}
	return strconv.FormatFloat(math.Round(v*10)/10, 'f', -1, 64) + " " + units[i]
}

// HumanSeconds formats a duration in s/ms/µs, whichever reads best.
func HumanSeconds(v float64) string {
	switch {
	case v >= 1 || v == 0:
		return strconv.FormatFloat(math.Round(v*1000)/1000, 'f', -1, 64) + " s"
	case v >= 1e-3:
		return strconv.FormatFloat(math.Round(v*1e6)/1000, 'f', -1, 64) + " ms"
	default:
		return strconv.FormatFloat(math.Round(v*1e9)/1000, 'f', -1, 64) + " µs"
	}
}

// HumanScalar formats a dimensionless value compactly: fixed decimals
// in the comfortable range, scientific notation outside it.
func HumanScalar(v float64) string {
	if v != 0 && (math.Abs(v) >= 1e5 || math.Abs(v) < 1e-3) {
		return strconv.FormatFloat(v, 'g', 4, 64)
	}
	return strconv.FormatFloat(math.Round(v*1000)/1000, 'f', -1, 64)
}

// secUnit picks the tick unit for a seconds axis.
func secUnit(max float64) (float64, string) {
	switch {
	case max >= 1:
		return 1, "s"
	case max >= 1e-3:
		return 1e-3, "ms"
	default:
		return 1e-6, "µs"
	}
}

// byteUnit picks the binary unit for a byte axis so tick labels read
// "2 MiB" rather than "2097152 B".
func byteUnit(max float64) (float64, string) {
	unit, names := 1.0, []string{"B", "KiB", "MiB", "GiB", "TiB"}
	i := 0
	for max/unit >= 1024 && i < len(names)-1 {
		unit *= 1024
		i++
	}
	return unit, names[i]
}

// niceTicks returns ~n round tick values covering (0, max].
func niceTicks(max float64, n int) []float64 {
	raw := max / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	step := mag
	for _, m := range []float64{1, 2, 2.5, 5, 10} {
		if m*mag >= raw {
			step = m * mag
			break
		}
	}
	var ticks []float64
	for v := step; v <= max*1.0001; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(math.Round(v*100)/100, 'f', -1, 64)
}

func esc(s string) string { return html.EscapeString(s) }

// styleCSS holds the document styles: surfaces, text tokens and series
// colors as CSS custom properties, with a selected dark mode (its own
// palette steps, not an automatic flip).
const styleCSS = `:root{
  --bg:#fcfcfb; --text-1:#0b0b0b; --text-2:#52514e;
  --grid:#e7e6e2; --axis:#b5b4ae;
  --s1:#2a78d6; --s2:#eb6834; --s3:#1baf7a;
}
@media (prefers-color-scheme: dark){:root{
  --bg:#1a1a19; --text-1:#ffffff; --text-2:#c3c2b7;
  --grid:#33322f; --axis:#55544e;
  --s1:#3987e5; --s2:#d95926; --s3:#199e70;
}}
body{background:var(--bg);color:var(--text-1);
  font:14px/1.45 system-ui,-apple-system,sans-serif;
  max-width:960px;margin:2rem auto;padding:0 1rem}
h1{font-size:1.3rem;margin-bottom:.2rem}
.sub{color:var(--text-2);margin-top:0}
.facts{display:flex;flex-wrap:wrap;gap:.4rem 1.6rem;margin:1rem 0}
.facts dt{color:var(--text-2);font-size:.8rem;text-transform:uppercase;letter-spacing:.04em}
.facts dd{margin:0;font-variant-numeric:tabular-nums}
figure{margin:1.6rem 0 0}
figcaption{margin-bottom:.3rem}
figcaption .note{color:var(--text-2);margin-left:.5rem}
.legend{display:flex;gap:1.2rem;color:var(--text-2);font-size:.85rem;margin:.2rem 0}
.legend i{display:inline-block;width:10px;height:10px;border-radius:2px;margin-right:.35rem}
svg{width:100%;height:auto;display:block}
svg text{font:11px system-ui,sans-serif}
.grid{stroke:var(--grid);stroke-width:1}
.axis{stroke:var(--axis);stroke-width:1}
.tick{fill:var(--text-2)}
.line{fill:none;stroke-width:2;stroke-linejoin:round}
.hw{stroke:var(--text-2);stroke-width:1.5;stroke-dasharray:6 4}
.hwlabel,.dlabel{fill:var(--text-2)}
.mark{stroke:var(--bg);stroke-width:2}
.hit{fill:transparent}
.hit:hover{fill:var(--text-1);fill-opacity:.05}
.lspan:hover,.lgap:hover{stroke:var(--text-1);stroke-width:1}
.ltext{fill:#fff;font-size:10px;pointer-events:none}
details{margin:2rem 0}
summary{color:var(--text-2);cursor:pointer}
table{border-collapse:collapse;margin-top:.6rem;font-variant-numeric:tabular-nums}
th,td{text-align:left;padding:.25rem .9rem .25rem 0;border-bottom:1px solid var(--grid)}
th{color:var(--text-2);font-weight:500}
`
