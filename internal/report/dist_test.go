package report

import (
	"math"
	"strings"
	"testing"

	"splitcnn/internal/trace"
)

// evt builds one exported stitched span in ExportStitched's event
// shape: times in ms on the trace clock, args carrying the request ID
// and parent span name.
func evt(proc, name, parent, req string, startMs, endMs float64) trace.Event {
	args := map[string]any{"request": req}
	if parent != "" {
		args["parent"] = parent
	}
	return trace.Event{
		Name: name, Cat: proc, Ph: "X",
		TS: startMs * 1e3, Dur: (endMs - startMs) * 1e3,
		Args: args,
	}
}

// gangEvents is a well-formed 2-shard request: router phases partition
// [0, 100ms] except one idle gap at [95, 96].
func gangEvents(req string) []trace.Event {
	return []trace.Event{
		evt("router", "request", "", req, 0, 100),
		evt("router", "admit", "request", req, 0, 1),
		evt("router", "scatter_gather", "request", req, 1, 80),
		evt("router", "gather", "request", req, 80, 85),
		evt("router", "tail", "request", req, 85, 95),
		evt("router", "respond", "request", req, 96, 100),
		evt("shard0 w0", "shard_eval", "scatter_gather", req, 2, 78),
		evt("shard0 w0", "stage:conv1", "shard_eval", req, 2, 40),
		evt("shard0 w0", "halo_wait:s1", "shard_eval", req, 40, 45),
		evt("shard0 w0", "stage:conv2", "shard_eval", req, 45, 78),
		evt("shard1 w1", "shard_eval", "scatter_gather", req, 2, 70),
		evt("shard1 w1", "halo_serve:s1", "scatter_gather", req, 41, 42),
	}
}

func TestDistReportCriticalPathIdentity(t *testing.T) {
	d, sum, err := DistReport("gang timeline", gangEvents("req-1"), "req-1")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sum.RequestSeconds, 0.1; math.Abs(got-want) > 1e-9 {
		t.Fatalf("request duration = %v, want %v", got, want)
	}
	// The router lane is a gap-free decomposition: plotted == measured.
	if err := sum.Verify(); err != nil {
		t.Fatal(err)
	}
	if sum.Processes != 3 || sum.Spans != len(gangEvents("req-1")) {
		t.Fatalf("summary = %+v", sum)
	}

	lanes := d.Charts[0].Lanes
	// router + shard0 forward + shard0 halo + shard1 forward + shard1 halo.
	if len(lanes) != 5 {
		names := make([]string, len(lanes))
		for i, l := range lanes {
			names[i] = l.Name
		}
		t.Fatalf("got %d lanes: %v", len(lanes), names)
	}
	if lanes[0].Name != "router" {
		t.Fatalf("first lane = %q, want router", lanes[0].Name)
	}
	idle := 0
	for _, s := range lanes[0].Spans {
		if s.Series < 0 {
			idle++
		}
	}
	if idle != 1 {
		t.Fatalf("router lane has %d idle fillers, want 1 (the [95,96] gap)", idle)
	}

	// The page must actually render, with one rect per lane span.
	var b strings.Builder
	if err := Render(&b, d); err != nil {
		t.Fatal(err)
	}
	html := b.String()
	spans := 0
	for _, l := range lanes {
		spans += len(l.Spans)
	}
	if got := strings.Count(html, "<rect class=\"lspan\"") + strings.Count(html, "<rect class=\"lgap\""); got != spans {
		t.Fatalf("rendered %d lane rects, want %d", got, spans)
	}
	if !strings.Contains(html, "shard1 w1 · halo") {
		t.Fatal("halo lane label missing from render")
	}
}

// Overlapping router phases mean the plotted critical path exceeds the
// request span — the self-verification must refuse the page.
func TestDistReportDetectsOverlap(t *testing.T) {
	events := gangEvents("req-1")
	for i := range events {
		if events[i].Name == "gather" {
			events[i].TS = 70 * 1e3 // now overlaps scatter_gather [1,80]
			events[i].Dur = 15 * 1e3
		}
	}
	_, sum, err := DistReport("t", events, "req-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := sum.Verify(); err == nil {
		t.Fatal("overlapping phases passed critical-path verification")
	}
}

func TestDistReportPicksBusiestRequest(t *testing.T) {
	events := append(gangEvents("req-big"), evt("router", "request", "", "req-small", 0, 1))
	_, sum, err := DistReport("t", events, "")
	if err != nil {
		t.Fatal(err)
	}
	if sum.Request != "req-big" {
		t.Fatalf("picked %q, want req-big", sum.Request)
	}
	if ids := DistRequests(events); len(ids) != 2 || ids[0] != "req-big" {
		t.Fatalf("DistRequests = %v", ids)
	}
}

func TestDistReportErrors(t *testing.T) {
	if _, _, err := DistReport("t", nil, ""); err == nil {
		t.Fatal("empty trace accepted")
	}
	orphans := []trace.Event{evt("router", "respond", "request", "r", 0, 1)}
	if _, _, err := DistReport("t", orphans, "r"); err == nil {
		t.Fatal("trace without a root request span accepted")
	}
}
