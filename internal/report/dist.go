package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"splitcnn/internal/trace"
)

// DistReport renders one stitched distributed request — the timeline
// /tracez exports after cross-process span harvesting — as a gantt
// page: the router's critical-path lane on top (its request span
// decomposed into admit → scatter_gather → gather → tail → respond,
// idle gaps shown explicitly), then one forward lane and one halo lane
// per shard process.
//
// Like the memory reports, the page self-verifies: the router lane is
// a gap-free decomposition of the request span, so the summed plotted
// segments must equal the measured request duration. The two are
// returned in the summary and the report subcommand refuses to write a
// page where they disagree beyond Chrome-event microsecond rounding —
// a mismatch means the harvested spans overlap or escape the request
// window, i.e. the timeline lies.

// distSpan is one stitched span parsed back out of its exported Chrome
// trace event (ExportStitched's args contract: "request", "parent",
// "clock_unc_us"). Times are seconds relative to the request root.
type distSpan struct {
	Process, Name, Parent string
	Start, End            float64
	UncUs                 float64
}

// DistSummary carries the self-verification quantities of one report.
type DistSummary struct {
	Request   string
	Processes int
	Spans     int
	// PlottedSeconds sums the router critical-path lane's segments
	// (request children plus explicit idle fillers); RequestSeconds is
	// the measured request span. They are the same quantity computed
	// two ways.
	PlottedSeconds float64
	RequestSeconds float64
}

// Verify checks the critical-path identity. Chrome events carry
// microsecond floats, so equality holds only to that grain.
func (s DistSummary) Verify() error {
	if d := math.Abs(s.PlottedSeconds - s.RequestSeconds); d > 2e-6 {
		return fmt.Errorf("report: plotted critical path %.9fs != measured request span %.9fs (off by %v)",
			s.PlottedSeconds, s.RequestSeconds, HumanSeconds(d))
	}
	return nil
}

// DistRequests lists the request IDs present in a trace export, most
// spans first (fully stitched requests sort ahead of router-only ones).
func DistRequests(events []trace.Event) []string {
	count := map[string]int{}
	for _, e := range events {
		if id, _ := e.Args["request"].(string); id != "" {
			count[id]++
		}
	}
	ids := make([]string, 0, len(count))
	for id := range count {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if count[ids[i]] != count[ids[j]] {
			return count[ids[i]] > count[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}

// DistReport builds the gang-timeline report for one request. An empty
// reqID picks the request with the most spans in the export.
func DistReport(title string, events []trace.Event, reqID string) (*Data, DistSummary, error) {
	if reqID == "" {
		ids := DistRequests(events)
		if len(ids) == 0 {
			return nil, DistSummary{}, fmt.Errorf("report: no request-tagged spans in the trace")
		}
		reqID = ids[0]
	}

	spans, root, err := parseDistSpans(events, reqID)
	if err != nil {
		return nil, DistSummary{}, err
	}

	routerLane, plotted := criticalPathLane(spans, root)
	lanes := []Lane{{Name: root.Process, Spans: routerLane}}
	lanes = append(lanes, shardLanes(spans, root.Process)...)

	sum := DistSummary{
		Request:        reqID,
		Spans:          len(spans),
		PlottedSeconds: plotted,
		RequestSeconds: root.End - root.Start,
	}
	procs := map[string]bool{}
	var maxUnc float64
	for _, s := range spans {
		procs[s.Process] = true
		maxUnc = math.Max(maxUnc, s.UncUs)
	}
	sum.Processes = len(procs)

	d := &Data{
		Title: title,
		Subtitle: fmt.Sprintf("request %s · %d processes · %d spans · %s end to end",
			reqID, sum.Processes, sum.Spans, HumanSeconds(sum.RequestSeconds)),
		Facts: []KV{
			{"request", reqID},
			{"duration", HumanSeconds(sum.RequestSeconds)},
			{"critical path (plotted)", HumanSeconds(sum.PlottedSeconds)},
			{"processes", fmt.Sprint(sum.Processes)},
			{"spans", fmt.Sprint(sum.Spans)},
			{"max clock uncertainty", HumanSeconds(maxUnc / 1e6)},
		},
		Charts: []Chart{{
			Title: "gang timeline",
			Note:  "router critical path on top; skew-corrected shard forward and halo lanes below",
			Lanes: lanes,
		}},
	}

	table := &Table{
		Caption: "stitched spans",
		Header:  []string{"process", "span", "parent", "start", "end", "duration"},
	}
	ordered := append([]distSpan(nil), spans...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Start < ordered[j].Start })
	for _, s := range ordered {
		table.Rows = append(table.Rows, []string{
			s.Process, s.Name, s.Parent,
			HumanSeconds(s.Start), HumanSeconds(s.End), HumanSeconds(s.End - s.Start),
		})
	}
	d.Table = table
	return d, sum, nil
}

// parseDistSpans filters the export to one request, finds its root
// (the parentless "request" span), and rebases every span to seconds
// from the root's start.
func parseDistSpans(events []trace.Event, reqID string) ([]distSpan, distSpan, error) {
	var spans []distSpan
	rootIdx := -1
	for _, e := range events {
		if id, _ := e.Args["request"].(string); id != reqID {
			continue
		}
		s := distSpan{
			Process: e.Cat,
			Name:    e.Name,
			Start:   e.TS / 1e6,
			End:     (e.TS + e.Dur) / 1e6,
		}
		if p, ok := e.Args["parent"].(string); ok {
			s.Parent = p
		}
		if u, ok := e.Args["clock_unc_us"].(float64); ok {
			s.UncUs = u
		}
		if s.Name == "request" && s.Parent == "" {
			if rootIdx >= 0 {
				return nil, distSpan{}, fmt.Errorf("report: request %s has two root spans", reqID)
			}
			rootIdx = len(spans)
		}
		spans = append(spans, s)
	}
	if len(spans) == 0 {
		return nil, distSpan{}, fmt.Errorf("report: no spans for request %q", reqID)
	}
	if rootIdx < 0 {
		return nil, distSpan{}, fmt.Errorf("report: request %q has no root request span", reqID)
	}
	root := spans[rootIdx]
	t0 := root.Start
	for i := range spans {
		spans[i].Start -= t0
		spans[i].End -= t0
	}
	root.Start, root.End = 0, root.End-t0
	return spans, root, nil
}

// criticalPathLane decomposes the request span into the router's child
// phases plus explicit idle fillers, returning the lane and the summed
// plotted length. When the children are disjoint and inside the request
// window — the only physically sensible shape — the sum equals the
// request duration exactly; overlapping or escaping children inflate it
// and fail DistSummary.Verify.
func criticalPathLane(spans []distSpan, root distSpan) ([]LaneSpan, float64) {
	var kids []distSpan
	for _, s := range spans {
		if s.Process == root.Process && s.Parent == root.Name {
			kids = append(kids, s)
		}
	}
	sort.SliceStable(kids, func(i, j int) bool { return kids[i].Start < kids[j].Start })

	var lane []LaneSpan
	plotted := 0.0
	cursor := root.Start
	add := func(s LaneSpan) {
		lane = append(lane, s)
		plotted += s.End - s.Start
	}
	for _, k := range kids {
		if k.Start > cursor {
			add(LaneSpan{Start: cursor, End: k.Start, Label: "idle", Series: -1})
		}
		series := 0
		if k.Name == "scatter_gather" {
			series = 1
		}
		add(LaneSpan{Start: k.Start, End: k.End, Label: k.Name, Series: series})
		cursor = math.Max(cursor, k.End)
	}
	if cursor < root.End {
		add(LaneSpan{Start: cursor, End: root.End, Label: "idle", Series: -1})
	}
	return lane, plotted
}

// shardLanes builds one forward lane (shard_eval under its stage spans)
// and one halo lane (waits and serves) per non-router process.
func shardLanes(spans []distSpan, routerProc string) []Lane {
	byProc := map[string][]distSpan{}
	var procs []string
	for _, s := range spans {
		if s.Process == routerProc {
			continue
		}
		if _, ok := byProc[s.Process]; !ok {
			procs = append(procs, s.Process)
		}
		byProc[s.Process] = append(byProc[s.Process], s)
	}
	sort.Strings(procs)

	var lanes []Lane
	for _, proc := range procs {
		var fwd, halo []LaneSpan
		for _, s := range byProc[proc] {
			switch {
			case s.Name == "shard_eval":
				// Background block drawn first; stages layer on top.
				fwd = append([]LaneSpan{{Start: s.Start, End: s.End, Label: s.Name, Series: -1}}, fwd...)
			case strings.HasPrefix(s.Name, "stage:"):
				fwd = append(fwd, LaneSpan{Start: s.Start, End: s.End,
					Label: strings.TrimPrefix(s.Name, "stage:"), Series: 0})
			case strings.HasPrefix(s.Name, "halo_wait:"):
				halo = append(halo, LaneSpan{Start: s.Start, End: s.End, Label: s.Name, Series: 1})
			case strings.HasPrefix(s.Name, "halo_serve:"):
				halo = append(halo, LaneSpan{Start: s.Start, End: s.End, Label: s.Name, Series: 2})
			}
		}
		if len(fwd) > 0 {
			lanes = append(lanes, Lane{Name: proc, Spans: fwd})
		}
		if len(halo) > 0 {
			lanes = append(lanes, Lane{Name: proc + " · halo", Spans: halo})
		}
	}
	return lanes
}
