package profile_test

import (
	"testing"

	"splitcnn/internal/costmodel"
	"splitcnn/internal/hmms"
	"splitcnn/internal/models"
	"splitcnn/internal/profile"
	"splitcnn/internal/sim"
)

func TestMeasuredProgramEndToEnd(t *testing.T) {
	m := models.VGG19CIFAR(4, models.Config{WidthDiv: 16})
	opt := profile.DefaultOptions()
	opt.Repeats = 3 // keep the test fast; the paper uses 20
	prog, err := profile.BuildProgram(m.Graph, costmodel.P100(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range prog.Ops {
		if op.Time <= 0 {
			t.Fatalf("op %s has non-positive measured time %v", op.Name, op.Time)
		}
	}
	// The measured program drives the same planner and simulator.
	assign := hmms.AssignStorage(prog, hmms.DefaultStorageOpts())
	plan, err := hmms.PlanOffload(prog, assign, prog.TheoreticalOffloadLimit())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(prog, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 {
		t.Fatal("empty simulation")
	}
	if res.ForwardStall > prog.ForwardTime()*0.01 {
		t.Fatalf("measured-time plan stalls the forward pass by %v s", res.ForwardStall)
	}
}

// TestMeasuredTimesAreOrdered: a big convolution must measure slower
// than a tiny ReLU — a sanity check that the timer measures anything.
func TestMeasuredTimesAreOrdered(t *testing.T) {
	m := models.VGG19CIFAR(4, models.Config{WidthDiv: 8})
	opt := profile.DefaultOptions()
	opt.Repeats = 3
	prog, err := profile.BuildProgram(m.Graph, costmodel.P100(), opt)
	if err != nil {
		t.Fatal(err)
	}
	var convMax, reluMin float64
	reluMin = 1e18
	for _, op := range prog.ForwardOps() {
		switch op.Kind {
		case "conv":
			if op.Time > convMax {
				convMax = op.Time
			}
		case "relu":
			if op.Time < reluMin {
				reluMin = op.Time
			}
		}
	}
	if convMax <= reluMin {
		t.Fatalf("largest conv (%.3g s) not slower than smallest relu (%.3g s)", convMax, reluMin)
	}
}

func TestScaleAppliesLinearly(t *testing.T) {
	m := models.VGG19CIFAR(2, models.Config{WidthDiv: 32})
	a := profile.DefaultOptions()
	a.Repeats = 2
	progA, err := profile.BuildProgram(m.Graph, costmodel.P100(), a)
	if err != nil {
		t.Fatal(err)
	}
	b := a
	b.Scale = 0.001
	progB, err := profile.BuildProgram(m.Graph, costmodel.P100(), b)
	if err != nil {
		t.Fatal(err)
	}
	// Not exact (separate measurements), but three orders of magnitude
	// of scale must dominate measurement noise in the totals.
	if progB.ComputeTime() >= progA.ComputeTime()/10 {
		t.Fatalf("scale had no effect: %v vs %v", progB.ComputeTime(), progA.ComputeTime())
	}
}
