// Package profile implements the measured counterpart of the cost-model
// profiling stage: §4.3's methodology of timing each layer as "the total
// execution time of 20 repeated executions ... divided by 20", using
// Go's monotonic clock in place of C++'s high_resolution_clock. The
// measured times drive the same HMMS planner via hmms.BuildProgramTimed.
//
// Measuring full-size networks is what the paper does on a P100; on a
// CPU this is practical for the scaled-down models, and a Scale factor
// maps CPU milliseconds to accelerator-class times so the planner's
// capacity balances stay meaningful.
package profile

import (
	"math/rand"
	"time"

	"splitcnn/internal/costmodel"
	"splitcnn/internal/graph"
	"splitcnn/internal/hmms"
	"splitcnn/internal/tensor"
)

// Options configures the measured profiler.
type Options struct {
	// Repeats is the number of timed executions per op (the paper uses
	// 20).
	Repeats int
	// Scale multiplies measured CPU seconds to approximate the target
	// device (e.g. 0.01 for a device ~100x faster than this host);
	// 1 profiles the host itself.
	Scale float64
	// BackwardFactor estimates backward time as a multiple of the
	// measured forward time for parameterized ops (backward kernels are
	// not individually measurable without materializing gradients; 2 is
	// the conventional estimate the cost model also uses).
	BackwardFactor float64
	// Seed feeds the synthetic input generator.
	Seed int64
}

// DefaultOptions mirrors the paper: 20 repeats.
func DefaultOptions() Options {
	return Options{Repeats: 20, Scale: 1, BackwardFactor: 2, Seed: 1}
}

// Timer returns an hmms.Timer that measures each op by running its real
// Forward implementation Repeats times on synthetic inputs.
func Timer(opt Options) hmms.Timer {
	if opt.Repeats <= 0 {
		opt.Repeats = 20
	}
	if opt.Scale <= 0 {
		opt.Scale = 1
	}
	if opt.BackwardFactor <= 0 {
		opt.BackwardFactor = 2
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	return func(n *graph.Node, in []tensor.Shape) (float64, float64) {
		ins := make([]*tensor.Tensor, len(in))
		for i, s := range in {
			t := tensor.New(s...)
			// Labels and class-index-like rank-1 inputs must stay valid
			// class indices; everything else gets unit Gaussians.
			if len(s) == 1 && n.Op.Kind() == "softmax_xent" && i == 1 {
				t.Zero()
			} else {
				t.RandNormal(rng, 0.5)
			}
			ins[i] = t
		}
		// Warm-up once (allocation paths, caches), then time Repeats
		// executions and divide — §4.3 verbatim.
		n.Op.Forward(ins)
		start := time.Now()
		for r := 0; r < opt.Repeats; r++ {
			n.Op.Forward(ins)
		}
		fwd := time.Since(start).Seconds() / float64(opt.Repeats) * opt.Scale
		factor := 1.0
		switch n.Op.Kind() {
		case "conv", "linear":
			factor = opt.BackwardFactor
		case "batchnorm", "bnrelu":
			factor = 1.5
		}
		return fwd, fwd * factor
	}
}

// BuildProgram builds an hmms.Program with measured op times. The
// device spec still supplies the link bandwidth and capacity the
// planner needs.
func BuildProgram(g *graph.Graph, dev costmodel.DeviceSpec, opt Options) (*hmms.Program, error) {
	return hmms.BuildProgramTimed(g, dev, Timer(opt))
}
