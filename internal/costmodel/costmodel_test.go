package costmodel_test

import (
	"testing"

	"splitcnn/internal/costmodel"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
)

func TestDeviceSpecs(t *testing.T) {
	p100 := costmodel.P100()
	v100 := costmodel.V100()
	if p100.LinkBandwidth != 34.1e9 {
		t.Fatalf("P100 NVLink bandwidth %v, paper measures 34.1 GB/s", p100.LinkBandwidth)
	}
	if p100.MemCapacity != 16<<30 || v100.MemCapacity != 32<<30 {
		t.Fatal("memory capacities wrong")
	}
	if v100.PeakFLOPS <= p100.PeakFLOPS {
		t.Fatal("V100 should be faster")
	}
}

func TestCopyTime(t *testing.T) {
	d := costmodel.P100()
	if got := d.CopyTime(34_100_000_000); got < 0.999 || got > 1.001 {
		t.Fatalf("copying one bandwidth-second of bytes took %v s", got)
	}
}

// TestConvComputeBoundPoolMemoryBound is the Figure 1 mechanism: a big
// convolution has far more execution time per stashed byte than a
// pooling or BN layer.
func TestConvComputeBoundPoolMemoryBound(t *testing.T) {
	d := costmodel.P100()
	x := tensor.Shape{32, 256, 56, 56}
	w := tensor.Shape{256, 256, 3, 3}
	conv := nn.NewConv(3, 1, 1)
	conv.HasBias = false
	convOut, err := conv.OutShape([]tensor.Shape{x, w})
	if err != nil {
		t.Fatal(err)
	}
	convTime := d.ForwardTime(conv, []tensor.Shape{x, w}, convOut)

	pool := nn.NewMaxPool(2, 2)
	poolOut, err := pool.OutShape([]tensor.Shape{x})
	if err != nil {
		t.Fatal(err)
	}
	poolTime := d.ForwardTime(pool, []tensor.Shape{x}, poolOut)

	// Seconds per byte of input: conv must dwarf pool.
	convRate := convTime / float64(x.Bytes())
	poolRate := poolTime / float64(x.Bytes())
	if convRate < 5*poolRate {
		t.Fatalf("conv %.3g s/B vs pool %.3g s/B: pooling should be far more memory-bound", convRate, poolRate)
	}
	// The pool can never offload its own input in its own time.
	if float64(x.Bytes()) < poolTime*d.LinkBandwidth {
		t.Fatal("pool had time to offload its input — contradicts Figure 1")
	}
}

// TestWinogradAppliesTo3x3Stride1 verifies the fast-convolution derate.
func TestWinogradAppliesTo3x3Stride1(t *testing.T) {
	d := costmodel.P100()
	x := tensor.Shape{8, 128, 56, 56}
	w3 := tensor.Shape{128, 128, 3, 3}
	c3 := nn.NewConv(3, 1, 1)
	c3.HasBias = false
	out3, _ := c3.OutShape([]tensor.Shape{x, w3})
	t3 := d.ForwardTime(c3, []tensor.Shape{x, w3}, out3)

	// Same FLOPs via a strided conv (no Winograd): 3x3 stride 2 has 1/4
	// the output elements, so compare per-FLOP cost instead.
	c3s2 := &nn.Conv{Params: tensor.ConvParams{KH: 3, KW: 3, SH: 2, SW: 2, Pad: tensor.Symmetric(1)}}
	out32, _ := c3s2.OutShape([]tensor.Shape{x, w3})
	t32 := d.ForwardTime(c3s2, []tensor.Shape{x, w3}, out32)

	perFlop3 := t3 / float64(c3.FLOPs([]tensor.Shape{x, w3}, out3))
	perFlop32 := t32 / float64(c3s2.FLOPs([]tensor.Shape{x, w3}, out32))
	if perFlop3 >= perFlop32 {
		t.Fatalf("3x3/1 conv should be cheaper per FLOP (Winograd): %.3g vs %.3g", perFlop3, perFlop32)
	}
}

func TestBackwardCostsMoreThanForward(t *testing.T) {
	d := costmodel.P100()
	x := tensor.Shape{8, 64, 28, 28}
	w := tensor.Shape{64, 64, 3, 3}
	conv := nn.NewConv(3, 1, 1)
	conv.HasBias = false
	out, _ := conv.OutShape([]tensor.Shape{x, w})
	if d.BackwardTime(conv, []tensor.Shape{x, w}, out) <= d.ForwardTime(conv, []tensor.Shape{x, w}, out) {
		t.Fatal("conv backward should cost more than forward")
	}
}
