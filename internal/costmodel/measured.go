package costmodel

// Measured per-op cost overrides: the autotuner's feedback channel into
// the planner. The paper's §4.3 profiling stage measures each layer
// with high_resolution_clock; this is the same idea keyed by workload
// signature, so a time measured once (at tune or warmup) replaces the
// roofline guess everywhere the planner, simulator, or report pages
// consume op times — the loop the PR-5 drift gauges were built to close.

import (
	"sync"

	"splitcnn/internal/tensor"
)

// ConvSignature identifies a convolution workload precisely enough that
// a measured time (or a tuned algorithm choice) transfers: the full
// window geometry plus the concrete input shape and output channel
// count. Batch size is part of the signature via N. It is a comparable
// struct, so it serves directly as a map key — the autotuner uses it as
// its plan key too.
type ConvSignature struct {
	KH, KW, SH, SW         int
	PadT, PadB, PadL, PadR int
	N, C, H, W             int
	Cout                   int
}

// SignatureOf builds the signature of one convolution call site.
func SignatureOf(p tensor.ConvParams, x tensor.Shape, cout int) ConvSignature {
	return ConvSignature{
		KH: p.KH, KW: p.KW, SH: p.SH, SW: p.SW,
		PadT: p.Pad.Top, PadB: p.Pad.Bottom, PadL: p.Pad.Left, PadR: p.Pad.Right,
		N: x.N(), C: x.C(), H: x.H(), W: x.W(),
		Cout: cout,
	}
}

// MeasuredOverride is a concurrency-safe registry of measured forward
// times by workload signature. A nil *MeasuredOverride is valid and
// empty.
type MeasuredOverride struct {
	mu  sync.RWMutex
	fwd map[ConvSignature]float64
}

// NewMeasuredOverride returns an empty registry.
func NewMeasuredOverride() *MeasuredOverride {
	return &MeasuredOverride{fwd: make(map[ConvSignature]float64)}
}

// Set records a measured forward time (seconds) for sig.
func (o *MeasuredOverride) Set(sig ConvSignature, seconds float64) {
	if o == nil || seconds <= 0 {
		return
	}
	o.mu.Lock()
	o.fwd[sig] = seconds
	o.mu.Unlock()
}

// Get returns the measured forward time for sig, if any.
func (o *MeasuredOverride) Get(sig ConvSignature) (float64, bool) {
	if o == nil {
		return 0, false
	}
	o.mu.RLock()
	s, ok := o.fwd[sig]
	o.mu.RUnlock()
	return s, ok
}

// Len returns the number of recorded signatures.
func (o *MeasuredOverride) Len() int {
	if o == nil {
		return 0
	}
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.fwd)
}
