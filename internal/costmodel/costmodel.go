// Package costmodel provides the analytical performance model standing
// in for the paper's profiling stage (§4.3). The paper measures each
// layer's execution time with high_resolution_clock on a P100; this
// repository derives it from a roofline model over the op's declared
// FLOPs and bytes touched. The planner only consumes (time, size,
// bandwidth) triples, so the code paths downstream are identical; what
// the roofline preserves is the compute-to-memory-traffic ratio that
// makes convolutions offload-friendly and pooling/BN layers not —
// the central observation of Figure 1.
package costmodel

import (
	"splitcnn/internal/graph"
	"splitcnn/internal/tensor"
)

// DeviceSpec describes the accelerator and its host link.
type DeviceSpec struct {
	Name string
	// PeakFLOPS is the peak single-precision throughput (FLOP/s).
	PeakFLOPS float64
	// Efficiency derates PeakFLOPS for realized kernels (cuDNN
	// convolutions typically achieve 50-70% of peak).
	Efficiency float64
	// MemBandwidth is device-memory (HBM) bandwidth in bytes/s.
	MemBandwidth float64
	// MemEfficiency derates MemBandwidth for realized kernels.
	MemEfficiency float64
	// LinkBandwidth is the host link (NVLink) bandwidth in bytes/s; the
	// paper measures 34.1 GB/s on NVLink 1.0.
	LinkBandwidth float64
	// KernelOverhead is the fixed per-kernel launch cost in seconds.
	KernelOverhead float64
	// MemCapacity is the device memory size in bytes.
	MemCapacity int64
}

// P100 returns a spec matching the paper's testbed: an NVIDIA Tesla
// P100 (16 GB) attached over NVLink 1.0 in an IBM Power System S822LC.
func P100() DeviceSpec {
	return DeviceSpec{
		Name:           "P100-NVLink1",
		PeakFLOPS:      9.3e12,
		Efficiency:     0.75,
		MemBandwidth:   732e9,
		MemEfficiency:  0.75,
		LinkBandwidth:  34.1e9,
		KernelOverhead: 5e-6,
		MemCapacity:    16 << 30,
	}
}

// V100 returns a spec for the paper's "latest GPU" reference point (an
// NVIDIA Tesla V100 32 GB over NVLink 2.0).
func V100() DeviceSpec {
	return DeviceSpec{
		Name:           "V100-NVLink2",
		PeakFLOPS:      15.7e12,
		Efficiency:     0.75,
		MemBandwidth:   900e9,
		MemEfficiency:  0.75,
		LinkBandwidth:  68e9,
		KernelOverhead: 5e-6,
		MemCapacity:    32 << 30,
	}
}

// winogradSpeedup is the arithmetic reduction of the Winograd
// F(2x2, 3x3) fast-convolution algorithm cuDNN applies to 3x3 stride-1
// convolutions. §2.2.1 singles this out as a driver of the memory
// bottleneck: layer compute time shrinks while intermediate-result
// volume does not, leaving less time to offload.
const winogradSpeedup = 2.25

// effectiveFLOPs derates the op's FLOP count for fast-convolution
// algorithms.
func effectiveFLOPs(op graph.Op, in []tensor.Shape, out tensor.Shape) float64 {
	f := float64(op.FLOPs(in, out))
	if c, ok := op.(interface{ Window() tensor.ConvParams }); ok && op.Kind() == "conv" {
		if p := c.Window(); p.KH == 3 && p.KW == 3 && p.SH == 1 && p.SW == 1 {
			f /= winogradSpeedup
		}
	}
	return f
}

// CopyTime returns the host-link transfer time for n bytes.
func (d DeviceSpec) CopyTime(n int64) float64 {
	return float64(n) / d.LinkBandwidth
}

// opBytes sums the device-memory traffic of one forward execution:
// every input read plus the output written. Convolution workspace is
// deliberately not counted as traffic — cuDNN's implicit-GEMM and
// Winograd kernels stage through on-chip memory rather than streaming a
// materialized im2col buffer; workspace still counts as *capacity* via
// graph.Op.WorkspaceBytes. Batch normalization makes an extra reduction
// pass over its input (statistics then normalization).
func opBytes(op graph.Op, in []tensor.Shape, out tensor.Shape) int64 {
	var b int64
	for _, s := range in {
		b += s.Bytes()
	}
	b += out.Bytes()
	if op.Kind() == "batchnorm" && len(in) > 0 {
		b += in[0].Bytes()
	}
	return b
}

// ForwardTime estimates the forward execution time of op: the roofline
// max of compute time and memory time plus launch overhead.
func (d DeviceSpec) ForwardTime(op graph.Op, in []tensor.Shape, out tensor.Shape) float64 {
	compute := effectiveFLOPs(op, in, out) / (d.PeakFLOPS * d.Efficiency)
	mem := float64(opBytes(op, in, out)) / (d.MemBandwidth * d.MemEfficiency)
	return max(compute, mem) + d.KernelOverhead
}

// BackwardTime estimates the backward execution time. Parameterized ops
// (convolution, linear) run two GEMM-shaped kernels backward (data grad
// and weight grad), roughly doubling FLOPs and traffic; other ops move
// about the same data as forward.
func (d DeviceSpec) BackwardTime(op graph.Op, in []tensor.Shape, out tensor.Shape) float64 {
	factor := 1.0
	switch op.Kind() {
	case "conv", "linear":
		factor = 2.0
	case "batchnorm":
		factor = 1.5 // extra reduction passes
	}
	compute := factor * effectiveFLOPs(op, in, out) / (d.PeakFLOPS * d.Efficiency)
	mem := factor * float64(opBytes(op, in, out)) / (d.MemBandwidth * d.MemEfficiency)
	return max(compute, mem) + d.KernelOverhead
}
