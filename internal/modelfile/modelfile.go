// Package modelfile parses a small text format describing sequential
// CNNs, so the CLI (and downstream users) can run the Split-CNN + HMMS
// pipeline on custom architectures without writing Go. The format is
// line-oriented; '#' starts a comment. Example:
//
//	# a small VGG-ish network
//	input 3 32 32
//	conv 64 k3 s1 p1
//	bn
//	relu
//	conv 64 k3 s1 p1
//	bn
//	relu
//	pool max k2 s2
//	gap            # global average pooling
//	flatten
//	dropout 0.5
//	linear 10
//
// Directives:
//
//	input C H W              input image planes (required first)
//	conv OUT [kK] [sS] [pP]  convolution (defaults k3 s1 p=k/2)
//	pool max|avg [kK] [sS]   pooling (defaults k2 s2)
//	bn                       batch normalization after the previous layer
//	bnrelu                   fused memory-efficient BN + leaky ReLU
//	relu                     rectified linear unit
//	dropout P                dropout with keep probability 1-P
//	gap                      global average pooling
//	flatten                  NCHW -> (N, CHW)
//	linear OUT               fully connected layer
//
// The final linear layer's width is the class count; a softmax
// cross-entropy loss over a "labels" input is attached automatically.
package modelfile

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"splitcnn/internal/graph"
	"splitcnn/internal/models"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
)

// Parse reads a model description and builds its computation graph for
// the given batch size.
func Parse(r io.Reader, batch int) (*models.Model, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("modelfile: batch %d", batch)
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	var g *graph.Graph
	var cur *graph.Node
	var labels *graph.Node
	m := &models.Model{Name: "custom", BNStates: map[string]*nn.BNState{}}
	names := map[string]int{}
	unique := func(kind string) string {
		names[kind]++
		return fmt.Sprintf("%s%d", kind, names[kind])
	}
	fail := func(format string, args ...any) error {
		return fmt.Errorf("modelfile: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}

	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		op, args := fields[0], fields[1:]
		if g == nil && op != "input" {
			return nil, fail("first directive must be 'input C H W'")
		}
		switch op {
		case "input":
			if g != nil {
				return nil, fail("duplicate input directive")
			}
			dims, err := ints(args, 3)
			if err != nil {
				return nil, fail("input: %v", err)
			}
			g = graph.New()
			m.Graph = g
			m.Input = g.Input("image", tensor.Shape{batch, dims[0], dims[1], dims[2]})
			labels = g.Input("labels", tensor.Shape{batch})
			m.Labels = labels
			cur = m.Input
		case "conv":
			if len(args) < 1 {
				return nil, fail("conv: want output channels")
			}
			out, err := strconv.Atoi(args[0])
			if err != nil || out <= 0 {
				return nil, fail("conv: bad channel count %q", args[0])
			}
			k, s, p := 3, 1, -1
			for _, a := range args[1:] {
				v, err := prefixed(a)
				if err != nil {
					return nil, fail("conv: %v", err)
				}
				switch a[0] {
				case 'k':
					k = v
				case 's':
					s = v
				case 'p':
					p = v
				default:
					return nil, fail("conv: unknown option %q", a)
				}
			}
			if k < 1 || s < 1 {
				return nil, fail("conv: kernel and stride must be >= 1")
			}
			if p < 0 {
				p = k / 2
			}
			name := unique("conv")
			w := g.Param(name+".w", tensor.Shape{out, cur.Shape.C(), k, k})
			b := g.Param(name+".b", tensor.Shape{out})
			var node *graph.Node
			if err := catch(func() { node = g.Add(name, nn.NewConv(k, s, p), cur, w, b) }); err != nil {
				return nil, fail("conv: %v", err)
			}
			cur = node
			m.ConvNames = append(m.ConvNames, name)
		case "pool":
			if len(args) < 1 || (args[0] != "max" && args[0] != "avg") {
				return nil, fail("pool: want 'max' or 'avg'")
			}
			k, s := 2, 2
			for _, a := range args[1:] {
				v, err := prefixed(a)
				if err != nil {
					return nil, fail("pool: %v", err)
				}
				switch a[0] {
				case 'k':
					k = v
				case 's':
					s = v
				default:
					return nil, fail("pool: unknown option %q", a)
				}
			}
			if k < 1 || s < 1 {
				return nil, fail("pool: kernel and stride must be >= 1")
			}
			name := unique("pool")
			var opNode graph.Op
			if args[0] == "max" {
				opNode = nn.NewMaxPool(k, s)
			} else {
				opNode = nn.NewAvgPool(k, s)
			}
			var node *graph.Node
			if err := catch(func() { node = g.Add(name, opNode, cur) }); err != nil {
				return nil, fail("pool: %v", err)
			}
			cur = node
		case "bn", "bnrelu":
			if len(cur.Shape) != 4 {
				return nil, fail("%s: needs an NCHW input", op)
			}
			c := cur.Shape.C()
			name := unique(op)
			st := nn.NewBNState(name, c)
			m.BNStates[name] = st
			gamma := g.Param(name+".gamma", tensor.Shape{c})
			beta := g.Param(name+".beta", tensor.Shape{c})
			var opNode graph.Op
			if op == "bn" {
				opNode = nn.NewBatchNorm(st)
			} else {
				opNode = nn.NewBNReLU(st)
			}
			cur = g.Add(name, opNode, cur, gamma, beta)
		case "relu":
			cur = g.Add(unique("relu"), nn.ReLU{}, cur)
		case "dropout":
			if len(args) != 1 {
				return nil, fail("dropout: want probability")
			}
			p, err := strconv.ParseFloat(args[0], 64)
			if err != nil || p < 0 || p >= 1 {
				return nil, fail("dropout: bad probability %q", args[0])
			}
			cur = g.Add(unique("dropout"), &nn.Dropout{P: p, Training: true, Rng: rand.New(rand.NewSource(int64(lineNo)))}, cur)
		case "gap":
			var node *graph.Node
			if err := catch(func() { node = g.Add(unique("gap"), nn.GlobalAvgPool{}, cur) }); err != nil {
				return nil, fail("gap: %v", err)
			}
			cur = node
		case "flatten":
			cur = g.Add(unique("flatten"), nn.Flatten{}, cur)
		case "linear":
			if len(args) != 1 {
				return nil, fail("linear: want output width")
			}
			out, err := strconv.Atoi(args[0])
			if err != nil || out <= 0 {
				return nil, fail("linear: bad width %q", args[0])
			}
			if len(cur.Shape) != 2 {
				return nil, fail("linear: flatten first (input is %v)", cur.Shape)
			}
			name := unique("fc")
			w := g.Param(name+".w", tensor.Shape{out, cur.Shape[1]})
			b := g.Param(name+".b", tensor.Shape{out})
			cur = g.Add(name, nn.Linear{}, cur, w, b)
			m.Classes = out
		default:
			return nil, fail("unknown directive %q", op)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("modelfile: empty description")
	}
	if m.Classes == 0 || len(cur.Shape) != 2 {
		return nil, fmt.Errorf("modelfile: description must end with a linear classifier")
	}
	m.Logits = cur
	m.Loss = g.Add("loss", nn.SoftmaxCrossEntropy{}, cur, labels)
	g.SetOutput(m.Loss)
	return m, nil
}

// ParseString is Parse over a string.
func ParseString(s string, batch int) (*models.Model, error) {
	return Parse(strings.NewReader(s), batch)
}

func ints(args []string, n int) ([]int, error) {
	if len(args) != n {
		return nil, fmt.Errorf("want %d integers, got %d", n, len(args))
	}
	out := make([]int, n)
	for i, a := range args {
		v, err := strconv.Atoi(a)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad value %q", a)
		}
		out[i] = v
	}
	return out, nil
}

// prefixed parses "k3" style options.
func prefixed(a string) (int, error) {
	if len(a) < 2 {
		return 0, fmt.Errorf("bad option %q", a)
	}
	v, err := strconv.Atoi(a[1:])
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad option %q", a)
	}
	return v, nil
}

// catch converts graph-construction panics (shape errors) into errors.
func catch(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	f()
	return nil
}
