package modelfile_test

import (
	"math/rand"
	"strings"
	"testing"

	"splitcnn/internal/core"
	"splitcnn/internal/graph"
	"splitcnn/internal/modelfile"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
)

const sample = `
# a small VGG-ish network
input 3 32 32
conv 16 k3 s1 p1
bn
relu
conv 16
bnrelu
pool max k2 s2
conv 32 k3
relu
pool avg
gap
flatten
linear 10
`

func TestParseSample(t *testing.T) {
	m, err := modelfile.ParseString(sample, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Classes != 10 {
		t.Fatalf("classes %d", m.Classes)
	}
	if len(m.ConvNames) != 3 {
		t.Fatalf("convs %v", m.ConvNames)
	}
	if !m.Input.Shape.Equal(tensor.Shape{4, 3, 32, 32}) {
		t.Fatalf("input %v", m.Input.Shape)
	}
	if !m.Logits.Shape.Equal(tensor.Shape{4, 10}) {
		t.Fatalf("logits %v", m.Logits.Shape)
	}
	// The parsed model must run forward/backward.
	rng := rand.New(rand.NewSource(1))
	store := graph.NewParamStore()
	store.InitFromGraph(m.Graph, rng, nn.KaimingInit)
	ex, err := graph.NewExecutor(m.Graph, store)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(4, 3, 32, 32)
	x.RandNormal(rng, 1)
	labels := tensor.FromSlice([]float32{0, 1, 2, 3}, 4)
	if _, err := ex.Forward(graph.Feeds{"image": x, "labels": labels}); err != nil {
		t.Fatal(err)
	}
	if err := ex.Backward(); err != nil {
		t.Fatal(err)
	}
}

func TestParsedModelSplits(t *testing.T) {
	m, err := modelfile.ParseString(sample, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Split(m.Graph, core.Config{Depth: 1, NH: 2, NW: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.SplitConvs == 0 {
		t.Fatal("nothing split")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"empty", ""},
		{"no input first", "conv 8\n"},
		{"duplicate input", "input 3 8 8\ninput 3 8 8\n"},
		{"bad input dims", "input 3 8\n"},
		{"bad conv channels", "input 3 8 8\nconv zero\n"},
		{"unknown conv option", "input 3 8 8\nconv 8 q7\n"},
		{"bad pool kind", "input 3 8 8\npool median\n"},
		{"bad dropout", "input 3 8 8\ndropout 1.5\n"},
		{"linear before flatten", "input 3 8 8\nlinear 10\n"},
		{"unknown directive", "input 3 8 8\nwarp 9\n"},
		{"no classifier", "input 3 8 8\nconv 8\n"},
		{"shape error", "input 3 8 8\nconv 4 k9 p0\nflatten\nlinear 4\n"},
		{"bn after flatten", "input 3 8 8\nflatten\nbn\n"},
	}
	for _, c := range cases {
		if _, err := modelfile.ParseString(c.src, 2); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "  # leading comment\n\ninput 1 8 8   # trailing\n\tconv 4 k3\nflatten\nlinear 2\n"
	m, err := modelfile.ParseString(src, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Classes != 2 {
		t.Fatalf("classes %d", m.Classes)
	}
}

func TestParseReaderError(t *testing.T) {
	if _, err := modelfile.Parse(strings.NewReader("input 3 8 8\n"), 0); err == nil {
		t.Fatal("zero batch accepted")
	}
}

func TestZeroKernelRejectedNotPanic(t *testing.T) {
	for _, src := range []string{
		"input 3 8 8\nconv 8 k0\nflatten\nlinear 2\n",
		"input 3 8 8\nconv 8 s0\nflatten\nlinear 2\n",
		"input 3 8 8\npool max k0\nflatten\nlinear 2\n",
	} {
		if _, err := modelfile.ParseString(src, 1); err == nil {
			t.Fatalf("accepted: %q", src)
		}
	}
}
