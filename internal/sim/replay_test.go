package sim_test

import (
	"math"
	"testing"

	"splitcnn/internal/costmodel"
	"splitcnn/internal/hmms"
	"splitcnn/internal/models"
	"splitcnn/internal/sim"
)

// TestReplayMatchesAnalyticRun: the discrete-event device replay and the
// analytic simulator must agree on step time for every scheduling method
// — they model the same machine at different granularities.
func TestReplayMatchesAnalyticRun(t *testing.T) {
	for _, build := range []func(int) *models.Model{
		models.VGG19ImageNet, models.ResNet50ImageNet,
	} {
		m := build(32)
		prog, err := hmms.BuildProgram(m.Graph, costmodel.P100())
		if err != nil {
			t.Fatal(err)
		}
		assign := hmms.AssignStorage(prog, hmms.DefaultStorageOpts())
		limit := prog.TheoreticalOffloadLimit()
		plans := []*hmms.OffloadPlan{hmms.PlanNone()}
		if p, err := hmms.PlanLayerWise(prog, assign, limit); err == nil {
			plans = append(plans, p)
		} else {
			t.Fatal(err)
		}
		if p, err := hmms.PlanOffload(prog, assign, limit); err == nil {
			plans = append(plans, p)
		} else {
			t.Fatal(err)
		}
		for _, plan := range plans {
			analytic, err := sim.Run(prog, plan, nil)
			if err != nil {
				t.Fatal(err)
			}
			trace, err := sim.Replay(prog, plan, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(trace.Total-analytic.TotalTime) / analytic.TotalTime; rel > 1e-6 {
				t.Fatalf("%s/%s: device replay %.6f s vs analytic %.6f s (rel %.2g)",
					m.Name, plan.Method, trace.Total, analytic.TotalTime, rel)
			}
		}
	}
}

// TestReplayOccupancyWithinPlannedPools: the time-resolved occupancy of
// the static plan never exceeds the planned pool sizes (first-fit may
// fragment, so pool >= occupancy), and the plan fits the device.
func TestReplayOccupancyWithinPlannedPools(t *testing.T) {
	m := models.VGG19ImageNet(32)
	prog, err := hmms.BuildProgram(m.Graph, costmodel.P100())
	if err != nil {
		t.Fatal(err)
	}
	assign := hmms.AssignStorage(prog, hmms.DefaultStorageOpts())
	plan, err := hmms.PlanOffload(prog, assign, 1)
	if err != nil {
		t.Fatal(err)
	}
	mem := hmms.PlanMemory(prog, assign, plan, hmms.FirstFit)
	trace, err := sim.Replay(prog, plan, mem, costmodel.P100().MemCapacity)
	if err != nil {
		t.Fatal(err)
	}
	if trace.PeakMemory <= 0 {
		t.Fatal("no occupancy recorded")
	}
	if trace.PeakMemory > mem.DeviceBytes() {
		t.Fatalf("occupancy %d exceeds planned pools %d", trace.PeakMemory, mem.DeviceBytes())
	}
}

// TestReplayComputeBusy: with the HMMS plan the compute stream stays
// essentially fully busy; the layer-wise plan leaves it idle during
// stalls.
func TestReplayComputeBusy(t *testing.T) {
	m := models.VGG19ImageNet(32)
	prog, err := hmms.BuildProgram(m.Graph, costmodel.P100())
	if err != nil {
		t.Fatal(err)
	}
	assign := hmms.AssignStorage(prog, hmms.DefaultStorageOpts())
	hm, err := hmms.PlanOffload(prog, assign, 1)
	if err != nil {
		t.Fatal(err)
	}
	lw, err := hmms.PlanLayerWise(prog, assign, 1)
	if err != nil {
		t.Fatal(err)
	}
	ht, err := sim.Replay(prog, hm, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	lt, err := sim.Replay(prog, lw, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ht.ComputeBusy < 0.995 {
		t.Fatalf("HMMS compute busy %.3f, want ~1", ht.ComputeBusy)
	}
	if lt.ComputeBusy >= ht.ComputeBusy {
		t.Fatalf("layer-wise busy %.3f not below HMMS %.3f", lt.ComputeBusy, ht.ComputeBusy)
	}
}
