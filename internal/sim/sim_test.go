package sim_test

import (
	"testing"

	"splitcnn/internal/core"
	"splitcnn/internal/costmodel"
	"splitcnn/internal/hmms"
	"splitcnn/internal/models"
	"splitcnn/internal/sim"
)

func TestBaselineHasNoStall(t *testing.T) {
	m := models.VGG19ImageNet(8)
	res, prog, mem, err := sim.PlanAndRun(m.Graph, costmodel.P100(), sim.MethodNone, -1)
	if err != nil {
		t.Fatal(err)
	}
	if res.StallTime != 0 {
		t.Fatalf("baseline stall %v", res.StallTime)
	}
	if res.TotalTime != res.ComputeTime {
		t.Fatalf("baseline total %v != compute %v", res.TotalTime, res.ComputeTime)
	}
	if res.TotalTime != prog.ComputeTime() {
		t.Fatal("result/program compute time mismatch")
	}
	if mem.PoolBytes[hmms.PoolHost] != 0 {
		t.Fatal("baseline uses host memory")
	}
	if res.Throughput(8) <= 0 {
		t.Fatal("throughput must be positive")
	}
}

// TestFigure8Ordering is the §6.2 headline: baseline <= HMMS << layer-
// wise in step time, with HMMS degradation under a few percent and
// layer-wise degradation several times larger, for both VGG-19 and
// ResNet-50.
func TestFigure8Ordering(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    *models.Model
	}{
		{"vgg19", models.VGG19ImageNet(16)},
		{"resnet50", models.ResNet50ImageNet(16)},
	} {
		base, _, _, err := sim.PlanAndRun(tc.m.Graph, costmodel.P100(), sim.MethodNone, -1)
		if err != nil {
			t.Fatal(err)
		}
		lw, _, _, err := sim.PlanAndRun(tc.m.Graph, costmodel.P100(), sim.MethodLayerWise, -1)
		if err != nil {
			t.Fatal(err)
		}
		hm, _, _, err := sim.PlanAndRun(tc.m.Graph, costmodel.P100(), sim.MethodHMMS, -1)
		if err != nil {
			t.Fatal(err)
		}
		if hm.TotalTime < base.TotalTime {
			t.Fatalf("%s: HMMS faster than compute-only baseline", tc.name)
		}
		if hm.Degradation() > 0.06 {
			t.Fatalf("%s: HMMS degradation %.1f%%, want < 6%%", tc.name, hm.Degradation()*100)
		}
		if lw.Degradation() < 2*hm.Degradation() {
			t.Fatalf("%s: layer-wise %.1f%% should be well above HMMS %.1f%%",
				tc.name, lw.Degradation()*100, hm.Degradation()*100)
		}
		if hm.OffloadedBytes < lw.OffloadedBytes {
			t.Fatalf("%s: HMMS offloaded less (%d) than layer-wise (%d)",
				tc.name, hm.OffloadedBytes, lw.OffloadedBytes)
		}
	}
}

func TestTimelineSpans(t *testing.T) {
	m := models.VGG19ImageNet(8)
	res, prog, _, err := sim.PlanAndRun(m.Graph, costmodel.P100(), sim.MethodHMMS, -1)
	if err != nil {
		t.Fatal(err)
	}
	var compute, copies int
	for _, s := range res.Spans {
		if s.End < s.Start {
			t.Fatalf("span %q ends before it starts", s.Name)
		}
		switch s.Stream {
		case "compute":
			compute++
		case "offload", "prefetch":
			copies++
		default:
			t.Fatalf("unknown stream %q", s.Stream)
		}
	}
	if compute != len(prog.Ops) {
		t.Fatalf("compute spans %d, want %d", compute, len(prog.Ops))
	}
	if copies == 0 {
		t.Fatal("no copy spans despite offloading")
	}
	// Compute spans must be contiguous and non-overlapping in order.
	var last float64
	for _, s := range res.Spans {
		if s.Stream != "compute" {
			continue
		}
		if s.Start < last {
			t.Fatalf("compute span %q starts before previous ends", s.Name)
		}
		last = s.End
	}
}

// TestSplitReducesDeviceMemory: at the same batch size, Split-CNN+HMMS
// plans less device memory than the unsplit baseline (the Figure 10
// mechanism), at no meaningful throughput cost.
func TestSplitReducesDeviceMemory(t *testing.T) {
	batch := 64
	m := models.VGG19ImageNet(batch)
	base, _, baseMem, err := sim.PlanAndRun(m.Graph, costmodel.P100(), sim.MethodNone, -1)
	if err != nil {
		t.Fatal(err)
	}
	split, err := core.Split(m.Graph, core.Config{Depth: 0.75, NH: 2, NW: 2})
	if err != nil {
		t.Fatal(err)
	}
	sp, _, spMem, err := sim.PlanAndRun(split.Graph, costmodel.P100(), sim.MethodHMMS, -1)
	if err != nil {
		t.Fatal(err)
	}
	if spMem.DeviceBytes() >= baseMem.DeviceBytes()*2/3 {
		t.Fatalf("split+HMMS device bytes %d not well below baseline %d",
			spMem.DeviceBytes(), baseMem.DeviceBytes())
	}
	if sp.Degradation() > 0.08 {
		t.Fatalf("split+HMMS degradation %.1f%%", sp.Degradation()*100)
	}
	_ = base
}

func TestRunRejectsMalformedEntries(t *testing.T) {
	m := models.VGG19ImageNet(4)
	prog, err := hmms.BuildProgram(m.Graph, costmodel.P100())
	if err != nil {
		t.Fatal(err)
	}
	bad := &hmms.OffloadPlan{Method: "bad", Entries: []*hmms.OffloadEntry{
		{TSO: 0, OffloadAtOp: 5, SyncAtOp: 2, PrefetchAtOp: 10, SyncBeforeOp: 12, Bytes: 4},
	}}
	if _, err := sim.Run(prog, bad, nil); err == nil {
		t.Fatal("malformed plan accepted")
	}
}

func TestMethodString(t *testing.T) {
	if sim.MethodNone.String() != "baseline" || sim.MethodLayerWise.String() != "layer-wise" || sim.MethodHMMS.String() != "hmms" {
		t.Fatal("method names changed")
	}
}
