// Package sim is step five of HMMS at runtime: it replays a serialized,
// memory-planned program on a discrete-event model of the paper's
// testbed — one compute stream executing kernels back-to-back and a
// host link carrying offload/prefetch copies issued to memory streams.
// Synchronization points from the offload plan stall the compute stream
// exactly where the plan put them, which is how the layer-wise baseline
// loses throughput and HMMS does not (Figures 8 and 9).
package sim

import (
	"fmt"
	"sort"

	"splitcnn/internal/hmms"
	"splitcnn/internal/trace"
)

// Span is one occupancy interval on a stream, the unit of the
// nvprof-style timelines of Figure 9.
type Span struct {
	Stream string // "compute", "offload", "prefetch"
	Name   string
	Start  float64
	End    float64
}

// Result reports one simulated training step.
type Result struct {
	Method string
	// TotalTime is the wall-clock of the step; ComputeTime the sum of
	// kernel times; StallTime their difference (compute blocked on
	// memory-stream synchronizations).
	TotalTime, ComputeTime, StallTime float64
	// ForwardStall/BackwardStall split StallTime by phase (offload-sync
	// stalls land in forward, prefetch-sync stalls in backward).
	ForwardStall, BackwardStall float64
	// OffloadedBytes is the volume moved to the host and back.
	OffloadedBytes int64
	// Spans is the stream timeline (compute + copies).
	Spans []Span
	// PeakDeviceBytes is the statically planned device footprint.
	PeakDeviceBytes int64
	HostBytes       int64
}

// Throughput returns images/second for the given batch size.
func (r *Result) Throughput(batch int) float64 {
	if r.TotalTime <= 0 {
		return 0
	}
	return float64(batch) / r.TotalTime
}

// Degradation returns the fractional slowdown relative to the
// compute-only lower bound.
func (r *Result) Degradation() float64 {
	if r.ComputeTime <= 0 {
		return 0
	}
	return r.TotalTime/r.ComputeTime - 1
}

// EmitTrace replays the step's stream timeline into a trace recorder:
// one lane per stream ("compute", "offload", "prefetch"), one span per
// kernel or copy — the Figure 9 artifact in Chrome trace form.
func (r *Result) EmitTrace(rec trace.Recorder) {
	for _, s := range r.Spans {
		rec.Span(s.Stream, s.Name, s.Start, s.End)
	}
}

// OpTimes extracts the per-op start/end times from the step's compute
// lane, in op order — the op clock hmms.(*MemoryPlan).Timeline replays
// a memory plan against. Compute spans are appended in execution order,
// which for the in-order stream is op-index order.
func (r *Result) OpTimes() (start, end []float64) {
	for _, s := range r.Spans {
		if s.Stream != "compute" {
			continue
		}
		start = append(start, s.Start)
		end = append(end, s.End)
	}
	return start, end
}

// RecordMetrics publishes the step's headline numbers into a metrics
// registry. The sim.stall_seconds and mem-side gauges are recorded
// from the exact float64/int64 fields of Result, so a JSON dump of the
// registry reproduces them bit-for-bit.
func (r *Result) RecordMetrics(m *trace.Metrics) {
	m.Gauge("sim.total_seconds").Set(r.TotalTime)
	m.Gauge("sim.compute_seconds").Set(r.ComputeTime)
	m.Gauge("sim.stall_seconds").Set(r.StallTime)
	m.Gauge("sim.forward_stall_seconds").Set(r.ForwardStall)
	m.Gauge("sim.backward_stall_seconds").Set(r.BackwardStall)
	// Every offloaded byte is prefetched back before its backward read.
	m.Counter("sim.offload_bytes").Add(r.OffloadedBytes)
	m.Counter("sim.prefetch_bytes").Add(r.OffloadedBytes)
	m.Gauge("sim.peak_device_bytes").Set(float64(r.PeakDeviceBytes))
	m.Gauge("sim.host_bytes").Set(float64(r.HostBytes))
}

// Run simulates one training step of program p under the given offload
// plan and memory plan (mem may be nil to skip footprint accounting).
func Run(p *hmms.Program, plan *hmms.OffloadPlan, mem *hmms.MemoryPlan) (*Result, error) {
	res := &Result{Method: plan.Method, ComputeTime: p.ComputeTime(), OffloadedBytes: plan.OffloadedBytes}
	if mem != nil {
		res.PeakDeviceBytes = mem.DeviceBytes()
		res.HostBytes = mem.PoolBytes[hmms.PoolHost]
	}

	offloadAt := make(map[int][]*hmms.OffloadEntry)
	syncAfter := make(map[int][]*hmms.OffloadEntry)
	prefetchAt := make(map[int][]*hmms.OffloadEntry)
	syncBefore := make(map[int][]*hmms.OffloadEntry)
	for _, e := range plan.Entries {
		if e.OffloadAtOp < 0 || e.OffloadAtOp >= len(p.Ops) || e.SyncAtOp < e.OffloadAtOp ||
			e.PrefetchAtOp < 0 || e.SyncBeforeOp < e.PrefetchAtOp {
			return nil, fmt.Errorf("sim: malformed offload entry %+v", e)
		}
		offloadAt[e.OffloadAtOp] = append(offloadAt[e.OffloadAtOp], e)
		syncAfter[e.SyncAtOp] = append(syncAfter[e.SyncAtOp], e)
		prefetchAt[e.PrefetchAtOp] = append(prefetchAt[e.PrefetchAtOp], e)
		syncBefore[e.SyncBeforeOp] = append(syncBefore[e.SyncBeforeOp], e)
	}

	// The host link is a single FIFO resource: concurrent copies
	// serialize (streams only provide synchronization granularity).
	var t, linkFree float64
	offloadDone := make(map[hmms.TSOID]float64)
	prefetchDone := make(map[hmms.TSOID]float64)

	issue := func(e *hmms.OffloadEntry, stream string, done map[hmms.TSOID]float64) {
		start := max(linkFree, t)
		end := start + p.Device.CopyTime(e.Bytes)
		linkFree = end
		done[e.TSO] = end
		res.Spans = append(res.Spans, Span{Stream: stream, Name: fmt.Sprint(e.TSO), Start: start, End: end})
	}

	// Transfers issued at the same op go out most-urgent-first: the
	// link is FIFO, so a copy needed soonest must not queue behind one
	// needed later.
	for _, m := range []map[int][]*hmms.OffloadEntry{offloadAt, prefetchAt} {
		for _, es := range m {
			sort.Slice(es, func(a, b int) bool { return es[a].SyncBeforeOp < es[b].SyncBeforeOp })
		}
	}

	stall := func(op *hmms.OpExec, d float64) {
		res.StallTime += d
		if op.Phase == hmms.Forward {
			res.ForwardStall += d
		} else {
			res.BackwardStall += d
		}
	}
	for i := range p.Ops {
		op := &p.Ops[i]
		// Issue transfers scheduled at this op's start.
		for _, e := range offloadAt[i] {
			issue(e, "offload", offloadDone)
		}
		for _, e := range prefetchAt[i] {
			issue(e, "prefetch", prefetchDone)
		}
		// End-of-prefetch synchronization gates this op's launch.
		for _, e := range syncBefore[i] {
			if d := prefetchDone[e.TSO]; d > t {
				stall(op, d-t)
				t = d
			}
		}
		start := t
		t += op.Time
		res.Spans = append(res.Spans, Span{Stream: "compute", Name: op.Name, Start: start, End: t})
		// End-of-offload synchronization happens right after the op.
		for _, e := range syncAfter[i] {
			if d := offloadDone[e.TSO]; d > t {
				stall(op, d-t)
				t = d
			}
		}
	}
	res.TotalTime = t
	return res, nil
}
