package sim_test

import (
	"math"
	"testing"

	"splitcnn/internal/costmodel"
	"splitcnn/internal/hmms"
	"splitcnn/internal/models"
	"splitcnn/internal/sim"
	"splitcnn/internal/trace"
)

// TestDriftFromMeasured feeds measured op times that are an exact 3x of
// the cost model's predictions and expects every drift ratio — and both
// summaries — to come back as 3.
func TestDriftFromMeasured(t *testing.T) {
	m, err := models.Build("alexnet", models.Config{
		BatchSize: 4, Classes: 10, InputC: 3, InputH: 64, InputW: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := costmodel.P100()
	prog, err := hmms.BuildProgram(m.Graph, dev)
	if err != nil {
		t.Fatal(err)
	}
	measured := make(map[string]sim.OpSample)
	for _, op := range prog.Ops {
		if op.Time <= 0 {
			continue
		}
		// Two samples per op so Mean() does real averaging.
		measured[op.Name] = sim.OpSample{Seconds: 2 * 3 * op.Time, Count: 2}
	}
	rep, err := sim.DriftFromMeasured(m.Graph, dev, measured)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Ops) != len(measured) {
		t.Fatalf("report covers %d ops, measured %d", len(rep.Ops), len(measured))
	}
	for _, d := range rep.Ops {
		if math.Abs(d.Ratio-3) > 1e-9 {
			t.Fatalf("op %s drift ratio %v, want 3", d.Name, d.Ratio)
		}
	}
	if math.Abs(rep.GeoMeanRatio-3) > 1e-9 || math.Abs(rep.MaxRatio-3) > 1e-9 {
		t.Fatalf("summaries geomean=%v max=%v, want 3", rep.GeoMeanRatio, rep.MaxRatio)
	}

	met := trace.NewMetrics()
	rep.RecordMetrics(met)
	if v := met.Gauge("calib.op_drift_ratio_geomean").Value(); math.Abs(v-3) > 1e-9 {
		t.Fatalf("calib.op_drift_ratio_geomean gauge = %v, want 3", v)
	}
	if v := met.Gauge("calib.ops_measured").Value(); v != float64(len(rep.Ops)) {
		t.Fatalf("calib.ops_measured gauge = %v, want %d", v, len(rep.Ops))
	}
	if v := met.Gauge("calib.op_drift_ratio." + rep.Ops[0].Name).Value(); math.Abs(v-3) > 1e-9 {
		t.Fatalf("per-op gauge = %v, want 3", v)
	}
}

// TestDriftFromMeasuredEmpty rejects calibration without measurements.
func TestDriftFromMeasuredEmpty(t *testing.T) {
	m, err := models.Build("alexnet", models.Config{
		BatchSize: 2, Classes: 10, InputC: 3, InputH: 64, InputW: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.DriftFromMeasured(m.Graph, costmodel.P100(), nil); err == nil {
		t.Fatal("DriftFromMeasured accepted an empty measurement set")
	}
}
