// Plan-vs-actual calibration: the observability hook that tells us when
// the cost model the planner trusts has drifted from the real CPU
// engine. The trainer's executor hook measures what every op actually
// cost; those measurements are rebuilt into a program, routed through
// the same PlanFromProgram pipeline the planner uses, and replayed so
// the measured compute timeline (Result.OpTimes) can be diffed per-op
// against the cost model's predictions as calib.* gauges.
package sim

import (
	"fmt"
	"math"

	"splitcnn/internal/costmodel"
	"splitcnn/internal/graph"
	"splitcnn/internal/hmms"
	"splitcnn/internal/tensor"
	"splitcnn/internal/trace"
)

// OpSample accumulates the measured wall-clock of one op across a run.
type OpSample struct {
	Seconds float64
	Count   int
}

// Mean returns the average measured duration (0 when empty).
func (s OpSample) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Seconds / float64(s.Count)
}

// Drift is one op's plan-vs-actual comparison.
type Drift struct {
	// Name is the serialized-program op name ("conv1", "conv1.bwd").
	Name string
	// Predicted is the cost model's time; Measured the executor-hook
	// mean; Ratio is Measured / Predicted.
	Predicted, Measured, Ratio float64
}

// DriftReport is the per-layer calibration result.
type DriftReport struct {
	Ops []Drift
	// MaxRatio and GeoMeanRatio summarize the distribution; MaxOp names
	// the worst-drifting op.
	MaxRatio     float64
	MaxOp        string
	GeoMeanRatio float64
}

// DriftFromMeasured compares measured per-op wall-clock times (keyed by
// serialized op name, ".bwd" suffix for backward — exactly the names an
// Executor hook sees) against the cost model's predictions for the same
// graph on dev. The measured times are fed back through
// PlanFromProgram and a baseline replay, so the measured timeline is
// produced by the identical pipeline the planner trusts; ops the hook
// never timed, or that the model prices at zero, are skipped.
func DriftFromMeasured(g *graph.Graph, dev costmodel.DeviceSpec, measured map[string]OpSample) (*DriftReport, error) {
	if len(measured) == 0 {
		return nil, fmt.Errorf("sim: no measured op times to calibrate against")
	}
	predicted, err := hmms.BuildProgram(g, dev)
	if err != nil {
		return nil, err
	}
	// Rebuild the program with the measured timer (cost-model fallback
	// for unmeasured ops keeps the program well-formed).
	cm := hmms.CostModelTimer(dev)
	timer := func(n *graph.Node, in []tensor.Shape) (float64, float64) {
		fwd, bwd := cm(n, in)
		if s, ok := measured[n.Name]; ok && s.Count > 0 {
			fwd = s.Mean()
		}
		if s, ok := measured[n.Name+".bwd"]; ok && s.Count > 0 {
			bwd = s.Mean()
		}
		return fwd, bwd
	}
	measProg, err := hmms.BuildProgramTimed(g, dev, timer)
	if err != nil {
		return nil, err
	}
	plan, mem, err := PlanFromProgram(measProg, MethodNone, -1)
	if err != nil {
		return nil, err
	}
	res, err := Run(measProg, plan, mem)
	if err != nil {
		return nil, err
	}
	start, end := res.OpTimes()
	if len(start) != len(predicted.Ops) {
		return nil, fmt.Errorf("sim: measured replay has %d compute spans, predicted program %d ops",
			len(start), len(predicted.Ops))
	}

	rep := &DriftReport{}
	var logSum float64
	for i := range predicted.Ops {
		op := &predicted.Ops[i]
		if _, ok := measured[op.Name]; !ok || op.Time <= 0 {
			continue
		}
		d := Drift{Name: op.Name, Predicted: op.Time, Measured: end[i] - start[i]}
		d.Ratio = d.Measured / d.Predicted
		rep.Ops = append(rep.Ops, d)
		logSum += math.Log(d.Ratio)
		if d.Ratio > rep.MaxRatio {
			rep.MaxRatio, rep.MaxOp = d.Ratio, d.Name
		}
	}
	if len(rep.Ops) == 0 {
		return nil, fmt.Errorf("sim: no measured op matched a predicted op")
	}
	rep.GeoMeanRatio = math.Exp(logSum / float64(len(rep.Ops)))
	return rep, nil
}

// RecordMetrics publishes the drift as calib.* gauges: one
// calib.op_drift_ratio.<op> gauge per measured op plus the max/geomean
// summaries — the signals a dashboard alerts on when the planner's cost
// model no longer matches the engine it plans for.
func (r *DriftReport) RecordMetrics(m *trace.Metrics) {
	for _, d := range r.Ops {
		m.Gauge("calib.op_drift_ratio." + d.Name).Set(d.Ratio)
	}
	m.Gauge("calib.op_drift_ratio_max").Set(r.MaxRatio)
	m.Gauge("calib.op_drift_ratio_geomean").Set(r.GeoMeanRatio)
	m.Gauge("calib.ops_measured").Set(float64(len(r.Ops)))
}
