package sim

import (
	"fmt"

	"splitcnn/internal/costmodel"
	"splitcnn/internal/graph"
	"splitcnn/internal/hmms"
)

// Method selects the memory scheduling scheme of §6.2.
type Method int

// Scheduling methods compared in Figure 8.
const (
	// MethodNone is the baseline plan: no offload, best throughput,
	// maximum resident memory.
	MethodNone Method = iota
	// MethodLayerWise is the vDNN-style per-layer offload baseline.
	MethodLayerWise
	// MethodHMMS is the paper's planner (Algorithm 1).
	MethodHMMS
)

// String names the method as the paper does.
func (m Method) String() string {
	switch m {
	case MethodNone:
		return "baseline"
	case MethodLayerWise:
		return "layer-wise"
	case MethodHMMS:
		return "hmms"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Plan executes the offline stages of the HMMS pipeline for one graph:
// serialize, assign storage, plan offload/prefetch with the chosen
// method (capped at limit — pass a negative limit to use the program's
// theoretical offload limit), and statically plan memory.
func Plan(g *graph.Graph, dev costmodel.DeviceSpec, m Method, limit float64) (*hmms.Program, *hmms.OffloadPlan, *hmms.MemoryPlan, error) {
	prog, err := hmms.BuildProgram(g, dev)
	if err != nil {
		return nil, nil, nil, err
	}
	plan, mem, err := PlanFromProgram(prog, m, limit)
	if err != nil {
		return nil, nil, nil, err
	}
	return prog, plan, mem, nil
}

// PlanTimed is Plan with an explicit per-op timer — the entry point
// for autotuned graphs, where hmms.MeasuredTimer substitutes measured
// convolution times for the roofline guesses before planning.
func PlanTimed(g *graph.Graph, dev costmodel.DeviceSpec, timer hmms.Timer, m Method, limit float64) (*hmms.Program, *hmms.OffloadPlan, *hmms.MemoryPlan, error) {
	prog, err := hmms.BuildProgramTimed(g, dev, timer)
	if err != nil {
		return nil, nil, nil, err
	}
	plan, mem, err := PlanFromProgram(prog, m, limit)
	if err != nil {
		return nil, nil, nil, err
	}
	return prog, plan, mem, nil
}

// PlanFromProgram is Plan for a program built elsewhere — the entry
// point for measured programs (internal/profile.BuildProgram), which
// drive the identical planner pipeline from real layer timings.
func PlanFromProgram(prog *hmms.Program, m Method, limit float64) (*hmms.OffloadPlan, *hmms.MemoryPlan, error) {
	assign := hmms.AssignStorage(prog, hmms.DefaultStorageOpts())
	if limit < 0 {
		limit = prog.TheoreticalOffloadLimit()
	}
	var plan *hmms.OffloadPlan
	var err error
	switch m {
	case MethodNone:
		plan = hmms.PlanNone()
	case MethodLayerWise:
		plan, err = hmms.PlanLayerWise(prog, assign, limit)
	case MethodHMMS:
		plan, err = hmms.PlanOffload(prog, assign, limit)
	default:
		err = fmt.Errorf("sim: unknown method %d", int(m))
	}
	if err != nil {
		return nil, nil, err
	}
	return plan, hmms.PlanMemory(prog, assign, plan, hmms.FirstFit), nil
}

// PlanAndRun executes the whole HMMS pipeline for one graph — Plan
// followed by the analytic step simulation.
func PlanAndRun(g *graph.Graph, dev costmodel.DeviceSpec, m Method, limit float64) (*Result, *hmms.Program, *hmms.MemoryPlan, error) {
	prog, plan, mem, err := Plan(g, dev, m, limit)
	if err != nil {
		return nil, nil, nil, err
	}
	res, err := Run(prog, plan, mem)
	if err != nil {
		return nil, nil, nil, err
	}
	return res, prog, mem, nil
}
