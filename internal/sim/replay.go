package sim

import (
	"fmt"
	"sort"

	"splitcnn/internal/device"
	"splitcnn/internal/hmms"
	"splitcnn/internal/trace"
)

// Replay lowers a planned program onto the discrete-event device model
// (internal/device) — one kernel per op on the compute stream, one
// memory stream per offloaded TSO ("get an idle memory stream m", §4.3),
// with the plan's four critical moments realized as event record/wait
// pairs — and executes it. It is the detailed counterpart of Run: Run
// computes the step analytically; Replay exercises explicit streams,
// link arbitration and event synchronization, and additionally reports
// the time-resolved device memory occupancy of the static plan (when mem
// is non-nil), validating it against the device capacity.
func Replay(p *hmms.Program, plan *hmms.OffloadPlan, mem *hmms.MemoryPlan, capacity int64) (*device.Trace, error) {
	return ReplayTraced(p, plan, mem, capacity, nil)
}

// ReplayTraced is Replay with a trace recorder attached to the device:
// every retired kernel and copy is forwarded as a span, one trace lane
// per stream ("compute", "mem1", "mem2", ...). Unlike Run's analytic
// three-lane timeline, the replay shows each offloaded TSO on its own
// memory stream — the closest analogue of the paper's nvprof capture.
// rec may be nil.
func ReplayTraced(p *hmms.Program, plan *hmms.OffloadPlan, mem *hmms.MemoryPlan, capacity int64, rec trace.Recorder) (*device.Trace, error) {
	d := device.New(p.Device.LinkBandwidth)
	d.MemCapacity = capacity
	d.Recorder = rec

	offloadAt := map[int][]*hmms.OffloadEntry{}
	syncAfter := map[int][]*hmms.OffloadEntry{}
	prefetchAt := map[int][]*hmms.OffloadEntry{}
	syncBefore := map[int][]*hmms.OffloadEntry{}
	offStream := map[hmms.TSOID]device.StreamID{}
	pfStream := map[hmms.TSOID]device.StreamID{}
	for _, e := range plan.Entries {
		if e.OffloadAtOp < 0 || e.OffloadAtOp >= len(p.Ops) || e.SyncAtOp < e.OffloadAtOp {
			return nil, fmt.Errorf("sim.Replay: malformed entry %+v", e)
		}
		offloadAt[e.OffloadAtOp] = append(offloadAt[e.OffloadAtOp], e)
		syncAfter[e.SyncAtOp] = append(syncAfter[e.SyncAtOp], e)
		prefetchAt[e.PrefetchAtOp] = append(prefetchAt[e.PrefetchAtOp], e)
		syncBefore[e.SyncBeforeOp] = append(syncBefore[e.SyncBeforeOp], e)
	}
	// Same-op transfers go out most-urgent-first, exactly as in Run;
	// memory streams are created lazily in issue order so that FIFO
	// tie-breaking on the link matches the issue sequence.
	for _, m := range []map[int][]*hmms.OffloadEntry{offloadAt, prefetchAt} {
		for _, es := range m {
			sort.Slice(es, func(a, b int) bool { return es[a].SyncBeforeOp < es[b].SyncBeforeOp })
		}
	}

	offloadEv := map[hmms.TSOID]device.EventID{}
	prefetchEv := map[hmms.TSOID]device.EventID{}
	kernels := make([]device.Handle, len(p.Ops))

	for i := range p.Ops {
		op := &p.Ops[i]
		// Copies planned "at op i" start when the compute stream
		// *reaches* op i, not at program start: gate each memory stream
		// on an event recorded on the compute stream just before the
		// kernel launch.
		var gate device.EventID
		if len(offloadAt[i]) > 0 || len(prefetchAt[i]) > 0 {
			gate = d.Record(device.ComputeStream)
		}
		// Start of the offload: right as op i starts executing (the
		// copy's source was fully written before op i).
		for _, e := range offloadAt[i] {
			s := d.NewStream()
			offStream[e.TSO] = s
			d.Wait(s, gate)
			d.Copy(s, fmt.Sprintf("offload-tso%d", e.TSO), e.Bytes)
			offloadEv[e.TSO] = d.Record(s)
		}
		// Start of the prefetch.
		for _, e := range prefetchAt[i] {
			s := d.NewStream()
			pfStream[e.TSO] = s
			d.Wait(s, gate)
			d.Copy(s, fmt.Sprintf("prefetch-tso%d", e.TSO), e.Bytes)
			prefetchEv[e.TSO] = d.Record(s)
		}
		// End of the prefetch: compute waits before the consuming op.
		for _, e := range syncBefore[i] {
			ev, ok := prefetchEv[e.TSO]
			if !ok {
				return nil, fmt.Errorf("sim.Replay: prefetch of TSO %d synchronized before it was issued", e.TSO)
			}
			d.Wait(device.ComputeStream, ev)
		}
		kernels[i] = d.Launch(op.Name, op.Time)
		// End of the offload: compute synchronizes right after op i and
		// the device TSO is freed.
		for _, e := range syncAfter[i] {
			d.Wait(device.ComputeStream, offloadEv[e.TSO])
		}
	}

	// Attach the static plan's device blocks to kernel lifetimes so the
	// trace reports time-resolved occupancy.
	if mem != nil {
		for _, b := range mem.Blocks {
			if b.Pool == hmms.PoolHost {
				continue
			}
			start := min(max(b.Start, 0), len(p.Ops)-1)
			end := min(max(b.End, start), len(p.Ops)-1)
			d.AllocAt(kernels[start], b.Bytes)
			d.FreeAt(kernels[end], b.Bytes)
		}
	}
	return d.Run()
}
