package sim_test

import (
	"testing"

	"splitcnn/internal/costmodel"
	"splitcnn/internal/models"
	"splitcnn/internal/sim"
)

// TestHMMSNeverStallsForward: across models and batch sizes, the
// Algorithm 1 plan must not stall the forward pass — that is its defining
// guarantee ("offload the most amount of memory without hurting the
// performance").
func TestHMMSNeverStallsForward(t *testing.T) {
	for _, batch := range []int{8, 32, 96} {
		for _, build := range []func(int) *models.Model{
			models.VGG19ImageNet, models.ResNet18ImageNet, models.ResNet50ImageNet, models.AlexNetImageNet,
		} {
			m := build(batch)
			res, _, _, err := sim.PlanAndRun(m.Graph, costmodel.P100(), sim.MethodHMMS, -1)
			if err != nil {
				t.Fatal(err)
			}
			if res.ForwardStall > res.ComputeTime*0.001 {
				t.Fatalf("%s batch %d: forward stall %.3f ms", m.Name, batch, res.ForwardStall*1e3)
			}
		}
	}
}

// TestFasterLinkHelpsLayerWise: on a V100 (2x NVLink bandwidth) the
// layer-wise baseline's stalls shrink relative to the P100 — the link
// bandwidth is exactly what it is starved of (§2.4).
func TestFasterLinkHelpsLayerWise(t *testing.T) {
	m := models.VGG19ImageNet(32)
	p, _, _, err := sim.PlanAndRun(m.Graph, costmodel.P100(), sim.MethodLayerWise, -1)
	if err != nil {
		t.Fatal(err)
	}
	v, _, _, err := sim.PlanAndRun(m.Graph, costmodel.V100(), sim.MethodLayerWise, -1)
	if err != nil {
		t.Fatal(err)
	}
	if v.StallTime >= p.StallTime {
		t.Fatalf("V100 stall %.1f ms not below P100 stall %.1f ms", v.StallTime*1e3, p.StallTime*1e3)
	}
}

// TestOffloadLimitMonotonicMemory: lowering the offload cap can only
// increase (or keep) the planned device general pool.
func TestOffloadLimitMonotonicMemory(t *testing.T) {
	m := models.VGG19ImageNet(64)
	var prev int64 = -1
	for _, limit := range []float64{1, 0.5, 0.25, 0} {
		_, _, mem, err := sim.PlanAndRun(m.Graph, costmodel.P100(), sim.MethodHMMS, limit)
		if err != nil {
			t.Fatal(err)
		}
		cur := mem.DeviceBytes()
		if prev >= 0 && cur < prev {
			t.Fatalf("device bytes decreased when offloading less: %d -> %d at limit %v", prev, cur, limit)
		}
		prev = cur
	}
}

// TestZeroLimitEqualsBaseline: a zero offload cap must reproduce the
// baseline plan exactly.
func TestZeroLimitEqualsBaseline(t *testing.T) {
	m := models.ResNet18ImageNet(16)
	base, _, baseMem, err := sim.PlanAndRun(m.Graph, costmodel.P100(), sim.MethodNone, -1)
	if err != nil {
		t.Fatal(err)
	}
	zero, _, zeroMem, err := sim.PlanAndRun(m.Graph, costmodel.P100(), sim.MethodHMMS, 0)
	if err != nil {
		t.Fatal(err)
	}
	if zero.TotalTime != base.TotalTime || zero.OffloadedBytes != 0 {
		t.Fatal("zero-limit HMMS differs from baseline timing")
	}
	if zeroMem.DeviceBytes() != baseMem.DeviceBytes() {
		t.Fatal("zero-limit HMMS differs from baseline memory")
	}
}

// TestSimDeterminism: planning and simulation are pure functions of the
// graph and device.
func TestSimDeterminism(t *testing.T) {
	m := models.ResNet50ImageNet(16)
	a, _, am, err := sim.PlanAndRun(m.Graph, costmodel.P100(), sim.MethodHMMS, -1)
	if err != nil {
		t.Fatal(err)
	}
	b, _, bm, err := sim.PlanAndRun(m.Graph, costmodel.P100(), sim.MethodHMMS, -1)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTime != b.TotalTime || am.DeviceBytes() != bm.DeviceBytes() {
		t.Fatal("simulation not deterministic")
	}
}
