package memlayout

import (
	"math/rand"
	"testing"
)

func overlaps(a, b *Block) bool {
	liveTogether := a.Start <= b.End && b.Start <= a.End
	bytesOverlap := a.Offset < b.Offset+b.Bytes && b.Offset < a.Offset+a.Bytes
	return liveTogether && bytesOverlap
}

// TestFirstFitNoOverlap drives randomized lifetimes through FirstFit
// and asserts the core soundness invariant: two blocks live at the same
// step never share bytes, and the returned peak is exactly the highest
// offset+size.
func TestFirstFitNoOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		blocks := make([]*Block, n)
		for i := range blocks {
			s := rng.Intn(30)
			blocks[i] = &Block{
				Start: s,
				End:   s + rng.Intn(10),
				Bytes: int64(1+rng.Intn(1000)) * 4,
			}
		}
		peak := FirstFit(blocks)
		var top int64
		for i, a := range blocks {
			if a.Offset < 0 {
				t.Fatalf("trial %d: negative offset %d", trial, a.Offset)
			}
			if end := a.Offset + a.Bytes; end > top {
				top = end
			}
			for _, b := range blocks[i+1:] {
				if overlaps(a, b) {
					t.Fatalf("trial %d: blocks overlap: [%d,%d]@%d+%d vs [%d,%d]@%d+%d",
						trial, a.Start, a.End, a.Offset, a.Bytes, b.Start, b.End, b.Offset, b.Bytes)
				}
			}
		}
		if top != peak {
			t.Fatalf("trial %d: peak %d != max offset+size %d", trial, peak, top)
		}
	}
}

// TestFirstFitReuses pins the point of the allocator: two large blocks
// with disjoint lifetimes share one offset instead of stacking.
func TestFirstFitReuses(t *testing.T) {
	a := &Block{Start: 0, End: 1, Bytes: 1024}
	b := &Block{Start: 2, End: 3, Bytes: 1024}
	if peak := FirstFit([]*Block{a, b}); peak != 1024 {
		t.Fatalf("peak %d, want 1024 (disjoint lifetimes must reuse)", peak)
	}
	if a.Offset != b.Offset {
		t.Fatalf("offsets %d vs %d, want shared", a.Offset, b.Offset)
	}
}

// TestSequentialStacks pins the ablation baseline: no reuse ever.
func TestSequentialStacks(t *testing.T) {
	a := &Block{Start: 0, End: 1, Bytes: 1024}
	b := &Block{Start: 2, End: 3, Bytes: 512}
	if peak := Sequential([]*Block{a, b}); peak != 1536 {
		t.Fatalf("peak %d, want 1536", peak)
	}
	if a.Offset == b.Offset {
		t.Fatal("sequential layout must not share offsets")
	}
}

// TestFirstFitDeterministic: identical inputs yield identical offsets —
// the stable sort is part of the contract, because hmms golden plans
// and compiled-slab tests both depend on reproducible layouts.
func TestFirstFitDeterministic(t *testing.T) {
	build := func() []*Block {
		rng := rand.New(rand.NewSource(7))
		blocks := make([]*Block, 25)
		for i := range blocks {
			s := rng.Intn(12)
			blocks[i] = &Block{Start: s, End: s + rng.Intn(6), Bytes: int64(1+rng.Intn(100)) * 4}
		}
		return blocks
	}
	x, y := build(), build()
	px, py := FirstFit(x), FirstFit(y)
	if px != py {
		t.Fatalf("peaks differ: %d vs %d", px, py)
	}
	// Compare by identity of (Start, End, Bytes) ordering after layout.
	for i := range x {
		if x[i].Offset != y[i].Offset || x[i].Start != y[i].Start || x[i].Bytes != y[i].Bytes {
			t.Fatalf("block %d differs between identical runs: %+v vs %+v", i, x[i], y[i])
		}
	}
}
