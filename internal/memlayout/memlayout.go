// Package memlayout implements the static offset assignment at the core
// of the paper's §4.4 memory planner: given blocks with byte sizes and
// [Start, End] lifetimes in op indices, lay them out in one contiguous
// pool so that no two simultaneously-live blocks overlap, and return the
// pool's peak size. It is the machinery shared by the offline HMMS
// simulation planner (internal/hmms) and the compiled-execution slab
// planner (internal/graph.Compile): both want the same first-fit
// packing, one over simulated TSOs, one over real host buffers.
//
// The package is a leaf — it imports nothing from this repository — so
// both clients can depend on it without cycles.
package memlayout

import "sort"

// Block is one allocation request: Bytes of storage live from the start
// of step Start through the end of step End (inclusive). FirstFit and
// Sequential write the resulting Offset in place.
type Block struct {
	// Start and End bound the lifetime in op/step indices, inclusive.
	Start, End int
	Bytes      int64
	Offset     int64
}

// FirstFit places each block at the lowest offset where it fits among
// blocks still live at its birth — the paper's allocation strategy.
// Blocks are considered in order of Start (FIFO through the serialized
// program), breaking ties by larger size for tighter packing; the sort
// is stable so equal blocks keep their submission order, which makes
// the layout deterministic. It returns the pool size (peak offset +
// size). The caller's slice order is preserved; offsets are written in
// place.
func FirstFit(blocks []*Block) int64 {
	blocks = sortedCopy(blocks)
	var peak int64
	var live []*Block
	for _, b := range blocks {
		// Expire blocks that ended strictly before this one starts.
		kept := live[:0]
		for _, l := range live {
			if l.End >= b.Start {
				kept = append(kept, l)
			}
		}
		live = kept
		sort.Slice(live, func(i, j int) bool { return live[i].Offset < live[j].Offset })
		var off int64
		for _, l := range live {
			if off+b.Bytes <= l.Offset {
				break
			}
			if end := l.Offset + l.Bytes; end > off {
				off = end
			}
		}
		b.Offset = off
		live = append(live, b)
		if top := off + b.Bytes; top > peak {
			peak = top
		}
	}
	return peak
}

// Sequential gives every block a distinct offset with no lifetime-based
// reuse — the ablation baseline against FirstFit.
func Sequential(blocks []*Block) int64 {
	blocks = sortedCopy(blocks)
	var off int64
	for _, b := range blocks {
		b.Offset = off
		off += b.Bytes
	}
	return off
}

// sortedCopy returns the blocks in allocation order — by Start, larger
// first among equals — without disturbing the caller's slice.
func sortedCopy(blocks []*Block) []*Block {
	ordered := make([]*Block, len(blocks))
	copy(ordered, blocks)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Start != ordered[j].Start {
			return ordered[i].Start < ordered[j].Start
		}
		return ordered[i].Bytes > ordered[j].Bytes
	})
	return ordered
}
