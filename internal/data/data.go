// Package data provides seeded synthetic image-classification datasets
// standing in for CIFAR-10 and ImageNet in the accuracy experiments
// (§5). Each class is defined by a prototype built from a handful of
// low-frequency 2-D sinusoids — structure that spans the whole image, so
// severing cross-patch spatial communication (which is exactly what
// Split-CNN does) costs measurable accuracy, reproducing the trends of
// Figures 4-6 at laptop scale. Samples are the class prototype under a
// random cyclic shift plus Gaussian noise, which forces the network to
// learn translation-tolerant convolutional features rather than
// memorizing pixels.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"splitcnn/internal/tensor"
)

// Config describes a synthetic dataset.
type Config struct {
	Classes       int
	TrainN, TestN int
	C, H, W       int
	// Waves is the number of sinusoidal components per class prototype.
	Waves int
	// Noise is the per-pixel Gaussian noise stddev.
	Noise float64
	// MaxShift bounds the random cyclic shift in each spatial direction.
	MaxShift int
	Seed     int64
}

// CIFARLike mirrors CIFAR-10's geometry: 10 classes of 3x32x32 images.
func CIFARLike(trainN, testN int) Config {
	return Config{Classes: 10, TrainN: trainN, TestN: testN, C: 3, H: 32, W: 32,
		Waves: 4, Noise: 0.35, MaxShift: 4, Seed: 1}
}

// ImageNetLike is a heavier stand-in: 20 classes of 3x64x64 images.
func ImageNetLike(trainN, testN int) Config {
	return Config{Classes: 20, TrainN: trainN, TestN: testN, C: 3, H: 64, W: 64,
		Waves: 5, Noise: 0.35, MaxShift: 8, Seed: 2}
}

// Dataset holds materialized train and test splits.
type Dataset struct {
	Cfg        Config
	TrainX     []float32 // TrainN * C*H*W
	TrainY     []int
	TestX      []float32
	TestY      []int
	prototypes []float32 // Classes * C*H*W
}

type wave struct {
	fx, fy, phase, amp float64
}

// Synthetic materializes a dataset from cfg deterministically.
func Synthetic(cfg Config) (*Dataset, error) {
	if cfg.Classes < 2 || cfg.TrainN <= 0 || cfg.TestN <= 0 || cfg.C <= 0 || cfg.H <= 0 || cfg.W <= 0 {
		return nil, fmt.Errorf("data: invalid config %+v", cfg)
	}
	if cfg.Waves <= 0 {
		cfg.Waves = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	plane := cfg.H * cfg.W
	img := cfg.C * plane
	d := &Dataset{Cfg: cfg, prototypes: make([]float32, cfg.Classes*img)}

	for cls := 0; cls < cfg.Classes; cls++ {
		waves := make([][]wave, cfg.C)
		for ch := range waves {
			waves[ch] = make([]wave, cfg.Waves)
			for i := range waves[ch] {
				waves[ch][i] = wave{
					fx:    0.5 + 1.5*rng.Float64(),
					fy:    0.5 + 1.5*rng.Float64(),
					phase: 2 * math.Pi * rng.Float64(),
					amp:   0.4 + 0.6*rng.Float64(),
				}
			}
		}
		base := cls * img
		for ch := 0; ch < cfg.C; ch++ {
			for y := 0; y < cfg.H; y++ {
				for x := 0; x < cfg.W; x++ {
					var v float64
					for _, w := range waves[ch] {
						v += w.amp * math.Sin(2*math.Pi*(w.fx*float64(x)/float64(cfg.W)+w.fy*float64(y)/float64(cfg.H))+w.phase)
					}
					d.prototypes[base+ch*plane+y*cfg.W+x] = float32(v / math.Sqrt(float64(cfg.Waves)))
				}
			}
		}
	}

	d.TrainX, d.TrainY = d.sample(cfg.TrainN, rng)
	d.TestX, d.TestY = d.sample(cfg.TestN, rng)
	return d, nil
}

// sample draws n labeled images: prototype + cyclic shift + noise.
func (d *Dataset) sample(n int, rng *rand.Rand) ([]float32, []int) {
	cfg := d.Cfg
	plane := cfg.H * cfg.W
	img := cfg.C * plane
	xs := make([]float32, n*img)
	ys := make([]int, n)
	for i := 0; i < n; i++ {
		cls := rng.Intn(cfg.Classes)
		ys[i] = cls
		dx, dy := 0, 0
		if cfg.MaxShift > 0 {
			dx = rng.Intn(2*cfg.MaxShift+1) - cfg.MaxShift
			dy = rng.Intn(2*cfg.MaxShift+1) - cfg.MaxShift
		}
		proto := d.prototypes[cls*img : (cls+1)*img]
		dst := xs[i*img : (i+1)*img]
		for ch := 0; ch < cfg.C; ch++ {
			for y := 0; y < cfg.H; y++ {
				sy := ((y+dy)%cfg.H + cfg.H) % cfg.H
				for x := 0; x < cfg.W; x++ {
					sx := ((x+dx)%cfg.W + cfg.W) % cfg.W
					v := float64(proto[ch*plane+sy*cfg.W+sx]) + rng.NormFloat64()*cfg.Noise
					dst[ch*plane+y*cfg.W+x] = float32(v)
				}
			}
		}
	}
	return xs, ys
}

// Batch extracts the given sample indices from a split into NCHW image
// and label tensors suitable for graph.Feeds.
func (d *Dataset) Batch(train bool, idx []int) (x, labels *tensor.Tensor) {
	cfg := d.Cfg
	x = tensor.New(len(idx), cfg.C, cfg.H, cfg.W)
	labels = tensor.New(len(idx))
	d.BatchInto(x, labels, train, idx)
	return x, labels
}

// BatchInto fills caller-owned batch tensors in place (the zero-alloc
// variant of Batch for steady-state training loops). x must hold
// [len(idx), C, H, W] and labels [len(idx)].
func (d *Dataset) BatchInto(x, labels *tensor.Tensor, train bool, idx []int) {
	cfg := d.Cfg
	img := cfg.C * cfg.H * cfg.W
	xs, ys := d.TrainX, d.TrainY
	if !train {
		xs, ys = d.TestX, d.TestY
	}
	for i, j := range idx {
		copy(x.Data()[i*img:(i+1)*img], xs[j*img:(j+1)*img])
		labels.Data()[i] = float32(ys[j])
	}
}

// Shuffled returns a permutation of the training indices.
func (d *Dataset) Shuffled(rng *rand.Rand) []int {
	return rng.Perm(d.Cfg.TrainN)
}
