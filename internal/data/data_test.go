package data_test

import (
	"math/rand"
	"testing"

	"splitcnn/internal/data"
)

func TestSyntheticDeterministic(t *testing.T) {
	cfg := data.CIFARLike(64, 32)
	d1, err := data.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := data.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1.TrainX {
		if d1.TrainX[i] != d2.TrainX[i] {
			t.Fatal("same seed produced different data")
		}
	}
	cfg.Seed = 99
	d3, _ := data.Synthetic(cfg)
	same := true
	for i := range d1.TrainX {
		if d1.TrainX[i] != d3.TrainX[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSyntheticShapesAndLabels(t *testing.T) {
	cfg := data.ImageNetLike(50, 30)
	d, err := data.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.TrainX) != 50*3*64*64 || len(d.TestX) != 30*3*64*64 {
		t.Fatal("split sizes wrong")
	}
	for _, y := range append(append([]int{}, d.TrainY...), d.TestY...) {
		if y < 0 || y >= cfg.Classes {
			t.Fatalf("label %d out of range", y)
		}
	}
	x, labels := d.Batch(true, []int{0, 3, 7})
	if !x.Shape().Equal([]int{3, 3, 64, 64}) || labels.Elems() != 3 {
		t.Fatalf("batch shapes %v / %v", x.Shape(), labels.Shape())
	}
	if int(labels.Data()[1]) != d.TrainY[3] {
		t.Fatal("batch labels misaligned")
	}
}

func TestSyntheticRejectsBadConfig(t *testing.T) {
	if _, err := data.Synthetic(data.Config{Classes: 1, TrainN: 10, TestN: 10, C: 1, H: 8, W: 8}); err == nil {
		t.Fatal("single class accepted")
	}
	if _, err := data.Synthetic(data.Config{Classes: 2, TrainN: 0, TestN: 10, C: 1, H: 8, W: 8}); err == nil {
		t.Fatal("empty train split accepted")
	}
}

// TestClassesAreSeparable: a nearest-prototype classifier on the clean
// class structure must beat chance by a wide margin, or the accuracy
// experiments would measure noise.
func TestClassesAreSeparable(t *testing.T) {
	cfg := data.CIFARLike(32, 200)
	cfg.MaxShift = 0 // align with prototypes for this sanity check
	d, err := data.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	img := cfg.C * cfg.H * cfg.W
	// Build per-class means from train, classify test by correlation.
	means := make([][]float64, cfg.Classes)
	counts := make([]int, cfg.Classes)
	for i := range means {
		means[i] = make([]float64, img)
	}
	for i, y := range d.TrainY {
		counts[y]++
		for j := 0; j < img; j++ {
			means[y][j] += float64(d.TrainX[i*img+j])
		}
	}
	for c := range means {
		if counts[c] == 0 {
			continue
		}
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for i, y := range d.TestY {
		best, bi := -1e18, -1
		for c := range means {
			if counts[c] == 0 {
				continue
			}
			var dot float64
			for j := 0; j < img; j++ {
				dot += means[c][j] * float64(d.TestX[i*img+j])
			}
			if dot > best {
				best, bi = dot, c
			}
		}
		if bi == y {
			correct++
		}
	}
	acc := float64(correct) / float64(len(d.TestY))
	if acc < 0.5 {
		t.Fatalf("nearest-prototype accuracy %.2f, classes not separable", acc)
	}
}

func TestShuffledIsPermutation(t *testing.T) {
	d, _ := data.Synthetic(data.CIFARLike(40, 10))
	p := d.Shuffled(rand.New(rand.NewSource(3)))
	seen := make([]bool, 40)
	for _, i := range p {
		if i < 0 || i >= 40 || seen[i] {
			t.Fatal("not a permutation")
		}
		seen[i] = true
	}
}
