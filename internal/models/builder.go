// Package models builds the computation graphs of the four architectures
// the paper evaluates — AlexNet, VGG-19, ResNet-18 and ResNet-50 — in
// both their ImageNet and CIFAR guises. Full-size graphs feed the
// memory-planning and throughput experiments (which need only shapes and
// the cost model); structurally identical scaled-down "mini" variants
// feed the CPU training experiments.
package models

import (
	"fmt"
	"math/rand"

	"splitcnn/internal/graph"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
)

// Model bundles a built graph with the handles the rest of the system
// needs: the image/label inputs, the logits and loss nodes, the ordered
// list of convolution layers (for split-depth bookkeeping), and the BN
// state registry shared across rebuilds.
type Model struct {
	Name     string
	Graph    *graph.Graph
	Input    *graph.Node
	Labels   *graph.Node
	Logits   *graph.Node
	Loss     *graph.Node
	Classes  int
	BNStates map[string]*nn.BNState
	// ConvNames lists convolution layers in input→output order; the
	// paper's splitting depth is a percentage of this list.
	ConvNames []string
}

// Config controls model construction.
type Config struct {
	// BatchSize is the leading dimension of every activation.
	BatchSize int
	// Classes is the classifier width (1000 ImageNet, 10 CIFAR).
	Classes int
	// InputC/H/W describe the input image tensor.
	InputC, InputH, InputW int
	// WidthDiv divides every channel count (1 = paper-size; >1 = the
	// mini variants used for CPU training). Channel counts never drop
	// below 4.
	WidthDiv int
	// BatchNorm inserts BN after every convolution (the CIFAR recipes
	// and all ResNets use it; classic AlexNet/VGG on ImageNet do not).
	BatchNorm bool
	// BNRecompute selects the memory-efficient In-Place-ABN-style BN
	// whose backward pass recomputes from the output (§6.3).
	BNRecompute bool
	// BNStates shares running statistics across rebuilds of the same
	// model; nil allocates a fresh registry.
	BNStates map[string]*nn.BNState
	// Eval builds the network in inference mode (BN uses running stats,
	// dropout is identity).
	Eval bool
}

func (c Config) width(ch int) int {
	if c.WidthDiv <= 1 {
		return ch
	}
	return max(ch/c.WidthDiv, 4)
}

// builder accumulates graph nodes while constructing a model.
type builder struct {
	cfg   Config
	g     *graph.Graph
	m     *Model
	cur   *graph.Node
	names map[string]bool
}

func newBuilder(name string, cfg Config) *builder {
	if cfg.BatchSize <= 0 || cfg.Classes <= 0 || cfg.InputC <= 0 || cfg.InputH <= 0 || cfg.InputW <= 0 {
		panic(fmt.Sprintf("models: invalid config %+v", cfg))
	}
	g := graph.New()
	m := &Model{
		Name:     name,
		Graph:    g,
		Classes:  cfg.Classes,
		BNStates: cfg.BNStates,
	}
	if m.BNStates == nil {
		m.BNStates = make(map[string]*nn.BNState)
	}
	b := &builder{cfg: cfg, g: g, m: m, names: make(map[string]bool)}
	m.Input = g.Input("image", tensor.Shape{cfg.BatchSize, cfg.InputC, cfg.InputH, cfg.InputW})
	m.Labels = g.Input("labels", tensor.Shape{cfg.BatchSize})
	b.cur = m.Input
	return b
}

func (b *builder) unique(name string) string {
	if b.names[name] {
		panic(fmt.Sprintf("models: duplicate layer name %q", name))
	}
	b.names[name] = true
	return name
}

// conv appends convolution (+ optional BN) + ReLU.
func (b *builder) conv(name string, outC, k, s, p int, relu bool) {
	name = b.unique(name)
	outC = b.cfg.width(outC)
	inC := b.cur.Shape.C()
	op := nn.NewConv(k, s, p)
	op.HasBias = !b.cfg.BatchNorm // BN makes the conv bias redundant
	w := b.g.Param(name+".w", tensor.Shape{outC, inC, k, k})
	ins := []*graph.Node{b.cur, w}
	if op.HasBias {
		ins = append(ins, b.g.Param(name+".b", tensor.Shape{outC}))
	}
	b.cur = b.g.Add(name, op, ins...)
	b.m.ConvNames = append(b.m.ConvNames, name)
	switch {
	case b.cfg.BatchNorm && b.cfg.BNRecompute && relu:
		// Memory-efficient path (§6.3): fuse BN and the activation into
		// the invertible In-Place ABN op, whose backward needs only its
		// own output — the conv output is never stashed.
		b.bnRelu(name+".bn", outC)
	case b.cfg.BatchNorm:
		b.bn(name+".bn", outC)
		if relu {
			b.relu(name + ".relu")
		}
	case relu:
		b.relu(name + ".relu")
	}
}

func (b *builder) bnRelu(name string, c int) {
	name = b.unique(name)
	st, ok := b.m.BNStates[name]
	if !ok {
		st = nn.NewBNState(name, c)
		b.m.BNStates[name] = st
	}
	op := nn.NewBNReLU(st)
	op.Training = !b.cfg.Eval
	gamma := b.g.Param(name+".gamma", tensor.Shape{c})
	beta := b.g.Param(name+".beta", tensor.Shape{c})
	b.cur = b.g.Add(name, op, b.cur, gamma, beta)
}

func (b *builder) bn(name string, c int) {
	name = b.unique(name)
	st, ok := b.m.BNStates[name]
	if !ok {
		st = nn.NewBNState(name, c)
		b.m.BNStates[name] = st
	}
	op := nn.NewBatchNorm(st)
	op.Recompute = b.cfg.BNRecompute
	op.Training = !b.cfg.Eval
	gamma := b.g.Param(name+".gamma", tensor.Shape{c})
	beta := b.g.Param(name+".beta", tensor.Shape{c})
	b.cur = b.g.Add(name, op, b.cur, gamma, beta)
}

func (b *builder) relu(name string) {
	b.cur = b.g.Add(b.unique(name), nn.ReLU{}, b.cur)
}

func (b *builder) maxPool(name string, k, s int) {
	b.cur = b.g.Add(b.unique(name), nn.NewMaxPool(k, s), b.cur)
}

func (b *builder) globalAvgPool(name string) {
	b.cur = b.g.Add(b.unique(name), nn.GlobalAvgPool{}, b.cur)
}

func (b *builder) flatten() {
	b.cur = b.g.Add(b.unique("flatten"), nn.Flatten{}, b.cur)
}

func (b *builder) linear(name string, outD int, relu bool) {
	name = b.unique(name)
	inD := b.cur.Shape[1]
	w := b.g.Param(name+".w", tensor.Shape{outD, inD})
	bias := b.g.Param(name+".b", tensor.Shape{outD})
	b.cur = b.g.Add(name, nn.Linear{}, b.cur, w, bias)
	if relu {
		b.relu(name + ".relu")
	}
}

func (b *builder) dropout(name string, p float64) {
	// The executor is single-threaded; ops may keep private RNG state.
	op := &nn.Dropout{P: p, Training: !b.cfg.Eval, Rng: rand.New(rand.NewSource(int64(0xD0 + len(b.g.Nodes))))}
	b.cur = b.g.Add(b.unique(name), op, b.cur)
}

// finish attaches the classifier head loss and returns the model.
func (b *builder) finish() *Model {
	b.m.Logits = b.cur
	b.m.Loss = b.g.Add("loss", nn.SoftmaxCrossEntropy{}, b.cur, b.m.Labels)
	b.g.SetOutput(b.m.Loss)
	return b.m
}

// ConvCount returns the number of convolution layers, the denominator of
// the paper's splitting-depth percentage.
func (m *Model) ConvCount() int { return len(m.ConvNames) }
