package models

import (
	"fmt"

	"splitcnn/internal/graph"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
)

// convBN appends a conv (no activation) followed by BN and returns the
// resulting node, leaving b.cur untouched by the caller's bookkeeping.
func (b *builder) convBNFrom(from *graph.Node, name string, outC, k, s, p int, relu bool) *graph.Node {
	saved := b.cur
	b.cur = from
	b.conv(name, outC, k, s, p, relu)
	out := b.cur
	b.cur = saved
	return out
}

// basicBlock is the two-conv residual block of ResNet-18/34.
func (b *builder) basicBlock(name string, outC, stride int) {
	in := b.cur
	inC := in.Shape.C()
	outCw := b.cfg.width(outC)

	y := b.convBNFrom(in, name+".conv1", outC, 3, stride, 1, true)
	y = b.convBNFrom(y, name+".conv2", outC, 3, 1, 1, false)

	short := in
	if stride != 1 || inC != outCw {
		// Projection shortcut: 1x1 stride-s convolution. With k < s this
		// is exactly the downsampling case the split formulation's
		// k >= s mandate excludes (§3.1).
		short = b.convBNFrom(in, name+".proj", outC, 1, stride, 0, false)
	}
	b.cur = b.g.Add(b.unique(name+".add"), &nn.Add{N: 2}, y, short)
	b.relu(name + ".relu2")
}

// bottleneckBlock is the three-conv block of ResNet-50 (expansion 4,
// stride on the 3x3 as in torchvision).
func (b *builder) bottleneckBlock(name string, midC, stride int) {
	in := b.cur
	inC := in.Shape.C()
	outCw := b.cfg.width(midC * 4)

	y := b.convBNFrom(in, name+".conv1", midC, 1, 1, 0, true)
	y = b.convBNFrom(y, name+".conv2", midC, 3, stride, 1, true)
	y = b.convBNFrom(y, name+".conv3", midC*4, 1, 1, 0, false)

	short := in
	if stride != 1 || inC != outCw {
		short = b.convBNFrom(in, name+".proj", midC*4, 1, stride, 0, false)
	}
	b.cur = b.g.Add(b.unique(name+".add"), &nn.Add{N: 2}, y, short)
	b.relu(name + ".relu3")
}

// resNet assembles a residual network. blocksPerStage is e.g.
// {2, 2, 2, 2} for ResNet-18 or {3, 4, 6, 3} for ResNet-50; bottleneck
// selects the three-conv block. CIFAR-style stems (3x3/1, no max pool)
// are used when the input is smaller than 64 pixels.
func resNet(name string, cfg Config, blocksPerStage [4]int, bottleneck bool) *Model {
	cfg.BatchNorm = true // the ResNet family is inseparable from BN
	b := newBuilder(name, cfg)
	imageNetStem := cfg.InputH >= 64
	if imageNetStem {
		b.conv("stem", 64, 7, 2, 3, true)
		mp := &nn.MaxPool{Params: tensor.ConvParams{KH: 3, KW: 3, SH: 2, SW: 2, Pad: tensor.Symmetric(1)}}
		b.cur = b.g.Add(b.unique("stem.pool"), mp, b.cur)
	} else {
		b.conv("stem", 64, 3, 1, 1, true)
	}
	channels := [4]int{64, 128, 256, 512}
	for stage, nBlocks := range blocksPerStage {
		stride := 2
		if stage == 0 {
			stride = 1
		}
		for blk := 0; blk < nBlocks; blk++ {
			s := 1
			if blk == 0 {
				s = stride
			}
			bn := fmt.Sprintf("s%db%d", stage+1, blk+1)
			if bottleneck {
				b.bottleneckBlock(bn, channels[stage], s)
			} else {
				b.basicBlock(bn, channels[stage], s)
			}
		}
	}
	b.globalAvgPool("gap")
	b.flatten()
	b.linear("fc", cfg.Classes, false)
	return b.finish()
}

// ResNet18 builds ResNet-18 (basic blocks, {2,2,2,2}).
func ResNet18(cfg Config) *Model { return resNet("resnet18", cfg, [4]int{2, 2, 2, 2}, false) }

// ResNet50 builds ResNet-50 (bottleneck blocks, {3,4,6,3}).
func ResNet50(cfg Config) *Model { return resNet("resnet50", cfg, [4]int{3, 4, 6, 3}, true) }

// ResNet18ImageNet returns the paper-size ResNet-18 on 224x224 inputs,
// as profiled in Figure 1.
func ResNet18ImageNet(batch int) *Model {
	return ResNet18(Config{BatchSize: batch, Classes: 1000, InputC: 3, InputH: 224, InputW: 224})
}

// ResNet50ImageNet returns the paper-size ResNet-50 on 224x224 inputs.
func ResNet50ImageNet(batch int) *Model {
	return ResNet50(Config{BatchSize: batch, Classes: 1000, InputC: 3, InputH: 224, InputW: 224})
}

// ResNet18CIFAR returns the CIFAR-10 adaptation (3x3 stem, no stem
// pooling) used in the accuracy experiments.
func ResNet18CIFAR(batch int, cfg Config) *Model {
	cfg.BatchSize = batch
	cfg.Classes = 10
	cfg.InputC, cfg.InputH, cfg.InputW = 3, 32, 32
	return ResNet18(cfg)
}
