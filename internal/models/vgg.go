package models

import "fmt"

// vgg19Plan and vgg16Plan are the layer plans of configurations E and D
// of Simonyan & Zisserman: channel counts with -1 marking 2x2/2 pools.
var (
	vgg19Plan = []int{64, 64, -1, 128, 128, -1, 256, 256, 256, 256, -1, 512, 512, 512, 512, -1, 512, 512, 512, 512, -1}
	vgg16Plan = []int{64, 64, -1, 128, 128, -1, 256, 256, 256, -1, 512, 512, 512, -1, 512, 512, 512, -1}
)

// VGG16 builds VGG-16 (the network vDNN's evaluation trained at batch
// 256 with 18% throughput degradation, §2.2.2).
func VGG16(cfg Config) *Model { return vgg("vgg16", vgg16Plan, cfg) }

// VGG19 builds VGG-19. With cfg.InputH >= 64 it attaches the ImageNet
// head (4096-4096-classes with dropout); smaller inputs get the single
// linear CIFAR head.
func VGG19(cfg Config) *Model { return vgg("vgg19", vgg19Plan, cfg) }

func vgg(name string, plan []int, cfg Config) *Model {
	b := newBuilder(name, cfg)
	ci := 0
	for _, ch := range plan {
		if ch == -1 {
			b.maxPool(fmt.Sprintf("pool%d", ci), 2, 2)
			continue
		}
		ci++
		b.conv(fmt.Sprintf("conv%d", ci), ch, 3, 1, 1, true)
	}
	b.flatten()
	if cfg.InputH >= 64 {
		b.linear("fc1", 4096/max(cfg.WidthDiv, 1), true)
		b.dropout("drop1", 0.5)
		b.linear("fc2", 4096/max(cfg.WidthDiv, 1), true)
		b.dropout("drop2", 0.5)
		b.linear("fc3", cfg.Classes, false)
	} else {
		b.linear("fc", cfg.Classes, false)
	}
	return b.finish()
}

// VGG19ImageNet returns the paper-size VGG-19 on 224x224 ImageNet
// inputs, as profiled in Figure 1.
func VGG19ImageNet(batch int) *Model {
	return VGG19(Config{BatchSize: batch, Classes: 1000, InputC: 3, InputH: 224, InputW: 224})
}

// VGG19CIFAR returns the CIFAR-10 adaptation (32x32 inputs, BN after
// every convolution, single linear head) used in the accuracy
// experiments of §5.2.
func VGG19CIFAR(batch int, cfg Config) *Model {
	cfg.BatchSize = batch
	cfg.Classes = 10
	cfg.InputC, cfg.InputH, cfg.InputW = 3, 32, 32
	cfg.BatchNorm = true
	return VGG19(cfg)
}
