package models

import "fmt"

// Build constructs a model by architecture name: "alexnet", "vgg19",
// "resnet18" or "resnet50". The Config carries everything else (input
// geometry, width divisor, BN options, shared BN states, eval mode).
// Graph-construction panics (e.g. an input too small for the
// architecture's pooling pyramid) are returned as errors.
func Build(arch string, cfg Config) (m *Model, err error) {
	defer func() {
		if r := recover(); r != nil {
			m, err = nil, fmt.Errorf("models: %s with input %dx%d: %v", arch, cfg.InputH, cfg.InputW, r)
		}
	}()
	switch arch {
	case "alexnet":
		return AlexNet(cfg), nil
	case "vgg16":
		return VGG16(cfg), nil
	case "vgg19":
		return VGG19(cfg), nil
	case "resnet18":
		return ResNet18(cfg), nil
	case "resnet50":
		return ResNet50(cfg), nil
	default:
		return nil, fmt.Errorf("models: unknown architecture %q (want alexnet, vgg16, vgg19, resnet18 or resnet50)", arch)
	}
}

// Architectures lists the supported architecture names.
func Architectures() []string {
	return []string{"alexnet", "vgg16", "vgg19", "resnet18", "resnet50"}
}
