package models_test

import (
	"math/rand"
	"testing"

	"splitcnn/internal/graph"
	"splitcnn/internal/models"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
)

func TestVGG19ImageNetStructure(t *testing.T) {
	m := models.VGG19ImageNet(2)
	if got := m.ConvCount(); got != 16 {
		t.Fatalf("VGG-19 conv count = %d, want 16", got)
	}
	if _, err := m.Graph.Topo(); err != nil {
		t.Fatalf("topo: %v", err)
	}
	// Classifier head present.
	if m.Graph.FindNode("fc3") == nil {
		t.Fatal("missing fc3")
	}
	if !m.Logits.Shape.Equal(tensor.Shape{2, 1000}) {
		t.Fatalf("logits shape %v", m.Logits.Shape)
	}
	// Parameter count of full VGG-19 is ~143.6M.
	store := graph.NewParamStore()
	store.InitFromGraph(m.Graph, rand.New(rand.NewSource(1)), nil)
	n := store.NumElems()
	if n < 140_000_000 || n > 147_000_000 {
		t.Fatalf("VGG-19 params = %d, want ~143.6M", n)
	}
}

func TestResNet18ImageNetStructure(t *testing.T) {
	m := models.ResNet18ImageNet(2)
	// 1 stem + 16 block convs + 3 projection convs = 20.
	if got := m.ConvCount(); got != 20 {
		t.Fatalf("ResNet-18 conv count = %d, want 20", got)
	}
	store := graph.NewParamStore()
	store.InitFromGraph(m.Graph, rand.New(rand.NewSource(1)), nil)
	n := store.NumElems()
	// ~11.7M parameters.
	if n < 11_000_000 || n > 12_500_000 {
		t.Fatalf("ResNet-18 params = %d, want ~11.7M", n)
	}
	if !m.Logits.Shape.Equal(tensor.Shape{2, 1000}) {
		t.Fatalf("logits shape %v", m.Logits.Shape)
	}
}

func TestResNet50Structure(t *testing.T) {
	m := models.ResNet50ImageNet(1)
	// 1 stem + 3*16 block convs + 4 projections = 53.
	if got := m.ConvCount(); got != 53 {
		t.Fatalf("ResNet-50 conv count = %d, want 53", got)
	}
	store := graph.NewParamStore()
	store.InitFromGraph(m.Graph, rand.New(rand.NewSource(1)), nil)
	n := store.NumElems()
	// ~25.6M parameters.
	if n < 24_000_000 || n > 27_000_000 {
		t.Fatalf("ResNet-50 params = %d, want ~25.6M", n)
	}
}

func TestAlexNetStructure(t *testing.T) {
	m := models.AlexNetImageNet(2)
	if got := m.ConvCount(); got != 5 {
		t.Fatalf("AlexNet conv count = %d, want 5", got)
	}
	store := graph.NewParamStore()
	store.InitFromGraph(m.Graph, rand.New(rand.NewSource(1)), nil)
	n := store.NumElems()
	// ~61M parameters.
	if n < 57_000_000 || n > 65_000_000 {
		t.Fatalf("AlexNet params = %d, want ~61M", n)
	}
}

// TestMiniModelsForwardBackward runs a real forward+backward step on
// scaled-down variants of all four architectures.
func TestMiniModelsForwardBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		name  string
		build func() *models.Model
	}{
		{"vgg19-cifar", func() *models.Model {
			return models.VGG19CIFAR(2, models.Config{WidthDiv: 16})
		}},
		{"resnet18-cifar", func() *models.Model {
			return models.ResNet18CIFAR(2, models.Config{WidthDiv: 16})
		}},
		{"alexnet-mini", func() *models.Model {
			return models.AlexNet(models.Config{BatchSize: 2, Classes: 10, InputC: 3, InputH: 64, InputW: 64, WidthDiv: 16})
		}},
		{"resnet50-mini", func() *models.Model {
			return models.ResNet50(models.Config{BatchSize: 2, Classes: 10, InputC: 3, InputH: 64, InputW: 64, WidthDiv: 16})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.build()
			store := graph.NewParamStore()
			store.InitFromGraph(m.Graph, rng, nn.KaimingInit)
			ex, err := graph.NewExecutor(m.Graph, store)
			if err != nil {
				t.Fatal(err)
			}
			in := m.Input.Shape
			x := tensor.New(in...)
			x.RandNormal(rng, 1)
			labels := tensor.New(m.Labels.Shape...)
			for i := range labels.Data() {
				labels.Data()[i] = float32(i % m.Classes)
			}
			outs, err := ex.Forward(graph.Feeds{"image": x, "labels": labels})
			if err != nil {
				t.Fatal(err)
			}
			loss := float64(outs[0].Data()[0])
			if loss <= 0 || loss > 100 {
				t.Fatalf("initial loss %v implausible", loss)
			}
			if err := ex.Backward(); err != nil {
				t.Fatal(err)
			}
			// Every trainable parameter must receive some gradient mass
			// (allowing for dead ReLUs, check aggregate).
			var mass float64
			for _, p := range store.All() {
				for _, g := range p.Grad.Data() {
					if g != 0 {
						mass++
					}
				}
			}
			if mass == 0 {
				t.Fatal("no gradient reached any parameter")
			}
		})
	}
}

// TestBNStateSharingAcrossRebuilds verifies that rebuilding a model with
// the same BNStates map reuses running statistics — the mechanism that
// lets stochastic split rewrites and the eval-mode unsplit graph agree.
func TestBNStateSharingAcrossRebuilds(t *testing.T) {
	m1 := models.ResNet18CIFAR(2, models.Config{WidthDiv: 16})
	m2 := models.ResNet18CIFAR(2, models.Config{WidthDiv: 16, BNStates: m1.BNStates})
	if len(m1.BNStates) == 0 {
		t.Fatal("no BN states registered")
	}
	for name, st := range m1.BNStates {
		if m2.BNStates[name] != st {
			t.Fatalf("BN state %q not shared", name)
		}
	}
}

func TestVGG16Structure(t *testing.T) {
	m, err := models.Build("vgg16", models.Config{BatchSize: 1, Classes: 1000, InputC: 3, InputH: 224, InputW: 224})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ConvCount(); got != 13 {
		t.Fatalf("VGG-16 conv count = %d, want 13", got)
	}
	store := graph.NewParamStore()
	store.InitFromGraph(m.Graph, rand.New(rand.NewSource(1)), nil)
	n := store.NumElems()
	// ~138.4M parameters.
	if n < 135_000_000 || n > 141_000_000 {
		t.Fatalf("VGG-16 params = %d, want ~138M", n)
	}
}

func TestBuildRegistry(t *testing.T) {
	if _, err := models.Build("bogus", models.Config{BatchSize: 1, Classes: 2, InputC: 1, InputH: 8, InputW: 8}); err == nil {
		t.Fatal("unknown arch accepted")
	}
	if len(models.Architectures()) != 5 {
		t.Fatalf("architectures: %v", models.Architectures())
	}
}
