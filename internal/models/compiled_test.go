package models_test

import (
	"fmt"
	"math/rand"
	"testing"

	"splitcnn/internal/graph"
	"splitcnn/internal/models"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
)

// buildCompiledCase builds one mini model for the compiled-vs-interpreted
// matrix. bnRecompute selects the In-Place-ABN variant (BNReLU coverage);
// bnStates shares running statistics across rebuilds.
func buildCompiledCase(t *testing.T, arch string, batch int, eval, bnRecompute bool, bnStates map[string]*nn.BNState) *models.Model {
	t.Helper()
	cfg := models.Config{
		BatchSize: batch,
		Classes:   10,
		InputC:    3,
		InputH:    32,
		InputW:    32,
		WidthDiv:  16,
		Eval:      eval,
		BNStates:  bnStates,
	}
	if arch == "alexnet" {
		// AlexNet's pooling pyramid needs a larger input.
		cfg.InputH, cfg.InputW = 64, 64
	}
	if bnRecompute {
		cfg.BatchNorm = true
		cfg.BNRecompute = true
	}
	m, err := models.Build(arch, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Expose the logits next to the loss, like train.Evaluate does.
	m.Graph.Outputs = append(m.Graph.Outputs, m.Logits)
	return m
}

// perturbBNStats moves the shared running statistics off their (0, 1)
// initialization so the eval-mode normalization is non-trivial.
func perturbBNStats(states map[string]*nn.BNState, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, st := range states {
		for ch := range st.RunningMean {
			st.RunningMean[ch] = rng.NormFloat64() * 0.2
			st.RunningVar[ch] = 0.5 + rng.Float64()
		}
		st.Invalidate()
	}
}

func modelFeeds(m *models.Model, seed int64) graph.Feeds {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(m.Input.Shape...)
	for i, d := 0, x.Data(); i < len(d); i++ {
		d[i] = rng.Float32()*2 - 1
	}
	y := tensor.New(m.Labels.Shape...)
	for i := range y.Data() {
		y.Data()[i] = float32(rng.Intn(m.Classes))
	}
	return graph.Feeds{"image": x, "labels": y}
}

// TestCompiledBitIdentityMatrix pins the headline contract: for every
// bundled architecture, in eval and train modes, at batch sizes 1/3/8,
// the compiled program's loss and logits are bit-identical to the
// interpreted arena executor's.
//
// The interpreted and compiled runs use independently built graphs so
// each side owns its own modal ops (the builder seeds dropout RNGs
// deterministically, so both builds hold identical streams), with one
// shared parameter store. Eval mode also shares the BN state registry —
// running statistics are read-only there — while train mode keeps the
// registries separate so each side's State.Update stays private.
func TestCompiledBitIdentityMatrix(t *testing.T) {
	cases := []struct {
		arch        string
		bnRecompute bool
	}{
		{"alexnet", false},
		{"vgg16", false},
		{"vgg19", false},
		{"resnet18", false},
		{"resnet50", false},
		{"resnet18", true}, // In-Place ABN: BNReLU coverage
	}
	for _, tc := range cases {
		for _, eval := range []bool{true, false} {
			for _, batch := range []int{1, 3, 8} {
				name := fmt.Sprintf("%s/eval=%v/batch=%d", tc.arch, eval, batch)
				if tc.bnRecompute {
					name = fmt.Sprintf("%s-abn/eval=%v/batch=%d", tc.arch, eval, batch)
				}
				t.Run(name, func(t *testing.T) {
					seed := int64(len(name))*1000 + int64(batch)

					mi := buildCompiledCase(t, tc.arch, batch, eval, tc.bnRecompute, nil)
					var shared map[string]*nn.BNState
					if eval {
						shared = mi.BNStates
						perturbBNStats(shared, seed)
					}
					mc := buildCompiledCase(t, tc.arch, batch, eval, tc.bnRecompute, shared)

					store := graph.NewParamStore()
					store.InitFromGraph(mi.Graph, rand.New(rand.NewSource(seed)), nn.KaimingInit)

					ex, err := graph.NewExecutor(mi.Graph, store)
					if err != nil {
						t.Fatal(err)
					}
					ex.UseArena(tensor.NewArena())
					ref, err := ex.Forward(modelFeeds(mi, seed+1))
					if err != nil {
						t.Fatalf("interpreted: %v", err)
					}

					prog, err := graph.Compile(mc.Graph, store, graph.CompileOptions{})
					if err != nil {
						t.Fatalf("compile: %v", err)
					}
					outs, err := prog.Forward(modelFeeds(mc, seed+1))
					if err != nil {
						t.Fatalf("compiled: %v", err)
					}

					if len(ref) != len(outs) {
						t.Fatalf("%d outputs vs %d", len(outs), len(ref))
					}
					for oi := range ref {
						wd, gd := ref[oi].Data(), outs[oi].Data()
						if len(wd) != len(gd) {
							t.Fatalf("output %d: %d elems vs %d", oi, len(gd), len(wd))
						}
						for i := range wd {
							if wd[i] != gd[i] {
								t.Fatalf("output %d elem %d: compiled %x vs interpreted %x",
									oi, i, gd[i], wd[i])
							}
						}
					}

					st := prog.Stats()
					if eval && st.Fused == 0 {
						t.Fatalf("eval-mode %s compiled with zero fused passes: %+v", tc.arch, st)
					}
					if st.SlabBytes > st.NoReuseBytes {
						t.Fatalf("slab %d exceeds no-reuse baseline %d", st.SlabBytes, st.NoReuseBytes)
					}
				})
			}
		}
	}
}
