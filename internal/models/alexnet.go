package models

// AlexNet builds the Krizhevsky et al. architecture (the single-tower
// torchvision variant). Its 11x11/4 and 5x5/1 convolutions exercise the
// k > s window cases of the split formulation.
func AlexNet(cfg Config) *Model {
	b := newBuilder("alexnet", cfg)
	b.conv("conv1", 64, 11, 4, 2, true)
	b.maxPool("pool1", 3, 2)
	b.conv("conv2", 192, 5, 1, 2, true)
	b.maxPool("pool2", 3, 2)
	b.conv("conv3", 384, 3, 1, 1, true)
	b.conv("conv4", 256, 3, 1, 1, true)
	b.conv("conv5", 256, 3, 1, 1, true)
	b.maxPool("pool3", 3, 2)
	b.flatten()
	b.dropout("drop1", 0.5)
	b.linear("fc1", 4096/max(cfg.WidthDiv, 1), true)
	b.dropout("drop2", 0.5)
	b.linear("fc2", 4096/max(cfg.WidthDiv, 1), true)
	b.linear("fc3", cfg.Classes, false)
	return b.finish()
}

// AlexNetImageNet returns the paper-size AlexNet on 224x224 inputs.
func AlexNetImageNet(batch int) *Model {
	return AlexNet(Config{BatchSize: batch, Classes: 1000, InputC: 3, InputH: 224, InputW: 224})
}
