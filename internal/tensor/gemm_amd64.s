#include "textflag.h"

// func gemmKernelFMA(kc int, a, b, c *float32, ldc int)
//
// 6x16 SGEMM micro-kernel: C[0:6][0:16] += A·B where A is the packed
// MR-wide k-major panel and B the packed NR-wide k-major panel.
// Register plan: Y0..Y11 hold the twelve 8-float halves of the 6x16 C
// tile, Y12/Y13 hold the current B row, Y14/Y15 alternate as the A
// broadcast. Per k step: 2 B loads, 6 broadcasts, 12 FMAs — FMA-bound,
// which is the point.
TEXT ·gemmKernelFMA(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ c+24(FP), DI
	MOVQ ldc+32(FP), R8
	SHLQ $2, R8            // C row stride in bytes

	// Load the 6x16 C tile.
	MOVQ    DI, R9
	VMOVUPS (R9), Y0
	VMOVUPS 32(R9), Y1
	ADDQ    R8, R9
	VMOVUPS (R9), Y2
	VMOVUPS 32(R9), Y3
	ADDQ    R8, R9
	VMOVUPS (R9), Y4
	VMOVUPS 32(R9), Y5
	ADDQ    R8, R9
	VMOVUPS (R9), Y6
	VMOVUPS 32(R9), Y7
	ADDQ    R8, R9
	VMOVUPS (R9), Y8
	VMOVUPS 32(R9), Y9
	ADDQ    R8, R9
	VMOVUPS (R9), Y10
	VMOVUPS 32(R9), Y11

loop:
	VMOVUPS      (BX), Y12
	VMOVUPS      32(BX), Y13
	VBROADCASTSS (SI), Y14
	VFMADD231PS  Y12, Y14, Y0
	VFMADD231PS  Y13, Y14, Y1
	VBROADCASTSS 4(SI), Y15
	VFMADD231PS  Y12, Y15, Y2
	VFMADD231PS  Y13, Y15, Y3
	VBROADCASTSS 8(SI), Y14
	VFMADD231PS  Y12, Y14, Y4
	VFMADD231PS  Y13, Y14, Y5
	VBROADCASTSS 12(SI), Y15
	VFMADD231PS  Y12, Y15, Y6
	VFMADD231PS  Y13, Y15, Y7
	VBROADCASTSS 16(SI), Y14
	VFMADD231PS  Y12, Y14, Y8
	VFMADD231PS  Y13, Y14, Y9
	VBROADCASTSS 20(SI), Y15
	VFMADD231PS  Y12, Y15, Y10
	VFMADD231PS  Y13, Y15, Y11
	ADDQ         $24, SI   // 6 floats of A
	ADDQ         $64, BX   // 16 floats of B
	DECQ         CX
	JNZ          loop

	// Store the tile back.
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	ADDQ    R8, DI
	VMOVUPS Y2, (DI)
	VMOVUPS Y3, 32(DI)
	ADDQ    R8, DI
	VMOVUPS Y4, (DI)
	VMOVUPS Y5, 32(DI)
	ADDQ    R8, DI
	VMOVUPS Y6, (DI)
	VMOVUPS Y7, 32(DI)
	ADDQ    R8, DI
	VMOVUPS Y8, (DI)
	VMOVUPS Y9, 32(DI)
	ADDQ    R8, DI
	VMOVUPS Y10, (DI)
	VMOVUPS Y11, 32(DI)
	VZEROUPPER
	RET

// func cpuidex(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL subleaf+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
