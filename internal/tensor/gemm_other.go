//go:build !amd64

package tensor

// Non-amd64 builds always use the portable micro-kernel.
const useAsmKernel = false

func gemmKernelFMA(kc int, a, b, c *float32, ldc int) {
	panic("tensor: gemmKernelFMA unavailable on this architecture")
}
