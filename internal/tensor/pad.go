package tensor

import "fmt"

// Pad2D describes asymmetric spatial zero-padding for NCHW tensors.
// Split-CNN fundamentally relies on asymmetric padding: each interior
// patch of a split operation receives begin/end padding computed from
// the split scheme (§3.1), so top/bottom and left/right are independent.
type Pad2D struct {
	Top, Bottom, Left, Right int
}

// Symmetric returns padding of p on every side.
func Symmetric(p int) Pad2D { return Pad2D{p, p, p, p} }

// String renders the padding as (t,b,l,r).
func (p Pad2D) String() string {
	return fmt.Sprintf("(t=%d,b=%d,l=%d,r=%d)", p.Top, p.Bottom, p.Left, p.Right)
}

// PadSpatial returns a copy of x zero-padded spatially according to p.
// x must be NCHW.
func PadSpatial(x *Tensor, p Pad2D) *Tensor {
	n, c, h, w := x.shape.N(), x.shape.C(), x.shape.H(), x.shape.W()
	oh, ow := h+p.Top+p.Bottom, w+p.Left+p.Right
	out := New(n, c, oh, ow)
	parallelFor(n*c, func(lo, hi int) {
		for nc := lo; nc < hi; nc++ {
			src := x.data[nc*h*w : (nc+1)*h*w]
			dst := out.data[nc*oh*ow : (nc+1)*oh*ow]
			for y := 0; y < h; y++ {
				copy(dst[(y+p.Top)*ow+p.Left:(y+p.Top)*ow+p.Left+w], src[y*w:(y+1)*w])
			}
		}
	})
	return out
}

// UnpadSpatial is the adjoint of PadSpatial: it extracts the interior
// region of g (shaped like PadSpatial's output) back into an [n,c,h,w]
// tensor. It is used to back-propagate through padding.
func UnpadSpatial(g *Tensor, p Pad2D, h, w int) *Tensor {
	n, c := g.shape.N(), g.shape.C()
	gh, gw := g.shape.H(), g.shape.W()
	if gh != h+p.Top+p.Bottom || gw != w+p.Left+p.Right {
		panic(fmt.Sprintf("tensor.UnpadSpatial: grad shape %v does not match padded (%d,%d)+%v", g.shape, h, w, p))
	}
	out := New(n, c, h, w)
	parallelFor(n*c, func(lo, hi int) {
		for nc := lo; nc < hi; nc++ {
			src := g.data[nc*gh*gw : (nc+1)*gh*gw]
			dst := out.data[nc*h*w : (nc+1)*h*w]
			for y := 0; y < h; y++ {
				copy(dst[y*w:(y+1)*w], src[(y+p.Top)*gw+p.Left:(y+p.Top)*gw+p.Left+w])
			}
		}
	})
	return out
}
