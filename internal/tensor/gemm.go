package tensor

// Cache-blocked, panel-packed SGEMM in the BLIS/GotoBLAS style. One
// driver backs MatMul, MatMulAT, and MatMulBT (and the alpha/beta Gemm
// entry point): the three loops around the micro-kernel block the
// operands so the packed B panel stays L3/L2-resident and the packed A
// block stays L2-resident, and the innermost computation is a
// register-blocked MR x NR micro-kernel (AVX2+FMA assembly on capable
// amd64 hardware, a pure-Go register tile otherwise).
//
// Packing normalizes both transpose variants into the same panel
// layout — A panels are MR rows wide and k-major, B panels are NR
// columns wide and k-major — so transA/transB cost only a different
// gather order during packing, never a different kernel.

const (
	// gemmMR x gemmNR is the register tile: 6x16 float32 = twelve YMM
	// accumulators, leaving registers for two B vectors and the A
	// broadcast in the FMA kernel.
	gemmMR = 6
	gemmNR = 16
)

// Cache blocking (elements): the packed A block is MC x KC
// (~120 KiB, L2-resident), each B panel slice of KC x NC is streamed
// through L2/L3. These are conservative defaults for the ~1 MiB L2 of
// the Xeon-class parts this repo targets; they are variables so
// benchmarks can tune them.
var (
	gemmMC = 126 // multiple of gemmMR
	gemmKC = 256
	gemmNC = 2048 // multiple of gemmNR
)

// Gemm computes dst = alpha*op(a)@op(b) + beta*dst for rank-2 tensors,
// where op(x) is x-transposed when the corresponding flag is set.
// Shapes follow the op() view: op(a) is [m, k], op(b) is [k, n], dst is
// [m, n]. dst must not alias a or b.
func Gemm(dst, a, b *Tensor, alpha, beta float32, transA, transB bool) {
	m, k, n := checkMatMul("Gemm", dst, a, b, transA, transB)
	gemm(dst.data, a.data, b.data, m, k, n, alpha, beta, transA, transB)
}

func gemm(dd, ad, bd []float32, m, k, n int, alpha, beta float32, transA, transB bool) {
	// beta pre-pass: the kernel always accumulates into dst.
	if beta == 0 {
		clear(dd[:m*n])
	} else if beta != 1 {
		for i, v := range dd[:m*n] {
			dd[i] = v * beta
		}
	}
	if alpha == 0 || k == 0 {
		return
	}
	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		ncPanels := (nc + gemmNR - 1) / gemmNR
		for pc := 0; pc < k; pc += gemmKC {
			kc := min(gemmKC, k-pc)
			bufB := getScratch(ncPanels * kc * gemmNR)
			packB(bufB, bd, pc, jc, kc, nc, n, k, transB)
			for ic := 0; ic < m; ic += gemmMC {
				mc := min(gemmMC, m-ic)
				mPanels := (mc + gemmMR - 1) / gemmMR
				bufA := getScratch(mPanels * kc * gemmMR)
				packA(bufA, ad, ic, pc, mc, kc, m, k, alpha, transA)
				// Fan the row panels of this block out over the worker
				// pool only when the block carries enough arithmetic to
				// amortize the dispatch (~1 MFLOP per panel).
				minPar := 2
				if 2*mc*nc*kc < 1<<21 {
					minPar = mPanels + 1
				}
				parallelRange(mPanels, minPar, gemmTileArgs{
					dd: dd, bufA: bufA, bufB: bufB,
					ic: ic, jc: jc, mc: mc, nc: nc, kc: kc, ldc: n,
				}, gemmTiles)
				putScratch(bufA)
			}
			putScratch(bufB)
		}
	}
}

// gemmTileArgs carries one packed block's geometry to gemmTiles through
// parallelRange without a closure (see parallel.go on why).
type gemmTileArgs struct {
	dd, bufA, bufB          []float32
	ic, jc, mc, nc, kc, ldc int
}

// gemmTiles computes the micro-tiles of row panels [lo, hi) of one
// packed (A block, B panel) pair. Full MRxNR tiles accumulate straight
// into dst; edge tiles go through a stack scratch tile so the kernel
// never writes out of bounds.
func gemmTiles(t gemmTileArgs, lo, hi int) {
	var tile [gemmMR * gemmNR]float32
	for pi := lo; pi < hi; pi++ {
		i0 := pi * gemmMR
		rows := min(gemmMR, t.mc-i0)
		ap := t.bufA[pi*t.kc*gemmMR:]
		for j0 := 0; j0 < t.nc; j0 += gemmNR {
			cols := min(gemmNR, t.nc-j0)
			bp := t.bufB[(j0/gemmNR)*t.kc*gemmNR:]
			if rows == gemmMR && cols == gemmNR {
				c := t.dd[(t.ic+i0)*t.ldc+t.jc+j0:]
				gemmKernel(t.kc, ap, bp, c, t.ldc)
			} else {
				clear(tile[:])
				gemmKernel(t.kc, ap, bp, tile[:], gemmNR)
				for i := 0; i < rows; i++ {
					drow := t.dd[(t.ic+i0+i)*t.ldc+t.jc+j0:]
					trow := tile[i*gemmNR:]
					for j := 0; j < cols; j++ {
						drow[j] += trow[j]
					}
				}
			}
		}
	}
}

// gemmKernel computes c[0:MR][0:NR] += a-panel @ b-panel over kc steps,
// with c strided by ldc floats per row. a is k-major MR-wide, b is
// k-major NR-wide (the packed layouts).
func gemmKernel(kc int, a, b, c []float32, ldc int) {
	if useAsmKernel {
		gemmKernelFMA(kc, &a[0], &b[0], &c[0], ldc)
		return
	}
	gemmKernelGo(kc, a, b, c, ldc)
}

// gemmKernelGo is the portable micro-kernel: the same register-tile
// shape as the assembly one, expressed as a local accumulator array the
// compiler keeps in registers/stack. It is also the reference the
// assembly kernel is cross-checked against in tests.
func gemmKernelGo(kc int, a, b, c []float32, ldc int) {
	var acc [gemmMR][gemmNR]float32
	for i := 0; i < gemmMR; i++ {
		copy(acc[i][:], c[i*ldc:i*ldc+gemmNR])
	}
	for p := 0; p < kc; p++ {
		bp := b[p*gemmNR : p*gemmNR+gemmNR]
		ap := a[p*gemmMR : p*gemmMR+gemmMR]
		for i := 0; i < gemmMR; i++ {
			av := ap[i]
			ci := &acc[i]
			for j := 0; j < gemmNR; j++ {
				ci[j] += av * bp[j]
			}
		}
	}
	for i := 0; i < gemmMR; i++ {
		copy(c[i*ldc:i*ldc+gemmNR], acc[i][:])
	}
}

// packA copies the mc x kc block of op(A) starting at (ic, pc) into
// MR-row panels, k-major within each panel, scaling by alpha and
// zero-padding the last panel's row tail. op(A)[i][p] is a[i*k+p]
// untransposed and a[p*m+i] transposed.
func packA(dst, a []float32, ic, pc, mc, kc, m, k int, alpha float32, transA bool) {
	for i0 := 0; i0 < mc; i0 += gemmMR {
		rows := min(gemmMR, mc-i0)
		panel := dst[(i0/gemmMR)*kc*gemmMR:]
		if !transA {
			for p := 0; p < kc; p++ {
				col := panel[p*gemmMR : p*gemmMR+gemmMR]
				base := (ic+i0)*k + pc + p
				for i := 0; i < rows; i++ {
					col[i] = alpha * a[base+i*k]
				}
				for i := rows; i < gemmMR; i++ {
					col[i] = 0
				}
			}
		} else {
			for p := 0; p < kc; p++ {
				col := panel[p*gemmMR : p*gemmMR+gemmMR]
				src := a[(pc+p)*m+ic+i0:]
				for i := 0; i < rows; i++ {
					col[i] = alpha * src[i]
				}
				for i := rows; i < gemmMR; i++ {
					col[i] = 0
				}
			}
		}
	}
}

// packB copies the kc x nc block of op(B) starting at (pc, jc) into
// NR-column panels, k-major within each panel, zero-padding the last
// panel's column tail. op(B)[p][j] is b[p*n+j] untransposed and
// b[j*k+p] transposed.
func packB(dst, b []float32, pc, jc, kc, nc, n, k int, transB bool) {
	for j0 := 0; j0 < nc; j0 += gemmNR {
		cols := min(gemmNR, nc-j0)
		panel := dst[(j0/gemmNR)*kc*gemmNR:]
		if !transB {
			for p := 0; p < kc; p++ {
				row := panel[p*gemmNR : p*gemmNR+gemmNR]
				src := b[(pc+p)*n+jc+j0:]
				copy(row[:cols], src[:cols])
				clear(row[cols:])
			}
		} else {
			for j := 0; j < cols; j++ {
				src := b[(jc+j0+j)*k+pc:]
				for p := 0; p < kc; p++ {
					panel[p*gemmNR+j] = src[p]
				}
			}
			for j := cols; j < gemmNR; j++ {
				for p := 0; p < kc; p++ {
					panel[p*gemmNR+j] = 0
				}
			}
		}
	}
}
