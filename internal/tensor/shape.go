package tensor

import (
	"fmt"
	"strings"
)

// Shape describes tensor dimensions. Convolutional tensors use NCHW
// order: [batch, channels, height, width].
type Shape []int

// Validate reports an error if any dimension is non-positive.
func (s Shape) Validate() error {
	if len(s) == 0 {
		return fmt.Errorf("empty shape")
	}
	for i, d := range s {
		if d <= 0 {
			return fmt.Errorf("shape %v: dimension %d is %d, want > 0", s, i, d)
		}
	}
	return nil
}

// Elems returns the number of elements a tensor of this shape holds.
func (s Shape) Elems() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Bytes returns the float32 storage footprint in bytes.
func (s Shape) Bytes() int64 { return int64(s.Elems()) * 4 }

// Equal reports whether two shapes are identical.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape { return append(Shape(nil), s...) }

// Offset converts a multi-index into a flat row-major offset.
func (s Shape) Offset(idx ...int) int {
	if len(idx) != len(s) {
		panic(fmt.Sprintf("shape %v: got %d indices", s, len(idx)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= s[i] {
			panic(fmt.Sprintf("shape %v: index %d out of range at dim %d", s, x, i))
		}
		off = off*s[i] + x
	}
	return off
}

// String renders the shape as "(n, c, h, w)".
func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprint(d)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// NCHW accessors. They panic unless the shape is rank 4.

// N returns the batch dimension of an NCHW shape.
func (s Shape) N() int { s.need4(); return s[0] }

// C returns the channel dimension of an NCHW shape.
func (s Shape) C() int { s.need4(); return s[1] }

// H returns the height dimension of an NCHW shape.
func (s Shape) H() int { s.need4(); return s[2] }

// W returns the width dimension of an NCHW shape.
func (s Shape) W() int { s.need4(); return s[3] }

func (s Shape) need4() {
	if len(s) != 4 {
		panic(fmt.Sprintf("shape %v: want rank 4 (NCHW)", s))
	}
}
