package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWinogradApplies(t *testing.T) {
	if !WinogradApplies(ConvParams{KH: 3, KW: 3, SH: 1, SW: 1, Pad: Symmetric(1)}) {
		t.Fatal("3x3/1 rejected")
	}
	for _, p := range []ConvParams{
		{KH: 3, KW: 3, SH: 2, SW: 2},
		{KH: 5, KW: 5, SH: 1, SW: 1},
		{KH: 3, KW: 1, SH: 1, SW: 1},
	} {
		if WinogradApplies(p) {
			t.Fatalf("geometry %+v accepted", p)
		}
	}
}

func TestWinogradMatchesIm2Col(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		n, cin, h, w, cout int
		pad                Pad2D
	}{
		{2, 3, 8, 8, 4, Symmetric(1)},      // even output
		{1, 2, 9, 7, 3, Symmetric(1)},      // odd output (edge tiles)
		{1, 4, 6, 6, 2, Symmetric(0)},      // valid conv
		{2, 1, 5, 11, 3, Symmetric(1)},     // skinny
		{1, 2, 8, 8, 2, Pad2D{1, 0, 0, 1}}, // asymmetric (split-style)
	}
	for i, c := range cases {
		p := ConvParams{KH: 3, KW: 3, SH: 1, SW: 1, Pad: c.pad}
		x := New(c.n, c.cin, c.h, c.w)
		w := New(c.cout, c.cin, 3, 3)
		bias := New(c.cout)
		x.RandNormal(rng, 1)
		w.RandNormal(rng, 0.5)
		bias.RandNormal(rng, 0.1)
		want := Conv2D(x, w, bias, p)
		got := Conv2DWinograd(x, w, bias, p)
		if !got.Shape().Equal(want.Shape()) {
			t.Fatalf("case %d: shape %v vs %v", i, got.Shape(), want.Shape())
		}
		if d := MaxAbsDiff(got, want); d > 1e-3 {
			t.Fatalf("case %d: winograd differs from im2col by %v", i, d)
		}
	}
}

// TestWinogradQuickEquivalence fuzzes geometries.
func TestWinogradQuickEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(2)
		cin := 1 + rng.Intn(4)
		cout := 1 + rng.Intn(4)
		h := 3 + rng.Intn(12)
		w := 3 + rng.Intn(12)
		p := ConvParams{KH: 3, KW: 3, SH: 1, SW: 1, Pad: Pad2D{
			Top: rng.Intn(2), Bottom: rng.Intn(2), Left: rng.Intn(2), Right: rng.Intn(2),
		}}
		x := New(n, cin, h, w)
		wt := New(cout, cin, 3, 3)
		x.RandNormal(rng, 1)
		wt.RandNormal(rng, 0.5)
		want := Conv2D(x, wt, nil, p)
		got := Conv2DWinograd(x, wt, nil, p)
		return MaxAbsDiff(got, want) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestWinogradWorkspaceScalesWithTiles(t *testing.T) {
	p := ConvParams{KH: 3, KW: 3, SH: 1, SW: 1, Pad: Symmetric(1)}
	small := WinogradWorkspaceBytes(Shape{1, 16, 16, 16}, 16, p)
	big := WinogradWorkspaceBytes(Shape{1, 16, 32, 32}, 16, p)
	if big <= small {
		t.Fatal("workspace must grow with spatial size")
	}
	// The V buffer alone is 4x the input footprint (16 tiles of 1/4 the
	// elements each): the §2.2.1 space-for-time trade.
	in := Shape{1, 16, 32, 32}
	if big < 4*in.Bytes() {
		t.Fatalf("workspace %d below the 4x input bound %d", big, 4*in.Bytes())
	}
}

func BenchmarkConvIm2Col3x3(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := New(4, 64, 32, 32)
	w := New(64, 64, 3, 3)
	x.RandNormal(rng, 1)
	w.RandNormal(rng, 0.1)
	p := ConvParams{KH: 3, KW: 3, SH: 1, SW: 1, Pad: Symmetric(1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(x, w, nil, p)
	}
}

func BenchmarkConvWinograd3x3(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := New(4, 64, 32, 32)
	w := New(64, 64, 3, 3)
	x.RandNormal(rng, 1)
	w.RandNormal(rng, 0.1)
	p := ConvParams{KH: 3, KW: 3, SH: 1, SW: 1, Pad: Symmetric(1)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2DWinograd(x, w, nil, p)
	}
}
