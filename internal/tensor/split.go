package tensor

import "fmt"

// Dim identifies a spatial dimension of an NCHW tensor.
type Dim int

// Spatial dimensions of an NCHW tensor.
const (
	DimH Dim = 2
	DimW Dim = 3
)

// String names the dimension.
func (d Dim) String() string {
	switch d {
	case DimH:
		return "H"
	case DimW:
		return "W"
	}
	return fmt.Sprintf("Dim(%d)", int(d))
}

// SplitSpatial partitions x along spatial dimension d at the given start
// indices, mirroring the paper's Split_D(T, (s_0, ..., s_{N-1})) where
// s_i is the index of the first element of the i-th part. starts[0] must
// be 0 and starts must be strictly increasing and within the dimension.
// It panics on an invalid split; use TrySplitSpatial to get an error
// instead when the spec comes from untrusted input.
func SplitSpatial(x *Tensor, d Dim, starts []int) []*Tensor {
	parts, err := TrySplitSpatial(x, d, starts)
	if err != nil {
		panic(fmt.Sprintf("tensor.SplitSpatial: %v", err))
	}
	return parts
}

// TrySplitSpatial is SplitSpatial with invalid splits reported as
// errors rather than panics.
func TrySplitSpatial(x *Tensor, d Dim, starts []int) ([]*Tensor, error) {
	if len(x.shape) != 4 {
		return nil, fmt.Errorf("want an NCHW tensor, have shape %v", x.shape)
	}
	if d != DimH && d != DimW {
		return nil, fmt.Errorf("cannot split dimension %v", d)
	}
	n, c, h, w := x.shape.N(), x.shape.C(), x.shape.H(), x.shape.W()
	size := h
	if d == DimW {
		size = w
	}
	if err := ValidateStarts(starts, size); err != nil {
		return nil, err
	}
	parts := make([]*Tensor, len(starts))
	for i, s := range starts {
		end := size
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		if d == DimH {
			parts[i] = sliceH(x, n, c, h, w, s, end)
		} else {
			parts[i] = sliceW(x, n, c, h, w, s, end)
		}
	}
	return parts, nil
}

// ValidateStarts checks a split-start vector against a dimension size.
func ValidateStarts(starts []int, size int) error {
	if len(starts) == 0 {
		return fmt.Errorf("empty split")
	}
	if starts[0] != 0 {
		return fmt.Errorf("split must start at 0, got %d", starts[0])
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] <= starts[i-1] {
			return fmt.Errorf("split starts must be strictly increasing: %v", starts)
		}
	}
	if starts[len(starts)-1] >= size {
		return fmt.Errorf("split start %d out of range for size %d", starts[len(starts)-1], size)
	}
	return nil
}

func sliceH(x *Tensor, n, c, h, w, s, e int) *Tensor {
	out := New(n, c, e-s, w)
	ph := e - s
	parallelFor(n*c, func(lo, hi int) {
		for nc := lo; nc < hi; nc++ {
			src := x.data[nc*h*w : (nc+1)*h*w]
			dst := out.data[nc*ph*w : (nc+1)*ph*w]
			copy(dst, src[s*w:e*w])
		}
	})
	return out
}

func sliceW(x *Tensor, n, c, h, w, s, e int) *Tensor {
	pw := e - s
	out := New(n, c, h, pw)
	parallelFor(n*c, func(lo, hi int) {
		for nc := lo; nc < hi; nc++ {
			src := x.data[nc*h*w : (nc+1)*h*w]
			dst := out.data[nc*h*pw : (nc+1)*h*pw]
			for y := 0; y < h; y++ {
				copy(dst[y*pw:(y+1)*pw], src[y*w+s:y*w+e])
			}
		}
	})
	return out
}

// ConcatSpatial concatenates parts along spatial dimension d, the
// paper's [T_0, ..., T_n]_D. All parts must agree on every other
// dimension.
func ConcatSpatial(parts []*Tensor, d Dim) *Tensor {
	if len(parts) == 0 {
		panic("tensor.ConcatSpatial: no parts")
	}
	n, c := parts[0].shape.N(), parts[0].shape.C()
	h, w := parts[0].shape.H(), parts[0].shape.W()
	total := 0
	for _, p := range parts {
		if p.shape.N() != n || p.shape.C() != c {
			panic(fmt.Sprintf("tensor.ConcatSpatial: N/C mismatch %v vs %v", p.shape, parts[0].shape))
		}
		switch d {
		case DimH:
			if p.shape.W() != w {
				panic(fmt.Sprintf("tensor.ConcatSpatial: W mismatch %v vs %v", p.shape, parts[0].shape))
			}
			total += p.shape.H()
		case DimW:
			if p.shape.H() != h {
				panic(fmt.Sprintf("tensor.ConcatSpatial: H mismatch %v vs %v", p.shape, parts[0].shape))
			}
			total += p.shape.W()
		}
	}
	var out *Tensor
	if d == DimH {
		out = New(n, c, total, w)
		off := 0
		for _, p := range parts {
			ph := p.shape.H()
			for nc := 0; nc < n*c; nc++ {
				copy(out.data[nc*total*w+off*w:nc*total*w+(off+ph)*w], p.data[nc*ph*w:(nc+1)*ph*w])
			}
			off += ph
		}
	} else {
		out = New(n, c, h, total)
		off := 0
		for _, p := range parts {
			pw := p.shape.W()
			for nc := 0; nc < n*c; nc++ {
				for y := 0; y < h; y++ {
					copy(out.data[nc*h*total+y*total+off:nc*h*total+y*total+off+pw], p.data[nc*h*pw+y*pw:nc*h*pw+(y+1)*pw])
				}
			}
			off += pw
		}
	}
	return out
}
