package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestFFTConvApplies(t *testing.T) {
	for _, p := range []ConvParams{
		{KH: 3, KW: 3, SH: 1, SW: 1, Pad: Symmetric(1)},
		{KH: 11, KW: 11, SH: 1, SW: 1, Pad: Symmetric(2)},
		{KH: 1, KW: 1, SH: 1, SW: 1},
	} {
		if !FFTConvApplies(p) {
			t.Fatalf("stride-1 geometry %+v rejected", p)
		}
	}
	for _, p := range []ConvParams{
		{KH: 3, KW: 3, SH: 2, SW: 2, Pad: Symmetric(1)},
		{KH: 3, KW: 3, SH: 1, SW: 2},
	} {
		if FFTConvApplies(p) {
			t.Fatalf("strided geometry %+v accepted", p)
		}
	}
}

func TestConv2DFFTPanicsOnStride(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for stride-2 geometry")
		}
	}()
	p := ConvParams{KH: 3, KW: 3, SH: 2, SW: 2, Pad: Symmetric(1)}
	Conv2DFFT(New(1, 1, 8, 8), New(1, 1, 3, 3), nil, p)
}

// TestRFFT2RoundTrip checks the real 2-D transform pair directly:
// irfft2(rfft2(tile)) must reproduce the tile to within a few ulps
// (times the ph·pw scale the pair leaves to the caller).
func TestRFFT2RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][2]int{{2, 2}, {4, 8}, {16, 16}, {32, 8}} {
		ph, pw := dims[0], dims[1]
		pwh := pw/2 + 1
		tile := make([]float32, ph*pw)
		for i := range tile {
			tile[i] = float32(rng.NormFloat64())
		}
		spec := make([]float32, 2*ph*pwh)
		back := make([]float32, ph*pw)
		z := make([]float32, 2*pw)
		rp, cp := getFFTPlan(pw), getFFTPlan(ph)
		rfft2(spec, tile, ph, pw, pwh, rp, cp, z)
		irfft2(back, spec, ph, pw, pwh, rp, cp, z)
		scale := float32(1 / float64(ph*pw))
		for i := range tile {
			if d := math.Abs(float64(back[i]*scale - tile[i])); d > 1e-5 {
				t.Fatalf("%dx%d: round-trip error %v at %d", ph, pw, d, i)
			}
		}
	}
}

// relErr returns max|got−want| relative to max|want| — the metric the
// FFTConvTolerance contract is stated in.
func relErr(got, want *Tensor) float64 {
	var maxAbs, maxDiff float64
	gd, wd := got.Data(), want.Data()
	for i := range wd {
		if a := math.Abs(float64(wd[i])); a > maxAbs {
			maxAbs = a
		}
		if d := math.Abs(float64(gd[i] - wd[i])); d > maxDiff {
			maxDiff = d
		}
	}
	if maxAbs == 0 {
		return maxDiff
	}
	return maxDiff / maxAbs
}

func TestFFTConvMatchesIm2Col(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := []struct {
		n, cin, h, w, cout, kh, kw int
		pad                        Pad2D
	}{
		{2, 3, 8, 8, 4, 3, 3, Symmetric(1)},          // the Winograd shape
		{1, 2, 9, 7, 3, 5, 5, Symmetric(2)},          // odd input, 5x5
		{1, 4, 6, 6, 2, 1, 1, Symmetric(0)},          // pointwise
		{2, 1, 5, 11, 3, 3, 7, Symmetric(1)},         // rectangular kernel
		{1, 2, 8, 8, 2, 3, 3, Pad2D{1, 0, 0, 1}},     // asymmetric (split-style)
		{1, 3, 31, 33, 2, 7, 7, Symmetric(3)},        // non-pow2 input
		{1, 1, 4, 4, 1, 4, 4, Symmetric(0)},          // kernel == input
		{2, 2, 16, 16, 4, 11, 11, Pad2D{5, 5, 5, 5}}, // large kernel
	}
	for i, c := range cases {
		p := ConvParams{KH: c.kh, KW: c.kw, SH: 1, SW: 1, Pad: c.pad}
		x := New(c.n, c.cin, c.h, c.w)
		w := New(c.cout, c.cin, c.kh, c.kw)
		bias := New(c.cout)
		x.RandNormal(rng, 1)
		w.RandNormal(rng, 0.5)
		bias.RandNormal(rng, 0.1)
		want := Conv2D(x, w, bias, p)
		got := Conv2DFFT(x, w, bias, p)
		if !got.Shape().Equal(want.Shape()) {
			t.Fatalf("case %d: shape %v vs %v", i, got.Shape(), want.Shape())
		}
		if e := relErr(got, want); e > FFTConvTolerance {
			t.Fatalf("case %d: FFT differs from im2col by %v (tolerance %v)", i, e, FFTConvTolerance)
		}
	}
}

// TestFFTConvQuickEquivalence fuzzes stride-1 geometries, including
// deep-channel accumulations, against the im2col reference.
func TestFFTConvQuickEquivalence(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(2)
		cin := 1 + rng.Intn(16)
		cout := 1 + rng.Intn(8)
		kh := 1 + rng.Intn(5)
		kw := 1 + rng.Intn(5)
		h := kh + rng.Intn(20)
		w := kw + rng.Intn(20)
		pad := Pad2D{rng.Intn(kh), rng.Intn(kh), rng.Intn(kw), rng.Intn(kw)}
		p := ConvParams{KH: kh, KW: kw, SH: 1, SW: 1, Pad: pad}
		x := New(n, cin, h, w)
		wt := New(cout, cin, kh, kw)
		x.RandNormal(rng, 1)
		wt.RandNormal(rng, 0.5)
		want := Conv2D(x, wt, nil, p)
		got := Conv2DFFT(x, wt, nil, p)
		if e := relErr(got, want); e > FFTConvTolerance {
			t.Fatalf("seed %d (%dx%dx%dx%d k%dx%d pad%+v): error %v > %v",
				seed, n, cin, h, w, kh, kw, pad, e, FFTConvTolerance)
		}
	}
}

func TestDirectConvMatchesIm2Col(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []struct {
		n, cin, h, w, cout, kh, kw, sh, sw int
		pad                                Pad2D
	}{
		{2, 8, 7, 7, 16, 1, 1, 1, 1, Symmetric(0)}, // 1x1 GEMM fast path
		{1, 3, 8, 8, 4, 3, 3, 1, 1, Symmetric(1)},
		{1, 2, 9, 9, 3, 3, 3, 2, 2, Symmetric(1)}, // strided
		{2, 1, 11, 5, 2, 5, 3, 2, 1, Pad2D{2, 1, 1, 0}},
		{1, 4, 6, 6, 2, 1, 1, 2, 2, Symmetric(0)}, // 1x1 strided (general path)
	}
	for i, c := range cases {
		p := ConvParams{KH: c.kh, KW: c.kw, SH: c.sh, SW: c.sw, Pad: c.pad}
		x := New(c.n, c.cin, c.h, c.w)
		w := New(c.cout, c.cin, c.kh, c.kw)
		bias := New(c.cout)
		x.RandNormal(rng, 1)
		w.RandNormal(rng, 0.5)
		bias.RandNormal(rng, 0.1)
		want := Conv2D(x, w, bias, p)
		got := Conv2DDirect(x, w, bias, p)
		if !got.Shape().Equal(want.Shape()) {
			t.Fatalf("case %d: shape %v vs %v", i, got.Shape(), want.Shape())
		}
		if e := relErr(got, want); e > 1e-5 {
			t.Fatalf("case %d: direct differs from im2col by %v", i, e)
		}
	}
}

func TestFFTConvWorkspaceBytes(t *testing.T) {
	p := ConvParams{KH: 3, KW: 3, SH: 1, SW: 1, Pad: Symmetric(1)}
	small := FFTConvWorkspaceBytes(Shape{1, 4, 16, 16}, 4, p)
	big := FFTConvWorkspaceBytes(Shape{1, 64, 16, 16}, 64, p)
	if small <= 0 || big <= small {
		t.Fatalf("workspace accounting not monotone in channels: %d vs %d", small, big)
	}
	// 16+2 pads to 32: each spectrum grid is 32*17 complex bins.
	grid := int64(2 * 32 * 17)
	if want := 4 * grid * 4 * (1 + 4); small < want {
		t.Fatalf("workspace %d smaller than the spectra alone (%d)", small, want)
	}
}
