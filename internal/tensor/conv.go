package tensor

import "fmt"

// ConvParams describes a 2-D convolution: kernel size, stride, and
// asymmetric padding. Dilation and groups are intentionally out of scope
// (the paper's models use neither).
type ConvParams struct {
	KH, KW int
	SH, SW int
	Pad    Pad2D
}

// OutSize returns the spatial output size of a convolution/pooling
// window operation over an input of height h and width w. The division
// floors (not truncates toward zero), so a window larger than the padded
// input correctly yields a non-positive size rather than 1.
func (p ConvParams) OutSize(h, w int) (oh, ow int) {
	oh = floorDiv(h+p.Pad.Top+p.Pad.Bottom-p.KH, p.SH) + 1
	ow = floorDiv(w+p.Pad.Left+p.Pad.Right-p.KW, p.SW) + 1
	return oh, ow
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// ceilDiv rounds the quotient towards +inf; b must be positive.
func ceilDiv(a, b int) int { return floorDiv(a+b-1, b) }

func (p ConvParams) check(x *Tensor) (n, c, h, w, oh, ow int) {
	n, c, h, w = x.shape.N(), x.shape.C(), x.shape.H(), x.shape.W()
	oh, ow = p.OutSize(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: conv %+v over %v yields non-positive output (%d,%d)", p, x.shape, oh, ow))
	}
	return n, c, h, w, oh, ow
}

// oxRange returns the output-x interval [oxLo, oxHi) whose input column
// ix = ox*SW - Pad.Left + kx lands inside [0, w). Precomputing it per
// (kx) row lets the im2col/col2im inner loops run without per-pixel
// bounds checks — and for stride 1 the interior becomes one contiguous
// copy.
func (p ConvParams) oxRange(kx, w, ow int) (oxLo, oxHi int) {
	oxLo = ceilDiv(p.Pad.Left-kx, p.SW)
	if oxLo < 0 {
		oxLo = 0
	}
	oxHi = ceilDiv(w+p.Pad.Left-kx, p.SW)
	if oxHi > ow {
		oxHi = ow
	}
	if oxHi < oxLo {
		oxHi = oxLo
	}
	return oxLo, oxHi
}

// Im2Col lowers the convolution windows of x into a matrix of shape
// [C*KH*KW, N*OH*OW] so that convolution becomes a matrix multiply.
// Out-of-bounds (padding) positions contribute zeros.
func Im2Col(x *Tensor, p ConvParams) *Tensor { return Im2ColArena(nil, x, p) }

// Im2ColArena is Im2Col with the output drawn from an arena (nil falls
// back to plain allocation).
func Im2ColArena(a *Arena, x *Tensor, p ConvParams) *Tensor {
	n, c, h, w, oh, ow := p.check(x)
	col := a.GetRaw(c*p.KH*p.KW, n*oh*ow)
	cols := n * oh * ow
	parallelRange(c*p.KH*p.KW, 1+parallelThreshold/cols, im2colArgs{
		cd: col.data, xd: x.data, p: p,
		n: n, c: c, h: h, w: w, oh: oh, ow: ow,
	}, im2colRows)
	return col
}

type im2colArgs struct {
	cd, xd             []float32
	p                  ConvParams
	n, c, h, w, oh, ow int
}

func im2colRows(t im2colArgs, lo, hi int) {
	p := t.p
	khkw := p.KH * p.KW
	cols := t.n * t.oh * t.ow
	for row := lo; row < hi; row++ {
		ch := row / khkw
		rem := row % khkw
		ky, kx := rem/p.KW, rem%p.KW
		oxLo, oxHi := p.oxRange(kx, t.w, t.ow)
		ixBase := oxLo*p.SW - p.Pad.Left + kx
		dst := t.cd[row*cols : (row+1)*cols]
		for b := 0; b < t.n; b++ {
			src := t.xd[(b*t.c+ch)*t.h*t.w : (b*t.c+ch+1)*t.h*t.w]
			base := b * t.oh * t.ow
			for oy := 0; oy < t.oh; oy++ {
				iy := oy*p.SH - p.Pad.Top + ky
				drow := dst[base+oy*t.ow : base+(oy+1)*t.ow]
				if iy < 0 || iy >= t.h {
					clear(drow)
					continue
				}
				srow := src[iy*t.w : (iy+1)*t.w]
				clear(drow[:oxLo])
				clear(drow[oxHi:])
				if p.SW == 1 {
					copy(drow[oxLo:oxHi], srow[ixBase:ixBase+oxHi-oxLo])
				} else {
					ix := ixBase
					for ox := oxLo; ox < oxHi; ox++ {
						drow[ox] = srow[ix]
						ix += p.SW
					}
				}
			}
		}
	}
}

// Col2Im is the adjoint of Im2Col: it scatters (accumulates) a
// [C*KH*KW, N*OH*OW] matrix back into an [N,C,H,W] tensor.
func Col2Im(col *Tensor, p ConvParams, n, c, h, w int) *Tensor {
	return Col2ImArena(nil, col, p, n, c, h, w)
}

// Col2ImArena is Col2Im with the output drawn from an arena.
func Col2ImArena(a *Arena, col *Tensor, p ConvParams, n, c, h, w int) *Tensor {
	oh, ow := p.OutSize(h, w)
	cols := n * oh * ow
	if !col.shape.Equal(Shape{c * p.KH * p.KW, cols}) {
		panic(fmt.Sprintf("tensor.Col2Im: col shape %v does not match %+v over (%d,%d,%d,%d)", col.shape, p, n, c, h, w))
	}
	out := a.Get(n, c, h, w) // zeroed: the scatter accumulates
	// Parallelize over channels: each channel's scatter touches a
	// disjoint region of the output.
	perCh := p.KH * p.KW * cols
	parallelRange(c, 1+parallelThreshold/perCh, col2imArgs{
		cd: col.data, od: out.data, p: p,
		n: n, c: c, h: h, w: w, oh: oh, ow: ow,
	}, col2imChans)
	return out
}

type col2imArgs struct {
	cd, od             []float32
	p                  ConvParams
	n, c, h, w, oh, ow int
}

func col2imChans(t col2imArgs, lo, hi int) {
	p := t.p
	cols := t.n * t.oh * t.ow
	for ch := lo; ch < hi; ch++ {
		for ky := 0; ky < p.KH; ky++ {
			for kx := 0; kx < p.KW; kx++ {
				row := (ch*p.KH+ky)*p.KW + kx
				oxLo, oxHi := p.oxRange(kx, t.w, t.ow)
				ixBase := oxLo*p.SW - p.Pad.Left + kx
				src := t.cd[row*cols : (row+1)*cols]
				for b := 0; b < t.n; b++ {
					dst := t.od[(b*t.c+ch)*t.h*t.w : (b*t.c+ch+1)*t.h*t.w]
					base := b * t.oh * t.ow
					for oy := 0; oy < t.oh; oy++ {
						iy := oy*p.SH - p.Pad.Top + ky
						if iy < 0 || iy >= t.h {
							continue
						}
						srow := src[base+oy*t.ow : base+(oy+1)*t.ow]
						drow := dst[iy*t.w : (iy+1)*t.w]
						if p.SW == 1 {
							drow = drow[ixBase:]
							for i, v := range srow[oxLo:oxHi] {
								drow[i] += v
							}
						} else {
							ix := ixBase
							for ox := oxLo; ox < oxHi; ox++ {
								drow[ix] += srow[ox]
								ix += p.SW
							}
						}
					}
				}
			}
		}
	}
}

// Conv2D computes a 2-D convolution. x is [N,Cin,H,W], weight is
// [Cout,Cin,KH,KW], bias (may be nil) is [Cout]; the result is
// [N,Cout,OH,OW]. Internally it lowers to Im2Col + MatMul, the same
// algorithmic shape cuDNN's IMPLICIT_GEMM uses.
func Conv2D(x, weight, bias *Tensor, p ConvParams) *Tensor {
	return Conv2DArena(nil, x, weight, bias, p)
}

// Conv2DArena is Conv2D with every intermediate (im2col matrix, GEMM
// product) and the output drawn from an arena, so repeated calls reuse
// one warm working set.
func Conv2DArena(a *Arena, x, weight, bias *Tensor, p ConvParams) *Tensor {
	n, _, _, _, oh, ow := p.check(x)
	out := a.GetRaw(n, weight.shape[0], oh, ow)
	Conv2DInto(a, out, x, weight, bias, p)
	return out
}

// Conv2DInto computes the convolution into a caller-supplied dst of
// shape [N,Cout,OH,OW] — the entry point of the compiled executor,
// whose static memory plan fixes every output's address ahead of time.
// Scratch (the im2col matrix and the GEMM product) still cycles through
// the arena. dst must not alias x.
func Conv2DInto(a *Arena, dst, x, weight, bias *Tensor, p ConvParams) {
	n, cin, _, _, oh, ow := p.check(x)
	cout := weight.shape[0]
	if !weight.shape.Equal(Shape{cout, cin, p.KH, p.KW}) {
		panic(fmt.Sprintf("tensor.Conv2D: weight %v incompatible with input %v and %+v", weight.shape, x.shape, p))
	}
	if len(dst.data) != n*cout*oh*ow {
		panic(fmt.Sprintf("tensor.Conv2DInto: dst %v, want %d elements", dst.shape, n*cout*oh*ow))
	}
	col := Im2ColArena(a, x, p)
	prod := a.GetRaw(cout, n*oh*ow)
	// prod = weight-as-[Cout, Cin*KH*KW] @ col, via the raw gemm entry:
	// shapes were validated above and this avoids per-call Reshape views.
	gemm(prod.data, weight.data, col.data, cout, cin*p.KH*p.KW, n*oh*ow, 1, 0, false, false)
	a.Put(col)
	// prod is [Cout, N*OH*OW]; transpose the leading two logical dims
	// into NCHW order and add bias.
	hw := oh * ow
	var bd []float32
	if bias != nil {
		bd = bias.data
	}
	parallelRange(n*cout, 1+parallelThreshold/hw, convNCHWArgs{
		pd: prod.data, od: dst.data, bd: bd, n: n, cout: cout, hw: hw,
	}, convToNCHW)
	a.Put(prod)
}

type convNCHWArgs struct {
	pd, od, bd  []float32
	n, cout, hw int
}

func convToNCHW(t convNCHWArgs, lo, hi int) {
	for i := lo; i < hi; i++ {
		b, co := i/t.cout, i%t.cout
		var bv float32
		if t.bd != nil {
			bv = t.bd[co]
		}
		src := t.pd[co*t.n*t.hw+b*t.hw : co*t.n*t.hw+(b+1)*t.hw]
		dst := t.od[i*t.hw : (i+1)*t.hw]
		for j := range dst {
			dst[j] = src[j] + bv
		}
	}
}

// Conv2DBackward computes the gradients of a Conv2D call. gradOut is
// [N,Cout,OH,OW]. It returns gradX ([N,Cin,H,W]) and accumulates into
// gradW and gradB (gradB may be nil when the convolution has no bias).
// needGradX can be false for the first layer to skip the col2im pass.
func Conv2DBackward(x, weight *Tensor, gradOut *Tensor, p ConvParams, gradW, gradB *Tensor, needGradX bool) *Tensor {
	return Conv2DBackwardArena(nil, x, weight, gradOut, p, gradW, gradB, needGradX)
}

// Conv2DBackwardArena is Conv2DBackward with all scratch and the
// returned gradient drawn from an arena.
func Conv2DBackwardArena(a *Arena, x, weight *Tensor, gradOut *Tensor, p ConvParams, gradW, gradB *Tensor, needGradX bool) *Tensor {
	n, cin, h, w, oh, ow := p.check(x)
	cout := weight.shape[0]
	hw := oh * ow
	// Reorder gradOut from NCHW to [Cout, N*OH*OW].
	g := a.GetRaw(cout, n*hw)
	parallelRange(n*cout, 1+parallelThreshold/hw, convGradReorderArgs{
		gd: g.data, god: gradOut.data, n: n, cout: cout, hw: hw,
	}, convGradReorder)
	if gradB != nil {
		// Each output channel's bias gradient is an independent row
		// reduction, so the satellite parallelization is over cout.
		parallelRange(cout, 1+parallelThreshold/(n*hw), convGradBArgs{
			gd: g.data, gbd: gradB.data, nhw: n * hw,
		}, convGradB)
	}
	col := Im2ColArena(a, x, p)
	// gradW (+)= g @ colᵀ, accumulated in place by the beta=1 GEMM
	// (dropping the former gw temporary and its extra AXPY pass).
	gemm(gradW.data, g.data, col.data, cout, n*hw, cin*p.KH*p.KW, 1, 1, false, true)
	if !needGradX {
		a.Put(col)
		a.Put(g)
		return nil
	}
	// gradCol = weightᵀ @ g, then scatter with Col2Im.
	gradCol := col // same shape as the im2col matrix: reuse it directly
	gemm(gradCol.data, weight.data, g.data, cin*p.KH*p.KW, cout, n*hw, 1, 0, true, false)
	a.Put(g)
	gx := Col2ImArena(a, gradCol, p, n, cin, h, w)
	a.Put(gradCol)
	return gx
}

type convGradReorderArgs struct {
	gd, god     []float32
	n, cout, hw int
}

func convGradReorder(t convGradReorderArgs, lo, hi int) {
	for i := lo; i < hi; i++ {
		b, co := i/t.cout, i%t.cout
		copy(t.gd[co*t.n*t.hw+b*t.hw:co*t.n*t.hw+(b+1)*t.hw], t.god[i*t.hw:(i+1)*t.hw])
	}
}

type convGradBArgs struct {
	gd, gbd []float32
	nhw     int
}

func convGradB(t convGradBArgs, lo, hi int) {
	for co := lo; co < hi; co++ {
		var s float64
		for _, v := range t.gd[co*t.nhw : (co+1)*t.nhw] {
			s += float64(v)
		}
		t.gbd[co] += float32(s)
	}
}
