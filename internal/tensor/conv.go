package tensor

import "fmt"

// ConvParams describes a 2-D convolution: kernel size, stride, and
// asymmetric padding. Dilation and groups are intentionally out of scope
// (the paper's models use neither).
type ConvParams struct {
	KH, KW int
	SH, SW int
	Pad    Pad2D
}

// OutSize returns the spatial output size of a convolution/pooling
// window operation over an input of height h and width w. The division
// floors (not truncates toward zero), so a window larger than the padded
// input correctly yields a non-positive size rather than 1.
func (p ConvParams) OutSize(h, w int) (oh, ow int) {
	oh = floorDiv(h+p.Pad.Top+p.Pad.Bottom-p.KH, p.SH) + 1
	ow = floorDiv(w+p.Pad.Left+p.Pad.Right-p.KW, p.SW) + 1
	return oh, ow
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func (p ConvParams) check(x *Tensor) (n, c, h, w, oh, ow int) {
	n, c, h, w = x.shape.N(), x.shape.C(), x.shape.H(), x.shape.W()
	oh, ow = p.OutSize(h, w)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: conv %+v over %v yields non-positive output (%d,%d)", p, x.shape, oh, ow))
	}
	return n, c, h, w, oh, ow
}

// Im2Col lowers the convolution windows of x into a matrix of shape
// [C*KH*KW, N*OH*OW] so that convolution becomes a matrix multiply.
// Out-of-bounds (padding) positions contribute zeros.
func Im2Col(x *Tensor, p ConvParams) *Tensor {
	n, c, h, w, oh, ow := p.check(x)
	col := New(c*p.KH*p.KW, n*oh*ow)
	cols := n * oh * ow
	cd := col.data
	xd := x.data
	parallelFor(c*p.KH*p.KW, func(lo, hi int) {
		for row := lo; row < hi; row++ {
			ch := row / (p.KH * p.KW)
			rem := row % (p.KH * p.KW)
			ky, kx := rem/p.KW, rem%p.KW
			dst := cd[row*cols : (row+1)*cols]
			for b := 0; b < n; b++ {
				src := xd[(b*c+ch)*h*w : (b*c+ch+1)*h*w]
				base := b * oh * ow
				for oy := 0; oy < oh; oy++ {
					iy := oy*p.SH - p.Pad.Top + ky
					drow := dst[base+oy*ow : base+(oy+1)*ow]
					if iy < 0 || iy >= h {
						clear(drow)
						continue
					}
					srow := src[iy*w : (iy+1)*w]
					for ox := 0; ox < ow; ox++ {
						ix := ox*p.SW - p.Pad.Left + kx
						if ix < 0 || ix >= w {
							drow[ox] = 0
						} else {
							drow[ox] = srow[ix]
						}
					}
				}
			}
		}
	})
	return col
}

// Col2Im is the adjoint of Im2Col: it scatters (accumulates) a
// [C*KH*KW, N*OH*OW] matrix back into an [N,C,H,W] tensor.
func Col2Im(col *Tensor, p ConvParams, n, c, h, w int) *Tensor {
	oh, ow := p.OutSize(h, w)
	cols := n * oh * ow
	if !col.shape.Equal(Shape{c * p.KH * p.KW, cols}) {
		panic(fmt.Sprintf("tensor.Col2Im: col shape %v does not match %+v over (%d,%d,%d,%d)", col.shape, p, n, c, h, w))
	}
	out := New(n, c, h, w)
	cd, od := col.data, out.data
	// Parallelize over channels: each channel's scatter touches a
	// disjoint region of the output.
	parallelFor(c, func(lo, hi int) {
		for ch := lo; ch < hi; ch++ {
			for ky := 0; ky < p.KH; ky++ {
				for kx := 0; kx < p.KW; kx++ {
					row := (ch*p.KH+ky)*p.KW + kx
					src := cd[row*cols : (row+1)*cols]
					for b := 0; b < n; b++ {
						dst := od[(b*c+ch)*h*w : (b*c+ch+1)*h*w]
						base := b * oh * ow
						for oy := 0; oy < oh; oy++ {
							iy := oy*p.SH - p.Pad.Top + ky
							if iy < 0 || iy >= h {
								continue
							}
							srow := src[base+oy*ow : base+(oy+1)*ow]
							drow := dst[iy*w : (iy+1)*w]
							for ox := 0; ox < ow; ox++ {
								ix := ox*p.SW - p.Pad.Left + kx
								if ix >= 0 && ix < w {
									drow[ix] += srow[ox]
								}
							}
						}
					}
				}
			}
		}
	})
	return out
}

// Conv2D computes a 2-D convolution. x is [N,Cin,H,W], weight is
// [Cout,Cin,KH,KW], bias (may be nil) is [Cout]; the result is
// [N,Cout,OH,OW]. Internally it lowers to Im2Col + MatMul, the same
// algorithmic shape cuDNN's IMPLICIT_GEMM uses.
func Conv2D(x, weight, bias *Tensor, p ConvParams) *Tensor {
	n, cin, _, _, oh, ow := p.check(x)
	cout := weight.shape[0]
	if !weight.shape.Equal(Shape{cout, cin, p.KH, p.KW}) {
		panic(fmt.Sprintf("tensor.Conv2D: weight %v incompatible with input %v and %+v", weight.shape, x.shape, p))
	}
	col := Im2Col(x, p)
	wmat := weight.Reshape(cout, cin*p.KH*p.KW)
	prod := New(cout, n*oh*ow)
	MatMul(prod, wmat, col)
	out := New(n, cout, oh, ow)
	// prod is [Cout, N*OH*OW]; transpose the leading two logical dims
	// into NCHW order and add bias.
	hw := oh * ow
	pd, od := prod.data, out.data
	parallelFor(n*cout, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			b, co := i/cout, i%cout
			var bv float32
			if bias != nil {
				bv = bias.data[co]
			}
			src := pd[co*n*hw+b*hw : co*n*hw+(b+1)*hw]
			dst := od[i*hw : (i+1)*hw]
			for j := range dst {
				dst[j] = src[j] + bv
			}
		}
	})
	return out
}

// Conv2DBackward computes the gradients of a Conv2D call. gradOut is
// [N,Cout,OH,OW]. It returns gradX ([N,Cin,H,W]) and accumulates into
// gradW and gradB (gradB may be nil when the convolution has no bias).
// needGradX can be false for the first layer to skip the col2im pass.
func Conv2DBackward(x, weight *Tensor, gradOut *Tensor, p ConvParams, gradW, gradB *Tensor, needGradX bool) *Tensor {
	n, cin, h, w, oh, ow := p.check(x)
	cout := weight.shape[0]
	hw := oh * ow
	// Reorder gradOut from NCHW to [Cout, N*OH*OW].
	g := New(cout, n*hw)
	gd, god := g.data, gradOut.data
	parallelFor(n*cout, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			b, co := i/cout, i%cout
			copy(gd[co*n*hw+b*hw:co*n*hw+(b+1)*hw], god[i*hw:(i+1)*hw])
		}
	})
	if gradB != nil {
		for co := 0; co < cout; co++ {
			var s float64
			for _, v := range gd[co*n*hw : (co+1)*n*hw] {
				s += float64(v)
			}
			gradB.data[co] += float32(s)
		}
	}
	col := Im2Col(x, p)
	// gradW += g @ colᵀ  ([Cout, Cin*KH*KW])
	gw := New(cout, cin*p.KH*p.KW)
	MatMulBT(gw, g, col)
	AXPY(gradW.Reshape(cout, cin*p.KH*p.KW), 1, gw)
	if !needGradX {
		return nil
	}
	// gradCol = weightᵀ @ g, then scatter with Col2Im.
	wmat := weight.Reshape(cout, cin*p.KH*p.KW)
	gradCol := New(cin*p.KH*p.KW, n*hw)
	MatMulAT(gradCol, wmat, g)
	return Col2Im(gradCol, p, n, cin, h, w)
}
