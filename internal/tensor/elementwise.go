package tensor

import (
	"fmt"
	"math"
)

func checkSameSize(op string, dst *Tensor, srcs ...*Tensor) {
	for _, s := range srcs {
		if len(s.data) != len(dst.data) {
			panic(fmt.Sprintf("tensor.%s: size mismatch %v vs %v", op, dst.shape, s.shape))
		}
	}
}

// Add writes a + b into dst. All three must have equal element counts;
// dst may alias a or b.
func Add(dst, a, b *Tensor) {
	checkSameSize("Add", dst, a, b)
	da, db, dd := a.data, b.data, dst.data
	for i := range dd {
		dd[i] = da[i] + db[i]
	}
}

// Sub writes a - b into dst.
func Sub(dst, a, b *Tensor) {
	checkSameSize("Sub", dst, a, b)
	da, db, dd := a.data, b.data, dst.data
	for i := range dd {
		dd[i] = da[i] - db[i]
	}
}

// Mul writes the elementwise product a * b into dst.
func Mul(dst, a, b *Tensor) {
	checkSameSize("Mul", dst, a, b)
	da, db, dd := a.data, b.data, dst.data
	for i := range dd {
		dd[i] = da[i] * db[i]
	}
}

// AXPY performs dst += alpha * x.
func AXPY(dst *Tensor, alpha float32, x *Tensor) {
	checkSameSize("AXPY", dst, x)
	dx, dd := x.data, dst.data
	for i := range dd {
		dd[i] += alpha * dx[i]
	}
}

// Scale multiplies every element of dst by alpha in place.
func Scale(dst *Tensor, alpha float32) {
	for i := range dst.data {
		dst.data[i] *= alpha
	}
}

// ReLU writes max(x, 0) into dst; dst may alias x.
func ReLU(dst, x *Tensor) {
	checkSameSize("ReLU", dst, x)
	dx, dd := x.data, dst.data
	for i := range dd {
		if dx[i] > 0 {
			dd[i] = dx[i]
		} else {
			dd[i] = 0
		}
	}
}

// ReLUBackward writes gradOut masked by (out > 0) into gradIn. It uses
// the *output* of the ReLU rather than its input, which is what enables
// the in-place ReLU storage optimization in HMMS (§4.2 of the paper).
func ReLUBackward(gradIn, gradOut, out *Tensor) {
	checkSameSize("ReLUBackward", gradIn, gradOut, out)
	gi, g, o := gradIn.data, gradOut.data, out.data
	for i := range gi {
		if o[i] > 0 {
			gi[i] = g[i]
		} else {
			gi[i] = 0
		}
	}
}

// Softmax computes a row-wise softmax of a [rows, cols] tensor into dst.
func Softmax(dst, x *Tensor) {
	if len(x.shape) != 2 {
		panic("tensor.Softmax: want rank-2 tensor")
	}
	checkSameSize("Softmax", dst, x)
	rows, cols := x.shape[0], x.shape[1]
	for r := 0; r < rows; r++ {
		in := x.data[r*cols : (r+1)*cols]
		out := dst.data[r*cols : (r+1)*cols]
		maxv := float32(math.Inf(-1))
		for _, v := range in {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for i, v := range in {
			e := math.Exp(float64(v - maxv))
			out[i] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for i := range out {
			out[i] *= inv
		}
	}
}
