package tensor

import (
	"math/rand"
	"testing"
)

func TestShapeBasics(t *testing.T) {
	s := Shape{2, 3, 4, 5}
	if got := s.Elems(); got != 120 {
		t.Fatalf("Elems = %d, want 120", got)
	}
	if got := s.Bytes(); got != 480 {
		t.Fatalf("Bytes = %d, want 480", got)
	}
	if s.N() != 2 || s.C() != 3 || s.H() != 4 || s.W() != 5 {
		t.Fatalf("NCHW accessors wrong: %v", s)
	}
	if !s.Equal(Shape{2, 3, 4, 5}) || s.Equal(Shape{2, 3, 4}) || s.Equal(Shape{2, 3, 4, 6}) {
		t.Fatalf("Equal misbehaves")
	}
	if off := s.Offset(1, 2, 3, 4); off != 1*60+2*20+3*5+4 {
		t.Fatalf("Offset = %d", off)
	}
}

func TestShapeValidate(t *testing.T) {
	if err := (Shape{2, 3}).Validate(); err != nil {
		t.Fatalf("valid shape rejected: %v", err)
	}
	if err := (Shape{}).Validate(); err == nil {
		t.Fatal("empty shape accepted")
	}
	if err := (Shape{2, 0}).Validate(); err == nil {
		t.Fatal("zero dimension accepted")
	}
	if err := (Shape{-1, 2}).Validate(); err == nil {
		t.Fatal("negative dimension accepted")
	}
}

func TestNewSetAt(t *testing.T) {
	x := New(2, 3)
	x.Set(7, 1, 2)
	if got := x.At(1, 2); got != 7 {
		t.Fatalf("At = %v, want 7", got)
	}
	if got := x.At(0, 0); got != 0 {
		t.Fatalf("zero init violated: %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	y := x.Clone()
	y.Set(99, 0, 0)
	if x.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(42, 0, 0)
	if x.At(0, 0) != 42 {
		t.Fatal("Reshape must share storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched reshape must panic")
		}
	}()
	x.Reshape(4, 2)
}

func TestElementwise(t *testing.T) {
	a := FromSlice([]float32{1, -2, 3}, 3)
	b := FromSlice([]float32{4, 5, -6}, 3)
	dst := New(3)
	Add(dst, a, b)
	want := []float32{5, 3, -3}
	for i, w := range want {
		if dst.Data()[i] != w {
			t.Fatalf("Add[%d] = %v, want %v", i, dst.Data()[i], w)
		}
	}
	Sub(dst, a, b)
	want = []float32{-3, -7, 9}
	for i, w := range want {
		if dst.Data()[i] != w {
			t.Fatalf("Sub[%d] = %v, want %v", i, dst.Data()[i], w)
		}
	}
	Mul(dst, a, b)
	want = []float32{4, -10, -18}
	for i, w := range want {
		if dst.Data()[i] != w {
			t.Fatalf("Mul[%d] = %v, want %v", i, dst.Data()[i], w)
		}
	}
	dst.Fill(1)
	AXPY(dst, 2, a)
	want = []float32{3, -3, 7}
	for i, w := range want {
		if dst.Data()[i] != w {
			t.Fatalf("AXPY[%d] = %v, want %v", i, dst.Data()[i], w)
		}
	}
	Scale(dst, 0.5)
	want = []float32{1.5, -1.5, 3.5}
	for i, w := range want {
		if dst.Data()[i] != w {
			t.Fatalf("Scale[%d] = %v, want %v", i, dst.Data()[i], w)
		}
	}
}

func TestReLUAndBackward(t *testing.T) {
	x := FromSlice([]float32{-1, 0, 2}, 3)
	y := New(3)
	ReLU(y, x)
	if y.Data()[0] != 0 || y.Data()[1] != 0 || y.Data()[2] != 2 {
		t.Fatalf("ReLU = %v", y.Data())
	}
	g := FromSlice([]float32{10, 20, 30}, 3)
	gi := New(3)
	ReLUBackward(gi, g, y)
	if gi.Data()[0] != 0 || gi.Data()[1] != 0 || gi.Data()[2] != 30 {
		t.Fatalf("ReLUBackward = %v", gi.Data())
	}
}

func TestSoftmaxRows(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 1000, 1000, 1000}, 2, 3)
	y := New(2, 3)
	Softmax(y, x)
	for r := 0; r < 2; r++ {
		var sum float64
		for c := 0; c < 3; c++ {
			v := y.At(r, c)
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			sum += float64(v)
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("row %d sums to %v", r, sum)
		}
	}
	// Large-value row must not produce NaN and should be uniform.
	if d := y.At(1, 0) - y.At(1, 2); d > 1e-6 || d < -1e-6 {
		t.Fatalf("uniform row not uniform: %v", y)
	}
}

func matmulNaive(a, b *Tensor) *Tensor {
	m, k := a.Shape()[0], a.Shape()[1]
	n := b.Shape()[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for p := 0; p < k; p++ {
				acc += float64(a.At(i, p)) * float64(b.At(p, j))
			}
			out.Set(float32(acc), i, j)
		}
	}
	return out
}

func TestMatMulVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, k, n := 17, 23, 11
	a := New(m, k)
	b := New(k, n)
	a.RandNormal(rng, 1)
	b.RandNormal(rng, 1)
	want := matmulNaive(a, b)

	got := New(m, n)
	MatMul(got, a, b)
	if d := MaxAbsDiff(got, want); d > 1e-4 {
		t.Fatalf("MatMul diff %v", d)
	}

	// aT stored as [k, m]
	at := New(k, m)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			at.Set(a.At(i, p), p, i)
		}
	}
	got2 := New(m, n)
	MatMulAT(got2, at, b)
	if d := MaxAbsDiff(got2, want); d > 1e-4 {
		t.Fatalf("MatMulAT diff %v", d)
	}

	// bT stored as [n, k]
	bt := New(n, k)
	for p := 0; p < k; p++ {
		for j := 0; j < n; j++ {
			bt.Set(b.At(p, j), j, p)
		}
	}
	got3 := New(m, n)
	MatMulBT(got3, a, bt)
	if d := MaxAbsDiff(got3, want); d > 1e-4 {
		t.Fatalf("MatMulBT diff %v", d)
	}
}

func TestPadUnpadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := New(2, 3, 5, 7)
	x.RandNormal(rng, 1)
	p := Pad2D{Top: 1, Bottom: 2, Left: 3, Right: 0}
	y := PadSpatial(x, p)
	if !y.Shape().Equal(Shape{2, 3, 8, 10}) {
		t.Fatalf("padded shape %v", y.Shape())
	}
	// Border must be zero.
	if y.At(0, 0, 0, 5) != 0 || y.At(1, 2, 7, 2) != 0 || y.At(0, 1, 3, 0) != 0 {
		t.Fatal("padding region not zero")
	}
	back := UnpadSpatial(y, p, 5, 7)
	if d := MaxAbsDiff(back, x); d != 0 {
		t.Fatalf("round-trip diff %v", d)
	}
}

// conv2DNaive is an O(everything) reference implementation used to
// validate the im2col path.
func conv2DNaive(x, w, bias *Tensor, p ConvParams) *Tensor {
	n, cin, h, wd := x.Shape().N(), x.Shape().C(), x.Shape().H(), x.Shape().W()
	cout := w.Shape()[0]
	oh, ow := p.OutSize(h, wd)
	out := New(n, cout, oh, ow)
	for b := 0; b < n; b++ {
		for co := 0; co < cout; co++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var acc float64
					for ci := 0; ci < cin; ci++ {
						for ky := 0; ky < p.KH; ky++ {
							iy := oy*p.SH - p.Pad.Top + ky
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < p.KW; kx++ {
								ix := ox*p.SW - p.Pad.Left + kx
								if ix < 0 || ix >= wd {
									continue
								}
								acc += float64(x.At(b, ci, iy, ix)) * float64(w.At(co, ci, ky, kx))
							}
						}
					}
					if bias != nil {
						acc += float64(bias.Data()[co])
					}
					out.Set(float32(acc), b, co, oy, ox)
				}
			}
		}
	}
	return out
}

func TestConv2DMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := []struct {
		n, cin, h, w, cout int
		p                  ConvParams
	}{
		{2, 3, 8, 8, 4, ConvParams{KH: 3, KW: 3, SH: 1, SW: 1, Pad: Symmetric(1)}},
		{1, 2, 7, 9, 3, ConvParams{KH: 3, KW: 3, SH: 2, SW: 2, Pad: Symmetric(1)}},
		{2, 1, 6, 6, 2, ConvParams{KH: 2, KW: 2, SH: 2, SW: 2}},
		{1, 3, 10, 5, 2, ConvParams{KH: 3, KW: 2, SH: 1, SW: 1, Pad: Pad2D{Top: 2, Bottom: 0, Left: 1, Right: 0}}},
		{1, 2, 5, 5, 2, ConvParams{KH: 5, KW: 5, SH: 1, SW: 1, Pad: Symmetric(2)}},
	}
	for i, c := range cases {
		x := New(c.n, c.cin, c.h, c.w)
		w := New(c.cout, c.cin, c.p.KH, c.p.KW)
		bias := New(c.cout)
		x.RandNormal(rng, 1)
		w.RandNormal(rng, 0.5)
		bias.RandNormal(rng, 0.1)
		want := conv2DNaive(x, w, bias, c.p)
		got := Conv2D(x, w, bias, c.p)
		if !got.Shape().Equal(want.Shape()) {
			t.Fatalf("case %d: shape %v want %v", i, got.Shape(), want.Shape())
		}
		if d := MaxAbsDiff(got, want); d > 1e-3 {
			t.Fatalf("case %d: diff %v", i, d)
		}
	}
}

// TestConv2DBackwardNumeric checks analytic conv gradients against
// central finite differences of a scalar loss sum(conv(x, w)).
func TestConv2DBackwardNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := ConvParams{KH: 3, KW: 3, SH: 2, SW: 2, Pad: Pad2D{Top: 1, Bottom: 0, Left: 1, Right: 0}}
	x := New(1, 2, 6, 6)
	w := New(3, 2, 3, 3)
	b := New(3)
	x.RandNormal(rng, 1)
	w.RandNormal(rng, 0.5)
	b.RandNormal(rng, 0.1)

	out := Conv2D(x, w, b, p)
	gradOut := New(out.Shape()...)
	gradOut.Fill(1) // loss = sum(out)
	gw := New(w.Shape()...)
	gb := New(b.Shape()...)
	gx := Conv2DBackward(x, w, gradOut, p, gw, gb, true)

	lossAt := func() float64 { return Conv2D(x, w, b, p).Sum() }
	const eps = 1e-2
	check := func(name string, param, grad *Tensor, probes int) {
		for i := 0; i < probes; i++ {
			idx := rng.Intn(param.Elems())
			orig := param.Data()[idx]
			param.Data()[idx] = orig + eps
			up := lossAt()
			param.Data()[idx] = orig - eps
			down := lossAt()
			param.Data()[idx] = orig
			num := (up - down) / (2 * eps)
			got := float64(grad.Data()[idx])
			if diff := num - got; diff > 0.05 || diff < -0.05 {
				t.Fatalf("%s grad[%d]: analytic %v vs numeric %v", name, idx, got, num)
			}
		}
	}
	check("x", x, gx, 20)
	check("w", w, gw, 20)
	check("b", b, gb, 3)
}

func TestMaxPoolMatchesManual(t *testing.T) {
	x := FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	p := ConvParams{KH: 2, KW: 2, SH: 2, SW: 2}
	y, arg := MaxPool2D(x, p)
	want := []float32{6, 8, 14, 16}
	for i, w := range want {
		if y.Data()[i] != w {
			t.Fatalf("maxpool[%d] = %v, want %v", i, y.Data()[i], w)
		}
	}
	g := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	gi := MaxPool2DBackward(g, arg, p, 1, 1, 4, 4)
	if gi.At(0, 0, 1, 1) != 1 || gi.At(0, 0, 1, 3) != 2 || gi.At(0, 0, 3, 1) != 3 || gi.At(0, 0, 3, 3) != 4 {
		t.Fatalf("maxpool backward wrong: %v", gi.Data())
	}
	if s := gi.Sum(); s != 10 {
		t.Fatalf("grad mass %v, want 10", s)
	}
}

func TestMaxPoolPaddingIgnored(t *testing.T) {
	x := FromSlice([]float32{-5, -6, -7, -8}, 1, 1, 2, 2)
	p := ConvParams{KH: 3, KW: 3, SH: 2, SW: 2, Pad: Symmetric(1)}
	y, _ := MaxPool2D(x, p)
	// With -inf padding the max of all-negative input stays negative.
	if y.At(0, 0, 0, 0) != -5 {
		t.Fatalf("padding leaked into max: %v", y.Data())
	}
}

func TestAvgPoolAndBackward(t *testing.T) {
	x := FromSlice([]float32{
		1, 2,
		3, 4,
	}, 1, 1, 2, 2)
	p := ConvParams{KH: 2, KW: 2, SH: 2, SW: 2}
	y := AvgPool2D(x, p)
	if y.At(0, 0, 0, 0) != 2.5 {
		t.Fatalf("avgpool = %v", y.At(0, 0, 0, 0))
	}
	g := FromSlice([]float32{4}, 1, 1, 1, 1)
	gi := AvgPool2DBackward(g, p, 1, 1, 2, 2)
	for i := 0; i < 4; i++ {
		if gi.Data()[i] != 1 {
			t.Fatalf("avgpool backward = %v", gi.Data())
		}
	}
}

func TestSplitConcatRoundTripW(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := New(2, 3, 4, 9)
	x.RandNormal(rng, 1)
	parts := SplitSpatial(x, DimW, []int{0, 3, 7})
	if !parts[0].Shape().Equal(Shape{2, 3, 4, 3}) ||
		!parts[1].Shape().Equal(Shape{2, 3, 4, 4}) ||
		!parts[2].Shape().Equal(Shape{2, 3, 4, 2}) {
		t.Fatalf("split shapes: %v %v %v", parts[0].Shape(), parts[1].Shape(), parts[2].Shape())
	}
	back := ConcatSpatial(parts, DimW)
	if d := MaxAbsDiff(back, x); d != 0 {
		t.Fatalf("round trip diff %v", d)
	}
}

func TestSplitConcatRoundTripH(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := New(1, 2, 10, 3)
	x.RandNormal(rng, 1)
	parts := SplitSpatial(x, DimH, []int{0, 2, 5, 9})
	back := ConcatSpatial(parts, DimH)
	if d := MaxAbsDiff(back, x); d != 0 {
		t.Fatalf("round trip diff %v", d)
	}
}

func TestValidateStarts(t *testing.T) {
	for _, bad := range [][]int{{}, {1}, {0, 0}, {0, 3, 2}, {0, 10}} {
		if err := ValidateStarts(bad, 10); err == nil {
			t.Fatalf("starts %v accepted", bad)
		}
	}
	if err := ValidateStarts([]int{0, 4, 9}, 10); err != nil {
		t.Fatalf("valid starts rejected: %v", err)
	}
}

func TestArgmaxRow(t *testing.T) {
	x := FromSlice([]float32{1, 5, 2, 9, 0, 3}, 2, 3)
	got := ArgmaxRow(x)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgmaxRow = %v", got)
	}
}

func TestIm2ColCol2ImAdjoint(t *testing.T) {
	// <col, Im2Col(x)> == <Col2Im(col), x> must hold for the pair to be
	// true adjoints; verify on random data.
	rng := rand.New(rand.NewSource(7))
	p := ConvParams{KH: 3, KW: 2, SH: 2, SW: 1, Pad: Pad2D{Top: 1, Bottom: 0, Left: 0, Right: 1}}
	x := New(2, 2, 5, 4)
	x.RandNormal(rng, 1)
	cx := Im2Col(x, p)
	u := New(cx.Shape()...)
	u.RandNormal(rng, 1)
	lhs := 0.0
	for i, v := range cx.Data() {
		lhs += float64(v) * float64(u.Data()[i])
	}
	back := Col2Im(u, p, 2, 2, 5, 4)
	rhs := 0.0
	for i, v := range back.Data() {
		rhs += float64(v) * float64(x.Data()[i])
	}
	if d := lhs - rhs; d > 1e-2 || d < -1e-2 {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}
