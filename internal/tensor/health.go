package tensor

import "math"

// nonFiniteBits masks the float32 exponent: all-ones means NaN or ±Inf.
// Working on the raw bits keeps the scans branch-cheap and free of
// float64 conversions in the hot sampled path.
const nonFiniteBits = 0x7f800000

// HasNonFinite reports whether any sampled element of t is NaN or ±Inf.
// stride selects every stride-th element (plus the last, so a poisoned
// tail is never invisible); stride <= 1 scans everything. A strided
// scan is the cheap per-op health probe the anomaly guards run inside
// the executor hook — NaNs from an upstream op saturate whole output
// tensors within an op or two, so sampling catches them while costing a
// small fraction of a full pass.
func (t *Tensor) HasNonFinite(stride int) bool {
	if stride < 1 {
		stride = 1
	}
	d := t.data
	for i := 0; i < len(d); i += stride {
		if math.Float32bits(d[i])&nonFiniteBits == nonFiniteBits {
			return true
		}
	}
	if n := len(d); n > 0 && (n-1)%stride != 0 {
		return math.Float32bits(d[n-1])&nonFiniteBits == nonFiniteBits
	}
	return false
}

// CountNonFinite returns the exact number of NaN/±Inf elements — the
// full scan a tripped guard runs to attribute the damage.
func (t *Tensor) CountNonFinite() int {
	n := 0
	for _, v := range t.data {
		if math.Float32bits(v)&nonFiniteBits == nonFiniteBits {
			n++
		}
	}
	return n
}

// SumSquares accumulates Σ x² in float64 — the building block of the
// global parameter and gradient L2 norms in the step telemetry.
func (t *Tensor) SumSquares() float64 {
	var s float64
	for _, v := range t.data {
		f := float64(v)
		s += f * f
	}
	return s
}
