package tensor

import (
	"fmt"
	"sync"

	"splitcnn/internal/trace"
)

// Arena is a size-bucketed free list of tensor storage. It is the host
// analogue of the paper's first-fit device memory pool (§4): instead of
// allocating a fresh buffer per tensor and leaning on the garbage
// collector, the execution engine acquires workspace from a warm pool
// and returns it when the buffer's lifetime ends, so steady-state
// training steps perform zero heap allocations for activations,
// gradients, and im2col scratch.
//
// Buffers are bucketed by power-of-two element count: a Get for n
// elements is served by any pooled buffer of the smallest class >= n,
// which keeps fragmentation bounded (< 2x) without a planning pass.
// An Arena is safe for concurrent use; the data-parallel trainer gives
// each worker its own arena so Get/Put stay uncontended.
//
// All methods are nil-receiver safe: a nil *Arena degrades to plain
// allocation, so kernels can accept an optional arena without branching
// at every call site.
type Arena struct {
	mu   sync.Mutex
	free map[int][]*Tensor

	gets, hits     int64
	inUseBytes     int64
	highWaterBytes int64
	pooledBytes    int64
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{free: make(map[int][]*Tensor)}
}

// Get returns a zero-filled tensor of the given shape, reusing pooled
// storage when a large-enough buffer is available. On a nil arena it is
// equivalent to New.
func (a *Arena) Get(dims ...int) *Tensor { return a.get(true, dims) }

// GetRaw is Get without the zero fill, for buffers whose every element
// the caller overwrites (GEMM outputs with beta=0, copy targets, ...).
func (a *Arena) GetRaw(dims ...int) *Tensor { return a.get(false, dims) }

func (a *Arena) get(zero bool, dims []int) *Tensor {
	if a == nil {
		return New(dims...)
	}
	// Validation is open-coded: Shape(dims).Validate() would let dims
	// escape into its error formatting, and an escaping parameter makes
	// every Get(n, c, h, w) call site heap-allocate its variadic slice —
	// exactly the steady-state allocations the arena exists to remove.
	if len(dims) == 0 {
		panic("tensor.Arena.Get: empty shape")
	}
	elems := 1
	for i, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("tensor.Arena.Get: dimension %d is %d, want > 0", i, d))
		}
		elems *= d
	}
	class := pow2ceil(elems)
	a.mu.Lock()
	a.gets++
	var t *Tensor
	if st := a.free[class]; len(st) > 0 {
		t = st[len(st)-1]
		st[len(st)-1] = nil
		a.free[class] = st[:len(st)-1]
		a.hits++
	} else {
		a.pooledBytes += int64(class) * 4
	}
	a.inUseBytes += int64(class) * 4
	if a.inUseBytes > a.highWaterBytes {
		a.highWaterBytes = a.inUseBytes
	}
	a.mu.Unlock()
	if t == nil {
		t = &Tensor{data: make([]float32, class)} // fresh storage is already zero
		t.data = t.data[:elems]
		t.shape = append(Shape(nil), dims...)
		t.arena = a
		return t
	}
	t.data = t.data[:elems]
	t.shape = append(t.shape[:0], dims...)
	t.arena = a
	if zero {
		clear(t.data)
	}
	return t
}

// Put returns t's storage to the arena. Only tensors vended by this
// arena's Get/GetRaw and not already returned are reclaimed; any other
// tensor (including nil, plain New tensors, Reshape aliases, and other
// arenas' tensors) is ignored, so callers may Put unconditionally.
// After Put the tensor's contents must not be used: the same *Tensor
// (shape rewritten, data resliced) is handed out by a later Get.
func (a *Arena) Put(t *Tensor) {
	if a == nil || t == nil || t.arena != a {
		return
	}
	t.arena = nil
	class := cap(t.data)
	a.mu.Lock()
	a.inUseBytes -= int64(class) * 4
	a.free[class] = append(a.free[class], t)
	a.mu.Unlock()
}

// ArenaStats is a point-in-time snapshot of an arena's counters.
type ArenaStats struct {
	// Gets counts Get/GetRaw calls; Hits counts those served from the
	// pool rather than a fresh allocation.
	Gets, Hits int64
	// InUseBytes is storage currently vended; HighWaterBytes its maximum
	// over the arena's lifetime; PooledBytes the total storage the arena
	// owns (vended + free), i.e. its heap footprint.
	InUseBytes, HighWaterBytes, PooledBytes int64
}

// HitRate returns the fraction of gets served from the pool, in [0, 1].
func (s ArenaStats) HitRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// Add accumulates another arena's counters — how a process with one
// arena per executor (the serving registry, the data-parallel trainer)
// reports a single aggregate occupancy.
func (s ArenaStats) Add(o ArenaStats) ArenaStats {
	return ArenaStats{
		Gets: s.Gets + o.Gets, Hits: s.Hits + o.Hits,
		InUseBytes:     s.InUseBytes + o.InUseBytes,
		HighWaterBytes: s.HighWaterBytes + o.HighWaterBytes,
		PooledBytes:    s.PooledBytes + o.PooledBytes,
	}
}

// Record publishes the snapshot as gauges under prefix (conventionally
// "arena"): <prefix>.in_use_bytes, .high_water_bytes, .pooled_bytes and
// .hit_rate — the arena-occupancy series the runtime sampler and the
// trainer both feed.
func (s ArenaStats) Record(prefix string, reg *trace.Metrics) {
	reg.Gauge(prefix + ".in_use_bytes").Set(float64(s.InUseBytes))
	reg.Gauge(prefix + ".high_water_bytes").Set(float64(s.HighWaterBytes))
	reg.Gauge(prefix + ".pooled_bytes").Set(float64(s.PooledBytes))
	reg.Gauge(prefix + ".hit_rate").Set(s.HitRate())
}

// Stats returns a snapshot of the arena's counters. A nil arena reports
// zeros.
func (a *Arena) Stats() ArenaStats {
	if a == nil {
		return ArenaStats{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return ArenaStats{
		Gets: a.gets, Hits: a.hits,
		InUseBytes:     a.inUseBytes,
		HighWaterBytes: a.highWaterBytes,
		PooledBytes:    a.pooledBytes,
	}
}
