package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickSplitConcatRoundTrip: for any valid random split of a random
// tensor along either spatial dimension, concatenation restores it.
func TestQuickSplitConcatRoundTrip(t *testing.T) {
	f := func(seed int64, dimRaw bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n, c := 1+rng.Intn(3), 1+rng.Intn(4)
		h, w := 2+rng.Intn(12), 2+rng.Intn(12)
		x := New(n, c, h, w)
		x.RandNormal(rng, 1)
		dim := DimH
		size := h
		if dimRaw {
			dim = DimW
			size = w
		}
		parts := 1 + rng.Intn(min(size, 4))
		starts := make([]int, 0, parts)
		used := map[int]bool{0: true}
		starts = append(starts, 0)
		for len(starts) < parts {
			s := rng.Intn(size)
			if !used[s] {
				used[s] = true
				starts = append(starts, s)
			}
		}
		// sort
		for i := 1; i < len(starts); i++ {
			for j := i; j > 0 && starts[j] < starts[j-1]; j-- {
				starts[j], starts[j-1] = starts[j-1], starts[j]
			}
		}
		pieces := SplitSpatial(x, dim, starts)
		back := ConcatSpatial(pieces, dim)
		return MaxAbsDiff(back, x) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickConvOutputSize: OutSize must agree with the actual tensor
// produced by Conv2D for random geometries, including negative padding
// (cropping).
func TestQuickConvOutputSize(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		s := 1 + rng.Intn(3)
		pad := Pad2D{
			Top: rng.Intn(k+2) - 1, Bottom: rng.Intn(k+2) - 1,
			Left: rng.Intn(k+2) - 1, Right: rng.Intn(k+2) - 1,
		}
		h := k + 2 + rng.Intn(10)
		w := k + 2 + rng.Intn(10)
		p := ConvParams{KH: k, KW: k, SH: s, SW: s, Pad: pad}
		oh, ow := p.OutSize(h, w)
		if oh <= 0 || ow <= 0 {
			return true // degenerate geometry; Conv2D would panic by design
		}
		x := New(1, 2, h, w)
		x.RandNormal(rng, 1)
		wt := New(3, 2, k, k)
		wt.RandNormal(rng, 1)
		out := Conv2D(x, wt, nil, p)
		return out.Shape().Equal(Shape{1, 3, oh, ow})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestNegativeCropConvMatchesManualCrop: negative padding must equal
// cropping the input before a zero-padding convolution.
func TestNegativeCropConvMatchesManualCrop(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := New(1, 2, 8, 8)
	x.RandNormal(rng, 1)
	w := New(2, 2, 1, 1)
	w.RandNormal(rng, 1)
	// Crop one row at top via Pad.Top = -1.
	p := ConvParams{KH: 1, KW: 1, SH: 1, SW: 1, Pad: Pad2D{Top: -1}}
	got := Conv2D(x, w, nil, p)
	// Manual: slice rows 1..8 then conv without padding.
	parts := SplitSpatial(x, DimH, []int{0, 1})
	want := Conv2D(parts[1], w, nil, ConvParams{KH: 1, KW: 1, SH: 1, SW: 1})
	if !got.Shape().Equal(want.Shape()) {
		t.Fatalf("shape %v vs %v", got.Shape(), want.Shape())
	}
	if d := MaxAbsDiff(got, want); d > 1e-6 {
		t.Fatalf("crop-conv mismatch %v", d)
	}
}

// TestQuickMatMulLinearity: matmul must be linear in its first argument.
func TestQuickMatMulLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a1, a2 := New(m, k), New(m, k)
		bm := New(k, n)
		a1.RandNormal(rng, 1)
		a2.RandNormal(rng, 1)
		bm.RandNormal(rng, 1)
		sum := New(m, k)
		Add(sum, a1, a2)
		lhs := New(m, n)
		MatMul(lhs, sum, bm)
		r1, r2 := New(m, n), New(m, n)
		MatMul(r1, a1, bm)
		MatMul(r2, a2, bm)
		rhs := New(m, n)
		Add(rhs, r1, r2)
		return MaxAbsDiff(lhs, rhs) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPoolGradientMassConservation: max-pool backward scatters
// exactly the gradient mass it receives (no duplication, no loss) for
// unpadded, non-overlapping windows.
func TestQuickPoolGradientMassConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		h := k * (1 + rng.Intn(5))
		w := k * (1 + rng.Intn(5))
		x := New(2, 2, h, w)
		x.RandNormal(rng, 1)
		p := ConvParams{KH: k, KW: k, SH: k, SW: k}
		_, arg := MaxPool2D(x, p)
		oh, ow := p.OutSize(h, w)
		g := New(2, 2, oh, ow)
		g.RandNormal(rng, 1)
		gi := MaxPool2DBackward(g, arg, p, 2, 2, h, w)
		diff := gi.Sum() - g.Sum()
		return diff < 1e-3 && diff > -1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
