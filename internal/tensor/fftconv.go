package tensor

// FFT-based convolution: the fourth conv algorithm next to direct,
// im2col+GEMM and Winograd. Per PAPERS.md ("Acceleration of CNN Using
// FFT-Based Split Convolutions"), frequency-domain convolution
// complements spatially split patches at large kernels and channel
// counts: arithmetic is O(N² log N) per plane regardless of kernel
// size, so the advantage over im2col grows with KH·KW.
//
// The transform is a 2-D real FFT built from an iterative radix-2
// decimation-in-time complex FFT over power-of-two padded tiles:
//
//   - rows are transformed two at a time with the classic packing
//     trick (z = rowA + i·rowB, one complex FFT, Hermitian unpack),
//   - only the non-redundant half-spectrum (PW/2+1 columns) is kept,
//     stored column-contiguous so the column FFTs are unit-stride,
//   - cross-correlation (what conv layers actually compute) is the
//     pointwise product Ŷ = X̂ ⊙ conj(Ŵ),
//   - one inverse transform per (batch, cout) pair after accumulating
//     over input channels in the frequency domain.
//
// Zero-padding the tile to nextpow2(H+PadT+PadB) makes the circular
// correlation exact for the linear one: every output row index
// oy ≤ Hp−KH stays below the wrap-around point. Stride > 1 is not
// supported (computing the dense output and discarding most of it
// forfeits the arithmetic advantage); the dispatcher never routes
// strided shapes here.

import (
	"fmt"
	"math"
	"sync"
)

// FFTConvTolerance is the pinned accuracy contract of the FFT backend:
// the maximum |Conv2DFFT − Conv2D| over any layer, relative to the
// largest output magnitude of that layer. Exactness tests in this
// package and the autotune property sweep assert it; observed error on
// randomized sweeps is ~25x below this bound (forward + inverse
// transform round-off grows with log(tile), accumulation over Cin is
// frequency-domain and benefits from the same cancellation as the
// spatial sum).
const FFTConvTolerance = 1e-4

// FFTConvApplies reports whether the FFT path handles the geometry:
// any kernel and padding, stride 1.
func FFTConvApplies(p ConvParams) bool { return p.SH == 1 && p.SW == 1 }

// fftPlan holds the precomputed bit-reversal permutation and per-stage
// twiddle factors for a power-of-two complex FFT. Twiddles are
// generated in float64 and rounded once, so plan reuse is bit-stable.
type fftPlan struct {
	n   int
	rev []int32
	tw  []float32 // forward twiddles: (re,im) pairs, n-1 total
}

var fftPlans = struct {
	mu sync.RWMutex
	m  map[int]*fftPlan
}{m: make(map[int]*fftPlan)}

func getFFTPlan(n int) *fftPlan {
	fftPlans.mu.RLock()
	p := fftPlans.m[n]
	fftPlans.mu.RUnlock()
	if p != nil {
		return p
	}
	p = newFFTPlan(n)
	fftPlans.mu.Lock()
	if q := fftPlans.m[n]; q != nil {
		p = q
	} else {
		fftPlans.m[n] = p
	}
	fftPlans.mu.Unlock()
	return p
}

func newFFTPlan(n int) *fftPlan {
	bits := 0
	for 1<<bits < n {
		bits++
	}
	rev := make([]int32, n)
	for i := 0; i < n; i++ {
		r := 0
		for b := 0; b < bits; b++ {
			if i&(1<<b) != 0 {
				r |= 1 << (bits - 1 - b)
			}
		}
		rev[i] = int32(r)
	}
	tw := make([]float32, 0, 2*(n-1))
	for length := 2; length <= n; length <<= 1 {
		for j := 0; j < length/2; j++ {
			th := 2 * math.Pi * float64(j) / float64(length)
			tw = append(tw, float32(math.Cos(th)), float32(-math.Sin(th)))
		}
	}
	return &fftPlan{n: n, rev: rev, tw: tw}
}

// fftInPlace runs an in-place radix-2 DIT FFT over d, an interleaved
// (re,im) complex vector of plan length. inverse conjugates the
// twiddles but does NOT scale: callers fold the 1/(PH·PW) factor into
// the final output extraction.
func fftInPlace(d []float32, p *fftPlan, inverse bool) {
	n := p.n
	for i, rv := range p.rev {
		j := int(rv)
		if j > i {
			d[2*i], d[2*j] = d[2*j], d[2*i]
			d[2*i+1], d[2*j+1] = d[2*j+1], d[2*i+1]
		}
	}
	sign := float32(1)
	if inverse {
		sign = -1
	}
	off := 0
	for length := 2; length <= n; length <<= 1 {
		half := length >> 1
		tw := p.tw[2*off:]
		for start := 0; start < n; start += length {
			for j := 0; j < half; j++ {
				wr, wi := tw[2*j], sign*tw[2*j+1]
				a := 2 * (start + j)
				b := a + 2*half
				yr, yi := d[b], d[b+1]
				tr := yr*wr - yi*wi
				ti := yr*wi + yi*wr
				xr, xi := d[a], d[a+1]
				d[a], d[a+1] = xr+tr, xi+ti
				d[b], d[b+1] = xr-tr, xi-ti
			}
		}
		off += half
	}
}

// fftPow2 returns the smallest power of two >= n, floored at 2 (the
// row-pairing trick and the Hermitian index arithmetic need even,
// power-of-two extents).
func fftPow2(n int) int {
	c := 2
	for c < n {
		c <<= 1
	}
	return c
}

// rfft2 computes the 2-D DFT of the real ph×pw tile into the
// column-contiguous half-spectrum dst: complex bin (k, y) — column
// frequency k ∈ [0, pw/2], row index y — lives at dst[2*(k*ph+y)].
// z is caller scratch of 2*pw floats.
func rfft2(dst, tile []float32, ph, pw, pwh int, rowPlan, colPlan *fftPlan, z []float32) {
	for y := 0; y < ph; y += 2 {
		rowA := tile[y*pw : (y+1)*pw]
		rowB := tile[(y+1)*pw : (y+2)*pw]
		for k := 0; k < pw; k++ {
			z[2*k] = rowA[k]
			z[2*k+1] = rowB[k]
		}
		fftInPlace(z, rowPlan, false)
		// Unpack Z = A + i·B via Hermitian symmetry of the real rows:
		// A[k] = (Z[k]+conj(Z[pw−k]))/2, B[k] = −i(Z[k]−conj(Z[pw−k]))/2.
		for k := 0; k < pwh; k++ {
			kr := (pw - k) & (pw - 1)
			zr, zi := z[2*k], z[2*k+1]
			cr, ci := z[2*kr], -z[2*kr+1]
			base := (k*ph + y) * 2
			dst[base], dst[base+1] = 0.5*(zr+cr), 0.5*(zi+ci)
			dst[base+2], dst[base+3] = 0.5*(zi-ci), 0.5*(cr-zr)
		}
	}
	for k := 0; k < pwh; k++ {
		fftInPlace(dst[k*ph*2:(k+1)*ph*2], colPlan, false)
	}
}

// irfft2 inverts rfft2 into the real ph×pw tile, destroying the
// half-spectrum f in the process. No scaling is applied: the caller
// multiplies by 1/(ph·pw) when extracting the output window.
func irfft2(tile, f []float32, ph, pw, pwh int, rowPlan, colPlan *fftPlan, z []float32) {
	for k := 0; k < pwh; k++ {
		fftInPlace(f[k*ph*2:(k+1)*ph*2], colPlan, true)
	}
	for y := 0; y < ph; y += 2 {
		// Re-pack Z = A + i·B, reconstructing the redundant column
		// frequencies k ∈ (pw/2, pw) from conj(A[pw−k]), conj(B[pw−k]).
		for k := 0; k < pwh; k++ {
			base := (k*ph + y) * 2
			ar, ai := f[base], f[base+1]
			br, bi := f[base+2], f[base+3]
			z[2*k] = ar - bi
			z[2*k+1] = ai + br
		}
		for k := pwh; k < pw; k++ {
			base := ((pw-k)*ph + y) * 2
			ar, ai := f[base], f[base+1]
			br, bi := f[base+2], f[base+3]
			z[2*k] = ar + bi
			z[2*k+1] = br - ai
		}
		fftInPlace(z, rowPlan, true)
		rowA := tile[y*pw : (y+1)*pw]
		rowB := tile[(y+1)*pw : (y+2)*pw]
		for k := 0; k < pw; k++ {
			rowA[k] = z[2*k]
			rowB[k] = z[2*k+1]
		}
	}
}

// Conv2DFFT computes the same result as Conv2D (within
// FFTConvTolerance) for a stride-1 convolution via frequency-domain
// cross-correlation.
func Conv2DFFT(x, weight, bias *Tensor, p ConvParams) *Tensor {
	return Conv2DFFTArena(nil, x, weight, bias, p)
}

// Conv2DFFTArena is Conv2DFFT with the output drawn from an arena; the
// spectra and per-worker tiles come from the kernel-internal scratch
// pool either way.
func Conv2DFFTArena(a *Arena, x, weight, bias *Tensor, p ConvParams) *Tensor {
	n, _, _, _, oh, ow := p.check(x)
	out := a.GetRaw(n, weight.shape[0], oh, ow)
	Conv2DFFTInto(out, x, weight, bias, p)
	return out
}

// Conv2DFFTInto computes the FFT convolution into a caller-supplied
// dst of shape [N,Cout,OH,OW] (the compiled executor's fixed-offset
// entry point). All workspace cycles through the scratch pool, so a
// warmed-up loop allocates nothing. dst must not alias x.
func Conv2DFFTInto(dst, x, weight, bias *Tensor, p ConvParams) {
	if !FFTConvApplies(p) {
		panic("tensor.Conv2DFFT: geometry not supported (stride must be 1)")
	}
	n, cin, h, w, oh, ow := p.check(x)
	cout := weight.shape[0]
	if !weight.shape.Equal(Shape{cout, cin, p.KH, p.KW}) {
		panic(fmt.Sprintf("tensor.Conv2DFFT: weight %v incompatible with input %v and %+v", weight.shape, x.shape, p))
	}
	if len(dst.data) != n*cout*oh*ow {
		panic(fmt.Sprintf("tensor.Conv2DFFTInto: dst %v, want %d elements", dst.shape, n*cout*oh*ow))
	}

	ph := fftPow2(h + p.Pad.Top + p.Pad.Bottom)
	pw := fftPow2(w + p.Pad.Left + p.Pad.Right)
	pwh := pw/2 + 1
	grid := 2 * ph * pwh
	rowPlan := getFFTPlan(pw)
	colPlan := getFFTPlan(ph)

	// Materialize both spectra up front: X̂ for all N·Cin input planes
	// (placed at the padding offset inside the tile) and Ŵ for all
	// Cout·Cin filter taps (placed at the origin).
	xhat := getScratch(n * cin * grid)
	what := getScratch(cout * cin * grid)
	planeWork := 1 + parallelThreshold/(ph*pw)
	parallelRange(n*cin, planeWork, fftFwdArgs{
		out: xhat, src: x.data, h: h, w: w, offY: p.Pad.Top, offX: p.Pad.Left,
		ph: ph, pw: pw, pwh: pwh, grid: grid, rowPlan: rowPlan, colPlan: colPlan,
	}, fftForwardTiles)
	parallelRange(cout*cin, planeWork, fftFwdArgs{
		out: what, src: weight.data, h: p.KH, w: p.KW,
		ph: ph, pw: pw, pwh: pwh, grid: grid, rowPlan: rowPlan, colPlan: colPlan,
	}, fftForwardTiles)

	var bd []float32
	if bias != nil {
		bd = bias.data
	}
	parallelRange(n*cout, 1+parallelThreshold/(cin*ph*pw), fftAccArgs{
		xhat: xhat, what: what, od: dst.data, bd: bd,
		cin: cin, cout: cout, oh: oh, ow: ow,
		ph: ph, pw: pw, pwh: pwh, grid: grid, rowPlan: rowPlan, colPlan: colPlan,
	}, fftAccumulate)

	putScratch(xhat)
	putScratch(what)
}

type fftFwdArgs struct {
	out, src          []float32
	h, w, offY, offX  int
	ph, pw, pwh, grid int
	rowPlan, colPlan  *fftPlan
}

func fftForwardTiles(t fftFwdArgs, lo, hi int) {
	tile := getScratch(t.ph * t.pw)
	z := getScratch(2 * t.pw)
	for i := lo; i < hi; i++ {
		src := t.src[i*t.h*t.w : (i+1)*t.h*t.w]
		clear(tile)
		for y := 0; y < t.h; y++ {
			copy(tile[(y+t.offY)*t.pw+t.offX:], src[y*t.w:(y+1)*t.w])
		}
		rfft2(t.out[i*t.grid:(i+1)*t.grid], tile, t.ph, t.pw, t.pwh, t.rowPlan, t.colPlan, z)
	}
	putScratch(tile)
	putScratch(z)
}

type fftAccArgs struct {
	xhat, what, od, bd []float32
	cin, cout, oh, ow  int
	ph, pw, pwh, grid  int
	rowPlan, colPlan   *fftPlan
}

func fftAccumulate(t fftAccArgs, lo, hi int) {
	acc := getScratch(t.grid)
	tile := getScratch(t.ph * t.pw)
	z := getScratch(2 * t.pw)
	scale := float32(1 / float64(t.ph*t.pw))
	for i := lo; i < hi; i++ {
		b, co := i/t.cout, i%t.cout
		// Ŷ = Σ_ci X̂ ⊙ conj(Ŵ): correlation, not convolution — conv
		// layers do not flip the kernel.
		for ci := 0; ci < t.cin; ci++ {
			xh := t.xhat[(b*t.cin+ci)*t.grid : (b*t.cin+ci+1)*t.grid]
			wh := t.what[(co*t.cin+ci)*t.grid : (co*t.cin+ci+1)*t.grid]
			if ci == 0 {
				for j := 0; j < t.grid; j += 2 {
					xr, xi := xh[j], xh[j+1]
					wr, wi := wh[j], wh[j+1]
					acc[j] = xr*wr + xi*wi
					acc[j+1] = xi*wr - xr*wi
				}
			} else {
				for j := 0; j < t.grid; j += 2 {
					xr, xi := xh[j], xh[j+1]
					wr, wi := wh[j], wh[j+1]
					acc[j] += xr*wr + xi*wi
					acc[j+1] += xi*wr - xr*wi
				}
			}
		}
		irfft2(tile, acc, t.ph, t.pw, t.pwh, t.rowPlan, t.colPlan, z)
		var bv float32
		if t.bd != nil {
			bv = t.bd[co]
		}
		dst := t.od[i*t.oh*t.ow : (i+1)*t.oh*t.ow]
		for oy := 0; oy < t.oh; oy++ {
			srow := tile[oy*t.pw : oy*t.pw+t.ow]
			drow := dst[oy*t.ow : (oy+1)*t.ow]
			for ox, v := range srow {
				drow[ox] = v*scale + bv
			}
		}
	}
	putScratch(acc)
	putScratch(tile)
	putScratch(z)
}

// FFTConvWorkspaceBytes returns the scratch footprint of Conv2DFFT:
// both materialized spectra plus the per-worker accumulator/tile/row
// buffers. This is the FFT analogue of WinogradWorkspaceBytes and what
// the dispatcher checks against the workspace cap — large-channel
// layers whose spectra would dwarf the tensors themselves are simply
// not FFT candidates.
func FFTConvWorkspaceBytes(x Shape, cout int, p ConvParams) int64 {
	ph := int64(fftPow2(x.H() + p.Pad.Top + p.Pad.Bottom))
	pw := int64(fftPow2(x.W() + p.Pad.Left + p.Pad.Right))
	grid := 2 * ph * (pw/2 + 1)
	n, cin := int64(x.N()), int64(x.C())
	perWorker := grid + ph*pw + 2*pw
	return 4 * (grid*cin*(n+int64(cout)) + int64(Parallelism())*perWorker)
}
