package tensor

// Winograd fast convolution F(2x2, 3x3) after Lavin & Gray — the
// algorithm §2.2.1 of the paper singles out: cuDNN adopted it to cut a
// 3x3 convolution's arithmetic by 2.25x at the price of extra workspace,
// pushing layers from compute-bound towards memory-bound and shrinking
// the time available to offload intermediate results. This
// implementation serves both as the repository's fast path for 3x3
// stride-1 convolutions and as a concrete exhibit of that trade-off: its
// transformed-input workspace is 4x the input tensor.
//
// Transform matrices (m = 2 output tile, r = 3 kernel):
//
//	Bᵀ = ⎡1  0 -1  0⎤   G = ⎡ 1    0    0 ⎤   Aᵀ = ⎡1 1  1  0⎤
//	     ⎢0  1  1  0⎥       ⎢1/2  1/2  1/2⎥        ⎣0 1 -1 -1⎦
//	     ⎢0 -1  1  0⎥       ⎢1/2 -1/2  1/2⎥
//	     ⎣0  1  0 -1⎦       ⎣ 0    0    1 ⎦

// WinogradApplies reports whether the fast path handles the geometry:
// square 3x3 kernel, stride 1, any padding.
func WinogradApplies(p ConvParams) bool {
	return p.KH == 3 && p.KW == 3 && p.SH == 1 && p.SW == 1
}

// Conv2DWinograd computes the same result as Conv2D for a 3x3 stride-1
// convolution using the F(2x2, 3x3) Winograd algorithm.
func Conv2DWinograd(x, weight, bias *Tensor, p ConvParams) *Tensor {
	return Conv2DWinogradArena(nil, x, weight, bias, p)
}

// Conv2DWinogradArena is Conv2DWinograd with the output drawn from an
// arena; the transformed-tile workspaces (U, V, M) come from the
// kernel-internal scratch pool either way.
func Conv2DWinogradArena(a *Arena, x, weight, bias *Tensor, p ConvParams) *Tensor {
	n, _, _, _, oh, ow := p.check(x)
	out := a.GetRaw(n, weight.shape[0], oh, ow)
	Conv2DWinogradInto(out, x, weight, bias, p)
	return out
}

// Conv2DWinogradInto computes the Winograd convolution into a
// caller-supplied dst of shape [N,Cout,OH,OW] (the compiled executor's
// fixed-offset entry point). The transformed-tile workspaces come from
// the kernel-internal scratch pool. dst must not alias x.
func Conv2DWinogradInto(dst, x, weight, bias *Tensor, p ConvParams) {
	if !WinogradApplies(p) {
		panic("tensor.Conv2DWinograd: geometry not supported")
	}
	n, cin, h, w, oh, ow := p.check(x)
	cout := weight.shape[0]
	if len(dst.data) != n*cout*oh*ow {
		panic("tensor.Conv2DWinogradInto: dst size mismatch")
	}

	// Tile grid over the output: 2x2 tiles.
	th := (oh + 1) / 2
	tw := (ow + 1) / 2
	tiles := n * th * tw // P

	// U[ξν][cout][cin]: transformed filters.
	u := getScratch(16 * cout * cin)
	wd := weight.data
	for co := 0; co < cout; co++ {
		for ci := 0; ci < cin; ci++ {
			g := wd[(co*cin+ci)*9 : (co*cin+ci)*9+9]
			// t = G g  (4x3)
			var t [12]float32
			for col := 0; col < 3; col++ {
				g0, g1, g2 := g[col], g[3+col], g[6+col]
				t[col] = g0
				t[3+col] = 0.5 * (g0 + g1 + g2)
				t[6+col] = 0.5 * (g0 - g1 + g2)
				t[9+col] = g2
			}
			// uTile = t Gᵀ (4x4)
			for row := 0; row < 4; row++ {
				r0, r1, r2 := t[3*row], t[3*row+1], t[3*row+2]
				u[(4*row+0)*cout*cin+co*cin+ci] = r0
				u[(4*row+1)*cout*cin+co*cin+ci] = 0.5 * (r0 + r1 + r2)
				u[(4*row+2)*cout*cin+co*cin+ci] = 0.5 * (r0 - r1 + r2)
				u[(4*row+3)*cout*cin+co*cin+ci] = r2
			}
		}
	}

	// V[ξν][cin][P]: transformed input tiles. Each tile reads a 4x4
	// input window starting at (2·ty − padTop, 2·tx − padLeft).
	v := getScratch(16 * cin * tiles)
	parallelRange(cin, 1+parallelThreshold/(16*tiles), winoInputArgs{
		v: v, xd: x.data, p: p,
		n: n, cin: cin, h: h, w: w, th: th, tw: tw, tiles: tiles,
	}, winoInputTransform)

	// M[ξν] = U[ξν] @ V[ξν]: 16 independent [cout,cin]x[cin,P] products.
	m := getScratch(16 * cout * tiles)
	for xi := 0; xi < 16; xi++ {
		gemm(m[xi*cout*tiles:(xi+1)*cout*tiles],
			u[xi*cout*cin:(xi+1)*cout*cin],
			v[xi*cin*tiles:(xi+1)*cin*tiles],
			cout, cin, tiles, 1, 0, false, false)
	}
	putScratch(u)
	putScratch(v)

	// Inverse transform: Y = Aᵀ M A per tile, scattered into the output.
	var bd []float32
	if bias != nil {
		bd = bias.data
	}
	parallelRange(cout, 1+parallelThreshold/(16*tiles), winoOutputArgs{
		m: m, od: dst.data, bd: bd,
		n: n, cout: cout, oh: oh, ow: ow, th: th, tw: tw, tiles: tiles,
	}, winoOutputTransform)
	putScratch(m)
}

type winoInputArgs struct {
	v, xd                       []float32
	p                           ConvParams
	n, cin, h, w, th, tw, tiles int
}

func winoInputTransform(t winoInputArgs, lo, hi int) {
	var d [16]float32
	var bt [16]float32
	h, w, th, tw, tiles := t.h, t.w, t.th, t.tw, t.tiles
	for ci := lo; ci < hi; ci++ {
		for b := 0; b < t.n; b++ {
			src := t.xd[(b*t.cin+ci)*h*w : (b*t.cin+ci+1)*h*w]
			for ty := 0; ty < th; ty++ {
				iy0 := 2*ty - t.p.Pad.Top
				for tx := 0; tx < tw; tx++ {
					ix0 := 2*tx - t.p.Pad.Left
					// Gather the 4x4 window (zeros outside).
					for dy := 0; dy < 4; dy++ {
						iy := iy0 + dy
						if iy < 0 || iy >= h {
							d[4*dy], d[4*dy+1], d[4*dy+2], d[4*dy+3] = 0, 0, 0, 0
							continue
						}
						row := src[iy*w:]
						for dx := 0; dx < 4; dx++ {
							ix := ix0 + dx
							if ix < 0 || ix >= w {
								d[4*dy+dx] = 0
							} else {
								d[4*dy+dx] = row[ix]
							}
						}
					}
					// bt = Bᵀ d (rows), then V = bt B (cols).
					for col := 0; col < 4; col++ {
						d0, d1, d2, d3 := d[col], d[4+col], d[8+col], d[12+col]
						bt[col] = d0 - d2
						bt[4+col] = d1 + d2
						bt[8+col] = d2 - d1
						bt[12+col] = d1 - d3
					}
					tile := (b*th+ty)*tw + tx
					for row := 0; row < 4; row++ {
						r0, r1, r2, r3 := bt[4*row], bt[4*row+1], bt[4*row+2], bt[4*row+3]
						t.v[(4*row+0)*t.cin*tiles+ci*tiles+tile] = r0 - r2
						t.v[(4*row+1)*t.cin*tiles+ci*tiles+tile] = r1 + r2
						t.v[(4*row+2)*t.cin*tiles+ci*tiles+tile] = r2 - r1
						t.v[(4*row+3)*t.cin*tiles+ci*tiles+tile] = r1 - r3
					}
				}
			}
		}
	}
}

type winoOutputArgs struct {
	m, od, bd                      []float32
	n, cout, oh, ow, th, tw, tiles int
}

func winoOutputTransform(t winoOutputArgs, lo, hi int) {
	var mt [16]float32
	var at [8]float32
	oh, ow, th, tw, tiles := t.oh, t.ow, t.th, t.tw, t.tiles
	for co := lo; co < hi; co++ {
		var bv float32
		if t.bd != nil {
			bv = t.bd[co]
		}
		for b := 0; b < t.n; b++ {
			dst := t.od[(b*t.cout+co)*oh*ow : (b*t.cout+co+1)*oh*ow]
			for ty := 0; ty < th; ty++ {
				for tx := 0; tx < tw; tx++ {
					tile := (b*th+ty)*tw + tx
					for xi := 0; xi < 16; xi++ {
						mt[xi] = t.m[xi*t.cout*tiles+co*tiles+tile]
					}
					// at = Aᵀ mt (2x4)
					for col := 0; col < 4; col++ {
						m0, m1, m2, m3 := mt[col], mt[4+col], mt[8+col], mt[12+col]
						at[col] = m0 + m1 + m2
						at[4+col] = m1 - m2 - m3
					}
					// y = at A (2x2)
					y00 := at[0] + at[1] + at[2]
					y01 := at[1] - at[2] - at[3]
					y10 := at[4] + at[5] + at[6]
					y11 := at[5] - at[6] - at[7]
					oy, ox := 2*ty, 2*tx
					dst[oy*ow+ox] = y00 + bv
					if ox+1 < ow {
						dst[oy*ow+ox+1] = y01 + bv
					}
					if oy+1 < oh {
						dst[(oy+1)*ow+ox] = y10 + bv
						if ox+1 < ow {
							dst[(oy+1)*ow+ox+1] = y11 + bv
						}
					}
				}
			}
		}
	}
}

// WinogradWorkspaceBytes returns the transformed-tile workspace the
// algorithm uses (U + V + M), the "trades memory space for faster
// computation" cost of §2.2.1.
func WinogradWorkspaceBytes(x Shape, cout int, p ConvParams) int64 {
	oh, ow := p.OutSize(x.H(), x.W())
	tiles := int64(x.N()) * int64((oh+1)/2) * int64((ow+1)/2)
	cin := int64(x.C())
	return 4 * (16*int64(cout)*cin + 16*cin*tiles + 16*int64(cout)*tiles)
}
