package tensor

import "math"

// MaxPool2D computes a max pooling over x with the given window
// parameters. Padded positions are treated as -inf (they never win),
// matching the convention of cuDNN and the major frameworks. It returns
// the pooled tensor and the flat argmax index (into each input plane) of
// every output element, which the backward pass consumes.
func MaxPool2D(x *Tensor, p ConvParams) (*Tensor, []int32) {
	out, arg := MaxPool2DArena(nil, x, p)
	idx := make([]int32, arg.Elems())
	for i, v := range arg.data {
		idx[i] = int32(v)
	}
	return out, idx
}

// MaxPool2DArena is the arena-backed max pooling. The argmax indices
// are returned as a float32 tensor (exact for plane sizes below 2^24,
// far above any model here) so the executor can stash them without
// boxing and recycle them like any other activation; -1 marks windows
// that were entirely padding.
func MaxPool2DArena(a *Arena, x *Tensor, p ConvParams) (out, arg *Tensor) {
	n, c, _, _, oh, ow := p.check(x)
	out = a.GetRaw(n, c, oh, ow)
	arg = a.GetRaw(n, c, oh, ow)
	MaxPool2DInto(out, arg, x, p)
	return out, arg
}

// MaxPool2DInto computes the max pooling into a caller-supplied out
// (shape [N,C,OH,OW]). arg, when non-nil, receives the argmax indices
// exactly as in MaxPool2DArena; the compiled forward-only path passes
// nil and skips them.
func MaxPool2DInto(out, arg, x *Tensor, p ConvParams) {
	n, c, h, w, oh, ow := p.check(x)
	if len(out.data) != n*c*oh*ow {
		panic("tensor.MaxPool2DInto: out size mismatch")
	}
	var ad []float32
	if arg != nil {
		ad = arg.data
	}
	perPlane := oh * ow * p.KH * p.KW
	parallelRange(n*c, 1+parallelThreshold/perPlane, maxPoolArgs{
		od: out.data, ad: ad, xd: x.data, p: p, h: h, w: w, oh: oh, ow: ow,
	}, maxPoolPlanes)
}

type maxPoolArgs struct {
	od, ad, xd   []float32
	p            ConvParams
	h, w, oh, ow int
}

func maxPoolPlanes(t maxPoolArgs, lo, hi int) {
	p := t.p
	h, w, oh, ow := t.h, t.w, t.oh, t.ow
	for nc := lo; nc < hi; nc++ {
		src := t.xd[nc*h*w : (nc+1)*h*w]
		dst := t.od[nc*oh*ow : (nc+1)*oh*ow]
		var adst []float32
		if t.ad != nil {
			adst = t.ad[nc*oh*ow : (nc+1)*oh*ow]
		}
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := float32(math.Inf(-1))
				bi := -1
				for ky := 0; ky < p.KH; ky++ {
					iy := oy*p.SH - p.Pad.Top + ky
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < p.KW; kx++ {
						ix := ox*p.SW - p.Pad.Left + kx
						if ix < 0 || ix >= w {
							continue
						}
						if v := src[iy*w+ix]; v > best {
							best, bi = v, iy*w+ix
						}
					}
				}
				if bi < 0 {
					// Window entirely in padding: emit 0.
					best = 0
				}
				dst[oy*ow+ox] = best
				if adst != nil {
					adst[oy*ow+ox] = float32(bi)
				}
			}
		}
	}
}

// MaxPool2DBackward scatters gradOut back to the argmax positions
// recorded by MaxPool2D.
func MaxPool2DBackward(gradOut *Tensor, arg []int32, p ConvParams, n, c, h, w int) *Tensor {
	oh, ow := p.OutSize(h, w)
	gradIn := New(n, c, h, w)
	gd, gid := gradOut.data, gradIn.data
	parallelFor(n*c, func(lo, hi int) {
		for nc := lo; nc < hi; nc++ {
			src := gd[nc*oh*ow : (nc+1)*oh*ow]
			asrc := arg[nc*oh*ow : (nc+1)*oh*ow]
			dst := gid[nc*h*w : (nc+1)*h*w]
			for i, g := range src {
				if ai := asrc[i]; ai >= 0 {
					dst[ai] += g
				}
			}
		}
	})
	return gradIn
}

// MaxPool2DBackwardArena scatters gradOut back to the argmax positions
// recorded by MaxPool2DArena.
func MaxPool2DBackwardArena(a *Arena, gradOut, arg *Tensor, p ConvParams, n, c, h, w int) *Tensor {
	oh, ow := p.OutSize(h, w)
	gradIn := a.Get(n, c, h, w) // zeroed: scatter target
	parallelRange(n*c, 1+parallelThreshold/(oh*ow), maxPoolBwdArgs{
		gd: gradOut.data, ad: arg.data, gid: gradIn.data, hw: h * w, ohw: oh * ow,
	}, maxPoolBwdPlanes)
	return gradIn
}

type maxPoolBwdArgs struct {
	gd, ad, gid []float32
	hw, ohw     int
}

func maxPoolBwdPlanes(t maxPoolBwdArgs, lo, hi int) {
	for nc := lo; nc < hi; nc++ {
		src := t.gd[nc*t.ohw : (nc+1)*t.ohw]
		asrc := t.ad[nc*t.ohw : (nc+1)*t.ohw]
		dst := t.gid[nc*t.hw : (nc+1)*t.hw]
		for i, g := range src {
			if ai := int(asrc[i]); ai >= 0 {
				dst[ai] += g
			}
		}
	}
}

// AvgPool2D computes average pooling. Padded positions count as zeros
// and the divisor is the full window size (count_include_pad), keeping
// the operation linear, which simplifies its adjoint.
func AvgPool2D(x *Tensor, p ConvParams) *Tensor { return AvgPool2DArena(nil, x, p) }

// AvgPool2DArena is AvgPool2D with the output drawn from an arena.
func AvgPool2DArena(a *Arena, x *Tensor, p ConvParams) *Tensor {
	n, c, _, _, oh, ow := p.check(x)
	out := a.GetRaw(n, c, oh, ow)
	AvgPool2DInto(out, x, p)
	return out
}

// AvgPool2DInto computes the average pooling into a caller-supplied
// out of shape [N,C,OH,OW] (the compiled executor's fixed-offset entry
// point).
func AvgPool2DInto(out, x *Tensor, p ConvParams) {
	n, c, h, w, oh, ow := p.check(x)
	if len(out.data) != n*c*oh*ow {
		panic("tensor.AvgPool2DInto: out size mismatch")
	}
	perPlane := oh * ow * p.KH * p.KW
	parallelRange(n*c, 1+parallelThreshold/perPlane, avgPoolArgs{
		od: out.data, xd: x.data, p: p, h: h, w: w, oh: oh, ow: ow,
	}, avgPoolPlanes)
}

type avgPoolArgs struct {
	od, xd       []float32
	p            ConvParams
	h, w, oh, ow int
}

func avgPoolPlanes(t avgPoolArgs, lo, hi int) {
	p := t.p
	h, w, oh, ow := t.h, t.w, t.oh, t.ow
	inv := 1 / float32(p.KH*p.KW)
	for nc := lo; nc < hi; nc++ {
		src := t.xd[nc*h*w : (nc+1)*h*w]
		dst := t.od[nc*oh*ow : (nc+1)*oh*ow]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var sum float32
				for ky := 0; ky < p.KH; ky++ {
					iy := oy*p.SH - p.Pad.Top + ky
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < p.KW; kx++ {
						ix := ox*p.SW - p.Pad.Left + kx
						if ix < 0 || ix >= w {
							continue
						}
						sum += src[iy*w+ix]
					}
				}
				dst[oy*ow+ox] = sum * inv
			}
		}
	}
}

// AvgPool2DBackward computes the adjoint of AvgPool2D.
func AvgPool2DBackward(gradOut *Tensor, p ConvParams, n, c, h, w int) *Tensor {
	return AvgPool2DBackwardArena(nil, gradOut, p, n, c, h, w)
}

// AvgPool2DBackwardArena is AvgPool2DBackward with the output drawn
// from an arena.
func AvgPool2DBackwardArena(a *Arena, gradOut *Tensor, p ConvParams, n, c, h, w int) *Tensor {
	oh, ow := p.OutSize(h, w)
	gradIn := a.Get(n, c, h, w) // zeroed: scatter target
	perPlane := oh * ow * p.KH * p.KW
	parallelRange(n*c, 1+parallelThreshold/perPlane, avgPoolBwdArgs{
		gd: gradOut.data, gid: gradIn.data, p: p, h: h, w: w, oh: oh, ow: ow,
	}, avgPoolBwdPlanes)
	return gradIn
}

type avgPoolBwdArgs struct {
	gd, gid      []float32
	p            ConvParams
	h, w, oh, ow int
}

func avgPoolBwdPlanes(t avgPoolBwdArgs, lo, hi int) {
	p := t.p
	h, w, oh, ow := t.h, t.w, t.oh, t.ow
	inv := 1 / float32(p.KH*p.KW)
	for nc := lo; nc < hi; nc++ {
		src := t.gd[nc*oh*ow : (nc+1)*oh*ow]
		dst := t.gid[nc*h*w : (nc+1)*h*w]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				g := src[oy*ow+ox] * inv
				for ky := 0; ky < p.KH; ky++ {
					iy := oy*p.SH - p.Pad.Top + ky
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < p.KW; kx++ {
						ix := ox*p.SW - p.Pad.Left + kx
						if ix < 0 || ix >= w {
							continue
						}
						dst[iy*w+ix] += g
					}
				}
			}
		}
	}
}
