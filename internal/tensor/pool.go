package tensor

import "math"

// MaxPool2D computes a max pooling over x with the given window
// parameters. Padded positions are treated as -inf (they never win),
// matching the convention of cuDNN and the major frameworks. It returns
// the pooled tensor and the flat argmax index (into each input plane) of
// every output element, which the backward pass consumes.
func MaxPool2D(x *Tensor, p ConvParams) (*Tensor, []int32) {
	n, c, h, w, oh, ow := p.check(x)
	out := New(n, c, oh, ow)
	arg := make([]int32, n*c*oh*ow)
	od, xd := out.data, x.data
	parallelFor(n*c, func(lo, hi int) {
		for nc := lo; nc < hi; nc++ {
			src := xd[nc*h*w : (nc+1)*h*w]
			dst := od[nc*oh*ow : (nc+1)*oh*ow]
			adst := arg[nc*oh*ow : (nc+1)*oh*ow]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := float32(math.Inf(-1))
					bi := int32(-1)
					for ky := 0; ky < p.KH; ky++ {
						iy := oy*p.SH - p.Pad.Top + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < p.KW; kx++ {
							ix := ox*p.SW - p.Pad.Left + kx
							if ix < 0 || ix >= w {
								continue
							}
							if v := src[iy*w+ix]; v > best {
								best, bi = v, int32(iy*w+ix)
							}
						}
					}
					if bi < 0 {
						// Window entirely in padding: emit 0.
						best = 0
					}
					dst[oy*ow+ox] = best
					adst[oy*ow+ox] = bi
				}
			}
		}
	})
	return out, arg
}

// MaxPool2DBackward scatters gradOut back to the argmax positions
// recorded by MaxPool2D.
func MaxPool2DBackward(gradOut *Tensor, arg []int32, p ConvParams, n, c, h, w int) *Tensor {
	oh, ow := p.OutSize(h, w)
	gradIn := New(n, c, h, w)
	gd, gid := gradOut.data, gradIn.data
	parallelFor(n*c, func(lo, hi int) {
		for nc := lo; nc < hi; nc++ {
			src := gd[nc*oh*ow : (nc+1)*oh*ow]
			asrc := arg[nc*oh*ow : (nc+1)*oh*ow]
			dst := gid[nc*h*w : (nc+1)*h*w]
			for i, g := range src {
				if ai := asrc[i]; ai >= 0 {
					dst[ai] += g
				}
			}
		}
	})
	return gradIn
}

// AvgPool2D computes average pooling. Padded positions count as zeros
// and the divisor is the full window size (count_include_pad), keeping
// the operation linear, which simplifies its adjoint.
func AvgPool2D(x *Tensor, p ConvParams) *Tensor {
	n, c, h, w, oh, ow := p.check(x)
	out := New(n, c, oh, ow)
	inv := 1 / float32(p.KH*p.KW)
	od, xd := out.data, x.data
	parallelFor(n*c, func(lo, hi int) {
		for nc := lo; nc < hi; nc++ {
			src := xd[nc*h*w : (nc+1)*h*w]
			dst := od[nc*oh*ow : (nc+1)*oh*ow]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var sum float32
					for ky := 0; ky < p.KH; ky++ {
						iy := oy*p.SH - p.Pad.Top + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < p.KW; kx++ {
							ix := ox*p.SW - p.Pad.Left + kx
							if ix < 0 || ix >= w {
								continue
							}
							sum += src[iy*w+ix]
						}
					}
					dst[oy*ow+ox] = sum * inv
				}
			}
		}
	})
	return out
}

// AvgPool2DBackward computes the adjoint of AvgPool2D.
func AvgPool2DBackward(gradOut *Tensor, p ConvParams, n, c, h, w int) *Tensor {
	oh, ow := p.OutSize(h, w)
	gradIn := New(n, c, h, w)
	inv := 1 / float32(p.KH*p.KW)
	gd, gid := gradOut.data, gradIn.data
	parallelFor(n*c, func(lo, hi int) {
		for nc := lo; nc < hi; nc++ {
			src := gd[nc*oh*ow : (nc+1)*oh*ow]
			dst := gid[nc*h*w : (nc+1)*h*w]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := src[oy*ow+ox] * inv
					for ky := 0; ky < p.KH; ky++ {
						iy := oy*p.SH - p.Pad.Top + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < p.KW; kx++ {
							ix := ox*p.SW - p.Pad.Left + kx
							if ix < 0 || ix >= w {
								continue
							}
							dst[iy*w+ix] += g
						}
					}
				}
			}
		}
	})
	return gradIn
}
