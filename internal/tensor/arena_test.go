package tensor

import (
	"math/rand"
	"testing"

	"splitcnn/internal/trace"
)

// TestArenaReuse checks that a returned tensor is handed back for the
// next same-class request, and that the stats see it as a hit.
func TestArenaReuse(t *testing.T) {
	a := NewArena()
	t1 := a.Get(4, 8)
	if got := a.Stats(); got.Gets != 1 || got.Hits != 0 {
		t.Fatalf("after first get: %+v", got)
	}
	a.Put(t1)
	t2 := a.Get(4, 8)
	if t2 != t1 {
		t.Fatalf("expected pooled tensor back, got a fresh one")
	}
	if got := a.Stats(); got.Gets != 2 || got.Hits != 1 {
		t.Fatalf("after reuse: %+v", got)
	}
	if hr := a.Stats().HitRate(); hr != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", hr)
	}
}

// TestArenaCrossShapeReuse: buckets are element-count classes, so a
// [4,8] buffer serves a later [32] or [2,4,2,2] request.
func TestArenaCrossShapeReuse(t *testing.T) {
	a := NewArena()
	t1 := a.Get(4, 8) // 32 elems
	a.Put(t1)
	t2 := a.Get(2, 4, 2, 2) // also 32 elems, same class
	if t2 != t1 {
		t.Fatalf("expected same-class buffer reuse across shapes")
	}
	if !t2.Shape().Equal(Shape{2, 4, 2, 2}) {
		t.Fatalf("reused tensor has shape %v", t2.Shape())
	}
}

// TestArenaGetZeroes: Get must return zeroed storage even when the
// buffer is recycled; GetRaw makes no such promise.
func TestArenaGetZeroes(t *testing.T) {
	a := NewArena()
	t1 := a.Get(16)
	t1.Fill(3)
	a.Put(t1)
	t2 := a.Get(16)
	for i, v := range t2.Data() {
		if v != 0 {
			t.Fatalf("recycled Get tensor dirty at %d: %v", i, v)
		}
	}
}

// TestArenaDoublePut: a second Put of the same tensor is a no-op (the
// ownership tag is cleared on the first), so pool accounting and the
// free lists stay consistent.
func TestArenaDoublePut(t *testing.T) {
	a := NewArena()
	t1 := a.Get(8)
	a.Put(t1)
	a.Put(t1) // must not double-insert
	t2 := a.Get(8)
	t3 := a.Get(8)
	if t2 != t1 && t3 == t1 {
		t.Fatalf("tensor vended twice after double Put")
	}
	if t2 == t3 {
		t.Fatalf("same tensor vended to two live requests")
	}
}

// TestArenaForeignPut: tensors the arena did not vend (plain New,
// clones, another arena's buffers) are silently ignored.
func TestArenaForeignPut(t *testing.T) {
	a, b := NewArena(), NewArena()
	plain := New(8)
	a.Put(plain)
	other := b.Get(8)
	a.Put(other) // owned by b, not a
	clone := a.Get(8).Clone()
	a.Put(clone) // clones never carry ownership
	if st := a.Stats(); st.PooledBytes != pow2ceilBytes(8) {
		t.Fatalf("foreign puts changed the pool: %+v", st)
	}
	b.Put(other) // still owned by b
	if st := b.Stats(); st.InUseBytes != 0 {
		t.Fatalf("b did not take its own tensor back: %+v", st)
	}
}

func pow2ceilBytes(elems int) int64 { return int64(pow2ceil(elems)) * 4 }

// TestArenaStatsAccounting tracks in-use, high-water and pooled bytes
// through a get/put cycle.
func TestArenaStatsAccounting(t *testing.T) {
	a := NewArena()
	t1 := a.Get(100) // class 128
	t2 := a.Get(10)  // class 64 (minimum)
	want := pow2ceilBytes(100) + pow2ceilBytes(10)
	st := a.Stats()
	if st.InUseBytes != want || st.HighWaterBytes != want || st.PooledBytes != want {
		t.Fatalf("after gets: %+v, want all %d", st, want)
	}
	a.Put(t1)
	a.Put(t2)
	st = a.Stats()
	if st.InUseBytes != 0 || st.HighWaterBytes != want || st.PooledBytes != want {
		t.Fatalf("after puts: %+v", st)
	}
}

// TestArenaNil: a nil arena degrades to plain allocation so kernels can
// be written against the arena API unconditionally.
func TestArenaNil(t *testing.T) {
	var a *Arena
	t1 := a.Get(4, 4)
	if !t1.Shape().Equal(Shape{4, 4}) {
		t.Fatalf("nil-arena Get shape %v", t1.Shape())
	}
	for _, v := range t1.Data() {
		if v != 0 {
			t.Fatalf("nil-arena Get not zeroed")
		}
	}
	a.Put(t1) // no-op, must not panic
	if st := a.Stats(); st != (ArenaStats{}) {
		t.Fatalf("nil-arena stats %+v", st)
	}
}

// TestArenaKernelsSteadyState: running the arena-backed convolution
// twice must not grow the pool the second time — every buffer the step
// takes is returned and reused.
func TestArenaKernelsSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewArena()
	x := randTensor(rng, 2, 3, 9, 9)
	w := randTensor(rng, 4, 3, 3, 3)
	p := ConvParams{KH: 3, KW: 3, SH: 2, SW: 2, Pad: Symmetric(1)}
	step := func() {
		out := Conv2DArena(a, x, w, nil, p)
		gw := a.Get(w.Shape()...)
		gx := Conv2DBackwardArena(a, x, w, out, p, gw, nil, true)
		a.Put(out)
		a.Put(gw)
		a.Put(gx)
	}
	step()
	pooled := a.Stats().PooledBytes
	for i := 0; i < 3; i++ {
		step()
	}
	st := a.Stats()
	if st.PooledBytes != pooled {
		t.Fatalf("pool grew across steady-state steps: %d -> %d", pooled, st.PooledBytes)
	}
	if st.InUseBytes != 0 {
		t.Fatalf("leaked %d in-use bytes", st.InUseBytes)
	}
}

// TestArenaStatsRecord pins the gauge family ArenaStats.Record
// publishes — including arena.hit_rate, which the memory observability
// plane's dashboards and /metricsz scrapers depend on.
func TestArenaStatsRecord(t *testing.T) {
	a := NewArena()
	t1 := a.Get(100)
	a.Put(t1)
	t2 := a.Get(100) // pool hit
	_ = t2
	st := a.Stats()
	if st.Gets != 2 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 2 gets / 1 hit", st)
	}
	met := trace.NewMetrics()
	st.Record("arena", met)
	if got := met.Gauge("arena.hit_rate").Value(); got != 0.5 {
		t.Fatalf("arena.hit_rate = %g, want 0.5", got)
	}
	if got := met.Gauge("arena.in_use_bytes").Value(); int64(got) != st.InUseBytes {
		t.Fatalf("arena.in_use_bytes = %g, want %d", got, st.InUseBytes)
	}
	if got := met.Gauge("arena.high_water_bytes").Value(); int64(got) != st.HighWaterBytes {
		t.Fatalf("arena.high_water_bytes = %g, want %d", got, st.HighWaterBytes)
	}
	if got := met.Gauge("arena.pooled_bytes").Value(); int64(got) != st.PooledBytes {
		t.Fatalf("arena.pooled_bytes = %g, want %d", got, st.PooledBytes)
	}
	// HitRate must be well-defined on a fresh arena (no gets yet).
	if hr := (ArenaStats{}).HitRate(); hr != 0 {
		t.Fatalf("empty HitRate = %g, want 0", hr)
	}
}
