package tensor

import (
	"runtime"
	"sync"
)

// parallelThreshold is the minimum amount of work (in "items") below
// which kernels run serially; goroutine fan-out costs more than it saves
// on tiny tensors.
const parallelThreshold = 1 << 12

// parallelFor splits [0, n) into contiguous chunks and runs body on each
// chunk concurrently. body receives [lo, hi) bounds. It is used by the
// heavier kernels (matmul, im2col, pooling) to use all CPU cores.
func parallelFor(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if n < parallelThreshold || workers == 1 {
		body(0, n)
		return
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
