package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelThreshold is the minimum amount of work (in "items") below
// which kernels run serially; fan-out costs more than it saves on tiny
// tensors.
const parallelThreshold = 1 << 12

// The kernel worker pool: a fixed set of persistent goroutines that
// execute chunks of parallel kernels. Unlike the previous
// spawn-per-call scheme, no goroutines are created on the hot path —
// a parallel section enqueues chunk descriptors on one shared channel
// and the workers (plus the calling goroutine) drain it. A caller
// waiting for its chunks steals other queued chunks, so nested or
// concurrent parallel sections (e.g. the data-parallel trainer's
// worker replicas all hitting GEMM at once) cannot deadlock the pool.
type workerPool struct {
	tasks   chan poolTask
	spawned atomic.Int64
}

type poolTask struct {
	fn      func(lo, hi int)
	lo, hi  int
	pending *atomic.Int64
}

var kernelPool = &workerPool{tasks: make(chan poolTask, 512)}

// parWorkers is the number of goroutines (including the caller) a
// parallel section may occupy. Set once at init from GOMAXPROCS;
// adjustable via SetParallelism.
var parWorkers atomic.Int64

func init() { SetParallelism(runtime.GOMAXPROCS(0)) }

func (p *workerPool) worker() {
	for t := range p.tasks {
		t.fn(t.lo, t.hi)
		t.pending.Add(-1)
	}
}

// SetParallelism sets the number of goroutines (including the calling
// one) tensor kernels may use and returns the previous setting. It
// defaults to GOMAXPROCS. Values below 1 are clamped to 1 (fully
// serial, allocation-free kernels). Worker goroutines are spawned
// lazily up to the high-water setting and then persist for the process
// lifetime; they are idle (blocked on a channel) when no kernel runs.
func SetParallelism(n int) int {
	if n < 1 {
		n = 1
	}
	prev := int(parWorkers.Swap(int64(n)))
	for kernelPool.spawned.Load() < int64(n-1) {
		kernelPool.spawned.Add(1)
		go kernelPool.worker()
	}
	return prev
}

// Parallelism returns the current kernel parallelism setting.
func Parallelism() int { return int(parWorkers.Load()) }

// parallelRange splits [0, n) into contiguous chunks and runs body on
// each chunk via the worker pool. The arg value is threaded through to
// body so that hot kernels can use top-level functions plus a value
// argument instead of closures: on the serial path — taken when n <
// minPar or parallelism is 1 — this performs zero heap allocations,
// which is what lets a warmed-up training step run allocation-free.
// minPar is the smallest n worth fanning out (callers scale it by
// per-item work).
func parallelRange[A any](n, minPar int, arg A, body func(A, int, int)) {
	if n <= 0 {
		return
	}
	w := int(parWorkers.Load())
	if w <= 1 || n < minPar || n == 1 {
		// The fan-out lives in a separate function: there the arg copy
		// is captured by a channel-escaping closure and must live on the
		// heap, and that escape must not tax this serial path (escaping
		// parameters are heap-moved at function entry, branch or not).
		body(arg, 0, n)
		return
	}
	parallelRangePar(n, w, arg, body)
}

func parallelRangePar[A any](n, w int, arg A, body func(A, int, int)) {
	if w > n {
		w = n
	}
	chunk := (n + w - 1) / w
	var pending atomic.Int64
	fn := func(lo, hi int) { body(arg, lo, hi) }
	lo := 0
	for ; lo+chunk < n; lo += chunk {
		pending.Add(1)
		select {
		case kernelPool.tasks <- poolTask{fn: fn, lo: lo, hi: lo + chunk, pending: &pending}:
		default:
			// Queue saturated (deeply nested sections): run inline.
			fn(lo, lo+chunk)
			pending.Add(-1)
		}
	}
	fn(lo, n) // the caller computes the last chunk itself
	for pending.Load() > 0 {
		// Steal queued work (ours or anyone's) while waiting; this is
		// what makes nested parallel sections deadlock-free.
		select {
		case t := <-kernelPool.tasks:
			t.fn(t.lo, t.hi)
			t.pending.Add(-1)
		default:
			runtime.Gosched()
		}
	}
}

// parallelFor preserves the closure-based API for cold kernels. It is
// body-compatible with the old spawn-per-call helper but runs on the
// persistent pool.
func parallelFor(n int, body func(lo, hi int)) {
	parallelRange(n, parallelThreshold, body, func(b func(int, int), lo, hi int) { b(lo, hi) })
}

// scratchPool is a never-shrinking free list of float32 scratch slices
// bucketed by power-of-two capacity, used for GEMM packing panels and
// similar kernel-internal workspace. Unlike sync.Pool it is never
// drained by the garbage collector, so a warmed-up training loop hits
// it every time and performs no steady-state allocations. Its footprint
// is bounded by the largest working set of concurrently running
// kernels, a few MB in practice.
var scratchPool = struct {
	mu   sync.Mutex
	free map[int][][]float32
}{free: make(map[int][][]float32)}

func getScratch(n int) []float32 {
	class := pow2ceil(n)
	scratchPool.mu.Lock()
	st := scratchPool.free[class]
	var s []float32
	if len(st) > 0 {
		s = st[len(st)-1]
		scratchPool.free[class] = st[:len(st)-1]
	}
	scratchPool.mu.Unlock()
	if s == nil {
		s = make([]float32, class)
	}
	return s[:n]
}

func putScratch(s []float32) {
	if cap(s) == 0 {
		return
	}
	class := cap(s)
	s = s[:class]
	scratchPool.mu.Lock()
	scratchPool.free[class] = append(scratchPool.free[class], s)
	scratchPool.mu.Unlock()
}

// pow2ceil returns the smallest power of two >= n (and >= 64, so tiny
// buffers share a bucket).
func pow2ceil(n int) int {
	c := 64
	for c < n {
		c <<= 1
	}
	return c
}
