package tensor

import "fmt"

// MatMul computes dst = a @ b for rank-2 tensors: a is [m, k], b is
// [k, n], dst is [m, n]. All three variants route through the blocked
// packed Gemm engine (gemm.go).
func MatMul(dst, a, b *Tensor) {
	m, k, n := checkMatMul("MatMul", dst, a, b, false, false)
	gemm(dst.data, a.data, b.data, m, k, n, 1, 0, false, false)
}

// MatMulAT computes dst = aᵀ @ b: a is [k, m], b is [k, n], dst is [m, n].
func MatMulAT(dst, a, b *Tensor) {
	m, k, n := checkMatMul("MatMulAT", dst, a, b, true, false)
	gemm(dst.data, a.data, b.data, m, k, n, 1, 0, true, false)
}

// MatMulBT computes dst = a @ bᵀ: a is [m, k], b is [n, k], dst is [m, n].
func MatMulBT(dst, a, b *Tensor) {
	m, k, n := checkMatMul("MatMulBT", dst, a, b, false, true)
	gemm(dst.data, a.data, b.data, m, k, n, 1, 0, false, true)
}

func checkMatMul(op string, dst, a, b *Tensor, transA, transB bool) (m, k, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 || len(dst.shape) != 2 {
		panic(fmt.Sprintf("tensor.%s: want rank-2 tensors", op))
	}
	am, ak := a.shape[0], a.shape[1]
	if transA {
		am, ak = ak, am
	}
	bk, bn := b.shape[0], b.shape[1]
	if transB {
		bk, bn = bn, bk
	}
	if ak != bk || dst.shape[0] != am || dst.shape[1] != bn {
		panic(fmt.Sprintf("tensor.%s: incompatible shapes a=%v b=%v dst=%v", op, a.shape, b.shape, dst.shape))
	}
	return am, ak, bn
}
