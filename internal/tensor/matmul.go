package tensor

import "fmt"

// MatMul computes dst = a @ b for rank-2 tensors: a is [m, k], b is
// [k, n], dst is [m, n]. Rows of the output are computed in parallel.
func MatMul(dst, a, b *Tensor) {
	m, k, n := checkMatMul("MatMul", dst, a, b, false, false)
	ad, bd, dd := a.data, b.data, dst.data
	parallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := dd[i*n : (i+1)*n]
			clear(row)
			arow := ad[i*k : (i+1)*k]
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for j := range row {
					row[j] += av * brow[j]
				}
			}
		}
	})
}

// MatMulAT computes dst = aᵀ @ b: a is [k, m], b is [k, n], dst is [m, n].
func MatMulAT(dst, a, b *Tensor) {
	m, k, n := checkMatMul("MatMulAT", dst, a, b, true, false)
	ad, bd, dd := a.data, b.data, dst.data
	parallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := dd[i*n : (i+1)*n]
			clear(row)
			for p := 0; p < k; p++ {
				av := ad[p*m+i]
				if av == 0 {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for j := range row {
					row[j] += av * brow[j]
				}
			}
		}
	})
}

// MatMulBT computes dst = a @ bᵀ: a is [m, k], b is [n, k], dst is [m, n].
func MatMulBT(dst, a, b *Tensor) {
	m, k, n := checkMatMul("MatMulBT", dst, a, b, false, true)
	ad, bd, dd := a.data, b.data, dst.data
	parallelFor(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := ad[i*k : (i+1)*k]
			row := dd[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := bd[j*k : (j+1)*k]
				var acc float32
				for p := range arow {
					acc += arow[p] * brow[p]
				}
				row[j] = acc
			}
		}
	})
}

func checkMatMul(op string, dst, a, b *Tensor, transA, transB bool) (m, k, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 || len(dst.shape) != 2 {
		panic(fmt.Sprintf("tensor.%s: want rank-2 tensors", op))
	}
	am, ak := a.shape[0], a.shape[1]
	if transA {
		am, ak = ak, am
	}
	bk, bn := b.shape[0], b.shape[1]
	if transB {
		bk, bn = bn, bk
	}
	if ak != bk || dst.shape[0] != am || dst.shape[1] != bn {
		panic(fmt.Sprintf("tensor.%s: incompatible shapes a=%v b=%v dst=%v", op, a.shape, b.shape, dst.shape))
	}
	return am, ak, bn
}
