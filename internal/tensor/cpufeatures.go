package tensor

import "runtime"

// CPUFeatures identifies the kernel variant selected at runtime. It is
// part of the autotune cache key: a conv plan micro-benchmarked with
// the AVX2+FMA GEMM micro-kernel must not be replayed on a machine
// (or build) running the portable kernels, and vice versa.
func CPUFeatures() string {
	if useAsmKernel {
		return runtime.GOARCH + "+avx2fma"
	}
	return runtime.GOARCH + "+portable"
}
