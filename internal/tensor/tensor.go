// Package tensor implements dense float32 tensors in row-major (NCHW)
// layout together with the numerical kernels required to train
// convolutional neural networks on the CPU: elementwise arithmetic,
// matrix multiplication, im2col-based convolution, pooling, padding,
// and the spatial split/concat primitives Split-CNN is built on.
//
// Tensors are deliberately simple: a shape and a flat backing slice.
// Views are not supported; every operation either writes into a caller
// supplied destination of the right shape or allocates a fresh tensor.
// That keeps aliasing reasoning trivial, which matters because the
// memory-planning layers of this repository (internal/hmms) do their own
// storage aliasing on top.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Tensor is a dense, row-major float32 tensor.
type Tensor struct {
	shape Shape
	data  []float32
	// arena, when non-nil, marks this tensor as currently vended by that
	// Arena; Put checks and clears it, so double-Put and cross-arena Put
	// are harmless no-ops. Aliases made with Reshape and copies made with
	// Clone never carry ownership.
	arena *Arena
}

// New returns a zero-filled tensor with the given shape.
func New(dims ...int) *Tensor {
	s := Shape(append([]int(nil), dims...))
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("tensor.New: %v", err))
	}
	return &Tensor{shape: s, data: make([]float32, s.Elems())}
}

// FromSlice returns a tensor wrapping a copy of data, which must have
// exactly shape.Elems() elements.
func FromSlice(data []float32, dims ...int) *Tensor {
	t := New(dims...)
	if len(data) != len(t.data) {
		panic(fmt.Sprintf("tensor.FromSlice: %d elements for shape %v (want %d)", len(data), t.shape, len(t.data)))
	}
	copy(t.data, data)
	return t
}

// Wrap returns a tensor viewing data in place — no copy, no arena
// ownership. data must have exactly the shape's element count. It is
// how the compiled executor maps planned slab offsets onto tensors:
// each node's fixed window of the slab becomes a long-lived view that
// kernels write into. Mutations through the view are visible to every
// other view of the same storage (that aliasing is the point), so Wrap
// is reserved for callers that plan lifetimes themselves.
func Wrap(data []float32, dims ...int) *Tensor {
	s := Shape(append([]int(nil), dims...))
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("tensor.Wrap: %v", err))
	}
	if s.Elems() != len(data) {
		panic(fmt.Sprintf("tensor.Wrap: %d elements for shape %v (want %d)", len(data), s, s.Elems()))
	}
	return &Tensor{shape: s, data: data}
}

// Shape returns the tensor's shape. The returned slice must not be mutated.
func (t *Tensor) Shape() Shape { return t.shape }

// Data returns the backing slice. Mutations are visible to the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Elems returns the number of elements.
func (t *Tensor) Elems() int { return len(t.data) }

// Bytes returns the storage footprint in bytes (4 bytes per element).
func (t *Tensor) Bytes() int64 { return int64(len(t.data)) * 4 }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{shape: append(Shape(nil), t.shape...), data: make([]float32, len(t.data))}
	copy(c.data, t.data)
	return c
}

// Reshape returns a tensor sharing t's data with a new shape of equal size.
func (t *Tensor) Reshape(dims ...int) *Tensor {
	s := Shape(append([]int(nil), dims...))
	if s.Elems() != len(t.data) {
		panic(fmt.Sprintf("tensor.Reshape: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), s, s.Elems()))
	}
	return &Tensor{shape: s, data: t.data}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.shape.Offset(idx...)] }

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.shape.Offset(idx...)] = v }

// Zero overwrites every element with 0.
func (t *Tensor) Zero() {
	clear(t.data)
}

// Fill overwrites every element with v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// CopyFrom copies src's data into t. Shapes must have equal element counts.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(src.data) != len(t.data) {
		panic(fmt.Sprintf("tensor.CopyFrom: size mismatch %v vs %v", t.shape, src.shape))
	}
	copy(t.data, src.data)
}

// RandNormal fills t with N(0, stddev^2) samples from rng.
func (t *Tensor) RandNormal(rng *rand.Rand, stddev float64) {
	for i := range t.data {
		t.data[i] = float32(rng.NormFloat64() * stddev)
	}
}

// RandUniform fills t with Uniform[lo, hi) samples from rng.
func (t *Tensor) RandUniform(rng *rand.Rand, lo, hi float64) {
	for i := range t.data {
		t.data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
}

// String renders a compact description (shape plus a few leading values).
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	n := min(len(t.data), 8)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if len(t.data) > n {
		b.WriteString(", ...")
	}
	b.WriteString("]")
	return b.String()
}

// MaxAbsDiff returns the largest absolute elementwise difference between
// a and b, which must have the same number of elements. It is the
// workhorse of the numerical equivalence tests in this repository.
func MaxAbsDiff(a, b *Tensor) float64 {
	if len(a.data) != len(b.data) {
		panic(fmt.Sprintf("tensor.MaxAbsDiff: size mismatch %v vs %v", a.shape, b.shape))
	}
	var m float64
	for i := range a.data {
		d := math.Abs(float64(a.data[i]) - float64(b.data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// Sum returns the sum of all elements in float64 precision.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// ArgmaxRow returns, for a [rows, cols] tensor, the argmax of each row.
func ArgmaxRow(t *Tensor) []int {
	if len(t.shape) != 2 {
		panic("tensor.ArgmaxRow: want rank-2 tensor")
	}
	rows, cols := t.shape[0], t.shape[1]
	out := make([]int, rows)
	for r := 0; r < rows; r++ {
		best, bi := float32(math.Inf(-1)), 0
		row := t.data[r*cols : (r+1)*cols]
		for c, v := range row {
			if v > best {
				best, bi = v, c
			}
		}
		out[r] = bi
	}
	return out
}
