//go:build amd64

package tensor

// useAsmKernel gates the AVX2+FMA micro-kernel on runtime CPU support.
// The binary stays runnable on pre-Haswell hardware (and under
// emulators without AVX) by falling back to the portable kernel.
var useAsmKernel = detectFMA()

// gemmKernelFMA is the 6x16 AVX2+FMA micro-kernel
// (gemm_amd64.s): c[0:6][0:16] += a-panel @ b-panel over kc steps,
// c strided by ldc floats. Pointers must reference at least the packed
// panel extents (a: kc*6, b: kc*16, c: 5*ldc+16 floats).
//
//go:noescape
func gemmKernelFMA(kc int, a, b, c *float32, ldc int)

// cpuidex executes CPUID with the given leaf/subleaf.
func cpuidex(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (OS-enabled AVX state).
func xgetbv0() (eax, edx uint32)

// detectFMA reports whether the CPU and OS support AVX2 and FMA:
// CPUID.1:ECX must advertise OSXSAVE+AVX+FMA, XCR0 must have the
// XMM and YMM state bits enabled by the OS, and CPUID.7.0:EBX must
// advertise AVX2.
func detectFMA() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	_, _, ecx1, _ := cpuidex(1, 0)
	if ecx1&(fma|osxsave|avx) != fma|osxsave|avx {
		return false
	}
	if xlo, _ := xgetbv0(); xlo&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}
