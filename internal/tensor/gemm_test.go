package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// refGemm is the plain reference triple loop the blocked engine is
// checked against, accumulating in float64 to bound its own error.
func refGemm(dst, a, b *Tensor, alpha, beta float32, transA, transB bool) {
	m, k, n := checkMatMul("refGemm", dst, a, b, transA, transB)
	at := func(i, p int) float32 {
		if transA {
			return a.data[p*m+i]
		}
		return a.data[i*k+p]
	}
	bt := func(p, j int) float32 {
		if transB {
			return b.data[j*k+p]
		}
		return b.data[p*n+j]
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for p := 0; p < k; p++ {
				acc += float64(at(i, p)) * float64(bt(p, j))
			}
			dst.data[i*n+j] = alpha*float32(acc) + beta*dst.data[i*n+j]
		}
	}
}

func randTensor(rng *rand.Rand, dims ...int) *Tensor {
	t := New(dims...)
	t.RandUniform(rng, -1, 1)
	return t
}

// relTol compares against a k-scaled absolute-and-relative tolerance:
// float32 dot products of length k accumulate O(k*eps) relative error.
func relTol(k int) float64 { return 1e-4 * math.Sqrt(float64(k)+1) }

// TestGemmExhaustiveSmall sweeps every (m, k, n) in a small cube —
// covering all micro-tile edge cases around MR=6 and NR=16 — across
// the four transpose variants.
func TestGemmExhaustiveSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sizes := []int{1, 2, 3, 5, 6, 7, 12, 13, 15, 16, 17, 31, 33}
	for _, m := range sizes {
		for _, k := range sizes {
			for _, n := range sizes {
				for variant := 0; variant < 4; variant++ {
					transA, transB := variant&1 != 0, variant&2 != 0
					ash := []int{m, k}
					if transA {
						ash = []int{k, m}
					}
					bsh := []int{k, n}
					if transB {
						bsh = []int{n, k}
					}
					a := randTensor(rng, ash...)
					b := randTensor(rng, bsh...)
					got, want := New(m, n), New(m, n)
					Gemm(got, a, b, 1, 0, transA, transB)
					refGemm(want, a, b, 1, 0, transA, transB)
					if d := MaxAbsDiff(got, want); d > relTol(k) {
						t.Fatalf("Gemm(m=%d,k=%d,n=%d,tA=%v,tB=%v): max diff %g", m, k, n, transA, transB, d)
					}
				}
			}
		}
	}
}

// TestGemmAlphaBeta checks the alpha/beta semantics, including the
// beta=0 must-overwrite (not read) contract on NaN-poisoned output.
func TestGemmAlphaBeta(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct{ alpha, beta float32 }{
		{1, 0}, {2, 0}, {1, 1}, {0.5, -1}, {-1, 0.25}, {0, 1}, {0, 0},
	} {
		m, k, n := 13, 29, 21
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		got := randTensor(rng, m, n)
		if tc.beta == 0 {
			got.Fill(float32(math.NaN()))
		}
		want := got.Clone()
		if tc.beta == 0 {
			want.Zero()
		}
		Gemm(got, a, b, tc.alpha, tc.beta, false, false)
		refGemm(want, a, b, tc.alpha, tc.beta, false, false)
		if d := MaxAbsDiff(got, want); !(d <= relTol(k)) { // NaN-safe compare
			t.Fatalf("Gemm(alpha=%g, beta=%g): max diff %g", tc.alpha, tc.beta, d)
		}
	}
}

// TestGemmRandomizedShapes exercises larger, blocking-boundary shapes
// (around MC/KC/NC) with random alpha/beta and transposes.
func TestGemmRandomizedShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dims := []int{1, 6, 50, 126, 127, 200, 256, 300}
	for trial := 0; trial < 40; trial++ {
		m := dims[rng.Intn(len(dims))]
		k := dims[rng.Intn(len(dims))]
		n := dims[rng.Intn(len(dims))]
		transA, transB := rng.Intn(2) == 1, rng.Intn(2) == 1
		alpha := float32(rng.NormFloat64())
		beta := float32(rng.NormFloat64())
		ash := []int{m, k}
		if transA {
			ash = []int{k, m}
		}
		bsh := []int{k, n}
		if transB {
			bsh = []int{n, k}
		}
		a := randTensor(rng, ash...)
		b := randTensor(rng, bsh...)
		got := randTensor(rng, m, n)
		want := got.Clone()
		Gemm(got, a, b, alpha, beta, transA, transB)
		refGemm(want, a, b, alpha, beta, transA, transB)
		if d := MaxAbsDiff(got, want); d > relTol(k) {
			t.Fatalf("trial %d: Gemm(m=%d,k=%d,n=%d,tA=%v,tB=%v,alpha=%g,beta=%g): max diff %g",
				trial, m, k, n, transA, transB, alpha, beta, d)
		}
	}
}

// TestGemmKernelAsmMatchesGo cross-checks the assembly micro-kernel
// against the portable one on random panels, including ldc > NR.
func TestGemmKernelAsmMatchesGo(t *testing.T) {
	if !useAsmKernel {
		t.Skip("no FMA kernel on this CPU/arch")
	}
	rng := rand.New(rand.NewSource(4))
	for _, kc := range []int{1, 2, 7, 64, 256} {
		for _, ldc := range []int{gemmNR, 24, 100} {
			a := make([]float32, kc*gemmMR)
			b := make([]float32, kc*gemmNR)
			cAsm := make([]float32, (gemmMR-1)*ldc+gemmNR)
			for i := range a {
				a[i] = float32(rng.NormFloat64())
			}
			for i := range b {
				b[i] = float32(rng.NormFloat64())
			}
			for i := range cAsm {
				cAsm[i] = float32(rng.NormFloat64())
			}
			cGo := append([]float32(nil), cAsm...)
			gemmKernelFMA(kc, &a[0], &b[0], &cAsm[0], ldc)
			gemmKernelGo(kc, a, b, cGo, ldc)
			for i := range cAsm {
				d := math.Abs(float64(cAsm[i]) - float64(cGo[i]))
				if d > relTol(kc) {
					t.Fatalf("kc=%d ldc=%d: asm/go kernels differ at %d: %g vs %g", kc, ldc, i, cAsm[i], cGo[i])
				}
			}
		}
	}
}

// TestGemmParallelConsistency runs the same product serially and with
// forced parallelism and demands identical results (same blocking ⇒
// same float32 rounding regardless of worker count).
func TestGemmParallelConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randTensor(rng, 190, 140)
	b := randTensor(rng, 140, 170)
	serial, par := New(190, 170), New(190, 170)
	prev := SetParallelism(1)
	MatMul(serial, a, b)
	SetParallelism(8)
	MatMul(par, a, b)
	SetParallelism(prev)
	if d := MaxAbsDiff(serial, par); d != 0 {
		t.Fatalf("parallel GEMM differs from serial by %g", d)
	}
}

func BenchmarkGemmSquare(b *testing.B) {
	for _, n := range []int{64, 256, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(6))
			x := randTensor(rng, n, n)
			y := randTensor(rng, n, n)
			dst := New(n, n)
			b.SetBytes(int64(3 * n * n * 4))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMul(dst, x, y)
			}
			flops := 2 * float64(n) * float64(n) * float64(n)
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}
