package tensor

import "fmt"

// Direct (no-lowering) convolution. For most shapes im2col+GEMM wins,
// but two regimes favor the direct path and make it a worthwhile
// autotune candidate:
//
//   - 1x1 stride-1 convolutions ARE a GEMM per batch element — the
//     im2col lowering is a pure copy of the input that the direct path
//     skips entirely (ResNet's projection shortcuts and bottleneck
//     reducers live here);
//   - tiny problems where the im2col matrix + product traffic costs
//     more than the naive loop nest (deep split patches).

// Conv2DDirect computes the same result as Conv2D by direct
// accumulation over the kernel window.
func Conv2DDirect(x, weight, bias *Tensor, p ConvParams) *Tensor {
	return Conv2DDirectArena(nil, x, weight, bias, p)
}

// Conv2DDirectArena is Conv2DDirect with the output drawn from an
// arena.
func Conv2DDirectArena(a *Arena, x, weight, bias *Tensor, p ConvParams) *Tensor {
	n, _, _, _, oh, ow := p.check(x)
	out := a.GetRaw(n, weight.shape[0], oh, ow)
	Conv2DDirectInto(out, x, weight, bias, p)
	return out
}

// Conv2DDirectInto computes the direct convolution into a
// caller-supplied dst of shape [N,Cout,OH,OW]. dst must not alias x.
// Bit-exactness: the 1x1 stride-1 unpadded case runs through the same
// blocked GEMM as Conv2D and matches it bit-for-bit; the general loop
// nest accumulates in the same (ci, ky, kx) order as im2col+GEMM's
// k-dimension, so it also matches bit-for-bit at GEMM's blocking
// granularity — the autotune property test asserts this empirically.
func Conv2DDirectInto(dst, x, weight, bias *Tensor, p ConvParams) {
	n, cin, h, w, oh, ow := p.check(x)
	cout := weight.shape[0]
	if !weight.shape.Equal(Shape{cout, cin, p.KH, p.KW}) {
		panic(fmt.Sprintf("tensor.Conv2DDirect: weight %v incompatible with input %v and %+v", weight.shape, x.shape, p))
	}
	if len(dst.data) != n*cout*oh*ow {
		panic(fmt.Sprintf("tensor.Conv2DDirectInto: dst %v, want %d elements", dst.shape, n*cout*oh*ow))
	}
	hw := oh * ow
	var bd []float32
	if bias != nil {
		bd = bias.data
	}
	if p.KH == 1 && p.KW == 1 && p.SH == 1 && p.SW == 1 && p.Pad == (Pad2D{}) {
		// dst[b] = weight-as-[Cout,Cin] @ x[b]-as-[Cin,H*W]: the GEMM
		// im2col would run, minus the input copy.
		for b := 0; b < n; b++ {
			gemm(dst.data[b*cout*hw:(b+1)*cout*hw], weight.data, x.data[b*cin*hw:(b+1)*cin*hw],
				cout, cin, hw, 1, 0, false, false)
		}
		if bd != nil {
			parallelRange(n*cout, 1+parallelThreshold/hw, directBiasArgs{
				od: dst.data, bd: bd, cout: cout, hw: hw,
			}, directBiasAdd)
		}
		return
	}
	parallelRange(n*cout, 1+parallelThreshold/(hw*cin*p.KH*p.KW), directConvArgs{
		od: dst.data, xd: x.data, wd: weight.data, bd: bd, p: p,
		cin: cin, cout: cout, h: h, w: w, oh: oh, ow: ow,
	}, directConvPlanes)
}

type directBiasArgs struct {
	od, bd   []float32
	cout, hw int
}

func directBiasAdd(t directBiasArgs, lo, hi int) {
	for i := lo; i < hi; i++ {
		bv := t.bd[i%t.cout]
		d := t.od[i*t.hw : (i+1)*t.hw]
		for j := range d {
			d[j] += bv
		}
	}
}

type directConvArgs struct {
	od, xd, wd, bd          []float32
	p                       ConvParams
	cin, cout, h, w, oh, ow int
}

func directConvPlanes(t directConvArgs, lo, hi int) {
	p := t.p
	for i := lo; i < hi; i++ {
		b, co := i/t.cout, i%t.cout
		var bv float32
		if t.bd != nil {
			bv = t.bd[co]
		}
		dst := t.od[i*t.oh*t.ow : (i+1)*t.oh*t.ow]
		for oy := 0; oy < t.oh; oy++ {
			iy0 := oy*p.SH - p.Pad.Top
			for ox := 0; ox < t.ow; ox++ {
				ix0 := ox*p.SW - p.Pad.Left
				acc := bv
				for ci := 0; ci < t.cin; ci++ {
					src := t.xd[(b*t.cin+ci)*t.h*t.w:]
					wt := t.wd[((co*t.cin+ci)*p.KH)*p.KW:]
					for ky := 0; ky < p.KH; ky++ {
						iy := iy0 + ky
						if iy < 0 || iy >= t.h {
							continue
						}
						srow := src[iy*t.w:]
						wrow := wt[ky*p.KW:]
						for kx := 0; kx < p.KW; kx++ {
							ix := ix0 + kx
							if ix < 0 || ix >= t.w {
								continue
							}
							acc += srow[ix] * wrow[kx]
						}
					}
				}
				dst[oy*t.ow+ox] = acc
			}
		}
	}
}
