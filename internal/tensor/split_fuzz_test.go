package tensor_test

import (
	"math/rand"
	"testing"

	"splitcnn/internal/tensor"
)

// randomStarts draws a valid split-start vector for a dimension of the
// given size: 0 plus a sorted sample of distinct cut points.
func randomStarts(rng *rand.Rand, size int) []int {
	starts := []int{0}
	for s := 1 + rng.Intn(2); s < size; s += 1 + rng.Intn(size) {
		starts = append(starts, s)
	}
	return starts
}

// TestFuzzSplitConcatRoundTrip mirrors the seeded-loop idiom of
// hmms/fuzz_test.go: for many random tensors and split vectors,
// ConcatSpatial(SplitSpatial(x)) must reproduce x exactly — the
// identity the Split-CNN rewrite relies on at every join point.
func TestFuzzSplitConcatRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n, c := 1+rng.Intn(3), 1+rng.Intn(4)
		h, w := 1+rng.Intn(12), 1+rng.Intn(12)
		x := tensor.New(n, c, h, w)
		x.RandNormal(rng, 1)

		for _, d := range []tensor.Dim{tensor.DimH, tensor.DimW} {
			size := h
			if d == tensor.DimW {
				size = w
			}
			starts := randomStarts(rng, size)
			parts, err := tensor.TrySplitSpatial(x, d, starts)
			if err != nil {
				t.Fatalf("seed %d dim %v starts %v: %v", seed, d, starts, err)
			}
			total := 0
			for _, p := range parts {
				if d == tensor.DimH {
					total += p.Shape().H()
				} else {
					total += p.Shape().W()
				}
			}
			if total != size {
				t.Fatalf("seed %d dim %v: parts cover %d of %d", seed, d, total, size)
			}
			back := tensor.ConcatSpatial(parts, d)
			if !back.Shape().Equal(x.Shape()) {
				t.Fatalf("seed %d dim %v: round-trip shape %v, want %v", seed, d, back.Shape(), x.Shape())
			}
			for i, v := range back.Data() {
				if v != x.Data()[i] {
					t.Fatalf("seed %d dim %v starts %v: data[%d] = %v, want %v",
						seed, d, starts, i, v, x.Data()[i])
				}
			}
		}
	}
}

// TestFuzzTrySplitSpatialRejectsBadSpecs checks that randomly corrupted
// split vectors come back as errors from TrySplitSpatial — never as a
// panic, and never as a silently wrong split.
func TestFuzzTrySplitSpatialRejectsBadSpecs(t *testing.T) {
	x := tensor.New(2, 3, 8, 8)
	corrupt := func(rng *rand.Rand) []int {
		switch rng.Intn(4) {
		case 0: // empty
			return nil
		case 1: // does not start at 0
			return []int{1 + rng.Intn(8), 9}
		case 2: // not strictly increasing
			s := 1 + rng.Intn(7)
			return []int{0, s, s - rng.Intn(2)}
		default: // out of range
			return []int{0, 8 + rng.Intn(4)}
		}
	}
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		starts := corrupt(rng)
		d := []tensor.Dim{tensor.DimH, tensor.DimW}[rng.Intn(2)]
		if parts, err := tensor.TrySplitSpatial(x, d, starts); err == nil {
			t.Fatalf("seed %d: TrySplitSpatial(%v, %v) = %d parts, want error", seed, d, starts, len(parts))
		}
	}
}

// TestTrySplitSpatialRejectsShapeAndDim covers the non-starts error
// paths: non-NCHW tensors and non-spatial dimensions.
func TestTrySplitSpatialRejectsShapeAndDim(t *testing.T) {
	if _, err := tensor.TrySplitSpatial(tensor.New(6), tensor.DimH, []int{0}); err == nil {
		t.Error("want an error for a rank-1 tensor")
	}
	if _, err := tensor.TrySplitSpatial(tensor.New(1, 2, 4, 4), tensor.Dim(1), []int{0}); err == nil {
		t.Error("want an error for a non-spatial dimension")
	}
}

// TestSplitSpatialPanicsOnBadSpec pins the documented contract of the
// panicking wrapper.
func TestSplitSpatialPanicsOnBadSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SplitSpatial did not panic on an out-of-range start")
		}
	}()
	tensor.SplitSpatial(tensor.New(1, 1, 4, 4), tensor.DimH, []int{0, 9})
}
