//go:build race

package train_test

// See race_off_test.go.
const raceEnabled = true
