package train_test

import (
	"math"
	"math/rand"
	"testing"

	"splitcnn/internal/graph"
	"splitcnn/internal/nn"
	"splitcnn/internal/tensor"
	"splitcnn/internal/train"
)

// buildAllocNet hand-builds a small BN-free CNN on the tiny dataset's
// 3x32x32 geometry, touching every arena-capable op: Winograd and
// im2col convolutions, ReLU, residual Add, MaxPool, Dropout,
// GlobalAvgPool, Flatten, Linear, and the softmax loss.
// dropRng feeds the dropout op; pass nil to make it the identity (the
// concurrent test must, because replicas share the op and a rand.Rand
// is not goroutine-safe).
func buildAllocNet(batch int, rng, dropRng *rand.Rand) (*graph.Graph, *graph.ParamStore) {
	g := graph.New()
	x := g.Input("image", tensor.Shape{batch, 3, 32, 32})
	labels := g.Input("labels", tensor.Shape{batch})
	w1 := g.Param("c1.w", tensor.Shape{8, 3, 3, 3})
	b1 := g.Param("c1.b", tensor.Shape{8})
	c1 := g.Add("c1", nn.NewConv(3, 1, 1), x, w1, b1) // Winograd path
	r1 := g.Add("r1", nn.ReLU{}, c1)
	w2 := g.Param("c2.w", tensor.Shape{8, 8, 1, 1})
	b2 := g.Param("c2.b", tensor.Shape{8})
	c2 := g.Add("c2", nn.NewConv(1, 1, 0), r1, w2, b2) // im2col path
	sum := g.Add("res", &nn.Add{N: 2}, r1, c2)
	mp := g.Add("mp", nn.NewMaxPool(2, 2), sum)
	do := g.Add("do", &nn.Dropout{P: 0.1, Training: true, Rng: dropRng}, mp)
	gap := g.Add("gap", nn.GlobalAvgPool{}, do)
	fl := g.Add("fl", nn.Flatten{}, gap)
	wf := g.Param("fc.w", tensor.Shape{10, 8})
	bf := g.Param("fc.b", tensor.Shape{10})
	fc := g.Add("fc", nn.Linear{}, fl, wf, bf)
	loss := g.Add("loss", nn.SoftmaxCrossEntropy{}, fc, labels)
	g.SetOutput(loss)

	store := graph.NewParamStore()
	store.InitFromGraph(g, rng, nn.KaimingInit)
	return g, store
}

// TestTrainStepZeroAlloc is the regression guard for the workspace
// arena: a warmed-up training step — batch assembly, zero-grads,
// forward, backward, optimizer — must not allocate. Parallelism is
// pinned to 1 because the parallel dispatch path allocates its small
// task closure; the serial engine is the zero-alloc contract.
func TestTrainStepZeroAlloc(t *testing.T) {
	prev := tensor.SetParallelism(1)
	defer tensor.SetParallelism(prev)

	const batch = 8
	ds := tinyDataset(t)
	rng := rand.New(rand.NewSource(11))
	g, store := buildAllocNet(batch, rng, rng)
	ex, err := graph.NewExecutor(g, store)
	if err != nil {
		t.Fatal(err)
	}
	ex.UseArena(tensor.NewArena())
	opt := &train.SGD{LR: 0.01, Momentum: 0.9, WeightDecay: 1e-4}

	batchX := tensor.New(batch, ds.Cfg.C, ds.Cfg.H, ds.Cfg.W)
	batchY := tensor.New(batch)
	feeds := graph.Feeds{"image": batchX, "labels": batchY}
	idx := make([]int, batch)
	var lastLoss float64
	s := 0
	step := func() {
		for i := range idx {
			idx[i] = (s*batch + i) % ds.Cfg.TrainN
		}
		s++
		ds.BatchInto(batchX, batchY, true, idx)
		store.ZeroGrads()
		outs, err := ex.Forward(feeds)
		if err != nil {
			t.Fatal(err)
		}
		lastLoss = float64(outs[0].Data()[0])
		if err := ex.Backward(); err != nil {
			t.Fatal(err)
		}
		opt.Step(store)
	}

	for i := 0; i < 5; i++ {
		step() // warm the arena, free lists, and shape caches
	}
	if allocs := testing.AllocsPerRun(10, step); allocs != 0 {
		t.Fatalf("warmed training step allocates %v objects/run, want 0", allocs)
	}
	if math.IsNaN(lastLoss) || lastLoss <= 0 {
		t.Fatalf("suspicious loss %v after alloc-counted steps", lastLoss)
	}
}

// TestArenaTrainingMatchesPlain pins the arena executor's numerics to
// the plain one: identical graphs, parameters, and batches must produce
// bit-identical losses and parameter values with and without an arena.
func TestArenaTrainingMatchesPlain(t *testing.T) {
	const batch, steps = 4, 3
	ds := tinyDataset(t)
	run := func(useArena bool) (losses []float64, store *graph.ParamStore) {
		// Dropout must draw the same random stream in both runs.
		rng := rand.New(rand.NewSource(23))
		g, st := buildAllocNet(batch, rng, rng)
		ex, err := graph.NewExecutor(g, st)
		if err != nil {
			t.Fatal(err)
		}
		if useArena {
			ex.UseArena(tensor.NewArena())
		}
		opt := &train.SGD{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4}
		x := tensor.New(batch, ds.Cfg.C, ds.Cfg.H, ds.Cfg.W)
		y := tensor.New(batch)
		idx := make([]int, batch)
		for s := 0; s < steps; s++ {
			for i := range idx {
				idx[i] = s*batch + i
			}
			ds.BatchInto(x, y, true, idx)
			st.ZeroGrads()
			outs, err := ex.Forward(graph.Feeds{"image": x, "labels": y})
			if err != nil {
				t.Fatal(err)
			}
			losses = append(losses, float64(outs[0].Data()[0]))
			if err := ex.Backward(); err != nil {
				t.Fatal(err)
			}
			opt.Step(st)
		}
		return losses, st
	}
	plainLoss, plainStore := run(false)
	arenaLoss, arenaStore := run(true)
	for s := range plainLoss {
		if plainLoss[s] != arenaLoss[s] {
			t.Fatalf("step %d: plain loss %v != arena loss %v", s, plainLoss[s], arenaLoss[s])
		}
	}
	for _, p := range plainStore.All() {
		q := arenaStore.Lookup(p.Name)
		if d := tensor.MaxAbsDiff(p.Value, q.Value); d != 0 {
			t.Fatalf("param %s diverged by %v between plain and arena training", p.Name, d)
		}
	}
}

// TestDataParallelArenaConcurrency drives the persistent worker pool
// and per-worker arenas from four concurrent replicas for several
// steps. Its real assertions run under `go test -race` (the Makefile's
// race target), where any sharing bug between the pool's stealing
// waiters or across arenas is a detector error.
func TestDataParallelArenaConcurrency(t *testing.T) {
	prev := tensor.SetParallelism(4)
	defer tensor.SetParallelism(prev)

	const local, workers = 4, 4
	ds := tinyDataset(t)
	rng := rand.New(rand.NewSource(31))
	g, store := buildAllocNet(local, rng, nil)
	dp, err := train.NewDataParallel(g, store, workers)
	if err != nil {
		t.Fatal(err)
	}
	opt := &train.SGD{LR: 0.01, Momentum: 0.9}
	indices := make([]int, local*workers)
	for s := 0; s < 4; s++ {
		for i := range indices {
			indices[i] = (s*len(indices) + i) % ds.Cfg.TrainN
		}
		loss, err := dp.Step(ds, indices)
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(loss) || loss <= 0 {
			t.Fatalf("step %d: loss %v", s, loss)
		}
		opt.Step(store)
	}
}
